// Extension: soft-error resilience of the five paper designs, and what TMR
// or parity protection costs in the paper's own LE / f_max currency.  Each
// row runs a deterministic SEU campaign (image-derived stimulus) through the
// design and classifies every trial as masked, detected or silent data
// corruption; the hardened netlists are priced through the same APEX mapper
// and static-timing model as Table 3.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/resilience.hpp"
#include "hw/designs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_resilience_hardening", argc, argv);
  std::printf(
      "Extension: SEU campaigns and hardening costs across Table 3.\n\n");
  std::printf("%-22s %8s %12s %8s %9s %6s %9s\n", "Design", "LEs",
              "fmax (MHz)", "masked", "detected", "sdc", "sdc rate");

  const dwt::rtl::HardeningStyle styles[] = {
      dwt::rtl::HardeningStyle::kNone,
      dwt::rtl::HardeningStyle::kTmr,
      dwt::rtl::HardeningStyle::kParity,
  };
  for (const dwt::hw::DesignSpec& spec : dwt::hw::all_designs()) {
    for (const dwt::rtl::HardeningStyle style : styles) {
      dwt::explore::ResilienceOptions opt;
      opt.design = spec.id;
      opt.kinds = {dwt::rtl::FaultKind::kSeuFlip};
      opt.trials = 50;
      opt.seed = 2005;
      opt.samples = 32;
      opt.harden = style;
      opt.keep_trials = false;
      const dwt::explore::CampaignResult r = dwt::explore::run_campaign(opt);
      char label[64];
      std::snprintf(label, sizeof label, "%s+%s", spec.name.c_str(),
                    dwt::rtl::to_string(style));
      std::printf("%-22s %8zu %12.1f %8zu %9zu %6zu %9.2f\n", label,
                  r.hardened.logic_elements, r.hardened.fmax_mhz, r.masked,
                  r.detected, r.sdc, r.sdc_rate());
      json.add(label, "area",
               static_cast<double>(r.hardened.logic_elements), "LEs");
      json.add(label, "fmax", r.hardened.fmax_mhz, "MHz");
      json.add(label, "masked", static_cast<double>(r.masked), "count");
      json.add(label, "detected", static_cast<double>(r.detected), "count");
      json.add(label, "sdc", static_cast<double>(r.sdc), "count");
      json.add(label, "sdc_rate", r.sdc_rate(), "ratio");
    }
    std::printf("\n");
  }
  std::printf(
      "TMR masks every sampled upset at ~3-4x the LEs; parity converts\n"
      "silent corruptions into detections for a fraction of that area.\n");
  return json.exit_code();
}
