// dwt97d serving throughput: an in-process DwtServer under a concurrent
// socket load generator.  Phases cover the serving envelope -- thumbnail
// tiles, 4K frames, odd-dimension tiles, and a concurrent multi-design mix
// across backends -- and every single response is byte-compared against the
// `dwt97cli tile` pipeline computed locally, so the bench doubles as the
// end-to-end determinism check (byte-identical at any worker count).
//
// The bench asserts (exit code) the ISSUE acceptance gates: thumbnail
// throughput of at least 1000 req/s, an artifact-cache hit rate above 90%
// after warm-up, zero admission rejections, and zero byte mismatches.
// `--smoke` shrinks the request counts for CI; `--json <path>` emits the
// bench/schema.md record set (request counts, cache discipline and the
// mismatch/rejection counters are deterministic; throughput and latency
// records are perf and tolerance-gated).
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/artifact_cache.hpp"
#include "core/registry.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image.hpp"
#include "dsp/image_gen.hpp"
#include "hw/tile_scheduler.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace dwt;

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Length prefix and body in one send(), matching the server: two segments
// per frame would trip Nagle + delayed ACK and throttle the whole bench.
bool send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>((n >> (8 * i)) & 0xFF));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t put =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

bool recv_frame(int fd, std::vector<std::uint8_t>* out) {
  std::uint8_t len[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t r = ::recv(fd, len + got, 4 - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(len[i]) << (8 * i);
  if (n == 0 || n > server::kMaxFrameBytes) return false;
  out->resize(n);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, out->data() + off, n - off, 0);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

std::vector<std::uint8_t> pgm_bytes(const dsp::Image& img) {
  std::ostringstream out;
  dsp::write_pgm(img, out, "bench image");
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

/// The exact `dwt97cli tile` pipeline -- the reference every server
/// response is byte-compared against.
std::vector<std::uint8_t> cli_tile_bytes(const dsp::Image& input,
                                         const std::string& backend,
                                         hw::DesignId design, int octaves) {
  dsp::Image img = input;
  hw::TileOptions opt;
  opt.method = dsp::Method::kLiftingFixed;
  opt.octaves = octaves;
  opt.threads = 1;
  opt.backend = backend.empty() ? nullptr : core::find_backend(backend);
  opt.design = design;
  dsp::level_shift_forward(img);
  dsp::round_coefficients(img);
  (void)hw::tile_forward(img, opt);
  hw::TileOptions inv = opt;
  if (inv.backend != nullptr && !inv.backend->caps().inverse_2d) {
    inv.backend = nullptr;
  }
  (void)hw::tile_inverse(img, inv);
  dsp::level_shift_inverse(img);
  return pgm_bytes(img);
}

/// One request shape plus its precomputed golden answer.
struct Case {
  std::vector<std::uint8_t> frame;     // encoded request
  std::vector<std::uint8_t> expected;  // byte-exact response payload
};

Case make_case(const dsp::Image& img, const std::string& backend,
               hw::DesignId design, int octaves) {
  server::Request req;
  req.op = server::Op::kTileRoundTrip;
  req.format = server::PayloadFormat::kPgm;
  req.design = design;
  req.octaves = octaves;
  req.backend = backend;
  req.payload = pgm_bytes(img);
  return {server::encode_request(req),
          cli_tile_bytes(img, backend, design, octaves)};
}

struct PhaseResult {
  std::size_t requests = 0;
  std::size_t mismatches = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  [[nodiscard]] double rps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// Drives `total` requests round-robin over `cases` from `connections`
/// concurrent client connections (each with one request in flight, so
/// concurrency never exceeds the connection count and the default queue
/// cannot overflow).
PhaseResult run_phase(std::uint16_t port, const std::vector<Case>& cases,
                      unsigned connections, std::size_t total) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> errors{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (unsigned cidx = 0; cidx < connections; ++cidx) {
    clients.emplace_back([&] {
      const int fd = connect_tcp(port);
      if (fd < 0) {
        errors.fetch_add(1);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total) break;
        const Case& c = cases[i % cases.size()];
        std::vector<std::uint8_t> frame;
        if (!send_frame(fd, c.frame) || !recv_frame(fd, &frame)) {
          errors.fetch_add(1);
          break;
        }
        std::string error;
        const auto resp =
            server::decode_response(frame.data(), frame.size(), &error);
        if (!resp || resp->status != server::Status::kOk) {
          errors.fetch_add(1);
        } else if (resp->payload != c.expected) {
          mismatches.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  PhaseResult r;
  r.requests = total;
  r.mismatches = mismatches.load();
  r.errors = errors.load();
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_server_throughput", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const unsigned kConnections = 8;
  const unsigned kWorkers = 4;

  std::printf("dwt97d serving throughput, %u workers, %u connections%s.\n\n",
              kWorkers, kConnections, smoke ? " (smoke)" : "");

  // Request shapes.  Expected bytes are computed locally first, which also
  // pre-builds the gate-level artifacts the warm-up phase then hits.
  const dsp::Image thumb = dsp::make_still_tone_image(64, 64, 11);
  const dsp::Image frame4k = dsp::make_still_tone_image(3840, 2160, 12);
  const dsp::Image odd_a = dsp::make_still_tone_image(33, 17, 13);
  const dsp::Image odd_b = dsp::make_still_tone_image(129, 97, 14);
  const dsp::Image odd_c = dsp::make_still_tone_image(511, 255, 15);

  const std::vector<Case> thumb_cases = {
      make_case(thumb, "", hw::DesignId::kDesign2, 2)};
  const std::vector<Case> frame_cases = {
      make_case(frame4k, "", hw::DesignId::kDesign2, 2)};
  const std::vector<Case> odd_cases = {
      make_case(odd_a, "", hw::DesignId::kDesign2, 1),
      make_case(odd_b, "", hw::DesignId::kDesign2, 2),
      make_case(odd_c, "", hw::DesignId::kDesign2, 3)};
  const std::vector<Case> mixed_cases = {
      make_case(thumb, "", hw::DesignId::kDesign2, 2),
      make_case(thumb, "software-fixed", hw::DesignId::kDesign1, 2),
      make_case(thumb, "rtl-compiled", hw::DesignId::kDesign2, 2),
      make_case(thumb, "rtl-compiled", hw::DesignId::kDesign3, 2)};

  server::ServerOptions opt;
  opt.workers = kWorkers;
  opt.queue_depth = 64;
  server::DwtServer server(opt);
  server.start();

  // Warm-up: one request per mixed-design shape builds/hits every artifact
  // the load phases need, so the steady-state cache hit rate is measured
  // past the cold start.
  const PhaseResult warm =
      run_phase(server.port(), mixed_cases, 4, mixed_cases.size());

  struct Phase {
    const char* name;
    const std::vector<Case>* cases;
    std::size_t total;
  };
  const std::vector<Phase> phases = {
      {"thumbnail", &thumb_cases, smoke ? std::size_t{512} : 4096},
      {"frame4k", &frame_cases, smoke ? std::size_t{2} : 16},
      {"odd", &odd_cases, smoke ? std::size_t{48} : 384},
      {"mixed", &mixed_cases, smoke ? std::size_t{48} : 384},
  };

  std::printf("%10s %10s %12s %12s %8s\n", "phase", "requests", "req/s",
              "mismatch", "errors");
  double thumbnail_rps = 0.0;
  std::size_t total_mismatches = warm.mismatches;
  std::size_t total_errors = warm.errors;
  for (const Phase& p : phases) {
    const PhaseResult r =
        run_phase(server.port(), *p.cases, kConnections, p.total);
    std::printf("%10s %10zu %12.0f %12zu %8zu\n", p.name, r.requests, r.rps(),
                r.mismatches, r.errors);
    json.add(p.name, "requests", static_cast<double>(r.requests), "count");
    json.add(p.name, "throughput", r.rps(), "req/s");
    if (std::strcmp(p.name, "thumbnail") == 0) thumbnail_rps = r.rps();
    total_mismatches += r.mismatches;
    total_errors += r.errors;
  }

  const server::MetricsSnapshot m = server.metrics();
  const core::CacheStats cache = core::ArtifactCache::instance().stats();
  server.stop();

  const std::uint64_t hits = cache.design_hits + cache.tape_hits +
                             cache.mapped_hits + cache.cone_hits +
                             cache.native_hits;
  const std::uint64_t builds = cache.design_builds + cache.tape_builds +
                               cache.mapped_builds + cache.cone_builds +
                               cache.native_builds;
  const double hit_rate =
      hits + builds > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + builds)
          : 0.0;
  const std::uint64_t rejected =
      m.rejected_queue_full + m.rejected_shutting_down;

  std::printf("\nserver: ok %llu, rejected %llu, p50 %.0f us, p99 %.0f us, "
              "cache hit rate %.1f%% (%llu hits / %llu builds)\n",
              static_cast<unsigned long long>(m.requests_ok),
              static_cast<unsigned long long>(rejected), m.latency_p50_us,
              m.latency_p99_us, 100.0 * hit_rate,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(builds));

  json.add("server", "requests_ok", static_cast<double>(m.requests_ok),
           "count");
  json.add("server", "rejected_total", static_cast<double>(rejected), "count");
  json.add("server", "byte_mismatches", static_cast<double>(total_mismatches),
           "count");
  json.add("server", "transport_errors", static_cast<double>(total_errors),
           "count");
  json.add("server", "latency_p50_us", m.latency_p50_us, "us");
  json.add("server", "latency_p99_us", m.latency_p99_us, "us");
  json.add("server", "cache_hit_rate", hit_rate, "ratio");
  json.add("server", "cache_design_builds",
           static_cast<double>(cache.design_builds), "count");
  json.add("server", "cache_tape_builds",
           static_cast<double>(cache.tape_builds), "count");
  json.add("server", "cache_native_builds",
           static_cast<double>(cache.native_builds), "count");
  if (!json.flush()) return 1;

  // Acceptance gates (exit code; CI runs the smoke configuration on the
  // Release build).
  bool ok = true;
  if (total_mismatches != 0 || total_errors != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu byte mismatches, %zu transport errors -- server "
                 "responses must be byte-identical to dwt97cli tile\n",
                 total_mismatches, total_errors);
    ok = false;
  }
  if (rejected != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu rejected requests (load never exceeds the "
                 "connection count, so admission control must not trip)\n",
                 static_cast<unsigned long long>(rejected));
    ok = false;
  }
  if (hit_rate <= 0.90) {
    std::fprintf(stderr, "FAIL: cache hit rate %.3f <= 0.90 after warm-up\n",
                 hit_rate);
    ok = false;
  }
#ifdef NDEBUG
  if (thumbnail_rps < 1000.0) {
    std::fprintf(stderr, "FAIL: thumbnail throughput %.0f req/s < 1000\n",
                 thumbnail_rps);
    ok = false;
  }
#else
  (void)thumbnail_rps;
#endif
  return ok ? 0 : 1;
}
