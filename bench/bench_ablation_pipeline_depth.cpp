// Ablation: pipeline granularity.  The paper evaluates only the extremes --
// no operator pipelining (designs 1/2/4) and one sum per stage (designs
// 3/5).  Sweeping "register every Nth sum" fills in the area/frequency curve
// between them.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "hw/designs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_ablation_pipeline_depth", argc, argv);
  dwt::explore::Explorer explorer;
  std::printf("Ablation: pipeline granularity (behavioral shift-add "
              "datapath).\n\n");
  std::printf("%-26s %8s %12s %14s %9s\n", "configuration", "LEs",
              "fmax (MHz)", "P@15MHz (mW)", "latency");

  {
    const auto flat = explorer.evaluate(
        dwt::hw::design_spec(dwt::hw::DesignId::kDesign2));
    std::printf("%-26s %8zu %12.1f %14.1f %9d   (= design 2)\n",
                "no operator pipelining", flat.report.logic_elements,
                flat.report.fmax_mhz, flat.report.power_mw,
                flat.info.latency);
    json.add("no pipelining", "area",
             static_cast<double>(flat.report.logic_elements), "LEs");
    json.add("no pipelining", "fmax", flat.report.fmax_mhz, "MHz");
    json.add("no pipelining", "power_at_15mhz", flat.report.power_mw, "mW");
    json.add("no pipelining", "latency", flat.info.latency, "cycles");
  }
  for (const int gran : {4, 3, 2, 1}) {
    dwt::hw::DesignSpec spec =
        dwt::hw::design_spec(dwt::hw::DesignId::kDesign3);
    spec.config.pipeline_granularity = gran;
    const auto eval = explorer.evaluate(spec);
    std::printf("register every %-2d sum(s)   %8zu %12.1f %14.1f %9d%s\n",
                gran, eval.report.logic_elements, eval.report.fmax_mhz,
                eval.report.power_mw, eval.info.latency,
                gran == 1 ? "   (= design 3)" : "");
    const std::string scenario = "granularity " + std::to_string(gran);
    json.add(scenario, "area",
             static_cast<double>(eval.report.logic_elements), "LEs");
    json.add(scenario, "fmax", eval.report.fmax_mhz, "MHz");
    json.add(scenario, "power_at_15mhz", eval.report.power_mw, "mW");
    json.add(scenario, "latency", eval.info.latency, "cycles");
  }
  std::printf(
      "\nFrequency rises monotonically toward the one-sum-per-stage point\n"
      "while area grows with the register count: the paper's two design\n"
      "points bracket a smooth trade-off curve.\n");
  return json.exit_code();
}
