// Library-performance microbenchmarks (google-benchmark): software
// transform throughput and simulator speed.  These measure this library on
// the host CPU -- they are not paper experiments, but they document what a
// user pays for each API.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/simulator.hpp"

namespace {

void BM_Lifting1dFloat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dwt::dsp::Image img = dwt::dsp::make_still_tone_image(n, 1, 3);
  std::vector<double> x = img.data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dwt::dsp::dwt1d_forward(dwt::dsp::Method::kLiftingFloat, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Lifting1dFloat)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Lifting1dFixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dwt::dsp::Image img = dwt::dsp::make_still_tone_image(n, 1, 3);
  std::vector<double> x = img.data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dwt::dsp::dwt1d_forward(dwt::dsp::Method::kLiftingFixed, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Lifting1dFixed)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Fir1dFloat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dwt::dsp::Image img = dwt::dsp::make_still_tone_image(n, 1, 3);
  std::vector<double> x = img.data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dwt::dsp::dwt1d_forward(dwt::dsp::Method::kFirFloat, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fir1dFloat)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Dwt2dMultiOctave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dwt::dsp::Image base = dwt::dsp::make_still_tone_image(n, n, 5);
  for (auto _ : state) {
    dwt::dsp::Image img = base;
    dwt::dsp::dwt2d_forward(dwt::dsp::Method::kLiftingFloat, img, 3);
    benchmark::DoNotOptimize(img.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Dwt2dMultiOctave)->Arg(64)->Arg(128)->Arg(256);

void BM_GateLevelSimulation(benchmark::State& state) {
  const auto dp = dwt::hw::build_design(
      static_cast<dwt::hw::DesignId>(state.range(0)));
  dwt::rtl::Simulator sim(dp.netlist);
  const dwt::dsp::Image img = dwt::dsp::make_still_tone_image(128, 1, 9);
  std::vector<std::int64_t> x;
  for (const double v : img.data()) {
    x.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwt::hw::run_stream(dp, sim, x));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_GateLevelSimulation)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Custom main so this binary honours the repo-wide `--json <path>` bench
// convention (bench/schema.md): the flag is rewritten into google-benchmark's
// own JSON output options, so the document shape is google-benchmark's.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--json") == 0) {
      args.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      args.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    args.emplace_back(argv[i]);
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
