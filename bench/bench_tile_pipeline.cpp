// Tile-parallel 2-D DWT pipeline throughput: megapixels per second of the
// software fixed-point transform as the worker count grows, plus the
// determinism cross-check (the packed coefficient plane must be
// byte-identical at every thread count, including on odd image and tile
// dimensions) and the hardware-backend cycle accounting.
//
// `--smoke` shrinks the image for the CI correctness pass; `--json <path>`
// emits the bench/schema.md record set.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "hw/tile_scheduler.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

dwt::dsp::Image make_plane(std::size_t w, std::size_t h) {
  dwt::dsp::Image img = dwt::dsp::make_still_tone_image(w, h, 97);
  dwt::dsp::level_shift_forward(img);
  dwt::dsp::round_coefficients(img);
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_tile_pipeline", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Odd dimensions on purpose: edge tiles exercise the arbitrary-size path.
  const std::size_t w = smoke ? 129 : 1021;
  const std::size_t h = smoke ? 97 : 767;
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());

  std::printf("Tile-parallel 2-D DWT pipeline, %zux%zu plane, 64x64 tiles, "
              "2 octaves%s.\n\n", w, h, smoke ? " (smoke)" : "");
  const dwt::dsp::Image source = make_plane(w, h);

  dwt::hw::TileOptions opt;
  opt.octaves = 2;
  opt.method = dwt::dsp::Method::kLiftingFixed;

  // Single-thread reference plane for the determinism cross-check.
  dwt::dsp::Image reference = source;
  opt.threads = 1;
  (void)dwt::hw::tile_forward(reference, opt);

  std::printf("%8s %14s %10s %12s\n", "threads", "Mpixel/s", "speedup",
              "identical");
  double base_mps = 0.0;
  bool all_identical = true;
  std::vector<unsigned> counts{1, 2};
  if (hw_threads > 2) counts.push_back(hw_threads);
  for (const unsigned threads : counts) {
    opt.threads = threads;
    dwt::dsp::Image plane = source;
    const auto t0 = Clock::now();
    const dwt::hw::TileStats stats = dwt::hw::tile_forward(plane, opt);
    const double mps =
        static_cast<double>(w * h) / seconds_since(t0) / 1e6;
    const bool identical = plane.data() == reference.data();
    all_identical = all_identical && identical;
    if (base_mps == 0.0) base_mps = mps;
    std::printf("%8u %14.1f %9.2fx %12s\n", stats.threads_used, mps,
                mps / base_mps, identical ? "yes" : "NO");
    json.add("tile_sw", "throughput_t" + std::to_string(threads), mps,
             "Mpixel/s");
  }

  // Round trip through the tile inverse (per-tile boundary extension makes
  // tiling self-inverting, exactly like JPEG2000 tiles).
  {
    dwt::dsp::Image plane = reference;
    opt.threads = 0;
    (void)dwt::hw::tile_inverse(plane, opt);
    double max_err = 0.0;
    for (std::size_t i = 0; i < plane.data().size(); ++i) {
      max_err = std::max(max_err,
                         std::abs(plane.data()[i] - source.data()[i]));
    }
    std::printf("\ntile inverse max |error|: %.1f LSB\n", max_err);
    json.add("tile_sw", "roundtrip_max_error", max_err, "lsb");
  }

  // Hardware backend: per-worker figure-4 systems, summed cycle accounting.
  {
    dwt::dsp::Image plane = smoke ? source : make_plane(257, 129);
    opt = dwt::hw::TileOptions{};
    opt.octaves = 2;
    opt.backend = dwt::hw::TileBackend::kHardware;
    opt.threads = 0;
    const auto t0 = Clock::now();
    const dwt::hw::TileStats stats = dwt::hw::tile_forward(plane, opt);
    const double secs = seconds_since(t0);
    std::printf("hardware backend: %zu tiles on %u workers, %llu core "
                "cycles, %.1f s\n", stats.tiles, stats.threads_used,
                static_cast<unsigned long long>(stats.total_cycles), secs);
    json.add("tile_hw", "tiles", static_cast<double>(stats.tiles), "count");
    json.add("tile_hw", "core_cycles",
             static_cast<double>(stats.total_cycles), "cycles");
  }

  std::printf(
      "\nEvery tile carries its own (1,1) symmetric extension, so tiles are\n"
      "independent work items: the scheduler shards them over an atomic\n"
      "counter and the output is byte-identical at any thread count.\n");
  if (!all_identical) {
    std::fprintf(stderr, "determinism check FAILED\n");
    return 1;
  }
  return json.exit_code();
}
