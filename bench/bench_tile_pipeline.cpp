// Tile-parallel 2-D DWT pipeline throughput: megapixels per second of the
// software fixed-point transform as the worker count grows, plus the
// determinism cross-check (the packed coefficient plane must be
// byte-identical at every thread count, including on odd image and tile
// dimensions) and the gate-level registry backends with their shared
// artifact cache -- the bench asserts (exit code, and cache_* JSON records)
// that elaboration/compilation happens once per (design, config), not once
// per tile or worker, and reports the multi-worker throughput gain that
// sharing enables.
//
// `--smoke` shrinks the image for the CI correctness pass; `--json <path>`
// emits the bench/schema.md record set.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/artifact_cache.hpp"
#include "core/registry.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "hw/tile_scheduler.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

dwt::dsp::Image make_plane(std::size_t w, std::size_t h) {
  dwt::dsp::Image img = dwt::dsp::make_still_tone_image(w, h, 97);
  dwt::dsp::level_shift_forward(img);
  dwt::dsp::round_coefficients(img);
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_tile_pipeline", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Odd dimensions on purpose: edge tiles exercise the arbitrary-size path.
  const std::size_t w = smoke ? 129 : 1021;
  const std::size_t h = smoke ? 97 : 767;
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());

  std::printf("Tile-parallel 2-D DWT pipeline, %zux%zu plane, 64x64 tiles, "
              "2 octaves%s.\n\n", w, h, smoke ? " (smoke)" : "");
  const dwt::dsp::Image source = make_plane(w, h);

  dwt::hw::TileOptions opt;
  opt.octaves = 2;
  opt.method = dwt::dsp::Method::kLiftingFixed;

  // Single-thread reference plane for the determinism cross-check.
  dwt::dsp::Image reference = source;
  opt.threads = 1;
  (void)dwt::hw::tile_forward(reference, opt);

  std::printf("%8s %14s %10s %12s\n", "threads", "Mpixel/s", "speedup",
              "identical");
  double base_mps = 0.0;
  bool all_identical = true;
  std::vector<unsigned> counts{1, 2};
  if (hw_threads > 2) counts.push_back(hw_threads);
  for (const unsigned threads : counts) {
    opt.threads = threads;
    dwt::dsp::Image plane = source;
    const auto t0 = Clock::now();
    const dwt::hw::TileStats stats = dwt::hw::tile_forward(plane, opt);
    const double mps =
        static_cast<double>(w * h) / seconds_since(t0) / 1e6;
    const bool identical = plane.data() == reference.data();
    all_identical = all_identical && identical;
    if (base_mps == 0.0) base_mps = mps;
    std::printf("%8u %14.1f %9.2fx %12s\n", stats.threads_used, mps,
                mps / base_mps, identical ? "yes" : "NO");
    json.add("tile_sw", "throughput_t" + std::to_string(threads), mps,
             "Mpixel/s");
  }

  // Round trip through the tile inverse (per-tile boundary extension makes
  // tiling self-inverting, exactly like JPEG2000 tiles).
  {
    dwt::dsp::Image plane = reference;
    opt.threads = 0;
    (void)dwt::hw::tile_inverse(plane, opt);
    double max_err = 0.0;
    for (std::size_t i = 0; i < plane.data().size(); ++i) {
      max_err = std::max(max_err,
                         std::abs(plane.data()[i] - source.data()[i]));
    }
    std::printf("\ntile inverse max |error|: %.1f LSB\n", max_err);
    json.add("tile_sw", "roundtrip_max_error", max_err, "lsb");
  }

  // Gate-level registry backends: per-worker sessions around ONE cached
  // elaboration/compilation.  For each backend the cache is cleared, the
  // same plane is transformed at 1 and >= 4 workers, and the cache counters
  // are asserted: exactly one design build (and one tape build for the
  // compiled engine) across every tile and worker.
  bool cache_ok = true;
  {
    dwt::core::ArtifactCache& cache = dwt::core::ArtifactCache::instance();
    const dwt::dsp::Image hw_source = smoke ? source : make_plane(257, 129);
    std::vector<std::string> backends{"rtl-compiled"};
    if (!smoke) backends.insert(backends.begin(), "rtl-interpreted");
    for (const std::string& name : backends) {
      const dwt::core::ExecutionBackend* backend =
          dwt::core::find_backend(name);
      if (backend == nullptr) {
        std::fprintf(stderr, "backend %s not registered\n", name.c_str());
        return 1;
      }
      cache.clear();
      opt = dwt::hw::TileOptions{};
      opt.octaves = 2;
      opt.backend = backend;
      double mps1 = 0.0;
      std::printf("\n%s backend:\n", name.c_str());
      for (const unsigned threads : {1u, 4u}) {
        opt.threads = threads;
        dwt::dsp::Image plane = hw_source;
        const auto t0 = Clock::now();
        const dwt::hw::TileStats stats = dwt::hw::tile_forward(plane, opt);
        const double secs = seconds_since(t0);
        const double mps = static_cast<double>(hw_source.width() *
                                               hw_source.height()) /
                           secs / 1e6;
        if (threads == 1) mps1 = mps;
        std::printf(
            "  %zu tiles on %u workers: %llu core cycles, %.2f s "
            "(%.2f Mpixel/s, %.2fx)\n",
            stats.tiles, stats.threads_used,
            static_cast<unsigned long long>(stats.total_cycles), secs, mps,
            mps / mps1);
        json.add(name, "throughput_t" + std::to_string(threads), mps,
                 "Mpixel/s");
        if (threads != 1) json.add(name, "speedup_t4", mps / mps1, "ratio");
        json.add(name, "core_cycles_t" + std::to_string(threads),
                 static_cast<double>(stats.total_cycles), "cycles");
      }
      const dwt::core::CacheStats cs = cache.stats();
      const std::uint64_t expected_tapes = name == "rtl-compiled" ? 1 : 0;
      std::printf(
          "  cache: %llu design build(s), %llu hit(s); %llu tape build(s)\n",
          static_cast<unsigned long long>(cs.design_builds),
          static_cast<unsigned long long>(cs.design_hits),
          static_cast<unsigned long long>(cs.tape_builds));
      json.add(name, "cache_design_builds",
               static_cast<double>(cs.design_builds), "count");
      json.add(name, "cache_design_hits",
               static_cast<double>(cs.design_hits), "count");
      json.add(name, "cache_tape_builds",
               static_cast<double>(cs.tape_builds), "count");
      if (cs.design_builds != 1 || cs.tape_builds != expected_tapes) {
        std::fprintf(stderr,
                     "cache assertion FAILED for %s: expected 1 design "
                     "build / %llu tape build(s)\n",
                     name.c_str(),
                     static_cast<unsigned long long>(expected_tapes));
        cache_ok = false;
      }
    }
  }

  std::printf(
      "\nEvery tile carries its own (1,1) symmetric extension, so tiles are\n"
      "independent work items: the scheduler shards them over an atomic\n"
      "counter and the output is byte-identical at any thread count.\n");
  if (!all_identical) {
    std::fprintf(stderr, "determinism check FAILED\n");
    return 1;
  }
  if (!cache_ok) return 1;
  return json.exit_code();
}
