// Extension: the reversible 5/3 core next to the paper's 9/7 designs (the
// combined 5/3 + 9/7 architecture of reference [6]).  Two shift-add lifting
// steps versus six multiplier blocks: the 5/3 costs a fraction of the area
// and runs faster, but is limited to lossless/lower-gain coding.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "hw/designs.hpp"
#include "hw/lifting53_datapath.hpp"
#include "rtl/simplify.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_53_vs_97", argc, argv);
  std::printf("Extension: reversible 5/3 cores vs the paper's 9/7 designs.\n\n");
  std::printf("%-38s %8s %12s %9s\n", "Core", "LEs", "fmax (MHz)", "latency");

  struct Variant {
    const char* label;
    dwt::hw::Datapath53Config cfg;
  };
  Variant variants[4];
  variants[0].label = "5/3 behavioral, flat";
  variants[1].label = "5/3 behavioral, pipelined";
  variants[1].cfg.pipelined_operators = true;
  variants[2].label = "5/3 structural, flat";
  variants[2].cfg.adder_style = dwt::rtl::AdderStyle::kRippleGates;
  variants[3].label = "5/3 structural, pipelined";
  variants[3].cfg.adder_style = dwt::rtl::AdderStyle::kRippleGates;
  variants[3].cfg.pipelined_operators = true;

  for (const Variant& v : variants) {
    const auto dp = dwt::hw::build_lifting53_datapath(v.cfg);
    const auto opt = dwt::rtl::simplify(dp.netlist);
    const auto mapped = dwt::fpga::map_to_apex(opt);
    dwt::fpga::TimingAnalyzer sta(mapped,
                                  dwt::fpga::ApexDeviceParams::apex20ke());
    const auto timing = sta.analyze();
    std::printf("%-38s %8zu %12.1f %9d\n", v.label, mapped.le_count(),
                timing.fmax_mhz, dp.latency);
    json.add(v.label, "area", static_cast<double>(mapped.le_count()), "LEs");
    json.add(v.label, "fmax", timing.fmax_mhz, "MHz");
    json.add(v.label, "latency", dp.latency, "cycles");
  }

  dwt::explore::Explorer explorer;
  for (const auto id :
       {dwt::hw::DesignId::kDesign2, dwt::hw::DesignId::kDesign3}) {
    const auto eval = explorer.evaluate(dwt::hw::design_spec(id));
    std::printf("%-38s %8zu %12.1f %9d\n",
                (eval.spec.name + " (9/7)").c_str(),
                eval.report.logic_elements, eval.report.fmax_mhz,
                eval.info.latency);
    json.add(eval.spec.name + " (9/7)", "area",
             static_cast<double>(eval.report.logic_elements), "LEs");
    json.add(eval.spec.name + " (9/7)", "fmax", eval.report.fmax_mhz, "MHz");
    json.add(eval.spec.name + " (9/7)", "latency", eval.info.latency,
             "cycles");
  }
  std::printf(
      "\nA combined 5/3 + 9/7 codec (JPEG2000 lossless + lossy) adds only\n"
      "the small 5/3 datapath on top of the 9/7 core, as reference [6]\n"
      "exploits.\n");
  return json.exit_code();
}
