// Regenerates paper Table 1: the lifting coefficient constants as floating
// point values, integer-rounded n/256 ratios, and two's complement binary.
#include <cstdio>

#include "bench_json.hpp"
#include "dsp/lifting_coeffs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_table1_coefficients", argc, argv);
  std::printf("Table 1. Lifting coefficients constants.\n");
  std::printf("%-8s %16s %10s %14s\n", "Coeff", "Floating point",
              "Integer", "Binary (Q2.8)");
  for (const dwt::dsp::Table1Row& row : dwt::dsp::table1_rows()) {
    std::printf("%-8s %16.9f %7lld/256 %14s\n", row.name.c_str(),
                row.floating_value, static_cast<long long>(row.integer_rounded),
                row.binary.c_str());
    json.add(row.name, "floating_value", row.floating_value, "ratio");
    json.add(row.name, "integer_rounded",
             static_cast<double>(row.integer_rounded), "1/256");
  }
  std::printf(
      "\nPaper values: alpha -406, beta -14, gamma 226, delta 114, 1/k 208.\n"
      "For -k the paper's integer column prints -314 while its own binary\n"
      "column (10.11000101) encodes -315; correct rounding of\n"
      "-1.230174105*256 = -314.9 also gives -315, which this library uses.\n");
  return json.exit_code();
}
