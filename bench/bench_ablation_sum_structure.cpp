// Ablation: partial-product summation order.  The paper's figures 7/8 chain
// the adders sequentially; a balanced tree halves the pipelined latency at
// similar area.  Compares both schedules for designs 2-5.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "hw/designs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_ablation_sum_structure", argc, argv);
  dwt::explore::Explorer explorer;
  std::printf("Ablation: sequential (paper) vs balanced-tree summation.\n\n");
  std::printf("%-10s %-12s %8s %12s %14s %9s\n", "Design", "structure", "LEs",
              "fmax (MHz)", "P@15MHz (mW)", "latency");
  for (const auto id :
       {dwt::hw::DesignId::kDesign2, dwt::hw::DesignId::kDesign3,
        dwt::hw::DesignId::kDesign4, dwt::hw::DesignId::kDesign5}) {
    for (const auto structure :
         {dwt::rtl::SumStructure::kSequential, dwt::rtl::SumStructure::kTree}) {
      dwt::hw::DesignSpec spec = dwt::hw::design_spec(id);
      spec.config.sum_structure = structure;
      const auto eval = explorer.evaluate(spec);
      const char* sname = structure == dwt::rtl::SumStructure::kSequential
                              ? "sequential"
                              : "tree";
      std::printf("%-10s %-12s %8zu %12.1f %14.1f %9d\n", spec.name.c_str(),
                  sname, eval.report.logic_elements, eval.report.fmax_mhz,
                  eval.report.power_mw, eval.info.latency);
      const std::string scenario = spec.name + " " + sname;
      json.add(scenario, "area", static_cast<double>(eval.report.logic_elements),
               "LEs");
      json.add(scenario, "fmax", eval.report.fmax_mhz, "MHz");
      json.add(scenario, "power_at_15mhz", eval.report.power_mw, "mW");
      json.add(scenario, "latency", eval.info.latency, "cycles");
    }
  }
  std::printf(
      "\nTrees shorten the pipelined designs' latency (fewer stages, fewer\n"
      "shim registers) while the one-add-per-stage fmax stays similar: a\n"
      "cheap improvement over the paper's figure-8 schedule.\n");
  return json.exit_code();
}
