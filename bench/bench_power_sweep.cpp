// Section 4's in-text power points: design 2 at 40 MHz (paper: 626 mW),
// design 3 at 128 MHz (808 mW), design 5 at 95 MHz (476 mW), and design 5 vs
// design 3 at the same frequency (paper: ~15% lower).
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "explore/explorer.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_power_sweep", argc, argv);
  dwt::explore::Explorer explorer;
  const auto& device = explorer.options().device;
  const auto evals = explorer.evaluate_all();
  const auto& d2 = evals[1];
  const auto& d3 = evals[2];
  const auto& d5 = evals[4];

  struct Point {
    const char* label;
    const dwt::explore::DesignEvaluation* eval;
    double mhz;
    double paper_mw;
  };
  const Point points[] = {
      {"Design 2 @ 40 MHz", &d2, 40.0, 626.0},
      {"Design 3 @ 128 MHz", &d3, 128.0, 808.0},
      {"Design 5 @ 95 MHz", &d5, 95.0, 476.0},
  };
  std::printf("Section 4 power points (measured vs paper).\n\n");
  std::printf("%-22s %14s %12s\n", "Operating point", "power (mW)", "paper");
  for (const Point& p : points) {
    const double mw = p.eval->power_at(p.mhz, device).total_mw();
    std::printf("%-22s %14.1f %12.1f\n", p.label, mw, p.paper_mw);
    json.add(p.label, "power", mw, "mW");
    json.add(p.label, "paper_power", p.paper_mw, "mW");
  }

  std::printf("\nFrequency sweep (total mW):\n%-10s", "f (MHz)");
  for (const auto& e : evals) std::printf(" %10s", e.spec.name.c_str());
  std::printf("\n");
  for (const double f : {15.0, 25.0, 40.0, 60.0, 95.0, 128.0}) {
    std::printf("%-10.0f", f);
    for (const auto& e : evals) {
      const double mw = e.power_at(f, device).total_mw();
      std::printf(" %10.1f", mw);
      json.add(e.spec.name,
               "power_at_" + std::to_string(static_cast<int>(f)) + "mhz", mw,
               "mW");
    }
    std::printf("\n");
  }

  const double iso = d5.power_at(95.0, device).total_mw() /
                     d3.power_at(95.0, device).total_mw();
  std::printf(
      "\nDesign 5 vs design 3 at the same 95 MHz: %.0f%% %s (paper: 15%% "
      "less).\n",
      std::abs(1.0 - iso) * 100.0, iso < 1.0 ? "less" : "more");
  json.add("Design 5 vs 3 @ 95 MHz", "power_ratio", iso, "ratio");
  return json.exit_code();
}
