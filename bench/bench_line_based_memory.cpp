// Extension: memory requirements of the figure-4 full-frame system vs the
// line-based architecture of reference [6].  The transforms are bit
// identical; the difference is where coefficients live while the octave is
// in flight.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "hw/line_based_dwt2d.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_line_based_memory", argc, argv);
  std::printf("Extension: full-frame (figure 4) vs line-based (ref [6]) "
              "memory.\n\n");
  std::printf("%-12s %16s %18s %8s %10s\n", "tile", "frame (words)",
              "line-based (words)", "ratio", "bit-equal");
  for (const std::size_t n : {64u, 128u, 256u, 512u}) {
    dwt::dsp::Image img = dwt::dsp::make_still_tone_image(n, n, 7);
    dwt::dsp::level_shift_forward(img);
    dwt::dsp::round_coefficients(img);
    dwt::dsp::Image batch = img;
    const dwt::hw::LineBasedStats stats =
        dwt::hw::line_based_forward_octave(img);
    dwt::dsp::dwt2d_forward_octave(dwt::dsp::Method::kLiftingFixed, batch, n,
                                   n);
    const double ratio = static_cast<double>(stats.frame_memory_words) /
                         static_cast<double>(stats.line_buffer_words);
    std::printf("%4zux%-7zu %16zu %18zu %7.1fx %10s\n", n, n,
                stats.frame_memory_words, stats.line_buffer_words, ratio,
                img.data() == batch.data() ? "yes" : "NO");
    const std::string tile = std::to_string(n) + "x" + std::to_string(n);
    json.add(tile, "frame_memory",
             static_cast<double>(stats.frame_memory_words), "words");
    json.add(tile, "line_buffer",
             static_cast<double>(stats.line_buffer_words), "words");
    json.add(tile, "memory_ratio", ratio, "ratio");
    json.add(tile, "bit_equal", img.data() == batch.data() ? 1.0 : 0.0,
             "bool");
  }
  std::printf(
      "\nThe line-based organization replaces the W*H frame memory with ~7\n"
      "lines of on-chip buffer (two transformed rows + five state words per\n"
      "column engine), growing the advantage linearly with image height.\n");
  return json.exit_code();
}
