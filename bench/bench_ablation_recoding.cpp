// Ablation: partial-product recoding.  The paper uses plain two's complement
// binary with one shared-subexpression reuse; canonical signed digit (CSD)
// recoding needs fewer adders.  Measures area/fmax/power of design-2 and
// design-3 style datapaths under each recoding.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "hw/designs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_ablation_recoding", argc, argv);
  dwt::explore::Explorer explorer;
  std::printf("Ablation: shift-add recoding (binary vs reuse vs CSD).\n\n");
  std::printf("%-10s %-18s %8s %12s %14s\n", "Design", "recoding", "LEs",
              "fmax (MHz)", "P@15MHz (mW)");
  struct Mode {
    const char* label;
    dwt::rtl::Recoding recoding;
  };
  const Mode modes[] = {
      {"binary", dwt::rtl::Recoding::kBinary},
      {"binary+reuse", dwt::rtl::Recoding::kBinaryWithReuse},
      {"CSD", dwt::rtl::Recoding::kCsd},
  };
  for (const auto id : {dwt::hw::DesignId::kDesign2, dwt::hw::DesignId::kDesign3}) {
    for (const Mode& m : modes) {
      dwt::hw::DesignSpec spec = dwt::hw::design_spec(id);
      spec.config.recoding = m.recoding;
      spec.name = dwt::hw::design_spec(id).name;
      const auto eval = explorer.evaluate(spec);
      std::printf("%-10s %-18s %8zu %12.1f %14.1f\n", spec.name.c_str(),
                  m.label, eval.report.logic_elements, eval.report.fmax_mhz,
                  eval.report.power_mw);
      const std::string scenario = spec.name + " " + m.label;
      json.add(scenario, "area",
               static_cast<double>(eval.report.logic_elements), "LEs");
      json.add(scenario, "fmax", eval.report.fmax_mhz, "MHz");
      json.add(scenario, "power_at_15mhz", eval.report.power_mw, "mW");
    }
  }
  std::printf(
      "\nCSD reduces partial products (e.g. beta: 7 -> 2 terms), shrinking\n"
      "the non-pipelined design and shortening the pipelined schedule --\n"
      "an optimization the paper's plain-binary approach leaves on the\n"
      "table.\n");
  return json.exit_code();
}
