// Regenerates paper Table 3: area (LEs), maximum operating frequency, power
// at the 15 MHz reference, and pipeline stages for the five designs, through
// the full elaborate -> simplify -> map -> STA -> activity -> power flow.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "fpga/report.hpp"
#include "hw/designs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_table3_designs", argc, argv);
  dwt::explore::Explorer explorer;
  const auto evals = explorer.evaluate_all();
  const auto paper = dwt::hw::paper_table3();

  std::printf("Table 3. Implementation results (measured vs paper).\n\n");
  std::printf("%-10s | %10s %6s | %11s %6s | %12s %6s | %7s %5s\n", "Design",
              "LEs", "paper", "fmax (MHz)", "paper", "P@15MHz (mW)", "paper",
              "stages", "paper");
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const auto& r = evals[i].report;
    std::printf("%-10s | %10zu %6d | %11.1f %6.1f | %12.1f %6.1f | %7d %5d\n",
                r.name.c_str(), r.logic_elements, paper[i].area_les,
                r.fmax_mhz, paper[i].fmax_mhz, r.power_mw,
                paper[i].power_mw_15mhz, r.pipeline_stages,
                paper[i].pipeline_stages);
    json.add(r.name, "area", static_cast<double>(r.logic_elements), "LEs");
    json.add(r.name, "fmax", r.fmax_mhz, "MHz");
    json.add(r.name, "power_at_15mhz", r.power_mw, "mW");
    json.add(r.name, "pipeline_stages", r.pipeline_stages, "count");
    json.add(r.name, "paper_area", paper[i].area_les, "LEs");
    json.add(r.name, "paper_fmax", paper[i].fmax_mhz, "MHz");
    json.add(r.name, "paper_power_at_15mhz", paper[i].power_mw_15mhz, "mW");
  }

  std::printf("\nDiagnostics:\n");
  for (const auto& e : evals) {
    std::printf("  %s\n", e.report.to_string().c_str());
  }
  std::printf(
      "\nKnown deviations (EXPERIMENTS.md): our model charges design 4's\n"
      "extra LUT nets, so design 4 lands slightly below design 2 in fmax and\n"
      "above it in power -- the relation the paper itself called expected;\n"
      "the measured Quartus run showed the opposite surprise.  Pipelined\n"
      "latency is 28 stages vs the paper's 21 (balanced-schedule detail).\n");
  return json.exit_code();
}
