// Figure 8: the alpha multiplication stage with and without operator
// pipelining.  Builds both arithmetic-stage structures in isolation and
// reports the worst register-to-register delay: pipelining cuts the stage to
// roughly one adder.
#include <cstdio>

#include "bench_json.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/simplify.hpp"
#include "rtl/simulator.hpp"
#include "rtl/stats.hpp"

namespace {

struct StageResult {
  double critical_ns;
  double fmax_mhz;
  std::size_t les;
  int latency;
};

StageResult build_alpha_stage(bool pipelined, dwt::rtl::AdderStyle style) {
  using namespace dwt::rtl;
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, pipelined);
  // Figure 8 inputs: registered r0, r2 (even samples) and r3 (odd sample).
  const Word r0 = p.stage(word_input(nl, "r0", 8), "rr0");
  const Word r2 = p.stage(word_input(nl, "r2", 8), "rr2");
  Word r3 = p.stage(word_input(nl, "r3", 8), "rr3");
  Word pre = word_add(p, r0, r2, style, "pre");
  const ShiftAddPlan plan = make_shiftadd_plan(-406, Recoding::kBinaryWithReuse);
  Word prod = shiftadd_multiply(p, pre, plan, style,
                                SumStructure::kSequential, "alpha");
  Word shifted = word_asr(b, prod, 8);
  Word out = word_add(p, r3, shifted, style, "post");
  if (!pipelined) out = p.stage(out, "r_out");
  nl.bind_output("out", out.bus);

  const Netlist opt = simplify(nl);
  const auto mapped = dwt::fpga::map_to_apex(opt);
  dwt::fpga::TimingAnalyzer sta(mapped,
                                dwt::fpga::ApexDeviceParams::apex20ke());
  const auto t = sta.analyze();
  return {t.critical_path_ns, t.fmax_mhz, mapped.le_count(), out.depth};
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_fig8_stage_pipelining", argc, argv);
  std::printf("Figure 8. Arithmetic stage structure of the alpha "
              "multiplication.\n\n");
  std::printf("%-44s %10s %10s %8s %8s\n", "Variant", "crit (ns)",
              "fmax (MHz)", "LEs", "stages");
  struct Case {
    const char* label;
    bool pipelined;
    dwt::rtl::AdderStyle style;
  };
  const Case cases[] = {
      {"(a) combinational stage, behavioral", false,
       dwt::rtl::AdderStyle::kCarryChain},
      {"(b) one add per pipeline stage, behavioral", true,
       dwt::rtl::AdderStyle::kCarryChain},
      {"(a) combinational stage, structural", false,
       dwt::rtl::AdderStyle::kRippleGates},
      {"(b) one add per pipeline stage, structural", true,
       dwt::rtl::AdderStyle::kRippleGates},
  };
  double flat_ns = 0, piped_ns = 0;
  for (const Case& c : cases) {
    const StageResult r = build_alpha_stage(c.pipelined, c.style);
    std::printf("%-44s %10.2f %10.1f %8zu %8d\n", c.label, r.critical_ns,
                r.fmax_mhz, r.les, r.latency);
    json.add(c.label, "critical_path", r.critical_ns, "ns");
    json.add(c.label, "fmax", r.fmax_mhz, "MHz");
    json.add(c.label, "area", static_cast<double>(r.les), "LEs");
    json.add(c.label, "stages", r.latency, "count");
    if (!c.pipelined && c.style == dwt::rtl::AdderStyle::kCarryChain) {
      flat_ns = r.critical_ns;
    }
    if (c.pipelined && c.style == dwt::rtl::AdderStyle::kCarryChain) {
      piped_ns = r.critical_ns;
    }
  }
  std::printf("\nPipelining the behavioral alpha stage shortens the critical "
              "path %.1fx\n(\"reduces the worst delay path between "
              "registers\", section 3.3).\n",
              flat_ns / piped_ns);
  json.add("behavioral alpha stage", "pipelining_speedup", flat_ns / piped_ns,
           "ratio");
  return json.exit_code();
}
