// Gate-level simulation throughput: interpreted rtl::Simulator vs the
// compiled bit-parallel engine (rtl/compiled), across the full tape
// optimization x lane-width matrix, in stimulus vectors per second on all
// five Table 3 designs.  One "vector" is one clock cycle of fresh
// randomized primary inputs; a compiled tape pass advances 64*W vectors
// (W = 1, 2 or 4 state words per slot).
//
// Besides the throughput matrix the bench reports the optimizer's
// per-level instruction counts and reductions, the execution-tier matrix
// (switch interpreter vs threaded dispatch vs native x86-64 block over a
// precomputed stimulus ring, per level and lane width), and the
// fault-campaign throughput of the 64-lane seed path vs the 256-lane wide
// path on the smoke workload (the acceptance metric for the wide engine).
//
// `--smoke` runs a fast pass and enforces the CI gates: every optimization
// level must stay differentially equivalent to the interpreted engine, the
// optimized tape must not be slower than the raw one, and (on hosts where
// the emitter runs) the native tier must clear 3x the switch interpreter
// at o2/256 lanes.  `--json <path>` emits the bench/schema.md record set
// (identical record keys in smoke and full modes, so baselines diff
// cleanly).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "core/artifact_cache.hpp"
#include "explore/resilience.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/equivalence.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/native_block.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/compiled/wide_simulator.hpp"
#include "rtl/simulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using dwt::rtl::compiled::OptLevel;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One cycle of interpreted simulation with fresh random inputs; returns a
// checksum so the work cannot be optimized away.
std::int64_t interpreted_vectors_per_sec(const dwt::hw::BuiltDatapath& dp,
                                         std::uint64_t cycles,
                                         std::uint64_t seed, double* vps) {
  dwt::rtl::Simulator sim(dp.netlist);
  dwt::common::Rng rng(seed);
  std::int64_t checksum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    sim.set_bus(dp.in_even, rng.uniform(-128, 127));
    sim.set_bus(dp.in_odd, rng.uniform(-128, 127));
    sim.step();
    checksum += sim.read_bus(dp.out_low) ^ sim.read_bus(dp.out_high);
  }
  *vps = static_cast<double>(cycles) / seconds_since(t0);
  return checksum;
}

// Same workload on the wide compiled engine: 64*W independent vector
// streams per pass, each lane drawing its own stimulus.
template <unsigned W>
std::int64_t wide_vectors_per_sec(
    const std::shared_ptr<const dwt::rtl::compiled::Tape>& tape,
    const dwt::hw::BuiltDatapath& dp, std::uint64_t cycles,
    std::uint64_t seed, double* vps) {
  using Sim = dwt::rtl::compiled::WideSimulator<W>;
  Sim sim(tape);
  dwt::common::Rng rng(seed);
  std::int64_t checksum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (unsigned lane = 0; lane < Sim::kTotalLanes; ++lane) {
      sim.set_bus(dp.in_even, lane, rng.uniform(-128, 127));
      sim.set_bus(dp.in_odd, lane, rng.uniform(-128, 127));
    }
    sim.step();
    checksum += sim.read_bus(dp.out_low, 0) ^
                sim.read_bus(dp.out_high, Sim::kTotalLanes - 1);
  }
  *vps = static_cast<double>(cycles * Sim::kTotalLanes) / seconds_since(t0);
  return checksum;
}

// Execution-tier probe: same tape, same stimulus, different tape walker.
// Stimulus comes from a precomputed ring of input frames so the timed loop
// is set_input_block + step() -- per-lane random generation costs more
// than an optimized tape pass and would otherwise time the RNG, hiding the
// tier difference the record exists to measure.
template <unsigned W>
std::int64_t tier_vectors_per_sec(
    const std::shared_ptr<const dwt::rtl::compiled::Tape>& tape,
    const dwt::hw::BuiltDatapath& dp, dwt::rtl::compiled::ExecTier tier,
    std::uint64_t cycles, std::uint64_t seed, double* vps) {
  using Sim = dwt::rtl::compiled::WideSimulator<W>;
  using Block = dwt::rtl::compiled::LaneBlock<W>;
  Sim sim(tape);
  sim.set_exec_tier(tier);
  const std::vector<dwt::rtl::NetId>& pis = dp.netlist.primary_inputs();
  constexpr std::size_t kRing = 16;
  std::vector<std::vector<Block>> ring(kRing);
  dwt::common::Rng rng(seed);
  for (auto& frame : ring) {
    frame.resize(pis.size());
    for (Block& b : frame) {
      for (unsigned k = 0; k < W; ++k) b.w[k] = rng.next_u64();
    }
  }
  std::int64_t checksum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    const std::vector<Block>& frame = ring[c % kRing];
    for (std::size_t i = 0; i < pis.size(); ++i) {
      sim.set_input_block(pis[i], frame[i]);
    }
    sim.step();
    checksum += sim.read_bus(dp.out_low, 0) ^
                sim.read_bus(dp.out_high, Sim::kTotalLanes - 1);
  }
  *vps = static_cast<double>(cycles * Sim::kTotalLanes) / seconds_since(t0);
  return checksum;
}

// Thread-pool shard: each worker owns a simulator over the shared tape and
// runs an independent stream; aggregate vectors/s is measured over the
// slowest worker (wall clock of the join).
void threaded_vectors_per_sec(
    const std::shared_ptr<const dwt::rtl::compiled::Tape>& tape,
    const dwt::hw::BuiltDatapath& dp, std::uint64_t cycles,
    std::uint64_t seed, unsigned threads, double* vps) {
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      double ignored = 0.0;
      wide_vectors_per_sec<4>(tape, dp, cycles, seed + t, &ignored);
    });
  }
  for (auto& th : pool) th.join();
  *vps = static_cast<double>(cycles * 256 * threads) / seconds_since(t0);
}

/// Trials/s of one compiled fault campaign at the given lane count (all
/// shared artifacts are pre-built by the caller, so this times the batched
/// simulation itself).
double campaign_trials_per_sec(unsigned lanes, OptLevel level,
                               std::size_t trials, std::size_t samples) {
  dwt::explore::ResilienceOptions opt;
  opt.design = dwt::hw::DesignId::kDesign3;
  opt.kinds = {dwt::rtl::FaultKind::kSeuFlip, dwt::rtl::FaultKind::kStuckAt0};
  opt.trials = trials;
  opt.samples = samples;
  opt.seed = 42;
  opt.keep_trials = false;
  opt.threads = 1;  // time the lane packing, not the thread pool
  opt.lanes = lanes;
  opt.opt_level = level;
  const auto t0 = Clock::now();
  const dwt::explore::CampaignResult r = dwt::explore::run_campaign(opt);
  const double dt = seconds_since(t0);
  return static_cast<double>(r.trials_run) / dt;
}

const char* level_tag(OptLevel level) {
  switch (level) {
    case OptLevel::kNone: return "o0";
    case OptLevel::kSafe: return "o1";
    case OptLevel::kFull: return "o2";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_compiled_sim_throughput", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t interp_cycles = smoke ? 64 : 4096;
  const std::uint64_t compiled_cycles = smoke ? 48 : 1024;
  const std::uint64_t tier_cycles = smoke ? 256 : 2048;
  const std::uint64_t equiv_cycles = smoke ? 24 : 48;
  // Even smoke mode needs a few thousand trials: at ~10^5 trials/s a
  // 256-trial campaign is a millisecond -- pure timer noise.
  const std::size_t campaign_trials = smoke ? 4096 : 16384;
  const std::size_t campaign_samples = smoke ? 32 : 64;
  unsigned threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  constexpr OptLevel kLevels[] = {OptLevel::kNone, OptLevel::kSafe,
                                  OptLevel::kFull};

  std::printf(
      "Gate-level simulation throughput: interpreted vs compiled engine\n"
      "across tape optimization levels and lane widths%s.\n\n",
      smoke ? " (smoke)" : "");

  bool all_ok = true;
  bool perf_ok = true;
  double native_speedup_logsum = 0.0;  // per-design o2/l256 native-vs-switch
  dwt::core::ArtifactCache& cache = dwt::core::ArtifactCache::instance();
  for (const dwt::hw::DesignSpec& spec : dwt::hw::all_designs()) {
    const dwt::hw::BuiltDatapath& dp = cache.design(spec.config)->dp;

    // Differential gate: every optimization level must match the
    // interpreted engine before its throughput means anything.
    for (const OptLevel level : kLevels) {
      const auto report = dwt::rtl::compiled::check_equivalence(
          dp.netlist, equiv_cycles, /*seed=*/2005, /*lanes_to_check=*/2,
          level);
      if (!report.ok) {
        all_ok = false;
        std::printf("%-10s %s MISMATCH: %s\n", spec.name.c_str(),
                    level_tag(level), report.mismatch.c_str());
      }
    }
    if (!all_ok) continue;

    double interp_vps = 0.0;
    interpreted_vectors_per_sec(dp, interp_cycles, /*seed=*/7, &interp_vps);
    json.add(spec.name, "interpreted_throughput", interp_vps, "vectors/s");

    const std::size_t raw_instrs =
        cache.tape(spec.config)->instrs().size();
    double vps_o0_l64 = 0.0;
    double vps_max = 0.0;
    double vps_opt_l64 = 0.0;  // max-opt tape at the seed 64-lane width
    std::printf("%-10s  interp %10.0f vec/s   (%zu raw instrs)\n",
                spec.name.c_str(), interp_vps, raw_instrs);
    for (const OptLevel level : kLevels) {
      const auto tape =
          cache.tape(spec.config, dwt::rtl::HardeningStyle::kNone, level);
      const std::string tag = level_tag(level);
      const std::size_t instrs = tape->instrs().size();
      json.add(spec.name, "tape_instructions_" + tag,
               static_cast<double>(instrs), "count");
      if (level != OptLevel::kNone) {
        json.add(spec.name, "instr_reduction_" + tag,
                 1.0 - static_cast<double>(instrs) /
                           static_cast<double>(raw_instrs),
                 "ratio");
      }
      for (const unsigned width : {1u, 2u, 4u}) {
        double vps = 0.0;
        switch (width) {
          case 1:
            wide_vectors_per_sec<1>(tape, dp, compiled_cycles, 7, &vps);
            break;
          case 2:
            wide_vectors_per_sec<2>(tape, dp, compiled_cycles, 7, &vps);
            break;
          default:
            wide_vectors_per_sec<4>(tape, dp, compiled_cycles, 7, &vps);
            break;
        }
        const unsigned lanes = 64 * width;
        json.add(spec.name,
                 "compiled_throughput_" + tag + "_l" + std::to_string(lanes),
                 vps, "vectors/s");
        std::printf("  %s l%-3u  %10.0f vec/s  %5zu instrs  %6.1fx interp\n",
                    tag.c_str(), lanes, vps, instrs, vps / interp_vps);
        if (level == OptLevel::kNone && width == 1) vps_o0_l64 = vps;
        if (level == OptLevel::kFull && width == 1) vps_opt_l64 = vps;
        if (vps > vps_max) vps_max = vps;
      }
    }
    json.add(spec.name, "compiled_speedup", vps_max / interp_vps, "ratio");

    // Execution-tier matrix: the same tape walked by the switch
    // interpreter, the threaded-dispatch interpreter, and the native
    // x86-64 block, per (level, width), over the stimulus-ring harness.
    // On hosts without the emitter the native point demotes to threaded
    // (the production fallback) and the records document that.
    using dwt::rtl::compiled::ExecTier;
    constexpr ExecTier kTiers[] = {ExecTier::kSwitch, ExecTier::kThreaded,
                                   ExecTier::kNative};
    double gate_switch = 0.0;  // o2/l256 switch interpreter, best of reps
    double gate_native = 0.0;  // o2/l256 native tier, best of reps
    for (const OptLevel level : kLevels) {
      const auto tape =
          cache.tape(spec.config, dwt::rtl::HardeningStyle::kNone, level);
      const std::string tag = level_tag(level);
      for (const unsigned width : {1u, 4u}) {
        for (const ExecTier tier : kTiers) {
          // The o2/l256 gate points get best-of-3: one descheduled slice
          // must not decide a 3x acceptance ratio.
          const bool gate_point = level == OptLevel::kFull && width == 4 &&
                                  tier != ExecTier::kThreaded;
          double best = 0.0;
          for (int rep = 0; rep < (gate_point ? 3 : 1); ++rep) {
            double vps = 0.0;
            if (width == 1) {
              tier_vectors_per_sec<1>(tape, dp, tier, tier_cycles, 7, &vps);
            } else {
              tier_vectors_per_sec<4>(tape, dp, tier, tier_cycles, 7, &vps);
            }
            best = std::max(best, vps);
          }
          const unsigned lanes = 64 * width;
          json.add(spec.name,
                   "exec_" + std::string(to_string(tier)) + "_" + tag + "_l" +
                       std::to_string(lanes),
                   best, "vectors/s");
          std::printf("  %s %-11s l%-3u  %12.0f vec/s\n", tag.c_str(),
                      to_string(tier), lanes, best);
          if (gate_point && tier == ExecTier::kSwitch) gate_switch = best;
          if (gate_point && tier == ExecTier::kNative) gate_native = best;
        }
      }
    }
    json.add(spec.name, "native_speedup_o2_l256", gate_native / gate_switch,
             "ratio");
    native_speedup_logsum += std::log(gate_native / gate_switch);
    const auto native_block = cache.native_block(
        spec.config, dwt::rtl::HardeningStyle::kNone, OptLevel::kFull, 4);
    json.add(spec.name, "native_code_bytes",
             native_block ? static_cast<double>(native_block->code_size())
                          : 0.0,
             "count");

    double threaded_vps = 0.0;
    threaded_vectors_per_sec(
        cache.tape(spec.config, dwt::rtl::HardeningStyle::kNone,
                   OptLevel::kFull),
        dp, compiled_cycles, /*seed=*/7, threads, &threaded_vps);
    json.add(spec.name, "threaded_throughput", threaded_vps, "vectors/s");

    // CI gate (smoke): with half to a quarter of the instructions, the
    // optimized tape must not run slower than the raw one at equal width.
    if (smoke && vps_opt_l64 < 0.95 * vps_o0_l64) {
      all_ok = false;
      std::printf("%-10s optimized tape SLOWER: O2 %.0f vec/s < O0 %.0f\n",
                  spec.name.c_str(), vps_opt_l64, vps_o0_l64);
    }
  }

  // Fault-campaign throughput: the seed engine (64 lanes on the raw tape --
  // exactly what campaigns ran before the optimizer and wide lanes existed)
  // vs today's default (256 lanes on the overlay-safe tape), same workload,
  // artifacts pre-warmed so no tape build lands in a timed window.
  {
    const dwt::hw::DesignSpec spec = dwt::hw::design_spec(
        dwt::hw::DesignId::kDesign3);
    (void)cache.mapped(spec.config);
    (void)cache.tape(spec.config, dwt::rtl::HardeningStyle::kNone,
                     OptLevel::kNone);
    (void)cache.tape(spec.config, dwt::rtl::HardeningStyle::kNone,
                     OptLevel::kSafe);
    // Best-of-3 per point: campaigns share the host with whatever else is
    // running, and one descheduled slice would otherwise decide the ratio.
    double tps64 = 0.0;
    double tps256 = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      tps64 = std::max(tps64, campaign_trials_per_sec(
          64, OptLevel::kNone, campaign_trials, campaign_samples));
      tps256 = std::max(tps256, campaign_trials_per_sec(
          256, OptLevel::kSafe, campaign_trials, campaign_samples));
    }
    json.add("Design 3", "campaign_throughput_l64", tps64, "trials/s");
    json.add("Design 3", "campaign_throughput_l256", tps256, "trials/s");
    json.add("Design 3", "campaign_speedup_256_vs_64", tps256 / tps64,
             "ratio");
    std::printf(
        "\nFault campaign (Design 3): %.0f trials/s seed engine (64 lanes, "
        "raw tape),\n%.0f default engine (256 lanes, o1 tape): %.2fx\n",
        tps64, tps256, tps256 / tps64);
  }

  // ISSUE acceptance gate: across the five-design matrix the native tier
  // must clear 3x the switch interpreter at o2/256 lanes, measured as the
  // geometric mean of the per-design ratios (the deeply pipelined Design 3
  // is edge-copy-dominated and individually sits below its peers; every
  // per-design ratio is still a published record).  Skipped when
  // DWT_EXEC_TIER forces a portable tier -- the records then measure the
  // forced tier -- or the host has no emitter.
  const double native_speedup_geomean =
      std::exp(native_speedup_logsum / 5.0);
  json.add("all designs", "native_speedup_geomean_o2_l256",
           native_speedup_geomean, "ratio");
  const bool native_live =
      dwt::rtl::compiled::resolve_exec_tier(
          dwt::rtl::compiled::ExecTier::kNative, 4) ==
      dwt::rtl::compiled::ExecTier::kNative;
  std::printf("\nNative tier o2/l256 speedup over the switch interpreter: "
              "%.2fx geomean%s\n",
              native_speedup_geomean,
              native_live ? "" : " (native demoted: portable tier forced)");
  if (smoke && native_live && native_speedup_geomean < 3.0) {
    perf_ok = false;
    std::printf("native tier BELOW 3x geomean across the design matrix\n");
  }

  std::printf(
      "\nOne compiled tape pass advances 64*W packed vectors; the optimizer\n"
      "shrinks the tape itself (constant folding, dead-slot elimination,\n"
      "full-adder fusion), so the two axes multiply.  Wall-clock numbers\n"
      "vary by host; instruction counts and reductions are deterministic.\n");
  // Flush the record file before gating: a failed smoke run should still
  // leave its measurements on disk for inspection.
  const int json_rc = json.exit_code();
  if (!all_ok || !perf_ok) {
    std::fprintf(stderr, "compiled-engine smoke gate FAILED\n");
    return 1;
  }
  return json_rc;
}
