// Gate-level simulation throughput: interpreted rtl::Simulator vs the
// compiled bit-parallel engine (rtl/compiled), single-threaded and sharded
// across a thread pool, in stimulus vectors per second on all five Table 3
// designs.  One "vector" is one clock cycle of fresh randomized primary
// inputs; the compiled engine advances 64 vectors per tape pass.
//
// `--smoke` runs a fast correctness pass (differential equivalence of the
// compiled tape against the interpreted engine on every design) plus a tiny
// measurement loop -- the CI entry point.  `--json <path>` emits the
// bench/schema.md record set.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "core/artifact_cache.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/compiled/equivalence.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/simulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One cycle of interpreted simulation with fresh random inputs; returns a
// checksum so the work cannot be optimized away.
std::int64_t interpreted_vectors_per_sec(const dwt::hw::BuiltDatapath& dp,
                                         std::uint64_t cycles,
                                         std::uint64_t seed, double* vps) {
  dwt::rtl::Simulator sim(dp.netlist);
  dwt::common::Rng rng(seed);
  std::int64_t checksum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    sim.set_bus(dp.in_even, rng.uniform(-128, 127));
    sim.set_bus(dp.in_odd, rng.uniform(-128, 127));
    sim.step();
    checksum += sim.read_bus(dp.out_low) ^ sim.read_bus(dp.out_high);
  }
  *vps = static_cast<double>(cycles) / seconds_since(t0);
  return checksum;
}

// Same workload on the compiled engine: 64 independent vector streams per
// pass, each lane drawing its own stimulus.
std::int64_t compiled_vectors_per_sec(
    const std::shared_ptr<const dwt::rtl::compiled::Tape>& tape,
    const dwt::hw::BuiltDatapath& dp, std::uint64_t cycles,
    std::uint64_t seed, double* vps) {
  dwt::rtl::compiled::CompiledSimulator sim(tape);
  dwt::common::Rng rng(seed);
  std::int64_t checksum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (unsigned lane = 0; lane < dwt::rtl::compiled::kLanes; ++lane) {
      sim.set_bus(dp.in_even, lane, rng.uniform(-128, 127));
      sim.set_bus(dp.in_odd, lane, rng.uniform(-128, 127));
    }
    sim.step();
    checksum += sim.read_bus(dp.out_low, 0) ^ sim.read_bus(dp.out_high, 63);
  }
  *vps = static_cast<double>(cycles * dwt::rtl::compiled::kLanes) /
         seconds_since(t0);
  return checksum;
}

// Thread-pool shard: each worker owns a CompiledSimulator over the shared
// tape and runs an independent stream; aggregate vectors/s is measured over
// the slowest worker (wall clock of the join).
void threaded_vectors_per_sec(
    const std::shared_ptr<const dwt::rtl::compiled::Tape>& tape,
    const dwt::hw::BuiltDatapath& dp, std::uint64_t cycles,
    std::uint64_t seed, unsigned threads, double* vps) {
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      double ignored = 0.0;
      compiled_vectors_per_sec(tape, dp, cycles, seed + t, &ignored);
    });
  }
  for (auto& th : pool) th.join();
  *vps = static_cast<double>(cycles * dwt::rtl::compiled::kLanes * threads) /
         seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_compiled_sim_throughput", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t interp_cycles = smoke ? 64 : 4096;
  const std::uint64_t compiled_cycles = smoke ? 64 : 4096;
  const std::uint64_t equiv_cycles = smoke ? 24 : 48;
  unsigned threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  std::printf("Gate-level simulation throughput: interpreted vs compiled "
              "bit-parallel engine%s.\n\n", smoke ? " (smoke)" : "");
  std::printf("%-10s %8s %16s %16s %16s %9s\n", "Design", "equiv",
              "interp (vec/s)", "compiled (vec/s)",
              ("x" + std::to_string(threads) + " thr (vec/s)").c_str(),
              "speedup");

  bool all_ok = true;
  dwt::core::ArtifactCache& cache = dwt::core::ArtifactCache::instance();
  for (const dwt::hw::DesignSpec& spec : dwt::hw::all_designs()) {
    const dwt::hw::BuiltDatapath& dp = cache.design(spec.config)->dp;
    const auto report = dwt::rtl::compiled::check_equivalence(
        dp.netlist, equiv_cycles, /*seed=*/2005, /*lanes_to_check=*/2);
    if (!report.ok) {
      all_ok = false;
      std::printf("%-10s MISMATCH: %s\n", spec.name.c_str(),
                  report.mismatch.c_str());
      continue;
    }

    const auto tape = cache.tape(spec.config);
    double interp_vps = 0.0, compiled_vps = 0.0, threaded_vps = 0.0;
    interpreted_vectors_per_sec(dp, interp_cycles, /*seed=*/7, &interp_vps);
    compiled_vectors_per_sec(tape, dp, compiled_cycles, /*seed=*/7,
                             &compiled_vps);
    threaded_vectors_per_sec(tape, dp, compiled_cycles, /*seed=*/7, threads,
                             &threaded_vps);
    const double speedup = compiled_vps / interp_vps;
    std::printf("%-10s %8s %16.0f %16.0f %16.0f %8.1fx\n", spec.name.c_str(),
                "ok", interp_vps, compiled_vps, threaded_vps, speedup);
    json.add(spec.name, "interpreted_throughput", interp_vps, "vectors/s");
    json.add(spec.name, "compiled_throughput", compiled_vps, "vectors/s");
    json.add(spec.name, "threaded_throughput", threaded_vps, "vectors/s");
    json.add(spec.name, "compiled_speedup", speedup, "ratio");
    json.add(spec.name, "tape_instructions",
             static_cast<double>(tape->instrs().size()), "count");
  }

  std::printf(
      "\nOne compiled tape pass advances 64 packed vectors, so the compiled\n"
      "engine's advantage tracks the word width; threads shard further\n"
      "(independent simulators over one shared tape).  Wall-clock numbers\n"
      "vary by host; the equivalence column is deterministic.\n");
  if (!all_ok) {
    std::fprintf(stderr, "equivalence check FAILED\n");
    return 1;
  }
  return json.exit_code();
}
