// Figure 4: the 2D-DWT system (1D core + memory + memory control).  Runs the
// cycle-accurate system model over image tiles and reports cycle counts and
// wall-clock transform time at each design's maximum operating frequency.
#include <cstdio>

#include "bench_json.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "explore/explorer.hpp"
#include "hw/dwt2d_system.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_fig4_system", argc, argv);
  std::printf("Figure 4. 2D-DWT system: cycle accounting per design.\n\n");
  dwt::explore::Explorer explorer;

  const std::size_t tile = 64;
  const int octaves = 1;
  std::printf("Transforming a %zux%zu tile, %d octave(s):\n\n", tile, tile,
              octaves);
  std::printf("%-10s %12s %12s %12s %14s\n", "Design", "line passes",
              "cycles", "fmax (MHz)", "time (ms)");
  for (const dwt::hw::DesignSpec& spec : dwt::hw::all_designs()) {
    dwt::dsp::Image img = dwt::dsp::make_still_tone_image(tile, tile, 7);
    dwt::dsp::level_shift_forward(img);
    dwt::dsp::round_coefficients(img);
    dwt::hw::Dwt2dSystem system(spec.id);
    const dwt::hw::Dwt2dRunStats stats = system.transform(img, octaves);
    const auto eval = explorer.evaluate(spec);
    std::printf("%-10s %12llu %12llu %12.1f %14.3f\n", spec.name.c_str(),
                static_cast<unsigned long long>(stats.line_passes),
                static_cast<unsigned long long>(stats.total_cycles),
                eval.report.fmax_mhz,
                stats.milliseconds_at(eval.report.fmax_mhz));
    json.add(spec.name, "line_passes",
             static_cast<double>(stats.line_passes), "count");
    json.add(spec.name, "total_cycles",
             static_cast<double>(stats.total_cycles), "cycles");
    json.add(spec.name, "fmax", eval.report.fmax_mhz, "MHz");
    json.add(spec.name, "tile_time",
             stats.milliseconds_at(eval.report.fmax_mhz), "ms");
  }
  std::printf(
      "\nThe pipelined designs pay a longer per-line flush but finish the\n"
      "tile fastest thanks to their higher clock -- the throughput argument\n"
      "of the paper's conclusions.\n");
  return json.exit_code();
}
