// Where the parallel-prefix adder architectures shift the area/f_max
// frontier.  Two sweeps:
//
//  1. Standalone adders: every AdderArch x operand width, as a
//     register-adder-register netlist through simplify -> APEX map -> STA,
//     with the closed-form adder_critical_path_ns() model alongside.  The
//     chain styles pay O(width) on the critical path, the prefix networks
//     O(log width), so the frontier crosses as width grows; the bench gates
//     that at 16 bits (the paper's internal precision) at least one prefix
//     architecture beats ripple-gates f_max.
//
//  2. Datapaths: the five paper designs plus the (design x adder) variant
//     points through the full Explorer flow (elaborate -> simplify -> map ->
//     STA -> activity -> power), projected onto the (area, period, power)
//     trade-off space with the Pareto front marked.
//
// Every record is model-derived and deterministic, so the committed
// baseline (bench/BENCH_adder_frontier.json) pins the whole document
// byte-for-byte across machines.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "hw/designs.hpp"
#include "rtl/adder_arch.hpp"
#include "rtl/builder.hpp"
#include "rtl/netlist.hpp"
#include "rtl/simplify.hpp"

namespace {

struct AdderPoint {
  dwt::rtl::AdderArch arch;
  int width;
  std::size_t les = 0;
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
  double model_path_ns = 0.0;
};

/// One standalone adder as a register-to-register netlist: FF -> adder ->
/// FF, so the STA critical path isolates exactly clk-to-q + adder + setup.
AdderPoint measure_adder(dwt::rtl::AdderArch arch, int width,
                         const dwt::fpga::ApexDeviceParams& params) {
  dwt::rtl::Netlist nl;
  dwt::rtl::Builder b(nl);
  const dwt::rtl::Bus a = nl.add_input_bus("a", width);
  const dwt::rtl::Bus bb = nl.add_input_bus("b", width);
  const dwt::rtl::Bus ra = b.reg(a, "ra");
  const dwt::rtl::Bus rb = b.reg(bb, "rb");
  const dwt::rtl::Bus sum = b.add(ra, rb, arch, width + 1, "s");
  const dwt::rtl::Bus rs = b.reg(sum, "rs");
  nl.bind_output("y", rs);
  nl.validate();

  const dwt::rtl::Netlist simplified = dwt::rtl::simplify(nl);
  const dwt::fpga::MappedNetlist mapped = dwt::fpga::map_to_apex(simplified);
  dwt::fpga::TimingAnalyzer sta(mapped, params);
  const dwt::fpga::TimingReport timing = sta.analyze();

  AdderPoint p;
  p.arch = arch;
  p.width = width;
  p.les = mapped.le_count();
  p.critical_path_ns = timing.critical_path_ns;
  p.fmax_mhz = timing.fmax_mhz;
  p.model_path_ns = dwt::fpga::adder_critical_path_ns(arch, width, params);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_adder_frontier", argc, argv);
  const dwt::fpga::ApexDeviceParams params =
      dwt::fpga::ApexDeviceParams::apex20ke();

  // --- Sweep 1: standalone adders across the width axis. -------------------
  const std::vector<int> widths = {8, 16, 32};
  std::printf("Standalone adder frontier (register-adder-register, STA).\n\n");
  std::printf("%-13s %5s | %5s %8s %10s | %9s\n", "architecture", "width",
              "LEs", "path(ns)", "fmax(MHz)", "model(ns)");
  double ripple_fmax_w16 = 0.0;
  double best_prefix_fmax_w16 = 0.0;
  const char* best_prefix_name_w16 = "";
  for (const int width : widths) {
    for (const dwt::rtl::AdderArch arch : dwt::rtl::all_adder_archs()) {
      const AdderPoint p = measure_adder(arch, width, params);
      const std::string label =
          std::string(dwt::rtl::adder_name(arch)) + " w" +
          std::to_string(width);
      std::printf("%-13s %5d | %5zu %8.2f %10.1f | %9.2f\n",
                  dwt::rtl::adder_name(arch), width, p.les,
                  p.critical_path_ns, p.fmax_mhz, p.model_path_ns);
      json.add(label, "adder_les", static_cast<double>(p.les), "LEs");
      json.add(label, "adder_critical_path_ns", p.critical_path_ns, "ns");
      json.add(label, "adder_fmax", p.fmax_mhz, "MHz");
      json.add(label, "adder_model_path_ns", p.model_path_ns, "ns");
      if (width == 16) {
        if (arch == dwt::rtl::AdderArch::kRippleGates) {
          ripple_fmax_w16 = p.fmax_mhz;
        } else if (dwt::rtl::is_parallel_prefix(arch) &&
                   p.fmax_mhz > best_prefix_fmax_w16) {
          best_prefix_fmax_w16 = p.fmax_mhz;
          best_prefix_name_w16 = dwt::rtl::adder_name(arch);
        }
      }
    }
    std::printf("\n");
  }

  // The frontier gate: at the paper's 16-bit internal precision, the prefix
  // family must beat the ripple-gates realization on the timing model.
  const double prefix_over_ripple = best_prefix_fmax_w16 / ripple_fmax_w16;
  std::printf("best prefix @16 bits: %s, %.2fx ripple-gates f_max\n\n",
              best_prefix_name_w16, prefix_over_ripple);
  json.add("frontier", "prefix_fmax_over_ripple_w16", prefix_over_ripple,
           "ratio");

  // --- Sweep 2: (design x adder) datapath trade-off space. -----------------
  const dwt::explore::Explorer explorer;
  std::vector<dwt::explore::DesignEvaluation> evals = explorer.evaluate_all();
  {
    std::vector<dwt::explore::DesignEvaluation> variants =
        explorer.evaluate_adder_variants();
    for (auto& e : variants) evals.push_back(std::move(e));
  }

  std::vector<dwt::explore::TradeoffPoint> points;
  points.reserve(evals.size());
  for (const auto& e : evals) {
    dwt::explore::TradeoffPoint tp;
    tp.name = e.report.name;
    tp.area_les = static_cast<double>(e.report.logic_elements);
    tp.period_ns = 1000.0 / e.report.fmax_mhz;
    tp.power_mw = e.report.power_mw;
    points.push_back(tp);
  }
  const std::vector<std::size_t> front = dwt::explore::pareto_front(points);
  const auto on_front = [&front](std::size_t i) {
    return std::find(front.begin(), front.end(), i) != front.end();
  };

  std::printf("(design x adder) trade-off sweep, Pareto front marked.\n\n");
  std::printf("%-26s | %8s %10s %12s | %6s\n", "design point", "LEs",
              "fmax(MHz)", "P@15MHz(mW)", "front");
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const auto& r = evals[i].report;
    std::printf("%-26s | %8zu %10.1f %12.1f | %6s\n", r.name.c_str(),
                r.logic_elements, r.fmax_mhz, r.power_mw,
                on_front(i) ? "*" : "");
    json.add(r.name, "area", static_cast<double>(r.logic_elements), "LEs");
    json.add(r.name, "fmax", r.fmax_mhz, "MHz");
    json.add(r.name, "power_at_15mhz", r.power_mw, "mW");
    json.add(r.name, "pareto", on_front(i) ? 1.0 : 0.0, "count");
  }

  if (!(prefix_over_ripple > 1.0)) {
    std::fprintf(stderr,
                 "FAIL: no prefix adder beats ripple-gates f_max at 16 bits "
                 "(best %.3fx)\n",
                 prefix_over_ripple);
    return 1;
  }
  return json.exit_code();
}
