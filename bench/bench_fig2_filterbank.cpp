// Figure 2: the direct-form 9/7 FIR filter-bank architecture.  Reports the
// operator inventory (16 multipliers / 16 adders / 8 delay registers in the
// paper's schematic) and the synthesized cost of our elaboration of it.
#include <cstdio>

#include "bench_json.hpp"
#include "dsp/dwt97_fir.hpp"
#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "hw/filterbank_core.hpp"
#include "rtl/simplify.hpp"
#include "rtl/stats.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_fig2_filterbank", argc, argv);
  const auto cost = dwt::dsp::fir97_architecture_cost();
  std::printf("Figure 2. DWT by 9/7 taps Daubechies FIR filter.\n\n");
  std::printf("Schematic operator inventory (paper): %d multipliers, %d "
              "adders, %d delay registers.\n\n",
              cost.multipliers, cost.adders, cost.delay_registers);

  struct Variant {
    const char* label;
    dwt::hw::FilterBankConfig cfg;
  };
  Variant variants[3];
  variants[0].label = "unfolded (figure 2), behavioral";
  variants[1].label = "unfolded, pipelined operators";
  variants[1].cfg.pipelined_operators = true;
  variants[2].label = "symmetry-folded (9 multipliers)";
  variants[2].cfg.exploit_symmetry = true;

  std::printf("%-36s %12s %8s %12s %8s\n", "Variant", "multipliers", "LEs",
              "fmax (MHz)", "latency");
  for (const Variant& v : variants) {
    const dwt::hw::BuiltFilterBank fb = dwt::hw::build_filterbank_core(v.cfg);
    const dwt::rtl::Netlist opt = dwt::rtl::simplify(fb.netlist);
    const auto mapped = dwt::fpga::map_to_apex(opt);
    dwt::fpga::TimingAnalyzer sta(mapped,
                                  dwt::fpga::ApexDeviceParams::apex20ke());
    const auto timing = sta.analyze();
    std::printf("%-36s %12d %8zu %12.1f %8d\n", v.label, fb.multiplier_blocks,
                mapped.le_count(), timing.fmax_mhz, fb.latency);
    json.add(v.label, "multipliers", fb.multiplier_blocks, "count");
    json.add(v.label, "area", static_cast<double>(mapped.le_count()), "LEs");
    json.add(v.label, "fmax", timing.fmax_mhz, "MHz");
    json.add(v.label, "latency", fb.latency, "cycles");
  }
  std::printf(
      "\nNote: one sample/cycle enters the filter bank (one output pair per\n"
      "two cycles after decimation), whereas the lifting cores of figure 5\n"
      "consume an even/odd *pair* per cycle.\n");
  return json.exit_code();
}
