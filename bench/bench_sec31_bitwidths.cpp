// Section 3.1: register value ranges of the lifting datapath.  Compares the
// paper's published measured ranges against static interval analysis and
// against the ranges observed on image and random workloads.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "dsp/image_gen.hpp"
#include "hw/bitwidth_analysis.hpp"

namespace {

std::vector<std::int64_t> image_samples() {
  const dwt::dsp::Image img = dwt::dsp::make_still_tone_image(256, 128, 2005);
  std::vector<std::int64_t> out;
  out.reserve(img.data().size());
  for (const double v : img.data()) {
    out.push_back(static_cast<std::int64_t>(std::llround(v)) - 128);
  }
  return out;
}

std::vector<std::int64_t> random_samples() {
  dwt::common::Rng rng(17);
  std::vector<std::int64_t> out(32768);
  for (auto& v : out) v = rng.uniform(-128, 127);
  return out;
}

void print_table(const char* title, const char* workload,
                 const std::vector<dwt::hw::StageRangeComparison>& rows,
                 dwt::bench::JsonReporter& json) {
  std::printf("%s\n", title);
  std::printf("%-18s | %7s %5s | %7s %5s | %7s %5s\n", "Register", "paper",
              "bits", "intvl", "bits", "seen", "bits");
  for (const auto& c : rows) {
    std::printf("%-18s | +-%5lld %5d | +-%5lld %5d | +-%5lld %5d\n",
                c.name.c_str(), static_cast<long long>(c.paper.hi),
                c.paper_bits,
                static_cast<long long>(
                    std::max<std::int64_t>(std::llabs(c.interval.lo), c.interval.hi)),
                c.interval_bits,
                static_cast<long long>(
                    std::max<std::int64_t>(std::llabs(c.observed.lo), c.observed.hi)),
                c.observed_bits);
    const std::string scenario = std::string(workload) + " " + c.name;
    json.add(scenario, "paper_bits", c.paper_bits, "bits");
    json.add(scenario, "interval_bits", c.interval_bits, "bits");
    json.add(scenario, "observed_bits", c.observed_bits, "bits");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_sec31_bitwidths", argc, argv);
  std::printf("Section 3.1: internal register bit lengths.\n\n");
  print_table("Still-tone image workload (the paper's scenario):", "image",
              dwt::hw::compare_stage_ranges(image_samples()), json);
  print_table("Uniform random workload (adversarial):", "random",
              dwt::hw::compare_stage_ranges(random_samples()), json);
  std::printf(
      "Shape check: image data stays within the paper's measured ranges at\n"
      "every stage (so the published widths are safe for still-tone\n"
      "imagery), while random data exceeds the high-output register's +-252\n"
      "-- confirming that the paper's sizing relies on \"the nature of the\n"
      "transform of still-tone images\".\n");
  return json.exit_code();
}
