// Ablation: coefficient word length.  The paper fixes 8 fractional bits;
// this sweep shows the PSNR cost of narrower constants and the area cost of
// wider ones (interval-sized datapaths, since the paper's section-3.1
// register ranges only apply to the 8-bit case).
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "explore/explorer.hpp"
#include "hw/designs.hpp"

namespace {

double psnr_at(int frac_bits) {
  dwt::dsp::Image img = dwt::dsp::make_still_tone_image(128, 128, 2005);
  const dwt::dsp::Image original = img;
  dwt::dsp::level_shift_forward(img);
  dwt::dsp::dwt2d_forward(dwt::dsp::Method::kLiftingFixed, img, 3, frac_bits);
  dwt::dsp::dwt2d_inverse(dwt::dsp::Method::kLiftingFixed, img, 3, frac_bits);
  dwt::dsp::level_shift_inverse(img);
  return dwt::dsp::psnr(original, img.clamped_u8());
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_ablation_wordlength", argc, argv);
  dwt::explore::Explorer explorer;
  std::printf("Ablation: coefficient fractional bits (design 2 datapath, "
              "interval sizing).\n\n");
  std::printf("%-10s %12s %8s %12s %14s\n", "frac bits", "PSNR (dB)", "LEs",
              "fmax (MHz)", "P@15MHz (mW)");
  for (const int f : {4, 6, 8, 10, 12}) {
    dwt::hw::DesignSpec spec = dwt::hw::design_spec(dwt::hw::DesignId::kDesign2);
    spec.config.frac_bits = f;
    spec.config.paper_widths = false;
    const auto eval = explorer.evaluate(spec);
    const double psnr = psnr_at(f);
    std::printf("%-10d %12.2f %8zu %12.1f %14.1f\n", f, psnr,
                eval.report.logic_elements, eval.report.fmax_mhz,
                eval.report.power_mw);
    const std::string scenario = std::to_string(f) + " frac bits";
    json.add(scenario, "psnr", psnr, "dB");
    json.add(scenario, "area",
             static_cast<double>(eval.report.logic_elements), "LEs");
    json.add(scenario, "fmax", eval.report.fmax_mhz, "MHz");
    json.add(scenario, "power_at_15mhz", eval.report.power_mw, "mW");
  }
  std::printf(
      "\nThe paper's 8 fractional bits sit at the knee: fewer bits visibly\n"
      "hurt reconstruction quality, while more bits grow every adder and\n"
      "register for marginal PSNR (the round-trip error is dominated by the\n"
      "per-stage integer truncation, not the constants).\n");
  return json.exit_code();
}
