// Extension: the inverse (IDWT) cores next to the forward designs, after
// the paper's reference [4] ("An Efficient Hardware Implementation of DWT
// and IDWT").  The inverse datapath mirrors the forward structure (same
// multiplier blocks, reversed order), so its cost tracks the forward core.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "hw/inverse_lifting_datapath.hpp"
#include "rtl/simplify.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_idwt_core", argc, argv);
  std::printf("Extension: inverse (IDWT) cores vs forward designs.\n\n");
  std::printf("%-36s %8s %12s %9s\n", "Core", "LEs", "fmax (MHz)", "latency");

  struct Variant {
    const char* label;
    dwt::hw::InverseDatapathConfig cfg;
  };
  Variant variants[4];
  variants[0].label = "IDWT behavioral, flat";
  variants[1].label = "IDWT behavioral, pipelined";
  variants[1].cfg.pipelined_operators = true;
  variants[2].label = "IDWT structural, flat";
  variants[2].cfg.adder_style = dwt::rtl::AdderStyle::kRippleGates;
  variants[3].label = "IDWT structural, pipelined";
  variants[3].cfg.adder_style = dwt::rtl::AdderStyle::kRippleGates;
  variants[3].cfg.pipelined_operators = true;

  for (const Variant& v : variants) {
    const auto dp = dwt::hw::build_inverse_lifting_datapath(v.cfg);
    const auto opt = dwt::rtl::simplify(dp.netlist);
    const auto mapped = dwt::fpga::map_to_apex(opt);
    dwt::fpga::TimingAnalyzer sta(mapped,
                                  dwt::fpga::ApexDeviceParams::apex20ke());
    const auto timing = sta.analyze();
    std::printf("%-36s %8zu %12.1f %9d\n", v.label, mapped.le_count(),
                timing.fmax_mhz, dp.latency);
    json.add(v.label, "area", static_cast<double>(mapped.le_count()), "LEs");
    json.add(v.label, "fmax", timing.fmax_mhz, "MHz");
    json.add(v.label, "latency", dp.latency, "cycles");
  }

  dwt::explore::Explorer explorer;
  for (const auto id :
       {dwt::hw::DesignId::kDesign2, dwt::hw::DesignId::kDesign3,
        dwt::hw::DesignId::kDesign4, dwt::hw::DesignId::kDesign5}) {
    const auto eval = explorer.evaluate(dwt::hw::design_spec(id));
    std::printf("%-36s %8zu %12.1f %9d\n",
                (eval.spec.name + " (forward)").c_str(),
                eval.report.logic_elements, eval.report.fmax_mhz,
                eval.info.latency);
    json.add(eval.spec.name + " (forward)", "area",
             static_cast<double>(eval.report.logic_elements), "LEs");
    json.add(eval.spec.name + " (forward)", "fmax", eval.report.fmax_mhz,
             "MHz");
    json.add(eval.spec.name + " (forward)", "latency", eval.info.latency,
             "cycles");
  }
  std::printf(
      "\nThe inverse costs roughly the forward core's area (same six\n"
      "multiplier blocks run in reverse), so a full codec datapath is about\n"
      "twice one direction -- consistent with reference [4]'s combined\n"
      "DWT+IDWT implementation.\n");
  return json.exit_code();
}
