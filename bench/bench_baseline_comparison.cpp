// Section 4's literature comparison: the filter-bank IP of [5] (Masud &
// McCanny: 785 LEs @ 85.5 MHz) against our designs 2 and 3.  The paper's
// trade-off reading: design 2 is ~half the area at ~half the frequency;
// design 3 matches the area and doubles the frequency.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "hw/filterbank_core.hpp"
#include "rtl/simplify.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_baseline_comparison", argc, argv);
  dwt::explore::Explorer explorer;
  const auto evals = explorer.evaluate_all();
  const auto baseline = dwt::hw::paper_baseline();

  std::printf("Comparison with the filter-bank architecture of [5].\n\n");
  std::printf("%-34s %8s %12s\n", "Architecture", "LEs", "fmax (MHz)");
  std::printf("%-34s %8d %12.1f   (published)\n",
              "[5] Masud & McCanny filter bank", baseline.area_les,
              baseline.fmax_mhz);

  // Our own elaboration of a filter-bank core, as a sanity point.
  const auto fb = dwt::hw::build_filterbank_core({});
  const auto fb_opt = dwt::rtl::simplify(fb.netlist);
  const auto fb_mapped = dwt::fpga::map_to_apex(fb_opt);
  dwt::fpga::TimingAnalyzer sta(fb_mapped,
                                dwt::fpga::ApexDeviceParams::apex20ke());
  std::printf("%-34s %8zu %12.1f   (our elaboration)\n",
              "filter-bank core (figure 2)", fb_mapped.le_count(),
              sta.analyze().fmax_mhz);
  json.add("[5] filter bank", "area", baseline.area_les, "LEs");
  json.add("[5] filter bank", "fmax", baseline.fmax_mhz, "MHz");
  json.add("filter-bank core (figure 2)", "area",
           static_cast<double>(fb_mapped.le_count()), "LEs");
  json.add("filter-bank core (figure 2)", "fmax", sta.analyze().fmax_mhz,
           "MHz");

  for (const std::size_t i : {1u, 2u}) {
    std::printf("%-34s %8zu %12.1f\n", evals[i].spec.name.c_str(),
                evals[i].report.logic_elements, evals[i].report.fmax_mhz);
    json.add(evals[i].spec.name, "area",
             static_cast<double>(evals[i].report.logic_elements), "LEs");
    json.add(evals[i].spec.name, "fmax", evals[i].report.fmax_mhz, "MHz");
  }

  const double area_ratio_d2 =
      static_cast<double>(evals[1].report.logic_elements) / baseline.area_les;
  const double fmax_ratio_d2 = evals[1].report.fmax_mhz / baseline.fmax_mhz;
  const double area_ratio_d3 =
      static_cast<double>(evals[2].report.logic_elements) / baseline.area_les;
  const double fmax_ratio_d3 = evals[2].report.fmax_mhz / baseline.fmax_mhz;
  std::printf(
      "\nDesign 2 vs [5]: %.2fx area, %.2fx fmax (paper: ~0.5x area, ~0.5x "
      "fmax).\nDesign 3 vs [5]: %.2fx area, %.2fx fmax (paper: ~1.0x area, "
      "~2.0x fmax).\n",
      area_ratio_d2, fmax_ratio_d2, area_ratio_d3, fmax_ratio_d3);
  json.add("Design 2 vs [5]", "area_ratio", area_ratio_d2, "ratio");
  json.add("Design 2 vs [5]", "fmax_ratio", fmax_ratio_d2, "ratio");
  json.add("Design 3 vs [5]", "area_ratio", area_ratio_d3, "ratio");
  json.add("Design 3 vs [5]", "fmax_ratio", fmax_ratio_d3, "ratio");
  std::printf(
      "\nThroughput note: the lifting cores consume a sample *pair* per\n"
      "cycle, so at equal fmax they deliver twice the sample rate of the\n"
      "one-sample-per-cycle filter bank.\n");

  // Pareto view over (area, period, power) of the five designs.
  std::vector<dwt::explore::TradeoffPoint> points;
  for (const auto& e : evals) {
    points.push_back({e.spec.name,
                      static_cast<double>(e.report.logic_elements),
                      1000.0 / e.report.fmax_mhz, e.report.power_mw});
  }
  std::printf("\nPareto-optimal designs in the (area, period, power) space:");
  for (const std::size_t i : dwt::explore::pareto_front(points)) {
    std::printf(" %s;", points[i].name.c_str());
    json.add(points[i].name, "pareto_optimal", 1.0, "bool");
  }
  std::printf("\n");
  return json.exit_code();
}
