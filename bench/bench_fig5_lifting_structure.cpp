// Figure 5 / figure 3: structure of the lifting 1D-DWT datapath.  Reports
// the operator inventory ("6 multipliers, 8 adders and around 14 registers"),
// the per-stage register ranges, and the netlist statistics per design.
#include <cstdio>

#include "bench_json.hpp"
#include "hw/designs.hpp"
#include "rtl/shiftadd_plan.hpp"
#include "rtl/stats.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_fig5_lifting_structure", argc, argv);
  std::printf("Figure 5. Lifting 1D-DWT architecture.\n\n");
  std::printf(
      "Operator inventory of the lifting datapath (figure 3/5): 6 constant\n"
      "multiplier blocks (alpha, beta, gamma, delta, -k, 1/k), 8 lifting\n"
      "adders (pre/post adder around each of the four lifting steps), and\n"
      "the pipeline registers r0..r13 of the 8-stage skeleton.\n\n");

  int total_mult_adders = 0;
  for (const auto& m : dwt::rtl::paper_multiplier_adder_counts()) {
    total_mult_adders += m.total();
  }
  std::printf("Shift-add realization: the 6 multiplier blocks expand to %d "
              "adders in total (section 3.2 accounting).\n\n",
              total_mult_adders);
  json.add("lifting datapath", "multiplier_adders", total_mult_adders,
           "count");

  std::printf("%-10s %34s %10s %8s %9s\n", "Design", "description", "cells",
              "regs", "latency");
  for (const dwt::hw::DesignSpec& spec : dwt::hw::all_designs()) {
    const dwt::hw::BuiltDatapath dp = dwt::hw::build_design(spec.id);
    const dwt::rtl::NetlistStats st = dwt::rtl::compute_stats(dp.netlist);
    std::printf("%-10s %34.34s %10zu %8zu %9d\n", spec.name.c_str(),
                spec.description.c_str(), st.cells, st.register_bits,
                dp.info.latency);
    json.add(spec.name, "cells", static_cast<double>(st.cells), "count");
    json.add(spec.name, "register_bits",
             static_cast<double>(st.register_bits), "bits");
    json.add(spec.name, "latency", dp.info.latency, "cycles");
  }

  std::printf("\nStage register ranges used for sizing (design 2):\n");
  const dwt::hw::BuiltDatapath d2 = dwt::hw::build_design(
      dwt::hw::DesignId::kDesign2);
  for (const dwt::hw::StageRange& r : d2.info.stage_ranges) {
    std::printf("  %-18s [%6lld, %5lld]  -> %2d bits\n", r.name.c_str(),
                static_cast<long long>(r.range.lo),
                static_cast<long long>(r.range.hi), r.bits);
  }
  return json.exit_code();
}
