// Fault-campaign scale-out: what the cone-restricted incremental engine and
// trial sharding buy on top of the bit-parallel batch simulator.
//
// Three record groups:
//
//  1. Static cone statistics for all five Table 3 designs -- tape length,
//     mean fan-out-cone interval fraction, and the instruction reduction an
//     ideal cone-restricted run of a fixed 512-trial schedule achieves.
//     These are deterministic functions of the netlist + seed (computed from
//     the ConeIndex, never from wall clock), so bench_compare pins them
//     exactly against the committed baseline.
//
//  2. Measured trials/s on Design 1 (o1 tape, 256 lanes, single worker
//     thread so the ratio isolates the algorithm, not the pool): full-tape
//     batches vs cone-restricted batches over the identical schedule, for
//     two workloads.  The transient campaign (SEU + glitch, the canonical
//     radiation-test workload) is where the cone engine earns its keep:
//     every trial's disturbance drains within the pipeline latency, the
//     batch reconverges onto the golden trace and retires, and the engine
//     serves the rest of the stream from the trace.  The mixed campaign
//     adds stuck-at faults, whose forces persist to the end of the stream
//     and pin their batches active (only the pre-strike skip applies), so
//     its ratio is structurally smaller.  Acceptance gates: >= 2x on the
//     transient campaign in smoke mode, and cone/full reports byte
//     identical for both workloads (the restriction is purely a throughput
//     knob).
//
//  3. Shard scaling on the same workload: the schedule split across 4
//     shards, each run separately; the projected parallel speedup is the
//     unsharded wall clock over the slowest shard.  The merged shard
//     reports must reproduce the unsharded report byte for byte.
//
// `--smoke` runs the fast pass and enforces the gates; `--json <path>`
// emits the bench/schema.md record set (identical record keys in smoke and
// full modes, so baselines diff cleanly).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/artifact_cache.hpp"
#include "explore/campaign_io.hpp"
#include "explore/resilience.hpp"
#include "hw/designs.hpp"
#include "rtl/fault.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

dwt::explore::ResilienceOptions base_options(dwt::hw::DesignId design,
                                             std::size_t trials,
                                             std::size_t samples,
                                             bool transient_only) {
  dwt::explore::ResilienceOptions opt;
  opt.design = design;
  if (transient_only) {
    opt.kinds = {dwt::rtl::FaultKind::kSeuFlip, dwt::rtl::FaultKind::kGlitch};
  } else {
    opt.kinds = {dwt::rtl::FaultKind::kSeuFlip, dwt::rtl::FaultKind::kGlitch,
                 dwt::rtl::FaultKind::kStuckAt0,
                 dwt::rtl::FaultKind::kStuckAt1};
  }
  opt.trials = trials;
  opt.samples = samples;
  opt.seed = 2005;
  opt.keep_trials = false;
  opt.threads = 1;  // isolate the algorithm, not the thread pool
  opt.lanes = 256;
  return opt;
}

/// Runs one campaign and returns its wall clock; the JSON report goes to
/// *report so byte-equality gates can compare engine variants.
double timed_campaign(const dwt::explore::ResilienceOptions& opt,
                      std::string* report) {
  const auto t0 = Clock::now();
  const dwt::explore::CampaignResult r = dwt::explore::run_campaign(opt);
  const double dt = seconds_since(t0);
  if (report != nullptr) *report = dwt::explore::to_json(r);
  return dt;
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_campaign_scaling", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Fixed-size schedule for the deterministic cone statistics: the values
  // must not depend on smoke vs full mode or the baseline would never diff
  // cleanly.
  constexpr std::size_t kStatTrials = 512;
  constexpr std::size_t kStatSamples = 32;
  // Timed workload.  Even smoke mode needs a few thousand trials: at ~10^5
  // trials/s a 256-trial campaign is a millisecond -- pure timer noise.
  // The sample count is deliberately deep (256 input pairs per trial): the
  // cone engine's retirement and cycle skipping amortize over the stream
  // length, and short streams are all pipeline-drain edge, which is exactly
  // what a real campaign is not.
  const std::size_t trials = smoke ? 8192 : 16384;
  const std::size_t samples = 256;
  constexpr unsigned kShards = 4;

  std::printf(
      "Fault-campaign scale-out: cone-restricted incremental simulation and\n"
      "trial sharding on the compiled batch engine%s.\n\n",
      smoke ? " (smoke)" : "");

  bool all_ok = true;

  // --- 1. static cone statistics, all designs -----------------------------
  std::printf("%-10s %8s %12s %14s %12s\n", "design", "instrs", "mean cone",
              "schedule cone", "ideal skip");
  for (const dwt::hw::DesignSpec& spec : dwt::hw::all_designs()) {
    dwt::explore::ResilienceOptions opt =
        base_options(spec.id, kStatTrials, kStatSamples, /*transient_only=*/
                     false);
    const dwt::explore::CampaignResult r = dwt::explore::run_campaign(opt);
    const double reduction =
        r.cone.instructions_full == 0
            ? 0.0
            : 1.0 - static_cast<double>(r.cone.instructions_cone) /
                        static_cast<double>(r.cone.instructions_full);
    json.add(spec.name, "cone_instructions",
             static_cast<double>(r.cone.instructions), "count");
    json.add(spec.name, "cone_mean_span_fraction", r.cone.mean_span_fraction,
             "ratio");
    json.add(spec.name, "cone_schedule_mean_fraction",
             r.cone.schedule_mean_cone_fraction, "ratio");
    json.add(spec.name, "cone_instruction_reduction", reduction, "ratio");
    std::printf("%-10s %8zu %11.1f%% %13.1f%% %11.1f%%\n", spec.name.c_str(),
                r.cone.instructions, 100.0 * r.cone.mean_span_fraction,
                100.0 * r.cone.schedule_mean_cone_fraction, 100.0 * reduction);
  }

  // Pre-warm every shared artifact so no tape/cone build lands in a timed
  // window (the cache is process-wide, so the stat runs above already built
  // most of it; the mapped design is the one straggler).
  {
    const dwt::hw::DesignSpec spec =
        dwt::hw::design_spec(dwt::hw::DesignId::kDesign1);
    (void)dwt::core::ArtifactCache::instance().mapped(spec.config);
  }

  // --- 2. cone-restricted vs full-tape throughput, Design 1 ---------------
  // Best-of-3 per engine: campaigns share the host with whatever else is
  // running, and one descheduled slice would otherwise decide the ratio.
  double t_cone = 1e300;       // transient workload, reused by the shard group
  std::string report_cone;     // ditto
  struct TimedWorkload {
    bool transient_only;
    const char* label;
    const char* key_suffix;
  };
  constexpr TimedWorkload kWorkloads[] = {
      {true, "transient (seu+glitch)", "_l256"},
      {false, "mixed (all kinds)", "_mixed_l256"},
  };
  for (const TimedWorkload& w : kWorkloads) {
    double t_full_w = 1e300;
    double t_cone_w = 1e300;
    std::string report_full_w;
    std::string report_cone_w;
    for (int rep = 0; rep < 3; ++rep) {
      dwt::explore::ResilienceOptions opt = base_options(
          dwt::hw::DesignId::kDesign1, trials, samples, w.transient_only);
      opt.cone = false;
      t_full_w = std::min(t_full_w, timed_campaign(opt, &report_full_w));
      opt.cone = true;
      t_cone_w = std::min(t_cone_w, timed_campaign(opt, &report_cone_w));
    }
    const double tps_full = static_cast<double>(trials) / t_full_w;
    const double tps_cone = static_cast<double>(trials) / t_cone_w;
    const double speedup = tps_cone / tps_full;
    json.add("Design 1",
             std::string("campaign_throughput_full") + w.key_suffix, tps_full,
             "trials/s");
    json.add("Design 1",
             std::string("campaign_throughput_cone") + w.key_suffix, tps_cone,
             "trials/s");
    json.add("Design 1",
             w.transient_only ? "cone_speedup" : "cone_speedup_mixed", speedup,
             "ratio");
    std::printf(
        "\nDesign 1, o1 tape, 256 lanes, %zu trials, %s:\n"
        "  full tape  %10.0f trials/s\n"
        "  cone       %10.0f trials/s   %.2fx\n",
        trials, w.label, tps_full, tps_cone, speedup);
    if (report_full_w != report_cone_w) {
      all_ok = false;
      std::printf("cone/full reports DIFFER: the restriction must be a pure "
                  "throughput knob\n");
    }
    if (w.transient_only) {
      if (smoke && speedup < 2.0) {
        all_ok = false;
        std::printf("cone restriction below the 2x acceptance gate: %.2fx\n",
                    speedup);
      }
      t_cone = t_cone_w;
      report_cone = std::move(report_cone_w);
    }
  }

  // --- 3. shard scaling, Design 1 -----------------------------------------
  double t_shard_max = 0.0;
  double t_shard_sum = 0.0;
  std::vector<std::string> shard_reports;
  for (unsigned s = 0; s < kShards; ++s) {
    dwt::explore::ResilienceOptions opt = base_options(
        dwt::hw::DesignId::kDesign1, trials, samples, /*transient_only=*/true);
    opt.shard_count = kShards;
    opt.shard_index = s;
    std::string report;
    const double dt = timed_campaign(opt, &report);
    t_shard_max = std::max(t_shard_max, dt);
    t_shard_sum += dt;
    shard_reports.push_back(std::move(report));
  }
  const double shard_speedup = t_cone / t_shard_max;
  // t_cone / sum(shards) ~ 1.0 when sharding adds no redundant work; named
  // with the -speedup suffix so bench_compare treats it as wall clock.
  json.add("Design 1", "shard_speedup_s4", shard_speedup, "ratio");
  json.add("Design 1", "shard_serial_speedup_s4", t_shard_sum > 0.0
                                                      ? t_cone / t_shard_sum
                                                      : 0.0, "ratio");
  std::printf(
      "  %u shards   slowest %.3fs vs unsharded %.3fs: projected parallel "
      "speedup %.2fx\n",
      kShards, t_shard_max, t_cone, shard_speedup);
  try {
    const std::string merged = dwt::explore::merge_reports(shard_reports);
    if (merged != report_cone) {
      all_ok = false;
      std::printf("merged shard reports DIFFER from the unsharded report\n");
    }
  } catch (const std::exception& e) {
    all_ok = false;
    std::printf("shard merge FAILED: %s\n", e.what());
  }

  std::printf(
      "\nCone statistics are deterministic (netlist + seed); trials/s and\n"
      "speedups are host wall clock.  Byte-equality of cone/full and\n"
      "merged/unsharded reports is enforced in every mode.\n");
  if (!all_ok) {
    std::fprintf(stderr, "campaign-scaling gate FAILED\n");
    return 1;
  }
  return json.exit_code();
}
