// Machine-readable output for the bench_* binaries.
//
// Every bench accepts `--json <path>` and, in addition to its stdout table,
// writes the records registered through JsonReporter as one JSON document:
//
//   {
//     "bench": "<binary name>",
//     "records": [
//       {"design": "...", "metric": "...", "value": N, "unit": "..."},
//       ...
//     ]
//   }
//
// The format is byte-stable: fixed key order, insertion-ordered records,
// fixed number formatting ("%.10g", integral values printed as integers), so
// two runs over the same model state produce identical bytes and reports
// diff cleanly across revisions.  See bench/schema.md.
//
// The document rendering itself lives in common/json_writer (shared with the
// tools); this header only adds the `--json <path>` argv convention.
#pragma once

#include <cstring>
#include <string>
#include <utility>

#include "common/json_writer.hpp"

namespace dwt::bench {

class JsonReporter {
 public:
  /// Scans argv for "--json <path>"; with no flag the reporter is inert.
  JsonReporter(std::string bench_name, int argc, char** argv)
      : writer_(std::move(bench_name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  /// Registers one record.  `design` names the architecture or scenario the
  /// metric belongs to ("Design 3", "5/3", ...); `metric` is a stable
  /// snake_case key; `unit` a human-readable unit ("LEs", "MHz", "mW",
  /// "vectors/s", "ratio", ...).
  void add(const std::string& design, const std::string& metric, double value,
           const std::string& unit) {
    writer_.add(design, metric, value, unit);
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Writes the document if --json was given.  Returns false (and prints to
  /// stderr) when the file cannot be written.
  bool flush() const {
    if (path_.empty()) return true;
    return writer_.write_file(path_);
  }

  /// flush() mapped onto a process exit code, for `return json.exit_code();`
  [[nodiscard]] int exit_code() const { return flush() ? 0 : 1; }

 private:
  common::JsonRecordWriter writer_;
  std::string path_;
};

}  // namespace dwt::bench
