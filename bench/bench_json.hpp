// Machine-readable output for the bench_* binaries.
//
// Every bench accepts `--json <path>` and, in addition to its stdout table,
// writes the records registered through JsonReporter as one JSON document:
//
//   {
//     "bench": "<binary name>",
//     "records": [
//       {"design": "...", "metric": "...", "value": N, "unit": "..."},
//       ...
//     ]
//   }
//
// The format is byte-stable: fixed key order, insertion-ordered records,
// fixed number formatting ("%.10g", integral values printed as integers), so
// two runs over the same model state produce identical bytes and reports
// diff cleanly across revisions.  See bench/schema.md.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace dwt::bench {

class JsonReporter {
 public:
  /// Scans argv for "--json <path>"; with no flag the reporter is inert.
  JsonReporter(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  /// Registers one record.  `design` names the architecture or scenario the
  /// metric belongs to ("Design 3", "5/3", ...); `metric` is a stable
  /// snake_case key; `unit` a human-readable unit ("LEs", "MHz", "mW",
  /// "vectors/s", "ratio", ...).
  void add(const std::string& design, const std::string& metric, double value,
           const std::string& unit) {
    records_.push_back({design, metric, value, unit});
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Writes the document if --json was given.  Returns false (and prints to
  /// stderr) when the file cannot be written.
  bool flush() const {
    if (path_.empty()) return true;
    std::string out;
    out.reserve(64 + 96 * records_.size());
    out += "{\n  \"bench\": \"" + bench_ + "\",\n  \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out += i ? ",\n    " : "\n    ";
      out += "{\"design\": \"" + escape(r.design) + "\", \"metric\": \"" +
             escape(r.metric) + "\", \"value\": " + format(r.value) +
             ", \"unit\": \"" + escape(r.unit) + "\"}";
    }
    out += records_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench --json: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

  /// flush() mapped onto a process exit code, for `return json.exit_code();`
  [[nodiscard]] int exit_code() const { return flush() ? 0 : 1; }

 private:
  struct Record {
    std::string design;
    std::string metric;
    double value;
    std::string unit;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  static std::string format(double v) {
    if (!std::isfinite(v)) return "null";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
      return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
  }

  std::string bench_;
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace dwt::bench
