// Regenerates paper Table 2: PSNR of the forward+inverse transform round
// trip (with integer coefficient storage) for the four computation methods.
//
// Substitution note (DESIGN.md): the paper measured a tile of "Lena"; we use
// the deterministic synthetic still-tone scene.  Absolute PSNR depends on
// the picture; the *shape* -- all methods within ~0.5 dB, integer rounding
// costing well under 1 dB -- is the reproduced claim.
#include <algorithm>
#include <cstdio>

#include "bench_json.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"

namespace {

double table2_psnr(dwt::dsp::Method method, const dwt::dsp::Image& original,
                   int octaves) {
  dwt::dsp::Image plane = original;
  dwt::dsp::level_shift_forward(plane);
  dwt::dsp::dwt2d_forward(method, plane, octaves);
  dwt::dsp::round_coefficients(plane);
  dwt::dsp::dwt2d_inverse(method, plane, octaves);
  dwt::dsp::level_shift_inverse(plane);
  return dwt::dsp::psnr(original, plane.clamped_u8());
}

}  // namespace

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_table2_psnr", argc, argv);
  const dwt::dsp::Image tile = dwt::dsp::make_still_tone_image(128, 128, 2005);
  const int octaves = 3;
  struct Row {
    dwt::dsp::Method method;
    const char* label;
    double paper_db;
  };
  const Row rows[] = {
      {dwt::dsp::Method::kFirHwFloat,
       "FIR filter by floating point 9/7 Daubechies coefficients", 37.497},
      {dwt::dsp::Method::kFirFixed,
       "FIR filter by integer rounded 9/7 Daubechies coefficients", 37.483},
      {dwt::dsp::Method::kLiftingHwFloat,
       "Lifting scheme by floating point factorized coefficients", 37.094},
      {dwt::dsp::Method::kLiftingFixed,
       "Lifting scheme by integer rounded factorized coefficients", 36.974},
  };
  std::printf("Table 2. Measurement of rounding error (%d-octave 2D DWT on a "
              "128x128 synthetic still-tone tile).\n\n", octaves);
  std::printf("%-60s %12s %12s\n", "Method", "PSNR (dB)", "paper (dB)");
  double fir_float = 0, fir_fixed = 0, lift_float = 0, lift_fixed = 0;
  for (const Row& row : rows) {
    const double p = table2_psnr(row.method, tile, octaves);
    std::printf("%-60s %12.3f %12.3f\n", row.label, p, row.paper_db);
    json.add(row.label, "psnr", p, "dB");
    json.add(row.label, "paper_psnr", row.paper_db, "dB");
    if (row.method == dwt::dsp::Method::kFirHwFloat) fir_float = p;
    if (row.method == dwt::dsp::Method::kFirFixed) fir_fixed = p;
    if (row.method == dwt::dsp::Method::kLiftingHwFloat) lift_float = p;
    if (row.method == dwt::dsp::Method::kLiftingFixed) lift_fixed = p;
  }
  std::printf(
      "\nShape check: rounding penalty FIR %.3f dB (paper 0.014), lifting "
      "%.3f dB (paper 0.120); all methods within %.3f dB of each other "
      "(paper: 0.523).\n",
      fir_float - fir_fixed, lift_float - lift_fixed,
      std::max({fir_float, fir_fixed, lift_float, lift_fixed}) -
          std::min({fir_float, fir_fixed, lift_float, lift_fixed}));
  json.add("shape check", "fir_rounding_penalty", fir_float - fir_fixed,
           "dB");
  json.add("shape check", "lifting_rounding_penalty",
           lift_float - lift_fixed, "dB");
  return json.exit_code();
}
