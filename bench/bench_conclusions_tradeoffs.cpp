// Section 5's concluding claims as measured ratios: pipelining costs
// 40-60% more LEs, raises fmax up to ~100%+, and cuts power to under half;
// structural descriptions cost ~30-46% more area at lower fmax.
#include <cstdio>

#include "bench_json.hpp"
#include "explore/explorer.hpp"
#include "explore/pareto.hpp"
#include "explore/tradeoffs.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_conclusions_tradeoffs", argc, argv);
  dwt::explore::Explorer explorer;
  const auto evals = explorer.evaluate_all();
  const dwt::explore::TradeoffAnalysis analysis =
      dwt::explore::analyze_tradeoffs(evals);

  std::printf("Section 5 conclusions: paper ratio vs measured ratio.\n\n");
  std::printf("%-50s %8s %10s\n", "Claim", "paper", "measured");
  for (const dwt::explore::RatioClaim& c : analysis.claims()) {
    std::printf("%-50s %8.2f %10.2f\n", c.description.c_str(), c.paper_value,
                c.measured_value);
    json.add(c.description, "paper_ratio", c.paper_value, "ratio");
    json.add(c.description, "measured_ratio", c.measured_value, "ratio");
  }

  std::printf("\nArea-power per MHz (the paper's informal figure of merit; "
              "lower is better):\n");
  for (const auto& e : evals) {
    const dwt::explore::TradeoffPoint p{
        e.spec.name, static_cast<double>(e.report.logic_elements),
        1000.0 / e.report.fmax_mhz, e.report.power_mw};
    std::printf("  %-10s %12.0f\n", e.spec.name.c_str(),
                dwt::explore::area_power_per_mhz(p));
    json.add(e.spec.name, "area_power_per_mhz",
             dwt::explore::area_power_per_mhz(p), "LEs*mW/MHz");
  }
  std::printf(
      "\nHeadline shape: the pipelined designs (3, 5) dominate this figure\n"
      "of merit, \"the descriptions with pipelined operators provide the\n"
      "best area-power-operating frequency trade-off\".\n");
  return json.exit_code();
}
