// Figure 7 / section 3.2: multiplication by constant as shifted additions.
// Prints each constant's decomposition and the adder counts the paper
// reports (alpha 6, beta 8->7 with reuse, gamma 5, delta 5, -k 4, 1/k 2).
#include <cstdio>

#include "bench_json.hpp"
#include "rtl/shiftadd_plan.hpp"

int main(int argc, char** argv) {
  dwt::bench::JsonReporter json("bench_fig7_shiftadd", argc, argv);
  std::printf("Figure 7 / section 3.2: shift-add multiplier decompositions.\n\n");
  const int paper_counts[6] = {6, 7, 5, 5, 4, 2};
  const auto with_reuse =
      dwt::rtl::paper_multiplier_adder_counts(dwt::rtl::Recoding::kBinaryWithReuse);
  const auto plain =
      dwt::rtl::paper_multiplier_adder_counts(dwt::rtl::Recoding::kBinary);
  std::printf("%-8s %10s %14s %14s %8s\n", "Block", "constant",
              "adders(plain)", "adders(reuse)", "paper");
  for (std::size_t i = 0; i < with_reuse.size(); ++i) {
    std::printf("%-8s %7lld/256 %14d %14d %8d\n", with_reuse[i].name.c_str(),
                static_cast<long long>(with_reuse[i].constant),
                plain[i].total(), with_reuse[i].total(), paper_counts[i]);
    json.add(with_reuse[i].name, "adders_plain", plain[i].total(), "count");
    json.add(with_reuse[i].name, "adders_reuse", with_reuse[i].total(),
             "count");
    json.add(with_reuse[i].name, "adders_paper", paper_counts[i], "count");
  }

  std::printf("\nDecompositions (two's complement binary recoding):\n");
  for (const auto& m : with_reuse) {
    const auto plan = dwt::rtl::make_shiftadd_plan(
        m.constant, dwt::rtl::Recoding::kBinaryWithReuse);
    std::printf("  %-6s %s\n", m.name.c_str(), plan.to_string().c_str());
  }

  std::printf("\nCanonical signed digit (ablation -- fewer terms than the "
              "paper's plain binary):\n");
  for (const auto& m : with_reuse) {
    const auto plan =
        dwt::rtl::make_shiftadd_plan(m.constant, dwt::rtl::Recoding::kCsd);
    std::printf("  %-6s %zu terms: %s\n", m.name.c_str(), plan.terms.size(),
                plan.to_string().c_str());
    json.add(m.name, "csd_terms", static_cast<double>(plan.terms.size()),
             "count");
  }
  return json.exit_code();
}
