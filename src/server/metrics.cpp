#include "server/metrics.hpp"

#include <bit>

#include "common/json_writer.hpp"

namespace dwt::server {

void ServerMetrics::record_ok(const std::string& backend_key,
                              std::uint64_t latency_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++requests_ok_;
  latency_sum_us_ += latency_us;
  ++latency_buckets_[static_cast<std::size_t>(std::bit_width(latency_us))];
  ++backend_requests_[backend_key];
}

void ServerMetrics::record_error() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++requests_error_;
}

void ServerMetrics::record_rejected_queue_full() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_queue_full_;
}

void ServerMetrics::record_rejected_shutting_down() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_shutting_down_;
}

void ServerMetrics::record_protocol_error() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++protocol_errors_;
}

double ServerMetrics::percentile_locked(double q) const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : latency_buckets_) n += c;
  if (n == 0) return 0.0;
  // Nearest-rank target, then linear interpolation across the bucket's
  // value range: deterministic for a given histogram state.
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = latency_buckets_[b];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      if (b == 0) return 0.0;
      const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi = lo * 2.0 - 1.0;
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return 0.0;
}

MetricsSnapshot ServerMetrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  s.requests_ok = requests_ok_;
  s.requests_error = requests_error_;
  s.requests_total = requests_ok_ + requests_error_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_shutting_down = rejected_shutting_down_;
  s.protocol_errors = protocol_errors_;
  s.latency_p50_us = percentile_locked(0.50);
  s.latency_p99_us = percentile_locked(0.99);
  s.latency_mean_us =
      requests_ok_ > 0 ? static_cast<double>(latency_sum_us_) /
                             static_cast<double>(requests_ok_)
                       : 0.0;
  s.backend_requests = backend_requests_;
  return s;
}

std::string ServerMetrics::render_json(std::size_t queue_depth,
                                       std::size_t queue_capacity,
                                       unsigned workers,
                                       const core::CacheStats& cache) const {
  const MetricsSnapshot s = snapshot();
  common::JsonRecordWriter doc("dwt97d_metrics");
  const auto count = [&doc](const std::string& metric, double v) {
    doc.add("server", metric, v, "count");
  };
  count("requests_total", static_cast<double>(s.requests_total));
  count("requests_ok", static_cast<double>(s.requests_ok));
  count("requests_error", static_cast<double>(s.requests_error));
  count("rejected_queue_full", static_cast<double>(s.rejected_queue_full));
  count("rejected_shutting_down",
        static_cast<double>(s.rejected_shutting_down));
  count("protocol_errors", static_cast<double>(s.protocol_errors));
  count("queue_depth", static_cast<double>(queue_depth));
  count("queue_capacity", static_cast<double>(queue_capacity));
  count("workers", static_cast<double>(workers));
  doc.add("server", "latency_p50_us", s.latency_p50_us, "us");
  doc.add("server", "latency_p99_us", s.latency_p99_us, "us");
  doc.add("server", "latency_mean_us", s.latency_mean_us, "us");
  const std::uint64_t hits = cache.design_hits + cache.tape_hits +
                             cache.mapped_hits + cache.cone_hits +
                             cache.native_hits;
  const std::uint64_t builds = cache.design_builds + cache.tape_builds +
                               cache.mapped_builds + cache.cone_builds +
                               cache.native_builds;
  doc.add("server", "cache_hit_rate",
          hits + builds > 0
              ? static_cast<double>(hits) / static_cast<double>(hits + builds)
              : 0.0,
          "ratio");
  count("cache_design_builds", static_cast<double>(cache.design_builds));
  count("cache_tape_builds", static_cast<double>(cache.tape_builds));
  count("cache_mapped_builds", static_cast<double>(cache.mapped_builds));
  count("cache_cone_builds", static_cast<double>(cache.cone_builds));
  count("cache_native_builds", static_cast<double>(cache.native_builds));
  count("cache_hits_total", static_cast<double>(hits));
  // Per-backend request counts, in map (lexicographic) order -- stable for
  // a given counter state.
  for (const auto& [backend, requests] : s.backend_requests) {
    doc.add(backend, "backend_requests", static_cast<double>(requests),
            "count");
  }
  return doc.render();
}

}  // namespace dwt::server
