// Serving metrics for dwt97d: request/rejection counters, per-backend
// request counts, and a log-bucketed latency histogram that answers
// p50/p99/mean without storing per-request samples (bounded memory at any
// request rate).  A snapshot renders as the repo's byte-stable flat record
// JSON (common::JsonRecordWriter) under the document name "dwt97d_metrics";
// the values are runtime-dependent, but key order and number formatting are
// stable, so two snapshots of identical counter state are byte-identical
// and the record keys are pinned by bench/schema.md.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/artifact_cache.hpp"

namespace dwt::server {

struct MetricsSnapshot {
  std::uint64_t requests_total = 0;  ///< accepted into the queue
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;  ///< handled, non-ok status
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t protocol_errors = 0;  ///< unparseable frames answered
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_mean_us = 0.0;
  std::map<std::string, std::uint64_t> backend_requests;
};

class ServerMetrics {
 public:
  /// A request completed successfully after `latency_us` microseconds of
  /// queue wait + transform time.  `backend_key` is the registry backend
  /// name, or "default" for the in-thread software path.
  void record_ok(const std::string& backend_key, std::uint64_t latency_us);

  /// A request was handled but answered with an error status.
  void record_error();

  void record_rejected_queue_full();
  void record_rejected_shutting_down();
  void record_protocol_error();

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Byte-stable JSON document of the snapshot plus live queue/cache state.
  /// `queue_depth` is the current queue occupancy, `queue_capacity` and
  /// `workers` the server configuration, `cache` the shared ArtifactCache
  /// counters (hit rate = hits / (hits + builds) over every artifact kind).
  [[nodiscard]] std::string render_json(std::size_t queue_depth,
                                        std::size_t queue_capacity,
                                        unsigned workers,
                                        const core::CacheStats& cache) const;

 private:
  /// Exponential buckets: bucket b holds latencies whose bit width is b,
  /// i.e. [2^(b-1), 2^b - 1] microseconds (bucket 0 = exactly 0).
  static constexpr std::size_t kBuckets = 64;

  [[nodiscard]] double percentile_locked(double q) const;

  mutable std::mutex mutex_;
  std::uint64_t requests_ok_ = 0;
  std::uint64_t requests_error_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_shutting_down_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t latency_sum_us_ = 0;
  std::array<std::uint64_t, kBuckets> latency_buckets_{};
  std::map<std::string, std::uint64_t> backend_requests_;
};

}  // namespace dwt::server
