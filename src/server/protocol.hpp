// dwt97d wire protocol: length-prefixed frames carrying tile-transform
// requests (raw or PGM tiles in) and responses (round-trip PGM, forward
// subbands, or codec output back), plus the metrics / shutdown control ops.
//
// Transport framing is a little-endian u32 payload length followed by that
// many payload bytes; the length is capped (kMaxFrameBytes) so a hostile
// header cannot make the server allocate unbounded memory.  Every decode
// failure maps to a structured error response frame (status + message) --
// the server answers malformed requests instead of dropping the connection,
// and the hardened dsp::read_pgm validation path (truncated payloads,
// dimension/maxval caps) is reused verbatim for PGM payloads.
//
// All multi-byte integers are little-endian.  Request payload layout:
//
//   [0]    u8  version        (kProtocolVersion)
//   [1]    u8  op             (Op)
//   [2]    u8  format         (PayloadFormat; transform ops only)
//   [3]    u8  design         (1..5)
//   [4]    u8  opt_level      (0..2)
//   [5]    u8  octaves        (1..16)
//   [6:8]  u16 tile           (nominal tile size; 0 = default 64)
//   [8:10] u16 width          (kRaw8 only; kPgm carries its own header)
//   [10:12]u16 height
//   [12]   u8  backend_len    (0 = default in-thread software transform)
//   [13:]  backend name, then pixel payload
//
// Response payload layout:
//
//   [0]    u8  version
//   [1]    u8  status         (Status)
//   ok:    u8 op echo, u16 width, u16 height, result bytes
//   error: UTF-8 message for the remainder of the frame
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/designs.hpp"
#include "rtl/compiled/tape.hpp"

namespace dwt::server {

inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on one frame's payload: a 65535 x 65535 8-bit image plus header
/// slack never reaches it, anything larger is corrupt or hostile.
inline constexpr std::uint32_t kMaxFrameBytes = 72u << 20;

enum class Op : std::uint8_t {
  kTileRoundTrip = 1,  ///< forward+inverse tile pipeline; PGM bytes back
  kForward = 2,        ///< forward only; packed subband plane as i32 LE
  kCompress = 3,       ///< codec encode; .dwt bitstream back
  kMetrics = 4,        ///< metrics snapshot as byte-stable JSON
  kShutdown = 5,       ///< begin graceful drain; empty ok response
};

enum class Status : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,      ///< unparseable frame (bad version/op/field layout)
  kBadRequest = 2,    ///< well-formed frame, invalid content (bad PGM, ...)
  kQueueFull = 3,     ///< admission control rejected the request
  kShuttingDown = 4,  ///< server is draining; no new work accepted
  kInternalError = 5,
};

[[nodiscard]] const char* to_string(Status s);

enum class PayloadFormat : std::uint8_t {
  kRaw8 = 0,  ///< width * height raw 8-bit pixels, row-major
  kPgm = 1,   ///< complete PGM (P5/P2) document, parsed by dsp::read_pgm
};

struct Request {
  Op op = Op::kTileRoundTrip;
  PayloadFormat format = PayloadFormat::kPgm;
  hw::DesignId design = hw::DesignId::kDesign2;
  rtl::compiled::OptLevel opt_level = rtl::compiled::OptLevel::kFull;
  int octaves = 2;
  std::uint16_t tile = 0;  ///< 0 = default (64)
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::string backend;  ///< registry name; empty = in-thread software path
  std::vector<std::uint8_t> payload;
};

struct Response {
  Status status = Status::kOk;
  Op op = Op::kTileRoundTrip;
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::vector<std::uint8_t> payload;  ///< result bytes, or error message
};

/// Renders a request/response as one frame payload (no length prefix).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& req);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& resp);

/// Parses a frame payload.  Returns std::nullopt and sets `error` when the
/// bytes are not a valid frame of the expected kind; the caller turns that
/// into a kBadFrame response (requests) or a client-side error (responses).
[[nodiscard]] std::optional<Request> decode_request(
    const std::uint8_t* data, std::size_t size, std::string* error);
[[nodiscard]] std::optional<Response> decode_response(
    const std::uint8_t* data, std::size_t size, std::string* error);

/// Convenience for the error path: a response frame carrying `status` and a
/// human-readable message.
[[nodiscard]] Response error_response(Status status, const std::string& msg);

/// Error-message text of an error response (the payload bytes as a string).
[[nodiscard]] std::string response_message(const Response& resp);

}  // namespace dwt::server
