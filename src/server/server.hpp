// DwtServer: the repo's front door -- a concurrent tile-transform daemon
// over the cached execution backends.
//
// Shape: one listener (TCP on 127.0.0.1 or a Unix socket) accepting framed
// requests (server/protocol.hpp), one reader thread per connection, a
// bounded request queue with admission control (reject-with-status when
// full, reject-while-draining once shutdown begins), and a worker pool
// executing transforms.  Workers draw every elaboration/compilation
// artifact from the process-wide core::ArtifactCache, so the first request
// per (backend, design, opt-level, hardening) configuration pays the build
// and every later request -- on any worker -- hits cache.  Responses are
// computed with the exact pipeline `dwt97cli tile` runs (per-request
// single-threaded tile scheduling; the pool is the concurrency), so a
// response is byte-identical to the equivalent CLI invocation at every
// worker count.
//
// Shutdown is graceful: begin_drain() stops admitting work (new requests
// get Status::kShuttingDown), stop() then waits for the queue to empty and
// every in-flight transform to answer before joining the pool and closing
// the sockets.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/metrics.hpp"
#include "server/protocol.hpp"

namespace dwt::server {

struct ServerOptions {
  /// Non-empty: listen on this Unix socket path (created at start, removed
  /// at stop).  Empty: listen on TCP 127.0.0.1:tcp_port.
  std::string unix_socket_path;
  std::uint16_t tcp_port = 0;  ///< 0 = kernel-assigned; see port()
  unsigned workers = 0;        ///< 0 = hardware concurrency
  std::size_t queue_depth = 64;  ///< admission-control bound
  /// Test hook: start with the worker pool frozen (set_paused(false) to
  /// release) so queue-full and drain behavior can be exercised
  /// deterministically.
  bool start_paused = false;
};

/// Executes one transform request against the library -- the worker body,
/// exposed so tests and the load generator can compute expected responses
/// without a socket.  Invalid content (unknown backend, malformed PGM
/// payload via the hardened dsp::read_pgm checks, unsupported op) comes
/// back as a structured error response, never an exception.
[[nodiscard]] Response execute_request(const Request& req);

/// Metrics key for a request's backend ("default" for the in-thread
/// software path, the registry name otherwise).
[[nodiscard]] std::string backend_metrics_key(const Request& req);

class DwtServer {
 public:
  explicit DwtServer(ServerOptions options);
  ~DwtServer();

  DwtServer(const DwtServer&) = delete;
  DwtServer& operator=(const DwtServer&) = delete;

  /// Binds, listens and spawns the pool.  Throws std::runtime_error on
  /// socket errors (path too long, port in use, ...).
  void start();

  /// Stops admitting new work: queued and in-flight requests still finish,
  /// later ones are answered with Status::kShuttingDown.  Idempotent.
  void begin_drain();

  /// begin_drain(), then waits until every accepted request has been
  /// answered, joins workers and connection threads, closes sockets.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Actual TCP port (after start(); useful with tcp_port = 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.unix_socket_path;
  }
  [[nodiscard]] unsigned workers() const { return n_workers_; }
  [[nodiscard]] std::size_t queue_capacity() const {
    return options_.queue_depth;
  }
  [[nodiscard]] std::size_t queue_size() const;

  /// True once a kShutdown request has been received (the daemon's cue to
  /// call stop()) or drain has begun.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load();
  }

  /// Test hook: freeze/unfreeze the worker pool (see
  /// ServerOptions::start_paused).  Unpause before stop() -- a paused pool
  /// cannot drain.
  void set_paused(bool paused);

  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  [[nodiscard]] std::string metrics_json() const;

 private:
  struct WorkItem {
    Request request;
    std::chrono::steady_clock::time_point enqueued_at;
    std::promise<Response> promise;
  };

  void accept_loop();
  void connection_loop(int fd);
  void worker_loop();
  bool send_response(int fd, const Response& resp);
  /// Admission control: enqueue or answer with the rejection status.
  void submit(int fd, Request&& req);

  ServerOptions options_;
  unsigned n_workers_ = 0;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< wakes the accept poll on drain

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<WorkItem>> queue_;
  bool paused_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;  ///< live connection sockets (for drain wakeup)
  std::vector<std::thread> conn_threads_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  ServerMetrics metrics_;
};

}  // namespace dwt::server
