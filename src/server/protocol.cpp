#include "server/protocol.hpp"

#include <cstring>

namespace dwt::server {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

bool fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad-frame";
    case Status::kBadRequest: return "bad-request";
    case Status::kQueueFull: return "queue-full";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kInternalError: return "internal-error";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const Request& req) {
  std::vector<std::uint8_t> out;
  out.reserve(13 + req.backend.size() + req.payload.size());
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(req.op));
  out.push_back(static_cast<std::uint8_t>(req.format));
  out.push_back(static_cast<std::uint8_t>(hw::design_index(req.design)));
  out.push_back(static_cast<std::uint8_t>(req.opt_level));
  out.push_back(static_cast<std::uint8_t>(req.octaves));
  put_u16(out, req.tile);
  put_u16(out, req.width);
  put_u16(out, req.height);
  out.push_back(static_cast<std::uint8_t>(req.backend.size()));
  out.insert(out.end(), req.backend.begin(), req.backend.end());
  out.insert(out.end(), req.payload.begin(), req.payload.end());
  return out;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  std::vector<std::uint8_t> out;
  out.reserve(7 + resp.payload.size());
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(resp.status));
  if (resp.status == Status::kOk) {
    out.push_back(static_cast<std::uint8_t>(resp.op));
    put_u16(out, resp.width);
    put_u16(out, resp.height);
  }
  out.insert(out.end(), resp.payload.begin(), resp.payload.end());
  return out;
}

std::optional<Request> decode_request(const std::uint8_t* data,
                                      std::size_t size, std::string* error) {
  constexpr std::size_t kHeader = 13;
  if (size < kHeader) {
    fail(error, "request frame shorter than the fixed header");
    return std::nullopt;
  }
  if (data[0] != kProtocolVersion) {
    fail(error, "unsupported protocol version");
    return std::nullopt;
  }
  Request req;
  const std::uint8_t op = data[1];
  if (op < static_cast<std::uint8_t>(Op::kTileRoundTrip) ||
      op > static_cast<std::uint8_t>(Op::kShutdown)) {
    fail(error, "unknown request op");
    return std::nullopt;
  }
  req.op = static_cast<Op>(op);
  const std::uint8_t format = data[2];
  if (format > static_cast<std::uint8_t>(PayloadFormat::kPgm)) {
    fail(error, "unknown payload format");
    return std::nullopt;
  }
  req.format = static_cast<PayloadFormat>(format);
  const std::uint8_t design = data[3];
  if (design < 1 || design > hw::kDesignCount) {
    fail(error, "design index outside 1..5");
    return std::nullopt;
  }
  req.design = static_cast<hw::DesignId>(design - 1);
  const std::uint8_t opt = data[4];
  if (opt > 2) {
    fail(error, "opt level outside 0..2");
    return std::nullopt;
  }
  req.opt_level = static_cast<rtl::compiled::OptLevel>(opt);
  const std::uint8_t octaves = data[5];
  if (octaves < 1 || octaves > 16) {
    fail(error, "octaves outside 1..16");
    return std::nullopt;
  }
  req.octaves = octaves;
  req.tile = get_u16(data + 6);
  req.width = get_u16(data + 8);
  req.height = get_u16(data + 10);
  const std::size_t backend_len = data[12];
  if (size < kHeader + backend_len) {
    fail(error, "request frame truncated inside the backend name");
    return std::nullopt;
  }
  req.backend.assign(reinterpret_cast<const char*>(data + kHeader),
                     backend_len);
  req.payload.assign(data + kHeader + backend_len, data + size);
  if (req.format == PayloadFormat::kRaw8 && req.op != Op::kMetrics &&
      req.op != Op::kShutdown) {
    if (req.width == 0 || req.height == 0) {
      fail(error, "raw payload with zero dimensions");
      return std::nullopt;
    }
    const std::size_t expect =
        static_cast<std::size_t>(req.width) * req.height;
    if (req.payload.size() != expect) {
      fail(error, "raw payload size does not match width * height");
      return std::nullopt;
    }
  }
  return req;
}

std::optional<Response> decode_response(const std::uint8_t* data,
                                        std::size_t size, std::string* error) {
  if (size < 2) {
    fail(error, "response frame shorter than the fixed header");
    return std::nullopt;
  }
  if (data[0] != kProtocolVersion) {
    fail(error, "unsupported protocol version");
    return std::nullopt;
  }
  Response resp;
  const std::uint8_t status = data[1];
  if (status > static_cast<std::uint8_t>(Status::kInternalError)) {
    fail(error, "unknown response status");
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  if (resp.status == Status::kOk) {
    if (size < 7) {
      fail(error, "ok response truncated inside the fixed header");
      return std::nullopt;
    }
    const std::uint8_t op = data[2];
    if (op < static_cast<std::uint8_t>(Op::kTileRoundTrip) ||
        op > static_cast<std::uint8_t>(Op::kShutdown)) {
      fail(error, "unknown response op");
      return std::nullopt;
    }
    resp.op = static_cast<Op>(op);
    resp.width = get_u16(data + 3);
    resp.height = get_u16(data + 5);
    resp.payload.assign(data + 7, data + size);
  } else {
    resp.payload.assign(data + 2, data + size);
  }
  return resp;
}

Response error_response(Status status, const std::string& msg) {
  Response resp;
  resp.status = status;
  resp.payload.assign(msg.begin(), msg.end());
  return resp;
}

std::string response_message(const Response& resp) {
  return std::string(resp.payload.begin(), resp.payload.end());
}

}  // namespace dwt::server
