#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "codec/codec.hpp"
#include "core/registry.hpp"
#include "dsp/dwt2d.hpp"
#include "hw/tile_scheduler.hpp"

namespace dwt::server {

namespace {

/// Full-buffer read; false on EOF, error, or a shutdown() wakeup.
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Full-buffer write; MSG_NOSIGNAL so a vanished client surfaces as an
/// error return instead of SIGPIPE.
bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

dsp::Image decode_image_payload(const Request& req) {
  if (req.format == PayloadFormat::kPgm) {
    // The hardened PGM validation path (truncated header/pixels, comment
    // handling, dimension and maxval caps) is the file reader's, verbatim.
    std::istringstream in(
        std::string(req.payload.begin(), req.payload.end()));
    return dsp::read_pgm(in, "request payload");
  }
  dsp::Image img(req.width, req.height);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    img.data()[i] = static_cast<double>(req.payload[i]);
  }
  return img;
}

hw::TileOptions tile_options(const Request& req,
                             const core::ExecutionBackend* backend) {
  hw::TileOptions opt;
  opt.method = dsp::Method::kLiftingFixed;
  opt.octaves = req.octaves;
  opt.tile_w = opt.tile_h = req.tile != 0 ? req.tile : 64;
  // The pool is the concurrency: one in-request thread keeps workers
  // independent, and tile output is byte-identical at every thread count,
  // so this still matches the CLI's default-threaded run byte for byte.
  opt.threads = 1;
  opt.backend = backend;
  opt.design = req.design;
  opt.opt_level = req.opt_level;
  // Workers always run the fastest execution tier the host supports
  // (kAuto); the DWT_EXEC_TIER environment variable on the daemon is the
  // operational kill-switch back to a portable tier.  Tier choice never
  // changes response bytes, so this is invisible to clients.
  opt.exec_tier = rtl::compiled::ExecTier::kAuto;
  return opt;
}

}  // namespace

std::string backend_metrics_key(const Request& req) {
  return req.backend.empty() ? std::string("default") : req.backend;
}

Response execute_request(const Request& req) {
  const core::ExecutionBackend* backend = nullptr;
  if (!req.backend.empty()) {
    backend = core::find_backend(req.backend);
    if (backend == nullptr) {
      return error_response(Status::kBadRequest,
                            "unknown backend: " + req.backend +
                                " (have: " + core::backend_names() + ")");
    }
  }
  dsp::Image img;
  try {
    img = decode_image_payload(req);
  } catch (const std::exception& e) {
    return error_response(Status::kBadRequest, e.what());
  }
  Response resp;
  resp.op = req.op;
  resp.width = static_cast<std::uint16_t>(img.width());
  resp.height = static_cast<std::uint16_t>(img.height());
  try {
    switch (req.op) {
      case Op::kTileRoundTrip: {
        // Exactly `dwt97cli tile`: forward + inverse through the tile
        // pipeline, reconstruction back as P5 bytes.
        const hw::TileOptions opt = tile_options(req, backend);
        dsp::level_shift_forward(img);
        dsp::round_coefficients(img);
        (void)hw::tile_forward(img, opt);
        hw::TileOptions inv = opt;
        if (inv.backend != nullptr && !inv.backend->caps().inverse_2d) {
          inv.backend = nullptr;
        }
        (void)hw::tile_inverse(img, inv);
        dsp::level_shift_inverse(img);
        std::ostringstream out;
        dsp::write_pgm(img, out, "response");
        const std::string bytes = out.str();
        resp.payload.assign(bytes.begin(), bytes.end());
        return resp;
      }
      case Op::kForward: {
        const hw::TileOptions opt = tile_options(req, backend);
        dsp::level_shift_forward(img);
        dsp::round_coefficients(img);
        (void)hw::tile_forward(img, opt);
        resp.payload.resize(img.data().size() * 4);
        for (std::size_t i = 0; i < img.data().size(); ++i) {
          const auto v =
              static_cast<std::int32_t>(std::llround(img.data()[i]));
          const auto u = static_cast<std::uint32_t>(v);
          resp.payload[4 * i + 0] = static_cast<std::uint8_t>(u & 0xFF);
          resp.payload[4 * i + 1] = static_cast<std::uint8_t>((u >> 8) & 0xFF);
          resp.payload[4 * i + 2] =
              static_cast<std::uint8_t>((u >> 16) & 0xFF);
          resp.payload[4 * i + 3] = static_cast<std::uint8_t>(u >> 24);
        }
        return resp;
      }
      case Op::kCompress: {
        codec::EncodeOptions opt;
        opt.octaves = req.octaves;
        for (double& v : img.data()) v = std::round(v);
        resp.payload = codec::encode_image(img, opt).bytes;
        return resp;
      }
      case Op::kMetrics:
      case Op::kShutdown:
        break;
    }
  } catch (const std::invalid_argument& e) {
    return error_response(Status::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return error_response(Status::kInternalError, e.what());
  }
  return error_response(Status::kBadRequest,
                        "control op is not a transform request");
}

DwtServer::DwtServer(ServerOptions options) : options_(std::move(options)) {
  n_workers_ = options_.workers != 0
                   ? options_.workers
                   : std::max(1u, std::thread::hardware_concurrency());
  if (options_.queue_depth == 0) {
    throw std::invalid_argument("DwtServer: queue depth must be nonzero");
  }
  paused_ = options_.start_paused;
}

DwtServer::~DwtServer() { stop(); }

void DwtServer::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("DwtServer::start: already started");
  }
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error("DwtServer: pipe() failed");
  }
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("DwtServer: unix socket path too long");
    }
    std::memcpy(addr.sun_path, options_.unix_socket_path.c_str(),
                options_.unix_socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("DwtServer: socket() failed");
    ::unlink(options_.unix_socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error("DwtServer: cannot bind " +
                               options_.unix_socket_path);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("DwtServer: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error("DwtServer: cannot bind 127.0.0.1:" +
                               std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    throw std::runtime_error("DwtServer: listen() failed");
  }
  worker_threads_.reserve(n_workers_);
  for (unsigned i = 0; i < n_workers_; ++i) {
    worker_threads_.emplace_back(&DwtServer::worker_loop, this);
  }
  accept_thread_ = std::thread(&DwtServer::accept_loop, this);
}

void DwtServer::begin_drain() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_.store(true);
  }
  shutdown_requested_.store(true);
  queue_cv_.notify_all();
  // The listener stays open: clients arriving during the drain get a
  // structured kShuttingDown answer instead of a silently dropped
  // connection.  Only stop() tears the accept loop down.
}

void DwtServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  begin_drain();
  if (stop_pipe_[1] >= 0) {
    const char wake = 'q';
    (void)!::write(stop_pipe_[1], &wake, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Workers exit once the queue is drained; every accepted request has its
  // promise fulfilled by then.
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
  // Wake connection readers blocked on their client's next frame.
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

std::size_t DwtServer::queue_size() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void DwtServer::set_paused(bool paused) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

std::string DwtServer::metrics_json() const {
  return metrics_.render_json(queue_size(), options_.queue_depth, n_workers_,
                              core::ArtifactCache::instance().stats());
}

bool DwtServer::send_response(int fd, const Response& resp) {
  const std::vector<std::uint8_t> payload = encode_response(resp);
  // Length prefix and body go out in ONE send: a separate 4-byte segment
  // would interact with Nagle + delayed ACK on loopback and cap small-tile
  // throughput at ~25 req/s per connection.
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  const auto n = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<std::uint8_t>(n & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((n >> 8) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((n >> 16) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(n >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return write_all(fd, frame.data(), frame.size());
}

void DwtServer::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() began
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    if (options_.unix_socket_path.empty()) {
      // Request/response pairs are single small segments; without this a
      // Nagle + delayed-ACK handshake serializes each exchange at ~40 ms.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&DwtServer::connection_loop, this, fd);
  }
}

void DwtServer::connection_loop(int fd) {
  for (;;) {
    std::uint8_t len_bytes[4];
    if (!read_exact(fd, len_bytes, 4)) break;  // clean EOF or reset
    const std::uint32_t len =
        static_cast<std::uint32_t>(len_bytes[0]) |
        (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
        (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
        (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (len == 0 || len > kMaxFrameBytes) {
      // Framing is unrecoverable: answer, then close.
      metrics_.record_protocol_error();
      (void)send_response(
          fd, error_response(Status::kBadFrame,
                             "frame length " + std::to_string(len) +
                                 " outside 1.." +
                                 std::to_string(kMaxFrameBytes)));
      break;
    }
    std::vector<std::uint8_t> buf(len);
    if (!read_exact(fd, buf.data(), buf.size())) break;
    std::string parse_error;
    std::optional<Request> req =
        decode_request(buf.data(), buf.size(), &parse_error);
    if (!req) {
      // The frame boundary is intact, so the connection survives a
      // malformed request: structured error, then keep reading.
      metrics_.record_protocol_error();
      if (!send_response(fd, error_response(Status::kBadFrame,
                                            "bad request frame: " +
                                                parse_error))) {
        break;
      }
      continue;
    }
    if (req->op == Op::kMetrics) {
      Response resp;
      resp.status = Status::kOk;
      resp.op = Op::kMetrics;
      const std::string json = metrics_json();
      resp.payload.assign(json.begin(), json.end());
      if (!send_response(fd, resp)) break;
      continue;
    }
    if (req->op == Op::kShutdown) {
      Response resp;
      resp.status = Status::kOk;
      resp.op = Op::kShutdown;
      shutdown_requested_.store(true);
      if (!send_response(fd, resp)) break;
      continue;
    }
    submit(fd, std::move(*req));
  }
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  ::close(fd);
}

void DwtServer::submit(int fd, Request&& req) {
  auto item = std::make_shared<WorkItem>();
  item->request = std::move(req);
  item->enqueued_at = std::chrono::steady_clock::now();
  std::future<Response> result = item->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (draining_.load()) {
      lock.unlock();
      metrics_.record_rejected_shutting_down();
      (void)send_response(
          fd, error_response(Status::kShuttingDown, "server is draining"));
      return;
    }
    if (queue_.size() >= options_.queue_depth) {
      lock.unlock();
      metrics_.record_rejected_queue_full();
      (void)send_response(
          fd, error_response(Status::kQueueFull,
                             "request queue is full (depth " +
                                 std::to_string(options_.queue_depth) + ")"));
      return;
    }
    queue_.push_back(item);
  }
  queue_cv_.notify_one();
  // One outstanding request per connection: responses stay in request
  // order without per-request IDs, and concurrency comes from the number
  // of connections (the load generator opens many).
  (void)send_response(fd, result.get());
}

void DwtServer::worker_loop() {
  for (;;) {
    std::shared_ptr<WorkItem> item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return (!queue_.empty() && !paused_) ||
               (draining_.load() && queue_.empty());
      });
      if (queue_.empty()) return;  // draining and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    Response resp;
    try {
      resp = execute_request(item->request);
    } catch (const std::exception& e) {
      resp = error_response(Status::kInternalError, e.what());
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - item->enqueued_at)
                        .count();
    if (resp.status == Status::kOk) {
      metrics_.record_ok(backend_metrics_key(item->request),
                         static_cast<std::uint64_t>(us));
    } else {
      metrics_.record_error();
    }
    item->promise.set_value(std::move(resp));
  }
}

}  // namespace dwt::server
