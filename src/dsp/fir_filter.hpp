// Direct-form FIR machinery for the 9/7 Daubechies filter bank (paper
// figure 2): analysis/synthesis coefficient sets, integer-rounded variants,
// whole-sample symmetric boundary extension, and generic convolution.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dwt::dsp {

/// The four 9/7 Daubechies biorthogonal filters in JPEG2000 normalization
/// (analysis low-pass DC gain 1, synthesis low-pass DC gain 2).
/// All filters are centered: coefficient index i corresponds to tap offset
/// i - center().
struct Dwt97FirCoeffs {
  std::array<double, 9> analysis_low;
  std::array<double, 7> analysis_high;
  std::array<double, 7> synthesis_low;
  std::array<double, 9> synthesis_high;

  static const Dwt97FirCoeffs& daubechies97();
};

/// Integer-rounded version of the FIR coefficients (scaled by 2^frac_bits,
/// rounded to nearest), used by the "FIR filter by integer rounded 9/7
/// Daubechies coefficients" row of paper Table 2.
struct Dwt97FirFixedCoeffs {
  std::array<std::int64_t, 9> analysis_low;
  std::array<std::int64_t, 7> analysis_high;
  std::array<std::int64_t, 7> synthesis_low;
  std::array<std::int64_t, 9> synthesis_high;
  int frac_bits;

  static Dwt97FirFixedCoeffs rounded(int frac_bits);
};

/// Whole-sample symmetric (WSS / mirror-without-repeat) extension index:
/// maps any integer position onto [0, n-1] by reflecting about samples 0 and
/// n-1, the boundary treatment JPEG2000 prescribes for odd-length filters
/// ("mirroring the boundaries of the samples", paper section 2).
[[nodiscard]] std::size_t mirror_index(std::ptrdiff_t pos, std::size_t n);

/// Evaluates a centered FIR filter at position `pos` of `signal` with WSS
/// extension: sum over taps of coeff[i] * signal[mirror(pos + i - center)].
[[nodiscard]] double fir_at(std::span<const double> signal, std::ptrdiff_t pos,
                            std::span<const double> coeffs);

/// Integer variant: products accumulated exactly, then arithmetic right
/// shift by frac_bits (truncation), matching the paper's hardware adjust.
[[nodiscard]] std::int64_t fir_at_fixed(std::span<const std::int64_t> signal,
                                        std::ptrdiff_t pos,
                                        std::span<const std::int64_t> coeffs,
                                        int frac_bits);

}  // namespace dwt::dsp
