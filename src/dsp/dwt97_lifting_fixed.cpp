#include "dsp/dwt97_lifting_fixed.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_nonempty(std::size_t n, const char* who) {
  if (n == 0) {
    throw std::invalid_argument(std::string(who) + ": empty signal");
  }
}

void require_subband_split(std::size_t ns, std::size_t nd, const char* who) {
  if (ns == 0 || (nd != ns && nd + 1 != ns)) {
    throw std::invalid_argument(
        std::string(who) + ": subband sizes must satisfy ceil/floor split");
  }
}

// Whole-sample symmetric extension on the polyphase arrays (s = ceil(N/2)
// even samples, d = floor(N/2) odd samples): x[-1] = x[1] gives d[-1] = d[0];
// x[N] = x[N-2] gives s[ns] = s[ns-1] for even N and d[nd] = d[nd-1] for odd
// N.  Every sweep below therefore computes the extended signal's lifting
// restricted to the valid window, for any N >= 2.
std::int64_t s_at(std::span<const std::int64_t> s, std::size_t i) {
  return i < s.size() ? s[i] : s[s.size() - 1];
}
std::int64_t d_at(std::span<const std::int64_t> d, std::ptrdiff_t i) {
  if (i < 0) return d.front();
  if (i >= static_cast<std::ptrdiff_t>(d.size())) return d.back();
  return d[static_cast<std::size_t>(i)];
}

std::int64_t d_before(std::span<const std::int64_t> d, std::size_t i) {
  return d_at(d, static_cast<std::ptrdiff_t>(i) - 1);
}

std::int64_t d_pair(std::span<const std::int64_t> d, std::size_t i) {
  return d_before(d, i) + d_at(d, static_cast<std::ptrdiff_t>(i));
}

}  // namespace

std::int64_t lift_step(std::int64_t target, std::int64_t a, std::int64_t b,
                       const common::Fixed& coeff) {
  return target + common::mul_const_truncate(a + b, coeff);
}

std::int64_t scale_step(std::int64_t value, const common::Fixed& coeff) {
  return common::mul_const_truncate(value, coeff);
}

LiftingTrace lifting97_forward_fixed_trace(std::span<const std::int64_t> x,
                                           const LiftingFixedCoeffs& c) {
  require_nonempty(x.size(), "lifting97_forward_fixed");
  LiftingTrace t;
  if (x.size() == 1) {
    // JPEG2000 single-sample rule: an even-indexed singleton passes through.
    t.s0 = {x[0]};
    t.s1 = {x[0]};
    t.s2 = {x[0]};
    t.low = {x[0]};
    return t;
  }
  const std::size_t ns = (x.size() + 1) / 2;
  const std::size_t nd = x.size() / 2;
  t.s0.resize(ns);
  t.d0.resize(nd);
  for (std::size_t i = 0; i < ns; ++i) t.s0[i] = x[2 * i];
  for (std::size_t i = 0; i < nd; ++i) t.d0[i] = x[2 * i + 1];
  t.d1.resize(nd);
  for (std::size_t i = 0; i < nd; ++i)
    t.d1[i] = lift_step(t.d0[i], t.s0[i], s_at(t.s0, i + 1), c.alpha);
  t.s1.resize(ns);
  for (std::size_t i = 0; i < ns; ++i)
    t.s1[i] = lift_step(t.s0[i], d_before(t.d1, i),
                        d_at(t.d1, static_cast<std::ptrdiff_t>(i)), c.beta);
  t.d2.resize(nd);
  for (std::size_t i = 0; i < nd; ++i)
    t.d2[i] = lift_step(t.d1[i], t.s1[i], s_at(t.s1, i + 1), c.gamma);
  t.s2.resize(ns);
  for (std::size_t i = 0; i < ns; ++i)
    t.s2[i] = lift_step(t.s1[i], d_before(t.d2, i),
                        d_at(t.d2, static_cast<std::ptrdiff_t>(i)), c.delta);
  t.low.resize(ns);
  t.high.resize(nd);
  for (std::size_t i = 0; i < ns; ++i) t.low[i] = scale_step(t.s2[i], c.inv_k);
  for (std::size_t i = 0; i < nd; ++i)
    t.high[i] = scale_step(t.d2[i], c.minus_k);
  return t;
}

LiftSubbandsFixed lifting97_forward_fixed(std::span<const std::int64_t> x,
                                          const LiftingFixedCoeffs& c) {
  LiftingTrace t = lifting97_forward_fixed_trace(x, c);
  return {std::move(t.low), std::move(t.high)};
}

std::vector<std::int64_t> lifting97_inverse_fixed(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const LiftingFixedCoeffs& c) {
  const std::size_t ns = low.size();
  const std::size_t nd = high.size();
  require_subband_split(ns, nd, "lifting97_inverse_fixed");
  if (ns == 1 && nd == 0) return {low[0]};
  std::vector<std::int64_t> s(ns);
  std::vector<std::int64_t> d(nd);
  for (std::size_t i = 0; i < ns; ++i) {
    s[i] = scale_step(low[i], c.k);  // undo 1/k (lossy in fixed point)
  }
  for (std::size_t i = 0; i < nd; ++i) {
    d[i] = scale_step(high[i], c.minus_inv_k);  // undo -k (lossy in fixed point)
  }
  // The lifting-step subtractions recompute the identical truncated update
  // term, so they invert the forward steps exactly; only the k scaling and
  // the coefficient rounding introduce error.
  for (std::size_t i = 0; i < ns; ++i)
    s[i] -= common::mul_const_truncate(d_pair(d, i), c.delta);
  for (std::size_t i = 0; i < nd; ++i)
    d[i] -= common::mul_const_truncate(s[i] + s_at(s, i + 1), c.gamma);
  for (std::size_t i = 0; i < ns; ++i)
    s[i] -= common::mul_const_truncate(d_pair(d, i), c.beta);
  for (std::size_t i = 0; i < nd; ++i)
    d[i] -= common::mul_const_truncate(s[i] + s_at(s, i + 1), c.alpha);

  std::vector<std::int64_t> x(ns + nd);
  for (std::size_t i = 0; i < ns; ++i) x[2 * i] = s[i];
  for (std::size_t i = 0; i < nd; ++i) x[2 * i + 1] = d[i];
  return x;
}

namespace {

std::int64_t floor_mul(double c, std::int64_t v) {
  return static_cast<std::int64_t>(std::floor(c * static_cast<double>(v)));
}

}  // namespace

LiftSubbandsFixed lifting97_forward_hw(std::span<const std::int64_t> x,
                                       const LiftingCoeffs& c) {
  require_nonempty(x.size(), "lifting97_forward_hw");
  if (x.size() == 1) return {{x[0]}, {}};
  const std::size_t ns = (x.size() + 1) / 2;
  const std::size_t nd = x.size() / 2;
  std::vector<std::int64_t> s(ns);
  std::vector<std::int64_t> d(nd);
  for (std::size_t i = 0; i < ns; ++i) s[i] = x[2 * i];
  for (std::size_t i = 0; i < nd; ++i) d[i] = x[2 * i + 1];
  for (std::size_t i = 0; i < nd; ++i)
    d[i] += floor_mul(c.alpha, s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < ns; ++i)
    s[i] += floor_mul(c.beta, d_pair(d, i));
  for (std::size_t i = 0; i < nd; ++i)
    d[i] += floor_mul(c.gamma, s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < ns; ++i)
    s[i] += floor_mul(c.delta, d_pair(d, i));
  LiftSubbandsFixed out;
  out.low.resize(ns);
  out.high.resize(nd);
  for (std::size_t i = 0; i < ns; ++i) out.low[i] = floor_mul(1.0 / c.k, s[i]);
  for (std::size_t i = 0; i < nd; ++i) out.high[i] = floor_mul(-c.k, d[i]);
  return out;
}

std::vector<std::int64_t> lifting97_inverse_hw(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const LiftingCoeffs& c) {
  const std::size_t ns = low.size();
  const std::size_t nd = high.size();
  require_subband_split(ns, nd, "lifting97_inverse_hw");
  if (ns == 1 && nd == 0) return {low[0]};
  std::vector<std::int64_t> s(ns);
  std::vector<std::int64_t> d(nd);
  for (std::size_t i = 0; i < ns; ++i) {
    s[i] = floor_mul(c.k, low[i]);  // undo 1/k (lossy)
  }
  for (std::size_t i = 0; i < nd; ++i) {
    d[i] = floor_mul(-1.0 / c.k, high[i]);  // undo -k (lossy)
  }
  for (std::size_t i = 0; i < ns; ++i)
    s[i] -= floor_mul(c.delta, d_pair(d, i));
  for (std::size_t i = 0; i < nd; ++i)
    d[i] -= floor_mul(c.gamma, s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < ns; ++i)
    s[i] -= floor_mul(c.beta, d_pair(d, i));
  for (std::size_t i = 0; i < nd; ++i)
    d[i] -= floor_mul(c.alpha, s[i] + s_at(s, i + 1));
  std::vector<std::int64_t> x(ns + nd);
  for (std::size_t i = 0; i < ns; ++i) x[2 * i] = s[i];
  for (std::size_t i = 0; i < nd; ++i) x[2 * i + 1] = d[i];
  return x;
}

}  // namespace dwt::dsp
