#include "dsp/dwt97_lifting_fixed.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_even_nonempty(std::size_t n, const char* who) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument(std::string(who) +
                                ": signal length must be even and non-zero");
  }
}

std::int64_t s_at(std::span<const std::int64_t> s, std::size_t i) {
  return i < s.size() ? s[i] : s[s.size() - 1];
}
std::int64_t d_before(std::span<const std::int64_t> d, std::size_t i) {
  return i == 0 ? d[0] : d[i - 1];
}

}  // namespace

std::int64_t lift_step(std::int64_t target, std::int64_t a, std::int64_t b,
                       const common::Fixed& coeff) {
  return target + common::mul_const_truncate(a + b, coeff);
}

std::int64_t scale_step(std::int64_t value, const common::Fixed& coeff) {
  return common::mul_const_truncate(value, coeff);
}

LiftingTrace lifting97_forward_fixed_trace(std::span<const std::int64_t> x,
                                           const LiftingFixedCoeffs& c) {
  require_even_nonempty(x.size(), "lifting97_forward_fixed");
  const std::size_t half = x.size() / 2;
  LiftingTrace t;
  t.s0.resize(half);
  t.d0.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    t.s0[i] = x[2 * i];
    t.d0[i] = x[2 * i + 1];
  }
  t.d1.resize(half);
  for (std::size_t i = 0; i < half; ++i)
    t.d1[i] = lift_step(t.d0[i], t.s0[i], s_at(t.s0, i + 1), c.alpha);
  t.s1.resize(half);
  for (std::size_t i = 0; i < half; ++i)
    t.s1[i] = lift_step(t.s0[i], d_before(t.d1, i), t.d1[i], c.beta);
  t.d2.resize(half);
  for (std::size_t i = 0; i < half; ++i)
    t.d2[i] = lift_step(t.d1[i], t.s1[i], s_at(t.s1, i + 1), c.gamma);
  t.s2.resize(half);
  for (std::size_t i = 0; i < half; ++i)
    t.s2[i] = lift_step(t.s1[i], d_before(t.d2, i), t.d2[i], c.delta);
  t.low.resize(half);
  t.high.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    t.low[i] = scale_step(t.s2[i], c.inv_k);
    t.high[i] = scale_step(t.d2[i], c.minus_k);
  }
  return t;
}

LiftSubbandsFixed lifting97_forward_fixed(std::span<const std::int64_t> x,
                                          const LiftingFixedCoeffs& c) {
  LiftingTrace t = lifting97_forward_fixed_trace(x, c);
  return {std::move(t.low), std::move(t.high)};
}

std::vector<std::int64_t> lifting97_inverse_fixed(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const LiftingFixedCoeffs& c) {
  if (low.size() != high.size()) {
    throw std::invalid_argument(
        "lifting97_inverse_fixed: subband size mismatch");
  }
  const std::size_t half = low.size();
  if (half == 0) {
    throw std::invalid_argument("lifting97_inverse_fixed: empty input");
  }
  std::vector<std::int64_t> s(half);
  std::vector<std::int64_t> d(half);
  for (std::size_t i = 0; i < half; ++i) {
    s[i] = scale_step(low[i], c.k);            // undo 1/k (lossy in fixed point)
    d[i] = scale_step(high[i], c.minus_inv_k); // undo -k  (lossy in fixed point)
  }
  // The lifting-step subtractions recompute the identical truncated update
  // term, so they invert the forward steps exactly; only the k scaling and
  // the coefficient rounding introduce error.
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= common::mul_const_truncate(d_before(d, i) + d[i], c.delta);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= common::mul_const_truncate(s[i] + s_at(s, i + 1), c.gamma);
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= common::mul_const_truncate(d_before(d, i) + d[i], c.beta);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= common::mul_const_truncate(s[i] + s_at(s, i + 1), c.alpha);

  std::vector<std::int64_t> x(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    x[2 * i] = s[i];
    x[2 * i + 1] = d[i];
  }
  return x;
}

namespace {

std::int64_t floor_mul(double c, std::int64_t v) {
  return static_cast<std::int64_t>(std::floor(c * static_cast<double>(v)));
}

}  // namespace

LiftSubbandsFixed lifting97_forward_hw(std::span<const std::int64_t> x,
                                       const LiftingCoeffs& c) {
  require_even_nonempty(x.size(), "lifting97_forward_hw");
  const std::size_t half = x.size() / 2;
  std::vector<std::int64_t> s(half);
  std::vector<std::int64_t> d(half);
  for (std::size_t i = 0; i < half; ++i) {
    s[i] = x[2 * i];
    d[i] = x[2 * i + 1];
  }
  for (std::size_t i = 0; i < half; ++i)
    d[i] += floor_mul(c.alpha, s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < half; ++i)
    s[i] += floor_mul(c.beta, d_before(d, i) + d[i]);
  for (std::size_t i = 0; i < half; ++i)
    d[i] += floor_mul(c.gamma, s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < half; ++i)
    s[i] += floor_mul(c.delta, d_before(d, i) + d[i]);
  LiftSubbandsFixed out;
  out.low.resize(half);
  out.high.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    out.low[i] = floor_mul(1.0 / c.k, s[i]);
    out.high[i] = floor_mul(-c.k, d[i]);
  }
  return out;
}

std::vector<std::int64_t> lifting97_inverse_hw(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const LiftingCoeffs& c) {
  if (low.size() != high.size()) {
    throw std::invalid_argument("lifting97_inverse_hw: subband size mismatch");
  }
  const std::size_t half = low.size();
  if (half == 0) {
    throw std::invalid_argument("lifting97_inverse_hw: empty input");
  }
  std::vector<std::int64_t> s(half);
  std::vector<std::int64_t> d(half);
  for (std::size_t i = 0; i < half; ++i) {
    s[i] = floor_mul(c.k, low[i]);          // undo 1/k (lossy)
    d[i] = floor_mul(-1.0 / c.k, high[i]);  // undo -k  (lossy)
  }
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= floor_mul(c.delta, d_before(d, i) + d[i]);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= floor_mul(c.gamma, s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= floor_mul(c.beta, d_before(d, i) + d[i]);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= floor_mul(c.alpha, s[i] + s_at(s, i + 1));
  std::vector<std::int64_t> x(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    x[2 * i] = s[i];
    x[2 * i + 1] = d[i];
  }
  return x;
}

}  // namespace dwt::dsp
