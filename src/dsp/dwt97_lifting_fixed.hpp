// Bit-true integer model of the paper's lifting datapath (sections 3.1-3.2):
// every lifting step multiplies by an integer-rounded constant and truncates
// with an arithmetic right shift.  This model is the golden reference the
// five gate-level hardware designs are verified against bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/lifting_coeffs.hpp"

namespace dwt::dsp {

struct LiftSubbandsFixed {
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
};

/// Intermediate per-sample values of the datapath, used to cross-check the
/// hardware pipeline registers and to measure the actual value ranges of
/// paper section 3.1.
struct LiftingTrace {
  std::vector<std::int64_t> s0, d0;  ///< input even / odd phases
  std::vector<std::int64_t> d1;      ///< after alpha predict
  std::vector<std::int64_t> s1;      ///< after beta update
  std::vector<std::int64_t> d2;      ///< after gamma predict
  std::vector<std::int64_t> s2;      ///< after delta update
  std::vector<std::int64_t> low;     ///< s2 * (1/k) >> f
  std::vector<std::int64_t> high;    ///< d2 * (-k) >> f
};

[[nodiscard]] LiftSubbandsFixed lifting97_forward_fixed(
    std::span<const std::int64_t> x, const LiftingFixedCoeffs& c);

[[nodiscard]] std::vector<std::int64_t> lifting97_inverse_fixed(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const LiftingFixedCoeffs& c);

/// Forward transform that also records every intermediate stage.
[[nodiscard]] LiftingTrace lifting97_forward_fixed_trace(
    std::span<const std::int64_t> x, const LiftingFixedCoeffs& c);

/// The elementary datapath operation: target + ((coeff.raw * (a+b)) >> f).
/// Exposed so the hardware model and the software model provably share one
/// definition of the rounding behaviour.
[[nodiscard]] std::int64_t lift_step(std::int64_t target, std::int64_t a,
                                     std::int64_t b, const common::Fixed& coeff);

/// The output scaling operation: (value * coeff.raw) >> f.
[[nodiscard]] std::int64_t scale_step(std::int64_t value,
                                      const common::Fixed& coeff);

/// Hardware-style lifting with *full-precision* multiplier constants: the
/// running state is truncated to an integer after every lifting step and
/// after the output scaling, exactly as a datapath with ideal (floating
/// point) multipliers but integer registers would behave.  This is the
/// "Lifting scheme by floating point factorized coefficients" method of
/// paper Table 2; with constants rounded to n/2^f it coincides bit-for-bit
/// with lifting97_forward_fixed.
[[nodiscard]] LiftSubbandsFixed lifting97_forward_hw(
    std::span<const std::int64_t> x, const LiftingCoeffs& c);

[[nodiscard]] std::vector<std::int64_t> lifting97_inverse_hw(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const LiftingCoeffs& c);

}  // namespace dwt::dsp
