// Synthetic still-tone test image generator.  The paper measures PSNR on "a
// tile of Lena"; that image is not redistributable, so we generate a
// deterministic photograph-like scene (smooth illumination gradient, large
// round objects with soft shading, a few sharp edges and mild texture) whose
// pixel-correlation statistics match what the DWT exploits.  DESIGN.md
// documents this substitution.
#pragma once

#include <cstdint>

#include "dsp/image.hpp"

namespace dwt::dsp {

/// Deterministic "synthetic portrait" test scene, values in [0, 255].
[[nodiscard]] Image make_still_tone_image(std::size_t width,
                                          std::size_t height,
                                          std::uint64_t seed = 2005);

/// Uniform-noise image (worst case for transform coding), values in [0,255].
[[nodiscard]] Image make_noise_image(std::size_t width, std::size_t height,
                                     std::uint64_t seed = 1);

/// Horizontal ramp image (best case: perfectly smooth).
[[nodiscard]] Image make_ramp_image(std::size_t width, std::size_t height);

}  // namespace dwt::dsp
