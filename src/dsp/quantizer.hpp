// JPEG2000-style scalar deadzone quantizer (extension beyond the paper's
// core experiments; the paper motivates the DWT by the quantize+code stages
// that follow it).  Used by the image-compression example to demonstrate the
// end-to-end lossy pipeline the DWT feeds.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/dwt2d.hpp"
#include "dsp/image.hpp"

namespace dwt::dsp {

/// Uniform deadzone quantizer: q = sign(v) * floor(|v| / step).
struct DeadzoneQuantizer {
  double step = 1.0;

  [[nodiscard]] std::int64_t quantize(double v) const;
  /// Midpoint reconstruction: v = sign(q) * (|q| + 0.5) * step, 0 for q = 0.
  [[nodiscard]] double dequantize(std::int64_t q) const;
};

/// Per-octave quantization of a transformed plane: the LL band of the final
/// octave uses `base_step`; each finer octave's detail bands use a step that
/// doubles per level (a standard resolution-weighted allocation).
void quantize_plane(Image& plane, int octaves, double base_step);

/// Fraction of coefficients quantized to zero -- the energy-compaction
/// measure the paper's introduction argues motivates the DWT.
[[nodiscard]] double zero_fraction(const Image& plane);

}  // namespace dwt::dsp
