// One-octave 1-D DWT by the lifting scheme (paper figure 3), floating point.
// The signal is split into even/odd phases, run through the four lifting
// steps (predict alpha, update beta, predict gamma, update delta) and scaled:
// low-pass = even / k, high-pass = -k * odd, matching the paper's datapath.
#pragma once

#include <span>
#include <vector>

#include "dsp/lifting_coeffs.hpp"

namespace dwt::dsp {

struct LiftSubbands {
  std::vector<double> low;
  std::vector<double> high;
};

[[nodiscard]] LiftSubbands lifting97_forward(std::span<const double> x,
                                             const LiftingCoeffs& c =
                                                 LiftingCoeffs::daubechies97());

[[nodiscard]] std::vector<double> lifting97_inverse(
    std::span<const double> low, std::span<const double> high,
    const LiftingCoeffs& c = LiftingCoeffs::daubechies97());

}  // namespace dwt::dsp
