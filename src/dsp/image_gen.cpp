#include "dsp/image_gen.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace dwt::dsp {
namespace {

double soft_disk(double x, double y, double cx, double cy, double r,
                 double softness) {
  const double d = std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy));
  // 1 inside, 0 outside, smooth roll-off of width `softness`.
  return 0.5 * (1.0 - std::tanh((d - r) / softness));
}

}  // namespace

Image make_still_tone_image(std::size_t width, std::size_t height,
                            std::uint64_t seed) {
  Image img(width, height);
  common::Rng rng(seed);
  // Low-frequency texture field: a small number of random smooth cosines.
  struct Wave {
    double fx, fy, phase, amp;
  };
  std::array<Wave, 6> waves{};
  for (Wave& w : waves) {
    w.fx = rng.uniform01() * 6.0 + 0.5;
    w.fy = rng.uniform01() * 6.0 + 0.5;
    w.phase = rng.uniform01() * 6.283185307179586;
    w.amp = rng.uniform01() * 6.0 + 2.0;
  }
  const double w = static_cast<double>(width);
  const double h = static_cast<double>(height);
  for (std::size_t yi = 0; yi < height; ++yi) {
    for (std::size_t xi = 0; xi < width; ++xi) {
      const double x = static_cast<double>(xi) / w;
      const double y = static_cast<double>(yi) / h;
      // Global illumination gradient (top-left bright).
      double v = 170.0 - 60.0 * x - 40.0 * y;
      // Large shaded objects ("face", "hat brim", "shoulder").
      v += 55.0 * soft_disk(x, y, 0.55, 0.40, 0.22, 0.06) * (1.0 - 0.5 * y);
      v -= 70.0 * soft_disk(x, y, 0.30, 0.18, 0.16, 0.03);
      v += 35.0 * soft_disk(x, y, 0.70, 0.80, 0.30, 0.10);
      // A sharp vertical edge (door frame) and a diagonal edge.
      if (x > 0.85) v -= 60.0;
      if (y > 0.9 - 0.2 * x) v += 25.0;
      // Mild band-limited texture.
      for (const Wave& wav : waves) {
        v += wav.amp *
             std::cos(6.283185307179586 * (wav.fx * x + wav.fy * y) + wav.phase);
      }
      // Fine deterministic grain (sensor noise) -- small so the image stays
      // dominated by correlated content.
      v += (rng.uniform01() - 0.5) * 4.0;
      img.at(xi, yi) = std::clamp(v, 0.0, 255.0);
    }
  }
  return img;
}

Image make_noise_image(std::size_t width, std::size_t height,
                       std::uint64_t seed) {
  Image img(width, height);
  common::Rng rng(seed);
  for (double& v : img.data()) {
    v = static_cast<double>(rng.uniform(0, 255));
  }
  return img;
}

Image make_ramp_image(std::size_t width, std::size_t height) {
  Image img(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      img.at(x, y) =
          255.0 * static_cast<double>(x) / static_cast<double>(width - 1);
    }
  }
  return img;
}

}  // namespace dwt::dsp
