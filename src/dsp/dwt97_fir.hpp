// One-octave 1-D DWT by direct 9/7 FIR filter bank (paper figure 2), in
// floating point and in integer-rounded fixed point.  Even-length signals
// with whole-sample symmetric boundary extension.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/fir_filter.hpp"

namespace dwt::dsp {

/// Analysis: x (length N >= 1, any parity) -> low (ceil(N/2), at even phase)
/// and high (floor(N/2), at odd phase); N == 1 passes through.
struct FirSubbands {
  std::vector<double> low;
  std::vector<double> high;
};

struct FirSubbandsFixed {
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
};

[[nodiscard]] FirSubbands fir97_forward(std::span<const double> x);
[[nodiscard]] std::vector<double> fir97_inverse(std::span<const double> low,
                                                std::span<const double> high);

/// Fixed-point variants: coefficients scaled by 2^frac_bits and rounded, the
/// accumulated products truncated back with an arithmetic right shift -- the
/// "FIR filter by integer rounded 9/7 Daubechies coefficients" method of
/// paper Table 2.
[[nodiscard]] FirSubbandsFixed fir97_forward_fixed(
    std::span<const std::int64_t> x, const Dwt97FirFixedCoeffs& coeffs);
[[nodiscard]] std::vector<std::int64_t> fir97_inverse_fixed(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const Dwt97FirFixedCoeffs& coeffs);

/// Hardware-style FIR with *full-precision* coefficients: the accumulation
/// is exact in the reals but each output coefficient is truncated to an
/// integer, as a datapath with ideal multipliers but integer output
/// registers behaves.  This is the "FIR filter by floating point 9/7
/// Daubechies coefficients" method of paper Table 2.
[[nodiscard]] FirSubbandsFixed fir97_forward_hw(
    std::span<const std::int64_t> x, const Dwt97FirCoeffs& coeffs);
[[nodiscard]] std::vector<std::int64_t> fir97_inverse_hw(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const Dwt97FirCoeffs& coeffs);

/// Resource count of the direct-form architecture in paper figure 2
/// (16 adders, 16 multipliers, 8 delay registers).
struct FirArchitectureCost {
  int adders;
  int multipliers;
  int delay_registers;
};
[[nodiscard]] constexpr FirArchitectureCost fir97_architecture_cost() {
  return {.adders = 16, .multipliers = 16, .delay_registers = 8};
}

}  // namespace dwt::dsp
