#include "dsp/dwt97_lifting.hpp"

#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_even_nonempty(std::size_t n, const char* who) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument(std::string(who) +
                                ": signal length must be even and non-zero");
  }
}

// Boundary access derived from whole-sample symmetric extension of the
// original signal: x[-1] = x[1] implies d[-1] = d[0]; x[N] = x[N-2] implies
// s[h] = s[h-1].
double s_at(std::span<const double> s, std::size_t i) {
  return i < s.size() ? s[i] : s[s.size() - 1];
}
double d_before(std::span<const double> d, std::size_t i) {
  return i == 0 ? d[0] : d[i - 1];
}

}  // namespace

LiftSubbands lifting97_forward(std::span<const double> x,
                               const LiftingCoeffs& c) {
  require_even_nonempty(x.size(), "lifting97_forward");
  const std::size_t half = x.size() / 2;
  std::vector<double> s(half);  // even phase
  std::vector<double> d(half);  // odd phase
  for (std::size_t i = 0; i < half; ++i) {
    s[i] = x[2 * i];
    d[i] = x[2 * i + 1];
  }
  for (std::size_t i = 0; i < half; ++i)  // predict 1
    d[i] += c.alpha * (s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < half; ++i)  // update 1
    s[i] += c.beta * (d_before(d, i) + d[i]);
  for (std::size_t i = 0; i < half; ++i)  // predict 2
    d[i] += c.gamma * (s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < half; ++i)  // update 2
    s[i] += c.delta * (d_before(d, i) + d[i]);

  LiftSubbands out;
  out.low.resize(half);
  out.high.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    out.low[i] = s[i] / c.k;
    out.high[i] = -c.k * d[i];
  }
  return out;
}

std::vector<double> lifting97_inverse(std::span<const double> low,
                                      std::span<const double> high,
                                      const LiftingCoeffs& c) {
  if (low.size() != high.size()) {
    throw std::invalid_argument("lifting97_inverse: subband size mismatch");
  }
  const std::size_t half = low.size();
  if (half == 0) throw std::invalid_argument("lifting97_inverse: empty input");
  std::vector<double> s(half);
  std::vector<double> d(half);
  for (std::size_t i = 0; i < half; ++i) {
    s[i] = low[i] * c.k;
    d[i] = high[i] / -c.k;
  }
  // Inverse lifting steps in reverse order.  Within a step every output
  // depends only on the *other* phase, so in-place sweeps are exact inverses.
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= c.delta * (d_before(d, i) + d[i]);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= c.gamma * (s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < half; ++i)
    s[i] -= c.beta * (d_before(d, i) + d[i]);
  for (std::size_t i = 0; i < half; ++i)
    d[i] -= c.alpha * (s[i] + s_at(s, i + 1));

  std::vector<double> x(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    x[2 * i] = s[i];
    x[2 * i + 1] = d[i];
  }
  return x;
}

}  // namespace dwt::dsp
