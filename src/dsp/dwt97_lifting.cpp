#include "dsp/dwt97_lifting.hpp"

#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_nonempty(std::size_t n, const char* who) {
  if (n == 0) {
    throw std::invalid_argument(std::string(who) + ": empty signal");
  }
}

// Boundary access derived from whole-sample symmetric extension of the
// original signal about samples 0 and N-1:
//   x[-1] = x[1]            implies d[-1] = d[0];
//   x[N] = x[N-2], N even   implies s[ns] = s[ns-1];
//   x[N] = x[N-2], N odd    implies d[nd] = d[nd-1].
// With s holding the ceil(N/2) even-phase samples and d the floor(N/2)
// odd-phase samples, every lifting sweep below stays on the extended
// signal's restriction, so any N >= 2 transforms exactly.
double s_at(std::span<const double> s, std::size_t i) {
  return i < s.size() ? s[i] : s[s.size() - 1];
}
double d_at(std::span<const double> d, std::ptrdiff_t i) {
  if (i < 0) return d.front();
  if (i >= static_cast<std::ptrdiff_t>(d.size())) return d.back();
  return d[static_cast<std::size_t>(i)];
}

}  // namespace

LiftSubbands lifting97_forward(std::span<const double> x,
                               const LiftingCoeffs& c) {
  require_nonempty(x.size(), "lifting97_forward");
  if (x.size() == 1) {
    // JPEG2000 single-sample rule: an even-indexed singleton passes through.
    return {{x[0]}, {}};
  }
  const std::size_t ns = (x.size() + 1) / 2;  // even phase, ceil(N/2)
  const std::size_t nd = x.size() / 2;        // odd phase, floor(N/2)
  std::vector<double> s(ns);
  std::vector<double> d(nd);
  for (std::size_t i = 0; i < ns; ++i) s[i] = x[2 * i];
  for (std::size_t i = 0; i < nd; ++i) d[i] = x[2 * i + 1];
  for (std::size_t i = 0; i < nd; ++i)  // predict 1
    d[i] += c.alpha * (s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < ns; ++i)  // update 1
    s[i] += c.beta * (d_at(d, static_cast<std::ptrdiff_t>(i) - 1) +
                      d_at(d, static_cast<std::ptrdiff_t>(i)));
  for (std::size_t i = 0; i < nd; ++i)  // predict 2
    d[i] += c.gamma * (s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < ns; ++i)  // update 2
    s[i] += c.delta * (d_at(d, static_cast<std::ptrdiff_t>(i) - 1) +
                       d_at(d, static_cast<std::ptrdiff_t>(i)));

  LiftSubbands out;
  out.low.resize(ns);
  out.high.resize(nd);
  for (std::size_t i = 0; i < ns; ++i) out.low[i] = s[i] / c.k;
  for (std::size_t i = 0; i < nd; ++i) out.high[i] = -c.k * d[i];
  return out;
}

std::vector<double> lifting97_inverse(std::span<const double> low,
                                      std::span<const double> high,
                                      const LiftingCoeffs& c) {
  const std::size_t ns = low.size();
  const std::size_t nd = high.size();
  if (ns == 0 || (nd != ns && nd + 1 != ns)) {
    throw std::invalid_argument(
        "lifting97_inverse: subband sizes must satisfy ceil/floor split");
  }
  if (ns == 1 && nd == 0) return {low[0]};
  std::vector<double> s(ns);
  std::vector<double> d(nd);
  for (std::size_t i = 0; i < ns; ++i) s[i] = low[i] * c.k;
  for (std::size_t i = 0; i < nd; ++i) d[i] = high[i] / -c.k;
  // Inverse lifting steps in reverse order.  Within a step every output
  // depends only on the *other* phase, so in-place sweeps are exact inverses.
  for (std::size_t i = 0; i < ns; ++i)
    s[i] -= c.delta * (d_at(d, static_cast<std::ptrdiff_t>(i) - 1) +
                       d_at(d, static_cast<std::ptrdiff_t>(i)));
  for (std::size_t i = 0; i < nd; ++i)
    d[i] -= c.gamma * (s[i] + s_at(s, i + 1));
  for (std::size_t i = 0; i < ns; ++i)
    s[i] -= c.beta * (d_at(d, static_cast<std::ptrdiff_t>(i) - 1) +
                      d_at(d, static_cast<std::ptrdiff_t>(i)));
  for (std::size_t i = 0; i < nd; ++i)
    d[i] -= c.alpha * (s[i] + s_at(s, i + 1));

  std::vector<double> x(ns + nd);
  for (std::size_t i = 0; i < ns; ++i) x[2 * i] = s[i];
  for (std::size_t i = 0; i < nd; ++i) x[2 * i + 1] = d[i];
  return x;
}

}  // namespace dwt::dsp
