#include "dsp/dwt2d.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_nonzero(std::size_t w, std::size_t h, const char* who) {
  if (w == 0 || h == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": region must have non-zero sides");
  }
}

/// Low-pass side of the ceil/floor split an N-sample line produces.
std::size_t low_size(std::size_t n) { return (n + 1) / 2; }

// Packs subbands (low first, then high) into a single line.
std::vector<double> pack(const Subbands1d& s) {
  std::vector<double> out;
  out.reserve(s.low.size() + s.high.size());
  out.insert(out.end(), s.low.begin(), s.low.end());
  out.insert(out.end(), s.high.begin(), s.high.end());
  return out;
}

}  // namespace

SubbandRect subband_rect(std::size_t w, std::size_t h, int octave, Band band) {
  if (octave < 1) throw std::invalid_argument("subband_rect: octave < 1");
  require_nonzero(w, h, "subband_rect");
  // Dimensions of the LL region the requested octave decomposes: each
  // octave keeps the ceil(n/2) low-pass samples of the previous one.
  std::size_t cw = w, ch = h;
  for (int i = 0; i < octave - 1; ++i) {
    cw = low_size(cw);
    ch = low_size(ch);
  }
  const std::size_t lw = low_size(cw), lh = low_size(ch);
  const std::size_t hw = cw - lw, hh = ch - lh;  // floor(cw/2), floor(ch/2)
  switch (band) {
    case Band::kLL: return {0, 0, lw, lh};
    case Band::kHL: return {lw, 0, hw, lh};
    case Band::kLH: return {0, lh, lw, hh};
    case Band::kHH: return {lw, lh, hw, hh};
  }
  throw std::invalid_argument("subband_rect: unknown band");
}

void dwt2d_forward_octave(Method m, Image& plane, std::size_t w, std::size_t h,
                          int frac_bits) {
  require_nonzero(w, h, "dwt2d_forward_octave");
  for (std::size_t y = 0; y < h; ++y) {
    plane.set_row(y, pack(dwt1d_forward(m, plane.row(y, w), frac_bits)));
  }
  for (std::size_t x = 0; x < w; ++x) {
    plane.set_col(x, pack(dwt1d_forward(m, plane.col(x, h), frac_bits)));
  }
}

void dwt2d_inverse_octave(Method m, Image& plane, std::size_t w, std::size_t h,
                          int frac_bits) {
  require_nonzero(w, h, "dwt2d_inverse_octave");
  const auto lh = static_cast<std::ptrdiff_t>(low_size(h));
  for (std::size_t x = 0; x < w; ++x) {
    const std::vector<double> c = plane.col(x, h);
    const std::vector<double> low(c.begin(), c.begin() + lh);
    const std::vector<double> high(c.begin() + lh, c.end());
    plane.set_col(x, dwt1d_inverse(m, low, high, frac_bits));
  }
  const auto lw = static_cast<std::ptrdiff_t>(low_size(w));
  for (std::size_t y = 0; y < h; ++y) {
    const std::vector<double> r = plane.row(y, w);
    const std::vector<double> low(r.begin(), r.begin() + lw);
    const std::vector<double> high(r.begin() + lw, r.end());
    plane.set_row(y, dwt1d_inverse(m, low, high, frac_bits));
  }
}

void dwt2d_forward(Method m, Image& plane, int octaves, int frac_bits) {
  if (octaves < 1) throw std::invalid_argument("dwt2d_forward: octaves < 1");
  std::size_t w = plane.width();
  std::size_t h = plane.height();
  for (int o = 0; o < octaves; ++o) {
    dwt2d_forward_octave(m, plane, w, h, frac_bits);
    w = low_size(w);
    h = low_size(h);
  }
}

void dwt2d_inverse(Method m, Image& plane, int octaves, int frac_bits) {
  if (octaves < 1) throw std::invalid_argument("dwt2d_inverse: octaves < 1");
  // Reverse order: smallest LL first.
  std::size_t w = plane.width();
  std::size_t h = plane.height();
  std::vector<std::pair<std::size_t, std::size_t>> sizes;
  for (int o = 0; o < octaves; ++o) {
    sizes.emplace_back(w, h);
    w = low_size(w);
    h = low_size(h);
  }
  for (auto it = sizes.rbegin(); it != sizes.rend(); ++it) {
    dwt2d_inverse_octave(m, plane, it->first, it->second, frac_bits);
  }
}

void level_shift_forward(Image& img) {
  for (double& v : img.data()) v -= 128.0;
}

void level_shift_inverse(Image& img) {
  for (double& v : img.data()) v += 128.0;
}

void round_coefficients(Image& plane) {
  for (double& v : plane.data()) v = std::round(v);
}

}  // namespace dwt::dsp
