#include "dsp/quantizer.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::dsp {

std::int64_t DeadzoneQuantizer::quantize(double v) const {
  if (step <= 0) throw std::invalid_argument("DeadzoneQuantizer: step <= 0");
  const double a = std::floor(std::abs(v) / step);
  return v < 0 ? -static_cast<std::int64_t>(a) : static_cast<std::int64_t>(a);
}

double DeadzoneQuantizer::dequantize(std::int64_t q) const {
  if (q == 0) return 0.0;
  const double a = (static_cast<double>(std::abs(q)) + 0.5) * step;
  return q < 0 ? -a : a;
}

void quantize_plane(Image& plane, int octaves, double base_step) {
  if (octaves < 1) throw std::invalid_argument("quantize_plane: octaves < 1");
  const std::size_t w = plane.width();
  const std::size_t h = plane.height();
  auto apply = [&plane](const SubbandRect& r, double step) {
    const DeadzoneQuantizer q{step};
    for (std::size_t y = r.y0; y < r.y0 + r.h; ++y) {
      for (std::size_t x = r.x0; x < r.x0 + r.w; ++x) {
        plane.at(x, y) = q.dequantize(q.quantize(plane.at(x, y)));
      }
    }
  };
  // Detail bands: coarser octaves carry more perceptual weight, so finer
  // octaves get a larger step (halving weight per level).
  for (int o = 1; o <= octaves; ++o) {
    const double step = base_step * std::pow(2.0, octaves - o);
    apply(subband_rect(w, h, o, Band::kHL), step);
    apply(subband_rect(w, h, o, Band::kLH), step);
    apply(subband_rect(w, h, o, Band::kHH), step);
  }
  apply(subband_rect(w, h, octaves, Band::kLL), base_step * 0.5);
}

double zero_fraction(const Image& plane) {
  if (plane.empty()) throw std::invalid_argument("zero_fraction: empty plane");
  std::size_t zeros = 0;
  for (const double v : plane.data()) {
    if (v == 0.0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(plane.data().size());
}

}  // namespace dwt::dsp
