// Sample-streaming 9/7 lifting state machine: consumes one (even, odd)
// sample pair per push and emits one (low, high) coefficient pair with a
// fixed two-pair delay -- the software analog of the hardware cores'
// streaming semantics, and the per-column engine of the line-based 2-D
// architecture (paper reference [6]).  Boundary extension is the caller's
// job (feed mirrored pairs before and after the payload), exactly as the
// memory controller does for the gate-level cores.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "dsp/lifting_coeffs.hpp"

namespace dwt::dsp {

class StreamingLifting97Fixed {
 public:
  explicit StreamingLifting97Fixed(
      const LiftingFixedCoeffs& coeffs = LiftingFixedCoeffs::rounded(8))
      : c_(coeffs) {}

  /// Latency in pairs: the (low, high) pair for input pair i is returned by
  /// the push of pair i + kDelayPairs.
  static constexpr int kDelayPairs = 2;

  /// Feeds one sample pair; returns the coefficient pair for the input pair
  /// pushed kDelayPairs earlier (nullopt during warm-up).
  std::optional<std::pair<std::int64_t, std::int64_t>> push(std::int64_t even,
                                                            std::int64_t odd);

  /// Forgets all state (start of a new line/column).
  void reset();

 private:
  LiftingFixedCoeffs c_;
  int pushed_ = 0;
  // Previous input pair (index t-1 relative to the current push t).
  std::int64_t s0_prev_ = 0, d0_prev_ = 0;
  // Trailing lifting intermediates (valid after enough pushes):
  std::int64_t d1_prev_ = 0;  // d1[t-2]
  std::int64_t s1_prev_ = 0;  // s1[t-2]
  std::int64_t d2_prev_ = 0;  // d2[t-3]
};

}  // namespace dwt::dsp
