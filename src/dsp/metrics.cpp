#include "dsp/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dwt::dsp {

double mse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("mse: size mismatch or empty input");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double e = a[i] - b[i];
    acc += e * e;
  }
  return acc / static_cast<double>(a.size());
}

double mse(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mse: image dimension mismatch");
  }
  return mse(std::span<const double>(a.data()),
             std::span<const double>(b.data()));
}

double psnr(std::span<const double> a, std::span<const double> b, double peak) {
  const double e = mse(a, b);
  if (e == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / e);
}

double psnr(const Image& a, const Image& b, double peak) {
  const double e = mse(a, b);
  if (e == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / e);
}

}  // namespace dwt::dsp
