#include "dsp/dwt97_fir.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_nonempty(std::size_t n, const char* who) {
  if (n == 0) {
    throw std::invalid_argument(std::string(who) + ": empty signal");
  }
}

void require_subband_split(std::size_t ns, std::size_t nd, const char* who) {
  if (ns == 0 || (nd != ns && nd + 1 != ns)) {
    throw std::invalid_argument(
        std::string(who) + ": subband sizes must satisfy ceil/floor split");
  }
}

/// Interleaved-subband sample with WSS mirroring in the upsampled domain.
/// The low band occupies the ceil(n/2) even positions, the high band the
/// floor(n/2) odd positions; the mirror period 2n-2 is even for any n, so
/// mirroring preserves the phase parity.
template <typename T>
T interleaved_low(std::span<const T> low, std::ptrdiff_t pos, std::size_t n) {
  const std::size_t p = mirror_index(pos, n);
  return (p % 2 == 0) ? low[p / 2] : T{};
}

template <typename T>
T interleaved_high(std::span<const T> high, std::ptrdiff_t pos, std::size_t n) {
  const std::size_t p = mirror_index(pos, n);
  return (p % 2 == 1) ? high[(p - 1) / 2] : T{};
}

}  // namespace

FirSubbands fir97_forward(std::span<const double> x) {
  require_nonempty(x.size(), "fir97_forward");
  if (x.size() == 1) {
    // JPEG2000 single-sample rule: an even-indexed singleton passes through.
    return {{x[0]}, {}};
  }
  const Dwt97FirCoeffs& c = Dwt97FirCoeffs::daubechies97();
  const std::size_t ns = (x.size() + 1) / 2;
  const std::size_t nd = x.size() / 2;
  FirSubbands out;
  out.low.resize(ns);
  out.high.resize(nd);
  for (std::size_t n = 0; n < ns; ++n) {
    out.low[n] = fir_at(x, static_cast<std::ptrdiff_t>(2 * n), c.analysis_low);
  }
  for (std::size_t n = 0; n < nd; ++n) {
    out.high[n] =
        fir_at(x, static_cast<std::ptrdiff_t>(2 * n + 1), c.analysis_high);
  }
  return out;
}

std::vector<double> fir97_inverse(std::span<const double> low,
                                  std::span<const double> high) {
  require_subband_split(low.size(), high.size(), "fir97_inverse");
  if (low.size() == 1 && high.empty()) return {low[0]};
  const Dwt97FirCoeffs& c = Dwt97FirCoeffs::daubechies97();
  const std::size_t n = low.size() + high.size();
  std::vector<double> x(n);
  const std::ptrdiff_t cl = static_cast<std::ptrdiff_t>(c.synthesis_low.size()) / 2;
  const std::ptrdiff_t ch = static_cast<std::ptrdiff_t>(c.synthesis_high.size()) / 2;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < c.synthesis_low.size(); ++t) {
      const std::ptrdiff_t pos =
          static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(t) - cl;
      acc += c.synthesis_low[t] * interleaved_low(low, pos, n);
    }
    for (std::size_t t = 0; t < c.synthesis_high.size(); ++t) {
      const std::ptrdiff_t pos =
          static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(t) - ch;
      acc += c.synthesis_high[t] * interleaved_high(high, pos, n);
    }
    x[i] = acc;
  }
  return x;
}

FirSubbandsFixed fir97_forward_fixed(std::span<const std::int64_t> x,
                                     const Dwt97FirFixedCoeffs& coeffs) {
  require_nonempty(x.size(), "fir97_forward_fixed");
  if (x.size() == 1) return {{x[0]}, {}};
  const std::size_t ns = (x.size() + 1) / 2;
  const std::size_t nd = x.size() / 2;
  FirSubbandsFixed out;
  out.low.resize(ns);
  out.high.resize(nd);
  for (std::size_t n = 0; n < ns; ++n) {
    out.low[n] = fir_at_fixed(x, static_cast<std::ptrdiff_t>(2 * n),
                              coeffs.analysis_low, coeffs.frac_bits);
  }
  for (std::size_t n = 0; n < nd; ++n) {
    out.high[n] = fir_at_fixed(x, static_cast<std::ptrdiff_t>(2 * n + 1),
                               coeffs.analysis_high, coeffs.frac_bits);
  }
  return out;
}

std::vector<std::int64_t> fir97_inverse_fixed(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high,
    const Dwt97FirFixedCoeffs& coeffs) {
  require_subband_split(low.size(), high.size(), "fir97_inverse_fixed");
  if (low.size() == 1 && high.empty()) return {low[0]};
  const std::size_t n = low.size() + high.size();
  std::vector<std::int64_t> x(n);
  const std::ptrdiff_t cl =
      static_cast<std::ptrdiff_t>(coeffs.synthesis_low.size()) / 2;
  const std::ptrdiff_t ch =
      static_cast<std::ptrdiff_t>(coeffs.synthesis_high.size()) / 2;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t acc = 0;
    for (std::size_t t = 0; t < coeffs.synthesis_low.size(); ++t) {
      const std::ptrdiff_t pos =
          static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(t) - cl;
      acc += coeffs.synthesis_low[t] * interleaved_low(low, pos, n);
    }
    for (std::size_t t = 0; t < coeffs.synthesis_high.size(); ++t) {
      const std::ptrdiff_t pos =
          static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(t) - ch;
      acc += coeffs.synthesis_high[t] * interleaved_high(high, pos, n);
    }
    x[i] = acc >> coeffs.frac_bits;
  }
  return x;
}

FirSubbandsFixed fir97_forward_hw(std::span<const std::int64_t> x,
                                  const Dwt97FirCoeffs& coeffs) {
  require_nonempty(x.size(), "fir97_forward_hw");
  if (x.size() == 1) return {{x[0]}, {}};
  std::vector<double> xd(x.begin(), x.end());
  const std::size_t ns = (x.size() + 1) / 2;
  const std::size_t nd = x.size() / 2;
  FirSubbandsFixed out;
  out.low.resize(ns);
  out.high.resize(nd);
  for (std::size_t n = 0; n < ns; ++n) {
    out.low[n] = static_cast<std::int64_t>(std::floor(
        fir_at(xd, static_cast<std::ptrdiff_t>(2 * n), coeffs.analysis_low)));
  }
  for (std::size_t n = 0; n < nd; ++n) {
    out.high[n] = static_cast<std::int64_t>(std::floor(fir_at(
        xd, static_cast<std::ptrdiff_t>(2 * n + 1), coeffs.analysis_high)));
  }
  return out;
}

std::vector<std::int64_t> fir97_inverse_hw(std::span<const std::int64_t> low,
                                           std::span<const std::int64_t> high,
                                           const Dwt97FirCoeffs& coeffs) {
  require_subband_split(low.size(), high.size(), "fir97_inverse_hw");
  const std::vector<double> lowd(low.begin(), low.end());
  const std::vector<double> highd(high.begin(), high.end());
  (void)coeffs;
  const std::vector<double> xr = fir97_inverse(lowd, highd);
  std::vector<std::int64_t> out(xr.size());
  for (std::size_t i = 0; i < xr.size(); ++i) {
    out[i] = static_cast<std::int64_t>(std::floor(xr[i]));
  }
  return out;
}

}  // namespace dwt::dsp
