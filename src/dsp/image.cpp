#include "dsp/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dwt::dsp {

Image::Image(std::size_t width, std::size_t height, double fill)
    : width_(width), height_(height), data_(width * height, fill) {}

double& Image::at(std::size_t x, std::size_t y) {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::at");
  return data_[y * width_ + x];
}

const double& Image::at(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::at");
  return data_[y * width_ + x];
}

std::vector<double> Image::row(std::size_t y, std::size_t n) const {
  if (y >= height_ || n > width_) throw std::out_of_range("Image::row");
  std::vector<double> out(n);
  for (std::size_t x = 0; x < n; ++x) out[x] = data_[y * width_ + x];
  return out;
}

std::vector<double> Image::col(std::size_t x, std::size_t n) const {
  if (x >= width_ || n > height_) throw std::out_of_range("Image::col");
  std::vector<double> out(n);
  for (std::size_t y = 0; y < n; ++y) out[y] = data_[y * width_ + x];
  return out;
}

void Image::set_row(std::size_t y, const std::vector<double>& values) {
  if (y >= height_ || values.size() > width_) {
    throw std::out_of_range("Image::set_row");
  }
  for (std::size_t x = 0; x < values.size(); ++x) {
    data_[y * width_ + x] = values[x];
  }
}

void Image::set_col(std::size_t x, const std::vector<double>& values) {
  if (x >= width_ || values.size() > height_) {
    throw std::out_of_range("Image::set_col");
  }
  for (std::size_t y = 0; y < values.size(); ++y) {
    data_[y * width_ + x] = values[y];
  }
}

Image Image::crop(std::size_t w, std::size_t h) const {
  if (w > width_ || h > height_) throw std::out_of_range("Image::crop");
  Image out(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) out.at(x, y) = at(x, y);
  }
  return out;
}

Image Image::clamped_u8() const {
  Image out(width_, height_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double v = std::round(data_[i]);
    out.data()[i] = std::clamp(v, 0.0, 255.0);
  }
  return out;
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  return read_pgm(in, path);
}

Image read_pgm(std::istream& in, const std::string& path) {
  std::string magic;
  in >> magic;
  if (magic != "P5" && magic != "P2") {
    throw std::runtime_error("read_pgm: unsupported PGM magic in " + path);
  }
  auto next_token = [&in, &path]() -> long {
    // Skip whitespace and '#' comment lines between header tokens.  peek()
    // returns EOF on a truncated header; bail instead of feeding it to
    // isspace (undefined for out-of-range values).
    while (true) {
      const int c = in.peek();
      if (c == std::char_traits<char>::eof()) {
        throw std::runtime_error("read_pgm: truncated header in " + path);
      }
      if (c == '#') {
        std::string line;
        std::getline(in, line);
      } else if (std::isspace(c)) {
        in.get();
      } else {
        break;
      }
    }
    long v = -1;
    in >> v;
    if (!in || v < 0) throw std::runtime_error("read_pgm: bad header in " + path);
    return v;
  };
  const long w = next_token();
  const long h = next_token();
  const long maxval = next_token();
  if (w == 0 || h == 0) {
    throw std::runtime_error("read_pgm: zero image dimensions in " + path);
  }
  // The codec header (and any sane use of this library) caps dimensions at
  // 16 bits; a larger header is corrupt or hostile, not an image.
  if (w > 0xFFFF || h > 0xFFFF) {
    throw std::runtime_error("read_pgm: dimensions exceed 65535 in " + path);
  }
  if (maxval <= 0 || maxval > 255) {
    throw std::runtime_error("read_pgm: only 8-bit PGM supported (maxval " +
                             std::to_string(maxval) + ") in " + path);
  }
  Image img(static_cast<std::size_t>(w), static_cast<std::size_t>(h));
  if (magic == "P5") {
    in.get();  // single whitespace after maxval
    std::vector<unsigned char> buf(img.data().size());
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (!in) throw std::runtime_error("read_pgm: truncated data in " + path);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      img.data()[i] = static_cast<double>(buf[i]);
    }
  } else {
    for (double& px : img.data()) {
      long v = 0;
      in >> v;
      if (!in) throw std::runtime_error("read_pgm: truncated data in " + path);
      if (v < 0 || v > maxval) {
        throw std::runtime_error("read_pgm: sample " + std::to_string(v) +
                                 " outside 0.." + std::to_string(maxval) +
                                 " in " + path);
      }
      px = static_cast<double>(v);
    }
  }
  return img;
}

void write_pgm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  write_pgm(img, out, path);
}

void write_pgm(const Image& img, std::ostream& out, const std::string& path) {
  out << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  std::vector<unsigned char> buf(img.data().size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const double v = std::clamp(std::round(img.data()[i]), 0.0, 255.0);
    buf[i] = static_cast<unsigned char>(v);
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

}  // namespace dwt::dsp
