// Separable 2-D DWT (paper figure 1): one octave applies the 1-D transform
// to every row then every column of the current LL region, packing low-pass
// coefficients into the top-left quadrant (LL | HL / LH | HH).  Multi-octave
// transforms recurse on LL.  Includes the DC level shift used for 8-bit
// imagery (JPEG2000: subtract 128 so samples are signed 8-bit, matching the
// paper's signed 8-bit hardware inputs).
#pragma once

#include <cstddef>

#include "dsp/dwt1d.hpp"
#include "dsp/image.hpp"

namespace dwt::dsp {

/// Identifies one sub-band of a multi-octave decomposition.
enum class Band { kLL, kHL, kLH, kHH };

struct SubbandRect {
  std::size_t x0, y0, w, h;
};

/// Geometry of sub-band `band` at 1-based `octave` for a w x h plane.
[[nodiscard]] SubbandRect subband_rect(std::size_t w, std::size_t h,
                                       int octave, Band band);

/// In-place one-octave forward transform of the top-left region w x h of
/// `plane` (any non-zero w, h; odd lines split as ceil(n/2) low /
/// floor(n/2) high with (1,1) symmetric extension).
void dwt2d_forward_octave(Method m, Image& plane, std::size_t w, std::size_t h,
                          int frac_bits = kDefaultFracBits);
void dwt2d_inverse_octave(Method m, Image& plane, std::size_t w, std::size_t h,
                          int frac_bits = kDefaultFracBits);

/// Full multi-octave transform of the whole plane.  Dimensions are
/// arbitrary: every octave recurses on the ceil(w/2) x ceil(h/2) LL region
/// (a 1 x 1 LL is a fixed point, so any octave count is legal).
void dwt2d_forward(Method m, Image& plane, int octaves,
                   int frac_bits = kDefaultFracBits);
void dwt2d_inverse(Method m, Image& plane, int octaves,
                   int frac_bits = kDefaultFracBits);

/// DC level shift helpers (x -> x - 128 and back).
void level_shift_forward(Image& img);
void level_shift_inverse(Image& img);

/// Rounds every coefficient to the nearest integer -- the coefficient
/// truncation a fixed-width hardware transform output implies, and the
/// operation that makes even the floating-point round trip of Table 2 lossy.
void round_coefficients(Image& plane);

}  // namespace dwt::dsp
