// Lifting-scheme coefficients for the irreversible 9/7 Daubechies wavelet
// (paper Table 1).  The floating-point values come from the
// Daubechies/Sweldens factorization of the 9/7 polyphase matrix; the
// fixed-point values are the integer-rounded n/256 constants the paper's
// hardware uses.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/fixed_point.hpp"

namespace dwt::dsp {

/// Floating-point lifting constants.  Sign conventions follow the paper's
/// figure 3: predict steps use alpha/gamma, update steps use beta/delta, the
/// low-pass output is scaled by 1/k and the high-pass output by -k.
struct LiftingCoeffs {
  double alpha;
  double beta;
  double gamma;
  double delta;
  double k;

  /// Canonical values of the 9/7 factorization (paper Table 1 lists them
  /// rounded to 9 decimal places).
  static const LiftingCoeffs& daubechies97();
};

/// Integer-rounded lifting constants with `frac_bits` fractional bits
/// (paper: 8 fractional bits, constants are n/256).
struct LiftingFixedCoeffs {
  common::Fixed alpha;
  common::Fixed beta;
  common::Fixed gamma;
  common::Fixed delta;
  common::Fixed minus_k;  ///< high-pass scale, -k
  common::Fixed inv_k;    ///< low-pass scale, 1/k
  // Inverse-transform scale factors (not in the paper's table; required to
  // undo the output scaling in fixed point).
  common::Fixed k;            ///< inverse low-pass scale
  common::Fixed minus_inv_k;  ///< inverse high-pass scale, -1/k

  int frac_bits() const { return alpha.frac_bits(); }

  /// Rounds the floating-point constants to `frac_bits` fractional bits.
  /// With frac_bits = 8 this reproduces the paper's Table 1 integer column
  /// (alpha -406, beta -14, gamma 226, delta 114, 1/k 208; for -k correct
  /// rounding yields -315 where the paper's text column prints -314 but its
  /// own binary column encodes -315 -- see docs/notes in DESIGN.md).
  static LiftingFixedCoeffs rounded(int frac_bits);
};

/// One row of Table 1 for reporting.
struct Table1Row {
  std::string name;
  double floating_value;
  std::int64_t integer_rounded;  ///< numerator of n/256 (frac_bits = 8)
  std::string binary;            ///< two's complement, 2 integer bits
};

/// Regenerates the contents of paper Table 1.
std::array<Table1Row, 6> table1_rows();

}  // namespace dwt::dsp
