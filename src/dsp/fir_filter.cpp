#include "dsp/fir_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::dsp {
namespace {

std::int64_t round_scaled(double v, int frac_bits) {
  const double scaled = v * static_cast<double>(std::int64_t{1} << frac_bits);
  return static_cast<std::int64_t>(scaled >= 0 ? std::floor(scaled + 0.5)
                                               : std::ceil(scaled - 0.5));
}

}  // namespace

const Dwt97FirCoeffs& Dwt97FirCoeffs::daubechies97() {
  static const Dwt97FirCoeffs c{
      // 9-tap analysis low-pass h (paper fig. 2: h4..h0..h4).
      .analysis_low = {0.026748757410810, -0.016864118442875,
                       -0.078223266528990, 0.266864118442875,
                       0.602949018236360, 0.266864118442875,
                       -0.078223266528990, -0.016864118442875,
                       0.026748757410810},
      // 7-tap analysis high-pass g (paper fig. 2: g3..g0..g3).
      .analysis_high = {0.091271763114250, -0.057543526228500,
                        -0.591271763114250, 1.115087052457000,
                        -0.591271763114250, -0.057543526228500,
                        0.091271763114250},
      // Synthesis filters from the biorthogonal relation
      // gl(n) = (-1)^n * g~(n), gh(n) = (-1)^n * h~(n).
      .synthesis_low = {-0.091271763114250, -0.057543526228500,
                        0.591271763114250, 1.115087052457000,
                        0.591271763114250, -0.057543526228500,
                        -0.091271763114250},
      .synthesis_high = {0.026748757410810, 0.016864118442875,
                         -0.078223266528990, -0.266864118442875,
                         0.602949018236360, -0.266864118442875,
                         -0.078223266528990, 0.016864118442875,
                         0.026748757410810},
  };
  return c;
}

Dwt97FirFixedCoeffs Dwt97FirFixedCoeffs::rounded(int frac_bits) {
  const Dwt97FirCoeffs& c = Dwt97FirCoeffs::daubechies97();
  Dwt97FirFixedCoeffs f{};
  f.frac_bits = frac_bits;
  for (std::size_t i = 0; i < c.analysis_low.size(); ++i) {
    f.analysis_low[i] = round_scaled(c.analysis_low[i], frac_bits);
    f.synthesis_high[i] = round_scaled(c.synthesis_high[i], frac_bits);
  }
  for (std::size_t i = 0; i < c.analysis_high.size(); ++i) {
    f.analysis_high[i] = round_scaled(c.analysis_high[i], frac_bits);
    f.synthesis_low[i] = round_scaled(c.synthesis_low[i], frac_bits);
  }
  return f;
}

std::size_t mirror_index(std::ptrdiff_t pos, std::size_t n) {
  if (n == 0) throw std::invalid_argument("mirror_index: empty signal");
  if (n == 1) return 0;
  const std::ptrdiff_t period = 2 * (static_cast<std::ptrdiff_t>(n) - 1);
  std::ptrdiff_t p = pos % period;
  if (p < 0) p += period;
  if (p >= static_cast<std::ptrdiff_t>(n)) p = period - p;
  return static_cast<std::size_t>(p);
}

double fir_at(std::span<const double> signal, std::ptrdiff_t pos,
              std::span<const double> coeffs) {
  const std::ptrdiff_t center = static_cast<std::ptrdiff_t>(coeffs.size()) / 2;
  double acc = 0.0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const std::ptrdiff_t idx = pos + static_cast<std::ptrdiff_t>(i) - center;
    acc += coeffs[i] * signal[mirror_index(idx, signal.size())];
  }
  return acc;
}

std::int64_t fir_at_fixed(std::span<const std::int64_t> signal,
                          std::ptrdiff_t pos,
                          std::span<const std::int64_t> coeffs,
                          int frac_bits) {
  const std::ptrdiff_t center = static_cast<std::ptrdiff_t>(coeffs.size()) / 2;
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const std::ptrdiff_t idx = pos + static_cast<std::ptrdiff_t>(i) - center;
    acc += coeffs[i] * signal[mirror_index(idx, signal.size())];
  }
  return acc >> frac_bits;
}

}  // namespace dwt::dsp
