// The JPEG2000 *reversible* 5/3 lifting wavelet (Le Gall).  The paper's
// reference [6] (Dillen et al.) builds a combined line-based architecture
// for the 5/3 and 9/7 transforms; this module provides the 5/3 companion so
// the hardware comparison can be reproduced.  Integer-to-integer and exactly
// invertible:
//   d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
//   s[i] = x[2i]   + floor((d[i-1] + d[i] + 2) / 4)
// with whole-sample symmetric boundary extension.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dwt::dsp {

struct LiftSubbands53 {
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
};

[[nodiscard]] LiftSubbands53 lifting53_forward(std::span<const std::int64_t> x);

/// Exact inverse: reconstructs the input bit for bit (lossless).
[[nodiscard]] std::vector<std::int64_t> lifting53_inverse(
    std::span<const std::int64_t> low, std::span<const std::int64_t> high);

}  // namespace dwt::dsp
