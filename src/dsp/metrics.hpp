// Error metrics (paper figure 6): mean squared error and peak
// signal-to-noise ratio between an original and a reconstructed image.
#pragma once

#include <span>

#include "dsp/image.hpp"

namespace dwt::dsp {

[[nodiscard]] double mse(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double mse(const Image& a, const Image& b);

/// PSNR in dB with peak S (paper: PSNR = -10 log10(MSE / S^2), S = 255 for
/// 8-bit imagery).  Returns +infinity for identical inputs.
[[nodiscard]] double psnr(std::span<const double> a, std::span<const double> b,
                          double peak = 255.0);
[[nodiscard]] double psnr(const Image& a, const Image& b, double peak = 255.0);

}  // namespace dwt::dsp
