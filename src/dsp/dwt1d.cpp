#include "dsp/dwt1d.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/dwt97_fir.hpp"
#include "dsp/dwt97_lifting.hpp"
#include "dsp/dwt53.hpp"
#include "dsp/dwt97_lifting_fixed.hpp"

namespace dwt::dsp {
namespace {

std::vector<std::int64_t> to_int(std::span<const double> v) {
  std::vector<std::int64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<std::int64_t>(std::llround(v[i]));
  }
  return out;
}

std::vector<double> to_double(std::span<const std::int64_t> v) {
  return {v.begin(), v.end()};
}

}  // namespace

std::string to_string(Method m) {
  switch (m) {
    case Method::kFirFloat: return "FIR filter, floating point 9/7 coefficients";
    case Method::kFirFixed: return "FIR filter, integer rounded 9/7 coefficients";
    case Method::kLiftingFloat: return "Lifting scheme, floating point coefficients";
    case Method::kLiftingFixed: return "Lifting scheme, integer rounded coefficients";
    case Method::kFirHwFloat:
      return "FIR filter, floating point coefficients (integer datapath)";
    case Method::kLiftingHwFloat:
      return "Lifting scheme, floating point coefficients (integer datapath)";
    case Method::kReversible53: return "Reversible 5/3 (Le Gall) lifting";
  }
  throw std::invalid_argument("to_string: unknown Method");
}

Subbands1d dwt1d_forward(Method m, std::span<const double> x, int frac_bits) {
  switch (m) {
    case Method::kFirFloat: {
      FirSubbands s = fir97_forward(x);
      return {std::move(s.low), std::move(s.high)};
    }
    case Method::kFirFixed: {
      const auto coeffs = Dwt97FirFixedCoeffs::rounded(frac_bits);
      FirSubbandsFixed s = fir97_forward_fixed(to_int(x), coeffs);
      return {to_double(s.low), to_double(s.high)};
    }
    case Method::kLiftingFloat: {
      LiftSubbands s = lifting97_forward(x);
      return {std::move(s.low), std::move(s.high)};
    }
    case Method::kLiftingFixed: {
      const auto coeffs = LiftingFixedCoeffs::rounded(frac_bits);
      LiftSubbandsFixed s = lifting97_forward_fixed(to_int(x), coeffs);
      return {to_double(s.low), to_double(s.high)};
    }
    case Method::kFirHwFloat: {
      FirSubbandsFixed s =
          fir97_forward_hw(to_int(x), Dwt97FirCoeffs::daubechies97());
      return {to_double(s.low), to_double(s.high)};
    }
    case Method::kLiftingHwFloat: {
      LiftSubbandsFixed s =
          lifting97_forward_hw(to_int(x), LiftingCoeffs::daubechies97());
      return {to_double(s.low), to_double(s.high)};
    }
    case Method::kReversible53: {
      LiftSubbands53 s = lifting53_forward(to_int(x));
      return {to_double(s.low), to_double(s.high)};
    }
  }
  throw std::invalid_argument("dwt1d_forward: unknown Method");
}

std::vector<double> dwt1d_inverse(Method m, std::span<const double> low,
                                  std::span<const double> high, int frac_bits) {
  switch (m) {
    case Method::kFirFloat:
      return fir97_inverse(low, high);
    case Method::kFirFixed: {
      const auto coeffs = Dwt97FirFixedCoeffs::rounded(frac_bits);
      return to_double(fir97_inverse_fixed(to_int(low), to_int(high), coeffs));
    }
    case Method::kLiftingFloat:
      return lifting97_inverse(low, high);
    case Method::kLiftingFixed: {
      const auto coeffs = LiftingFixedCoeffs::rounded(frac_bits);
      return to_double(
          lifting97_inverse_fixed(to_int(low), to_int(high), coeffs));
    }
    case Method::kFirHwFloat:
      return to_double(fir97_inverse_hw(to_int(low), to_int(high),
                                        Dwt97FirCoeffs::daubechies97()));
    case Method::kLiftingHwFloat:
      return to_double(lifting97_inverse_hw(to_int(low), to_int(high),
                                            LiftingCoeffs::daubechies97()));
    case Method::kReversible53:
      return to_double(lifting53_inverse(to_int(low), to_int(high)));
  }
  throw std::invalid_argument("dwt1d_inverse: unknown Method");
}

}  // namespace dwt::dsp
