#include "dsp/dwt53.hpp"

#include <stdexcept>

namespace dwt::dsp {
namespace {

void require_even_nonempty(std::size_t n, const char* who) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument(std::string(who) +
                                ": signal length must be even and non-zero");
  }
}

std::int64_t s_at(std::span<const std::int64_t> s, std::size_t i) {
  return i < s.size() ? s[i] : s[s.size() - 1];
}
std::int64_t d_before(std::span<const std::int64_t> d, std::size_t i) {
  return i == 0 ? d[0] : d[i - 1];
}

/// Floor division by a power of two (arithmetic shift).
std::int64_t floor_div_pow2(std::int64_t v, int k) { return v >> k; }

}  // namespace

LiftSubbands53 lifting53_forward(std::span<const std::int64_t> x) {
  require_even_nonempty(x.size(), "lifting53_forward");
  const std::size_t half = x.size() / 2;
  std::vector<std::int64_t> s(half);
  std::vector<std::int64_t> d(half);
  for (std::size_t i = 0; i < half; ++i) {
    s[i] = x[2 * i];
    d[i] = x[2 * i + 1];
  }
  for (std::size_t i = 0; i < half; ++i) {
    d[i] -= floor_div_pow2(s[i] + s_at(s, i + 1), 1);
  }
  for (std::size_t i = 0; i < half; ++i) {
    s[i] += floor_div_pow2(d_before(d, i) + d[i] + 2, 2);
  }
  return {std::move(s), std::move(d)};
}

std::vector<std::int64_t> lifting53_inverse(std::span<const std::int64_t> low,
                                            std::span<const std::int64_t> high) {
  if (low.size() != high.size()) {
    throw std::invalid_argument("lifting53_inverse: subband size mismatch");
  }
  const std::size_t half = low.size();
  if (half == 0) throw std::invalid_argument("lifting53_inverse: empty input");
  std::vector<std::int64_t> s(low.begin(), low.end());
  std::vector<std::int64_t> d(high.begin(), high.end());
  for (std::size_t i = 0; i < half; ++i) {
    s[i] -= floor_div_pow2(d_before(d, i) + d[i] + 2, 2);
  }
  for (std::size_t i = 0; i < half; ++i) {
    d[i] += floor_div_pow2(s[i] + s_at(s, i + 1), 1);
  }
  std::vector<std::int64_t> x(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    x[2 * i] = s[i];
    x[2 * i + 1] = d[i];
  }
  return x;
}

}  // namespace dwt::dsp
