#include "dsp/dwt53.hpp"

#include <stdexcept>

namespace dwt::dsp {
namespace {

// Whole-sample symmetric extension on the polyphase arrays (s = ceil(N/2)
// even samples, d = floor(N/2) odd samples): x[-1] = x[1] gives d[-1] = d[0];
// x[N] = x[N-2] gives s[ns] = s[ns-1] for even N and d[nd] = d[nd-1] for odd
// N -- the JPEG2000 (1,1) extension, valid for any N >= 2.
std::int64_t s_at(std::span<const std::int64_t> s, std::size_t i) {
  return i < s.size() ? s[i] : s[s.size() - 1];
}
std::int64_t d_at(std::span<const std::int64_t> d, std::ptrdiff_t i) {
  if (i < 0) return d.front();
  if (i >= static_cast<std::ptrdiff_t>(d.size())) return d.back();
  return d[static_cast<std::size_t>(i)];
}
std::int64_t d_pair(std::span<const std::int64_t> d, std::size_t i) {
  return d_at(d, static_cast<std::ptrdiff_t>(i) - 1) +
         d_at(d, static_cast<std::ptrdiff_t>(i));
}

/// Floor division by a power of two (arithmetic shift).
std::int64_t floor_div_pow2(std::int64_t v, int k) { return v >> k; }

}  // namespace

LiftSubbands53 lifting53_forward(std::span<const std::int64_t> x) {
  if (x.empty()) {
    throw std::invalid_argument("lifting53_forward: empty signal");
  }
  if (x.size() == 1) {
    // JPEG2000 single-sample rule: an even-indexed singleton passes through.
    return {{x[0]}, {}};
  }
  const std::size_t ns = (x.size() + 1) / 2;
  const std::size_t nd = x.size() / 2;
  std::vector<std::int64_t> s(ns);
  std::vector<std::int64_t> d(nd);
  for (std::size_t i = 0; i < ns; ++i) s[i] = x[2 * i];
  for (std::size_t i = 0; i < nd; ++i) d[i] = x[2 * i + 1];
  for (std::size_t i = 0; i < nd; ++i) {
    d[i] -= floor_div_pow2(s[i] + s_at(s, i + 1), 1);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    s[i] += floor_div_pow2(d_pair(d, i) + 2, 2);
  }
  return {std::move(s), std::move(d)};
}

std::vector<std::int64_t> lifting53_inverse(std::span<const std::int64_t> low,
                                            std::span<const std::int64_t> high) {
  const std::size_t ns = low.size();
  const std::size_t nd = high.size();
  if (ns == 0 || (nd != ns && nd + 1 != ns)) {
    throw std::invalid_argument(
        "lifting53_inverse: subband sizes must satisfy ceil/floor split");
  }
  if (ns == 1 && nd == 0) return {low[0]};
  std::vector<std::int64_t> s(low.begin(), low.end());
  std::vector<std::int64_t> d(high.begin(), high.end());
  for (std::size_t i = 0; i < ns; ++i) {
    s[i] -= floor_div_pow2(d_pair(d, i) + 2, 2);
  }
  for (std::size_t i = 0; i < nd; ++i) {
    d[i] += floor_div_pow2(s[i] + s_at(s, i + 1), 1);
  }
  std::vector<std::int64_t> x(ns + nd);
  for (std::size_t i = 0; i < ns; ++i) x[2 * i] = s[i];
  for (std::size_t i = 0; i < nd; ++i) x[2 * i + 1] = d[i];
  return x;
}

}  // namespace dwt::dsp
