// Unified one-octave 1-D DWT front-end over the four computation methods of
// paper Table 2: FIR filter bank or lifting scheme, each with floating-point
// or integer-rounded coefficients.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dwt::dsp {

enum class Method {
  kFirFloat,       ///< 9/7 FIR filter bank, floating-point coefficients
  kFirFixed,       ///< 9/7 FIR filter bank, integer-rounded coefficients
  kLiftingFloat,   ///< lifting scheme, floating-point factorized coefficients
  kLiftingFixed,   ///< lifting scheme, integer-rounded factorized coefficients
  // Hardware-style variants: integer registers at every stage but ideal
  // (full-precision) multiplier constants -- the "floating point" rows of
  // paper Table 2, whose datapath still stores integers.
  kFirHwFloat,
  kLiftingHwFloat,
  /// JPEG2000 reversible 5/3 (Le Gall) lifting transform: integer to
  /// integer, lossless (extension beyond the paper's 9/7 scope; its
  /// reference [6] combines both wavelets in one architecture).
  kReversible53,
};

[[nodiscard]] std::string to_string(Method m);

/// True for the methods whose outputs are integers.
[[nodiscard]] constexpr bool is_fixed(Method m) {
  return m == Method::kFirFixed || m == Method::kLiftingFixed ||
         m == Method::kFirHwFloat || m == Method::kLiftingHwFloat ||
         m == Method::kReversible53;
}

/// Subbands in double precision regardless of method; fixed-point methods
/// produce exact integers stored in doubles (all values < 2^40, exactly
/// representable).
struct Subbands1d {
  std::vector<double> low;
  std::vector<double> high;
};

/// Fractional bits used by the fixed methods (the paper's 8).
inline constexpr int kDefaultFracBits = 8;

[[nodiscard]] Subbands1d dwt1d_forward(Method m, std::span<const double> x,
                                       int frac_bits = kDefaultFracBits);

/// Inverse of dwt1d_forward for the same method.  For fixed methods the
/// subbands are rounded to integers first (they already are integers when
/// produced by dwt1d_forward).
[[nodiscard]] std::vector<double> dwt1d_inverse(Method m,
                                                std::span<const double> low,
                                                std::span<const double> high,
                                                int frac_bits = kDefaultFracBits);

}  // namespace dwt::dsp
