#include "dsp/lifting_coeffs.hpp"

namespace dwt::dsp {

const LiftingCoeffs& LiftingCoeffs::daubechies97() {
  // Full-precision values of the Daubechies/Sweldens factorization; Table 1
  // of the paper lists the same constants rounded to 9 decimals.
  static const LiftingCoeffs c{
      /*alpha=*/-1.5861343420599235,
      /*beta=*/-0.0529801185729614,
      /*gamma=*/0.8829110755309333,
      /*delta=*/0.4435068520439711,
      /*k=*/1.2301741049140359,
  };
  return c;
}

LiftingFixedCoeffs LiftingFixedCoeffs::rounded(int frac_bits) {
  using common::Fixed;
  const LiftingCoeffs& c = LiftingCoeffs::daubechies97();
  LiftingFixedCoeffs f{
      .alpha = Fixed::from_double(c.alpha, frac_bits),
      .beta = Fixed::from_double(c.beta, frac_bits),
      .gamma = Fixed::from_double(c.gamma, frac_bits),
      .delta = Fixed::from_double(c.delta, frac_bits),
      .minus_k = Fixed::from_double(-c.k, frac_bits),
      .inv_k = Fixed::from_double(1.0 / c.k, frac_bits),
      .k = Fixed::from_double(c.k, frac_bits),
      .minus_inv_k = Fixed::from_double(-1.0 / c.k, frac_bits),
  };
  return f;
}

std::array<Table1Row, 6> table1_rows() {
  const LiftingCoeffs& c = LiftingCoeffs::daubechies97();
  const LiftingFixedCoeffs f = LiftingFixedCoeffs::rounded(8);
  auto row = [](std::string name, double v, common::Fixed fx) {
    return Table1Row{std::move(name), v, fx.raw(), fx.to_binary_string(2)};
  };
  return {
      row("alpha", c.alpha, f.alpha),
      row("beta", c.beta, f.beta),
      row("gamma", c.gamma, f.gamma),
      row("delta", c.delta, f.delta),
      row("-k", -c.k, f.minus_k),
      row("1/k", 1.0 / c.k, f.inv_k),
  };
}

}  // namespace dwt::dsp
