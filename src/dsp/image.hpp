// Minimal grayscale image container with PGM (P5/P2) file I/O, used by the
// 2-D transforms, the PSNR experiments and the workload generators.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dwt::dsp {

/// Row-major grayscale image of doubles.  Pixel values are nominally 0..255
/// for source images; transform planes hold arbitrary reals.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, double fill = 0.0);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& at(std::size_t x, std::size_t y);
  [[nodiscard]] const double& at(std::size_t x, std::size_t y) const;

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// Extracts row y restricted to the first `n` columns.
  [[nodiscard]] std::vector<double> row(std::size_t y, std::size_t n) const;
  /// Extracts column x restricted to the first `n` rows.
  [[nodiscard]] std::vector<double> col(std::size_t x, std::size_t n) const;
  void set_row(std::size_t y, const std::vector<double>& values);
  void set_col(std::size_t x, const std::vector<double>& values);

  /// Copies the w x h top-left sub-image (tile extraction).
  [[nodiscard]] Image crop(std::size_t w, std::size_t h) const;

  /// Clamps all pixels to [0, 255] and rounds to integers (display range).
  [[nodiscard]] Image clamped_u8() const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<double> data_;
};

/// Reads a binary (P5) or ASCII (P2) 8-bit PGM file.
[[nodiscard]] Image read_pgm(const std::string& path);

/// Parses a binary (P5) or ASCII (P2) 8-bit PGM document from any stream --
/// the one hardened parsing path (truncated header/pixel detection, comment
/// handling, dimension and maxval caps) shared by the file reader and the
/// dwt97d request decoder.  `name` labels the source in error messages.
[[nodiscard]] Image read_pgm(std::istream& in, const std::string& name);

/// Writes a binary (P5) 8-bit PGM file; pixels clamped/rounded to 0..255.
void write_pgm(const Image& img, const std::string& path);

/// Renders the same P5 bytes write_pgm(path) would produce onto any stream
/// (the dwt97d response encoder shares the file writer's exact bytes).
void write_pgm(const Image& img, std::ostream& out, const std::string& name);

}  // namespace dwt::dsp
