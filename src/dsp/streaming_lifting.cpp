#include "dsp/streaming_lifting.hpp"

namespace dwt::dsp {
namespace {

std::int64_t trunc_mul(const common::Fixed& c, std::int64_t v) {
  return common::mul_const_truncate(v, c);
}

}  // namespace

std::optional<std::pair<std::int64_t, std::int64_t>>
StreamingLifting97Fixed::push(std::int64_t even, std::int64_t odd) {
  // Push index t; we complete the lifting ladder for trailing indices using
  // only already-seen samples:
  //   d1[t-1] = d0[t-1] + T(alpha, s0[t-1] + s0[t])
  //   s1[t-1] = s0[t-1] + T(beta,  d1[t-2] + d1[t-1])
  //   d2[t-2] = d1[t-2] + T(gamma, s1[t-2] + s1[t-1])
  //   s2[t-2] = s1[t-2] + T(delta, d2[t-3] + d2[t-2])
  // and emit (low, high)[t-2].  The first two indices of a cold stream are
  // computed from zero-initialized state; callers prepend mirrored guard
  // pairs (as the hardware harness does), so payload outputs are exact.
  const int t = pushed_++;
  std::optional<std::pair<std::int64_t, std::int64_t>> out;

  if (t >= 1) {
    const std::int64_t d1 = d0_prev_ + trunc_mul(c_.alpha, s0_prev_ + even);
    const std::int64_t s1 = s0_prev_ + trunc_mul(c_.beta, d1_prev_ + d1);
    if (t >= 2) {
      const std::int64_t d2 = d1_prev_ + trunc_mul(c_.gamma, s1_prev_ + s1);
      const std::int64_t s2 = s1_prev_ + trunc_mul(c_.delta, d2_prev_ + d2);
      out = std::make_pair(trunc_mul(c_.inv_k, s2), trunc_mul(c_.minus_k, d2));
      d2_prev_ = d2;
    }
    d1_prev_ = d1;
    s1_prev_ = s1;
  }
  s0_prev_ = even;
  d0_prev_ = odd;
  return out;
}

void StreamingLifting97Fixed::reset() {
  pushed_ = 0;
  s0_prev_ = d0_prev_ = 0;
  d1_prev_ = s1_prev_ = d2_prev_ = 0;
}

}  // namespace dwt::dsp
