// Gate-level 5/3 (Le Gall) lifting datapath -- the reversible companion of
// the 9/7 cores, after the combined 5/3 + 9/7 architecture of the paper's
// reference [6].  Two lifting steps, shifts and adders only (no multiplier
// blocks), which is why the 5/3 core is a fraction of the 9/7's area.
// Streaming semantics match the 9/7 core: one (even, odd) pair in per cycle,
// one (low, high) pair out after `latency` cycles.
#pragma once

#include "hw/lifting_datapath.hpp"

namespace dwt::hw {

struct Datapath53Config {
  rtl::AdderStyle adder_style = rtl::AdderStyle::kCarryChain;
  bool pipelined_operators = false;
  int input_bits = 8;
};

struct BuiltDatapath53 {
  rtl::Netlist netlist;
  rtl::Bus in_even;
  rtl::Bus in_odd;
  rtl::Bus out_low;
  rtl::Bus out_high;
  int latency = 0;
  Datapath53Config config;
};

[[nodiscard]] BuiltDatapath53 build_lifting53_datapath(
    const Datapath53Config& cfg);

}  // namespace dwt::hw
