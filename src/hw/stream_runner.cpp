#include "hw/stream_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/fir_filter.hpp"

namespace dwt::hw {
namespace {

/// Feeds extended pairs t = -guard .. n/2-1+guard; pair t is
/// (x_ext[2t], x_ext[2t+1]) with whole-sample symmetric extension.
template <typename Sim>
StreamResult run_impl(const rtl::Bus& in_even, const rtl::Bus& in_odd,
                      const rtl::Bus& out_low, const rtl::Bus& out_high,
                      int latency, Sim& sim, std::span<const std::int64_t> x) {
  if (x.empty() || x.size() % 2 != 0) {
    throw std::invalid_argument("run_stream: even non-empty signal required");
  }
  if (in_even.bits.empty() || in_odd.bits.empty() || out_low.bits.empty() ||
      out_high.bits.empty()) {
    throw std::invalid_argument("run_stream: datapath port bus is empty");
  }
  if (latency < 0) {
    throw std::invalid_argument("run_stream: negative latency");
  }
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(x.size() / 2);
  StreamResult out;
  out.low.assign(x.size() / 2, 0);
  out.high.assign(x.size() / 2, 0);

  auto x_ext = [&x](std::ptrdiff_t pos) {
    return x[dsp::mirror_index(pos, x.size())];
  };

  // Feed pairs; pair index t enters at cycle c = t + kGuardPairs, and the
  // coefficients for index i emerge `latency` cycles after pair i entered.
  const std::ptrdiff_t total_cycles =
      half + 2 * kGuardPairs + latency;  // payload + guards + flush
  for (std::ptrdiff_t c = 0; c < total_cycles; ++c) {
    const std::ptrdiff_t t = c - kGuardPairs;
    const std::ptrdiff_t feed =
        t < half + kGuardPairs ? t : half + kGuardPairs - 1;
    sim.set_bus(in_even, x_ext(2 * feed));
    sim.set_bus(in_odd, x_ext(2 * feed + 1));
    if constexpr (requires { sim.step(); }) {
      sim.step();
    } else {
      sim.cycle();
    }
    const std::ptrdiff_t i = c - latency - kGuardPairs + 1;
    if (i >= 0 && i < half) {
      out.low[static_cast<std::size_t>(i)] = sim.read_bus(out_low);
      out.high[static_cast<std::size_t>(i)] = sim.read_bus(out_high);
    }
  }
  out.cycles = static_cast<std::uint64_t>(total_cycles);
  return out;
}

}  // namespace

StreamResult run_stream(const BuiltDatapath& dp, rtl::Simulator& sim,
                        std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, sim, x);
}

StreamResult run_stream_activity(const BuiltDatapath& dp, rtl::ActivitySim& sim,
                                 std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, sim, x);
}

StreamResult run_stream_mapped(const BuiltDatapath& dp,
                               fpga::MappedActivitySim& sim,
                               std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, sim, x);
}

StreamResult run_stream_faulty(const BuiltDatapath& dp, rtl::FaultInjector& inj,
                               std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, inj, x);
}

std::uint64_t stream_cycle_count(const BuiltDatapath& dp, std::size_t n) {
  if (n == 0 || n % 2 != 0) {
    throw std::invalid_argument(
        "stream_cycle_count: even non-empty signal required");
  }
  return static_cast<std::uint64_t>(n / 2 + 2 * kGuardPairs +
                                    static_cast<std::size_t>(dp.info.latency));
}

StreamResult run_stream53(const BuiltDatapath53& dp, rtl::Simulator& sim,
                          std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high, dp.latency,
                  sim, x);
}

InverseStreamResult run_stream_inverse(const BuiltInverseDatapath& dp,
                                       rtl::Simulator& sim,
                                       std::span<const std::int64_t> low,
                                       std::span<const std::int64_t> high) {
  if (low.empty() || low.size() != high.size()) {
    throw std::invalid_argument("run_stream_inverse: bad sub-band sizes");
  }
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(low.size());
  const int latency = dp.latency;
  InverseStreamResult out;
  out.samples.assign(low.size() * 2, 0);
  // Edge replication matches the software inverse model's boundary handling
  // (d_before(0) = d[0], s_at(h) = s[h-1]).
  auto clampi = [half](std::ptrdiff_t t) {
    return static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, std::min<std::ptrdiff_t>(t, half - 1)));
  };
  const std::ptrdiff_t total_cycles = half + 2 * kGuardPairs + latency;
  for (std::ptrdiff_t c = 0; c < total_cycles; ++c) {
    const std::ptrdiff_t t = c - kGuardPairs;
    sim.set_bus(dp.in_low, low[clampi(t)]);
    sim.set_bus(dp.in_high, high[clampi(t)]);
    sim.step();
    const std::ptrdiff_t i = c - latency - kGuardPairs + 1;
    if (i >= 0 && i < half) {
      out.samples[static_cast<std::size_t>(2 * i)] = sim.read_bus(dp.out_even);
      out.samples[static_cast<std::size_t>(2 * i + 1)] =
          sim.read_bus(dp.out_odd);
    }
  }
  out.cycles = static_cast<std::uint64_t>(total_cycles);
  return out;
}

}  // namespace dwt::hw
