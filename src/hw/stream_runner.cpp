#include "hw/stream_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/fir_filter.hpp"

namespace dwt::hw {
namespace {

/// ceil(n/2) / floor(n/2): the low/high sub-band sizes an n-sample signal
/// produces under the JPEG2000 (1,1) symmetric extension.
std::size_t low_count(std::size_t n) { return (n + 1) / 2; }
std::size_t high_count(std::size_t n) { return n / 2; }

/// A single-sample stream passes through the controller untouched (the
/// JPEG2000 single-sample rule); the datapath never runs, so the identity
/// result is reported with the same cycle formula as a streamed pair.
StreamResult single_sample_result(std::int64_t x0, int latency) {
  StreamResult out;
  out.low = {x0};
  out.cycles = static_cast<std::uint64_t>(1 + 2 * kGuardPairs + latency);
  return out;
}

/// Feeds extended pairs t = -guard .. ns-1+guard; pair t is
/// (x_ext[2t], x_ext[2t+1]) with whole-sample symmetric extension.  For odd
/// n the last fed pair's odd slot is the mirrored sample x[n-2]; the
/// high-band value it produces is the extension's phantom d[nd] = d[nd-1]
/// and is simply not captured, so n samples yield ceil(n/2) low and
/// floor(n/2) high coefficients.
template <typename Sim>
StreamResult run_impl(const rtl::Bus& in_even, const rtl::Bus& in_odd,
                      const rtl::Bus& out_low, const rtl::Bus& out_high,
                      int latency, Sim& sim, std::span<const std::int64_t> x) {
  if (x.empty()) {
    throw std::invalid_argument("run_stream: empty signal");
  }
  if (in_even.bits.empty() || in_odd.bits.empty() || out_low.bits.empty() ||
      out_high.bits.empty()) {
    throw std::invalid_argument("run_stream: datapath port bus is empty");
  }
  if (latency < 0) {
    throw std::invalid_argument("run_stream: negative latency");
  }
  if (x.size() == 1) return single_sample_result(x[0], latency);
  const std::ptrdiff_t ns = static_cast<std::ptrdiff_t>(low_count(x.size()));
  const std::ptrdiff_t nd = static_cast<std::ptrdiff_t>(high_count(x.size()));
  StreamResult out;
  out.low.assign(static_cast<std::size_t>(ns), 0);
  out.high.assign(static_cast<std::size_t>(nd), 0);

  auto x_ext = [&x](std::ptrdiff_t pos) {
    return x[dsp::mirror_index(pos, x.size())];
  };

  // Feed pairs; pair index t enters at cycle c = t + kGuardPairs, and the
  // coefficients for index i emerge `latency` cycles after pair i entered.
  const std::ptrdiff_t total_cycles =
      ns + 2 * kGuardPairs + latency;  // payload + guards + flush
  for (std::ptrdiff_t c = 0; c < total_cycles; ++c) {
    const std::ptrdiff_t t = c - kGuardPairs;
    const std::ptrdiff_t feed = t < ns + kGuardPairs ? t : ns + kGuardPairs - 1;
    sim.set_bus(in_even, x_ext(2 * feed));
    sim.set_bus(in_odd, x_ext(2 * feed + 1));
    if constexpr (requires { sim.step(); }) {
      sim.step();
    } else {
      sim.cycle();
    }
    const std::ptrdiff_t i = c - latency - kGuardPairs + 1;
    if (i >= 0 && i < ns) {
      out.low[static_cast<std::size_t>(i)] = sim.read_bus(out_low);
      if (i < nd) {
        out.high[static_cast<std::size_t>(i)] = sim.read_bus(out_high);
      }
    }
  }
  out.cycles = static_cast<std::uint64_t>(total_cycles);
  return out;
}

/// Shared body of the batched runners: any session with the batched
/// streaming surface (set_bus / step / per-lane read_bus and a kTotalLanes
/// bound) runs the same feed schedule, so the full-tape and cone-restricted
/// sessions stream identically by construction.
template <typename Session>
std::vector<StreamResult> run_batch_impl(const BuiltDatapath& dp,
                                         Session& session,
                                         std::span<const std::int64_t> x,
                                         unsigned lanes) {
  if (x.empty()) {
    throw std::invalid_argument("run_stream_batch: empty signal");
  }
  if (lanes == 0 || lanes > Session::kTotalLanes) {
    throw std::invalid_argument("run_stream_batch: bad lane count");
  }
  const int latency = dp.info.latency;
  if (x.size() == 1) {
    // Pass-through stream: no datapath activity, so no fault can land.
    return std::vector<StreamResult>(lanes,
                                     single_sample_result(x[0], latency));
  }
  const std::ptrdiff_t ns = static_cast<std::ptrdiff_t>(low_count(x.size()));
  const std::ptrdiff_t nd = static_cast<std::ptrdiff_t>(high_count(x.size()));
  std::vector<StreamResult> out(lanes);
  for (StreamResult& r : out) {
    r.low.assign(static_cast<std::size_t>(ns), 0);
    r.high.assign(static_cast<std::size_t>(nd), 0);
  }
  auto x_ext = [&x](std::ptrdiff_t pos) {
    return x[dsp::mirror_index(pos, x.size())];
  };
  // Same feed schedule as run_impl; every lane sees the same samples, and
  // the per-lane overlays inside the session produce the divergence.
  // Output capture goes through the sessions' bulk read (one slot
  // resolution per bus bit, fanned out to all lanes) -- with hundreds of
  // lanes the per-lane read_bus calls otherwise rival the settle itself.
  std::vector<std::int64_t> lane_values(lanes);
  const std::ptrdiff_t total_cycles = ns + 2 * kGuardPairs + latency;
  for (std::ptrdiff_t c = 0; c < total_cycles; ++c) {
    const std::ptrdiff_t t = c - kGuardPairs;
    const std::ptrdiff_t feed = t < ns + kGuardPairs ? t : ns + kGuardPairs - 1;
    session.set_bus(dp.in_even, x_ext(2 * feed));
    session.set_bus(dp.in_odd, x_ext(2 * feed + 1));
    session.step();
    const std::ptrdiff_t i = c - latency - kGuardPairs + 1;
    if (i >= 0 && i < ns) {
      session.read_bus_all(dp.out_low, lane_values.data(), lanes);
      for (unsigned l = 0; l < lanes; ++l) {
        out[l].low[static_cast<std::size_t>(i)] = lane_values[l];
      }
      if (i < nd) {
        session.read_bus_all(dp.out_high, lane_values.data(), lanes);
        for (unsigned l = 0; l < lanes; ++l) {
          out[l].high[static_cast<std::size_t>(i)] = lane_values[l];
        }
      }
    }
  }
  for (StreamResult& r : out) r.cycles = static_cast<std::uint64_t>(total_cycles);
  return out;
}

}  // namespace

StreamResult run_stream(const BuiltDatapath& dp, rtl::Simulator& sim,
                        std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, sim, x);
}

StreamResult run_stream_activity(const BuiltDatapath& dp, rtl::ActivitySim& sim,
                                 std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, sim, x);
}

StreamResult run_stream_mapped(const BuiltDatapath& dp,
                               fpga::MappedActivitySim& sim,
                               std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, sim, x);
}

StreamResult run_stream_faulty(const BuiltDatapath& dp, rtl::FaultInjector& inj,
                               std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high,
                  dp.info.latency, inj, x);
}

template <unsigned W>
std::vector<StreamResult> run_stream_batch(
    const BuiltDatapath& dp, rtl::compiled::WideBatchSession<W>& session,
    std::span<const std::int64_t> x, unsigned lanes) {
  return run_batch_impl(dp, session, x, lanes);
}

template <unsigned W>
std::vector<StreamResult> run_stream_batch(
    const BuiltDatapath& dp, rtl::compiled::ConeBatchSession<W>& session,
    std::span<const std::int64_t> x, unsigned lanes) {
  return run_batch_impl(dp, session, x, lanes);
}

template std::vector<StreamResult> run_stream_batch<1>(
    const BuiltDatapath&, rtl::compiled::WideBatchSession<1>&,
    std::span<const std::int64_t>, unsigned);
template std::vector<StreamResult> run_stream_batch<2>(
    const BuiltDatapath&, rtl::compiled::WideBatchSession<2>&,
    std::span<const std::int64_t>, unsigned);
template std::vector<StreamResult> run_stream_batch<4>(
    const BuiltDatapath&, rtl::compiled::WideBatchSession<4>&,
    std::span<const std::int64_t>, unsigned);
template std::vector<StreamResult> run_stream_batch<1>(
    const BuiltDatapath&, rtl::compiled::ConeBatchSession<1>&,
    std::span<const std::int64_t>, unsigned);
template std::vector<StreamResult> run_stream_batch<2>(
    const BuiltDatapath&, rtl::compiled::ConeBatchSession<2>&,
    std::span<const std::int64_t>, unsigned);
template std::vector<StreamResult> run_stream_batch<4>(
    const BuiltDatapath&, rtl::compiled::ConeBatchSession<4>&,
    std::span<const std::int64_t>, unsigned);

LaneStreamResult run_stream_lanes(const BuiltDatapath& dp,
                                  rtl::compiled::CompiledSimulator& sim,
                                  std::span<const std::int64_t> x) {
  if (x.empty()) {
    throw std::invalid_argument("run_stream_lanes: empty signal");
  }
  // Chunk in fed pairs so no trailing sample is dropped: an odd signal's
  // final chunk covers an odd number of samples and is mirror-extended
  // like any other odd stream.
  const std::size_t pairs = low_count(x.size());
  const std::size_t chunk_pairs =
      (pairs + rtl::compiled::kLanes - 1) / rtl::compiled::kLanes;
  const unsigned lanes =
      static_cast<unsigned>((pairs + chunk_pairs - 1) / chunk_pairs);
  const int latency = dp.info.latency;

  LaneStreamResult out;
  out.lanes.resize(lanes);
  std::vector<std::size_t> lane_samples(lanes);  // chunk length, may be odd
  std::vector<std::size_t> lane_pairs(lanes);    // fed pairs = ceil(len/2)
  for (unsigned l = 0; l < lanes; ++l) {
    const std::size_t base = 2 * l * chunk_pairs;
    lane_samples[l] = std::min(2 * chunk_pairs, x.size() - base);
    lane_pairs[l] = low_count(lane_samples[l]);
    out.lanes[l].low.assign(low_count(lane_samples[l]), 0);
    out.lanes[l].high.assign(high_count(lane_samples[l]), 0);
  }

  // Each lane mirror-extends its own chunk, exactly like run_impl does for
  // the whole signal.
  const auto lane_sample = [&](unsigned l, std::ptrdiff_t pos) {
    const std::size_t base = 2 * l * chunk_pairs;
    return x[base + dsp::mirror_index(pos, lane_samples[l])];
  };
  std::vector<std::uint64_t> bits;
  const auto drive = [&](const rtl::Bus& bus, std::ptrdiff_t t, int parity) {
    const std::size_t width = bus.bits.size();
    bits.assign(width, 0);
    for (unsigned l = 0; l < lanes; ++l) {
      const std::ptrdiff_t lane_half = static_cast<std::ptrdiff_t>(lane_pairs[l]);
      const std::ptrdiff_t feed =
          t < lane_half + kGuardPairs ? t : lane_half + kGuardPairs - 1;
      const std::int64_t v = lane_sample(l, 2 * feed + parity);
      for (std::size_t b = 0; b < width; ++b) {
        bits[b] |= static_cast<std::uint64_t>((v >> b) & 1) << l;
      }
    }
    for (std::size_t b = 0; b < width; ++b) {
      sim.set_input_mask(bus.bits[b], bits[b]);
    }
  };

  const std::ptrdiff_t total_cycles =
      static_cast<std::ptrdiff_t>(chunk_pairs) + 2 * kGuardPairs + latency;
  for (std::ptrdiff_t c = 0; c < total_cycles; ++c) {
    const std::ptrdiff_t t = c - kGuardPairs;
    drive(dp.in_even, t, 0);
    drive(dp.in_odd, t, 1);
    sim.step();
    const std::ptrdiff_t i = c - latency - kGuardPairs + 1;
    for (unsigned l = 0; l < lanes; ++l) {
      if (i >= 0 && i < static_cast<std::ptrdiff_t>(out.lanes[l].low.size())) {
        out.lanes[l].low[static_cast<std::size_t>(i)] =
            sim.read_bus(dp.out_low, l);
        if (i < static_cast<std::ptrdiff_t>(out.lanes[l].high.size())) {
          out.lanes[l].high[static_cast<std::size_t>(i)] =
              sim.read_bus(dp.out_high, l);
        }
      }
    }
  }
  // Single-sample chunks pass through (the JPEG2000 single-sample rule, as
  // run_stream applies); overwrite whatever the constant-fed core produced.
  for (unsigned l = 0; l < lanes; ++l) {
    if (lane_samples[l] == 1) {
      out.lanes[l].low[0] = x[2 * l * chunk_pairs];
    }
  }
  out.cycles = static_cast<std::uint64_t>(total_cycles);
  for (unsigned l = 0; l < lanes; ++l) {
    out.lanes[l].cycles = out.cycles;
  }
  return out;
}

std::uint64_t stream_cycle_count(const BuiltDatapath& dp, std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("stream_cycle_count: empty signal");
  }
  return static_cast<std::uint64_t>(low_count(n) + 2 * kGuardPairs +
                                    static_cast<std::size_t>(dp.info.latency));
}

StreamResult run_stream53(const BuiltDatapath53& dp, rtl::Simulator& sim,
                          std::span<const std::int64_t> x) {
  return run_impl(dp.in_even, dp.in_odd, dp.out_low, dp.out_high, dp.latency,
                  sim, x);
}

InverseStreamResult run_stream_inverse(const BuiltInverseDatapath& dp,
                                       rtl::Simulator& sim,
                                       std::span<const std::int64_t> low,
                                       std::span<const std::int64_t> high) {
  const std::size_t ns = low.size();
  const std::size_t nd = high.size();
  if (ns == 0 || (nd != ns && nd + 1 != ns)) {
    throw std::invalid_argument("run_stream_inverse: bad sub-band sizes");
  }
  const int latency = dp.latency;
  InverseStreamResult out;
  if (ns == 1 && nd == 0) {
    out.samples = {low[0]};
    out.cycles = static_cast<std::uint64_t>(1 + 2 * kGuardPairs + latency);
    return out;
  }
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(ns);
  out.samples.assign(ns + nd, 0);
  // Edge replication matches the software inverse model's boundary handling
  // (d_before(0) = d[0], s_at(ns) = s[ns-1]); for an odd-length signal the
  // high band is one short, so its clamp point comes one pair earlier
  // (d[nd] = d[nd-1], the (1,1) extension's phantom value).
  auto clamp_to = [](std::ptrdiff_t t, std::size_t count) {
    return static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, std::min<std::ptrdiff_t>(t, static_cast<std::ptrdiff_t>(count) - 1)));
  };
  const std::ptrdiff_t total_cycles = half + 2 * kGuardPairs + latency;
  for (std::ptrdiff_t c = 0; c < total_cycles; ++c) {
    const std::ptrdiff_t t = c - kGuardPairs;
    sim.set_bus(dp.in_low, low[clamp_to(t, ns)]);
    sim.set_bus(dp.in_high, high[clamp_to(t, nd)]);
    sim.step();
    const std::ptrdiff_t i = c - latency - kGuardPairs + 1;
    if (i >= 0 && i < half) {
      out.samples[static_cast<std::size_t>(2 * i)] = sim.read_bus(dp.out_even);
      if (static_cast<std::size_t>(2 * i + 1) < out.samples.size()) {
        out.samples[static_cast<std::size_t>(2 * i + 1)] =
            sim.read_bus(dp.out_odd);
      }
    }
  }
  out.cycles = static_cast<std::uint64_t>(total_cycles);
  return out;
}

}  // namespace dwt::hw
