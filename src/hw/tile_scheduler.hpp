// Tile-parallel 2-D DWT pipeline: partitions an image into independent
// tiles (JPEG2000-style tiling), transforms each tile with its own boundary
// extension, and shards the tiles across a worker pool.  Because every tile
// is self-contained the packed output is bit-identical for any thread
// count, and arbitrary image and tile dimensions (including odd and partial
// edge tiles) are legal.
//
// Engine selection is a core::ExecutionBackend handle:
//  - nullptr (default): the dsp 2-D transform selected by `method` runs
//    in-thread (any Method, including the reversible 5/3);
//  - a registry backend: one 2-D session per worker (for gate-level engines
//    that is a private figure-4 system around the shared cached netlist),
//    with the per-tile cycle accounting aggregated into the stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/dwt1d.hpp"
#include "dsp/image.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/tape.hpp"

namespace dwt::core {
class ExecutionBackend;
}  // namespace dwt::core

namespace dwt::hw {

/// One tile of the grid, in image coordinates.
struct TileRect {
  std::size_t x0 = 0, y0 = 0, w = 0, h = 0;
};

struct TileOptions {
  std::size_t tile_w = 64;   ///< nominal tile width (edge tiles may be thinner)
  std::size_t tile_h = 64;   ///< nominal tile height
  unsigned threads = 0;      ///< worker count; 0 = hardware concurrency
  int octaves = 1;           ///< octaves per tile
  dsp::Method method = dsp::Method::kLiftingFixed;  ///< in-thread dsp engine
  int frac_bits = dsp::kDefaultFracBits;
  /// Execution engine; nullptr runs the dsp transform selected by `method`
  /// in-thread.  Gate-level backends compute the fixed-point lifting
  /// transform only, so they reject any other `method`.
  const core::ExecutionBackend* backend = nullptr;
  DesignId design = DesignId::kDesign2;  ///< core for gate-level backends
  /// Adder-architecture override for gate-level cores; nullopt keeps the
  /// design's paper realization.  Never changes the transform output.
  std::optional<rtl::AdderArch> adder;
  /// Tape optimization level for the rtl-compiled backend (other engines
  /// ignore it).  Tiling is fault-free streaming, so the full pipeline is
  /// both safe and the default.
  rtl::compiled::OptLevel opt_level = rtl::compiled::OptLevel::kFull;
  /// Execution tier for the rtl-compiled backend (other engines ignore it);
  /// every worker session runs the resolved tier.  See BackendRequest.
  rtl::compiled::ExecTier exec_tier = rtl::compiled::ExecTier::kAuto;
};

struct TileStats {
  std::size_t tiles = 0;           ///< tiles processed
  unsigned threads_used = 0;       ///< workers actually spawned
  std::uint64_t total_cycles = 0;  ///< gate backends: summed core cycles
  std::uint64_t line_passes = 0;   ///< gate backends: summed 1-D passes
};

/// Row-major tile decomposition of a w x h image; edge tiles absorb the
/// remainder, so tiles can be any size from 1 x 1 up to tile_w x tile_h.
[[nodiscard]] std::vector<TileRect> tile_grid(std::size_t w, std::size_t h,
                                              std::size_t tile_w,
                                              std::size_t tile_h);

/// In-place tile-parallel forward transform: every tile ends up in the
/// packed LL|HL / LH|HH layout local to the tile.  Deterministic: the
/// output is byte-identical for every thread count.
TileStats tile_forward(dsp::Image& plane, const TileOptions& options);

/// Inverse of tile_forward under the same options.  Backends without an
/// inverse (the gate-level engines) are rejected; their forward is
/// bit-identical to the software fixed-point transform, so their output
/// inverts through the default software path.
TileStats tile_inverse(dsp::Image& plane, const TileOptions& options);

}  // namespace dwt::hw
