// Tile-parallel 2-D DWT pipeline: partitions an image into independent
// tiles (JPEG2000-style tiling), transforms each tile with its own boundary
// extension, and shards the tiles across a worker pool.  Because every tile
// is self-contained the packed output is bit-identical for any thread
// count, and arbitrary image and tile dimensions (including odd and partial
// edge tiles) are legal.
//
// Two backends:
//  - software: the dsp 2-D transforms (any Method);
//  - hardware: one figure-4 Dwt2dSystem per worker, so the result is the
//    cycle-accurate fixed-point core output (Method::kLiftingFixed only)
//    and the per-tile cycle accounting aggregates into the stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/dwt1d.hpp"
#include "dsp/image.hpp"
#include "hw/designs.hpp"

namespace dwt::hw {

/// One tile of the grid, in image coordinates.
struct TileRect {
  std::size_t x0 = 0, y0 = 0, w = 0, h = 0;
};

enum class TileBackend {
  kSoftware,  ///< dsp reference transforms
  kHardware,  ///< per-worker Dwt2dSystem (fixed-point lifting core)
};

struct TileOptions {
  std::size_t tile_w = 64;   ///< nominal tile width (edge tiles may be thinner)
  std::size_t tile_h = 64;   ///< nominal tile height
  unsigned threads = 0;      ///< worker count; 0 = hardware concurrency
  int octaves = 1;           ///< octaves per tile
  dsp::Method method = dsp::Method::kLiftingFixed;
  int frac_bits = dsp::kDefaultFracBits;
  TileBackend backend = TileBackend::kSoftware;
  DesignId design = DesignId::kDesign2;  ///< core for the hardware backend
};

struct TileStats {
  std::size_t tiles = 0;           ///< tiles processed
  unsigned threads_used = 0;       ///< workers actually spawned
  std::uint64_t total_cycles = 0;  ///< hardware backend: summed core cycles
  std::uint64_t line_passes = 0;   ///< hardware backend: summed 1-D passes
};

/// Row-major tile decomposition of a w x h image; edge tiles absorb the
/// remainder, so tiles can be any size from 1 x 1 up to tile_w x tile_h.
[[nodiscard]] std::vector<TileRect> tile_grid(std::size_t w, std::size_t h,
                                              std::size_t tile_w,
                                              std::size_t tile_h);

/// In-place tile-parallel forward transform: every tile ends up in the
/// packed LL|HL / LH|HH layout local to the tile.  Deterministic: the
/// output is byte-identical for every thread count.
TileStats tile_forward(dsp::Image& plane, const TileOptions& options);

/// Inverse of tile_forward under the same options (software backend only;
/// the hardware backend forward is bit-identical to the software
/// fixed-point transform, so its output inverts through this too).
TileStats tile_inverse(dsp::Image& plane, const TileOptions& options);

}  // namespace dwt::hw
