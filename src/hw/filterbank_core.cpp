#include "hw/filterbank_core.hpp"

#include <stdexcept>
#include <vector>

#include "dsp/fir_filter.hpp"
#include "rtl/adders.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/registers.hpp"

namespace dwt::hw {
namespace {

using rtl::Builder;
using rtl::Pipeliner;
using rtl::Word;

/// One tap multiplication: coeff_raw * tap, truncated later (accumulation is
/// exact, the >>frac_bits adjust happens once on the filter sum, matching
/// dsp::fir_at_fixed).
Word tap_product(Pipeliner& p, const Word& tap, std::int64_t coeff_raw,
                 const FilterBankConfig& cfg, const std::string& name) {
  const rtl::ShiftAddPlan plan = rtl::make_shiftadd_plan(coeff_raw, cfg.recoding);
  return rtl::shiftadd_multiply(p, tap, plan, cfg.adder_style,
                                cfg.sum_structure, name);
}

}  // namespace

BuiltFilterBank build_filterbank_core(const FilterBankConfig& cfg) {
  if (cfg.input_bits < 2 || cfg.input_bits > 24) {
    throw std::invalid_argument("build_filterbank_core: bad input_bits");
  }
  const auto coeffs = dsp::Dwt97FirFixedCoeffs::rounded(cfg.frac_bits);

  BuiltFilterBank out;
  out.config = cfg;
  rtl::Netlist& nl = out.netlist;
  Builder b(nl);
  Pipeliner p(b, cfg.pipelined_operators);

  Word in = rtl::word_input(nl, "in_sample", cfg.input_bits);
  // 9-deep sample window; all taps share the same logical pipeline depth
  // because they deliberately hold *different* samples of the window.
  std::vector<Word> taps(9);
  taps[0] = in;
  for (std::size_t k = 1; k < taps.size(); ++k) {
    taps[k] = Word{b.reg(taps[k - 1].bus, "w" + std::to_string(k)), in.range,
                   in.depth};
  }

  auto build_filter = [&](std::span<const std::int64_t> h, std::size_t first_tap,
                          const std::string& name) -> Word {
    std::vector<Word> products;
    int mult_blocks = 0;
    if (cfg.exploit_symmetry) {
      // h[j] == h[taps-1-j]: pre-add mirrored taps, halving multipliers.
      const std::size_t n = h.size();
      for (std::size_t j = 0; j < n / 2; ++j) {
        Word pre = rtl::word_add(p, taps[first_tap + j],
                                 taps[first_tap + n - 1 - j], cfg.adder_style,
                                 name + ".pre" + std::to_string(j));
        products.push_back(
            tap_product(p, pre, h[j], cfg, name + ".m" + std::to_string(j)));
        ++mult_blocks;
      }
      products.push_back(tap_product(p, taps[first_tap + n / 2], h[n / 2], cfg,
                                     name + ".mc"));
      ++mult_blocks;
    } else {
      for (std::size_t j = 0; j < h.size(); ++j) {
        products.push_back(tap_product(p, taps[first_tap + j], h[j], cfg,
                                       name + ".m" + std::to_string(j)));
        ++mult_blocks;
      }
    }
    out.multiplier_blocks += mult_blocks;
    Word sum = rtl::sum_tree(p, std::move(products), cfg.adder_style,
                             name + ".sum");
    return rtl::word_asr(b, sum, cfg.frac_bits);
  };

  Word low = build_filter(coeffs.analysis_low, 0, "lp");
  Word high = build_filter(coeffs.analysis_high, 1, "hp");
  // Output registers (one stage even in the non-pipelined variant).
  low = p.stage(low, "r_low");
  high = p.stage(high, "r_high");
  p.align(low, high, "out");

  nl.bind_output("low", low.bus);
  nl.bind_output("high", high.bus);
  nl.validate();
  out.in_sample = in.bus;
  out.out_low = low.bus;
  out.out_high = high.bus;
  out.latency = low.depth;
  return out;
}

}  // namespace dwt::hw
