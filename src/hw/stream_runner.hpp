// Streaming harness for the 1D-DWT cores: feeds a whole-sample-symmetric
// extended sample stream (the boundary treatment of paper section 2, which
// the memory controller performs in the 2D system of figure 4) into a
// simulated datapath and collects the valid low/high coefficient window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fpga/mapped_sim.hpp"
#include "hw/inverse_lifting_datapath.hpp"
#include "hw/lifting53_datapath.hpp"
#include "hw/lifting_datapath.hpp"
#include "rtl/activity_sim.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/compiled/cone_session.hpp"
#include "rtl/fault.hpp"
#include "rtl/simulator.hpp"

namespace dwt::hw {

struct StreamResult {
  std::vector<std::int64_t> low;   ///< ceil(n/2) low-pass coefficients
  std::vector<std::int64_t> high;  ///< floor(n/2) high-pass coefficients
  std::uint64_t cycles = 0;  ///< clock cycles consumed, including flush
};

/// Number of mirrored guard pairs fed before and after the payload; two are
/// mathematically required by the 9/7 support, four adds pipeline-flush
/// margin.
inline constexpr int kGuardPairs = 4;

/// Runs a signal of any non-zero length through the datapath on the
/// zero-delay functional simulator.  Odd lengths follow the JPEG2000 (1,1)
/// symmetric extension (the trailing mirrored pair's high output is the
/// extension's phantom coefficient and is dropped); a single-sample signal
/// passes through without touching the core.
[[nodiscard]] StreamResult run_stream(const BuiltDatapath& dp,
                                      rtl::Simulator& sim,
                                      std::span<const std::int64_t> x);

/// Same, on the unit-delay activity simulator (used for power workloads).
[[nodiscard]] StreamResult run_stream_activity(const BuiltDatapath& dp,
                                               rtl::ActivitySim& sim,
                                               std::span<const std::int64_t> x);

/// Same, on the mapped-netlist unit-delay simulator (LUT-level glitches).
[[nodiscard]] StreamResult run_stream_mapped(const BuiltDatapath& dp,
                                             fpga::MappedActivitySim& sim,
                                             std::span<const std::int64_t> x);

/// Same, through a fault-injection overlay: armed faults strike mid-stream
/// at their scheduled cycles (cycle 0 is the first fed pair, guards
/// included).  With no faults armed this is bit-identical to run_stream.
[[nodiscard]] StreamResult run_stream_faulty(const BuiltDatapath& dp,
                                             rtl::FaultInjector& inj,
                                             std::span<const std::int64_t> x);

/// Batched equivalent of run_stream_faulty on the compiled bit-parallel
/// engine: every lane streams the same extended signal while the session
/// applies each lane's armed fault overlay, so one call carries up to
/// Session::kTotalLanes independent fault trials (64 per slot word times
/// the session's lane-block width W).  Returns the per-lane coefficient
/// windows for the first `lanes` lanes; with no faults armed every lane is
/// bit-identical to run_stream.
template <unsigned W>
[[nodiscard]] std::vector<StreamResult> run_stream_batch(
    const BuiltDatapath& dp, rtl::compiled::WideBatchSession<W>& session,
    std::span<const std::int64_t> x, unsigned lanes);

extern template std::vector<StreamResult> run_stream_batch<1>(
    const BuiltDatapath&, rtl::compiled::WideBatchSession<1>&,
    std::span<const std::int64_t>, unsigned);
extern template std::vector<StreamResult> run_stream_batch<2>(
    const BuiltDatapath&, rtl::compiled::WideBatchSession<2>&,
    std::span<const std::int64_t>, unsigned);
extern template std::vector<StreamResult> run_stream_batch<4>(
    const BuiltDatapath&, rtl::compiled::WideBatchSession<4>&,
    std::span<const std::int64_t>, unsigned);

/// Cone-restricted variant: same feed schedule and per-lane results as the
/// full-tape overload, but each cycle settles only the armed faults' cone
/// interval and replays everything else from the session's golden trace
/// (see rtl/compiled/cone_session.hpp).  Bit-identical to the full session
/// for every lane.
template <unsigned W>
[[nodiscard]] std::vector<StreamResult> run_stream_batch(
    const BuiltDatapath& dp, rtl::compiled::ConeBatchSession<W>& session,
    std::span<const std::int64_t> x, unsigned lanes);

extern template std::vector<StreamResult> run_stream_batch<1>(
    const BuiltDatapath&, rtl::compiled::ConeBatchSession<1>&,
    std::span<const std::int64_t>, unsigned);
extern template std::vector<StreamResult> run_stream_batch<2>(
    const BuiltDatapath&, rtl::compiled::ConeBatchSession<2>&,
    std::span<const std::int64_t>, unsigned);
extern template std::vector<StreamResult> run_stream_batch<4>(
    const BuiltDatapath&, rtl::compiled::ConeBatchSession<4>&,
    std::span<const std::int64_t>, unsigned);

/// Batched activity path: partitions a signal of any non-zero length into
/// up to 64 contiguous chunks (the final chunk may be odd), one per lane,
/// and streams them all in one
/// compiled pass (each chunk is mirror-extended independently, so sub-band
/// values near chunk seams differ from the single-stream transform -- fine
/// for switching-activity workloads, not for codec output).  Enable the
/// simulator's activity counters first to harvest toggle statistics.
struct LaneStreamResult {
  std::vector<StreamResult> lanes;  ///< per-lane chunk transforms
  std::uint64_t cycles = 0;         ///< batch cycles (all lanes in parallel)
};
[[nodiscard]] LaneStreamResult run_stream_lanes(
    const BuiltDatapath& dp, rtl::compiled::CompiledSimulator& sim,
    std::span<const std::int64_t> x);

/// Cycles one call to run_stream/run_stream_faulty consumes for an
/// `n`-sample signal on `dp` (payload + guards + flush); campaign schedulers
/// use it to draw in-range injection cycles.
[[nodiscard]] std::uint64_t stream_cycle_count(const BuiltDatapath& dp,
                                               std::size_t n);

/// Streaming harness for the reversible 5/3 core.
[[nodiscard]] StreamResult run_stream53(const BuiltDatapath53& dp,
                                        rtl::Simulator& sim,
                                        std::span<const std::int64_t> x);

struct InverseStreamResult {
  std::vector<std::int64_t> samples;  ///< interleaved even/odd reconstruction
  std::uint64_t cycles = 0;
};

/// Streaming harness for the inverse core: feeds (low, high) coefficient
/// pairs with the edge-replicated extension the software inverse model
/// assumes, and collects the reconstructed sample pairs.
[[nodiscard]] InverseStreamResult run_stream_inverse(
    const BuiltInverseDatapath& dp, rtl::Simulator& sim,
    std::span<const std::int64_t> low, std::span<const std::int64_t> high);

}  // namespace dwt::hw
