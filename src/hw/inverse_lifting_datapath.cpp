#include "hw/inverse_lifting_datapath.hpp"

#include <stdexcept>

#include "rtl/adders.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/registers.hpp"

namespace dwt::hw {
namespace {

using common::Interval;
using rtl::Builder;
using rtl::Pipeliner;
using rtl::Word;

Word as_index(const Word& w, int depth) {
  Word out = w;
  out.depth = depth;
  return out;
}

class InverseBuilder {
 public:
  explicit InverseBuilder(const InverseDatapathConfig& cfg)
      : cfg_(cfg),
        builder_(netlist_),
        pipe_(builder_, cfg.pipelined_operators),
        coeffs_(dsp::LiftingFixedCoeffs::rounded(cfg.frac_bits)) {}

  BuiltInverseDatapath build() {
    Word in_low = rtl::word_input(netlist_, "in_low", cfg_.low_bits);
    Word in_high = rtl::word_input(netlist_, "in_high", cfg_.high_bits);

    Word low = pipe_.stage(in_low, "r_low");
    Word high = pipe_.stage(in_high, "r_high");

    // Undo the output scaling: s2 = (low * k) >> f, d2 = (high * -1/k) >> f.
    Word s2 = mult_truncate(low, coeffs_.k, "k");
    Word d2 = mult_truncate(high, coeffs_.minus_inv_k, "minusinvk");
    s2 = stage_after_compute(s2, "r_s2");
    d2 = stage_after_compute(d2, "r_d2");
    pipe_.align(s2, d2, "scale");

    // Undo delta (past window): s1[i] = s2[i] - (delta*(d2[i-1]+d2[i]) >> f).
    Word d2_prev = pipe_.stage(d2, "r_d2_d");
    Word pre_d = rtl::word_add(pipe_, d2, as_index(d2_prev, d2.depth),
                               cfg_.adder_style, "idelta.pre");
    Word s1 = unlift_result(s2, pre_d, coeffs_.delta, "idelta");
    s1 = stage_after_compute(s1, "r_s1");

    // Undo gamma (future window): d1[i] = d2[i] - (gamma*(s1[i]+s1[i+1]) >> f).
    Word s1_d = pipe_.stage(s1, "r_s1_d");  // holds s1[i]
    Word pre_g = rtl::word_add(pipe_, s1_d, as_index(s1, s1_d.depth),
                               cfg_.adder_style, "igamma.pre");
    // The d2 target is shimmed to pre_g's index automatically by word_sub.
    Word d1 = unlift_result(d2, pre_g, coeffs_.gamma, "igamma");
    d1 = stage_after_compute(d1, "r_d1");

    // Undo beta (past window): s0[i] = s1[i] - (beta*(d1[i-1]+d1[i]) >> f).
    Word d1_prev = pipe_.stage(d1, "r_d1_d");
    Word pre_b = rtl::word_add(pipe_, d1, as_index(d1_prev, d1.depth),
                               cfg_.adder_style, "ibeta.pre");
    Word s0 = unlift_result(s1_d, pre_b, coeffs_.beta, "ibeta");
    s0 = stage_after_compute(s0, "r_s0");

    // Undo alpha (future window): d0[i] = d1[i] - (alpha*(s0[i]+s0[i+1]) >> f).
    Word s0_d = pipe_.stage(s0, "r_s0_d");  // holds s0[i]
    Word pre_a = rtl::word_add(pipe_, s0_d, as_index(s0, s0_d.depth),
                               cfg_.adder_style, "ialpha.pre");
    Word d0 = unlift_result(d1, pre_a, coeffs_.alpha, "ialpha");
    d0 = stage_after_compute(d0, "r_d0");

    Word even = pipe_.align_to(s0_d, d0.depth, "even.out");
    Word odd = d0;
    pipe_.align(even, odd, "out");
    netlist_.bind_output("even", even.bus);
    netlist_.bind_output("odd", odd.bus);
    netlist_.validate();

    BuiltInverseDatapath out;
    out.in_low = in_low.bus;
    out.in_high = in_high.bus;
    out.out_even = even.bus;
    out.out_odd = odd.bus;
    out.latency = even.depth;
    out.config = cfg_;
    out.netlist = std::move(netlist_);
    return out;
  }

 private:
  Word mult_truncate(const Word& x, const common::Fixed& k,
                     const std::string& name) {
    const rtl::ShiftAddPlan plan = rtl::make_shiftadd_plan(k.raw(), cfg_.recoding);
    const Word product = rtl::shiftadd_multiply(
        pipe_, x, plan, cfg_.adder_style, rtl::SumStructure::kSequential,
        name + ".mul");
    return rtl::word_asr(builder_, product, cfg_.frac_bits);
  }

  /// target - (coeff * pre >> f): one inverse lifting step.
  Word unlift_result(const Word& target, const Word& pre,
                     const common::Fixed& k, const std::string& name) {
    const Word shifted = mult_truncate(pre, k, name);
    return rtl::word_sub(pipe_, target, shifted, cfg_.adder_style,
                         name + ".post");
  }

  Word stage_after_compute(const Word& w, const std::string& name) {
    return cfg_.pipelined_operators ? w : pipe_.stage(w, name);
  }

  InverseDatapathConfig cfg_;
  rtl::Netlist netlist_;
  Builder builder_;
  Pipeliner pipe_;
  dsp::LiftingFixedCoeffs coeffs_;
};

}  // namespace

BuiltInverseDatapath build_inverse_lifting_datapath(
    const InverseDatapathConfig& cfg) {
  if (cfg.low_bits < 2 || cfg.low_bits > 24 || cfg.high_bits < 2 ||
      cfg.high_bits > 24) {
    throw std::invalid_argument("build_inverse_lifting_datapath: bad widths");
  }
  if (cfg.frac_bits < 1 || cfg.frac_bits > 24) {
    throw std::invalid_argument("build_inverse_lifting_datapath: bad frac");
  }
  return InverseBuilder(cfg).build();
}

}  // namespace dwt::hw
