#include "hw/lifting_datapath.hpp"

#include <stdexcept>

#include "rtl/adders.hpp"
#include "rtl/multipliers.hpp"
#include "rtl/registers.hpp"

namespace dwt::hw {
namespace {

using common::Interval;
using rtl::AdderStyle;
using rtl::Builder;
using rtl::Pipeliner;
using rtl::Word;

/// Reinterprets a word as belonging to a different sample index at the same
/// physical net.  Used for the lifting neighbor windows: a stream delayed by
/// one register holds sample i while the undelayed net holds sample i+1, so
/// both can be viewed at the same "result index" depth.
Word as_index(const Word& w, int depth) {
  Word out = w;
  out.depth = depth;
  return out;
}

class DatapathBuilder {
 public:
  explicit DatapathBuilder(const DatapathConfig& cfg)
      : cfg_(cfg),
        builder_(netlist_),
        pipe_(builder_, cfg.pipelined_operators, cfg.pipeline_granularity),
        coeffs_(dsp::LiftingFixedCoeffs::rounded(cfg.frac_bits)) {}

  BuiltDatapath build() {
    const bool use_paper = cfg_.paper_widths && cfg_.frac_bits == 8 &&
                           cfg_.input_bits == 8;
    const auto paper = paper_section31_ranges();
    auto paper_range = [&](const std::string& name) -> const Interval* {
      if (!use_paper) return nullptr;
      for (const StageRange& r : paper) {
        if (r.name == name) return &r.range;
      }
      return nullptr;
    };

    Word in_even = rtl::word_input(netlist_, "in_even", cfg_.input_bits);
    Word in_odd = rtl::word_input(netlist_, "in_odd", cfg_.input_bits);

    // Stage 1: input registers; stage 2: even delay (the alpha window).
    Word e1 = pipe_.stage(in_even, "r_even");
    Word o1 = pipe_.stage(in_odd, "r_odd");
    Word e2 = pipe_.stage(e1, "r_even_d");

    // --- alpha predict: d1[i] = o[i] + (alpha*(s[i] + s[i+1]) >> f) ---
    Word pre_a = rtl::word_add(pipe_, e2, as_index(e1, e2.depth),
                               cfg_.adder_style, "alpha.pre");
    Word d1 = lift_result(o1, pre_a, coeffs_.alpha, "alpha");
    d1 = clamp(d1, "d1_after_alpha", paper_range("d1_after_alpha"));
    d1 = stage_after_compute(d1, "r_d1");

    // --- beta update: s1[i] = s[i] + (beta*(d1[i-1] + d1[i]) >> f) ---
    Word d1_prev = pipe_.stage(d1, "r_d1_d");  // holds d1[i-1]
    Word pre_b = rtl::word_add(pipe_, d1, as_index(d1_prev, d1.depth),
                               cfg_.adder_style, "beta.pre");
    Word s1 = lift_result(e2, pre_b, coeffs_.beta, "beta");
    s1 = clamp(s1, "s1_after_beta", paper_range("s1_after_beta"));
    s1 = stage_after_compute(s1, "r_s1");

    // --- gamma predict: d2[i] = d1[i] + (gamma*(s1[i] + s1[i+1]) >> f) ---
    Word s1_d = pipe_.stage(s1, "r_s1_d");  // holds s1[i]
    Word pre_g = rtl::word_add(pipe_, s1_d, as_index(s1, s1_d.depth),
                               cfg_.adder_style, "gamma.pre");
    Word d2 = lift_result(d1, pre_g, coeffs_.gamma, "gamma");
    d2 = clamp(d2, "d2_after_gamma", paper_range("d2_after_gamma"));
    d2 = stage_after_compute(d2, "r_d2");

    // --- delta update: s2[i] = s1[i] + (delta*(d2[i-1] + d2[i]) >> f) ---
    Word d2_prev = pipe_.stage(d2, "r_d2_d");  // holds d2[i-1]
    Word pre_d = rtl::word_add(pipe_, d2, as_index(d2_prev, d2.depth),
                               cfg_.adder_style, "delta.pre");
    Word s2 = lift_result(s1_d, pre_d, coeffs_.delta, "delta");
    s2 = clamp(s2, "s2_after_delta", paper_range("s2_after_delta"));
    s2 = stage_after_compute(s2, "r_s2");

    // --- output scaling: low = s2 * (1/k) >> f,  high = d2 * (-k) >> f ---
    // d2_prev legitimately holds the d2 stream one register later, which is
    // the alignment the high-pass scale needs alongside s2.
    Word low = scale_result(s2, coeffs_.inv_k, "invk");
    low = clamp(low, "low_output", paper_range("low_output"));
    low = stage_after_compute(low, "r_low");
    Word high = scale_result(d2_prev, coeffs_.minus_k, "minusk");
    high = clamp(high, "high_output", paper_range("high_output"));
    high = stage_after_compute(high, "r_high");

    pipe_.align(low, high, "out");
    netlist_.bind_output("low", low.bus);
    netlist_.bind_output("high", high.bus);
    netlist_.validate();

    BuiltDatapath out;
    out.in_even = in_even.bus;
    out.in_odd = in_odd.bus;
    out.out_low = low.bus;
    out.out_high = high.bus;
    out.info.latency = low.depth;
    out.info.stage_ranges = std::move(ranges_);
    out.config = cfg_;
    out.netlist = std::move(netlist_);
    return out;
  }

 private:
  /// Multiplies by a constant and truncates (the >> frac_bits adjust).
  Word mult_truncate(const Word& x, const common::Fixed& k,
                     const std::string& name) {
    Word product;
    if (cfg_.multiplier == MultiplierStyle::kGenericArray) {
      const int cw = std::max(2 + cfg_.frac_bits,
                              common::signed_bits_for_range(k.raw(), k.raw()));
      product = rtl::array_multiply_const(pipe_, x, k.raw(), cw,
                                          cfg_.adder_style, cfg_.sum_structure,
                                          name + ".mul");
    } else {
      const rtl::ShiftAddPlan plan =
          rtl::make_shiftadd_plan(k.raw(), cfg_.recoding);
      product = rtl::shiftadd_multiply(pipe_, x, plan, cfg_.adder_style,
                                       cfg_.sum_structure, name + ".mul");
    }
    return rtl::word_asr(builder_, product, cfg_.frac_bits);
  }

  /// target + (coeff * pre >> f): one lifting step.
  Word lift_result(const Word& target, const Word& pre, const common::Fixed& k,
                   const std::string& name) {
    const Word shifted = mult_truncate(pre, k, name);
    return rtl::word_add(pipe_, target, shifted, cfg_.adder_style,
                         name + ".post");
  }

  /// coeff * value >> f: output scaling step.
  Word scale_result(const Word& value, const common::Fixed& k,
                    const std::string& name) {
    return mult_truncate(value, k, name);
  }

  /// Explicit stage register of the 8-stage skeleton.  In pipelined-operator
  /// mode the preceding adder already registered the value, so no extra
  /// register is inserted.
  Word stage_after_compute(const Word& w, const std::string& name) {
    return cfg_.pipelined_operators ? w : pipe_.stage(w, name);
  }

  /// Records the stage range and, when paper sizing is active, clamps the
  /// register width and downstream range to the published measurement.
  Word clamp(Word w, const std::string& name, const Interval* paper) {
    Word out = w;
    if (paper != nullptr) {
      out.range = *paper;
      out.bus = builder_.resize(w.bus, out.range.min_signed_bits());
    }
    ranges_.push_back({name, out.range, out.range.min_signed_bits()});
    return out;
  }

  DatapathConfig cfg_;
  rtl::Netlist netlist_;
  Builder builder_;
  Pipeliner pipe_;
  dsp::LiftingFixedCoeffs coeffs_;
  std::vector<StageRange> ranges_;
};

}  // namespace

std::vector<StageRange> paper_section31_ranges() {
  auto entry = [](std::string name, std::int64_t lo, std::int64_t hi) {
    const Interval r{lo, hi};
    return StageRange{std::move(name), r, r.min_signed_bits()};
  };
  return {
      entry("input", -128, 127),
      entry("d1_after_alpha", -530, 530),   // signed 11 bits
      entry("s1_after_beta", -184, 184),    // signed 9 bits
      entry("d2_after_gamma", -205, 205),   // signed 9 bits
      entry("s2_after_delta", -366, 366),   // signed 10 bits
      entry("low_output", -298, 298),       // signed 10 bits
      entry("high_output", -252, 252),      // signed 9 bits
  };
}

BuiltDatapath build_lifting_datapath(const DatapathConfig& cfg) {
  if (cfg.input_bits < 2 || cfg.input_bits > 24) {
    throw std::invalid_argument("build_lifting_datapath: bad input_bits");
  }
  if (cfg.frac_bits < 1 || cfg.frac_bits > 24) {
    throw std::invalid_argument("build_lifting_datapath: bad frac_bits");
  }
  return DatapathBuilder(cfg).build();
}

}  // namespace dwt::hw
