#include "hw/designs.hpp"

#include <stdexcept>

namespace dwt::hw {

std::vector<DesignSpec> all_designs() {
  using rtl::AdderStyle;
  DatapathConfig base;  // 8-bit signed samples, 8 fractional bits
  std::vector<DesignSpec> specs;

  DatapathConfig c1 = base;
  c1.multiplier = MultiplierStyle::kGenericArray;
  c1.adder_style = AdderStyle::kCarryChain;
  c1.pipelined_operators = false;
  specs.push_back({DesignId::kDesign1, "Design 1",
                   "behavioral description with integer generic multipliers",
                   c1});

  DatapathConfig c2 = base;
  c2.multiplier = MultiplierStyle::kShiftAdd;
  c2.adder_style = AdderStyle::kCarryChain;
  c2.pipelined_operators = false;
  specs.push_back({DesignId::kDesign2, "Design 2",
                   "behavioral description with shifted integer adders", c2});

  DatapathConfig c3 = c2;
  c3.pipelined_operators = true;
  specs.push_back(
      {DesignId::kDesign3, "Design 3",
       "behavioral description with pipeline of shifted integer adders", c3});

  DatapathConfig c4 = c2;
  c4.adder_style = AdderStyle::kRippleGates;
  specs.push_back({DesignId::kDesign4, "Design 4",
                   "structural description with shifted integer adders", c4});

  DatapathConfig c5 = c4;
  c5.pipelined_operators = true;
  specs.push_back(
      {DesignId::kDesign5, "Design 5",
       "structural description with pipeline of shifted integer adders", c5});
  return specs;
}

DesignSpec design_spec(DesignId id) {
  for (DesignSpec& s : all_designs()) {
    if (s.id == id) return std::move(s);
  }
  throw std::invalid_argument("design_spec: unknown design");
}

BuiltDatapath build_design(DesignId id) {
  return build_lifting_datapath(design_spec(id).config);
}

namespace {

bool any_output_bit_registered(const rtl::Netlist& nl, const rtl::Bus& bus) {
  for (const rtl::NetId n : bus.bits) {
    const rtl::CellId driver = nl.net(n).driver;
    if (driver != rtl::kNullCell &&
        nl.cell(driver).kind == rtl::CellKind::kDff) {
      return true;
    }
  }
  return false;
}

}  // namespace

BuiltDatapath harden_datapath(const BuiltDatapath& dp,
                              rtl::HardeningStyle style,
                              rtl::HardeningReport* report) {
  BuiltDatapath out;
  out.netlist = rtl::apply_hardening(dp.netlist, style, report);
  out.in_even = out.netlist.find_input_bus("in_even");
  out.in_odd = out.netlist.find_input_bus("in_odd");
  out.out_low = out.netlist.output("low");
  out.out_high = out.netlist.output("high");
  out.info = dp.info;
  out.config = dp.config;
  if (style == rtl::HardeningStyle::kTmr &&
      (any_output_bit_registered(dp.netlist, dp.out_low) ||
       any_output_bit_registered(dp.netlist, dp.out_high))) {
    // Registered port bits are now majority-voter (combinational) nets: the
    // harness samples them one settle after the flip-flops they vote on.
    out.info.latency += 1;
  }
  return out;
}

std::vector<PaperTable3Row> paper_table3() {
  return {
      {"Design 1", 781, 16.6, 310.0, 8},
      {"Design 2", 480, 44.0, 248.0, 8},
      {"Design 3", 766, 157.0, 105.0, 21},
      {"Design 4", 701, 54.4, 232.0, 8},
      {"Design 5", 1002, 105.0, 91.4, 21},
  };
}

}  // namespace dwt::hw
