#include "hw/designs.hpp"

#include <cctype>
#include <stdexcept>

namespace dwt::hw {

std::vector<DesignSpec> all_designs() {
  using rtl::AdderStyle;
  DatapathConfig base;  // 8-bit signed samples, 8 fractional bits
  std::vector<DesignSpec> specs;

  DatapathConfig c1 = base;
  c1.multiplier = MultiplierStyle::kGenericArray;
  c1.adder_style = AdderStyle::kCarryChain;
  c1.pipelined_operators = false;
  specs.push_back({DesignId::kDesign1, "Design 1",
                   "behavioral description with integer generic multipliers",
                   c1});

  DatapathConfig c2 = base;
  c2.multiplier = MultiplierStyle::kShiftAdd;
  c2.adder_style = AdderStyle::kCarryChain;
  c2.pipelined_operators = false;
  specs.push_back({DesignId::kDesign2, "Design 2",
                   "behavioral description with shifted integer adders", c2});

  DatapathConfig c3 = c2;
  c3.pipelined_operators = true;
  specs.push_back(
      {DesignId::kDesign3, "Design 3",
       "behavioral description with pipeline of shifted integer adders", c3});

  DatapathConfig c4 = c2;
  c4.adder_style = AdderStyle::kRippleGates;
  specs.push_back({DesignId::kDesign4, "Design 4",
                   "structural description with shifted integer adders", c4});

  DatapathConfig c5 = c4;
  c5.pipelined_operators = true;
  specs.push_back(
      {DesignId::kDesign5, "Design 5",
       "structural description with pipeline of shifted integer adders", c5});
  return specs;
}

DesignSpec design_spec(DesignId id) {
  for (DesignSpec& s : all_designs()) {
    if (s.id == id) return std::move(s);
  }
  throw std::invalid_argument("design_spec: unknown design");
}

std::vector<DesignSpec> adder_variant_designs() {
  // Design 1 is excluded: its generic-array multipliers dominate both area
  // and the critical path, so an adder swap moves nothing the sweep cares
  // about while tripling the largest elaboration in the space.
  std::vector<DesignSpec> specs;
  for (const DesignId id : {DesignId::kDesign2, DesignId::kDesign3,
                            DesignId::kDesign4, DesignId::kDesign5}) {
    for (const rtl::AdderArch arch : rtl::prefix_adder_archs()) {
      DesignSpec spec = design_spec(id);
      spec.config.adder_style = arch;
      spec.name = design_point_name(id, arch);
      spec.description += std::string(", ") + rtl::adder_name(arch) +
                          " parallel-prefix adders";
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::string design_point_name(DesignId id,
                              std::optional<rtl::AdderArch> adder) {
  std::string name = design_name(id);
  if (adder.has_value()) {
    name += std::string(" (") + rtl::adder_name(*adder) + ")";
  }
  return name;
}

int design_index(DesignId id) { return static_cast<int>(id) + 1; }

std::string design_name(DesignId id) {
  return "Design " + std::to_string(design_index(id));
}

std::optional<DesignId> parse_design(std::string_view text) {
  // Strip an optional case-insensitive "design" prefix and one separator.
  constexpr std::string_view kPrefix = "design";
  if (text.size() > kPrefix.size()) {
    bool prefixed = true;
    for (std::size_t i = 0; i < kPrefix.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text[i])) != kPrefix[i]) {
        prefixed = false;
        break;
      }
    }
    if (prefixed) {
      text.remove_prefix(kPrefix.size());
      if (!text.empty() && (text.front() == ' ' || text.front() == '-' ||
                            text.front() == '_')) {
        text.remove_prefix(1);
      }
    }
  }
  if (text.size() != 1 || text.front() < '1' ||
      text.front() > '0' + kDesignCount) {
    return std::nullopt;
  }
  return static_cast<DesignId>(text.front() - '1');
}

DatapathConfig design_config(DesignId id, int max_octaves,
                             std::optional<rtl::AdderArch> adder) {
  if (max_octaves < 1) {
    throw std::invalid_argument("design_config: max_octaves < 1");
  }
  DatapathConfig cfg = design_spec(id).config;
  if (max_octaves > 1) {
    cfg.input_bits = 8 + 2 * (max_octaves - 1);
    cfg.paper_widths = false;  // interval-analysis sizing for wide inputs
  }
  if (adder.has_value()) cfg.adder_style = *adder;
  return cfg;
}

BuiltDatapath build_design(DesignId id) {
  return build_lifting_datapath(design_spec(id).config);
}

namespace {

bool any_output_bit_registered(const rtl::Netlist& nl, const rtl::Bus& bus) {
  for (const rtl::NetId n : bus.bits) {
    const rtl::CellId driver = nl.net(n).driver;
    if (driver != rtl::kNullCell &&
        nl.cell(driver).kind == rtl::CellKind::kDff) {
      return true;
    }
  }
  return false;
}

}  // namespace

BuiltDatapath harden_datapath(const BuiltDatapath& dp,
                              rtl::HardeningStyle style,
                              rtl::HardeningReport* report) {
  BuiltDatapath out;
  out.netlist = rtl::apply_hardening(dp.netlist, style, report);
  out.in_even = out.netlist.find_input_bus("in_even");
  out.in_odd = out.netlist.find_input_bus("in_odd");
  out.out_low = out.netlist.output("low");
  out.out_high = out.netlist.output("high");
  out.info = dp.info;
  out.config = dp.config;
  if (style == rtl::HardeningStyle::kTmr &&
      (any_output_bit_registered(dp.netlist, dp.out_low) ||
       any_output_bit_registered(dp.netlist, dp.out_high))) {
    // Registered port bits are now majority-voter (combinational) nets: the
    // harness samples them one settle after the flip-flops they vote on.
    out.info.latency += 1;
  }
  return out;
}

std::vector<PaperTable3Row> paper_table3() {
  return {
      {"Design 1", 781, 16.6, 310.0, 8},
      {"Design 2", 480, 44.0, 248.0, 8},
      {"Design 3", 766, 157.0, 105.0, 21},
      {"Design 4", 701, 54.4, 232.0, 8},
      {"Design 5", 1002, 105.0, 91.4, 21},
  };
}

}  // namespace dwt::hw
