// 2D-DWT system model (paper figure 4): image memory, a memory controller
// that schedules row then column passes (performing the boundary mirroring)
// and one 1D-DWT core.  The controller runs the core cycle-accurately via
// the functional simulator and accounts the cycles every octave consumes.
#pragma once

#include <cstdint>
#include <memory>

#include "dsp/image.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"

namespace dwt::hw {

struct Dwt2dRunStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t line_passes = 0;   ///< 1-D transforms executed
  int octaves = 0;

  /// Transform time at a clock frequency (throughput metric).
  [[nodiscard]] double milliseconds_at(double f_mhz) const {
    return static_cast<double>(total_cycles) / (f_mhz * 1e3);
  }
};

class Dwt2dSystem {
 public:
  /// Builds the system around the given 1D core design.  The paper's core
  /// has signed 8-bit inputs, which only accommodates one octave; for deeper
  /// recursions the controller provisions a wider core (LL coefficients grow
  /// roughly 1.2 bits per octave), sized by interval analysis instead of the
  /// paper's measured 8-bit-input ranges.
  explicit Dwt2dSystem(DesignId design, int max_octaves = 1);

  /// In-place multi-octave forward transform of an integer-valued plane
  /// (pixels already DC-level-shifted to signed values).  Returns cycle
  /// accounting.  The transformed plane matches the software fixed-point
  /// lifting transform bit for bit.
  Dwt2dRunStats transform(dsp::Image& plane, int octaves);

  [[nodiscard]] const BuiltDatapath& core() const { return core_; }

 private:
  void transform_line(std::vector<std::int64_t>& line, Dwt2dRunStats& stats);

  BuiltDatapath core_;
  std::unique_ptr<rtl::Simulator> sim_;
};

}  // namespace dwt::hw
