// 2D-DWT system model (paper figure 4): image memory, a memory controller
// that schedules row then column passes (performing the boundary mirroring)
// and one 1D-DWT core.  The controller runs the core cycle-accurately and
// accounts the cycles every octave consumes.  The core runs on either the
// scalar zero-delay simulator or the bit-parallel compiled engine (lane 0);
// both produce bit-identical coefficients and cycle counts.
#pragma once

#include <cstdint>
#include <memory>

#include "dsp/image.hpp"
#include "hw/designs.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/native_block.hpp"

namespace dwt::hw {

struct Dwt2dRunStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t line_passes = 0;   ///< 1-D transforms executed
  int octaves = 0;

  /// Transform time at a clock frequency (throughput metric).
  [[nodiscard]] double milliseconds_at(double f_mhz) const {
    return static_cast<double>(total_cycles) / (f_mhz * 1e3);
  }
};

class Dwt2dSystem {
 public:
  /// Builds the system around a freshly elaborated 1D core.  The paper's
  /// core has signed 8-bit inputs, which only accommodates one octave; for
  /// deeper recursions the controller provisions a wider core (LL
  /// coefficients grow roughly 1.2 bits per octave), sized by interval
  /// analysis instead of the paper's measured 8-bit-input ranges (see
  /// design_config).
  explicit Dwt2dSystem(DesignId design, int max_octaves = 1);

  /// Shares a pre-elaborated core (typically from core::ArtifactCache, so
  /// many workers reuse one netlist) and runs lines on the scalar
  /// zero-delay simulator.
  explicit Dwt2dSystem(std::shared_ptr<const BuiltDatapath> core);

  /// Shares a pre-elaborated core plus its compiled tape and runs lines on
  /// the bit-parallel compiled engine (lane 0).
  Dwt2dSystem(std::shared_ptr<const BuiltDatapath> core,
              std::shared_ptr<const rtl::compiled::Tape> tape);

  /// In-place multi-octave forward transform of an integer-valued plane
  /// (pixels already DC-level-shifted to signed values).  Returns cycle
  /// accounting.  The transformed plane matches the software fixed-point
  /// lifting transform bit for bit.
  Dwt2dRunStats transform(dsp::Image& plane, int octaves);

  /// Selects the compiled engine's execution tier (a no-op on the scalar
  /// interpreter constructors, which have no tiers).  Pass the cache-shared
  /// native block to run the JIT tier without a private emit; with a null
  /// `native` the simulator resolves `tier` itself (DWT_EXEC_TIER override,
  /// kAuto resolution, host-support fallback).  Tier choice never changes
  /// the transform's coefficients or cycle counts.
  void set_exec_tier(
      rtl::compiled::ExecTier tier,
      std::shared_ptr<const rtl::compiled::NativeBlock> native = nullptr);

  [[nodiscard]] const BuiltDatapath& core() const { return *core_; }

 private:
  void transform_line(std::vector<std::int64_t>& line, Dwt2dRunStats& stats);

  std::shared_ptr<const BuiltDatapath> core_;
  std::unique_ptr<rtl::Simulator> sim_;
  std::unique_ptr<rtl::compiled::BatchFaultSession> batch_;
};

}  // namespace dwt::hw
