// Direct-form 9/7 FIR filter-bank 1D-DWT core (paper figure 2), the
// architecture family of the literature baseline [5] (Masud & McCanny,
// 785 LEs @ 85.5 MHz on the same device class).  A 9-deep sample window
// feeds a 9-tap low-pass and a 7-tap high-pass with integer-rounded
// coefficients; outputs are decimated by two outside the core.
#pragma once

#include <cstdint>

#include "rtl/adders.hpp"
#include "rtl/shiftadd_plan.hpp"

namespace dwt::hw {

struct FilterBankConfig {
  rtl::AdderStyle adder_style = rtl::AdderStyle::kCarryChain;
  bool pipelined_operators = false;
  /// Fold the symmetric taps (x[n-k]+x[n+k] pre-adders halve the multiplier
  /// count); figure 2 shows the unfolded 16-multiplier form.
  bool exploit_symmetry = false;
  int input_bits = 8;
  int frac_bits = 8;
  rtl::Recoding recoding = rtl::Recoding::kBinaryWithReuse;
  rtl::SumStructure sum_structure = rtl::SumStructure::kSequential;
};

struct BuiltFilterBank {
  rtl::Netlist netlist;
  rtl::Bus in_sample;
  rtl::Bus out_low;   ///< low-pass value centered on the sample 4 cycles ago
  rtl::Bus out_high;  ///< high-pass value centered on the same position
  int latency = 0;    ///< cycles from a sample entering to its centered output
  int multiplier_blocks = 0;
  FilterBankConfig config;
};

[[nodiscard]] BuiltFilterBank build_filterbank_core(const FilterBankConfig& cfg);

/// Published figures of the baseline architecture [5] for comparison.
struct PaperBaselineRow {
  int area_les = 785;
  double fmax_mhz = 85.5;
};
[[nodiscard]] constexpr PaperBaselineRow paper_baseline() { return {}; }

}  // namespace dwt::hw
