#include "hw/tile_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/backend.hpp"
#include "dsp/dwt2d.hpp"
#include "hw/dwt2d_system.hpp"

namespace dwt::hw {
namespace {

dsp::Image extract_tile(const dsp::Image& plane, const TileRect& t) {
  dsp::Image tile(t.w, t.h);
  for (std::size_t y = 0; y < t.h; ++y) {
    for (std::size_t x = 0; x < t.w; ++x) {
      tile.at(x, y) = plane.at(t.x0 + x, t.y0 + y);
    }
  }
  return tile;
}

void store_tile(dsp::Image& plane, const TileRect& t, const dsp::Image& tile) {
  for (std::size_t y = 0; y < t.h; ++y) {
    for (std::size_t x = 0; x < t.w; ++x) {
      plane.at(t.x0 + x, t.y0 + y) = tile.at(x, y);
    }
  }
}

void validate(const dsp::Image& plane, const TileOptions& options) {
  if (plane.empty()) {
    throw std::invalid_argument("tile_scheduler: empty image");
  }
  if (options.tile_w == 0 || options.tile_h == 0) {
    throw std::invalid_argument("tile_scheduler: zero tile dimensions");
  }
  if (options.octaves < 1) {
    throw std::invalid_argument("tile_scheduler: octaves < 1");
  }
  if (options.backend != nullptr) {
    if (!options.backend->caps().forward_2d) {
      throw std::invalid_argument(
          "tile_scheduler: backend does not support 2-D transforms");
    }
    if (options.backend->caps().gate_level &&
        options.method != dsp::Method::kLiftingFixed) {
      throw std::invalid_argument(
          "tile_scheduler: hardware backend implements kLiftingFixed only");
    }
  }
}

core::BackendRequest backend_request(const TileOptions& options) {
  core::BackendRequest req;
  req.design = options.design;
  req.adder = options.adder;
  req.max_octaves = options.octaves;
  req.frac_bits = options.frac_bits;
  req.opt_level = options.opt_level;
  req.exec_tier = options.exec_tier;
  return req;
}

/// Shards the tiles across a pool via an atomic work counter (the PR-2
/// fault-campaign pattern).  Each worker touches only its claimed tiles'
/// pixel rectangles, which are disjoint, so no output synchronisation is
/// needed and the result is scheduling-independent.  `make_state` runs once
/// per worker (e.g. to open its private backend session); `process`
/// transforms one tile with that state.
template <typename MakeState, typename Process>
TileStats run_pool(const std::vector<TileRect>& tiles, unsigned threads,
                   MakeState make_state, Process process) {
  TileStats stats;
  stats.tiles = tiles.size();
  unsigned n_threads =
      threads != 0 ? threads
                   : std::max(1u, std::thread::hardware_concurrency());
  n_threads = static_cast<unsigned>(
      std::min<std::size_t>(n_threads, tiles.size()));
  stats.threads_used = std::max(1u, n_threads);

  std::atomic<std::size_t> next_tile{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // Per-tile cycle accounting lands in a slot per tile and is summed in
  // tile order afterwards, keeping the totals scheduling-independent too.
  std::vector<Dwt2dRunStats> per_tile(tiles.size());

  const auto worker = [&]() {
    try {
      auto state = make_state();
      for (std::size_t t = next_tile.fetch_add(1); t < tiles.size();
           t = next_tile.fetch_add(1)) {
        per_tile[t] = process(state, tiles[t]);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  for (const Dwt2dRunStats& s : per_tile) {
    stats.total_cycles += s.total_cycles;
    stats.line_passes += s.line_passes;
  }
  return stats;
}

struct NoState {};

}  // namespace

std::vector<TileRect> tile_grid(std::size_t w, std::size_t h,
                                std::size_t tile_w, std::size_t tile_h) {
  if (w == 0 || h == 0 || tile_w == 0 || tile_h == 0) {
    throw std::invalid_argument("tile_grid: zero dimensions");
  }
  std::vector<TileRect> tiles;
  for (std::size_t y0 = 0; y0 < h; y0 += tile_h) {
    for (std::size_t x0 = 0; x0 < w; x0 += tile_w) {
      tiles.push_back(TileRect{x0, y0, std::min(tile_w, w - x0),
                               std::min(tile_h, h - y0)});
    }
  }
  return tiles;
}

TileStats tile_forward(dsp::Image& plane, const TileOptions& options) {
  validate(plane, options);
  const std::vector<TileRect> tiles =
      tile_grid(plane.width(), plane.height(), options.tile_w, options.tile_h);

  if (options.backend != nullptr) {
    const core::BackendRequest req = backend_request(options);
    return run_pool(
        tiles, options.threads,
        [&]() { return options.backend->make_2d_session(req); },
        [&](std::unique_ptr<core::Backend2dSession>& session,
            const TileRect& t) {
          dsp::Image tile = extract_tile(plane, t);
          const Dwt2dRunStats run = session->forward(tile, options.octaves);
          store_tile(plane, t, tile);
          return run;
        });
  }
  return run_pool(
      tiles, options.threads, []() { return NoState{}; },
      [&](NoState&, const TileRect& t) {
        dsp::Image tile = extract_tile(plane, t);
        dsp::dwt2d_forward(options.method, tile, options.octaves,
                           options.frac_bits);
        store_tile(plane, t, tile);
        return Dwt2dRunStats{};
      });
}

TileStats tile_inverse(dsp::Image& plane, const TileOptions& options) {
  validate(plane, options);
  if (options.backend != nullptr && !options.backend->caps().inverse_2d) {
    throw std::invalid_argument(
        "tile_inverse: no hardware inverse system; use the software backend "
        "(the hardware forward is bit-identical to kLiftingFixed)");
  }
  const std::vector<TileRect> tiles =
      tile_grid(plane.width(), plane.height(), options.tile_w, options.tile_h);
  if (options.backend != nullptr) {
    const core::BackendRequest req = backend_request(options);
    return run_pool(
        tiles, options.threads,
        [&]() { return options.backend->make_2d_session(req); },
        [&](std::unique_ptr<core::Backend2dSession>& session,
            const TileRect& t) {
          dsp::Image tile = extract_tile(plane, t);
          session->inverse(tile, options.octaves);
          store_tile(plane, t, tile);
          return Dwt2dRunStats{};
        });
  }
  return run_pool(
      tiles, options.threads, []() { return NoState{}; },
      [&](NoState&, const TileRect& t) {
        dsp::Image tile = extract_tile(plane, t);
        dsp::dwt2d_inverse(options.method, tile, options.octaves,
                           options.frac_bits);
        store_tile(plane, t, tile);
        return Dwt2dRunStats{};
      });
}

}  // namespace dwt::hw
