#include "hw/dwt2d_system.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace dwt::hw {
namespace {

std::vector<std::int64_t> to_int_line(const std::vector<double>& v) {
  std::vector<std::int64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<std::int64_t>(std::llround(v[i]));
  }
  return out;
}

std::vector<double> to_double_line(const std::vector<std::int64_t>& line) {
  return {line.begin(), line.end()};
}

}  // namespace

Dwt2dSystem::Dwt2dSystem(DesignId design, int max_octaves)
    : core_(std::make_shared<const BuiltDatapath>(
          build_lifting_datapath(design_config(design, max_octaves)))),
      sim_(std::make_unique<rtl::Simulator>(core_->netlist)) {}

Dwt2dSystem::Dwt2dSystem(std::shared_ptr<const BuiltDatapath> core)
    : core_(std::move(core)),
      sim_(std::make_unique<rtl::Simulator>(core_->netlist)) {}

Dwt2dSystem::Dwt2dSystem(std::shared_ptr<const BuiltDatapath> core,
                         std::shared_ptr<const rtl::compiled::Tape> tape)
    : core_(std::move(core)),
      batch_(std::make_unique<rtl::compiled::BatchFaultSession>(
          std::move(tape))) {}

void Dwt2dSystem::set_exec_tier(
    rtl::compiled::ExecTier tier,
    std::shared_ptr<const rtl::compiled::NativeBlock> native) {
  if (!batch_) return;
  if (native) {
    batch_->sim().set_native(std::move(native));
  } else {
    batch_->sim().set_exec_tier(tier);
  }
}

void Dwt2dSystem::transform_line(std::vector<std::int64_t>& line,
                                 Dwt2dRunStats& stats) {
  // Either engine may carry stale pipeline state from the previous line;
  // the guard pairs run_stream* feeds flush it before the payload window.
  StreamResult r = batch_
                       ? std::move(run_stream_batch(*core_, *batch_, line,
                                                    /*lanes=*/1)
                                       .front())
                       : run_stream(*core_, *sim_, line);
  stats.total_cycles += r.cycles;
  ++stats.line_passes;
  line.clear();
  line.insert(line.end(), r.low.begin(), r.low.end());
  line.insert(line.end(), r.high.begin(), r.high.end());
}

Dwt2dRunStats Dwt2dSystem::transform(dsp::Image& plane, int octaves) {
  if (octaves < 1) throw std::invalid_argument("Dwt2dSystem: octaves < 1");
  Dwt2dRunStats stats;
  stats.octaves = octaves;
  std::size_t w = plane.width();
  std::size_t h = plane.height();
  for (int o = 0; o < octaves; ++o) {
    if (w == 0 || h == 0) {
      throw std::invalid_argument("Dwt2dSystem: empty octave dimensions");
    }
    // The memory controller addresses one row (then one column) at a time
    // into the 1D core and writes the packed sub-bands back; transform_line
    // already leaves each line packed as ceil(n/2) low then floor(n/2) high.
    for (std::size_t y = 0; y < h; ++y) {
      std::vector<std::int64_t> line = to_int_line(plane.row(y, w));
      transform_line(line, stats);
      plane.set_row(y, to_double_line(line));
    }
    for (std::size_t x = 0; x < w; ++x) {
      std::vector<std::int64_t> line = to_int_line(plane.col(x, h));
      transform_line(line, stats);
      plane.set_col(x, to_double_line(line));
    }
    w = (w + 1) / 2;
    h = (h + 1) / 2;
  }
  return stats;
}

}  // namespace dwt::hw
