// Line-based 2-D DWT (after the paper's reference [6], Dillen et al.):
// instead of the full-frame memory of the figure-4 system, rows stream
// through a row transform and a bank of per-column streaming lifting
// engines, so only a handful of lines is ever buffered.  Functionally
// identical to the batch transform; the win is memory:
//   figure-4 system:  W x H coefficient words of frame memory
//   line-based:       ~7 x W words (two current rows + column state)
#pragma once

#include <cstdint>

#include "dsp/image.hpp"

namespace dwt::hw {

struct LineBasedStats {
  std::uint64_t rows_processed = 0;    ///< row-transform passes
  std::size_t line_buffer_words = 0;   ///< peak on-chip buffer requirement
  std::size_t frame_memory_words = 0;  ///< what the figure-4 system needs
};

/// One-octave forward transform of an integer-valued plane (pixels already
/// DC-level-shifted), producing the packed LL|HL / LH|HH layout in place.
/// Any non-zero dimensions are accepted: odd widths/heights split as
/// ceil(n/2) low / floor(n/2) high rows and columns, and a single-row plane
/// takes the JPEG2000 single-sample vertical pass-through.  Bit-identical to
/// dwt2d_forward_octave(Method::kLiftingFixed, ...).
LineBasedStats line_based_forward_octave(dsp::Image& plane);

}  // namespace dwt::hw
