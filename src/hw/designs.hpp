// The five DWT architectures evaluated in paper Table 3.
#pragma once

#include <string>
#include <vector>

#include "hw/lifting_datapath.hpp"
#include "rtl/harden.hpp"

namespace dwt::hw {

enum class DesignId {
  kDesign1,  ///< behavioral, generic integer multipliers, 8 stages
  kDesign2,  ///< behavioral, shifted integer adders, 8 stages
  kDesign3,  ///< behavioral, pipelined shifted integer adders, 21 stages
  kDesign4,  ///< structural, shifted integer adders, 8 stages
  kDesign5,  ///< structural, pipelined shifted integer adders, 21 stages
};

struct DesignSpec {
  DesignId id;
  std::string name;         ///< "Design 1" ... "Design 5"
  std::string description;  ///< paper section 3.x wording
  DatapathConfig config;
};

/// All five specs in paper order.
[[nodiscard]] std::vector<DesignSpec> all_designs();

[[nodiscard]] DesignSpec design_spec(DesignId id);

/// Elaborates the design's netlist.
[[nodiscard]] BuiltDatapath build_design(DesignId id);

/// Applies a hardening transform to an elaborated datapath and rebinds the
/// streaming ports.  TMR replaces registered output ports with combinational
/// voter nets; the zero-delay harness observes those one settle later than a
/// flip-flop output, so the reported stream latency grows by one cycle.
[[nodiscard]] BuiltDatapath harden_datapath(const BuiltDatapath& dp,
                                            rtl::HardeningStyle style,
                                            rtl::HardeningReport* report);

/// Paper Table 3 published values, for side-by-side reporting.
struct PaperTable3Row {
  std::string name;
  int area_les;
  double fmax_mhz;
  double power_mw_15mhz;
  int pipeline_stages;
};
[[nodiscard]] std::vector<PaperTable3Row> paper_table3();

}  // namespace dwt::hw
