// The five DWT architectures evaluated in paper Table 3.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hw/lifting_datapath.hpp"
#include "rtl/harden.hpp"

namespace dwt::hw {

enum class DesignId {
  kDesign1,  ///< behavioral, generic integer multipliers, 8 stages
  kDesign2,  ///< behavioral, shifted integer adders, 8 stages
  kDesign3,  ///< behavioral, pipelined shifted integer adders, 21 stages
  kDesign4,  ///< structural, shifted integer adders, 8 stages
  kDesign5,  ///< structural, pipelined shifted integer adders, 21 stages
};

inline constexpr int kDesignCount = 5;

struct DesignSpec {
  DesignId id;
  std::string name;         ///< "Design 1" ... "Design 5"
  std::string description;  ///< paper section 3.x wording
  DatapathConfig config;
};

/// All five specs in paper order.
[[nodiscard]] std::vector<DesignSpec> all_designs();

[[nodiscard]] DesignSpec design_spec(DesignId id);

/// The adder-variant extension of the design space: every adder-sensitive
/// paper design (2..5 -- Design 1's area is dominated by its generic
/// multipliers) crossed with every parallel-prefix architecture.  Names
/// follow design_point_name(), e.g. "Design 3 (kogge-stone)".
[[nodiscard]] std::vector<DesignSpec> adder_variant_designs();

/// Display name of a (design, adder-override) point: the paper name alone
/// when no override is set, "Design N (arch)" otherwise.
[[nodiscard]] std::string design_point_name(
    DesignId id, std::optional<rtl::AdderArch> adder);

// Design-name parsing/printing -- the one string <-> DesignId seam shared by
// the CLIs, the benches and the registry (it used to be re-implemented ad
// hoc at every call site).

/// 1-based paper index ("Design 3" -> 3).
[[nodiscard]] int design_index(DesignId id);

/// Paper Table 3 display name ("Design 1" ... "Design 5").
[[nodiscard]] std::string design_name(DesignId id);

/// Parses any of the spellings the tools accept: "3", "design3", "design-3",
/// "design 3", "Design 3" (case-insensitive).  Returns nullopt for anything
/// else, including out-of-range indices.
[[nodiscard]] std::optional<DesignId> parse_design(std::string_view text);

/// Core configuration for a design driving an `max_octaves`-deep 2-D
/// recursion: beyond one octave the LL coefficients outgrow the paper's
/// signed 8-bit input range (they gain roughly 1.2 bits per octave), so the
/// controller provisions a wider core sized by interval analysis instead of
/// the paper's measured 8-bit-input ranges.  `adder` swaps the design's
/// adder architecture (the (design x adder) sweep axis); nullopt keeps the
/// paper's realization.
[[nodiscard]] DatapathConfig design_config(
    DesignId id, int max_octaves = 1,
    std::optional<rtl::AdderArch> adder = std::nullopt);

/// Elaborates the design's netlist.
[[nodiscard]] BuiltDatapath build_design(DesignId id);

/// Applies a hardening transform to an elaborated datapath and rebinds the
/// streaming ports.  TMR replaces registered output ports with combinational
/// voter nets; the zero-delay harness observes those one settle later than a
/// flip-flop output, so the reported stream latency grows by one cycle.
[[nodiscard]] BuiltDatapath harden_datapath(const BuiltDatapath& dp,
                                            rtl::HardeningStyle style,
                                            rtl::HardeningReport* report);

/// Paper Table 3 published values, for side-by-side reporting.
struct PaperTable3Row {
  std::string name;
  int area_les;
  double fmax_mhz;
  double power_mw_15mhz;
  int pipeline_stages;
};
[[nodiscard]] std::vector<PaperTable3Row> paper_table3();

}  // namespace dwt::hw
