#include "hw/bitwidth_analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/dwt97_lifting_fixed.hpp"

namespace dwt::hw {
namespace {

using common::Interval;

Interval mul_truncate(const Interval& x, const common::Fixed& k) {
  return common::asr(x * k.raw(), k.frac_bits());
}

Interval observed_range(std::span<const std::int64_t> v) {
  if (v.empty()) throw std::invalid_argument("observed_range: empty");
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return {*lo, *hi};
}

}  // namespace

std::vector<StageRange> interval_stage_ranges(
    int input_bits, const dsp::LiftingFixedCoeffs& c) {
  const Interval in = Interval::signed_bits(input_bits);
  const Interval d1 = in + mul_truncate(in + in, c.alpha);
  const Interval s1 = in + mul_truncate(d1 + d1, c.beta);
  const Interval d2 = d1 + mul_truncate(s1 + s1, c.gamma);
  const Interval s2 = s1 + mul_truncate(d2 + d2, c.delta);
  const Interval low = mul_truncate(s2, c.inv_k);
  const Interval high = mul_truncate(d2, c.minus_k);
  auto entry = [](std::string name, Interval r) {
    return StageRange{std::move(name), r, r.min_signed_bits()};
  };
  return {
      entry("input", in),
      entry("d1_after_alpha", d1),
      entry("s1_after_beta", s1),
      entry("d2_after_gamma", d2),
      entry("s2_after_delta", s2),
      entry("low_output", low),
      entry("high_output", high),
  };
}

std::vector<StageRange> observed_stage_ranges(
    std::span<const std::int64_t> samples, const dsp::LiftingFixedCoeffs& c) {
  const dsp::LiftingTrace t = dsp::lifting97_forward_fixed_trace(samples, c);
  auto entry = [](std::string name, std::span<const std::int64_t> v) {
    const Interval r = observed_range(v);
    return StageRange{std::move(name), r, r.min_signed_bits()};
  };
  std::vector<std::int64_t> inputs(samples.begin(), samples.end());
  return {
      entry("input", inputs),
      entry("d1_after_alpha", t.d1),
      entry("s1_after_beta", t.s1),
      entry("d2_after_gamma", t.d2),
      entry("s2_after_delta", t.s2),
      entry("low_output", t.low),
      entry("high_output", t.high),
  };
}

std::vector<StageRangeComparison> compare_stage_ranges(
    std::span<const std::int64_t> samples) {
  const auto c = dsp::LiftingFixedCoeffs::rounded(8);
  const auto paper = paper_section31_ranges();
  const auto ivl = interval_stage_ranges(8, c);
  const auto obs = observed_stage_ranges(samples, c);
  if (paper.size() != ivl.size() || ivl.size() != obs.size()) {
    throw std::logic_error("compare_stage_ranges: stage list mismatch");
  }
  std::vector<StageRangeComparison> out;
  out.reserve(paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    if (paper[i].name != ivl[i].name || ivl[i].name != obs[i].name) {
      throw std::logic_error("compare_stage_ranges: stage order mismatch");
    }
    out.push_back({paper[i].name, paper[i].range, ivl[i].range, obs[i].range,
                   paper[i].bits, ivl[i].bits, obs[i].bits});
  }
  return out;
}

}  // namespace dwt::hw
