// Gate-level *inverse* 9/7 lifting datapath (IDWT) -- the reconstruction
// side of the transform, as implemented by the paper's reference [4]
// ("An Efficient Hardware Implementation of DWT and IDWT").  Undoes the
// output scaling and runs the four lifting steps in reverse with the same
// integer truncation, so a forward core followed by this core reproduces
// the software fixed-point round trip exactly.
//
// Streaming semantics: one (low, high) coefficient pair in per cycle, one
// reconstructed (even, odd) sample pair out after `latency` cycles.
#pragma once

#include "hw/lifting_datapath.hpp"

namespace dwt::hw {

struct InverseDatapathConfig {
  rtl::AdderStyle adder_style = rtl::AdderStyle::kCarryChain;
  bool pipelined_operators = false;
  int frac_bits = 8;
  /// Widths of the incoming sub-band words (paper section 3.1: low 10 bits,
  /// high 9 bits).
  int low_bits = 10;
  int high_bits = 9;
  rtl::Recoding recoding = rtl::Recoding::kBinaryWithReuse;
};

struct BuiltInverseDatapath {
  rtl::Netlist netlist;
  rtl::Bus in_low;
  rtl::Bus in_high;
  rtl::Bus out_even;
  rtl::Bus out_odd;
  int latency = 0;
  InverseDatapathConfig config;
};

[[nodiscard]] BuiltInverseDatapath build_inverse_lifting_datapath(
    const InverseDatapathConfig& cfg);

}  // namespace dwt::hw
