// Register bit-width (value range) analysis of the lifting datapath,
// reproducing paper section 3.1 three ways:
//  1. the paper's published measured ranges;
//  2. static interval-arithmetic bounds (safe worst case);
//  3. ranges actually observed when transforming data (random or image-like),
//     measured on the bit-true software model.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "dsp/lifting_coeffs.hpp"
#include "hw/lifting_datapath.hpp"

namespace dwt::hw {

struct StageRangeComparison {
  std::string name;
  common::Interval paper;     ///< section 3.1 published range
  common::Interval interval;  ///< static interval-analysis bound
  common::Interval observed;  ///< measured on the given workload
  int paper_bits;
  int interval_bits;
  int observed_bits;
};

/// Static worst-case ranges of every stage for `input_bits`-bit signed
/// samples with the given coefficients (pure interval arithmetic).
[[nodiscard]] std::vector<StageRange> interval_stage_ranges(
    int input_bits, const dsp::LiftingFixedCoeffs& c);

/// Observed ranges when running `samples` (even/odd interleaved) through the
/// bit-true fixed-point lifting model.
[[nodiscard]] std::vector<StageRange> observed_stage_ranges(
    std::span<const std::int64_t> samples, const dsp::LiftingFixedCoeffs& c);

/// Full three-way comparison on a workload (paper vs interval vs observed).
[[nodiscard]] std::vector<StageRangeComparison> compare_stage_ranges(
    std::span<const std::int64_t> samples);

}  // namespace dwt::hw
