#include "hw/lifting53_datapath.hpp"

#include <stdexcept>

#include "rtl/adders.hpp"
#include "rtl/registers.hpp"

namespace dwt::hw {
namespace {

using common::Interval;
using rtl::Builder;
using rtl::Pipeliner;
using rtl::Word;

Word as_index(const Word& w, int depth) {
  Word out = w;
  out.depth = depth;
  return out;
}

}  // namespace

BuiltDatapath53 build_lifting53_datapath(const Datapath53Config& cfg) {
  if (cfg.input_bits < 2 || cfg.input_bits > 24) {
    throw std::invalid_argument("build_lifting53_datapath: bad input_bits");
  }
  BuiltDatapath53 out;
  out.config = cfg;
  rtl::Netlist& nl = out.netlist;
  Builder b(nl);
  Pipeliner pipe(b, cfg.pipelined_operators);

  Word in_even = rtl::word_input(nl, "in_even", cfg.input_bits);
  Word in_odd = rtl::word_input(nl, "in_odd", cfg.input_bits);

  Word e1 = pipe.stage(in_even, "r_even");
  Word o1 = pipe.stage(in_odd, "r_odd");
  Word e2 = pipe.stage(e1, "r_even_d");

  // Predict: d[i] = o[i] - ((s[i] + s[i+1]) >> 1).
  Word pre_p = rtl::word_add(pipe, e2, as_index(e1, e2.depth),
                             cfg.adder_style, "p53.pre");
  Word shifted_p = rtl::word_asr(b, pre_p, 1);
  Word d1 = rtl::word_sub(pipe, o1, shifted_p, cfg.adder_style, "p53.sub");
  d1 = cfg.pipelined_operators ? d1 : pipe.stage(d1, "r_d1");

  // Update: s[i] = s[i] + ((d[i-1] + d[i] + 2) >> 2).
  Word d1_prev = pipe.stage(d1, "r_d1_d");
  Word pre_u = rtl::word_add(pipe, d1, as_index(d1_prev, d1.depth),
                             cfg.adder_style, "u53.pre");
  Word two;
  two.bus = b.constant(2, 3);
  two.range = Interval::point(2);
  two.depth = pre_u.depth;
  Word biased = rtl::word_add(pipe, pre_u, two, cfg.adder_style, "u53.bias");
  Word shifted_u = rtl::word_asr(b, biased, 2);
  Word s1 = rtl::word_add(pipe, e2, shifted_u, cfg.adder_style, "u53.add");
  s1 = cfg.pipelined_operators ? s1 : pipe.stage(s1, "r_s1");

  // Outputs (no scaling step in the reversible 5/3).
  Word low = cfg.pipelined_operators ? s1 : pipe.stage(s1, "r_low");
  Word high = cfg.pipelined_operators
                  ? d1
                  : pipe.align_to(d1, low.depth, "high.pass");
  pipe.align(low, high, "out");
  nl.bind_output("low", low.bus);
  nl.bind_output("high", high.bus);
  nl.validate();

  out.in_even = in_even.bus;
  out.in_odd = in_odd.bus;
  out.out_low = low.bus;
  out.out_high = high.bus;
  out.latency = low.depth;
  return out;
}

}  // namespace dwt::hw
