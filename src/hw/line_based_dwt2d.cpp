#include "hw/line_based_dwt2d.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/dwt1d.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/streaming_lifting.hpp"

namespace dwt::hw {
namespace {

/// Guard row pairs fed before/after the payload (vertical mirror extension
/// plus pipeline flush), matching the 1-D streaming harness.
constexpr std::ptrdiff_t kGuardRowPairs = 4;

std::vector<std::int64_t> row_transform(const dsp::Image& img,
                                        std::size_t row) {
  const auto packed = dsp::dwt1d_forward(dsp::Method::kLiftingFixed,
                                         img.row(row, img.width()));
  std::vector<std::int64_t> out;
  out.reserve(img.width());
  for (const double v : packed.low) {
    out.push_back(static_cast<std::int64_t>(std::llround(v)));
  }
  for (const double v : packed.high) {
    out.push_back(static_cast<std::int64_t>(std::llround(v)));
  }
  return out;
}

}  // namespace

LineBasedStats line_based_forward_octave(dsp::Image& plane) {
  const std::size_t w = plane.width();
  const std::size_t h = plane.height();
  if (w == 0 || h == 0) {
    throw std::invalid_argument(
        "line_based_forward_octave: non-zero dimensions required");
  }
  LineBasedStats stats;
  stats.frame_memory_words = w * h;

  // In a real line-based system the source rows arrive as a stream (e.g.
  // from a sensor); model that by reading from a pristine copy while the
  // transformed rows are written out.
  const dsp::Image source = plane;

  if (h == 1) {
    // Single-row plane: the vertical pass is the JPEG2000 single-sample
    // pass-through, so only the row transform runs.
    std::vector<double> row(w);
    const std::vector<std::int64_t> packed = row_transform(source, 0);
    for (std::size_t c = 0; c < w; ++c) row[c] = static_cast<double>(packed[c]);
    plane.set_row(0, row);
    stats.rows_processed = 1;
    stats.line_buffer_words = 2 * w + 5 * w;
    return stats;
  }

  // One streaming lifting engine per column.  h rows produce ceil(h/2) low
  // rows and floor(h/2) high rows; for odd h the last fed pair's high row is
  // the extension's phantom and is not written back.
  std::vector<dsp::StreamingLifting97Fixed> columns(w);
  const std::ptrdiff_t low_rows = static_cast<std::ptrdiff_t>((h + 1) / 2);
  const std::ptrdiff_t high_rows = static_cast<std::ptrdiff_t>(h / 2);

  for (std::ptrdiff_t t = -kGuardRowPairs; t < low_rows + kGuardRowPairs;
       ++t) {
    // Vertical whole-sample symmetric extension, as the paper's memory
    // controller provides.
    const std::size_t even_row = dsp::mirror_index(2 * t, h);
    const std::size_t odd_row = dsp::mirror_index(2 * t + 1, h);
    const std::vector<std::int64_t> even = row_transform(source, even_row);
    const std::vector<std::int64_t> odd = row_transform(source, odd_row);
    stats.rows_processed += 2;

    const std::ptrdiff_t emit =
        t - dsp::StreamingLifting97Fixed::kDelayPairs;
    for (std::size_t c = 0; c < w; ++c) {
      const auto out = columns[c].push(even[c], odd[c]);
      if (out.has_value() && emit >= 0 && emit < low_rows) {
        // Low rows fill the top ceil(h/2) rows, high rows the rest -- but
        // only write once all columns of the row are known (after the loop
        // the whole row has been produced for this emit index).
        plane.at(c, static_cast<std::size_t>(emit)) =
            static_cast<double>(out->first);
        if (emit < high_rows) {
          plane.at(c, static_cast<std::size_t>(emit + low_rows)) =
              static_cast<double>(out->second);
        }
      }
    }
  }

  // Peak on-chip storage: the two current transformed rows plus the five
  // state words per column engine.
  stats.line_buffer_words = 2 * w + 5 * w;
  return stats;
}

}  // namespace dwt::hw
