// Elaboration of the paper's lifting 1D-DWT datapath (figure 5) as a
// gate-level netlist, parameterized along the three axes the paper explores:
//   * multiplier style: generic integer array multipliers (design 1) vs
//     shift-add constant multipliers (designs 2-5);
//   * adder style: behavioral carry-chain adders (designs 1-3) vs structural
//     full-adder gate netlists (designs 4-5);
//   * operator pipelining: one sum per pipeline stage (designs 3, 5) vs
//     combinational operators inside the 8-stage skeleton (designs 1, 2, 4).
//
// Streaming semantics: each cycle consumes one even/odd sample pair
// (x[2n], x[2n+1]) and, `latency` cycles later, produces one low/high
// coefficient pair.  Boundary mirroring is the memory controller's job
// (paper figure 4), so the core itself is boundary-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "dsp/lifting_coeffs.hpp"
#include "rtl/adders.hpp"
#include "rtl/shiftadd_plan.hpp"

namespace dwt::hw {

enum class MultiplierStyle {
  kGenericArray,  ///< behavioral integer megacore multipliers (design 1)
  kShiftAdd,      ///< shifted-adder constant multipliers (designs 2-5)
};

struct DatapathConfig {
  MultiplierStyle multiplier = MultiplierStyle::kShiftAdd;
  rtl::AdderStyle adder_style = rtl::AdderStyle::kCarryChain;
  bool pipelined_operators = false;
  /// Register every Nth sum when pipelining (1 = paper's designs 3/5; the
  /// pipeline-depth ablation sweeps this).
  int pipeline_granularity = 1;
  int input_bits = 8;  ///< signed sample width (paper: signed 8-bit)
  int frac_bits = 8;   ///< coefficient fractional bits (paper: 8)
  rtl::Recoding recoding = rtl::Recoding::kBinaryWithReuse;
  /// Partial-product accumulation order (paper figure 7: sequential).
  rtl::SumStructure sum_structure = rtl::SumStructure::kSequential;
  /// Size internal registers to the measured ranges of paper section 3.1
  /// (true) or to conservative interval-analysis bounds (false; ablation).
  bool paper_widths = true;
};

/// Value range of each named pipeline register group (paper section 3.1).
struct StageRange {
  std::string name;
  common::Interval range;
  int bits;
};

struct DatapathInfo {
  int latency = 0;  ///< cycles from sample pair in to coefficient pair out
  std::vector<StageRange> stage_ranges;
};

struct BuiltDatapath {
  rtl::Netlist netlist;
  rtl::Bus in_even;
  rtl::Bus in_odd;
  rtl::Bus out_low;
  rtl::Bus out_high;
  DatapathInfo info;
  DatapathConfig config;
};

/// Elaborates the datapath.  Output ports are bound as "low" and "high".
[[nodiscard]] BuiltDatapath build_lifting_datapath(const DatapathConfig& cfg);

/// The measured register ranges published in paper section 3.1, used for
/// register sizing when DatapathConfig::paper_widths is set.
[[nodiscard]] std::vector<StageRange> paper_section31_ranges();

}  // namespace dwt::hw
