// Bit-granular serialization for the entropy coder.  MSB-first within each
// byte, append-only writer and sequential reader.
#pragma once

#include <cstdint>
#include <vector>

namespace dwt::codec {

class BitWriter {
 public:
  /// Appends the `count` low bits of `value`, most significant first.
  void write_bits(std::uint64_t value, int count);
  void write_bit(bool bit);

  /// Pads with zero bits to a byte boundary and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  int filled_ = 0;  // bits in current_
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  [[nodiscard]] bool read_bit();
  [[nodiscard]] std::uint64_t read_bits(int count);

  /// Bits consumed so far.
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= bytes_.size() * 8; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace dwt::codec
