// A compact wavelet image codec on top of the library: 9/7 (lossy, with
// deadzone quantization) or 5/3 (lossless) transform, per-subband order-k
// Exp-Golomb entropy coding.  This is the downstream pipeline the paper's
// introduction motivates ("the quantized coefficients are entropy-coded for
// achieving high compression ratio") -- deliberately simple, but a real
// encoder/decoder pair with measurable rates.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/image.hpp"

namespace dwt::codec {

enum class CodecMode : std::uint8_t {
  kLossy97 = 0,    ///< 9/7 lifting + deadzone quantizer
  kLossless53 = 1, ///< reversible 5/3, bit-exact reconstruction
};

struct EncodeOptions {
  CodecMode mode = CodecMode::kLossy97;
  int octaves = 3;
  double base_step = 4.0;  ///< quantizer step for the lossy mode
};

struct EncodedImage {
  std::vector<std::uint8_t> bytes;
  [[nodiscard]] double bits_per_pixel(std::size_t width,
                                      std::size_t height) const {
    return static_cast<double>(bytes.size()) * 8.0 /
           static_cast<double>(width * height);
  }
};

/// Encodes an 8-bit grayscale image (values 0..255).
[[nodiscard]] EncodedImage encode_image(const dsp::Image& image,
                                        const EncodeOptions& options = {});

/// Decodes a bitstream produced by encode_image.
[[nodiscard]] dsp::Image decode_image(const std::vector<std::uint8_t>& bytes);

}  // namespace dwt::codec
