#include "codec/bitstream.hpp"

#include <stdexcept>

namespace dwt::codec {

void BitWriter::write_bit(bool bit) {
  current_ = static_cast<std::uint8_t>((current_ << 1) | (bit ? 1 : 0));
  if (++filled_ == 8) {
    bytes_.push_back(current_);
    current_ = 0;
    filled_ = 0;
  }
  ++bit_count_;
}

void BitWriter::write_bits(std::uint64_t value, int count) {
  if (count < 0 || count > 64) {
    throw std::invalid_argument("BitWriter::write_bits: bad count");
  }
  for (int i = count - 1; i >= 0; --i) {
    write_bit(((value >> i) & 1) != 0);
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  while (filled_ != 0) write_bit(false);
  return std::move(bytes_);
}

bool BitReader::read_bit() {
  if (exhausted()) throw std::out_of_range("BitReader: past end of stream");
  const std::size_t byte = pos_ / 8;
  const int bit = 7 - static_cast<int>(pos_ % 8);
  ++pos_;
  return ((bytes_[byte] >> bit) & 1) != 0;
}

std::uint64_t BitReader::read_bits(int count) {
  if (count < 0 || count > 64) {
    throw std::invalid_argument("BitReader::read_bits: bad count");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < count; ++i) {
    v = (v << 1) | (read_bit() ? 1 : 0);
  }
  return v;
}

}  // namespace dwt::codec
