#include "codec/golomb.hpp"

#include <bit>
#include <stdexcept>

namespace dwt::codec {

void write_exp_golomb(BitWriter& w, std::uint64_t value, int k) {
  if (k < 0 || k > 32) throw std::invalid_argument("exp_golomb: bad order");
  const std::uint64_t shifted = (value >> k) + 1;
  const int bits = 64 - std::countl_zero(shifted);
  // unary prefix: (bits-1) zeros, then the value itself (leading 1 implicit
  // in its width), then k literal low bits.
  for (int i = 0; i < bits - 1; ++i) w.write_bit(false);
  w.write_bits(shifted, bits);
  w.write_bits(value & ((std::uint64_t{1} << k) - 1), k);
}

std::uint64_t read_exp_golomb(BitReader& r, int k) {
  if (k < 0 || k > 32) throw std::invalid_argument("exp_golomb: bad order");
  int zeros = 0;
  while (!r.read_bit()) {
    if (++zeros > 63) throw std::out_of_range("exp_golomb: malformed prefix");
  }
  std::uint64_t shifted = 1;
  for (int i = 0; i < zeros; ++i) {
    shifted = (shifted << 1) | (r.read_bit() ? 1 : 0);
  }
  const std::uint64_t low = k > 0 ? r.read_bits(k) : 0;
  return ((shifted - 1) << k) | low;
}

void write_signed_exp_golomb(BitWriter& w, std::int64_t value, int k) {
  write_exp_golomb(w, zigzag_encode(value), k);
}

std::int64_t read_signed_exp_golomb(BitReader& r, int k) {
  return zigzag_decode(read_exp_golomb(r, k));
}

int exp_golomb_length(std::uint64_t value, int k) {
  const std::uint64_t shifted = (value >> k) + 1;
  const int bits = 64 - std::countl_zero(shifted);
  return (bits - 1) + bits + k;
}

}  // namespace dwt::codec
