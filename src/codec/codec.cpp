#include "codec/codec.hpp"

#include <cmath>
#include <stdexcept>

#include "codec/golomb.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/quantizer.hpp"

namespace dwt::codec {
namespace {

constexpr std::uint16_t kMagic = 0xD97C;

/// Band coding order: coarsest LL first, then detail bands from coarse to
/// fine (the resolution-progressive order).
struct BandRef {
  int octave;
  dsp::Band band;
};

std::vector<BandRef> band_order(int octaves) {
  std::vector<BandRef> order;
  order.push_back({octaves, dsp::Band::kLL});
  for (int o = octaves; o >= 1; --o) {
    order.push_back({o, dsp::Band::kHL});
    order.push_back({o, dsp::Band::kLH});
    order.push_back({o, dsp::Band::kHH});
  }
  return order;
}

/// Quantizer step per band, mirroring dsp::quantize_plane's allocation.
double band_step(const BandRef& ref, int octaves, double base_step) {
  if (ref.band == dsp::Band::kLL) return base_step * 0.5;
  return base_step * std::pow(2.0, octaves - ref.octave);
}

int choose_order(const std::vector<std::int64_t>& values) {
  if (values.empty()) return 0;
  double mean = 0.0;
  for (const std::int64_t v : values) {
    mean += static_cast<double>(zigzag_encode(v));
  }
  mean /= static_cast<double>(values.size());
  int k = 0;
  while (k < 20 && (1 << (k + 1)) < mean + 1.0) ++k;
  return k;
}

std::vector<std::int64_t> collect_band(const dsp::Image& plane,
                                       const dsp::SubbandRect& r) {
  std::vector<std::int64_t> out;
  out.reserve(r.w * r.h);
  for (std::size_t y = r.y0; y < r.y0 + r.h; ++y) {
    for (std::size_t x = r.x0; x < r.x0 + r.w; ++x) {
      out.push_back(static_cast<std::int64_t>(std::llround(plane.at(x, y))));
    }
  }
  return out;
}

void scatter_band(dsp::Image& plane, const dsp::SubbandRect& r,
                  const std::vector<double>& values) {
  std::size_t i = 0;
  for (std::size_t y = r.y0; y < r.y0 + r.h; ++y) {
    for (std::size_t x = r.x0; x < r.x0 + r.w; ++x) {
      plane.at(x, y) = values[i++];
    }
  }
}

}  // namespace

EncodedImage encode_image(const dsp::Image& image, const EncodeOptions& opt) {
  if (image.empty() || image.width() > 0xFFFF || image.height() > 0xFFFF) {
    throw std::invalid_argument("encode_image: bad image dimensions");
  }
  if (opt.octaves < 1 || opt.octaves > 8) {
    throw std::invalid_argument("encode_image: bad octave count");
  }
  if (opt.mode == CodecMode::kLossy97 && opt.base_step <= 0) {
    throw std::invalid_argument("encode_image: bad quantizer step");
  }

  dsp::Image plane = image;
  dsp::level_shift_forward(plane);
  if (opt.mode == CodecMode::kLossless53) {
    dsp::round_coefficients(plane);  // integer pixels for the integer wavelet
    dsp::dwt2d_forward(dsp::Method::kReversible53, plane, opt.octaves);
  } else {
    dsp::dwt2d_forward(dsp::Method::kLiftingFloat, plane, opt.octaves);
  }

  BitWriter w;
  w.write_bits(kMagic, 16);
  w.write_bits(static_cast<std::uint64_t>(opt.mode), 8);
  w.write_bits(image.width(), 16);
  w.write_bits(image.height(), 16);
  w.write_bits(static_cast<std::uint64_t>(opt.octaves), 8);
  const auto step_q = static_cast<std::uint64_t>(
      std::llround(opt.base_step * 16.0));
  w.write_bits(step_q, 16);

  for (const BandRef& ref : band_order(opt.octaves)) {
    const dsp::SubbandRect r =
        dsp::subband_rect(image.width(), image.height(), ref.octave, ref.band);
    std::vector<std::int64_t> values;
    if (opt.mode == CodecMode::kLossy97) {
      const dsp::DeadzoneQuantizer q{band_step(ref, opt.octaves,
                                               opt.base_step)};
      values.reserve(r.w * r.h);
      for (std::size_t y = r.y0; y < r.y0 + r.h; ++y) {
        for (std::size_t x = r.x0; x < r.x0 + r.w; ++x) {
          values.push_back(q.quantize(plane.at(x, y)));
        }
      }
    } else {
      values = collect_band(plane, r);
    }
    const int k = choose_order(values);
    w.write_bits(static_cast<std::uint64_t>(k), 5);
    for (const std::int64_t v : values) {
      write_signed_exp_golomb(w, v, k);
    }
  }
  return EncodedImage{w.finish()};
}

dsp::Image decode_image(const std::vector<std::uint8_t>& bytes) {
  BitReader r(bytes);
  if (r.read_bits(16) != kMagic) {
    throw std::invalid_argument("decode_image: bad magic");
  }
  const auto mode = static_cast<CodecMode>(r.read_bits(8));
  const auto width = static_cast<std::size_t>(r.read_bits(16));
  const auto height = static_cast<std::size_t>(r.read_bits(16));
  const auto octaves = static_cast<int>(r.read_bits(8));
  const double base_step = static_cast<double>(r.read_bits(16)) / 16.0;
  if (width == 0 || height == 0 || octaves < 1 || octaves > 8) {
    throw std::invalid_argument("decode_image: corrupt header");
  }

  dsp::Image plane(width, height);
  for (const BandRef& ref : band_order(octaves)) {
    const dsp::SubbandRect rect =
        dsp::subband_rect(width, height, ref.octave, ref.band);
    const int k = static_cast<int>(r.read_bits(5));
    std::vector<double> values;
    values.reserve(rect.w * rect.h);
    const dsp::DeadzoneQuantizer q{
        mode == CodecMode::kLossy97 ? band_step(ref, octaves, base_step) : 1.0};
    for (std::size_t i = 0; i < rect.w * rect.h; ++i) {
      const std::int64_t v = read_signed_exp_golomb(r, k);
      values.push_back(mode == CodecMode::kLossy97
                           ? q.dequantize(v)
                           : static_cast<double>(v));
    }
    scatter_band(plane, rect, values);
  }

  if (mode == CodecMode::kLossless53) {
    dsp::dwt2d_inverse(dsp::Method::kReversible53, plane, octaves);
  } else {
    dsp::dwt2d_inverse(dsp::Method::kLiftingFloat, plane, octaves);
  }
  dsp::level_shift_inverse(plane);
  return mode == CodecMode::kLossless53 ? plane : plane.clamped_u8();
}

}  // namespace dwt::codec
