// Exp-Golomb coding of quantizer indices.  Order-k Exp-Golomb fits the
// Laplacian magnitude distribution of wavelet detail coefficients; signed
// values use the standard zig-zag mapping.
#pragma once

#include <cstdint>

#include "codec/bitstream.hpp"

namespace dwt::codec {

/// Maps signed to unsigned: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// Order-k Exp-Golomb: value v is split as (v >> k) encoded unary-prefixed
/// and k literal low bits.
void write_exp_golomb(BitWriter& w, std::uint64_t value, int k);
[[nodiscard]] std::uint64_t read_exp_golomb(BitReader& r, int k);

void write_signed_exp_golomb(BitWriter& w, std::int64_t value, int k);
[[nodiscard]] std::int64_t read_signed_exp_golomb(BitReader& r, int k);

/// Bits order-k Exp-Golomb would use for `value` (for choosing k).
[[nodiscard]] int exp_golomb_length(std::uint64_t value, int k);

}  // namespace dwt::codec
