// Aggregate synthesis report for one architecture: the four quantities of
// paper Table 3 (area in LEs, maximum operating frequency, power at a
// reference frequency, pipeline stages) plus diagnostic detail.
#pragma once

#include <string>

#include "fpga/power.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"

namespace dwt::fpga {

struct SynthesisReport {
  std::string name;
  std::size_t logic_elements = 0;
  double fmax_mhz = 0.0;
  double power_mw = 0.0;          ///< at reference_mhz
  double reference_mhz = 0.0;
  int pipeline_stages = 0;
  // Diagnostics:
  std::size_t chain_les = 0;
  std::size_t lut_les = 0;
  std::size_t ff_count = 0;
  double critical_path_ns = 0.0;
  double mean_activity = 0.0;     ///< transitions per net per cycle
  PowerBreakdown power_breakdown;

  [[nodiscard]] std::string to_string() const;
};

/// Fixed-width table formatting used by the Table-3 style benches.
[[nodiscard]] std::string format_table3_header();
[[nodiscard]] std::string format_table3_row(const SynthesisReport& r);

}  // namespace dwt::fpga
