// Technology mapper onto APEX 20KE logic elements.
//
// Mapping rules (the same mechanisms the paper credits for its area results):
//  * Behavioral carry-chain adder bits (kAddSum/kAddCarry pairs tagged with a
//    chain id) map one bit per LE using the dedicated fast carry chain, so an
//    8-bit adder costs 8 LEs (paper: design 2).
//  * All other combinational logic is covered by 4-input LUT cones with
//    duplication (a structural full adder costs 2 LEs per bit: one sum LUT,
//    one carry LUT -- paper: design 4's 16 LEs per 8-bit adder).
//  * A DFF packs for free into the LE whose LUT drives it when that LUT
//    output has no other load; otherwise the DFF occupies its own LE.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"

namespace dwt::fpga {

struct LogicElement {
  /// Physical leaf nets feeding the LUT (empty for pure-FF or chain LEs).
  std::vector<rtl::NetId> lut_inputs;
  rtl::NetId lut_output = rtl::kNullNet;  ///< net computed by the LUT
  /// LUT truth table over lut_inputs (bit i of the index = value of
  /// lut_inputs[i]); unused for chain LEs, whose function is fixed.
  std::uint16_t truth = 0;
  bool has_ff = false;
  rtl::NetId ff_output = rtl::kNullNet;
  rtl::NetId ff_d = rtl::kNullNet;  ///< net the FF samples
  // Carry-chain use:
  bool in_chain = false;
  rtl::NetId carry_in = rtl::kNullNet;
  rtl::NetId carry_out = rtl::kNullNet;
  std::int32_t chain_id = -1;
  std::int32_t chain_bit = -1;
  /// Placement cluster inherited from the source cells (-1 = unclustered).
  std::int32_t cluster = -1;
};

struct MappedNetlist {
  const rtl::Netlist* source = nullptr;
  std::vector<LogicElement> les;
  /// For each net: index of the LE producing it (-1 for primary inputs,
  /// constants and logically-absorbed internal nets).
  std::vector<std::int32_t> producer;
  /// Physical fanout of each produced net (loads among LEs and outputs).
  std::vector<std::uint32_t> fanout;

  [[nodiscard]] std::size_t le_count() const { return les.size(); }
  [[nodiscard]] std::size_t ff_count() const;
  [[nodiscard]] std::size_t chain_le_count() const;
  [[nodiscard]] std::size_t lut_le_count() const;
};

/// Maps `nl` onto logic elements.  Throws std::logic_error if the netlist
/// fails validation.
[[nodiscard]] MappedNetlist map_to_apex(const rtl::Netlist& nl);

}  // namespace dwt::fpga
