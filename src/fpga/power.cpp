#include "fpga/power.hpp"

#include <sstream>
#include <stdexcept>

namespace dwt::fpga {
namespace {

double net_capacitance_pf(const MappedNetlist& m, const ApexDeviceParams& p,
                          rtl::NetId net, bool is_carry) {
  if (is_carry) return p.c_carry_pf;
  return p.c_le_output_pf +
         p.c_route_per_fanout_pf * static_cast<double>(m.fanout[net]);
}

}  // namespace

PowerBreakdown estimate_power(const MappedNetlist& mapped,
                              const rtl::ActivityStats& activity,
                              const ApexDeviceParams& params, double f_mhz) {
  if (activity.cycles == 0) {
    throw std::invalid_argument("estimate_power: no simulated cycles");
  }
  if (f_mhz <= 0) throw std::invalid_argument("estimate_power: bad frequency");
  PowerBreakdown pb;
  pb.frequency_mhz = f_mhz;
  pb.static_mw = params.static_mw;
  const double v2 = params.v_dd * params.v_dd;
  // mW = rate[1/cycle] * 0.5 * C[pF] * V^2 * f[MHz] * 1e-3
  const double scale = 0.5 * v2 * f_mhz * 1e-3;
  // Deep combinational clouds route over longer wires: weight each net's
  // capacitance by its timing arrival (see c_arrival_slope_per_ns).
  TimingAnalyzer sta(mapped, params);
  auto depth_weight = [&](rtl::NetId net) {
    return 1.0 + params.c_arrival_slope_per_ns * sta.arrival(net);
  };
  double logic = 0.0;
  for (const LogicElement& le : mapped.les) {
    if (le.lut_output != rtl::kNullNet) {
      // A packed FF keeps its LUT's output inside the LE: the wire charges
      // only the tiny intra-cell capacitance, independent of cloud depth.
      if (le.has_ff) {
        logic += activity.rate(le.lut_output) * params.c_packed_internal_pf;
      } else {
        logic += activity.rate(le.lut_output) * depth_weight(le.lut_output) *
                 net_capacitance_pf(mapped, params, le.lut_output, false);
      }
    }
    if (le.carry_out != rtl::kNullNet) {
      logic += activity.rate(le.carry_out) * depth_weight(le.carry_out) *
               net_capacitance_pf(mapped, params, le.carry_out, true);
    }
    if (le.ff_output != rtl::kNullNet && le.ff_output != le.lut_output) {
      logic += activity.rate(le.ff_output) *
               net_capacitance_pf(mapped, params, le.ff_output, false);
    }
  }
  pb.logic_mw = logic * scale;
  // Clock network: two edges per cycle per FF.
  const double ffs = static_cast<double>(mapped.ff_count());
  pb.clock_mw = ffs * params.c_clock_per_ff_pf * v2 * f_mhz * 1e-3;
  return pb;
}

PowerBreakdown estimate_power_batched(
    const MappedNetlist& mapped, const rtl::ActivityStats& zero_delay_activity,
    const ApexDeviceParams& params, double f_mhz, double glitch_margin) {
  if (glitch_margin < 1.0) {
    throw std::invalid_argument("estimate_power_batched: margin < 1");
  }
  PowerBreakdown pb =
      estimate_power(mapped, zero_delay_activity, params, f_mhz);
  pb.logic_mw *= glitch_margin;
  return pb;
}

double mean_activity(const MappedNetlist& mapped,
                     const rtl::ActivityStats& activity) {
  double total = 0.0;
  std::size_t nets = 0;
  for (const LogicElement& le : mapped.les) {
    if (le.lut_output != rtl::kNullNet) {
      total += activity.rate(le.lut_output);
      ++nets;
    }
    if (le.carry_out != rtl::kNullNet) {
      total += activity.rate(le.carry_out);
      ++nets;
    }
  }
  return nets == 0 ? 0.0 : total / static_cast<double>(nets);
}

std::string PowerBreakdown::to_string() const {
  std::ostringstream os;
  os << total_mw() << " mW @ " << frequency_mhz << " MHz (logic " << logic_mw
     << ", clock " << clock_mw << ", static " << static_mw << ")";
  return os.str();
}

}  // namespace dwt::fpga
