#include "fpga/mapped_sim.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::fpga {
namespace {

using rtl::CellKind;
using rtl::kNullNet;
using rtl::NetId;

constexpr double kTickNs = 0.05;

std::uint16_t to_ticks(double ns) {
  const double t = std::ceil(ns / kTickNs);
  return static_cast<std::uint16_t>(t < 1.0 ? 1.0 : t);
}

/// Deterministic placement jitter in [0.5, 1.7): every physical route has
/// its own length after place-and-route.  Skewed arrivals are what make
/// glitch waves compound through operator cascades.
double route_jitter(NetId src, std::size_t le) {
  std::uint64_t z = (static_cast<std::uint64_t>(src) << 32) ^
                    (static_cast<std::uint64_t>(le) * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return 0.25 + 2.5 * (static_cast<double>(z >> 11) * 0x1.0p-53);
}

}  // namespace

MappedActivitySim::MappedActivitySim(const MappedNetlist& mapped,
                                     const ApexDeviceParams& p)
    : m_(mapped),
      values_(mapped.source->net_count(), 0),
      loads_(mapped.source->net_count()),
      wheel_(kWheelSize) {
  stats_.toggles.assign(values_.size(), 0);
  // Pre-compute per-(net, consuming LE) reaction delays, mirroring the
  // static timing model (local vs general routing by placement cluster).
  auto producer_cluster = [&](NetId n) -> std::int32_t {
    const std::int32_t sp = m_.producer[n];
    if (sp < 0) return -2;  // primary input
    const LogicElement& sle = m_.les[static_cast<std::size_t>(sp)];
    if (n == sle.ff_output) return -3;  // register output: general routing
    return sle.cluster;
  };
  for (std::size_t i = 0; i < m_.les.size(); ++i) {
    const LogicElement& le = m_.les[i];
    auto route_ns = [&](NetId src) {
      const std::int32_t pc = producer_cluster(src);
      const bool local = le.cluster >= 0 && pc == le.cluster;
      return (local ? p.t_route_local : p.t_route_general) *
             route_jitter(src, i);
    };
    for (const NetId in : le.lut_inputs) {
      Load load;
      load.le = static_cast<std::int32_t>(i);
      load.lut_delay = to_ticks(route_ns(in) + p.t_lut);
      load.carry_delay =
          le.carry_out != kNullNet ? to_ticks(route_ns(in) + p.t_carry_gen) : 0;
      loads_[in].push_back(load);
    }
    if (le.carry_in != kNullNet) {
      Load load;
      load.le = static_cast<std::int32_t>(i);
      const bool chained = le.in_chain && le.chain_bit > 0;
      load.lut_delay = to_ticks(chained ? p.t_chain_to_lut
                                        : route_ns(le.carry_in) + p.t_lut);
      load.carry_delay =
          le.carry_out != kNullNet
              ? to_ticks(chained ? p.t_carry
                                 : route_ns(le.carry_in) + p.t_carry_gen)
              : 0;
      loads_[le.carry_in].push_back(load);
    }
  }
  // Establish a consistent initial state: constants, then settle every LE
  // (e.g. LUTs whose function of all-zero inputs is 1 must rest at 1).
  for (const rtl::Cell& c : m_.source->cells()) {
    if (c.kind == CellKind::kConst1) values_[c.out] = 1;
  }
  now_ = 0;
  for (std::size_t i = 0; i < m_.les.size(); ++i) {
    schedule(static_cast<std::int32_t>(i), Out::kLut, 0);
    if (m_.les[i].carry_out != kNullNet) {
      schedule(static_cast<std::int32_t>(i), Out::kCarry, 0);
    }
  }
  cycle();  // settles and clocks once from the quiescent state
  reset_stats();
}

void MappedActivitySim::set_input(NetId net, bool value) {
  if (net >= values_.size() || !m_.source->net(net).is_primary_input) {
    throw std::invalid_argument("MappedActivitySim: not a primary input");
  }
  pending_inputs_.emplace_back(net, value ? 1 : 0);
}

void MappedActivitySim::set_bus(const rtl::Bus& bus, std::int64_t value) {
  const int w = bus.width();
  if (w < 64) {
    const std::int64_t lo = -(std::int64_t{1} << (w - 1));
    const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
    if (value < lo || value > hi) {
      throw std::invalid_argument("MappedActivitySim::set_bus: does not fit");
    }
  }
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    set_input(bus.bits[i], ((value >> i) & 1) != 0);
  }
}

void MappedActivitySim::schedule(std::int32_t le, Out out, std::uint64_t tick) {
  wheel_[tick % kWheelSize].push_back(Event{le, out});
  ++pending_events_;
}

void MappedActivitySim::bump(NetId net, bool new_value, std::uint64_t tick) {
  const std::uint8_t nv = new_value ? 1 : 0;
  if (values_[net] == nv) return;
  values_[net] = nv;
  ++stats_.toggles[net];
  ++stats_.total_toggles;
  for (const Load& load : loads_[net]) {
    schedule(load.le, Out::kLut, tick + load.lut_delay);
    if (load.carry_delay != 0) {
      schedule(load.le, Out::kCarry, tick + load.carry_delay);
    }
  }
}

bool MappedActivitySim::eval_out(const LogicElement& le, Out out) const {
  if (le.in_chain) {
    const bool a = !le.lut_inputs.empty() && values_[le.lut_inputs[0]] != 0;
    const bool b = le.lut_inputs.size() > 1 && values_[le.lut_inputs[1]] != 0;
    const bool cin = le.carry_in != kNullNet && values_[le.carry_in] != 0;
    return out == Out::kCarry ? (a && b) || (cin && (a != b))
                              : (a != b) != cin;
  }
  std::uint32_t index = 0;
  for (std::size_t i = 0; i < le.lut_inputs.size(); ++i) {
    if (values_[le.lut_inputs[i]] != 0) index |= 1u << i;
  }
  return ((le.truth >> index) & 1u) != 0;
}

void MappedActivitySim::cycle() {
  auto settle = [this] {
    const std::uint64_t tick_limit = now_ + (1u << 20);
    while (pending_events_ > 0) {
      auto& bucket = wheel_[now_ % kWheelSize];
      if (!bucket.empty()) {
        // Evaluate each event against current values; re-toggles reschedule.
        std::vector<Event> events;
        events.swap(bucket);
        pending_events_ -= events.size();
        for (const Event& ev : events) {
          const LogicElement& le = m_.les[static_cast<std::size_t>(ev.le)];
          const NetId out_net =
              ev.out == Out::kCarry ? le.carry_out : le.lut_output;
          if (out_net == kNullNet) continue;
          bump(out_net, eval_out(le, ev.out), now_);
        }
      }
      ++now_;
      if (now_ > tick_limit) {
        throw std::logic_error("MappedActivitySim::cycle: failed to settle");
      }
    }
  };
  // 1. Scheduled input changes propagate first (they are upstream registers
  //    clocked by the same edge), so FFs can capture this cycle's results --
  //    matching Simulator::step() semantics.
  now_ = 0;
  for (const auto& [net, v] : pending_inputs_) bump(net, v != 0, now_);
  pending_inputs_.clear();
  settle();
  // 2. FFs capture the settled D values; the state change propagates.
  std::vector<std::pair<NetId, std::uint8_t>> updates;
  for (const LogicElement& le : m_.les) {
    if (le.has_ff) updates.emplace_back(le.ff_output, values_[le.ff_d]);
  }
  for (const auto& [net, v] : updates) bump(net, v != 0, now_);
  settle();
  ++stats_.cycles;
}

std::int64_t MappedActivitySim::read_bus(const rtl::Bus& bus) const {
  std::int64_t v = 0;
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    if (values_[bus.bits[i]]) v |= std::int64_t{1} << i;
  }
  const int w = bus.width();
  if (w < 64 && (v & (std::int64_t{1} << (w - 1)))) {
    v -= std::int64_t{1} << w;
  }
  return v;
}

void MappedActivitySim::reset_stats() {
  stats_.cycles = 0;
  stats_.total_toggles = 0;
  stats_.toggles.assign(values_.size(), 0);
}

}  // namespace dwt::fpga
