// Static timing analysis over a mapped netlist.  Register-to-register (and
// port-to-register) paths accumulate LUT, routing and carry-chain delays per
// the APEX device parameters; f_max = 1 / critical path.  The carry chain is
// the mechanism behind the paper's behavioral-vs-structural frequency gap:
// behavioral adders ripple at t_carry per bit on the dedicated chain, while
// structural full adders ripple through general LUTs and routing.
#pragma once

#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "rtl/adder_arch.hpp"

namespace dwt::fpga {

/// Analytic carry-path model of a `width`-bit adder in the given
/// architecture (ns, data-in to worst sum-out).  The chain styles pay per
/// bit -- the dedicated t_carry hop for behavioral adders, a LUT + local
/// hop per full adder for ripple gates -- while the parallel-prefix
/// architectures pay one LUT + local hop per *prefix level*, i.e.
/// O(log2 width) instead of O(width).  The structural STA measures the same
/// effect on the mapped netlists; this closed form is the design-time
/// sanity check and the bench_adder_frontier model column.
[[nodiscard]] double adder_critical_path_ns(rtl::AdderArch arch, int width,
                                            const ApexDeviceParams& params);

struct TimingReport {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
  rtl::NetId worst_endpoint = rtl::kNullNet;  ///< D net of the worst FF path
  std::vector<rtl::NetId> critical_path;      ///< source-to-endpoint net trace

  [[nodiscard]] std::string to_string(const rtl::Netlist& nl) const;
};

class TimingAnalyzer {
 public:
  TimingAnalyzer(const MappedNetlist& mapped, const ApexDeviceParams& params);

  /// Runs the analysis (arrival-time propagation + worst endpoint search).
  [[nodiscard]] TimingReport analyze();

  /// Arrival time (ns after clock edge) of a physical net; for inspection
  /// and the stage-level pipelining figure.
  [[nodiscard]] double arrival(rtl::NetId net);

 private:
  double compute_arrival(rtl::NetId net);

  const MappedNetlist& m_;
  const ApexDeviceParams& p_;
  std::vector<double> arrival_;     // -1 = not computed
  std::vector<rtl::NetId> pred_;    // worst-case predecessor for path trace
  std::vector<std::uint8_t> on_stack_;
};

}  // namespace dwt::fpga
