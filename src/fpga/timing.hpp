// Static timing analysis over a mapped netlist.  Register-to-register (and
// port-to-register) paths accumulate LUT, routing and carry-chain delays per
// the APEX device parameters; f_max = 1 / critical path.  The carry chain is
// the mechanism behind the paper's behavioral-vs-structural frequency gap:
// behavioral adders ripple at t_carry per bit on the dedicated chain, while
// structural full adders ripple through general LUTs and routing.
#pragma once

#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"

namespace dwt::fpga {

struct TimingReport {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
  rtl::NetId worst_endpoint = rtl::kNullNet;  ///< D net of the worst FF path
  std::vector<rtl::NetId> critical_path;      ///< source-to-endpoint net trace

  [[nodiscard]] std::string to_string(const rtl::Netlist& nl) const;
};

class TimingAnalyzer {
 public:
  TimingAnalyzer(const MappedNetlist& mapped, const ApexDeviceParams& params);

  /// Runs the analysis (arrival-time propagation + worst endpoint search).
  [[nodiscard]] TimingReport analyze();

  /// Arrival time (ns after clock edge) of a physical net; for inspection
  /// and the stage-level pipelining figure.
  [[nodiscard]] double arrival(rtl::NetId net);

 private:
  double compute_arrival(rtl::NetId net);

  const MappedNetlist& m_;
  const ApexDeviceParams& p_;
  std::vector<double> arrival_;     // -1 = not computed
  std::vector<rtl::NetId> pred_;    // worst-case predecessor for path trace
  std::vector<std::uint8_t> on_stack_;
};

}  // namespace dwt::fpga
