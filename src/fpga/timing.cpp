#include "fpga/timing.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dwt::fpga {
namespace {

using rtl::Cell;
using rtl::CellId;
using rtl::CellKind;
using rtl::kNullCell;
using rtl::kNullNet;
using rtl::NetId;

bool is_const_net(const rtl::Netlist& nl, NetId n) {
  const CellId d = nl.net(n).driver;
  if (d == kNullCell) return false;
  const CellKind k = nl.cell(d).kind;
  return k == CellKind::kConst0 || k == CellKind::kConst1;
}

}  // namespace

TimingAnalyzer::TimingAnalyzer(const MappedNetlist& mapped,
                               const ApexDeviceParams& params)
    : m_(mapped), p_(params) {
  const std::size_t n = m_.source->net_count();
  arrival_.assign(n, -1.0);
  pred_.assign(n, kNullNet);
  on_stack_.assign(n, 0);
}

double TimingAnalyzer::arrival(rtl::NetId net) { return compute_arrival(net); }

double TimingAnalyzer::compute_arrival(NetId net) {
  if (arrival_[net] >= 0.0) return arrival_[net];
  const rtl::Netlist& nl = *m_.source;
  if (nl.net(net).is_primary_input || is_const_net(nl, net)) {
    return arrival_[net] = 0.0;
  }
  if (on_stack_[net]) {
    throw std::logic_error("TimingAnalyzer: combinational loop at net " +
                           std::to_string(net));
  }
  const std::int32_t prod = m_.producer[net];
  if (prod < 0) {
    throw std::logic_error("TimingAnalyzer: query on absorbed net " +
                           std::to_string(net));
  }
  on_stack_[net] = 1;
  const LogicElement& le = m_.les[static_cast<std::size_t>(prod)];
  double best = 0.0;
  NetId best_pred = kNullNet;

  // Routing cost into this LE: local when the driving LE belongs to the
  // same placement cluster, general interconnect otherwise (registers,
  // ports and other operators).
  auto route_in = [&](NetId src) {
    const std::int32_t sp = m_.producer[src];
    if (sp < 0) return p_.t_route_general;  // primary input
    const LogicElement& sle = m_.les[static_cast<std::size_t>(sp)];
    const bool same_cluster =
        le.cluster >= 0 && sle.cluster == le.cluster && src != sle.ff_output;
    return same_cluster ? p_.t_route_local : p_.t_route_general;
  };
  auto consider = [&](NetId src, double delay) {
    if (src == kNullNet || is_const_net(nl, src)) return;
    const double t = compute_arrival(src) + delay;
    if (t > best) {
      best = t;
      best_pred = src;
    }
  };

  if (net == le.ff_output) {
    arrival_[net] = p_.t_clk_to_q;
    on_stack_[net] = 0;
    return arrival_[net];
  }
  const bool carry_in_is_chained =
      le.in_chain && le.carry_in != kNullNet && le.chain_bit > 0;
  if (net == le.lut_output) {
    for (const NetId in : le.lut_inputs) {
      consider(in, route_in(in) + p_.t_lut);
    }
    if (le.in_chain && le.carry_in != kNullNet) {
      consider(le.carry_in, carry_in_is_chained ? p_.t_chain_to_lut
                                                : route_in(le.carry_in) + p_.t_lut);
    }
  } else if (net == le.carry_out) {
    for (const NetId in : le.lut_inputs) {
      consider(in, route_in(in) + p_.t_carry_gen);
    }
    if (le.carry_in != kNullNet) {
      consider(le.carry_in, carry_in_is_chained
                                ? p_.t_carry
                                : route_in(le.carry_in) + p_.t_carry_gen);
    }
  } else {
    throw std::logic_error("TimingAnalyzer: net not produced by its LE");
  }
  on_stack_[net] = 0;
  pred_[net] = best_pred;
  return arrival_[net] = best;
}

TimingReport TimingAnalyzer::analyze() {
  const rtl::Netlist& nl = *m_.source;
  TimingReport report;
  double worst = 0.0;
  NetId worst_net = kNullNet;

  // Endpoints: every FF D pin (the LE's lut_output when packed, or the raw
  // D net for standalone FFs) plus every output port (with routing out).
  for (const LogicElement& le : m_.les) {
    if (!le.has_ff) continue;
    // Find the D net: packed FF samples the LE's own LUT; a standalone FF
    // samples whatever drives it in the source netlist.
    NetId d = kNullNet;
    double extra_route = 0.0;
    if (le.lut_output != kNullNet) {
      d = le.lut_output;
    } else {
      d = le.ff_d;
      extra_route = p_.t_route_general;
    }
    if (is_const_net(nl, d)) continue;
    const double t =
        compute_arrival(d) + extra_route + p_.t_setup + p_.t_clock_skew;
    if (t > worst) {
      worst = t;
      worst_net = d;
    }
  }
  for (const auto& [name, bus] : nl.outputs()) {
    (void)name;
    for (const NetId b : bus.bits) {
      if (is_const_net(nl, b)) continue;
      const double t = compute_arrival(b) + p_.t_route_general + p_.t_setup;
      if (t > worst) {
        worst = t;
        worst_net = b;
      }
    }
  }
  report.critical_path_ns = worst;
  report.fmax_mhz = worst > 0.0 ? 1000.0 / worst : 0.0;
  report.worst_endpoint = worst_net;
  for (NetId n = worst_net; n != kNullNet; n = pred_[n]) {
    report.critical_path.push_back(n);
    if (report.critical_path.size() > m_.source->net_count()) {
      throw std::logic_error("TimingAnalyzer: path trace loop");
    }
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

std::string TimingReport::to_string(const rtl::Netlist& nl) const {
  std::ostringstream os;
  os << "critical path " << critical_path_ns << " ns  (fmax " << fmax_mhz
     << " MHz), " << critical_path.size() << " nets";
  if (worst_endpoint != kNullNet) {
    os << ", endpoint " << (nl.net(worst_endpoint).name.empty()
                                ? "n" + std::to_string(worst_endpoint)
                                : nl.net(worst_endpoint).name);
  }
  return os.str();
}

namespace {

/// Smallest L with 2^L >= n (prefix-network level count for n bits).
int ceil_log2(int n) {
  int levels = 0;
  int span = 1;
  while (span < n) {
    span *= 2;
    ++levels;
  }
  return levels;
}

}  // namespace

double adder_critical_path_ns(rtl::AdderArch arch, int width,
                              const ApexDeviceParams& p) {
  if (width < 1) throw std::invalid_argument("adder_critical_path_ns: width");
  // One mapped logic level: a 4-LUT plus the local hop to the next LE of
  // the same cluster (operators are single-cluster by construction).
  const double level = p.t_lut + p.t_route_local;
  switch (arch) {
    case rtl::AdderArch::kCarryChain:
      // Enter the chain, hop bit to bit on the dedicated carry line, exit
      // into the MSB's sum LUT.
      return p.t_carry_gen + (width - 1) * p.t_carry + p.t_chain_to_lut;
    case rtl::AdderArch::kRippleGates:
      // Each full adder's carry-out is one LUT cone; the MSB sum LUT ends
      // the path.
      return width * level + p.t_lut;
    case rtl::AdderArch::kKoggeStone: {
      // Leaf g/p level, one AND-OR combine level per prefix rank (the
      // mapper packs each combine's AND-OR pair into one 4-LUT cone),
      // final sum XOR.
      return (2 + ceil_log2(width)) * level + p.t_lut;
    }
    case rtl::AdderArch::kBrentKung: {
      // Up-sweep (log2 n ranks) plus down-sweep (log2 n - 1 ranks).
      const int ranks = std::max(1, 2 * ceil_log2(width) - 1);
      return (2 + ranks) * level + p.t_lut;
    }
    case rtl::AdderArch::kHybridKsBk: {
      // Kogge-Stone over the low half, its group carry absorbed into a
      // Brent-Kung tree over the high half (serial composition).
      const int half = (width + 1) / 2;
      const int ks_ranks = ceil_log2(half);
      const int bk_ranks = std::max(1, 2 * ceil_log2(width - half) - 1);
      return (2 + ks_ranks + 1 + bk_ranks) * level + p.t_lut;
    }
  }
  throw std::invalid_argument("adder_critical_path_ns: unknown arch");
}

}  // namespace dwt::fpga
