// Event-driven *transport-delay* simulator over the mapped netlist, used
// for power estimation.  Each LE output transition is scheduled with the
// same delays the static timing analyzer uses (carry hops fast, LUT+local
// routing moderate, general interconnect slow).  Skewed arrival times are
// what multiply glitch transitions inside long operator cascades -- the
// physical mechanism behind the paper's observation that the pipelined
// designs 3 and 5 need less than half the power at the same clock: one
// registered operator per stage leaves glitches no room to compound.
// Toggle counts are indexed by source-netlist net id, so
// fpga::estimate_power consumes them directly.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "rtl/activity_sim.hpp"

namespace dwt::fpga {

class MappedActivitySim {
 public:
  explicit MappedActivitySim(
      const MappedNetlist& mapped,
      const ApexDeviceParams& params = ApexDeviceParams::apex20ke());

  /// Schedules input values for the next cycle() boundary.
  void set_input(rtl::NetId net, bool value);
  void set_bus(const rtl::Bus& bus, std::int64_t value);

  /// One clock cycle: FFs capture, inputs apply, the logic settles under
  /// transport delays while transitions on physical nets are counted.
  void cycle();

  [[nodiscard]] bool value(rtl::NetId net) const { return values_[net] != 0; }
  [[nodiscard]] std::int64_t read_bus(const rtl::Bus& bus) const;

  [[nodiscard]] const rtl::ActivityStats& stats() const { return stats_; }
  void reset_stats();

 private:
  enum class Out : std::uint8_t { kLut, kCarry };
  struct Load {
    std::int32_t le;
    std::uint16_t lut_delay;    ///< ticks until the LUT output reacts
    std::uint16_t carry_delay;  ///< ticks until the carry output reacts (0 = none)
  };
  struct Event {
    std::int32_t le;
    Out out;
  };

  void bump(rtl::NetId net, bool new_value, std::uint64_t tick);
  void schedule(std::int32_t le, Out out, std::uint64_t tick);
  [[nodiscard]] bool eval_out(const LogicElement& le, Out out) const;

  const MappedNetlist& m_;
  std::vector<std::uint8_t> values_;  ///< per source net
  std::vector<std::pair<rtl::NetId, std::uint8_t>> pending_inputs_;
  std::vector<std::vector<Load>> loads_;  ///< net -> consuming LEs with delays

  // Timing wheel (circular buckets, 1 tick = 0.05 ns).
  static constexpr std::size_t kWheelSize = 1024;
  std::vector<std::vector<Event>> wheel_;
  std::uint64_t now_ = 0;
  std::size_t pending_events_ = 0;

  rtl::ActivityStats stats_;
};

}  // namespace dwt::fpga
