#include "fpga/tech_mapper.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace dwt::fpga {
namespace {

using rtl::Cell;
using rtl::CellId;
using rtl::CellKind;
using rtl::kNullCell;
using rtl::kNullNet;
using rtl::Netlist;
using rtl::NetId;

constexpr std::size_t kLutInputs = 4;

bool is_const(const Netlist& nl, NetId n) {
  const CellId d = nl.net(n).driver;
  if (d == kNullCell) return false;
  const CellKind k = nl.cell(d).kind;
  return k == CellKind::kConst0 || k == CellKind::kConst1;
}

bool const_value(const Netlist& nl, NetId n) {
  return nl.cell(nl.net(n).driver).kind == CellKind::kConst1;
}

/// True when the net is produced by plain combinational logic that a LUT
/// cone may absorb (not a register, input, constant or chain adder bit).
bool is_absorbable(const Netlist& nl, NetId n) {
  if (nl.net(n).is_primary_input) return false;
  const CellId d = nl.net(n).driver;
  if (d == kNullCell) return false;
  switch (nl.cell(d).kind) {
    case CellKind::kNot:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
    case CellKind::kMux2:
      return true;
    case CellKind::kAddSum:
    case CellKind::kAddCarry:
      return nl.cell(d).chain_id < 0;  // untagged adder bits are plain LUTs
    default:
      return false;
  }
}

/// Finds the best <=4-input cone rooted at `root_cell` by bounded search
/// over reachable leaf sets (duplication allowed).  The cost of a cut is the
/// number of absorbable fanout-1 leaves it keeps: such a leaf would become a
/// single-use LUT root, pure duplication waste (the classic failure is
/// splitting a full adder's carry cone into its AND/OR parts).  Ties prefer
/// deeper absorption.
std::vector<NetId> grow_cone(const Netlist& nl, CellId root_cell,
                             const std::vector<std::uint32_t>& fanout) {
  const auto inputs_of = [&nl](CellId cell) {
    std::vector<NetId> ins;
    const Cell& c = nl.cell(cell);
    for (int i = 0; i < input_count(c.kind); ++i) {
      const NetId in = c.in[static_cast<std::size_t>(i)];
      if (!is_const(nl, in) &&
          std::find(ins.begin(), ins.end(), in) == ins.end()) {
        ins.push_back(in);
      }
    }
    return ins;
  };
  const auto score = [&](const std::vector<NetId>& leaves) {
    // Every absorbable leaf this cut keeps will have to exist physically as
    // its own LUT root; single-load ones are pure duplication waste.
    int absorbable = 0;
    int single_use = 0;
    for (const NetId n : leaves) {
      if (is_absorbable(nl, n)) {
        ++absorbable;
        if (fanout[n] <= 1) ++single_use;
      }
    }
    return std::tuple<int, int, int>(absorbable, single_use,
                                     -static_cast<int>(leaves.size()));
  };

  std::vector<NetId> start = inputs_of(root_cell);
  std::sort(start.begin(), start.end());
  std::set<std::vector<NetId>> visited{start};
  std::deque<std::vector<NetId>> queue{start};
  std::vector<NetId> best = start;
  auto best_score = score(start);
  constexpr std::size_t kSearchCap = 512;

  while (!queue.empty() && visited.size() < kSearchCap) {
    const std::vector<NetId> leaves = queue.front();
    queue.pop_front();
    for (const NetId leaf : leaves) {
      if (!is_absorbable(nl, leaf)) continue;
      std::vector<NetId> candidate;
      for (const NetId n : leaves) {
        if (n != leaf) candidate.push_back(n);
      }
      for (const NetId in : inputs_of(nl.net(leaf).driver)) {
        if (std::find(candidate.begin(), candidate.end(), in) ==
            candidate.end()) {
          candidate.push_back(in);
        }
      }
      if (candidate.size() > kLutInputs) continue;
      std::sort(candidate.begin(), candidate.end());
      if (!visited.insert(candidate).second) continue;
      const auto s = score(candidate);
      if (s < best_score) {
        best_score = s;
        best = candidate;
      }
      queue.push_back(std::move(candidate));
    }
  }
  if (best.size() > kLutInputs) {
    throw std::logic_error("tech_mapper: cell with more than 4 live inputs");
  }
  return best;
}

/// Evaluates the cone function for one assignment of the leaves.
bool eval_cone(const Netlist& nl, NetId net, const std::vector<NetId>& leaves,
               std::uint32_t assignment,
               std::unordered_map<NetId, bool>& memo) {
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (leaves[i] == net) return ((assignment >> i) & 1) != 0;
  }
  if (is_const(nl, net)) return const_value(nl, net);
  const auto it = memo.find(net);
  if (it != memo.end()) return it->second;
  const Cell& c = nl.cell(nl.net(net).driver);
  const auto in = [&](int i) {
    return eval_cone(nl, c.in[static_cast<std::size_t>(i)], leaves, assignment,
                     memo);
  };
  bool v = false;
  switch (c.kind) {
    case CellKind::kNot: v = !in(0); break;
    case CellKind::kAnd2: v = in(0) && in(1); break;
    case CellKind::kOr2: v = in(0) || in(1); break;
    case CellKind::kXor2: v = in(0) != in(1); break;
    case CellKind::kMux2: v = in(2) ? in(1) : in(0); break;
    case CellKind::kAddSum: v = (in(0) != in(1)) != in(2); break;
    case CellKind::kAddCarry:
      v = (in(0) && in(1)) || (in(2) && (in(0) != in(1)));
      break;
    default:
      throw std::logic_error("tech_mapper: non-combinational cell in cone");
  }
  memo.emplace(net, v);
  return v;
}

std::uint16_t cone_truth(const Netlist& nl, NetId root,
                         const std::vector<NetId>& leaves) {
  std::uint16_t truth = 0;
  const std::uint32_t combos = 1u << leaves.size();
  for (std::uint32_t a = 0; a < combos; ++a) {
    std::unordered_map<NetId, bool> memo;
    if (eval_cone(nl, root, leaves, a, memo)) {
      truth = static_cast<std::uint16_t>(truth | (1u << a));
    }
  }
  return truth;
}

/// Nets transitively reachable (backwards) from the output ports: everything
/// else is dead logic a synthesis tool sweeps away (e.g. the high-order sum
/// bits above the paper's section-3.1 register clamps).
std::vector<std::uint8_t> live_nets(const Netlist& nl) {
  std::vector<std::uint8_t> live(nl.net_count(), 0);
  std::vector<NetId> stack;
  for (const auto& [name, bus] : nl.outputs()) {
    (void)name;
    for (const NetId b : bus.bits) stack.push_back(b);
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    if (live[n]) continue;
    live[n] = 1;
    const CellId d = nl.net(n).driver;
    if (d == kNullCell) continue;
    const Cell& c = nl.cell(d);
    for (int i = 0; i < input_count(c.kind); ++i) {
      stack.push_back(c.in[static_cast<std::size_t>(i)]);
    }
  }
  return live;
}

}  // namespace

std::size_t MappedNetlist::ff_count() const {
  std::size_t n = 0;
  for (const LogicElement& le : les) {
    if (le.has_ff) ++n;
  }
  return n;
}

std::size_t MappedNetlist::chain_le_count() const {
  std::size_t n = 0;
  for (const LogicElement& le : les) {
    if (le.in_chain) ++n;
  }
  return n;
}

std::size_t MappedNetlist::lut_le_count() const {
  std::size_t n = 0;
  for (const LogicElement& le : les) {
    if (!le.in_chain && le.lut_output != kNullNet) ++n;
  }
  return n;
}

MappedNetlist map_to_apex(const Netlist& nl) {
  nl.validate();
  MappedNetlist out;
  out.source = &nl;
  out.producer.assign(nl.net_count(), -1);
  const std::vector<std::uint8_t> live = live_nets(nl);
  // Logical fanout (cell loads + output ports), used by the cone search.
  std::vector<std::uint32_t> logical_fanout = nl.fanout_counts();
  for (const auto& [oname, obus] : nl.outputs()) {
    (void)oname;
    for (const NetId bnet : obus.bits) ++logical_fanout[bnet];
  }

  auto emit = [&out](LogicElement le) -> std::int32_t {
    out.les.push_back(std::move(le));
    const auto idx = static_cast<std::int32_t>(out.les.size() - 1);
    const LogicElement& e = out.les.back();
    if (e.lut_output != kNullNet) out.producer[e.lut_output] = idx;
    if (e.carry_out != kNullNet) out.producer[e.carry_out] = idx;
    if (e.ff_output != kNullNet) out.producer[e.ff_output] = idx;
    return idx;
  };

  // --- 1. carry-chain LEs: pair each live chain bit's sum/carry cells. ---
  struct BitCells {
    CellId sum = kNullCell;
    CellId carry = kNullCell;
  };
  std::map<std::int32_t, std::map<std::int32_t, BitCells>> chains;
  for (CellId id = 0; id < nl.cells().size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.chain_id < 0 || !live[c.out]) continue;
    auto& slot = chains[c.chain_id][c.chain_bit];
    if (c.kind == CellKind::kAddSum) {
      slot.sum = id;
    } else {
      slot.carry = id;
    }
  }
  std::vector<NetId> sink_queue;  // nets that must exist physically
  for (auto& [chain_id, bits] : chains) {
    (void)chain_id;
    for (auto& [bit, pair] : bits) {
      const CellId sum_id = pair.sum;
      if (sum_id == kNullCell && pair.carry == kNullCell) continue;
      // A bit may have only a sum cell (the MSB has no carry out) or only a
      // live carry cell (sum clamped away).
      const Cell& ref = nl.cell(sum_id != kNullCell ? sum_id : pair.carry);
      LogicElement le;
      le.in_chain = true;
      le.chain_id = ref.chain_id;
      le.chain_bit = bit;
      le.cluster = ref.cluster_id;
      le.lut_inputs = {ref.in[0], ref.in[1]};
      le.carry_in = ref.in[2];
      if (sum_id != kNullCell) le.lut_output = nl.cell(sum_id).out;
      if (pair.carry != kNullCell) le.carry_out = nl.cell(pair.carry).out;
      emit(std::move(le));
      for (const NetId d : {ref.in[0], ref.in[1]}) {
        if (!is_const(nl, d)) sink_queue.push_back(d);
      }
      // The chain entry carry-in is a general signal only at bit 0.
      if (bit == 0 && !is_const(nl, ref.in[2])) {
        sink_queue.push_back(ref.in[2]);
      }
    }
  }

  // --- 2. collect the other physical sinks: DFF D pins and output ports ---
  std::vector<CellId> dff_cells;
  for (CellId id = 0; id < nl.cells().size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kDff && live[c.out]) {
      dff_cells.push_back(id);
      if (!is_const(nl, c.in[0])) sink_queue.push_back(c.in[0]);
    }
  }
  for (const auto& [name, bus] : nl.outputs()) {
    (void)name;
    for (const NetId b : bus.bits) {
      if (!is_const(nl, b)) sink_queue.push_back(b);
    }
  }

  // --- 3. LUT-cone covering (with duplication) from the sinks down. ---
  std::vector<std::uint8_t> is_root(nl.net_count(), 0);
  std::deque<NetId> work(sink_queue.begin(), sink_queue.end());
  while (!work.empty()) {
    const NetId n = work.front();
    work.pop_front();
    if (is_root[n]) continue;
    if (!is_absorbable(nl, n)) continue;  // PI, FF output or chain output
    is_root[n] = 1;
    LogicElement le;
    le.lut_output = n;
    le.cluster = nl.cell(nl.net(n).driver).cluster_id;
    le.lut_inputs = grow_cone(nl, nl.net(n).driver, logical_fanout);
    le.truth = cone_truth(nl, n, le.lut_inputs);
    for (const NetId leaf : le.lut_inputs) work.push_back(leaf);
    emit(std::move(le));
  }

  // --- 4. FF packing: a DFF merges into the LE whose LUT feeds only it. ---
  // Physical fanout first (loads on produced nets among LEs + outputs).
  out.fanout.assign(nl.net_count(), 0);
  for (const LogicElement& le : out.les) {
    for (const NetId in : le.lut_inputs) ++out.fanout[in];
    if (le.in_chain && le.chain_bit == 0 && le.carry_in != kNullNet &&
        !is_const(nl, le.carry_in)) {
      ++out.fanout[le.carry_in];
    }
  }
  for (const CellId id : dff_cells) ++out.fanout[nl.cell(id).in[0]];
  for (const auto& [name, bus] : nl.outputs()) {
    (void)name;
    for (const NetId b : bus.bits) ++out.fanout[b];
  }

  for (const CellId id : dff_cells) {
    const Cell& c = nl.cell(id);
    const NetId d = c.in[0];
    const std::int32_t prod = is_const(nl, d) ? -1 : out.producer[d];
    if (prod >= 0 && out.fanout[d] == 1 &&
        !out.les[static_cast<std::size_t>(prod)].has_ff &&
        out.les[static_cast<std::size_t>(prod)].lut_output == d) {
      LogicElement& le = out.les[static_cast<std::size_t>(prod)];
      le.has_ff = true;
      le.ff_output = c.out;
      le.ff_d = d;
      out.producer[c.out] = prod;
    } else {
      LogicElement le;
      le.has_ff = true;
      le.ff_output = c.out;
      le.ff_d = d;
      le.lut_inputs = {};  // pass-through LE used as a register
      emit(std::move(le));
    }
  }
  return out;
}

}  // namespace dwt::fpga
