// Activity-based dynamic power estimation.  Per-net switching activity
// (including glitches) comes from the unit-delay ActivitySim; each physical
// net charges its LE output + interconnect capacitance per transition:
//   P_logic = sum over nets of  rate * 1/2 * C * Vdd^2 * f
// plus the clock network (two edges per cycle per FF) and static power.
#pragma once

#include <string>

#include "fpga/device.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "rtl/activity_sim.hpp"

namespace dwt::fpga {

struct PowerBreakdown {
  double logic_mw = 0.0;
  double clock_mw = 0.0;
  double static_mw = 0.0;
  double frequency_mhz = 0.0;

  [[nodiscard]] double total_mw() const {
    return logic_mw + clock_mw + static_mw;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Estimates power at `f_mhz` given measured switching activity.
[[nodiscard]] PowerBreakdown estimate_power(const MappedNetlist& mapped,
                                            const rtl::ActivityStats& activity,
                                            const ApexDeviceParams& params,
                                            double f_mhz);

/// Average switching activity (transitions per cycle) over physical nets --
/// the headline glitch metric the pipelined designs improve.
[[nodiscard]] double mean_activity(const MappedNetlist& mapped,
                                   const rtl::ActivityStats& activity);

/// Batched activity path: consumes zero-delay ActivityStats produced by the
/// compiled bit-parallel engine (rtl::compiled::CompiledSimulator, 64 packed
/// vector streams per tape pass -- see hw::run_stream_lanes), which counts
/// settled per-cycle toggles but no combinational glitches.  The result is a
/// fast screening estimate that lower-bounds the unit-delay number;
/// `glitch_margin` (>= 1) scales the logic term to approximate the glitch
/// contribution when calibrating against a unit-delay reference.
[[nodiscard]] PowerBreakdown estimate_power_batched(
    const MappedNetlist& mapped, const rtl::ActivityStats& zero_delay_activity,
    const ApexDeviceParams& params, double f_mhz, double glitch_margin = 1.0);

}  // namespace dwt::fpga
