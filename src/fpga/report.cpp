#include "fpga/report.hpp"

#include <iomanip>
#include <sstream>

namespace dwt::fpga {

std::string SynthesisReport::to_string() const {
  std::ostringstream os;
  os << name << ": " << logic_elements << " LEs (" << chain_les << " chain, "
     << lut_les << " LUT, " << ff_count << " FF), fmax " << std::fixed
     << std::setprecision(1) << fmax_mhz << " MHz (crit "
     << std::setprecision(2) << critical_path_ns << " ns), "
     << std::setprecision(1) << power_mw << " mW @ " << reference_mhz
     << " MHz, " << pipeline_stages << " stages, activity "
     << std::setprecision(3) << mean_activity;
  return os.str();
}

std::string format_table3_header() {
  std::ostringstream os;
  os << std::left << std::setw(10) << "Design" << std::right << std::setw(12)
     << "Area (LEs)" << std::setw(14) << "Fmax (MHz)" << std::setw(16)
     << "Power@ref (mW)" << std::setw(10) << "Stages";
  return os.str();
}

std::string format_table3_row(const SynthesisReport& r) {
  std::ostringstream os;
  os << std::left << std::setw(10) << r.name << std::right << std::setw(12)
     << r.logic_elements << std::setw(14) << std::fixed << std::setprecision(1)
     << r.fmax_mhz << std::setw(16) << std::setprecision(1) << r.power_mw
     << std::setw(10) << r.pipeline_stages;
  return os.str();
}

}  // namespace dwt::fpga
