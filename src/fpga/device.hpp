// Device model of the Altera APEX 20KE family (paper section 4's target).
// One logic element (LE) = 4-input LUT + DFF + dedicated fast carry chain.
// All delays/capacitances live here; they are the *only* calibrated numbers
// in the reproduction -- every per-design result emerges from the elaborated
// netlists through the mapper, timing analyzer and power model.
#pragma once

namespace dwt::fpga {

struct ApexDeviceParams {
  // --- timing (ns) ---
  double t_clk_to_q = 0.45;      ///< FF clock-to-output
  double t_setup = 0.45;         ///< FF setup
  double t_lut = 0.25;           ///< LUT logic delay
  /// Interconnect hop between LEs of the same placement cluster (one
  /// operator's bits stay in one LAB column: fast local lines).
  double t_route_local = 0.17;
  /// Interconnect hop between clusters / from registers and ports (MegaLAB
  /// row/column interconnect -- the slow resource on APEX 20KE).  Charged
  /// once per operator-to-operator crossing, this is what makes cascades of
  /// operators between registers slow (designs 1, 2, 4) while one registered
  /// operator per stage stays fast (designs 3, 5).
  double t_route_general = 1.90;
  double t_carry = 0.22;         ///< dedicated carry hop (bit to bit)
  double t_carry_gen = 0.30;     ///< data input to carry-out inside an LE
  double t_chain_to_lut = 0.40;  ///< carry-in to the sum LUT of the same LE
  double t_clock_skew = 0.10;    ///< margin added to every register path

  // --- power ---
  double v_dd = 1.8;                  ///< APEX 20KE core voltage (V)
  double c_le_output_pf = 0.05;       ///< intrinsic LE output capacitance (pF)
  double c_route_per_fanout_pf = 2.1; ///< interconnect capacitance per load (pF)
  /// Effective capacitance charged per carry transition.  This aggregates
  /// the dedicated carry line *and* the LE-internal sum/carry logic the
  /// transition re-evaluates, which is why it exceeds a bare wire's value.
  double c_carry_pf = 15.0;
  /// LUT-to-FF connection inside a packed LE (never leaves the cell).
  double c_packed_internal_pf = 0.05;
  double c_clock_per_ff_pf = 0.02;    ///< clock network capacitance per FF (pF)
  double static_mw = 40.0;            ///< quiescent device power (mW)
  /// Interconnect capacitance growth per ns of arrival time: nets deep in a
  /// combinational cloud are routed through a larger placed region, so every
  /// transition charges more metal.  One registered operator per stage keeps
  /// arrivals (and thus wire capacitance) small -- the second mechanism,
  /// beside glitch filtering, behind the pipelined designs' power advantage.
  double c_arrival_slope_per_ns = 0.11;

  /// Calibrated instance (see DESIGN.md: tuned once so design 2 of Table 3
  /// lands near the published numbers; other designs are predictions).
  static const ApexDeviceParams& apex20ke();
};

}  // namespace dwt::fpga
