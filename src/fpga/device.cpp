#include "fpga/device.hpp"

namespace dwt::fpga {

const ApexDeviceParams& ApexDeviceParams::apex20ke() {
  static const ApexDeviceParams params{};
  return params;
}

}  // namespace dwt::fpga
