// Campaign persistence: crash-tolerant checkpoints for long fault-injection
// runs, and the byte-stable merge that folds sharded campaign reports back
// into the exact bytes an unsharded run prints.
//
// Checkpoints are small text files written atomically (write to a sibling
// .tmp, then rename) after every chunk of trials, carrying the summary
// counters, the exact PSNR accumulator (common/exact_acc.hpp) and -- when
// the per-trial list is kept -- the trial records completed so far.  A
// killed run restarted with the same options loads the checkpoint, verifies
// its fingerprint, and continues from the recorded cursor; the finished
// report is byte-identical to an uninterrupted run because every carried
// quantity is exact (integers, double bit patterns, the superaccumulator).
//
// merge_reports() combines per-shard to_json() outputs.  Shard reports
// embed a "shard" object with the exact accumulator and min-PSNR bit
// pattern precisely so the merge never re-rounds: counters add, minima
// min, accumulators add limb-wise, trial lists concatenate in shard order,
// and every static line (design, synthesis costs, cone statistics...) is
// required to be byte-identical across shards and copied verbatim.  The
// result equals the unsharded report byte for byte, for any shard count
// and any argument order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/exact_acc.hpp"
#include "explore/resilience.hpp"

namespace dwt::explore {

/// Mid-run state of one (possibly sharded) campaign, as persisted between
/// chunks.  All fields are exact, so resuming cannot drift.
struct CampaignCheckpoint {
  std::string fingerprint;   ///< must equal the resuming run's fingerprint
  std::uint64_t cursor = 0;  ///< next absolute trial index to execute
  std::uint64_t masked = 0;
  std::uint64_t detected = 0;
  std::uint64_t sdc = 0;
  std::uint64_t corrupted = 0;
  /// Bit pattern of the running min corrupted-trial PSNR (+inf when none).
  std::uint64_t min_psnr_bits = 0;
  common::ExactAcc psnr_acc;  ///< exact sum of corrupted-trial PSNRs
  /// Per-trial records completed so far; empty when the run does not keep
  /// the trial list.
  std::vector<FaultTrial> kept;
};

/// Identity of the byte stream a campaign produces: every option that can
/// change the results participates; pure performance knobs (engine, lanes,
/// threads, optimization level, cone restriction) do not, since the engines
/// are bit-exact -- a checkpoint taken on one engine may resume on another.
[[nodiscard]] std::string campaign_fingerprint(const ResilienceOptions& options);

/// Serializes / parses the checkpoint text format.  parse_checkpoint throws
/// std::runtime_error on any malformed input -- wrong magic, missing or
/// out-of-order fields, a truncated trial list, or a missing end marker --
/// so a torn or corrupted file is rejected rather than silently resumed.
[[nodiscard]] std::string serialize_checkpoint(const CampaignCheckpoint& cp);
[[nodiscard]] CampaignCheckpoint parse_checkpoint(const std::string& text);

/// Atomically replaces `path` with the serialized checkpoint (write a .tmp
/// sibling, fsync-free rename): a crash mid-write leaves the previous
/// checkpoint intact.  Throws std::runtime_error on I/O failure.
void write_checkpoint_atomic(const std::string& path,
                             const CampaignCheckpoint& cp);

/// Loads `path` if it exists; nullopt when the file is absent (a fresh
/// run).  A present-but-invalid file throws via parse_checkpoint.
[[nodiscard]] std::optional<CampaignCheckpoint> load_checkpoint(
    const std::string& path);

/// Merges per-shard campaign reports (each a full to_json() output) into
/// the byte-exact unsharded report.  A single report without a "shard"
/// object passes through verbatim.  Throws std::runtime_error when the
/// inputs are not a complete, consistent shard set: mixed configurations,
/// duplicate or missing shard indices, non-contiguous trial ranges, or any
/// static line differing between shards.  Argument order is irrelevant.
[[nodiscard]] std::string merge_reports(const std::vector<std::string>& reports);

}  // namespace dwt::explore
