#include "explore/campaign_io.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/json_writer.hpp"

namespace dwt::explore {
namespace {

constexpr const char* kMagic = "dwtcampaign-checkpoint v1";

void append_u64_hex(std::string& out, std::uint64_t v) {
  static const char* const digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) out += digits[(v >> (4 * i)) & 0xF];
}

std::uint64_t parse_u64_hex(const std::string& s) {
  if (s.size() != 16) {
    throw std::runtime_error("campaign checkpoint: bad hex field width");
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error("campaign checkpoint: bad hex digit");
    }
  }
  return v;
}

/// Next line of `in`; throws on EOF (every truncation is an error -- the
/// atomic write protocol means a valid file is always complete).
std::string need_line(std::istringstream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(std::string("campaign checkpoint: truncated (") +
                             what + ")");
  }
  return line;
}

/// Parses "<key> <value...>" returning the value; throws when the line does
/// not start with the expected key.
std::string need_field(std::istringstream& in, const std::string& key) {
  const std::string line = need_line(in, key.c_str());
  if (line.size() < key.size() + 1 || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    throw std::runtime_error("campaign checkpoint: expected field '" + key +
                             "'");
  }
  return line.substr(key.size() + 1);
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  if (s.empty() ||
      s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error(std::string("campaign checkpoint: bad number (") +
                             what + ")");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    throw std::runtime_error(std::string("campaign checkpoint: bad number (") +
                             what + ")");
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  std::string mag = s;
  bool neg = false;
  if (!mag.empty() && mag[0] == '-') {
    neg = true;
    mag.erase(0, 1);
  }
  const std::uint64_t v = parse_u64(mag, what);
  return neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
}

}  // namespace

std::string campaign_fingerprint(const ResilienceOptions& options) {
  // Every option that can change the produced bytes; performance knobs
  // (engine, lanes, threads, opt level, cone, chunk size) are deliberately
  // absent -- the engines are bit-exact, so a checkpoint may resume under
  // different performance settings.  keep_trials participates raw: its
  // auto-disable threshold is a pure function of trials/shard fields, which
  // are already fingerprinted.
  std::string fp;
  fp.reserve(96);
  fp += "design=";
  fp += std::to_string(static_cast<int>(options.design));
  if (options.adder.has_value()) {
    // Appended only when set so pre-existing checkpoints (no override)
    // keep their fingerprint bytes.
    fp += ";adder=";
    fp += std::to_string(static_cast<int>(*options.adder));
  }
  fp += ";harden=";
  fp += std::to_string(static_cast<int>(options.harden));
  fp += ";kinds=";
  for (std::size_t i = 0; i < options.kinds.size(); ++i) {
    if (i) fp += ',';
    fp += std::to_string(static_cast<int>(options.kinds[i]));
  }
  fp += ";trials=";
  fp += std::to_string(options.trials);
  fp += ";seed=";
  fp += std::to_string(options.seed);
  fp += ";samples=";
  fp += std::to_string(options.samples);
  fp += ";shards=";
  fp += std::to_string(options.shard_count);
  fp += ";shard=";
  fp += std::to_string(options.shard_index);
  fp += ";keep=";
  fp += options.keep_trials ? '1' : '0';
  return fp;
}

std::string serialize_checkpoint(const CampaignCheckpoint& cp) {
  std::string out;
  out.reserve(256 + 96 * cp.kept.size());
  out += kMagic;
  out += '\n';
  out += "fingerprint " + cp.fingerprint + "\n";
  out += "cursor " + std::to_string(cp.cursor) + "\n";
  out += "masked " + std::to_string(cp.masked) + "\n";
  out += "detected " + std::to_string(cp.detected) + "\n";
  out += "sdc " + std::to_string(cp.sdc) + "\n";
  out += "corrupted " + std::to_string(cp.corrupted) + "\n";
  out += "min_psnr_bits ";
  append_u64_hex(out, cp.min_psnr_bits);
  out += '\n';
  out += "psnr_acc " + cp.psnr_acc.to_hex() + "\n";
  out += "kept " + std::to_string(cp.kept.size()) + "\n";
  for (const FaultTrial& t : cp.kept) {
    out += "trial ";
    out += std::to_string(static_cast<int>(t.fault.kind));
    out += ' ';
    out += std::to_string(t.fault.net);
    out += ' ';
    out += std::to_string(t.fault.cycle);
    out += ' ';
    out += t.fault.glitch_value ? '1' : '0';
    out += ' ';
    out += std::to_string(static_cast<int>(t.outcome));
    out += ' ';
    out += std::to_string(t.max_abs_error);
    out += ' ';
    append_u64_hex(out, std::bit_cast<std::uint64_t>(t.psnr_db));
    out += ' ';
    // The net name goes last: it is the only field that could contain
    // spaces, so the parser takes the rest of the line.
    out += t.net_name;
    out += '\n';
  }
  out += "end\n";
  return out;
}

CampaignCheckpoint parse_checkpoint(const std::string& text) {
  std::istringstream in(text);
  if (need_line(in, "magic") != kMagic) {
    throw std::runtime_error("campaign checkpoint: bad magic line");
  }
  CampaignCheckpoint cp;
  cp.fingerprint = need_field(in, "fingerprint");
  cp.cursor = parse_u64(need_field(in, "cursor"), "cursor");
  cp.masked = parse_u64(need_field(in, "masked"), "masked");
  cp.detected = parse_u64(need_field(in, "detected"), "detected");
  cp.sdc = parse_u64(need_field(in, "sdc"), "sdc");
  cp.corrupted = parse_u64(need_field(in, "corrupted"), "corrupted");
  cp.min_psnr_bits = parse_u64_hex(need_field(in, "min_psnr_bits"));
  cp.psnr_acc = common::ExactAcc::from_hex(need_field(in, "psnr_acc"));
  const std::uint64_t kept = parse_u64(need_field(in, "kept"), "kept");
  cp.kept.reserve(kept);
  for (std::uint64_t i = 0; i < kept; ++i) {
    std::istringstream line(need_line(in, "trial"));
    std::string tag;
    std::string kind;
    std::string net;
    std::string cycle;
    std::string glitch;
    std::string outcome;
    std::string max_err;
    std::string psnr;
    if (!(line >> tag >> kind >> net >> cycle >> glitch >> outcome >>
          max_err >> psnr) ||
        tag != "trial") {
      throw std::runtime_error("campaign checkpoint: malformed trial line");
    }
    FaultTrial t;
    const std::uint64_t k = parse_u64(kind, "trial kind");
    if (k > 3) {
      throw std::runtime_error("campaign checkpoint: bad fault kind");
    }
    t.fault.kind = static_cast<rtl::FaultKind>(k);
    t.fault.net = static_cast<rtl::NetId>(parse_u64(net, "trial net"));
    t.fault.cycle = parse_u64(cycle, "trial cycle");
    if (glitch != "0" && glitch != "1") {
      throw std::runtime_error("campaign checkpoint: bad glitch value");
    }
    t.fault.glitch_value = glitch == "1";
    const std::uint64_t o = parse_u64(outcome, "trial outcome");
    if (o > 2) {
      throw std::runtime_error("campaign checkpoint: bad outcome");
    }
    t.outcome = static_cast<FaultOutcome>(o);
    t.max_abs_error = parse_i64(max_err, "trial max_abs_error");
    t.psnr_db = std::bit_cast<double>(parse_u64_hex(psnr));
    std::string name;
    std::getline(line, name);
    if (!name.empty() && name[0] == ' ') name.erase(0, 1);
    t.net_name = std::move(name);
    cp.kept.push_back(std::move(t));
  }
  if (need_line(in, "end") != "end") {
    throw std::runtime_error("campaign checkpoint: missing end marker");
  }
  return cp;
}

void write_checkpoint_atomic(const std::string& path,
                             const CampaignCheckpoint& cp) {
  const std::string tmp = path + ".tmp";
  const std::string text = serialize_checkpoint(cp);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("campaign checkpoint: cannot open " + tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("campaign checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("campaign checkpoint: rename failed for " + path);
  }
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("campaign checkpoint: read failed for " + path);
  }
  return parse_checkpoint(buf.str());
}

namespace {

// ---------------------------------------------------------------------------
// Report merge
// ---------------------------------------------------------------------------

/// Placeholder tokens standing in for the recomputed lines in the static
/// skeleton, so the skeletons of all shards can be compared byte-for-byte.
constexpr const char* kTokTrials = "\x01trials";
constexpr const char* kTokOutcomes = "\x01outcomes";
constexpr const char* kTokSdcRate = "\x01sdc_rate";
constexpr const char* kTokCorrupted = "\x01corrupted";
constexpr const char* kTokMin = "\x01min";
constexpr const char* kTokMean = "\x01mean";
constexpr const char* kTokShard = "\x01shard";
constexpr const char* kTokTrialList = "\x01trial_list";
constexpr const char* kTokKept = "\x01kept";

bool starts_with(const std::string& s, const char* prefix) {
  return s.compare(0, std::char_traits<char>::length(prefix), prefix) == 0;
}

std::uint64_t scan_u64(const std::string& line, const std::string& key,
                       const char* what) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    throw std::runtime_error(std::string("merge_reports: missing ") + what);
  }
  std::size_t i = pos + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') {
    throw std::runtime_error(std::string("merge_reports: bad number for ") +
                             what);
  }
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return v;
}

std::string scan_string(const std::string& line, const std::string& key,
                        const char* what) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    throw std::runtime_error(std::string("merge_reports: missing ") + what);
  }
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) {
    throw std::runtime_error(std::string("merge_reports: unterminated ") +
                             what);
  }
  return line.substr(start, end - start);
}

/// One shard report decomposed into its static skeleton (with placeholder
/// tokens), the recomputed values, and the trial-list entries.
struct ShardDoc {
  std::vector<std::string> skeleton;
  std::uint64_t trials = 0;
  std::uint64_t masked = 0;
  std::uint64_t detected = 0;
  std::uint64_t sdc = 0;
  std::uint64_t corrupted = 0;
  bool has_shard = false;
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t min_bits = 0;
  common::ExactAcc acc;
  std::vector<std::string> entries;  ///< trial objects, comma-free
};

ShardDoc parse_report(const std::string& text) {
  ShardDoc doc;
  std::vector<std::string> lines;
  {
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) {
        lines.push_back(text.substr(pos));
        break;
      }
      lines.push_back(text.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  bool saw_list = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (starts_with(line, "  \"trials\": ")) {
      doc.trials = scan_u64(line, "trials", "trials");
      doc.skeleton.emplace_back(kTokTrials);
    } else if (starts_with(line, "  \"outcomes\": ")) {
      doc.masked = scan_u64(line, "masked", "outcomes.masked");
      doc.detected = scan_u64(line, "detected", "outcomes.detected");
      doc.sdc = scan_u64(line, "sdc", "outcomes.sdc");
      doc.skeleton.emplace_back(kTokOutcomes);
    } else if (starts_with(line, "  \"sdc_rate\": ")) {
      doc.skeleton.emplace_back(kTokSdcRate);
    } else if (starts_with(line, "  \"corrupted_trials\": ")) {
      doc.corrupted = scan_u64(line, "corrupted_trials", "corrupted_trials");
      doc.skeleton.emplace_back(kTokCorrupted);
    } else if (starts_with(line, "  \"min_psnr_db\": ")) {
      doc.skeleton.emplace_back(kTokMin);
    } else if (starts_with(line, "  \"mean_psnr_db\": ")) {
      doc.skeleton.emplace_back(kTokMean);
    } else if (starts_with(line, "  \"shard\": ")) {
      doc.has_shard = true;
      doc.index = scan_u64(line, "index", "shard.index");
      doc.count = scan_u64(line, "count", "shard.count");
      doc.begin = scan_u64(line, "trial_begin", "shard.trial_begin");
      doc.end = scan_u64(line, "trial_end", "shard.trial_end");
      doc.min_bits =
          parse_u64_hex(scan_string(line, "min_psnr_bits", "shard.min_psnr_bits"));
      doc.acc = common::ExactAcc::from_hex(
          scan_string(line, "psnr_acc", "shard.psnr_acc"));
      doc.skeleton.emplace_back(kTokShard);
    } else if (starts_with(line, "  \"trials_kept\": ")) {
      doc.skeleton.emplace_back(kTokKept);
    } else if (starts_with(line, "  \"trial_list\": [")) {
      saw_list = true;
      doc.skeleton.emplace_back(kTokTrialList);
      if (line == "  \"trial_list\": [],") continue;  // empty, single line
      if (line != "  \"trial_list\": [") {
        throw std::runtime_error("merge_reports: malformed trial_list open");
      }
      for (++i;; ++i) {
        if (i >= lines.size()) {
          throw std::runtime_error(
              "merge_reports: unterminated trial_list");
        }
        if (lines[i] == "  ],") break;
        std::string entry = lines[i];
        if (entry.size() < 4 || entry.compare(0, 4, "    ") != 0) {
          throw std::runtime_error("merge_reports: malformed trial entry");
        }
        entry.erase(0, 4);
        if (!entry.empty() && entry.back() == ',') entry.pop_back();
        doc.entries.push_back(std::move(entry));
      }
    } else {
      doc.skeleton.push_back(line);
    }
  }
  if (!saw_list) {
    throw std::runtime_error("merge_reports: input is not a campaign report");
  }
  return doc;
}

}  // namespace

std::string merge_reports(const std::vector<std::string>& reports) {
  if (reports.empty()) {
    throw std::runtime_error("merge_reports: no reports given");
  }
  std::vector<ShardDoc> docs;
  docs.reserve(reports.size());
  for (const std::string& r : reports) docs.push_back(parse_report(r));

  // A lone unsharded report (no shard object) is already final.
  if (docs.size() == 1 && !docs[0].has_shard) return reports[0];

  for (const ShardDoc& d : docs) {
    if (!d.has_shard) {
      throw std::runtime_error(
          "merge_reports: mixing sharded and unsharded reports");
    }
    if (d.count != docs.size()) {
      throw std::runtime_error(
          "merge_reports: incomplete shard set (count mismatch)");
    }
  }
  std::vector<const ShardDoc*> order(docs.size());
  for (const ShardDoc& d : docs) {
    if (d.index >= docs.size()) {
      throw std::runtime_error("merge_reports: shard index out of range");
    }
    if (order[d.index] != nullptr) {
      throw std::runtime_error("merge_reports: duplicate shard index");
    }
    order[d.index] = &d;
  }
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i]->begin != expect || order[i]->end < order[i]->begin) {
      throw std::runtime_error(
          "merge_reports: shard trial ranges are not contiguous");
    }
    if (order[i]->end - order[i]->begin != order[i]->trials) {
      throw std::runtime_error(
          "merge_reports: shard trial count disagrees with its range");
    }
    expect = order[i]->end;
  }
  // Every static (non-recomputed) line must agree byte-for-byte: the shards
  // ran the same design, synthesis, cone statistics and schedule.
  for (std::size_t i = 1; i < docs.size(); ++i) {
    if (docs[i].skeleton != docs[0].skeleton) {
      throw std::runtime_error(
          "merge_reports: reports disagree on a non-summary line "
          "(different campaigns?)");
    }
  }

  const std::uint64_t total = expect;
  std::uint64_t masked = 0;
  std::uint64_t detected = 0;
  std::uint64_t sdc = 0;
  std::uint64_t corrupted = 0;
  double min_psnr = std::numeric_limits<double>::infinity();
  common::ExactAcc acc;
  std::size_t kept = 0;
  for (const ShardDoc* d : order) {
    masked += d->masked;
    detected += d->detected;
    sdc += d->sdc;
    corrupted += d->corrupted;
    min_psnr = std::min(min_psnr, std::bit_cast<double>(d->min_bits));
    acc.add(d->acc);
    kept += d->entries.size();
  }

  std::string out;
  out.reserve(reports[0].size() * reports.size());
  bool first_line = true;
  const auto emit = [&](const std::string& line) {
    if (!first_line) out += '\n';
    first_line = false;
    out += line;
  };
  for (const std::string& line : docs[0].skeleton) {
    if (line == kTokTrials) {
      emit("  \"trials\": " + std::to_string(total) + ",");
    } else if (line == kTokOutcomes) {
      emit("  \"outcomes\": {\"masked\": " + std::to_string(masked) +
           ", \"detected\": " + std::to_string(detected) +
           ", \"sdc\": " + std::to_string(sdc) + "},");
    } else if (line == kTokSdcRate) {
      std::string l = "  \"sdc_rate\": ";
      common::append_json_fixed(
          l, total == 0 ? 0.0
                        : static_cast<double>(sdc) / static_cast<double>(total));
      emit(l + ",");
    } else if (line == kTokCorrupted) {
      emit("  \"corrupted_trials\": " + std::to_string(corrupted) + ",");
    } else if (line == kTokMin) {
      std::string l = "  \"min_psnr_db\": ";
      common::append_json_fixed(
          l, corrupted > 0 ? min_psnr
                           : std::numeric_limits<double>::infinity());
      emit(l + ",");
    } else if (line == kTokMean) {
      std::string l = "  \"mean_psnr_db\": ";
      common::append_json_fixed(
          l, corrupted > 0 ? acc.round() / static_cast<double>(corrupted)
                           : std::numeric_limits<double>::infinity());
      emit(l + ",");
    } else if (line == kTokShard) {
      // Dropped: the merged report is the unsharded report.
    } else if (line == kTokTrialList) {
      if (kept == 0) {
        emit("  \"trial_list\": [],");
      } else {
        emit("  \"trial_list\": [");
        std::size_t n = 0;
        for (const ShardDoc* d : order) {
          for (const std::string& entry : d->entries) {
            ++n;
            emit("    " + entry + (n == kept ? "" : ","));
          }
        }
        emit("  ],");
      }
    } else if (line == kTokKept) {
      emit("  \"trials_kept\": " + std::to_string(kept));
    } else {
      emit(line);
    }
  }
  return out;
}

}  // namespace dwt::explore
