#include "explore/tradeoffs.hpp"

#include <cmath>
#include <stdexcept>

#include "core/registry.hpp"
#include "dsp/image_gen.hpp"

namespace dwt::explore {
namespace {

struct Metrics {
  double les;
  double fmax;
  double power;
};

TradeoffAnalysis analyze(const std::vector<Metrics>& m) {
  if (m.size() != 5) {
    throw std::invalid_argument("analyze_tradeoffs: need the five designs");
  }
  TradeoffAnalysis a;
  const Metrics &d1 [[maybe_unused]] = m[0], &d2 = m[1], &d3 = m[2],
                &d4 = m[3], &d5 = m[4];
  a.pipelined_area_ratio_behavioral = d3.les / d2.les;
  a.pipelined_area_ratio_structural = d5.les / d4.les;
  a.pipelined_fmax_ratio_behavioral = d3.fmax / d2.fmax;
  a.pipelined_fmax_ratio_structural = d5.fmax / d4.fmax;
  a.pipelined_power_ratio_behavioral = d3.power / d2.power;
  a.pipelined_power_ratio_structural = d5.power / d4.power;
  a.structural_area_ratio_flat = d4.les / d2.les;
  a.structural_area_ratio_pipelined = d5.les / d3.les;
  a.structural_fmax_ratio_pipelined = d5.fmax / d3.fmax;
  return a;
}

}  // namespace

TradeoffAnalysis analyze_tradeoffs(const std::vector<DesignEvaluation>& evals) {
  std::vector<Metrics> m;
  m.reserve(evals.size());
  for (const DesignEvaluation& e : evals) {
    m.push_back({static_cast<double>(e.report.logic_elements),
                 e.report.fmax_mhz, e.report.power_mw});
  }
  return analyze(m);
}

TradeoffAnalysis paper_tradeoffs() {
  std::vector<Metrics> m;
  for (const hw::PaperTable3Row& r : hw::paper_table3()) {
    m.push_back({static_cast<double>(r.area_les), r.fmax_mhz,
                 r.power_mw_15mhz});
  }
  return analyze(m);
}

std::vector<BackendProfile> profile_backends(std::size_t samples,
                                             std::uint64_t seed) {
  if (samples < 8 || samples % 2 != 0) {
    throw std::invalid_argument(
        "profile_backends: samples must be even and >= 8");
  }
  // Image-derived stimulus in the signed 8-bit input domain, matching the
  // resilience campaigns' workload.
  const std::size_t width = 64;
  const std::size_t rows = (samples + width - 1) / width;
  const dsp::Image img = dsp::make_still_tone_image(width, rows, seed);
  std::vector<std::int64_t> stimulus;
  stimulus.reserve(samples);
  for (std::size_t y = 0; y < rows && stimulus.size() < samples; ++y) {
    for (std::size_t x = 0; x < width && stimulus.size() < samples; ++x) {
      stimulus.push_back(
          static_cast<std::int64_t>(std::llround(img.at(x, y))) - 128);
    }
  }

  const core::ExecutionBackend* reference =
      core::find_backend("software-fixed");
  if (reference == nullptr) {
    throw std::logic_error("profile_backends: no software-fixed backend");
  }
  const hw::StreamResult golden =
      reference->stream(core::BackendRequest{}, stimulus);

  std::vector<BackendProfile> profiles;
  for (const core::ExecutionBackend* backend : core::all_backends()) {
    BackendProfile p;
    p.backend = backend->name();
    p.description = backend->description();
    const core::BackendCaps caps = backend->caps();
    p.gate_level = caps.gate_level;
    p.cycle_accurate = caps.cycle_accurate;
    p.bit_exact = caps.bit_exact;
    p.matches_reference = true;
    for (const hw::DesignSpec& spec : hw::all_designs()) {
      core::BackendRequest req;
      req.design = spec.id;
      const hw::StreamResult r = backend->stream(req, stimulus);
      p.stream_cycles.push_back(r.cycles);
      p.matches_reference =
          p.matches_reference && r.low == golden.low && r.high == golden.high;
    }
    profiles.push_back(std::move(p));
  }
  return profiles;
}

std::vector<RatioClaim> TradeoffAnalysis::claims() const {
  const TradeoffAnalysis p = paper_tradeoffs();
  return {
      {"pipelining area cost (behavioral, D3/D2)",
       p.pipelined_area_ratio_behavioral, pipelined_area_ratio_behavioral},
      {"pipelining area cost (structural, D5/D4)",
       p.pipelined_area_ratio_structural, pipelined_area_ratio_structural},
      {"pipelining fmax gain (behavioral, D3/D2)",
       p.pipelined_fmax_ratio_behavioral, pipelined_fmax_ratio_behavioral},
      {"pipelining fmax gain (structural, D5/D4)",
       p.pipelined_fmax_ratio_structural, pipelined_fmax_ratio_structural},
      {"pipelining power ratio (behavioral, D3/D2)",
       p.pipelined_power_ratio_behavioral, pipelined_power_ratio_behavioral},
      {"pipelining power ratio (structural, D5/D4)",
       p.pipelined_power_ratio_structural, pipelined_power_ratio_structural},
      {"structural area overhead (D4/D2)", p.structural_area_ratio_flat,
       structural_area_ratio_flat},
      {"structural area overhead (pipelined, D5/D3)",
       p.structural_area_ratio_pipelined, structural_area_ratio_pipelined},
      {"structural fmax ratio (pipelined, D5/D3)",
       p.structural_fmax_ratio_pipelined, structural_fmax_ratio_pipelined},
  };
}

}  // namespace dwt::explore
