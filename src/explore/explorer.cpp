#include "explore/explorer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "dsp/image_gen.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/simplify.hpp"

namespace dwt::explore {

Explorer::Explorer(ExplorerOptions options) : options_(std::move(options)) {
  if (options_.reference_mhz <= 0 || options_.workload_samples < 64 ||
      options_.workload_samples % 2 != 0) {
    throw std::invalid_argument("Explorer: bad options");
  }
}

std::vector<std::int64_t> Explorer::workload_stream() const {
  std::vector<std::int64_t> samples;
  samples.reserve(options_.workload_samples);
  if (options_.workload == Workload::kStillToneImage) {
    // Row-major scan of a synthetic still-tone image, DC level shifted to
    // the signed 8-bit domain the cores consume.
    const std::size_t width = 128;
    const std::size_t rows =
        (options_.workload_samples + width - 1) / width;
    const dsp::Image img = dsp::make_still_tone_image(width, rows, options_.seed);
    for (std::size_t y = 0; y < rows; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        if (samples.size() == options_.workload_samples) break;
        samples.push_back(
            static_cast<std::int64_t>(std::llround(img.at(x, y))) - 128);
      }
    }
  } else {
    common::Rng rng(options_.seed);
    for (std::size_t i = 0; i < options_.workload_samples; ++i) {
      samples.push_back(rng.uniform(-128, 127));
    }
  }
  return samples;
}

DesignEvaluation Explorer::evaluate(const hw::DesignSpec& spec) const {
  DesignEvaluation eval;
  eval.spec = spec;

  hw::BuiltDatapath built = hw::build_lifting_datapath(spec.config);
  eval.info = built.info;

  auto simplified =
      std::make_shared<rtl::Netlist>(rtl::simplify(built.netlist));
  eval.netlist = simplified;

  // Re-bind the streaming ports on the simplified netlist.
  hw::BuiltDatapath dp;
  dp.netlist = rtl::Netlist(*simplified);  // simulation copy (cheap, POD-ish)
  dp.in_even = dp.netlist.find_input_bus("in_even");
  dp.in_odd = dp.netlist.find_input_bus("in_odd");
  dp.out_low = dp.netlist.output("low");
  dp.out_high = dp.netlist.output("high");
  dp.info = built.info;
  dp.config = built.config;

  eval.netlist_stats = rtl::compute_stats(*simplified);
  eval.mapped = fpga::map_to_apex(*simplified);

  fpga::TimingAnalyzer sta(eval.mapped, options_.device);
  eval.timing = sta.analyze();

  // Switching activity: stream the workload through the mapped-netlist
  // unit-delay model (LUT outputs filter cone-internal glitches the way a
  // real LE does).
  {
    fpga::MappedActivitySim sim(eval.mapped);
    const std::vector<std::int64_t> samples = workload_stream();
    (void)hw::run_stream_mapped(dp, sim, samples);
    eval.activity = sim.stats();
  }

  const fpga::PowerBreakdown pb = fpga::estimate_power(
      eval.mapped, eval.activity, options_.device, options_.reference_mhz);

  fpga::SynthesisReport& r = eval.report;
  r.name = spec.name;
  r.logic_elements = eval.mapped.le_count();
  r.fmax_mhz = eval.timing.fmax_mhz;
  r.power_mw = pb.total_mw();
  r.reference_mhz = options_.reference_mhz;
  // The paper counts pipeline stages as the input-to-output latency.
  r.pipeline_stages = eval.info.latency;
  r.chain_les = eval.mapped.chain_le_count();
  r.lut_les = eval.mapped.lut_le_count();
  r.ff_count = eval.mapped.ff_count();
  r.critical_path_ns = eval.timing.critical_path_ns;
  r.mean_activity = fpga::mean_activity(eval.mapped, eval.activity);
  r.power_breakdown = pb;
  return eval;
}

std::vector<DesignEvaluation> Explorer::evaluate_all() const {
  std::vector<DesignEvaluation> out;
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    out.push_back(evaluate(spec));
  }
  return out;
}

fpga::PowerBreakdown DesignEvaluation::power_at(
    double f_mhz, const fpga::ApexDeviceParams& device) const {
  return fpga::estimate_power(mapped, activity, device, f_mhz);
}

}  // namespace dwt::explore
