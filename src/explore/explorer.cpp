#include "explore/explorer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/artifact_cache.hpp"
#include "dsp/image_gen.hpp"
#include "hw/stream_runner.hpp"

namespace dwt::explore {

Explorer::Explorer(ExplorerOptions options) : options_(std::move(options)) {
  if (options_.reference_mhz <= 0 || options_.workload_samples < 64 ||
      options_.workload_samples % 2 != 0) {
    throw std::invalid_argument("Explorer: bad options");
  }
}

std::vector<std::int64_t> Explorer::workload_stream() const {
  std::vector<std::int64_t> samples;
  samples.reserve(options_.workload_samples);
  if (options_.workload == Workload::kStillToneImage) {
    // Row-major scan of a synthetic still-tone image, DC level shifted to
    // the signed 8-bit domain the cores consume.
    const std::size_t width = 128;
    const std::size_t rows =
        (options_.workload_samples + width - 1) / width;
    const dsp::Image img = dsp::make_still_tone_image(width, rows, options_.seed);
    for (std::size_t y = 0; y < rows; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        if (samples.size() == options_.workload_samples) break;
        samples.push_back(
            static_cast<std::int64_t>(std::llround(img.at(x, y))) - 128);
      }
    }
  } else {
    common::Rng rng(options_.seed);
    for (std::size_t i = 0; i < options_.workload_samples; ++i) {
      samples.push_back(rng.uniform(-128, 127));
    }
  }
  return samples;
}

DesignEvaluation Explorer::evaluate(const hw::DesignSpec& spec) const {
  DesignEvaluation eval;
  eval.spec = spec;

  // Elaborate + simplify + APEX-map through the shared artifact cache (one
  // build per design per process).  eval.netlist aliases the cached artifact
  // and keeps it alive: eval.mapped is a copy of the cached mapping whose
  // `source` pointer targets that very netlist, so an evaluation stays
  // self-contained as long as its netlist pointer is held.
  const std::shared_ptr<const core::MappedDesign> md =
      core::ArtifactCache::instance().mapped(spec.config);
  const hw::BuiltDatapath& dp = md->dp;
  eval.info = dp.info;
  eval.netlist = std::shared_ptr<const rtl::Netlist>(md, &md->dp.netlist);
  eval.netlist_stats = rtl::compute_stats(dp.netlist);
  eval.mapped = md->mapped;

  fpga::TimingAnalyzer sta(eval.mapped, options_.device);
  eval.timing = sta.analyze();

  // Switching activity: stream the workload through the mapped-netlist
  // unit-delay model (LUT outputs filter cone-internal glitches the way a
  // real LE does).
  {
    fpga::MappedActivitySim sim(eval.mapped);
    const std::vector<std::int64_t> samples = workload_stream();
    (void)hw::run_stream_mapped(dp, sim, samples);
    eval.activity = sim.stats();
  }

  const fpga::PowerBreakdown pb = fpga::estimate_power(
      eval.mapped, eval.activity, options_.device, options_.reference_mhz);

  fpga::SynthesisReport& r = eval.report;
  r.name = spec.name;
  r.logic_elements = eval.mapped.le_count();
  r.fmax_mhz = eval.timing.fmax_mhz;
  r.power_mw = pb.total_mw();
  r.reference_mhz = options_.reference_mhz;
  // The paper counts pipeline stages as the input-to-output latency.
  r.pipeline_stages = eval.info.latency;
  r.chain_les = eval.mapped.chain_le_count();
  r.lut_les = eval.mapped.lut_le_count();
  r.ff_count = eval.mapped.ff_count();
  r.critical_path_ns = eval.timing.critical_path_ns;
  r.mean_activity = fpga::mean_activity(eval.mapped, eval.activity);
  r.power_breakdown = pb;
  return eval;
}

std::vector<DesignEvaluation> Explorer::evaluate_all() const {
  std::vector<DesignEvaluation> out;
  for (const hw::DesignSpec& spec : hw::all_designs()) {
    out.push_back(evaluate(spec));
  }
  return out;
}

std::vector<DesignEvaluation> Explorer::evaluate_adder_variants() const {
  std::vector<DesignEvaluation> out;
  for (const hw::DesignSpec& spec : hw::adder_variant_designs()) {
    out.push_back(evaluate(spec));
  }
  return out;
}

fpga::PowerBreakdown DesignEvaluation::power_at(
    double f_mhz, const fpga::ApexDeviceParams& device) const {
  return fpga::estimate_power(mapped, activity, device, f_mhz);
}

}  // namespace dwt::explore
