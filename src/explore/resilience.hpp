// Resilience campaign runner: streams an image-derived workload through a
// design (optionally hardened) while injecting faults, classifies each trial
// as masked / detected / silent data corruption, measures the PSNR
// degradation of the coefficient stream, and prices the hardening through
// the same APEX mapper + static-timing machinery as paper Table 3 -- adding
// a resilience axis to the area/throughput/power trade-off space.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/exact_acc.hpp"
#include "explore/pareto.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/fault.hpp"
#include "rtl/harden.hpp"

namespace dwt::explore {

/// Execution backend for a campaign.  Both engines are bit-exact: identical
/// options produce identical CampaignResults (and identical JSON) on either,
/// which the test suite asserts.  The compiled engine packs 64 fault trials
/// into one bit-parallel pass and shards batches across a worker pool.
enum class CampaignEngine {
  kInterpreted,  ///< scalar rtl::Simulator + rtl::FaultInjector, one trial at a time
  kCompiled,     ///< rtl::compiled batch engine, 64 trials per tape pass
};

[[nodiscard]] const char* to_string(CampaignEngine e);

/// core registry name of the backend a campaign engine runs on
/// ("rtl-interpreted" / "rtl-compiled").
[[nodiscard]] const char* backend_name(CampaignEngine e);

/// Inverse of backend_name: maps a registry backend name onto the campaign
/// engine that uses it.  nullopt for every other backend (campaigns inject
/// faults at netlist granularity, so only the gate-level rtl engines apply).
[[nodiscard]] std::optional<CampaignEngine> engine_from_backend(
    std::string_view name);

struct ResilienceOptions {
  hw::DesignId design = hw::DesignId::kDesign1;
  /// Adder-architecture override for the design's datapath (the
  /// (design x adder) sweep axis).  The fault space follows the netlist --
  /// prefix adders expose different nets than carry chains -- so campaigns
  /// on different adders draw different schedules; the outcome
  /// classification machinery is architecture-agnostic.  nullopt keeps the
  /// paper realization (and the paper's report bytes).
  std::optional<rtl::AdderArch> adder;
  std::vector<rtl::FaultKind> kinds = {rtl::FaultKind::kSeuFlip};
  std::size_t trials = 100;
  std::uint64_t seed = 2005;
  rtl::HardeningStyle harden = rtl::HardeningStyle::kNone;
  /// Even number of image-derived samples streamed per trial.
  std::size_t samples = 64;
  /// Keep every per-trial record in CampaignResult::trials (the summary
  /// counters are always filled).
  bool keep_trials = true;
  CampaignEngine engine = CampaignEngine::kCompiled;
  /// Worker threads for the compiled engine's batch shards; 0 = one per
  /// hardware thread.  Ignored by the interpreted engine.  Results are
  /// deterministic regardless of the thread count.
  unsigned threads = 0;
  /// Fault trials packed per compiled tape pass: 64, 128 or 256 (lane-block
  /// width 1, 2 or 4 state words per slot).  Ignored by the interpreted
  /// engine.  Classification is per-trial, so results -- and the JSON
  /// report -- are byte-identical at every lane count.
  unsigned lanes = 256;
  /// Tape optimization level for the compiled engine.  kFull is clamped to
  /// kSafe: fault overlays pin individual nets, which needs the
  /// fault-overlay-safe slot mapping (see rtl/compiled/opt/passes.hpp).
  rtl::compiled::OptLevel opt_level = rtl::compiled::OptLevel::kSafe;
  /// Execution tier for the compiled engine's tape walks (kAuto = fastest
  /// the host supports; DWT_EXEC_TIER overrides).  Force-pinned settles and
  /// cone-restricted ranges always run a portable tier regardless, so this
  /// is purely a throughput knob: results -- and the JSON report -- are
  /// byte-identical at every setting, and it is deliberately absent from
  /// the checkpoint fingerprint like the other performance knobs.  Ignored
  /// by the interpreted engine.
  rtl::compiled::ExecTier exec_tier = rtl::compiled::ExecTier::kAuto;
  /// Cone-restricted incremental re-simulation for the compiled engine:
  /// each batch settles only the union fan-out cone of its faults against
  /// the recorded fault-free trace (rtl/compiled/cone_session.hpp).
  /// Bit-exact with the full-tape path -- results and JSON are
  /// byte-identical either way -- so this is purely a throughput knob.
  /// Ignored by the interpreted engine; auto-disabled (with a stderr note)
  /// when the golden trace would exceed the in-memory budget.
  bool cone = true;
  /// Shard this campaign across `shard_count` independent runs, executing
  /// only shard `shard_index`'s contiguous slice of the trial schedule.
  /// Every shard re-draws the full schedule from `seed`, so the slices
  /// partition exactly the trials an unsharded run executes and the merged
  /// shard reports (campaign_io.hpp) reproduce the unsharded report byte
  /// for byte.
  unsigned shard_count = 1;
  unsigned shard_index = 0;
  /// When non-empty, checkpoint progress to this file after every chunk of
  /// trials (atomic write-then-rename); an existing valid checkpoint is
  /// resumed, making campaigns crash-tolerant with byte-identical output.
  std::string checkpoint_file;
  /// Trials per execution chunk (summary fold + checkpoint cadence);
  /// 0 = default (8192).  Chunking bounds memory: only one chunk of trial
  /// records is in flight at a time.
  std::size_t checkpoint_every = 0;
  /// Test hook: invoked after each checkpoint write with the number of
  /// trials completed so far in this shard's range.  May throw to simulate
  /// a crash between chunks.
  std::function<void(std::size_t)> checkpoint_hook;
};

enum class FaultOutcome {
  kMasked,            ///< golden output, no error flag
  kDetected,          ///< error flag raised (output may or may not differ)
  kSilentCorruption,  ///< output differs, no error flag
};

[[nodiscard]] const char* to_string(FaultOutcome o);

struct FaultTrial {
  rtl::Fault fault;
  std::string net_name;
  FaultOutcome outcome = FaultOutcome::kMasked;
  /// PSNR (dB) of the corrupted coefficient stream against golden; +inf when
  /// bit-identical.
  double psnr_db = 0.0;
  std::int64_t max_abs_error = 0;
};

/// Area/f_max of one netlist through simplify -> APEX map -> STA.
struct SynthesisCost {
  std::size_t logic_elements = 0;
  std::size_t ff_count = 0;
  double fmax_mhz = 0.0;
};

/// Static fan-out-cone statistics of the campaign's fault schedule over the
/// fault-overlay-safe tape.  Computed from the ConeIndex and the full drawn
/// schedule -- never from runtime measurements -- so the block is identical
/// on both engines, at every lane/thread/opt knob, with the restriction on
/// or off, and in every shard of a sharded run.
struct ConeStats {
  std::size_t instructions = 0;  ///< tape length (cone fraction denominator)
  /// Mean cone-interval fraction over all slots with a non-empty cone.
  double mean_span_fraction = 0.0;
  /// Mean cone-interval fraction over the campaign's drawn faults.
  double schedule_mean_cone_fraction = 0.0;
  /// Tape instructions a full-tape run of the whole schedule executes, and
  /// what an ideal cone-restricted run executes (post-injection cycles over
  /// each fault's cone interval); the difference is the instructions the
  /// restriction skips.
  std::uint64_t instructions_full = 0;
  std::uint64_t instructions_cone = 0;
};

struct CampaignResult {
  hw::DesignSpec spec;
  rtl::HardeningStyle harden = rtl::HardeningStyle::kNone;
  rtl::HardeningReport harden_report;
  SynthesisCost baseline;  ///< unhardened design
  SynthesisCost hardened;  ///< == baseline when harden == kNone
  std::size_t trials_run = 0;
  std::size_t masked = 0;
  std::size_t detected = 0;
  std::size_t sdc = 0;
  /// Over the corrupted (non-golden-output) trials; 0 when none corrupted.
  double min_psnr_db = 0.0;
  double mean_psnr_db = 0.0;
  std::size_t corrupted = 0;
  std::uint64_t seed = 0;
  std::size_t samples = 0;
  std::vector<rtl::FaultKind> kinds;
  std::vector<FaultTrial> trials;
  ConeStats cone;
  /// Sharding identity of this result (count 1 = unsharded) and the
  /// absolute [trial_begin, trial_end) slice of the schedule it executed.
  unsigned shard_count = 1;
  unsigned shard_index = 0;
  std::size_t trial_begin = 0;
  std::size_t trial_end = 0;
  /// Exact sum of the corrupted trials' PSNRs; mean_psnr_db is its
  /// correctly-rounded value over `corrupted`, and shard reports serialize
  /// it so merges never re-round.
  common::ExactAcc psnr_acc;

  [[nodiscard]] double sdc_rate() const {
    return trials_run == 0
               ? 0.0
               : static_cast<double>(sdc) / static_cast<double>(trials_run);
  }
};

/// Runs the campaign.  Deterministic: identical options produce an identical
/// CampaignResult (and identical to_json serialization).
[[nodiscard]] CampaignResult run_campaign(const ResilienceOptions& options);

/// Projects a campaign onto the trade-off space: hardened area/period plus
/// the measured silent-corruption rate (power is not measured by campaigns
/// and stays 0).
[[nodiscard]] TradeoffPoint resilience_point(const CampaignResult& r);

/// Deterministic JSON report (stable key order, fixed float formatting).
[[nodiscard]] std::string to_json(const CampaignResult& r);

}  // namespace dwt::explore
