// Resilience campaign runner: streams an image-derived workload through a
// design (optionally hardened) while injecting faults, classifies each trial
// as masked / detected / silent data corruption, measures the PSNR
// degradation of the coefficient stream, and prices the hardening through
// the same APEX mapper + static-timing machinery as paper Table 3 -- adding
// a resilience axis to the area/throughput/power trade-off space.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "explore/pareto.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/fault.hpp"
#include "rtl/harden.hpp"

namespace dwt::explore {

/// Execution backend for a campaign.  Both engines are bit-exact: identical
/// options produce identical CampaignResults (and identical JSON) on either,
/// which the test suite asserts.  The compiled engine packs 64 fault trials
/// into one bit-parallel pass and shards batches across a worker pool.
enum class CampaignEngine {
  kInterpreted,  ///< scalar rtl::Simulator + rtl::FaultInjector, one trial at a time
  kCompiled,     ///< rtl::compiled batch engine, 64 trials per tape pass
};

[[nodiscard]] const char* to_string(CampaignEngine e);

/// core registry name of the backend a campaign engine runs on
/// ("rtl-interpreted" / "rtl-compiled").
[[nodiscard]] const char* backend_name(CampaignEngine e);

/// Inverse of backend_name: maps a registry backend name onto the campaign
/// engine that uses it.  nullopt for every other backend (campaigns inject
/// faults at netlist granularity, so only the gate-level rtl engines apply).
[[nodiscard]] std::optional<CampaignEngine> engine_from_backend(
    std::string_view name);

struct ResilienceOptions {
  hw::DesignId design = hw::DesignId::kDesign1;
  std::vector<rtl::FaultKind> kinds = {rtl::FaultKind::kSeuFlip};
  std::size_t trials = 100;
  std::uint64_t seed = 2005;
  rtl::HardeningStyle harden = rtl::HardeningStyle::kNone;
  /// Even number of image-derived samples streamed per trial.
  std::size_t samples = 64;
  /// Keep every per-trial record in CampaignResult::trials (the summary
  /// counters are always filled).
  bool keep_trials = true;
  CampaignEngine engine = CampaignEngine::kCompiled;
  /// Worker threads for the compiled engine's batch shards; 0 = one per
  /// hardware thread.  Ignored by the interpreted engine.  Results are
  /// deterministic regardless of the thread count.
  unsigned threads = 0;
  /// Fault trials packed per compiled tape pass: 64, 128 or 256 (lane-block
  /// width 1, 2 or 4 state words per slot).  Ignored by the interpreted
  /// engine.  Classification is per-trial, so results -- and the JSON
  /// report -- are byte-identical at every lane count.
  unsigned lanes = 256;
  /// Tape optimization level for the compiled engine.  kFull is clamped to
  /// kSafe: fault overlays pin individual nets, which needs the
  /// fault-overlay-safe slot mapping (see rtl/compiled/opt/passes.hpp).
  rtl::compiled::OptLevel opt_level = rtl::compiled::OptLevel::kSafe;
};

enum class FaultOutcome {
  kMasked,            ///< golden output, no error flag
  kDetected,          ///< error flag raised (output may or may not differ)
  kSilentCorruption,  ///< output differs, no error flag
};

[[nodiscard]] const char* to_string(FaultOutcome o);

struct FaultTrial {
  rtl::Fault fault;
  std::string net_name;
  FaultOutcome outcome = FaultOutcome::kMasked;
  /// PSNR (dB) of the corrupted coefficient stream against golden; +inf when
  /// bit-identical.
  double psnr_db = 0.0;
  std::int64_t max_abs_error = 0;
};

/// Area/f_max of one netlist through simplify -> APEX map -> STA.
struct SynthesisCost {
  std::size_t logic_elements = 0;
  std::size_t ff_count = 0;
  double fmax_mhz = 0.0;
};

struct CampaignResult {
  hw::DesignSpec spec;
  rtl::HardeningStyle harden = rtl::HardeningStyle::kNone;
  rtl::HardeningReport harden_report;
  SynthesisCost baseline;  ///< unhardened design
  SynthesisCost hardened;  ///< == baseline when harden == kNone
  std::size_t trials_run = 0;
  std::size_t masked = 0;
  std::size_t detected = 0;
  std::size_t sdc = 0;
  /// Over the corrupted (non-golden-output) trials; 0 when none corrupted.
  double min_psnr_db = 0.0;
  double mean_psnr_db = 0.0;
  std::size_t corrupted = 0;
  std::uint64_t seed = 0;
  std::size_t samples = 0;
  std::vector<rtl::FaultKind> kinds;
  std::vector<FaultTrial> trials;

  [[nodiscard]] double sdc_rate() const {
    return trials_run == 0
               ? 0.0
               : static_cast<double>(sdc) / static_cast<double>(trials_run);
  }
};

/// Runs the campaign.  Deterministic: identical options produce an identical
/// CampaignResult (and identical to_json serialization).
[[nodiscard]] CampaignResult run_campaign(const ResilienceOptions& options);

/// Projects a campaign onto the trade-off space: hardened area/period plus
/// the measured silent-corruption rate (power is not measured by campaigns
/// and stays 0).
[[nodiscard]] TradeoffPoint resilience_point(const CampaignResult& r);

/// Deterministic JSON report (stable key order, fixed float formatting).
[[nodiscard]] std::string to_json(const CampaignResult& r);

}  // namespace dwt::explore
