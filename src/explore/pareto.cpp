#include "explore/pareto.hpp"

#include <stdexcept>

namespace dwt::explore {

bool TradeoffPoint::dominates(const TradeoffPoint& other) const {
  const bool no_worse = area_les <= other.area_les &&
                        period_ns <= other.period_ns &&
                        power_mw <= other.power_mw &&
                        sdc_rate <= other.sdc_rate;
  const bool strictly_better = area_les < other.area_les ||
                               period_ns < other.period_ns ||
                               power_mw < other.power_mw ||
                               sdc_rate < other.sdc_rate;
  return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_front(const std::vector<TradeoffPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j && points[j].dominates(points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

double area_power_per_mhz(const TradeoffPoint& p) {
  if (p.period_ns <= 0) throw std::invalid_argument("area_power_per_mhz");
  const double fmax_mhz = 1000.0 / p.period_ns;
  return p.area_les * p.power_mw / fmax_mhz;
}

}  // namespace dwt::explore
