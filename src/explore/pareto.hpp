// Pareto-front analysis over the (area, 1/throughput, power) objective
// space -- the "trade-off points" language of the paper's comparison with
// the filter-bank baseline.
#pragma once

#include <string>
#include <vector>

namespace dwt::explore {

/// One candidate in the trade-off space.  All objectives minimize
/// (throughput enters as its reciprocal via ns-per-sample or 1/fmax).
/// `sdc_rate` is the resilience axis added by the fault campaigns: the
/// fraction of injected faults that ended in silent data corruption.  It
/// defaults to 0, so three-objective comparisons behave exactly as before.
struct TradeoffPoint {
  std::string name;
  double area_les = 0.0;
  double period_ns = 0.0;  ///< 1000 / fmax_mhz
  double power_mw = 0.0;   ///< at the common reference frequency
  double sdc_rate = 0.0;   ///< silent-data-corruption fraction, in [0, 1]

  [[nodiscard]] bool dominates(const TradeoffPoint& other) const;
};

/// Indices of the non-dominated points (stable order).
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<TradeoffPoint>& points);

/// Figure-of-merit the paper uses informally: "area-power compromise per
/// MHz" -- lower is better.
[[nodiscard]] double area_power_per_mhz(const TradeoffPoint& p);

}  // namespace dwt::explore
