#include "explore/resilience.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "core/artifact_cache.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "fpga/device.hpp"
#include "fpga/timing.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/simulator.hpp"

namespace dwt::explore {
namespace {

/// Image-derived sample stream in the signed 8-bit input domain (row-major
/// scan of the synthetic still-tone scene, DC level shifted), matching the
/// Explorer's activity workload.
std::vector<std::int64_t> image_stimulus(std::size_t samples,
                                         std::uint64_t seed) {
  const std::size_t width = 64;
  const std::size_t rows = (samples + width - 1) / width;
  const dsp::Image img = dsp::make_still_tone_image(width, rows, seed);
  std::vector<std::int64_t> out;
  out.reserve(samples);
  for (std::size_t y = 0; y < rows && out.size() < samples; ++y) {
    for (std::size_t x = 0; x < width && out.size() < samples; ++x) {
      out.push_back(static_cast<std::int64_t>(std::llround(img.at(x, y))) -
                    128);
    }
  }
  return out;
}

/// Area/f_max of a cached APEX mapping through STA.  The mapping itself
/// (simplify + map_to_apex, the expensive part) comes from the artifact
/// cache; only the cheap timing analysis runs per call.
SynthesisCost synthesize(const fpga::MappedNetlist& mapped) {
  const fpga::ApexDeviceParams device = fpga::ApexDeviceParams::apex20ke();
  fpga::TimingAnalyzer sta(mapped, device);
  const fpga::TimingReport timing = sta.analyze();
  SynthesisCost cost;
  cost.logic_elements = mapped.le_count();
  cost.ff_count = mapped.ff_count();
  cost.fmax_mhz = timing.fmax_mhz;
  return cost;
}

/// PSNR of the corrupted coefficient stream against golden, over the
/// concatenated low/high bands.
double coeff_psnr(const hw::StreamResult& got, const hw::StreamResult& gold) {
  std::vector<double> a;
  std::vector<double> b;
  a.reserve(gold.low.size() + gold.high.size());
  b.reserve(a.capacity());
  for (std::size_t i = 0; i < gold.low.size(); ++i) {
    a.push_back(static_cast<double>(gold.low[i]));
    b.push_back(static_cast<double>(got.low[i]));
  }
  for (std::size_t i = 0; i < gold.high.size(); ++i) {
    a.push_back(static_cast<double>(gold.high[i]));
    b.push_back(static_cast<double>(got.high[i]));
  }
  return dsp::psnr(a, b);
}

std::int64_t max_abs_error(const hw::StreamResult& got,
                           const hw::StreamResult& gold) {
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < gold.low.size(); ++i) {
    worst = std::max(worst, std::abs(got.low[i] - gold.low[i]));
    worst = std::max(worst, std::abs(got.high[i] - gold.high[i]));
  }
  return worst;
}

/// Outcome/PSNR classification of one trial -- shared by both engines so a
/// trial's record depends only on its coefficient stream and watch flag.
FaultTrial classify_trial(const rtl::Fault& fault, const std::string& net_name,
                          const hw::StreamResult& got,
                          const hw::StreamResult& golden, bool watch_hit) {
  FaultTrial trial;
  trial.fault = fault;
  trial.net_name = net_name;
  const bool corrupted = got.low != golden.low || got.high != golden.high;
  if (watch_hit) {
    trial.outcome = FaultOutcome::kDetected;
  } else if (corrupted) {
    trial.outcome = FaultOutcome::kSilentCorruption;
  } else {
    trial.outcome = FaultOutcome::kMasked;
  }
  trial.psnr_db = coeff_psnr(got, golden);
  trial.max_abs_error = max_abs_error(got, golden);
  return trial;
}

}  // namespace

const char* to_string(CampaignEngine e) {
  switch (e) {
    case CampaignEngine::kInterpreted: return "interpreted";
    case CampaignEngine::kCompiled: return "compiled";
  }
  return "?";
}

const char* backend_name(CampaignEngine e) {
  switch (e) {
    case CampaignEngine::kInterpreted: return "rtl-interpreted";
    case CampaignEngine::kCompiled: return "rtl-compiled";
  }
  return "?";
}

std::optional<CampaignEngine> engine_from_backend(std::string_view name) {
  if (name == "rtl-interpreted") return CampaignEngine::kInterpreted;
  if (name == "rtl-compiled") return CampaignEngine::kCompiled;
  return std::nullopt;
}

const char* to_string(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilentCorruption: return "sdc";
  }
  return "?";
}

CampaignResult run_campaign(const ResilienceOptions& options) {
  if (options.trials == 0) {
    throw std::invalid_argument("run_campaign: zero trials");
  }
  if (options.samples < 8 || options.samples % 2 != 0) {
    throw std::invalid_argument(
        "run_campaign: samples must be even and >= 8");
  }
  if (options.kinds.empty()) {
    throw std::invalid_argument("run_campaign: no fault kinds enabled");
  }
  if (options.lanes != 64 && options.lanes != 128 && options.lanes != 256) {
    throw std::invalid_argument("run_campaign: lanes must be 64, 128 or 256");
  }

  CampaignResult result;
  result.spec = hw::design_spec(options.design);
  result.harden = options.harden;
  result.seed = options.seed;
  result.samples = options.samples;
  result.kinds = options.kinds;

  // All expensive artifacts -- elaborated/hardened netlists, APEX mappings,
  // compiled tapes -- come from the shared cache, so repeated campaigns over
  // the same (design, hardening) pair build them once per process.
  core::ArtifactCache& cache = core::ArtifactCache::instance();
  const std::shared_ptr<const core::CachedDesign> base_artifact =
      cache.design(result.spec.config);
  const std::shared_ptr<const core::CachedDesign> dut_artifact =
      cache.design(result.spec.config, options.harden);
  const hw::BuiltDatapath& built = base_artifact->dp;
  const hw::BuiltDatapath& dut = dut_artifact->dp;
  result.harden_report = dut_artifact->harden_report;
  result.baseline = synthesize(cache.mapped(result.spec.config)->mapped);
  result.hardened =
      options.harden == rtl::HardeningStyle::kNone
          ? result.baseline
          : synthesize(
                cache.mapped(result.spec.config, options.harden)->mapped);

  const std::vector<std::int64_t> stimulus =
      image_stimulus(options.samples, options.seed);

  const rtl::NetId flag_net =
      options.harden == rtl::HardeningStyle::kParity
          ? dut.netlist.output(rtl::kErrorFlagPort).bits.front()
          : rtl::kNullNet;
  const bool compiled = options.engine == CampaignEngine::kCompiled;
  // Fault overlays pin individual nets, so kFull's slot sharing is off the
  // table: clamp to the fault-overlay-safe level.
  const rtl::compiled::OptLevel level =
      options.opt_level == rtl::compiled::OptLevel::kFull
          ? rtl::compiled::OptLevel::kSafe
          : options.opt_level;
  std::shared_ptr<const rtl::compiled::Tape> tape;
  if (compiled) tape = cache.tape(result.spec.config, options.harden, level);

  // Golden references: the unhardened design defines correctness; the
  // hardened one must reproduce it fault-free (a transform bug fails loudly
  // here rather than skewing the campaign).  Each engine produces its own
  // golden -- they are bit-exact, so the reports stay byte-identical.
  hw::StreamResult golden;
  if (compiled) {
    rtl::compiled::BatchFaultSession sess(
        cache.tape(result.spec.config, rtl::HardeningStyle::kNone, level));
    golden = std::move(hw::run_stream_batch(built, sess, stimulus, 1).front());
  } else {
    rtl::Simulator sim(built.netlist);
    golden = hw::run_stream(built, sim, stimulus);
  }
  {
    hw::StreamResult check;
    bool flagged = false;
    if (compiled) {
      rtl::compiled::BatchFaultSession clean(tape);
      if (flag_net != rtl::kNullNet) clean.watch(flag_net);
      check = std::move(hw::run_stream_batch(dut, clean, stimulus, 1).front());
      flagged = clean.watch_mask() != 0;
    } else {
      rtl::Simulator sim(dut.netlist);
      rtl::FaultInjector clean(dut.netlist, sim);
      if (flag_net != rtl::kNullNet) clean.watch(flag_net);
      check = hw::run_stream_faulty(dut, clean, stimulus);
      flagged = clean.watch_triggered();
    }
    if (check.low != golden.low || check.high != golden.high) {
      throw std::logic_error(
          "run_campaign: hardened netlist diverges without faults");
    }
    if (flagged) {
      throw std::logic_error(
          "run_campaign: parity flag raised without faults");
    }
  }

  const std::vector<rtl::NetId> seu = rtl::seu_targets(dut.netlist);
  const std::vector<rtl::NetId> stuck = rtl::stuck_targets(dut.netlist);
  const std::vector<rtl::NetId> glitch = rtl::glitch_targets(dut.netlist);
  const std::uint64_t total_cycles =
      hw::stream_cycle_count(dut, stimulus.size());

  // Pre-draw the whole fault schedule.  The rng stream is consumed in trial
  // order exactly as the sequential runner always did, so seeds reproduce
  // identical campaigns on both engines and any thread count.
  common::Rng rng(options.seed);
  std::vector<rtl::Fault> faults(options.trials);
  for (std::size_t t = 0; t < options.trials; ++t) {
    rtl::Fault& fault = faults[t];
    fault.kind = options.kinds[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(options.kinds.size()) - 1))];
    const std::vector<rtl::NetId>* pool = nullptr;
    switch (fault.kind) {
      case rtl::FaultKind::kSeuFlip: pool = &seu; break;
      case rtl::FaultKind::kGlitch: pool = &glitch; break;
      case rtl::FaultKind::kStuckAt0:
      case rtl::FaultKind::kStuckAt1: pool = &stuck; break;
    }
    if (pool == nullptr || pool->empty()) {
      throw std::logic_error(std::string("run_campaign: no targets for ") +
                             rtl::to_string(fault.kind));
    }
    fault.net = (*pool)[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(pool->size()) - 1))];
    // Leave at least one settle cycle after injection so a detection flag
    // raised by the final-state upset is still observed.
    fault.cycle = static_cast<std::uint64_t>(
        rng.uniform(0, static_cast<std::int64_t>(total_cycles) - 2));
    fault.glitch_value = rng.uniform(0, 1) != 0;
  }

  std::vector<FaultTrial> trials(options.trials);
  if (compiled) {
    // Up to 64*W fault trials per tape pass (lane-block width W from
    // options.lanes), batches sharded across a worker pool.  Every batch
    // writes only its own slice of `trials`, so the result is independent
    // of scheduling, thread count and lane count.
    const auto run_batches = [&]<unsigned W>() {
      constexpr std::size_t kBatchLanes =
          rtl::compiled::WideBatchSession<W>::kTotalLanes;
      const std::size_t n_batches =
          (options.trials + kBatchLanes - 1) / kBatchLanes;
      unsigned n_threads =
          options.threads != 0
              ? options.threads
              : std::max(1u, std::thread::hardware_concurrency());
      n_threads = static_cast<unsigned>(
          std::min<std::size_t>(n_threads, n_batches));
      std::atomic<std::size_t> next_batch{0};
      std::mutex error_mutex;
      std::exception_ptr first_error;
      const auto worker = [&]() {
        try {
          for (std::size_t b = next_batch.fetch_add(1); b < n_batches;
               b = next_batch.fetch_add(1)) {
            const std::size_t t0 = b * kBatchLanes;
            const unsigned lanes = static_cast<unsigned>(
                std::min<std::size_t>(kBatchLanes, options.trials - t0));
            rtl::compiled::WideBatchSession<W> sess(tape);
            for (unsigned l = 0; l < lanes; ++l) sess.arm(l, faults[t0 + l]);
            if (flag_net != rtl::kNullNet) sess.watch(flag_net);
            const std::vector<hw::StreamResult> got =
                hw::run_stream_batch(dut, sess, stimulus, lanes);
            const auto& watch = sess.watch_block();
            for (unsigned l = 0; l < lanes; ++l) {
              trials[t0 + l] = classify_trial(
                  faults[t0 + l], dut.netlist.net(faults[t0 + l].net).name,
                  got[l], golden, watch.get(l));
            }
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      };
      if (n_threads <= 1) {
        worker();
      } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned i = 0; i < n_threads; ++i) pool.emplace_back(worker);
        for (std::thread& th : pool) th.join();
      }
      if (first_error) std::rethrow_exception(first_error);
    };
    switch (options.lanes) {
      case 64: run_batches.template operator()<1>(); break;
      case 128: run_batches.template operator()<2>(); break;
      default: run_batches.template operator()<4>(); break;
    }
  } else {
    for (std::size_t t = 0; t < options.trials; ++t) {
      rtl::Simulator sim(dut.netlist);
      rtl::FaultInjector inj(dut.netlist, sim);
      inj.arm(faults[t]);
      if (flag_net != rtl::kNullNet) inj.watch(flag_net);
      const hw::StreamResult got = hw::run_stream_faulty(dut, inj, stimulus);
      trials[t] = classify_trial(faults[t],
                                 dut.netlist.net(faults[t].net).name, got,
                                 golden, inj.watch_triggered());
    }
  }

  // Accumulate summaries in trial order (identical floating-point summation
  // order on every engine and thread count).
  double psnr_sum = 0.0;
  double psnr_min = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < options.trials; ++t) {
    FaultTrial& trial = trials[t];
    switch (trial.outcome) {
      case FaultOutcome::kMasked: ++result.masked; break;
      case FaultOutcome::kDetected: ++result.detected; break;
      case FaultOutcome::kSilentCorruption: ++result.sdc; break;
    }
    // A trial is corrupted iff its stream differs from golden anywhere,
    // i.e. the worst absolute coefficient error is nonzero.
    if (trial.max_abs_error != 0) {
      ++result.corrupted;
      psnr_sum += trial.psnr_db;
      psnr_min = std::min(psnr_min, trial.psnr_db);
    }
    ++result.trials_run;
    if (options.keep_trials) result.trials.push_back(std::move(trial));
  }
  if (result.corrupted > 0) {
    result.min_psnr_db = psnr_min;
    result.mean_psnr_db = psnr_sum / static_cast<double>(result.corrupted);
  }
  return result;
}

TradeoffPoint resilience_point(const CampaignResult& r) {
  TradeoffPoint p;
  p.name = r.spec.name + "+" + rtl::to_string(r.harden);
  p.area_les = static_cast<double>(r.hardened.logic_elements);
  p.period_ns = r.hardened.fmax_mhz > 0 ? 1000.0 / r.hardened.fmax_mhz : 0.0;
  p.sdc_rate = r.sdc_rate();
  return p;
}

std::string to_json(const CampaignResult& r) {
  std::string out;
  out.reserve(4096 + 96 * r.trials.size());
  out += "{\n";
  out += "  \"design\": \"" + r.spec.name + "\",\n";
  out += std::string("  \"harden\": \"") + rtl::to_string(r.harden) + "\",\n";
  out += "  \"seed\": " + std::to_string(r.seed) + ",\n";
  out += "  \"samples\": " + std::to_string(r.samples) + ",\n";
  out += "  \"fault_kinds\": [";
  for (std::size_t i = 0; i < r.kinds.size(); ++i) {
    if (i) out += ", ";
    out += std::string("\"") + rtl::to_string(r.kinds[i]) + "\"";
  }
  out += "],\n";
  out += "  \"trials\": " + std::to_string(r.trials_run) + ",\n";
  out += "  \"outcomes\": {\"masked\": " + std::to_string(r.masked) +
         ", \"detected\": " + std::to_string(r.detected) +
         ", \"sdc\": " + std::to_string(r.sdc) + "},\n";
  out += "  \"sdc_rate\": ";
  common::append_json_fixed(out, r.sdc_rate());
  out += ",\n";
  out += "  \"corrupted_trials\": " + std::to_string(r.corrupted) + ",\n";
  out += "  \"min_psnr_db\": ";
  common::append_json_fixed(out, r.corrupted > 0
                              ? r.min_psnr_db
                              : std::numeric_limits<double>::infinity());
  out += ",\n";
  out += "  \"mean_psnr_db\": ";
  common::append_json_fixed(out, r.corrupted > 0
                              ? r.mean_psnr_db
                              : std::numeric_limits<double>::infinity());
  out += ",\n";
  out += "  \"baseline\": {\"logic_elements\": " +
         std::to_string(r.baseline.logic_elements) +
         ", \"ff_count\": " + std::to_string(r.baseline.ff_count) +
         ", \"fmax_mhz\": ";
  common::append_json_fixed(out, r.baseline.fmax_mhz);
  out += "},\n";
  out += "  \"hardened\": {\"logic_elements\": " +
         std::to_string(r.hardened.logic_elements) +
         ", \"ff_count\": " + std::to_string(r.hardened.ff_count) +
         ", \"fmax_mhz\": ";
  common::append_json_fixed(out, r.hardened.fmax_mhz);
  out += ", \"protected_ffs\": " +
         std::to_string(r.harden_report.protected_ffs) +
         ", \"added_ffs\": " + std::to_string(r.harden_report.added_ffs) +
         ", \"added_gates\": " + std::to_string(r.harden_report.added_gates) +
         ", \"parity_groups\": " +
         std::to_string(r.harden_report.parity_groups) + "},\n";
  out += "  \"overhead\": {\"le_ratio\": ";
  common::append_json_fixed(out, r.baseline.logic_elements > 0
                              ? static_cast<double>(r.hardened.logic_elements) /
                                    static_cast<double>(
                                        r.baseline.logic_elements)
                              : 0.0);
  out += ", \"fmax_ratio\": ";
  common::append_json_fixed(out, r.baseline.fmax_mhz > 0
                              ? r.hardened.fmax_mhz / r.baseline.fmax_mhz
                              : 0.0);
  out += "},\n";
  out += "  \"trial_list\": [";
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    const FaultTrial& t = r.trials[i];
    out += i ? ",\n    " : "\n    ";
    out += std::string("{\"kind\": \"") + rtl::to_string(t.fault.kind) +
           "\", \"net\": " + std::to_string(t.fault.net) + ", \"net_name\": \"" +
           t.net_name + "\", \"cycle\": " + std::to_string(t.fault.cycle) +
           ", \"outcome\": \"" + to_string(t.outcome) +
           "\", \"max_abs_error\": " + std::to_string(t.max_abs_error) +
           ", \"psnr_db\": ";
    common::append_json_fixed(out, t.psnr_db);
    out += "}";
  }
  out += r.trials.empty() ? "],\n" : "\n  ],\n";
  out += "  \"trials_kept\": " + std::to_string(r.trials.size()) + "\n";
  out += "}\n";
  return out;
}

}  // namespace dwt::explore
