#include "explore/resilience.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "core/artifact_cache.hpp"
#include "dsp/image_gen.hpp"
#include "dsp/metrics.hpp"
#include "explore/campaign_io.hpp"
#include "fpga/device.hpp"
#include "fpga/timing.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/cone_session.hpp"
#include "rtl/simulator.hpp"

namespace dwt::explore {
namespace {

/// Default trials per execution chunk (summary fold + checkpoint cadence).
/// Larger chunks let the cycle-sorted batching (run_compiled_chunk) pack
/// each 64*W-lane batch into a tighter strike-cycle window, which shrinks
/// the active interval the cone engine must evaluate; 16k trials is still
/// only a few MB of chunk-local records.
constexpr std::size_t kDefaultChunk = 16384;
/// Above this many trials in a shard the per-trial list is auto-disabled so
/// million-trial campaigns run in constant memory.
constexpr std::size_t kKeepTrialsLimit = 1'000'000;
/// In-memory budget for the golden trace; past it the cone restriction
/// falls back to full-tape execution (results are identical either way).
constexpr std::uint64_t kTraceBytesLimit = std::uint64_t{1} << 26;  // 64 MiB

/// Image-derived sample stream in the signed 8-bit input domain (row-major
/// scan of the synthetic still-tone scene, DC level shifted), matching the
/// Explorer's activity workload.
std::vector<std::int64_t> image_stimulus(std::size_t samples,
                                         std::uint64_t seed) {
  const std::size_t width = 64;
  const std::size_t rows = (samples + width - 1) / width;
  const dsp::Image img = dsp::make_still_tone_image(width, rows, seed);
  std::vector<std::int64_t> out;
  out.reserve(samples);
  for (std::size_t y = 0; y < rows && out.size() < samples; ++y) {
    for (std::size_t x = 0; x < width && out.size() < samples; ++x) {
      out.push_back(static_cast<std::int64_t>(std::llround(img.at(x, y))) -
                    128);
    }
  }
  return out;
}

/// Area/f_max of a cached APEX mapping through STA.  The mapping itself
/// (simplify + map_to_apex, the expensive part) comes from the artifact
/// cache; only the cheap timing analysis runs per call.
SynthesisCost synthesize(const fpga::MappedNetlist& mapped) {
  const fpga::ApexDeviceParams device = fpga::ApexDeviceParams::apex20ke();
  fpga::TimingAnalyzer sta(mapped, device);
  const fpga::TimingReport timing = sta.analyze();
  SynthesisCost cost;
  cost.logic_elements = mapped.le_count();
  cost.ff_count = mapped.ff_count();
  cost.fmax_mhz = timing.fmax_mhz;
  return cost;
}

/// PSNR of the corrupted coefficient stream against golden, over the
/// concatenated low/high bands.
double coeff_psnr(const hw::StreamResult& got, const hw::StreamResult& gold) {
  std::vector<double> a;
  std::vector<double> b;
  a.reserve(gold.low.size() + gold.high.size());
  b.reserve(a.capacity());
  for (std::size_t i = 0; i < gold.low.size(); ++i) {
    a.push_back(static_cast<double>(gold.low[i]));
    b.push_back(static_cast<double>(got.low[i]));
  }
  for (std::size_t i = 0; i < gold.high.size(); ++i) {
    a.push_back(static_cast<double>(gold.high[i]));
    b.push_back(static_cast<double>(got.high[i]));
  }
  return dsp::psnr(a, b);
}

std::int64_t max_abs_error(const hw::StreamResult& got,
                           const hw::StreamResult& gold) {
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < gold.low.size(); ++i) {
    worst = std::max(worst, std::abs(got.low[i] - gold.low[i]));
    worst = std::max(worst, std::abs(got.high[i] - gold.high[i]));
  }
  return worst;
}

/// Outcome/PSNR classification of one trial -- shared by both engines so a
/// trial's record depends only on its coefficient stream and watch flag.
FaultTrial classify_trial(const rtl::Fault& fault, const std::string& net_name,
                          const hw::StreamResult& got,
                          const hw::StreamResult& golden, bool watch_hit) {
  FaultTrial trial;
  trial.fault = fault;
  trial.net_name = net_name;
  const bool corrupted = got.low != golden.low || got.high != golden.high;
  if (watch_hit) {
    trial.outcome = FaultOutcome::kDetected;
  } else if (corrupted) {
    trial.outcome = FaultOutcome::kSilentCorruption;
  } else {
    trial.outcome = FaultOutcome::kMasked;
  }
  trial.psnr_db = coeff_psnr(got, golden);
  trial.max_abs_error = max_abs_error(got, golden);
  return trial;
}

/// Balanced contiguous partition of `total` trials into `count` shards:
/// shard i executes [begin, end).  The first (total % count) shards carry
/// one extra trial, so the slices partition the schedule exactly.
std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                unsigned count,
                                                unsigned index) {
  const std::size_t q = total / count;
  const std::size_t r = total % count;
  const std::size_t begin =
      static_cast<std::size_t>(index) * q + std::min<std::size_t>(index, r);
  return {begin, begin + q + (index < r ? 1 : 0)};
}

}  // namespace

const char* to_string(CampaignEngine e) {
  switch (e) {
    case CampaignEngine::kInterpreted: return "interpreted";
    case CampaignEngine::kCompiled: return "compiled";
  }
  return "?";
}

const char* backend_name(CampaignEngine e) {
  switch (e) {
    case CampaignEngine::kInterpreted: return "rtl-interpreted";
    case CampaignEngine::kCompiled: return "rtl-compiled";
  }
  return "?";
}

std::optional<CampaignEngine> engine_from_backend(std::string_view name) {
  if (name == "rtl-interpreted") return CampaignEngine::kInterpreted;
  if (name == "rtl-compiled") return CampaignEngine::kCompiled;
  return std::nullopt;
}

const char* to_string(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilentCorruption: return "sdc";
  }
  return "?";
}

CampaignResult run_campaign(const ResilienceOptions& options) {
  if (options.trials == 0) {
    throw std::invalid_argument("run_campaign: zero trials");
  }
  if (options.samples < 8 || options.samples % 2 != 0) {
    throw std::invalid_argument(
        "run_campaign: samples must be even and >= 8");
  }
  if (options.kinds.empty()) {
    throw std::invalid_argument("run_campaign: no fault kinds enabled");
  }
  if (options.lanes != 64 && options.lanes != 128 && options.lanes != 256) {
    throw std::invalid_argument("run_campaign: lanes must be 64, 128 or 256");
  }
  if (options.shard_count == 0) {
    throw std::invalid_argument("run_campaign: zero shards");
  }
  if (options.shard_index >= options.shard_count) {
    throw std::invalid_argument("run_campaign: shard index out of range");
  }
  if (options.shard_count > options.trials) {
    throw std::invalid_argument("run_campaign: more shards than trials");
  }

  CampaignResult result;
  result.spec = hw::design_spec(options.design);
  if (options.adder.has_value()) {
    // The adder-variant design point: swap the realization and report under
    // the variant's name so Pareto rows never collide with the paper's.
    result.spec.config.adder_style = *options.adder;
    result.spec.name = hw::design_point_name(options.design, options.adder);
  }
  result.harden = options.harden;
  result.seed = options.seed;
  result.samples = options.samples;
  result.kinds = options.kinds;
  result.shard_count = options.shard_count;
  result.shard_index = options.shard_index;
  const auto [shard_begin, shard_end] =
      shard_range(options.trials, options.shard_count, options.shard_index);
  result.trial_begin = shard_begin;
  result.trial_end = shard_end;
  const std::size_t shard_trials = shard_end - shard_begin;

  bool keep = options.keep_trials;
  if (keep && shard_trials > kKeepTrialsLimit) {
    keep = false;
    std::fprintf(stderr,
                 "run_campaign: per-trial list disabled (%zu trials exceed "
                 "the %zu-trial in-memory limit); summary counters are "
                 "unaffected\n",
                 shard_trials, kKeepTrialsLimit);
  }

  // All expensive artifacts -- elaborated/hardened netlists, APEX mappings,
  // compiled tapes, cone indexes -- come from the shared cache, so repeated
  // campaigns over the same (design, hardening) pair build them once per
  // process.
  core::ArtifactCache& cache = core::ArtifactCache::instance();
  const std::shared_ptr<const core::CachedDesign> base_artifact =
      cache.design(result.spec.config);
  const std::shared_ptr<const core::CachedDesign> dut_artifact =
      cache.design(result.spec.config, options.harden);
  const hw::BuiltDatapath& built = base_artifact->dp;
  const hw::BuiltDatapath& dut = dut_artifact->dp;
  result.harden_report = dut_artifact->harden_report;
  result.baseline = synthesize(cache.mapped(result.spec.config)->mapped);
  result.hardened =
      options.harden == rtl::HardeningStyle::kNone
          ? result.baseline
          : synthesize(
                cache.mapped(result.spec.config, options.harden)->mapped);

  const std::vector<std::int64_t> stimulus =
      image_stimulus(options.samples, options.seed);
  const std::uint64_t total_cycles =
      hw::stream_cycle_count(dut, stimulus.size());

  const rtl::NetId flag_net =
      options.harden == rtl::HardeningStyle::kParity
          ? dut.netlist.output(rtl::kErrorFlagPort).bits.front()
          : rtl::kNullNet;
  const bool compiled = options.engine == CampaignEngine::kCompiled;
  // Fault overlays pin individual nets, so kFull's slot sharing is off the
  // table: clamp to the fault-overlay-safe level.
  const rtl::compiled::OptLevel level =
      options.opt_level == rtl::compiled::OptLevel::kFull
          ? rtl::compiled::OptLevel::kSafe
          : options.opt_level;
  std::shared_ptr<const rtl::compiled::Tape> tape;
  if (compiled) tape = cache.tape(result.spec.config, options.harden, level);

  // Cone restriction: compiled engine only, and only while the golden trace
  // fits the in-memory budget.  Purely a throughput knob -- the cone path
  // is bit-exact with the full-tape path.
  bool cone_active = compiled && options.cone;
  if (cone_active &&
      rtl::compiled::GoldenTrace::bytes_needed(
          total_cycles, tape->slot_count()) > kTraceBytesLimit) {
    cone_active = false;
    std::fprintf(stderr,
                 "run_campaign: cone restriction disabled (golden trace "
                 "would exceed the in-memory budget); falling back to "
                 "full-tape batches\n");
  }
  std::shared_ptr<const rtl::compiled::ConeIndex> run_cone;
  std::shared_ptr<rtl::compiled::GoldenTrace> trace;
  if (cone_active) {
    run_cone = cache.cone_index(result.spec.config, options.harden, level);
    trace = std::make_shared<rtl::compiled::GoldenTrace>(tape->slot_count());
  }

  // Execution-tier selection for the compiled sessions.  Full-tape sessions
  // share the cache's one native block per (hardening, width); sessions
  // whose settles are cone-restricted run the portable threaded tier (the
  // native block is a whole-tape settle, so it never fires for them --
  // skipping the attach just avoids a pointless emit).  Tier choice never
  // changes a trial's bytes: forced settles drop to the portable kernels on
  // every tier.
  const auto attach_tier = [&](auto& sess, rtl::HardeningStyle h,
                               bool full_range) {
    constexpr unsigned kW =
        std::remove_reference_t<decltype(sess)>::Sim::kWords;
    if (rtl::compiled::resolve_exec_tier(options.exec_tier, kW) ==
        rtl::compiled::ExecTier::kNative) {
      if (full_range) {
        sess.sim().set_native(
            cache.native_block(result.spec.config, h, level, kW));
      } else {
        sess.sim().set_exec_tier(rtl::compiled::ExecTier::kThreaded);
      }
    } else {
      sess.sim().set_exec_tier(options.exec_tier);
    }
  };

  // Golden references: the unhardened design defines correctness; the
  // hardened one must reproduce it fault-free (a transform bug fails loudly
  // here rather than skewing the campaign).  Each engine produces its own
  // golden -- they are bit-exact, so the reports stay byte-identical.
  hw::StreamResult golden;
  if (compiled) {
    rtl::compiled::BatchFaultSession sess(
        cache.tape(result.spec.config, rtl::HardeningStyle::kNone, level));
    attach_tier(sess, rtl::HardeningStyle::kNone, /*full_range=*/true);
    golden = std::move(hw::run_stream_batch(built, sess, stimulus, 1).front());
  } else {
    rtl::Simulator sim(built.netlist);
    golden = hw::run_stream(built, sim, stimulus);
  }
  {
    hw::StreamResult check;
    bool flagged = false;
    if (compiled) {
      rtl::compiled::BatchFaultSession clean(tape);
      attach_tier(clean, options.harden, /*full_range=*/true);
      if (flag_net != rtl::kNullNet) clean.watch(flag_net);
      // The fault-free pass doubles as the golden trace recording for the
      // cone-restricted batches.
      if (cone_active) clean.set_trace(trace.get());
      check = std::move(hw::run_stream_batch(dut, clean, stimulus, 1).front());
      flagged = clean.watch_mask() != 0;
    } else {
      rtl::Simulator sim(dut.netlist);
      rtl::FaultInjector clean(dut.netlist, sim);
      if (flag_net != rtl::kNullNet) clean.watch(flag_net);
      check = hw::run_stream_faulty(dut, clean, stimulus);
      flagged = clean.watch_triggered();
    }
    if (check.low != golden.low || check.high != golden.high) {
      throw std::logic_error(
          "run_campaign: hardened netlist diverges without faults");
    }
    if (flagged) {
      throw std::logic_error(
          "run_campaign: parity flag raised without faults");
    }
  }

  const std::vector<rtl::NetId> seu = rtl::seu_targets(dut.netlist);
  const std::vector<rtl::NetId> stuck = rtl::stuck_targets(dut.netlist);
  const std::vector<rtl::NetId> glitch = rtl::glitch_targets(dut.netlist);

  // The static cone statistics are computed over the fault-overlay-safe
  // tape regardless of engine, opt level or restriction state, so the JSON
  // block is identical on every knob setting and in every shard.
  const std::shared_ptr<const rtl::compiled::Tape> safe_tape = cache.tape(
      result.spec.config, options.harden, rtl::compiled::OptLevel::kSafe);
  const std::shared_ptr<const rtl::compiled::ConeIndex> safe_cone =
      cache.cone_index(result.spec.config, options.harden,
                       rtl::compiled::OptLevel::kSafe);
  result.cone.instructions = safe_cone->instr_count();
  result.cone.mean_span_fraction = safe_cone->mean_span_fraction();

  // Pre-draw the whole fault schedule -- every shard draws all of it.  The
  // rng stream is consumed in trial order exactly as the sequential runner
  // always did, so seeds reproduce identical campaigns on both engines, any
  // thread count, and any shard slicing; only this shard's slice is kept.
  common::Rng rng(options.seed);
  std::vector<rtl::Fault> faults(shard_trials);
  double cone_frac_sum = 0.0;
  for (std::size_t t = 0; t < options.trials; ++t) {
    rtl::Fault fault;
    fault.kind = options.kinds[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(options.kinds.size()) - 1))];
    const std::vector<rtl::NetId>* pool = nullptr;
    switch (fault.kind) {
      case rtl::FaultKind::kSeuFlip: pool = &seu; break;
      case rtl::FaultKind::kGlitch: pool = &glitch; break;
      case rtl::FaultKind::kStuckAt0:
      case rtl::FaultKind::kStuckAt1: pool = &stuck; break;
    }
    if (pool == nullptr || pool->empty()) {
      throw std::logic_error(std::string("run_campaign: no targets for ") +
                             rtl::to_string(fault.kind));
    }
    fault.net = (*pool)[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(pool->size()) - 1))];
    // Leave at least one settle cycle after injection so a detection flag
    // raised by the final-state upset is still observed.
    fault.cycle = static_cast<std::uint64_t>(
        rng.uniform(0, static_cast<std::int64_t>(total_cycles) - 2));
    fault.glitch_value = rng.uniform(0, 1) != 0;
    const rtl::compiled::ConeSpan span =
        safe_cone->span_of_net(*safe_tape, fault.net);
    cone_frac_sum += result.cone.instructions > 0
                         ? static_cast<double>(span.length()) /
                               static_cast<double>(result.cone.instructions)
                         : 0.0;
    result.cone.instructions_full +=
        total_cycles * static_cast<std::uint64_t>(result.cone.instructions);
    result.cone.instructions_cone += static_cast<std::uint64_t>(span.length()) *
                                     (total_cycles - fault.cycle);
    if (t >= shard_begin && t < shard_end) faults[t - shard_begin] = fault;
  }
  result.cone.schedule_mean_cone_fraction =
      cone_frac_sum / static_cast<double>(options.trials);

  // Summary accumulators (resumable).  The PSNR sum is an exact
  // superaccumulator, so checkpoint and shard boundaries cannot perturb the
  // rounding of the final mean.
  std::size_t cursor = shard_begin;
  std::uint64_t n_masked = 0;
  std::uint64_t n_detected = 0;
  std::uint64_t n_sdc = 0;
  std::uint64_t n_corrupted = 0;
  double psnr_min = std::numeric_limits<double>::infinity();
  common::ExactAcc psnr_acc;
  std::vector<FaultTrial> kept_trials;
  if (keep) kept_trials.reserve(shard_trials);

  const bool use_checkpoint = !options.checkpoint_file.empty();
  const std::string fingerprint = campaign_fingerprint(options);
  if (use_checkpoint) {
    if (std::optional<CampaignCheckpoint> cp =
            load_checkpoint(options.checkpoint_file)) {
      if (cp->fingerprint != fingerprint) {
        throw std::runtime_error(
            "run_campaign: checkpoint belongs to a different campaign "
            "(fingerprint mismatch)");
      }
      if (cp->cursor < shard_begin || cp->cursor > shard_end) {
        throw std::runtime_error(
            "run_campaign: checkpoint cursor outside this shard's range");
      }
      const std::size_t done = cp->cursor - shard_begin;
      if (cp->kept.size() != (keep ? done : 0)) {
        throw std::runtime_error(
            "run_campaign: checkpoint trial list inconsistent with cursor");
      }
      cursor = cp->cursor;
      n_masked = cp->masked;
      n_detected = cp->detected;
      n_sdc = cp->sdc;
      n_corrupted = cp->corrupted;
      psnr_min = std::bit_cast<double>(cp->min_psnr_bits);
      psnr_acc = cp->psnr_acc;
      kept_trials = std::move(cp->kept);
    }
  }

  // Chunked execution: each chunk is a contiguous trial range, classified
  // into a chunk-local buffer (bounded memory) and folded into the summary
  // in trial order (identical floating-point/counter order on every
  // engine, thread count, lane width and chunk size).
  const std::size_t chunk_size =
      options.checkpoint_every != 0 ? options.checkpoint_every : kDefaultChunk;

  const auto run_interpreted_chunk = [&](std::size_t c0, std::size_t c1,
                                         std::vector<FaultTrial>& out) {
    for (std::size_t t = c0; t < c1; ++t) {
      const rtl::Fault& fault = faults[t - shard_begin];
      rtl::Simulator sim(dut.netlist);
      rtl::FaultInjector inj(dut.netlist, sim);
      inj.arm(fault);
      if (flag_net != rtl::kNullNet) inj.watch(flag_net);
      const hw::StreamResult got = hw::run_stream_faulty(dut, inj, stimulus);
      out[t - c0] = classify_trial(fault, dut.netlist.net(fault.net).name, got,
                                   golden, inj.watch_triggered());
    }
  };

  // Compiled chunk: up to 64*W trials per tape pass, batches sharded across
  // a worker pool.  With the cone restriction on, the chunk's trials are
  // first ordered by (persistence, injection cycle, cone interval): stuck
  // faults hold their force forever and retire only once the golden trace
  // absorbs their forced value into a constant tail (a later and rarer
  // event than a transient's pipeline drain), so they are segregated from
  // the transients, and cycle-sorting both maximizes each batch's pre-fault
  // skip and keeps its post-drain retirement window tight.  Every batch still writes only its
  // own trials, so results are independent of the ordering, scheduling and
  // thread count.
  const auto run_compiled_chunk = [&]<unsigned W>(std::size_t c0,
                                                  std::size_t c1,
                                                  std::vector<FaultTrial>& out) {
    constexpr std::size_t kBatchLanes =
        rtl::compiled::WideBatchSession<W>::kTotalLanes;
    const std::size_t n = c1 - c0;
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    if (cone_active) {
      const auto key = [&](std::uint32_t i) {
        const rtl::Fault& f = faults[c0 - shard_begin + i];
        const rtl::compiled::ConeSpan span =
            run_cone->span_of_net(*tape, f.net);
        const bool sticky = f.kind == rtl::FaultKind::kStuckAt0 ||
                            f.kind == rtl::FaultKind::kStuckAt1;
        return std::tuple<bool, std::uint64_t, std::uint32_t, std::uint32_t,
                          std::uint32_t>(sticky, f.cycle, span.lo, span.hi, i);
      };
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return key(a) < key(b);
                });
    }
    const std::size_t n_batches = (n + kBatchLanes - 1) / kBatchLanes;
    unsigned n_threads =
        options.threads != 0
            ? options.threads
            : std::max(1u, std::thread::hardware_concurrency());
    n_threads =
        static_cast<unsigned>(std::min<std::size_t>(n_threads, n_batches));
    std::atomic<std::size_t> next_batch{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const auto run_one = [&](auto& sess, std::size_t t0, unsigned lanes) {
      for (unsigned l = 0; l < lanes; ++l) {
        sess.arm(l, faults[c0 - shard_begin + order[t0 + l]]);
      }
      if (flag_net != rtl::kNullNet) sess.watch(flag_net);
      const std::vector<hw::StreamResult> got =
          hw::run_stream_batch(dut, sess, stimulus, lanes);
      const auto& watch = sess.watch_block();
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint32_t idx = order[t0 + l];
        const rtl::Fault& fault = faults[c0 - shard_begin + idx];
        out[idx] = classify_trial(fault, dut.netlist.net(fault.net).name,
                                  got[l], golden, watch.get(l));
      }
    };
    const auto worker = [&]() {
      try {
        for (std::size_t b = next_batch.fetch_add(1); b < n_batches;
             b = next_batch.fetch_add(1)) {
          const std::size_t t0 = b * kBatchLanes;
          const unsigned lanes =
              static_cast<unsigned>(std::min<std::size_t>(kBatchLanes, n - t0));
          if (cone_active) {
            rtl::compiled::ConeBatchSession<W> sess(tape, run_cone, trace);
            attach_tier(sess, options.harden, /*full_range=*/false);
            run_one(sess, t0, lanes);
          } else {
            rtl::compiled::WideBatchSession<W> sess(tape);
            attach_tier(sess, options.harden, /*full_range=*/true);
            run_one(sess, t0, lanes);
          }
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    };
    if (n_threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(n_threads);
      for (unsigned i = 0; i < n_threads; ++i) pool.emplace_back(worker);
      for (std::thread& th : pool) th.join();
    }
    if (first_error) std::rethrow_exception(first_error);
  };

  std::vector<FaultTrial> chunk;
  while (cursor < shard_end) {
    const std::size_t c_end = std::min(shard_end, cursor + chunk_size);
    chunk.assign(c_end - cursor, FaultTrial{});
    if (compiled) {
      switch (options.lanes) {
        case 64:
          run_compiled_chunk.template operator()<1>(cursor, c_end, chunk);
          break;
        case 128:
          run_compiled_chunk.template operator()<2>(cursor, c_end, chunk);
          break;
        default:
          run_compiled_chunk.template operator()<4>(cursor, c_end, chunk);
          break;
      }
    } else {
      run_interpreted_chunk(cursor, c_end, chunk);
    }
    for (FaultTrial& trial : chunk) {
      switch (trial.outcome) {
        case FaultOutcome::kMasked: ++n_masked; break;
        case FaultOutcome::kDetected: ++n_detected; break;
        case FaultOutcome::kSilentCorruption: ++n_sdc; break;
      }
      // A trial is corrupted iff its stream differs from golden anywhere,
      // i.e. the worst absolute coefficient error is nonzero.
      if (trial.max_abs_error != 0) {
        ++n_corrupted;
        psnr_acc.add(trial.psnr_db);
        psnr_min = std::min(psnr_min, trial.psnr_db);
      }
      if (keep) kept_trials.push_back(std::move(trial));
    }
    cursor = c_end;
    if (use_checkpoint) {
      CampaignCheckpoint cp;
      cp.fingerprint = fingerprint;
      cp.cursor = cursor;
      cp.masked = n_masked;
      cp.detected = n_detected;
      cp.sdc = n_sdc;
      cp.corrupted = n_corrupted;
      cp.min_psnr_bits = std::bit_cast<std::uint64_t>(psnr_min);
      cp.psnr_acc = psnr_acc;
      cp.kept = kept_trials;
      write_checkpoint_atomic(options.checkpoint_file, cp);
      if (options.checkpoint_hook) {
        options.checkpoint_hook(cursor - shard_begin);
      }
    }
  }

  result.trials_run = shard_trials;
  result.masked = n_masked;
  result.detected = n_detected;
  result.sdc = n_sdc;
  result.corrupted = n_corrupted;
  result.psnr_acc = psnr_acc;
  if (n_corrupted > 0) {
    result.min_psnr_db = psnr_min;
    result.mean_psnr_db =
        psnr_acc.round() / static_cast<double>(n_corrupted);
  }
  result.trials = std::move(kept_trials);
  return result;
}

TradeoffPoint resilience_point(const CampaignResult& r) {
  TradeoffPoint p;
  p.name = r.spec.name + "+" + rtl::to_string(r.harden);
  p.area_les = static_cast<double>(r.hardened.logic_elements);
  p.period_ns = r.hardened.fmax_mhz > 0 ? 1000.0 / r.hardened.fmax_mhz : 0.0;
  p.sdc_rate = r.sdc_rate();
  return p;
}

std::string to_json(const CampaignResult& r) {
  std::string out;
  out.reserve(4096 + 96 * r.trials.size());
  out += "{\n";
  out += "  \"design\": \"" + r.spec.name + "\",\n";
  out += std::string("  \"harden\": \"") + rtl::to_string(r.harden) + "\",\n";
  out += "  \"seed\": " + std::to_string(r.seed) + ",\n";
  out += "  \"samples\": " + std::to_string(r.samples) + ",\n";
  out += "  \"fault_kinds\": [";
  for (std::size_t i = 0; i < r.kinds.size(); ++i) {
    if (i) out += ", ";
    out += std::string("\"") + rtl::to_string(r.kinds[i]) + "\"";
  }
  out += "],\n";
  out += "  \"trials\": " + std::to_string(r.trials_run) + ",\n";
  out += "  \"outcomes\": {\"masked\": " + std::to_string(r.masked) +
         ", \"detected\": " + std::to_string(r.detected) +
         ", \"sdc\": " + std::to_string(r.sdc) + "},\n";
  out += "  \"sdc_rate\": ";
  common::append_json_fixed(out, r.sdc_rate());
  out += ",\n";
  out += "  \"corrupted_trials\": " + std::to_string(r.corrupted) + ",\n";
  out += "  \"min_psnr_db\": ";
  common::append_json_fixed(out, r.corrupted > 0
                              ? r.min_psnr_db
                              : std::numeric_limits<double>::infinity());
  out += ",\n";
  out += "  \"mean_psnr_db\": ";
  common::append_json_fixed(out, r.corrupted > 0
                              ? r.mean_psnr_db
                              : std::numeric_limits<double>::infinity());
  out += ",\n";
  out += "  \"baseline\": {\"logic_elements\": " +
         std::to_string(r.baseline.logic_elements) +
         ", \"ff_count\": " + std::to_string(r.baseline.ff_count) +
         ", \"fmax_mhz\": ";
  common::append_json_fixed(out, r.baseline.fmax_mhz);
  out += "},\n";
  out += "  \"hardened\": {\"logic_elements\": " +
         std::to_string(r.hardened.logic_elements) +
         ", \"ff_count\": " + std::to_string(r.hardened.ff_count) +
         ", \"fmax_mhz\": ";
  common::append_json_fixed(out, r.hardened.fmax_mhz);
  out += ", \"protected_ffs\": " +
         std::to_string(r.harden_report.protected_ffs) +
         ", \"added_ffs\": " + std::to_string(r.harden_report.added_ffs) +
         ", \"added_gates\": " + std::to_string(r.harden_report.added_gates) +
         ", \"parity_groups\": " +
         std::to_string(r.harden_report.parity_groups) + "},\n";
  out += "  \"overhead\": {\"le_ratio\": ";
  common::append_json_fixed(out, r.baseline.logic_elements > 0
                              ? static_cast<double>(r.hardened.logic_elements) /
                                    static_cast<double>(
                                        r.baseline.logic_elements)
                              : 0.0);
  out += ", \"fmax_ratio\": ";
  common::append_json_fixed(out, r.baseline.fmax_mhz > 0
                              ? r.hardened.fmax_mhz / r.baseline.fmax_mhz
                              : 0.0);
  out += "},\n";
  // Static schedule statistics of the cone restriction (see ConeStats):
  // identical across engines, knobs, and shards by construction.
  out += "  \"cone\": {\"instructions\": " +
         std::to_string(r.cone.instructions) + ", \"mean_span_fraction\": ";
  common::append_json_fixed(out, r.cone.mean_span_fraction);
  out += ", \"schedule_mean_cone_fraction\": ";
  common::append_json_fixed(out, r.cone.schedule_mean_cone_fraction);
  out += ", \"instructions_full\": " +
         std::to_string(r.cone.instructions_full) +
         ", \"instructions_cone\": " +
         std::to_string(r.cone.instructions_cone) + "},\n";
  if (r.shard_count > 1) {
    // Exact merge carriers (campaign_io.hpp): the superaccumulator and the
    // min-PSNR bit pattern let `faultcampaign merge` reproduce the
    // unsharded bytes without re-rounding.  Absent from unsharded reports,
    // which is exactly what the merged output must look like.
    const double shard_min = r.corrupted > 0
                                 ? r.min_psnr_db
                                 : std::numeric_limits<double>::infinity();
    static const char* const digits = "0123456789abcdef";
    std::string min_hex(16, '0');
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(shard_min);
    for (int i = 0; i < 16; ++i) {
      min_hex[static_cast<std::size_t>(i)] =
          digits[(bits >> (4 * (15 - i))) & 0xF];
    }
    out += "  \"shard\": {\"index\": " + std::to_string(r.shard_index) +
           ", \"count\": " + std::to_string(r.shard_count) +
           ", \"trial_begin\": " + std::to_string(r.trial_begin) +
           ", \"trial_end\": " + std::to_string(r.trial_end) +
           ", \"min_psnr_bits\": \"" + min_hex + "\", \"psnr_acc\": \"" +
           r.psnr_acc.to_hex() + "\"},\n";
  }
  out += "  \"trial_list\": [";
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    const FaultTrial& t = r.trials[i];
    out += i ? ",\n    " : "\n    ";
    out += std::string("{\"kind\": \"") + rtl::to_string(t.fault.kind) +
           "\", \"net\": " + std::to_string(t.fault.net) + ", \"net_name\": \"" +
           t.net_name + "\", \"cycle\": " + std::to_string(t.fault.cycle) +
           ", \"outcome\": \"" + to_string(t.outcome) +
           "\", \"max_abs_error\": " + std::to_string(t.max_abs_error) +
           ", \"psnr_db\": ";
    common::append_json_fixed(out, t.psnr_db);
    out += "}";
  }
  out += r.trials.empty() ? "],\n" : "\n  ],\n";
  out += "  \"trials_kept\": " + std::to_string(r.trials.size()) + "\n";
  out += "}\n";
  return out;
}

}  // namespace dwt::explore
