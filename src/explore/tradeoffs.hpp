// Quantitative checks of the paper's concluding claims (section 5): the
// area/power/frequency ratios between pipelined and non-pipelined operator
// designs and between behavioral and structural descriptions.
#pragma once

#include <string>
#include <vector>

#include "explore/explorer.hpp"

namespace dwt::explore {

struct RatioClaim {
  std::string description;
  double paper_value = 0.0;     ///< ratio the paper reports (approximate)
  double measured_value = 0.0;  ///< ratio from our model
};

struct TradeoffAnalysis {
  // Pipelining (design 3 vs 2, design 5 vs 4):
  double pipelined_area_ratio_behavioral = 0.0;   // paper ~1.6
  double pipelined_area_ratio_structural = 0.0;   // paper ~1.4
  double pipelined_fmax_ratio_behavioral = 0.0;   // paper ~3.6
  double pipelined_fmax_ratio_structural = 0.0;   // paper ~1.9
  double pipelined_power_ratio_behavioral = 0.0;  // paper ~0.42 (105/248)
  double pipelined_power_ratio_structural = 0.0;  // paper ~0.39 (91.4/232)
  // Description style (design 4 vs 2, design 5 vs 3):
  double structural_area_ratio_flat = 0.0;        // paper ~1.46 (701/480)
  double structural_area_ratio_pipelined = 0.0;   // paper ~1.31 (1002/766)
  double structural_fmax_ratio_pipelined = 0.0;   // paper ~0.67 (105/157)

  [[nodiscard]] std::vector<RatioClaim> claims() const;
};

/// Computes the analysis from the five design evaluations (paper order).
[[nodiscard]] TradeoffAnalysis analyze_tradeoffs(
    const std::vector<DesignEvaluation>& evals);

/// Same ratios computed from the paper's own Table 3 numbers.
[[nodiscard]] TradeoffAnalysis paper_tradeoffs();

}  // namespace dwt::explore
