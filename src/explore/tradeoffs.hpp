// Quantitative checks of the paper's concluding claims (section 5): the
// area/power/frequency ratios between pipelined and non-pipelined operator
// designs and between behavioral and structural descriptions -- plus a
// cross-engine profile that sweeps every registered execution backend over
// the five designs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/explorer.hpp"

namespace dwt::explore {

struct RatioClaim {
  std::string description;
  double paper_value = 0.0;     ///< ratio the paper reports (approximate)
  double measured_value = 0.0;  ///< ratio from our model
};

struct TradeoffAnalysis {
  // Pipelining (design 3 vs 2, design 5 vs 4):
  double pipelined_area_ratio_behavioral = 0.0;   // paper ~1.6
  double pipelined_area_ratio_structural = 0.0;   // paper ~1.4
  double pipelined_fmax_ratio_behavioral = 0.0;   // paper ~3.6
  double pipelined_fmax_ratio_structural = 0.0;   // paper ~1.9
  double pipelined_power_ratio_behavioral = 0.0;  // paper ~0.42 (105/248)
  double pipelined_power_ratio_structural = 0.0;  // paper ~0.39 (91.4/232)
  // Description style (design 4 vs 2, design 5 vs 3):
  double structural_area_ratio_flat = 0.0;        // paper ~1.46 (701/480)
  double structural_area_ratio_pipelined = 0.0;   // paper ~1.31 (1002/766)
  double structural_fmax_ratio_pipelined = 0.0;   // paper ~0.67 (105/157)

  [[nodiscard]] std::vector<RatioClaim> claims() const;
};

/// Computes the analysis from the five design evaluations (paper order).
[[nodiscard]] TradeoffAnalysis analyze_tradeoffs(
    const std::vector<DesignEvaluation>& evals);

/// Same ratios computed from the paper's own Table 3 numbers.
[[nodiscard]] TradeoffAnalysis paper_tradeoffs();

/// One registry engine profiled over the five paper designs with a shared
/// deterministic stimulus.
struct BackendProfile {
  std::string backend;      ///< registry name
  std::string description;
  bool gate_level = false;
  bool cycle_accurate = false;
  bool bit_exact = false;
  /// Stream cycles consumed per design, paper order (all zero for the
  /// software engines, which have no clock).
  std::vector<std::uint64_t> stream_cycles;
  /// Integer coefficient streams of all five designs are bit-identical to
  /// the software fixed-point reference.
  bool matches_reference = false;
};

/// Streams one deterministic image-derived signal through every registered
/// backend x design pair (via core::all_backends(), so a newly registered
/// engine shows up automatically) and cross-checks each against the
/// software fixed-point reference.  `samples` must be even and >= 8.
[[nodiscard]] std::vector<BackendProfile> profile_backends(
    std::size_t samples = 256, std::uint64_t seed = 2005);

}  // namespace dwt::explore
