// Design-space exploration driver -- the paper's methodology as an API.
// For each architecture it elaborates the netlist, runs synthesis-style
// cleanup, maps to APEX logic elements, analyzes timing, streams an
// image-like workload through the unit-delay simulator to measure switching
// activity, and estimates power at the Table-3 reference frequency.
#pragma once

#include <memory>
#include <vector>

#include "fpga/power.hpp"
#include "fpga/report.hpp"
#include "fpga/tech_mapper.hpp"
#include "fpga/timing.hpp"
#include "hw/designs.hpp"
#include "rtl/stats.hpp"

namespace dwt::explore {

enum class Workload {
  kStillToneImage,  ///< rows of the synthetic photograph (paper: Lena tile)
  kRandomNoise,     ///< uncorrelated samples (pessimistic activity)
};

struct ExplorerOptions {
  double reference_mhz = 15.0;        ///< Table 3 power reference frequency
  std::size_t workload_samples = 2048;///< stream length for activity capture
  Workload workload = Workload::kStillToneImage;
  std::uint64_t seed = 2005;
  fpga::ApexDeviceParams device = fpga::ApexDeviceParams::apex20ke();
};

struct DesignEvaluation {
  hw::DesignSpec spec;
  std::shared_ptr<const rtl::Netlist> netlist;  ///< simplified netlist
  fpga::MappedNetlist mapped;                   ///< source == netlist.get()
  rtl::ActivityStats activity;
  rtl::NetlistStats netlist_stats;
  fpga::TimingReport timing;
  fpga::SynthesisReport report;
  hw::DatapathInfo info;

  /// Power projected to another operating frequency (same activity).
  [[nodiscard]] fpga::PowerBreakdown power_at(
      double f_mhz, const fpga::ApexDeviceParams& device) const;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options = {});

  /// Full evaluation of one architecture.
  [[nodiscard]] DesignEvaluation evaluate(const hw::DesignSpec& spec) const;

  /// Evaluates the paper's five designs in order.
  [[nodiscard]] std::vector<DesignEvaluation> evaluate_all() const;

  /// Evaluates the adder-variant design points (hw::adder_variant_designs():
  /// designs 2..5 crossed with the parallel-prefix architectures) -- the
  /// (design x adder) rows of the extended Pareto sweep.
  [[nodiscard]] std::vector<DesignEvaluation> evaluate_adder_variants() const;

  [[nodiscard]] const ExplorerOptions& options() const { return options_; }

  /// The sample stream used for activity measurement.
  [[nodiscard]] std::vector<std::int64_t> workload_stream() const;

 private:
  ExplorerOptions options_;
};

}  // namespace dwt::explore
