#include "common/exact_acc.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dwt::common {
namespace {

/// Adds `add` into limb `i` and propagates the carry upward.
void add_limb(std::uint64_t* limbs, int i, std::uint64_t add) {
  while (add != 0 && i < ExactAcc::kLimbs) {
    const std::uint64_t before = limbs[i];
    limbs[i] = before + add;
    add = limbs[i] < before ? 1 : 0;  // carry out
    ++i;
  }
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

void ExactAcc::add(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("ExactAcc::add: non-finite value");
  }
  if (v == 0.0) return;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const bool negative = (bits >> 63) != 0;
  const int biased_exp = static_cast<int>((bits >> 52) & 0x7FF);
  std::uint64_t mantissa = bits & 0xFFFFFFFFFFFFFULL;
  // Normal numbers carry an implicit leading bit and weight 2^(e-1075) per
  // mantissa unit; subnormals have no implicit bit and a fixed 2^-1074 unit.
  int shift;  // mantissa unit weight = 2^(shift - 1074)
  if (biased_exp == 0) {
    shift = 0;
  } else {
    mantissa |= 1ULL << 52;
    shift = biased_exp - 1;
  }
  const int limb = shift / 64;
  const int bit = shift % 64;
  std::uint64_t lo = mantissa << bit;
  std::uint64_t hi = bit == 0 ? 0 : mantissa >> (64 - bit);
  if (negative) {
    // Two's complement subtraction: add the negated 128-bit value, sign-
    // extended across the remaining limbs.
    lo = ~lo;
    hi = ~hi;
    if (++lo == 0) ++hi;
    add_limb(limbs_, limb, lo);
    add_limb(limbs_, limb + 1, hi);
    for (int i = limb + 2; i < kLimbs; ++i) {
      add_limb(limbs_, i, ~std::uint64_t{0});
    }
  } else {
    add_limb(limbs_, limb, lo);
    add_limb(limbs_, limb + 1, hi);
  }
}

void ExactAcc::add(const ExactAcc& other) {
  for (int i = 0; i < kLimbs; ++i) add_limb(limbs_, i, other.limbs_[i]);
}

bool ExactAcc::is_zero() const {
  for (const std::uint64_t limb : limbs_) {
    if (limb != 0) return false;
  }
  return true;
}

double ExactAcc::round() const {
  // Work on the magnitude: negate two's complement if the sign bit is set.
  std::uint64_t mag[kLimbs];
  const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
  if (negative) {
    std::uint64_t carry = 1;
    for (int i = 0; i < kLimbs; ++i) {
      mag[i] = ~limbs_[i] + carry;
      carry = carry != 0 && mag[i] == 0 ? 1 : 0;
    }
  } else {
    std::memcpy(mag, limbs_, sizeof mag);
  }
  int top = kLimbs - 1;
  while (top >= 0 && mag[top] == 0) --top;
  if (top < 0) return 0.0;
  // Highest set bit position p (value weight 2^(p - 1074)).
  const int p = top * 64 + 63 - std::countl_zero(mag[top]);
  // Extract the leading 54 bits (53-bit result + round bit), then apply
  // round-to-nearest-even on the rest.
  const auto bit_at = [&](int pos) -> int {
    if (pos < 0) return 0;
    return static_cast<int>((mag[pos / 64] >> (pos % 64)) & 1);
  };
  const int lsb_pos = p - 52;  // weight of the result's unit bit
  std::uint64_t frac = 0;
  for (int i = 0; i < 53; ++i) frac = (frac << 1) | bit_at(p - i);
  const int round_bit = bit_at(lsb_pos - 1);
  bool sticky = false;
  if (round_bit != 0) {
    // Sticky = any set bit below the round bit.
    for (int pos = 0; pos < lsb_pos - 1 && !sticky; pos += 64) {
      const int lim = pos / 64;
      std::uint64_t word = mag[lim];
      const int upto = lsb_pos - 1 - pos;  // bits of this limb that count
      if (upto < 64) word &= (std::uint64_t{1} << upto) - 1;
      sticky = word != 0;
    }
    if (sticky || (frac & 1) != 0) ++frac;
  }
  double out = std::ldexp(static_cast<double>(frac), lsb_pos - 1074);
  return negative ? -out : out;
}

std::string ExactAcc::to_hex() const {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(kLimbs * 16);
  for (int i = kLimbs - 1; i >= 0; --i) {
    for (int nib = 15; nib >= 0; --nib) {
      out += digits[(limbs_[i] >> (4 * nib)) & 0xF];
    }
  }
  return out;
}

ExactAcc ExactAcc::from_hex(const std::string& hex) {
  if (hex.size() != static_cast<std::size_t>(kLimbs) * 16) {
    throw std::invalid_argument("ExactAcc::from_hex: bad length");
  }
  ExactAcc acc;
  std::size_t at = 0;
  for (int i = kLimbs - 1; i >= 0; --i) {
    std::uint64_t limb = 0;
    for (int nib = 0; nib < 16; ++nib) {
      const int d = hex_digit(hex[at++]);
      if (d < 0) {
        throw std::invalid_argument("ExactAcc::from_hex: bad character");
      }
      limb = (limb << 4) | static_cast<std::uint64_t>(d);
    }
    acc.limbs_[i] = limb;
  }
  return acc;
}

}  // namespace dwt::common
