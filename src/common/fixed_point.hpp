// Fixed-point arithmetic support for the integer-rounded lifting coefficients
// (paper Table 1).  The paper represents each lifting constant as an integer
// ratio n/256 (8 fractional bits) stored in two's complement with 2 integer
// bits, e.g. alpha = -406/256 = "10.01101010".
#pragma once

#include <cstdint>
#include <string>

namespace dwt::common {

/// A signed fixed-point value with a compile-time-independent number of
/// fractional bits.  The paper's designs use frac_bits = 8 everywhere; the
/// class is generic so the word-length ablation can sweep it.
class Fixed {
 public:
  constexpr Fixed() = default;

  /// Constructs from a raw scaled integer (value = raw / 2^frac_bits).
  static constexpr Fixed from_raw(std::int64_t raw, int frac_bits) {
    return Fixed(raw, frac_bits);
  }

  /// Rounds a real value to the nearest representable fixed-point value
  /// (round half away from zero, matching the paper's rounded constants).
  static Fixed from_double(double value, int frac_bits);

  [[nodiscard]] constexpr std::int64_t raw() const { return raw_; }
  [[nodiscard]] constexpr int frac_bits() const { return frac_bits_; }
  [[nodiscard]] double to_double() const;

  /// Number of bits needed to store raw() in two's complement.
  [[nodiscard]] int min_signed_bits() const;

  /// Two's-complement rendering with a documentation decimal point, as used
  /// in Table 1: `int_bits` bits before the point, frac_bits() after.
  /// Example: alpha with int_bits=2 renders as "10.01101010".
  [[nodiscard]] std::string to_binary_string(int int_bits) const;

  friend constexpr bool operator==(const Fixed& a, const Fixed& b) = default;

 private:
  constexpr Fixed(std::int64_t raw, int frac_bits)
      : raw_(raw), frac_bits_(frac_bits) {}

  std::int64_t raw_ = 0;
  int frac_bits_ = 0;
};

/// Multiplies an integer sample by a fixed-point constant and truncates the
/// product back to an integer with an arithmetic right shift -- exactly the
/// datapath operation the paper's designs perform ("adjusted by 8-bit right
/// shift", section 3.2).
[[nodiscard]] std::int64_t mul_const_truncate(std::int64_t sample, const Fixed& c);

/// Number of bits required to represent all integers in [lo, hi] in two's
/// complement.
[[nodiscard]] int signed_bits_for_range(std::int64_t lo, std::int64_t hi);

}  // namespace dwt::common
