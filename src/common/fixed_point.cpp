#include "common/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

namespace dwt::common {

Fixed Fixed::from_double(double value, int frac_bits) {
  if (frac_bits < 0 || frac_bits > 60) {
    throw std::invalid_argument("Fixed::from_double: frac_bits out of range");
  }
  const double scaled = value * static_cast<double>(std::int64_t{1} << frac_bits);
  const double rounded = scaled >= 0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
  return Fixed(static_cast<std::int64_t>(rounded), frac_bits);
}

double Fixed::to_double() const {
  return static_cast<double>(raw_) /
         static_cast<double>(std::int64_t{1} << frac_bits_);
}

int Fixed::min_signed_bits() const {
  return signed_bits_for_range(raw_, raw_);
}

std::string Fixed::to_binary_string(int int_bits) const {
  const int total = int_bits + frac_bits_;
  if (total <= 0 || total > 62) {
    throw std::invalid_argument("Fixed::to_binary_string: width out of range");
  }
  const std::uint64_t mask = (std::uint64_t{1} << total) - 1;
  const std::uint64_t word = static_cast<std::uint64_t>(raw_) & mask;
  std::string out;
  out.reserve(static_cast<std::size_t>(total) + 1);
  for (int i = total - 1; i >= 0; --i) {
    out.push_back(((word >> i) & 1) != 0 ? '1' : '0');
    if (i == frac_bits_) out.push_back('.');
  }
  return out;
}

std::int64_t mul_const_truncate(std::int64_t sample, const Fixed& c) {
  const std::int64_t product = sample * c.raw();
  // Arithmetic right shift: C++20 guarantees two's complement and defines
  // right shift of negative values as arithmetic.
  return product >> c.frac_bits();
}

int signed_bits_for_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("signed_bits_for_range: lo > hi");
  int bits = 1;
  while (true) {
    // A signed `bits`-bit word covers [-2^(bits-1), 2^(bits-1) - 1].
    const std::int64_t min_v = -(std::int64_t{1} << (bits - 1));
    const std::int64_t max_v = (std::int64_t{1} << (bits - 1)) - 1;
    if (lo >= min_v && hi <= max_v) return bits;
    ++bits;
    if (bits > 62) throw std::overflow_error("signed_bits_for_range: > 62 bits");
  }
}

}  // namespace dwt::common
