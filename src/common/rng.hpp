// Deterministic pseudo-random number generation used by tests, workload
// generators and the power-estimation stimuli.  SplitMix64 is small, fast and
// reproducible across platforms, which keeps every benchmark row repeatable.
#pragma once

#include <cstdint>

namespace dwt::common {

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

 private:
  std::uint64_t state_;
};

}  // namespace dwt::common
