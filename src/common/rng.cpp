#include "common/rng.hpp"

#include <stdexcept>

namespace dwt::common {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace dwt::common
