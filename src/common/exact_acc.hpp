// Exact, order-independent accumulation of IEEE-754 doubles.
//
// Sharded fault campaigns must merge per-shard PSNR sums into the very bytes
// an unsharded run prints, and a checkpointed run must resume mid-shard with
// no drift -- which rules the usual left-fold double sum out: floating-point
// addition is not associative, so partial sums taken at shard or checkpoint
// boundaries would round differently from the straight per-trial fold.
//
// ExactAcc side-steps rounding entirely: every double is decomposed into its
// scaled-integer mantissa and added into a wide two's-complement fixed-point
// accumulator that spans the full finite double range (plus carry headroom
// for 2^63 additions), so the accumulated value is *exact* and therefore the
// same regardless of addition order or grouping.  round() returns the
// correctly-rounded (nearest-even) double of that exact value, so
//
//   round(a+b+c+d) == round((a+b) + (c+d)) == round((d+c) + (b+a))
//
// holds bit-for-bit -- the property the shard merge and checkpoint-resume
// paths are built on.  Accumulators serialize to a fixed-width hex string
// (byte-stable, embeddable in JSON) and merge by plain limb-wise addition.
#pragma once

#include <cstdint>
#include <string>

namespace dwt::common {

class ExactAcc {
 public:
  /// Fixed-point limbs: bit 0 of limb 0 has weight 2^-1074 (the smallest
  /// subnormal), so finite doubles need 1074 + 1024 = 2098 bits; three extra
  /// limbs give carry headroom for far more additions than any campaign
  /// runs, plus the sign bit of the two's-complement representation.
  static constexpr int kLimbs = 36;

  ExactAcc() = default;

  /// Adds a finite double exactly.  Throws std::invalid_argument on
  /// NaN/infinity (campaign sums only ever fold finite PSNR values; an
  /// infinity here would be a classification bug upstream).
  void add(double v);

  /// Limb-wise merge of another accumulator: exact, commutative,
  /// associative.
  void add(const ExactAcc& other);

  /// Correctly-rounded (round-to-nearest-even) double of the exact sum.
  [[nodiscard]] double round() const;

  [[nodiscard]] bool is_zero() const;

  /// Fixed-width lowercase hex of the raw limbs, most-significant limb
  /// first (kLimbs * 16 characters).  Byte-stable for identical sums.
  [[nodiscard]] std::string to_hex() const;

  /// Inverse of to_hex(); throws std::invalid_argument on any malformed
  /// input (wrong length, non-hex characters).
  [[nodiscard]] static ExactAcc from_hex(const std::string& hex);

  friend bool operator==(const ExactAcc&, const ExactAcc&) = default;

 private:
  std::uint64_t limbs_[kLimbs] = {};  // two's complement, limb 0 least
};

}  // namespace dwt::common
