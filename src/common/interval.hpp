// Integer interval arithmetic used for static bit-width (range) analysis of
// the lifting datapath registers -- reproducing the hand analysis of paper
// section 3.1, which derives the width of every internal register from the
// 8-bit signed input range.
#pragma once

#include <cstdint>

namespace dwt::common {

/// A closed integer interval [lo, hi].
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] static Interval point(std::int64_t v) { return {v, v}; }
  [[nodiscard]] static Interval signed_bits(int bits);

  [[nodiscard]] bool contains(std::int64_t v) const { return v >= lo && v <= hi; }
  [[nodiscard]] std::int64_t width() const { return hi - lo; }

  /// Minimum two's-complement bits covering the interval.
  [[nodiscard]] int min_signed_bits() const;

  friend bool operator==(const Interval&, const Interval&) = default;
};

[[nodiscard]] Interval operator+(Interval a, Interval b);
[[nodiscard]] Interval operator-(Interval a, Interval b);
[[nodiscard]] Interval operator*(Interval a, std::int64_t k);

/// Arithmetic right shift of every element (truncation toward -inf), as done
/// by the >>8 adjustment stages of the paper's datapath.
[[nodiscard]] Interval asr(Interval a, int shift);

/// Left shift (exact multiply by power of two), as produced by the shifted
/// partial products of the shift-add multipliers.
[[nodiscard]] Interval shl(Interval a, int shift);

/// Union (hull) of two intervals.
[[nodiscard]] Interval hull(Interval a, Interval b);

}  // namespace dwt::common
