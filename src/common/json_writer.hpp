// Shared byte-stable JSON emission helpers.
//
// Every machine-readable document this repo writes (bench --json files,
// faultcampaign reports) promises byte-identical output for identical model
// state, so reports diff cleanly across revisions.  The formatting rules
// that guarantee was built on -- backslash/quote-only escaping, "%.10g"
// general numbers with an integral fast path, fixed-precision numbers that
// degrade to null for non-finite values -- used to be duplicated between
// bench/bench_json.hpp and the hand-rolled emitter in explore/resilience.
// They live here now; both consumers emit the exact bytes they always did.
#pragma once

#include <string>
#include <vector>

namespace dwt::common {

/// Escapes '"' and '\\' (the only characters our emitters ever need to
/// escape; none of the repo's names or units contain control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

/// General-purpose number formatting: integral values print as integers,
/// everything else as "%.10g", non-finite values as "null".
[[nodiscard]] std::string json_number(double v);

/// Fixed-precision "%.*f" appended to `out`; non-finite values append
/// "null" (JSON has no Infinity/NaN literals).
void append_json_fixed(std::string& out, double v, int digits = 4);

/// Writer for the repo's flat record documents (see bench/schema.md):
///
///   {
///     "bench": "<name>",
///     "records": [
///       {"design": "...", "metric": "...", "value": N, "unit": "..."},
///       ...
///     ]
///   }
///
/// Byte-stable: fixed key order, insertion-ordered records, json_number()
/// formatting.  The bench binaries wrap this in bench::JsonReporter, which
/// adds the `--json <path>` argv convention.
class JsonRecordWriter {
 public:
  explicit JsonRecordWriter(std::string document_name)
      : name_(std::move(document_name)) {}

  void add(const std::string& design, const std::string& metric, double value,
           const std::string& unit) {
    records_.push_back({design, metric, value, unit});
  }

  [[nodiscard]] std::size_t record_count() const { return records_.size(); }

  /// Renders the whole document.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to `path`; returns false (and prints to stderr) when
  /// the file cannot be written.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  struct Record {
    std::string design;
    std::string metric;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<Record> records_;
};

}  // namespace dwt::common
