#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace dwt::common {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void append_json_fixed(std::string& out, double v, int digits) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  out += buf;
}

std::string JsonRecordWriter::render() const {
  std::string out;
  out.reserve(64 + 96 * records_.size());
  out += "{\n  \"bench\": \"" + name_ + "\",\n  \"records\": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"design\": \"" + json_escape(r.design) + "\", \"metric\": \"" +
           json_escape(r.metric) + "\", \"value\": " + json_number(r.value) +
           ", \"unit\": \"" + json_escape(r.unit) + "\"}";
  }
  out += records_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool JsonRecordWriter::write_file(const std::string& path) const {
  const std::string out = render();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "json: cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace dwt::common
