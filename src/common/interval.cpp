#include "common/interval.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/fixed_point.hpp"

namespace dwt::common {

Interval Interval::signed_bits(int bits) {
  if (bits < 1 || bits > 62) {
    throw std::invalid_argument("Interval::signed_bits: bits out of range");
  }
  return {-(std::int64_t{1} << (bits - 1)), (std::int64_t{1} << (bits - 1)) - 1};
}

int Interval::min_signed_bits() const {
  return signed_bits_for_range(lo, hi);
}

Interval operator+(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }

Interval operator-(Interval a, Interval b) { return {a.lo - b.hi, a.hi - b.lo}; }

Interval operator*(Interval a, std::int64_t k) {
  if (k >= 0) return {a.lo * k, a.hi * k};
  return {a.hi * k, a.lo * k};
}

Interval asr(Interval a, int shift) {
  if (shift < 0 || shift > 62) throw std::invalid_argument("asr: bad shift");
  return {a.lo >> shift, a.hi >> shift};
}

Interval shl(Interval a, int shift) {
  if (shift < 0 || shift > 62) throw std::invalid_argument("shl: bad shift");
  return {a.lo << shift, a.hi << shift};
}

Interval hull(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

}  // namespace dwt::common
