// Thread-safe, content-addressed cache of elaboration/compilation artifacts.
//
// Every execution engine in this repo starts from the same expensive steps:
// elaborate a DatapathConfig into a gate-level netlist (build_lifting_
// datapath), optionally rewrite it with a hardening transform, then lower it
// for the chosen engine (compile a bit-parallel tape, or simplify + map to
// APEX logic elements).  Until this cache existed, each tile-scheduler
// worker, stream-runner lane, fault campaign and bench re-ran those steps
// privately -- per worker, per call.  The cache memoizes them once per
// (datapath config, hardening style) content key and hands out shared
// immutable artifacts: the netlist, tape and mapped structures are all
// read-only after construction (simulator state lives in per-consumer
// Simulator/CompiledSimulator/MappedActivitySim instances), so one artifact
// safely feeds any number of threads.
//
// Concurrency contract: a key is built exactly once.  Racing requesters
// block on the winner's build and then share the same pointer -- the
// "same pointer across threads, never rebuilds" property the tests pin.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fpga/tech_mapper.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/cone_index.hpp"
#include "rtl/compiled/native_block.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/harden.hpp"

namespace dwt::core {

/// An elaborated (and possibly hardened) datapath plus the hardening
/// accounting produced while rewriting it.
struct CachedDesign {
  hw::BuiltDatapath dp;
  rtl::HardeningStyle harden = rtl::HardeningStyle::kNone;
  rtl::HardeningReport harden_report;  ///< zeros when harden == kNone
};

/// The FPGA lowering of a datapath: simplified netlist with re-bound
/// streaming ports, and its APEX mapping.  `mapped.source` points at
/// `dp.netlist`, so the artifact must stay alive while the mapping is used
/// (sharing the owning shared_ptr, or aliasing it, guarantees that).
struct MappedDesign {
  hw::BuiltDatapath dp;
  fpga::MappedNetlist mapped;
};

struct CacheStats {
  std::uint64_t design_builds = 0;
  std::uint64_t design_hits = 0;
  std::uint64_t tape_builds = 0;
  std::uint64_t tape_hits = 0;
  std::uint64_t mapped_builds = 0;
  std::uint64_t mapped_hits = 0;
  std::uint64_t cone_builds = 0;
  std::uint64_t cone_hits = 0;
  std::uint64_t native_builds = 0;
  std::uint64_t native_hits = 0;
};

/// Content key of a (datapath config, hardening style) pair.  Every
/// DatapathConfig field participates; when a field is added to
/// DatapathConfig it MUST be appended here, or distinct configurations
/// would alias one cache entry.
[[nodiscard]] std::string config_key(const hw::DatapathConfig& cfg,
                                     rtl::HardeningStyle harden);

class ArtifactCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Elaborated datapath (hardened when `harden` != kNone).
  [[nodiscard]] std::shared_ptr<const CachedDesign> design(
      const hw::DatapathConfig& cfg,
      rtl::HardeningStyle harden = rtl::HardeningStyle::kNone);

  /// Compiled bit-parallel tape of the (possibly hardened) datapath at the
  /// requested optimization level.  Each level is its own cache entry (the
  /// key gains an ";opt=N" suffix for N > 0, so O0 keys -- and the build
  /// counters pinned by existing consumers -- are unchanged), built
  /// directly via compile(netlist, level) from the shared design artifact.
  [[nodiscard]] std::shared_ptr<const rtl::compiled::Tape> tape(
      const hw::DatapathConfig& cfg,
      rtl::HardeningStyle harden = rtl::HardeningStyle::kNone,
      rtl::compiled::OptLevel level = rtl::compiled::OptLevel::kNone);

  /// Fan-out cone index of the tape the same (cfg, harden, level) triple
  /// yields -- keyed beside it (";cone" suffix) and likewise built exactly
  /// once, so every cone-restricted campaign batch shares one index.
  [[nodiscard]] std::shared_ptr<const rtl::compiled::ConeIndex> cone_index(
      const hw::DatapathConfig& cfg,
      rtl::HardeningStyle harden = rtl::HardeningStyle::kNone,
      rtl::compiled::OptLevel level = rtl::compiled::OptLevel::kNone);

  /// JIT'd machine code for the tape the same (cfg, harden, level) triple
  /// yields, at `words` lane words per slot -- keyed beside the tape
  /// (";native=W" suffix) so one emitted block feeds every simulator of a
  /// configuration at that width.  Returns null (and still caches the
  /// null, the build attempt is counted once) when the host cannot run
  /// native code for this width; callers fall back to the portable tiers.
  [[nodiscard]] std::shared_ptr<const rtl::compiled::NativeBlock> native_block(
      const hw::DatapathConfig& cfg, rtl::HardeningStyle harden,
      rtl::compiled::OptLevel level, unsigned words);

  /// simplify() + APEX mapping of the (possibly hardened) datapath.
  [[nodiscard]] std::shared_ptr<const MappedDesign> mapped(
      const hw::DatapathConfig& cfg,
      rtl::HardeningStyle harden = rtl::HardeningStyle::kNone);

  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry and zeroes the statistics (tests and cold/warm
  /// benchmarking; in-flight artifacts stay alive through their shared
  /// pointers).
  void clear();

  /// The process-wide cache every production consumer shares.
  static ArtifactCache& instance();

 private:
  template <typename T>
  struct Store {
    std::map<std::string, std::shared_future<std::shared_ptr<const T>>> map;
    std::uint64_t builds = 0;
    std::uint64_t hits = 0;
  };

  mutable std::mutex mutex_;
  Store<CachedDesign> designs_;
  Store<rtl::compiled::Tape> tapes_;
  Store<MappedDesign> mapped_;
  Store<rtl::compiled::ConeIndex> cones_;
  Store<rtl::compiled::NativeBlock> natives_;
};

}  // namespace dwt::core
