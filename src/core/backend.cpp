#include "core/backend.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace dwt::core {

dsp::Subbands1d ExecutionBackend::forward_1d(const BackendRequest& req,
                                             std::span<const double> x) const {
  std::vector<std::int64_t> ix(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ix[i] = static_cast<std::int64_t>(std::llround(x[i]));
  }
  const hw::StreamResult r = stream(req, ix);
  dsp::Subbands1d sb;
  sb.low.assign(r.low.begin(), r.low.end());
  sb.high.assign(r.high.begin(), r.high.end());
  return sb;
}

std::unique_ptr<Backend2dSession> ExecutionBackend::make_2d_session(
    const BackendRequest&) const {
  throw std::invalid_argument(std::string(name()) +
                              ": 2-D transform not supported");
}

hw::Dwt2dRunStats ExecutionBackend::forward_2d(const BackendRequest& req,
                                               dsp::Image& plane,
                                               int octaves) const {
  return make_2d_session(req)->forward(plane, octaves);
}

}  // namespace dwt::core
