// The unified execution seam: one abstraction over every way this repo can
// run the 9/7 lifting transform, from the pure software models to the
// gate-level and FPGA-mapped simulations.  The paper's whole point is
// comparing the *same* transform across implementation styles; the
// ExecutionBackend interface is that comparison surface as an API.  Each
// backend is parameterized by DesignId (gate-level engines elaborate the
// corresponding Table 3 architecture; software engines ignore it) and draws
// its elaboration/compilation artifacts from the shared ArtifactCache, so
// any number of workers can run the same backend without re-elaborating.
//
// Registered engines (see core/registry.hpp):
//   software-float    dsp lifting model, float coefficients  (not bit-exact)
//   software-fixed    dsp fixed-point model -- the bit-exactness reference
//   rtl-interpreted   scalar zero-delay gate-level simulator
//   rtl-compiled      bit-parallel compiled-tape simulator
//   fpga-mapped       APEX-mapped transport-delay simulator (1-D only)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "dsp/dwt1d.hpp"
#include "dsp/image.hpp"
#include "hw/designs.hpp"
#include "hw/dwt2d_system.hpp"
#include "hw/stream_runner.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/tape.hpp"

namespace dwt::core {

/// Parameters a backend needs to instantiate its engine.
struct BackendRequest {
  hw::DesignId design = hw::DesignId::kDesign2;  ///< gate-level core choice
  /// Gate-level cores are sized for this 2-D recursion depth (LL
  /// coefficients outgrow the paper's 8-bit inputs past one octave).
  int max_octaves = 1;
  /// Adder-architecture override for gate-level cores: swaps the design's
  /// paper realization for any member of the rtl::AdderArch family (the
  /// (design x adder) sweep axis).  nullopt keeps the paper's choice.
  /// Results never change -- every architecture computes identical words --
  /// only area/timing/power and the elaborated netlist do.
  std::optional<rtl::AdderArch> adder;
  int frac_bits = dsp::kDefaultFracBits;  ///< software fixed-point precision
  /// Tape optimization level for the rtl-compiled backend (ignored by every
  /// other engine).  Streaming through a backend is fault-free, so the full
  /// pipeline -- which trades fault-overlay exactness for fewer
  /// instructions -- is the default; ports survive every pass.
  rtl::compiled::OptLevel opt_level = rtl::compiled::OptLevel::kFull;
  /// Execution tier for the rtl-compiled backend (other engines ignore it).
  /// kAuto resolves to the fastest tier the host supports -- the JIT'd
  /// native tier where available, the threaded interpreter otherwise -- and
  /// the DWT_EXEC_TIER environment variable overrides any request.  Tier
  /// choice never changes results; every tier computes identical words.
  rtl::compiled::ExecTier exec_tier = rtl::compiled::ExecTier::kAuto;
};

/// Capability flags: what a backend's results mean and which entry points
/// it implements.
struct BackendCaps {
  bool gate_level = false;      ///< backed by an elaborated netlist
  bool cycle_accurate = false;  ///< StreamResult::cycles is meaningful
  /// Output is bit-identical to the software fixed-point reference.
  bool bit_exact = false;
  bool forward_2d = false;  ///< make_2d_session / forward_2d supported
  bool inverse_2d = false;  ///< 2-D sessions implement inverse()
};

/// Per-worker execution state for 2-D transforms (e.g. one gate-level core
/// simulation per tile-scheduler worker).  Sessions are single-threaded;
/// create one per worker.  The expensive shared artifacts behind a session
/// come from the ArtifactCache, so sessions are cheap to create.
class Backend2dSession {
 public:
  virtual ~Backend2dSession() = default;

  /// In-place multi-octave forward transform (packed LL|HL / LH|HH layout,
  /// identical to dsp::dwt2d_forward's).  Returns cycle accounting (zeros
  /// for software backends).
  virtual hw::Dwt2dRunStats forward(dsp::Image& plane, int octaves) = 0;

  /// Inverse of forward().  Throws std::invalid_argument when the backend
  /// does not support it (caps().inverse_2d == false).
  virtual void inverse(dsp::Image& plane, int octaves) = 0;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  [[nodiscard]] virtual BackendCaps caps() const = 0;

  /// Streams integer samples (any non-zero length; odd lengths follow the
  /// JPEG2000 (1,1) symmetric extension) through the engine and returns the
  /// coefficient window.  Gate-level backends report consumed clock cycles;
  /// software backends report 0.
  [[nodiscard]] virtual hw::StreamResult stream(
      const BackendRequest& req, std::span<const std::int64_t> x) const = 0;

  /// One-octave 1-D transform in the dsp double domain.  Fixed-point and
  /// gate-level backends produce exact integers stored in doubles; the
  /// float backend produces fractional coefficients.
  [[nodiscard]] virtual dsp::Subbands1d forward_1d(
      const BackendRequest& req, std::span<const double> x) const;

  /// Creates a per-worker 2-D session.  Throws std::invalid_argument when
  /// caps().forward_2d is false.
  [[nodiscard]] virtual std::unique_ptr<Backend2dSession> make_2d_session(
      const BackendRequest& req) const;

  /// One-shot 2-D convenience wrapper around make_2d_session().
  hw::Dwt2dRunStats forward_2d(const BackendRequest& req, dsp::Image& plane,
                               int octaves) const;
};

}  // namespace dwt::core
