#include "core/registry.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/artifact_cache.hpp"
#include "dsp/dwt2d.hpp"
#include "fpga/mapped_sim.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/simulator.hpp"

namespace dwt::core {
namespace {

// ---------------------------------------------------------------------------
// Software engines: the dsp lifting models.  DesignId is irrelevant (every
// paper design computes the same transform); only frac_bits matters.

class Software2dSession final : public Backend2dSession {
 public:
  Software2dSession(dsp::Method method, int frac_bits)
      : method_(method), frac_bits_(frac_bits) {}

  hw::Dwt2dRunStats forward(dsp::Image& plane, int octaves) override {
    dsp::dwt2d_forward(method_, plane, octaves, frac_bits_);
    hw::Dwt2dRunStats stats;
    stats.octaves = octaves;
    return stats;
  }

  void inverse(dsp::Image& plane, int octaves) override {
    dsp::dwt2d_inverse(method_, plane, octaves, frac_bits_);
  }

 private:
  dsp::Method method_;
  int frac_bits_;
};

class SoftwareBackend final : public ExecutionBackend {
 public:
  SoftwareBackend(std::string_view name, std::string_view description,
                  dsp::Method method, bool bit_exact)
      : name_(name),
        description_(description),
        method_(method),
        bit_exact_(bit_exact) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  BackendCaps caps() const override {
    BackendCaps c;
    c.bit_exact = bit_exact_;
    c.forward_2d = true;
    c.inverse_2d = true;
    return c;
  }

  hw::StreamResult stream(const BackendRequest& req,
                          std::span<const std::int64_t> x) const override {
    std::vector<double> d(x.begin(), x.end());
    const dsp::Subbands1d sb = dsp::dwt1d_forward(method_, d, req.frac_bits);
    hw::StreamResult r;
    r.low.resize(sb.low.size());
    r.high.resize(sb.high.size());
    // The fixed-point model already produces exact integers; the float
    // model's fractional coefficients are rounded into the integer stream
    // domain (hence caps().bit_exact == false for it -- use forward_1d for
    // its full-precision output).
    for (std::size_t i = 0; i < sb.low.size(); ++i) {
      r.low[i] = static_cast<std::int64_t>(std::llround(sb.low[i]));
    }
    for (std::size_t i = 0; i < sb.high.size(); ++i) {
      r.high[i] = static_cast<std::int64_t>(std::llround(sb.high[i]));
    }
    return r;
  }

  dsp::Subbands1d forward_1d(const BackendRequest& req,
                             std::span<const double> x) const override {
    return dsp::dwt1d_forward(method_, x, req.frac_bits);
  }

  std::unique_ptr<Backend2dSession> make_2d_session(
      const BackendRequest& req) const override {
    return std::make_unique<Software2dSession>(method_, req.frac_bits);
  }

 private:
  std::string_view name_;
  std::string_view description_;
  dsp::Method method_;
  bool bit_exact_;
};

// ---------------------------------------------------------------------------
// Gate-level engines.  All artifacts come from the shared ArtifactCache;
// per-call/per-session objects carry only simulator state.

/// The cache-shared native block for a compiled-engine request, or null
/// when the resolved tier is not native (kAuto resolution, DWT_EXEC_TIER
/// override and host support all folded in by resolve_exec_tier).  A null
/// return simply means "let the simulator resolve the portable tier";
/// native_block() itself also returns (and caches) null on hosts that
/// cannot run emitted code, which set_native() demotes to threaded.
std::shared_ptr<const rtl::compiled::NativeBlock> shared_native(
    ArtifactCache& cache, const hw::DatapathConfig& cfg,
    const BackendRequest& req) {
  if (rtl::compiled::resolve_exec_tier(req.exec_tier, /*words=*/1) !=
      rtl::compiled::ExecTier::kNative) {
    return nullptr;
  }
  return cache.native_block(cfg, rtl::HardeningStyle::kNone, req.opt_level,
                            /*words=*/1);
}

/// 2-D session around the figure-4 system model, on either line engine.
class GateSession final : public Backend2dSession {
 public:
  explicit GateSession(std::shared_ptr<const hw::BuiltDatapath> core)
      : system_(std::move(core)) {}
  GateSession(std::shared_ptr<const hw::BuiltDatapath> core,
              std::shared_ptr<const rtl::compiled::Tape> tape,
              rtl::compiled::ExecTier tier,
              std::shared_ptr<const rtl::compiled::NativeBlock> native)
      : system_(std::move(core), std::move(tape)) {
    system_.set_exec_tier(tier, std::move(native));
  }

  hw::Dwt2dRunStats forward(dsp::Image& plane, int octaves) override {
    return system_.transform(plane, octaves);
  }

  void inverse(dsp::Image&, int) override {
    throw std::invalid_argument(
        "gate-level backends do not implement the 2-D inverse");
  }

 private:
  hw::Dwt2dSystem system_;
};

/// Aliases the cached artifact's datapath: the returned pointer shares the
/// artifact's lifetime, so the netlist outlives every simulator built on it.
std::shared_ptr<const hw::BuiltDatapath> share_datapath(
    std::shared_ptr<const CachedDesign> d) {
  const hw::BuiltDatapath* dp = &d->dp;
  return {std::move(d), dp};
}

class RtlInterpretedBackend final : public ExecutionBackend {
 public:
  std::string_view name() const override { return "rtl-interpreted"; }
  std::string_view description() const override {
    return "gate-level netlist on the scalar zero-delay simulator";
  }

  BackendCaps caps() const override {
    BackendCaps c;
    c.gate_level = true;
    c.cycle_accurate = true;
    c.bit_exact = true;
    c.forward_2d = true;
    return c;
  }

  hw::StreamResult stream(const BackendRequest& req,
                          std::span<const std::int64_t> x) const override {
    const std::shared_ptr<const CachedDesign> d = ArtifactCache::instance().design(
        hw::design_config(req.design, req.max_octaves, req.adder));
    rtl::Simulator sim(d->dp.netlist);
    return hw::run_stream(d->dp, sim, x);
  }

  std::unique_ptr<Backend2dSession> make_2d_session(
      const BackendRequest& req) const override {
    return std::make_unique<GateSession>(
        share_datapath(ArtifactCache::instance().design(
            hw::design_config(req.design, req.max_octaves, req.adder))));
  }
};

class RtlCompiledBackend final : public ExecutionBackend {
 public:
  std::string_view name() const override { return "rtl-compiled"; }
  std::string_view description() const override {
    return "gate-level netlist on the bit-parallel compiled-tape simulator";
  }

  BackendCaps caps() const override {
    BackendCaps c;
    c.gate_level = true;
    c.cycle_accurate = true;
    c.bit_exact = true;
    c.forward_2d = true;
    return c;
  }

  hw::StreamResult stream(const BackendRequest& req,
                          std::span<const std::int64_t> x) const override {
    ArtifactCache& cache = ArtifactCache::instance();
    const hw::DatapathConfig cfg =
        hw::design_config(req.design, req.max_octaves, req.adder);
    const std::shared_ptr<const CachedDesign> d = cache.design(cfg);
    rtl::compiled::BatchFaultSession session(
        cache.tape(cfg, rtl::HardeningStyle::kNone, req.opt_level));
    if (auto native = shared_native(cache, cfg, req)) {
      session.sim().set_native(std::move(native));
    } else {
      session.sim().set_exec_tier(req.exec_tier);
    }
    return std::move(
        hw::run_stream_batch(d->dp, session, x, /*lanes=*/1).front());
  }

  std::unique_ptr<Backend2dSession> make_2d_session(
      const BackendRequest& req) const override {
    ArtifactCache& cache = ArtifactCache::instance();
    const hw::DatapathConfig cfg =
        hw::design_config(req.design, req.max_octaves, req.adder);
    return std::make_unique<GateSession>(
        share_datapath(cache.design(cfg)),
        cache.tape(cfg, rtl::HardeningStyle::kNone, req.opt_level),
        req.exec_tier, shared_native(cache, cfg, req));
  }
};

class FpgaMappedBackend final : public ExecutionBackend {
 public:
  std::string_view name() const override { return "fpga-mapped"; }
  std::string_view description() const override {
    return "APEX-mapped netlist on the transport-delay activity simulator "
           "(1-D only)";
  }

  BackendCaps caps() const override {
    BackendCaps c;
    c.gate_level = true;
    c.cycle_accurate = true;
    c.bit_exact = true;
    return c;
  }

  hw::StreamResult stream(const BackendRequest& req,
                          std::span<const std::int64_t> x) const override {
    const std::shared_ptr<const MappedDesign> md =
        ArtifactCache::instance().mapped(
            hw::design_config(req.design, req.max_octaves, req.adder));
    fpga::MappedActivitySim sim(md->mapped);
    return hw::run_stream_mapped(md->dp, sim, x);
  }
};

}  // namespace

const std::vector<const ExecutionBackend*>& all_backends() {
  static const SoftwareBackend software_float{
      "software-float",
      "lifting scheme, floating-point coefficients (accuracy reference)",
      dsp::Method::kLiftingFloat, /*bit_exact=*/false};
  static const SoftwareBackend software_fixed{
      "software-fixed",
      "lifting scheme, fixed-point coefficients (bit-exactness reference)",
      dsp::Method::kLiftingFixed, /*bit_exact=*/true};
  static const RtlInterpretedBackend rtl_interpreted;
  static const RtlCompiledBackend rtl_compiled;
  static const FpgaMappedBackend fpga_mapped;
  static const std::vector<const ExecutionBackend*> backends = {
      &software_float, &software_fixed, &rtl_interpreted, &rtl_compiled,
      &fpga_mapped};
  return backends;
}

const ExecutionBackend* find_backend(std::string_view name) {
  for (const ExecutionBackend* b : all_backends()) {
    if (b->name() == name) return b;
  }
  return nullptr;
}

std::string backend_names(std::string_view sep) {
  std::string out;
  for (const ExecutionBackend* b : all_backends()) {
    if (!out.empty()) out += sep;
    out += b->name();
  }
  return out;
}

}  // namespace dwt::core
