// The backend registry: every ExecutionBackend the build knows about,
// addressable by stable name.  Tools expose the names through --backend /
// --list-backends, benches select engines by name, and the equivalence
// tests iterate the registry so a newly registered engine is automatically
// held to the bit-exactness contract its caps() declare.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/backend.hpp"

namespace dwt::core {

/// Every registered engine, in presentation order.  Pointers are to
/// process-lifetime singletons; never freed, safe to cache.
[[nodiscard]] const std::vector<const ExecutionBackend*>& all_backends();

/// Looks an engine up by registry name ("software-float", "software-fixed",
/// "rtl-interpreted", "rtl-compiled", "fpga-mapped").  Returns nullptr for
/// unknown names.
[[nodiscard]] const ExecutionBackend* find_backend(std::string_view name);

/// Registry names joined with `sep` -- for usage strings and diagnostics.
[[nodiscard]] std::string backend_names(std::string_view sep = "|");

}  // namespace dwt::core
