#include "core/artifact_cache.hpp"

#include <utility>

#include "rtl/simplify.hpp"

namespace dwt::core {

std::string config_key(const hw::DatapathConfig& cfg,
                       rtl::HardeningStyle harden) {
  std::string key;
  key.reserve(48);
  key += "mul=";
  key += std::to_string(static_cast<int>(cfg.multiplier));
  key += ";add=";
  key += std::to_string(static_cast<int>(cfg.adder_style));
  key += ";pipe=";
  key += cfg.pipelined_operators ? '1' : '0';
  key += ";gran=";
  key += std::to_string(cfg.pipeline_granularity);
  key += ";in=";
  key += std::to_string(cfg.input_bits);
  key += ";frac=";
  key += std::to_string(cfg.frac_bits);
  key += ";rec=";
  key += std::to_string(static_cast<int>(cfg.recoding));
  key += ";sum=";
  key += std::to_string(static_cast<int>(cfg.sum_structure));
  key += ";pw=";
  key += cfg.paper_widths ? '1' : '0';
  key += ";hard=";
  key += std::to_string(static_cast<int>(harden));
  return key;
}

namespace {

/// Looks `key` up, building via `build()` on a miss.  The build runs outside
/// the lock (so independent keys elaborate in parallel and a build may
/// recursively request other keys) while racing requesters of the same key
/// wait on the winner's future.

template <typename T, typename Build>
std::shared_ptr<const T> get_or_build(
    std::mutex& mutex,
    std::map<std::string, std::shared_future<std::shared_ptr<const T>>>& map,
    std::uint64_t& builds, std::uint64_t& hits, const std::string& key,
    Build&& build) {
  std::promise<std::shared_ptr<const T>> promise;
  bool won = false;
  std::shared_future<std::shared_ptr<const T>> future;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = map.find(key);
    if (it != map.end()) {
      ++hits;
      future = it->second;
    } else {
      ++builds;
      won = true;
      future = promise.get_future().share();
      map.emplace(key, future);
    }
  }
  if (!won) return future.get();
  try {
    promise.set_value(build());
  } catch (...) {
    // Propagate to every waiter, then forget the entry so a later call can
    // retry (a failed build must not poison the key forever).
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mutex);
    map.erase(key);
  }
  return future.get();
}

}  // namespace

std::shared_ptr<const CachedDesign> ArtifactCache::design(
    const hw::DatapathConfig& cfg, rtl::HardeningStyle harden) {
  const std::string key = config_key(cfg, harden);
  return get_or_build(
      mutex_, designs_.map, designs_.builds, designs_.hits, key,
      [&]() -> std::shared_ptr<const CachedDesign> {
        auto artifact = std::make_shared<CachedDesign>();
        artifact->harden = harden;
        if (harden == rtl::HardeningStyle::kNone) {
          artifact->dp = hw::build_lifting_datapath(cfg);
        } else {
          const std::shared_ptr<const CachedDesign> base =
              design(cfg, rtl::HardeningStyle::kNone);
          artifact->dp = hw::harden_datapath(base->dp, harden,
                                             &artifact->harden_report);
        }
        return artifact;
      });
}

std::shared_ptr<const rtl::compiled::Tape> ArtifactCache::tape(
    const hw::DatapathConfig& cfg, rtl::HardeningStyle harden,
    rtl::compiled::OptLevel level) {
  std::string key = config_key(cfg, harden);
  if (level != rtl::compiled::OptLevel::kNone) {
    key += ";opt=";
    key += std::to_string(static_cast<int>(level));
  }
  return get_or_build(mutex_, tapes_.map, tapes_.builds, tapes_.hits, key,
                      [&]() {
                        const std::shared_ptr<const CachedDesign> d =
                            design(cfg, harden);
                        return rtl::compiled::compile(d->dp.netlist, level);
                      });
}

std::shared_ptr<const rtl::compiled::ConeIndex> ArtifactCache::cone_index(
    const hw::DatapathConfig& cfg, rtl::HardeningStyle harden,
    rtl::compiled::OptLevel level) {
  std::string key = config_key(cfg, harden);
  if (level != rtl::compiled::OptLevel::kNone) {
    key += ";opt=";
    key += std::to_string(static_cast<int>(level));
  }
  key += ";cone";
  return get_or_build(mutex_, cones_.map, cones_.builds, cones_.hits, key,
                      [&]() {
                        const std::shared_ptr<const rtl::compiled::Tape> t =
                            tape(cfg, harden, level);
                        return rtl::compiled::ConeIndex::build(*t);
                      });
}

std::shared_ptr<const rtl::compiled::NativeBlock> ArtifactCache::native_block(
    const hw::DatapathConfig& cfg, rtl::HardeningStyle harden,
    rtl::compiled::OptLevel level, unsigned words) {
  std::string key = config_key(cfg, harden);
  if (level != rtl::compiled::OptLevel::kNone) {
    key += ";opt=";
    key += std::to_string(static_cast<int>(level));
  }
  key += ";native=";
  key += std::to_string(words);
  return get_or_build(
      mutex_, natives_.map, natives_.builds, natives_.hits, key,
      [&]() -> std::shared_ptr<const rtl::compiled::NativeBlock> {
        const std::shared_ptr<const rtl::compiled::Tape> t =
            tape(cfg, harden, level);
        return rtl::compiled::NativeBlock::build(*t, words);
      });
}

std::shared_ptr<const MappedDesign> ArtifactCache::mapped(
    const hw::DatapathConfig& cfg, rtl::HardeningStyle harden) {
  const std::string key = config_key(cfg, harden);
  return get_or_build(
      mutex_, mapped_.map, mapped_.builds, mapped_.hits, key,
      [&]() -> std::shared_ptr<const MappedDesign> {
        const std::shared_ptr<const CachedDesign> d = design(cfg, harden);
        // Build in place inside the shared_ptr: `mapped.source` points at
        // `dp.netlist`, so the Netlist must never move after mapping.
        auto artifact = std::make_shared<MappedDesign>();
        artifact->dp.netlist = rtl::simplify(d->dp.netlist);
        artifact->dp.in_even = artifact->dp.netlist.find_input_bus("in_even");
        artifact->dp.in_odd = artifact->dp.netlist.find_input_bus("in_odd");
        artifact->dp.out_low = artifact->dp.netlist.output("low");
        artifact->dp.out_high = artifact->dp.netlist.output("high");
        artifact->dp.info = d->dp.info;
        artifact->dp.config = d->dp.config;
        artifact->mapped = fpga::map_to_apex(artifact->dp.netlist);
        return artifact;
      });
}

CacheStats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.design_builds = designs_.builds;
  s.design_hits = designs_.hits;
  s.tape_builds = tapes_.builds;
  s.tape_hits = tapes_.hits;
  s.mapped_builds = mapped_.builds;
  s.mapped_hits = mapped_.hits;
  s.cone_builds = cones_.builds;
  s.cone_hits = cones_.hits;
  s.native_builds = natives_.builds;
  s.native_hits = natives_.hits;
  return s;
}

void ArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  designs_.map.clear();
  tapes_.map.clear();
  mapped_.map.clear();
  cones_.map.clear();
  natives_.map.clear();
  designs_.builds = designs_.hits = 0;
  tapes_.builds = tapes_.hits = 0;
  mapped_.builds = mapped_.hits = 0;
  cones_.builds = cones_.hits = 0;
  natives_.builds = natives_.hits = 0;
}

ArtifactCache& ArtifactCache::instance() {
  static ArtifactCache cache;
  return cache;
}

}  // namespace dwt::core
