// Structural statistics of a netlist: primitive counts, operator counts
// (adders identified by carry-chain tags or full-adder gate clusters),
// register bits, and pipeline depth (longest DFF-to-DFF register distance
// from inputs to outputs), reported by the figure-oriented benches.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

struct NetlistStats {
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::map<CellKind, std::size_t> by_kind;
  std::size_t register_bits = 0;     ///< DFF count
  std::size_t carry_chains = 0;      ///< distinct behavioral adder chains
  std::size_t chain_bits = 0;        ///< total carry-chain sum bits
  std::size_t gate_cells = 0;        ///< plain gates (structural logic)
  int pipeline_stages = 0;           ///< registers on the longest input->output path

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& nl);

/// Registers crossed on the longest path from any primary input to any bound
/// output (the architecture's pipeline latency in cycles).
[[nodiscard]] int pipeline_depth(const Netlist& nl);

}  // namespace dwt::rtl
