#include "rtl/shiftadd_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "dsp/lifting_coeffs.hpp"

namespace dwt::rtl {
namespace {

/// Two's-complement digits of `c` in the Q2.8-style datapath width the paper
/// uses for all constants (2 integer + frac bits); bit w-1 weighs -2^(w-1).
std::vector<int> twos_complement_digits(std::int64_t c, int width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  if (c < lo || c > hi) {
    throw std::invalid_argument("shiftadd: constant does not fit datapath width");
  }
  std::vector<int> digits(static_cast<std::size_t>(width), 0);
  const std::uint64_t word =
      static_cast<std::uint64_t>(c) & ((std::uint64_t{1} << width) - 1);
  for (int i = 0; i < width; ++i) {
    if ((word >> i) & 1) digits[static_cast<std::size_t>(i)] = 1;
  }
  if (digits[static_cast<std::size_t>(width - 1)] == 1) {
    digits[static_cast<std::size_t>(width - 1)] = -1;  // sign bit subtracts
  }
  return digits;
}

/// Canonical signed-digit recoding: digits in {-1,0,1}, no two adjacent
/// non-zeros, minimal non-zero count.
std::vector<int> csd_digits(std::int64_t c) {
  std::vector<int> digits;
  std::int64_t v = c;
  while (v != 0) {
    if (v % 2 == 0) {
      digits.push_back(0);
      v /= 2;
    } else {
      // Choose the digit that makes the remaining value even twice over.
      const int d = (v % 4 == 1 || v % 4 == -3) ? 1 : -1;
      digits.push_back(d);
      v = (v - d) / 2;
    }
  }
  return digits;
}

ShiftAddPlan plan_from_digits(std::int64_t c, Recoding recoding,
                              const std::vector<int>& digits,
                              bool try_reuse) {
  ShiftAddPlan plan;
  plan.constant = c;
  plan.recoding = recoding;

  std::vector<bool> used(digits.size(), false);
  if (try_reuse) {
    // Find disjoint adjacent positive pairs (i, i+1): each computes
    // 3x << i from the shared t = x + (x << 1).  Worth it only if at least
    // two pairs exist (one adder builds t, each pair saves one adder).
    std::vector<int> pair_starts;
    for (std::size_t i = 0; i + 1 < digits.size(); ++i) {
      if (digits[i] == 1 && digits[i + 1] == 1 && !used[i] && !used[i + 1]) {
        pair_starts.push_back(static_cast<int>(i));
        used[i] = used[i + 1] = true;
      }
    }
    if (pair_starts.size() >= 2) {
      plan.has_shared_3x = true;
      for (const int i : pair_starts) {
        plan.terms.push_back(
            {.shift = i, .negative = false, .uses_shared_3x = true});
      }
    } else {
      used.assign(digits.size(), false);  // not worth it; fall through
    }
  }
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (digits[i] == 0 || used[i]) continue;
    plan.terms.push_back({.shift = static_cast<int>(i),
                          .negative = digits[i] < 0,
                          .uses_shared_3x = false});
  }
  if (plan.terms.empty()) {
    throw std::invalid_argument("shiftadd: zero constant");
  }
  return plan;
}

}  // namespace

int ShiftAddPlan::adders_for_products() const {
  return static_cast<int>(terms.size()) - 1 + (has_shared_3x ? 1 : 0);
}

std::int64_t ShiftAddPlan::apply(std::int64_t x) const {
  std::int64_t acc = 0;
  const std::int64_t t = 3 * x;
  for (const ShiftAddTerm& term : terms) {
    const std::int64_t src = term.uses_shared_3x ? t : x;
    const std::int64_t shifted = src << term.shift;
    acc += term.negative ? -shifted : shifted;
  }
  return acc;
}

std::string ShiftAddPlan::to_string() const {
  std::ostringstream os;
  os << constant << "*x = ";
  bool first = true;
  for (const ShiftAddTerm& t : terms) {
    if (!first || t.negative) os << (t.negative ? " - " : " + ");
    os << (t.uses_shared_3x ? "(3x)" : "x");
    if (t.shift > 0) os << "<<" << t.shift;
    first = false;
  }
  if (has_shared_3x) os << "   [3x = x + x<<1 shared]";
  return os.str();
}

ShiftAddPlan make_shiftadd_plan(std::int64_t constant, Recoding recoding) {
  switch (recoding) {
    case Recoding::kBinary:
    case Recoding::kBinaryWithReuse: {
      // The paper keeps every constant in the common Q2.8-style word
      // (2 integer bits + 8 fractional), i.e. 10 bits, regardless of its
      // minimal width; honour that unless the value needs more.
      const int width =
          std::max(10, common::signed_bits_for_range(constant, constant));
      return plan_from_digits(constant, recoding,
                              twos_complement_digits(constant, width),
                              recoding == Recoding::kBinaryWithReuse);
    }
    case Recoding::kCsd: {
      if (constant == 0) throw std::invalid_argument("shiftadd: zero constant");
      return plan_from_digits(constant, recoding, csd_digits(constant),
                              /*try_reuse=*/false);
    }
  }
  throw std::invalid_argument("make_shiftadd_plan: unknown recoding");
}

std::vector<MultiplierAdderCount> paper_multiplier_adder_counts(
    Recoding recoding) {
  const auto c = dsp::LiftingFixedCoeffs::rounded(8);
  auto entry = [recoding](std::string name, std::int64_t k, int pre_post) {
    const ShiftAddPlan plan = make_shiftadd_plan(k, recoding);
    return MultiplierAdderCount{std::move(name), k, plan.adders_for_products(),
                                pre_post};
  };
  // Lifting-step multipliers include the r0+r2 pre-adder and the +r3
  // post-adder in the paper's accounting; output scale blocks do not.
  return {
      entry("alpha", c.alpha.raw(), 2),
      entry("beta", c.beta.raw(), 2),
      entry("gamma", c.gamma.raw(), 2),
      entry("delta", c.delta.raw(), 2),
      entry("-k", c.minus_k.raw(), 0),
      entry("1/k", c.inv_k.raw(), 0),
  };
}

}  // namespace dwt::rtl
