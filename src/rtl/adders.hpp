// Multi-operand summation structures: balanced adder trees (used by the
// shift-add multipliers) with optional per-adder pipeline cuts, and a
// sequential accumulator (used by the generic array multiplier of design 1).
#pragma once

#include <vector>

#include "rtl/registers.hpp"

namespace dwt::rtl {

/// How multi-operand sums are scheduled.  The paper's figures 7/8 accumulate
/// partial products sequentially (one running sum); a balanced tree is the
/// lower-latency alternative explored by the ablation bench.
enum class SumStructure {
  kSequential,
  kTree,
};

/// A signed operand of a multi-term sum.
struct SignedTerm {
  Word word;
  bool negative = false;
};

/// Sums signed terms with the requested structure.  At least one positive
/// term is required (the running sum starts positive, as in the paper's
/// two's-complement partial-product ordering).
[[nodiscard]] Word sum_signed(Pipeliner& p, std::vector<SignedTerm> terms,
                              SumStructure structure, AdderStyle style,
                              const std::string& name);

/// Sums the words with a balanced binary adder tree.  In pipelined mode each
/// adder output is registered ("just one sum operation at each pipeline
/// stage", paper section 3.3) and converging operands are shimmed to equal
/// depth automatically.
[[nodiscard]] Word sum_tree(Pipeliner& p, std::vector<Word> terms,
                            AdderStyle style, const std::string& name);

/// Sums positive terms and subtracts negative ones:
/// result = sum(pos) - sum(neg).  `neg` may be empty.
[[nodiscard]] Word sum_with_negatives(Pipeliner& p, std::vector<Word> pos,
                                      std::vector<Word> neg, AdderStyle style,
                                      const std::string& name);

/// Sequential (linear chain) accumulation, the structure a generic
/// multiplier megacore uses: acc = ((t0 + t1) + t2) + ...
[[nodiscard]] Word sum_chain(Pipeliner& p, std::vector<Word> terms,
                             AdderStyle style, const std::string& name);

}  // namespace dwt::rtl
