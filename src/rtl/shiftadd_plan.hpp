// Decomposition of multiplication-by-constant into shifted additions (paper
// section 3.2 / figure 7).  The paper recodes each lifting constant's two's
// complement representation directly: every set bit becomes one shifted
// partial product, the sign bit a subtracted one, plus an optional
// shared-subexpression reuse that saves one adder for beta.  A canonical
// signed-digit (CSD) mode is provided for the recoding ablation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"

namespace dwt::rtl {

enum class Recoding {
  kBinary,           ///< plain two's complement bits (the paper's scheme)
  kBinaryWithReuse,  ///< + single shared "3x" subexpression (paper's beta)
  kCsd,              ///< canonical signed digit (ablation)
};

/// One shifted addend: contributes sign * (source << shift), where source is
/// the multiplicand x or the shared subexpression t = 3x.
struct ShiftAddTerm {
  int shift = 0;
  bool negative = false;
  bool uses_shared_3x = false;
};

struct ShiftAddPlan {
  std::int64_t constant = 0;  ///< the integer constant being multiplied
  Recoding recoding = Recoding::kBinary;
  bool has_shared_3x = false;  ///< a t = x + (x << 1) pre-term is computed
  std::vector<ShiftAddTerm> terms;

  /// Adders needed to sum the partial products alone:
  /// (terms - 1) + (1 if the shared 3x subexpression is built).
  [[nodiscard]] int adders_for_products() const;

  /// Reconstructs constant * x exactly (used by tests as the ground truth).
  [[nodiscard]] std::int64_t apply(std::int64_t x) const;

  [[nodiscard]] std::string to_string() const;
};

/// Builds the decomposition of multiplication by `constant`.
[[nodiscard]] ShiftAddPlan make_shiftadd_plan(std::int64_t constant,
                                              Recoding recoding);

/// Adder count for one full lifting-step multiplier block in the paper's
/// accounting: pre-adder (r0 + r2), the partial-product adders, and the
/// post-adder (+ r3).  Scale-constant blocks (-k, 1/k) have no pre/post add.
struct MultiplierAdderCount {
  std::string name;
  std::int64_t constant;
  int partial_product_adders;
  int pre_post_adders;
  [[nodiscard]] int total() const {
    return partial_product_adders + pre_post_adders;
  }
};

/// Adder counts for all six constant multipliers of the lifting datapath with
/// 8 fractional bits, reproducing section 3.2's numbers
/// (alpha 6, beta 7, gamma 5, delta 5, -k 4, 1/k 2).
[[nodiscard]] std::vector<MultiplierAdderCount> paper_multiplier_adder_counts(
    Recoding recoding = Recoding::kBinaryWithReuse);

}  // namespace dwt::rtl
