#include "rtl/adder_arch.hpp"

#include <algorithm>
#include <cctype>

namespace dwt::rtl {

const std::array<AdderArch, kAdderArchCount>& all_adder_archs() {
  static const std::array<AdderArch, kAdderArchCount> kAll = {
      AdderArch::kCarryChain, AdderArch::kRippleGates, AdderArch::kKoggeStone,
      AdderArch::kBrentKung, AdderArch::kHybridKsBk};
  return kAll;
}

const std::array<AdderArch, 3>& prefix_adder_archs() {
  static const std::array<AdderArch, 3> kPrefix = {
      AdderArch::kKoggeStone, AdderArch::kBrentKung, AdderArch::kHybridKsBk};
  return kPrefix;
}

bool is_parallel_prefix(AdderArch arch) {
  return arch == AdderArch::kKoggeStone || arch == AdderArch::kBrentKung ||
         arch == AdderArch::kHybridKsBk;
}

const char* adder_name(AdderArch arch) {
  switch (arch) {
    case AdderArch::kCarryChain: return "carry-chain";
    case AdderArch::kRippleGates: return "ripple-gates";
    case AdderArch::kKoggeStone: return "kogge-stone";
    case AdderArch::kBrentKung: return "brent-kung";
    case AdderArch::kHybridKsBk: return "hybrid-ksbk";
  }
  return "?";
}

std::optional<AdderArch> parse_adder(const std::string& text) {
  // Normalize: lowercase, collapse '-'/'_'/' ' away so "Kogge Stone",
  // "kogge_stone" and "kogge-stone" all parse.
  std::string key;
  key.reserve(text.size());
  for (const char c : text) {
    if (c == '-' || c == '_' || c == ' ') continue;
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (key == "carrychain" || key == "chain" || key == "cc") {
    return AdderArch::kCarryChain;
  }
  if (key == "ripplegates" || key == "ripple" || key == "rg") {
    return AdderArch::kRippleGates;
  }
  if (key == "koggestone" || key == "ks") return AdderArch::kKoggeStone;
  if (key == "brentkung" || key == "bk") return AdderArch::kBrentKung;
  if (key == "hybridksbk" || key == "ksbk" || key == "hybrid") {
    return AdderArch::kHybridKsBk;
  }
  return std::nullopt;
}

}  // namespace dwt::rtl
