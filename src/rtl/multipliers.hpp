// Hardware multiplier generators in the paper's two flavours:
//  - shift-add constant multipliers (sections 3.2/3.3, figure 7), built from
//    a ShiftAddPlan with sequential partial-product accumulation (the
//    figure-7 structure) or a balanced tree (ablation);
//  - generic array multipliers (section 3.1, "behavioral integer generic
//    multipliers"), built as a megacore elaborates constant-times-data:
//    one AND partial-product row per *data* bit, accumulated sequentially.
// Both return the exact full-precision product; callers truncate with an
// arithmetic right shift (the paper's 8-bit adjust).
#pragma once

#include "rtl/adders.hpp"
#include "rtl/shiftadd_plan.hpp"

namespace dwt::rtl {

/// constant * x via shifted additions per `plan`.
[[nodiscard]] Word shiftadd_multiply(Pipeliner& p, const Word& x,
                                     const ShiftAddPlan& plan, AdderStyle style,
                                     SumStructure structure,
                                     const std::string& name);

/// constant * x via a generic partial-product array: one row per data bit,
/// each row the constant masked by that bit (no constant folding of the
/// accumulation -- the megacore keeps its full adder array, which is exactly
/// why design 1 is large, slow and power-hungry).
[[nodiscard]] Word array_multiply_const(Pipeliner& p, const Word& x,
                                        std::int64_t constant, int const_width,
                                        AdderStyle style,
                                        SumStructure structure,
                                        const std::string& name);

/// Fully generic signed x * y array multiplier (used by tests and available
/// to library users; the paper's designs always have one constant operand).
/// Rows are formed over y's bits.
[[nodiscard]] Word array_multiply(Pipeliner& p, const Word& x, const Word& y,
                                  AdderStyle style, SumStructure structure,
                                  const std::string& name);

}  // namespace dwt::rtl
