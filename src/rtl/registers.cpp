#include "rtl/registers.hpp"

#include <stdexcept>

namespace dwt::rtl {

int width_for(const common::Interval& range) {
  return range.min_signed_bits();
}

Word Pipeliner::stage(const Word& w, const std::string& name) {
  return Word{builder_.reg(w.bus, name), w.range, w.depth + 1};
}

Word Pipeliner::cut(const Word& w, const std::string& name) {
  if (!enabled_) return w;
  if (++cut_counter_ % granularity_ != 0) return w;
  return stage(w, name);
}

Bus Pipeliner::delay_shared(const Bus& b, const std::string& name) {
  const auto it = delay_cache_.find(b.bits);
  if (it != delay_cache_.end()) return it->second;
  Bus delayed = builder_.reg(b, name);
  delay_cache_.emplace(b.bits, delayed);
  return delayed;
}

Word Pipeliner::align_to(const Word& w, int target_depth,
                         const std::string& name) {
  if (target_depth < w.depth) {
    throw std::logic_error("Pipeliner::align_to: cannot travel back in time");
  }
  Word out = w;
  for (int i = w.depth; i < target_depth; ++i) {
    out.bus = delay_shared(out.bus, name + ".d" + std::to_string(i));
  }
  out.depth = target_depth;
  return out;
}

void Pipeliner::align(Word& a, Word& b, const std::string& name) {
  if (a.depth < b.depth) {
    a = align_to(a, b.depth, name + ".shimA");
  } else if (b.depth < a.depth) {
    b = align_to(b, a.depth, name + ".shimB");
  }
}

Word word_input(Netlist& nl, const std::string& name, int bits) {
  return Word{nl.add_input_bus(name, bits), common::Interval::signed_bits(bits),
              0};
}

Word word_shl(Builder& b, const Word& w, int k) {
  return Word{b.shl(w.bus, k), common::shl(w.range, k), w.depth};
}

Word word_asr(Builder& b, const Word& w, int k) {
  return Word{b.asr(w.bus, k), common::asr(w.range, k), w.depth};
}

Word word_add(Pipeliner& p, const Word& a, const Word& b, AdderStyle style,
              const std::string& name) {
  Word aa = a, bb = b;
  p.align(aa, bb, name);
  const common::Interval range = aa.range + bb.range;
  Word out{p.builder().add(aa.bus, bb.bus, style, width_for(range), name),
           range, aa.depth};
  return p.cut(out, name + ".r");
}

Word word_sub(Pipeliner& p, const Word& a, const Word& b, AdderStyle style,
              const std::string& name) {
  Word aa = a, bb = b;
  p.align(aa, bb, name);
  const common::Interval range = aa.range - bb.range;
  Word out{p.builder().sub(aa.bus, bb.bus, style, width_for(range), name),
           range, aa.depth};
  return p.cut(out, name + ".r");
}

}  // namespace dwt::rtl
