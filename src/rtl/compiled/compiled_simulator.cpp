#include "rtl/compiled/compiled_simulator.hpp"

#include <bit>
#include <stdexcept>

namespace dwt::rtl::compiled {

CompiledSimulator::CompiledSimulator(const Netlist& nl)
    : CompiledSimulator(compile(nl)) {}

CompiledSimulator::CompiledSimulator(std::shared_ptr<const Tape> tape)
    : tape_(std::move(tape)) {
  if (!tape_) {
    throw std::invalid_argument("CompiledSimulator: null tape");
  }
  state_.assign(tape_->slot_count(), 0);
  force_keep_.assign(tape_->slot_count(), ~std::uint64_t{0});
  force_val_.assign(tape_->slot_count(), 0);
  forced_.assign(tape_->slot_count(), 0);
  dff_scratch_.resize(tape_->dffs().size());
  for (const Slot s : tape_->const1_slots()) state_[s] = ~std::uint64_t{0};
}

Slot CompiledSimulator::checked_slot(NetId net) const {
  if (net >= tape_->net_count()) {
    throw std::invalid_argument("CompiledSimulator: net out of range");
  }
  return tape_->slot_of(net);
}

void CompiledSimulator::set_input(NetId net, unsigned lane, bool value) {
  if (lane >= kLanes) {
    throw std::invalid_argument("CompiledSimulator::set_input: bad lane");
  }
  const Slot s = checked_slot(net);
  if (!tape_->is_primary_input(net)) {
    throw std::invalid_argument(
        "CompiledSimulator::set_input: not a primary input");
  }
  const std::uint64_t bit = std::uint64_t{1} << lane;
  state_[s] = value ? (state_[s] | bit) : (state_[s] & ~bit);
}

void CompiledSimulator::set_input_mask(NetId net, std::uint64_t lanes) {
  const Slot s = checked_slot(net);
  if (!tape_->is_primary_input(net)) {
    throw std::invalid_argument(
        "CompiledSimulator::set_input_mask: not a primary input");
  }
  state_[s] = lanes;
}

void CompiledSimulator::set_bus(const Bus& bus, unsigned lane,
                                std::int64_t value) {
  if (bus.bits.empty()) {
    throw std::invalid_argument("CompiledSimulator::set_bus: empty bus");
  }
  const int w = bus.width();
  if (w < 64) {
    // Two's complement fit check, same contract as Simulator::set_bus.
    const std::int64_t hi = value >> (w - 1);
    if (hi != 0 && hi != -1) {
      throw std::invalid_argument(
          "CompiledSimulator::set_bus: value does not fit bus");
    }
  }
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    set_input(bus.bits[i], lane, ((value >> i) & 1) != 0);
  }
}

void CompiledSimulator::set_bus_all(const Bus& bus, std::int64_t value) {
  if (bus.bits.empty()) {
    throw std::invalid_argument("CompiledSimulator::set_bus_all: empty bus");
  }
  const int w = bus.width();
  if (w < 64) {
    const std::int64_t hi = value >> (w - 1);
    if (hi != 0 && hi != -1) {
      throw std::invalid_argument(
          "CompiledSimulator::set_bus_all: value does not fit bus");
    }
  }
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    set_input_mask(bus.bits[i],
                   ((value >> i) & 1) != 0 ? ~std::uint64_t{0} : 0);
  }
}

void CompiledSimulator::apply_forces() {
  // Source slots (primary inputs, DFF outputs, constants) are never written
  // by tape instructions; pin them up front.  Instruction outputs are
  // re-pinned as they are computed, inside eval()'s forced loop.
  for (const Slot s : forced_slots_) {
    state_[s] = (state_[s] & force_keep_[s]) | force_val_[s];
  }
}

void CompiledSimulator::eval() {
  std::uint64_t* const s = state_.data();
  const Instr* const tape = tape_->instrs().data();
  const std::size_t n = tape_->instrs().size();
  if (forced_slots_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      const Instr& it = tape[i];
      const std::uint64_t a = s[it.a];
      const std::uint64_t b = s[it.b];
      const std::uint64_t c = s[it.c];
      std::uint64_t v = 0;
      switch (it.op) {
        case Op::kNot: v = ~a; break;
        case Op::kAnd: v = a & b; break;
        case Op::kOr: v = a | b; break;
        case Op::kXor: v = a ^ b; break;
        case Op::kMux: v = (c & b) | (~c & a); break;
        case Op::kAddSum: v = a ^ b ^ c; break;
        case Op::kAddCarry: v = (a & b) | (c & (a ^ b)); break;
      }
      s[it.out] = v;
    }
    return;
  }
  apply_forces();
  const std::uint8_t* const forced = forced_.data();
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& it = tape[i];
    const std::uint64_t a = s[it.a];
    const std::uint64_t b = s[it.b];
    const std::uint64_t c = s[it.c];
    std::uint64_t v = 0;
    switch (it.op) {
      case Op::kNot: v = ~a; break;
      case Op::kAnd: v = a & b; break;
      case Op::kOr: v = a | b; break;
      case Op::kXor: v = a ^ b; break;
      case Op::kMux: v = (c & b) | (~c & a); break;
      case Op::kAddSum: v = a ^ b ^ c; break;
      case Op::kAddCarry: v = (a & b) | (c & (a ^ b)); break;
    }
    if (forced[it.out]) {
      v = (v & force_keep_[it.out]) | force_val_[it.out];
    }
    s[it.out] = v;
  }
}

void CompiledSimulator::clock_edge() {
  const std::vector<DffSlots>& dffs = tape_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    dff_scratch_[i] = state_[dffs[i].d];
  }
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    state_[dffs[i].q] = dff_scratch_[i];
  }
}

void CompiledSimulator::step() {
  eval();
  clock_edge();
  ++cycles_;
  if (activity_on_) {
    const std::size_t n = state_.size();
    for (std::size_t i = 0; i < n; ++i) {
      toggles_[i] += static_cast<std::uint64_t>(
          std::popcount((state_[i] ^ prev_state_[i]) & activity_lanes_));
      prev_state_[i] = state_[i];
    }
  }
}

bool CompiledSimulator::value(NetId net, unsigned lane) const {
  if (lane >= kLanes) {
    throw std::invalid_argument("CompiledSimulator::value: bad lane");
  }
  return ((state_[checked_slot(net)] >> lane) & 1) != 0;
}

std::uint64_t CompiledSimulator::lane_mask(NetId net) const {
  return state_[checked_slot(net)];
}

std::int64_t CompiledSimulator::read_bus(const Bus& bus, unsigned lane) const {
  if (bus.bits.empty()) {
    throw std::invalid_argument("CompiledSimulator::read_bus: empty bus");
  }
  if (lane >= kLanes) {
    throw std::invalid_argument("CompiledSimulator::read_bus: bad lane");
  }
  std::int64_t v = 0;
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    if ((state_[checked_slot(bus.bits[i])] >> lane) & 1) {
      v |= std::int64_t{1} << i;
    }
  }
  const int w = bus.width();
  if (w < 64 && (v & (std::int64_t{1} << (w - 1)))) {
    v -= std::int64_t{1} << w;
  }
  return v;
}

void CompiledSimulator::force(NetId net, std::uint64_t lanes,
                              std::uint64_t values) {
  const Slot s = checked_slot(net);
  if (!forced_[s]) {
    forced_[s] = 1;
    forced_slots_.push_back(s);
  }
  force_keep_[s] &= ~lanes;
  force_val_[s] = (force_val_[s] & ~lanes) | (values & lanes);
}

void CompiledSimulator::release(NetId net, std::uint64_t lanes) {
  const Slot s = checked_slot(net);
  if (!forced_[s]) return;
  force_keep_[s] |= lanes;
  force_val_[s] &= ~lanes;
  if (force_keep_[s] == ~std::uint64_t{0}) {
    forced_[s] = 0;
    for (std::size_t i = 0; i < forced_slots_.size(); ++i) {
      if (forced_slots_[i] == s) {
        forced_slots_[i] = forced_slots_.back();
        forced_slots_.pop_back();
        break;
      }
    }
  }
}

void CompiledSimulator::flip_state(NetId net, std::uint64_t lanes) {
  if (net >= tape_->net_count() || !tape_->is_dff_output(net)) {
    throw std::invalid_argument(
        "CompiledSimulator::flip_state: not a DFF output");
  }
  state_[tape_->slot_of(net)] ^= lanes;
}

void CompiledSimulator::enable_activity(std::uint64_t lane_mask) {
  activity_on_ = true;
  activity_lanes_ = lane_mask;
  prev_state_ = state_;
  toggles_.assign(state_.size(), 0);
}

ActivityStats CompiledSimulator::activity_stats() const {
  if (!activity_on_) {
    throw std::logic_error(
        "CompiledSimulator::activity_stats: activity not enabled");
  }
  ActivityStats stats;
  stats.cycles =
      cycles_ * static_cast<std::uint64_t>(std::popcount(activity_lanes_));
  stats.toggles.assign(tape_->net_count(), 0);
  for (Slot s = 0; s < state_.size(); ++s) {
    stats.toggles[tape_->net_of(s)] = toggles_[s];
    stats.total_toggles += toggles_[s];
  }
  return stats;
}

void CompiledSimulator::reset() {
  state_.assign(state_.size(), 0);
  for (const Slot s : tape_->const1_slots()) state_[s] = ~std::uint64_t{0};
  if (activity_on_) {
    prev_state_ = state_;
    toggles_.assign(state_.size(), 0);
  }
  cycles_ = 0;
}

}  // namespace dwt::rtl::compiled
