#include "rtl/compiled/tape.hpp"

#include <algorithm>
#include <stdexcept>

#include "rtl/compiled/opt/passes.hpp"

namespace dwt::rtl::compiled {
namespace {

Op op_of(CellKind k) {
  switch (k) {
    case CellKind::kNot: return Op::kNot;
    case CellKind::kAnd2: return Op::kAnd;
    case CellKind::kOr2: return Op::kOr;
    case CellKind::kXor2: return Op::kXor;
    case CellKind::kMux2: return Op::kMux;
    case CellKind::kAddSum: return Op::kAddSum;
    case CellKind::kAddCarry: return Op::kAddCarry;
    case CellKind::kConst0:
    case CellKind::kConst1:
    case CellKind::kDff: break;
  }
  throw std::logic_error("compile: cell kind has no tape opcode");
}

}  // namespace

const char* to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kNone: return "O0";
    case OptLevel::kSafe: return "O1";
    case OptLevel::kFull: return "O2";
  }
  return "?";
}

std::vector<Slot> Tape::const1_slots() const {
  std::vector<Slot> out;
  for (Slot s = 0; s < const_image_.size(); ++s) {
    if (const_image_[s] != 0) out.push_back(s);
  }
  return out;
}

std::shared_ptr<const Tape> compile(const Netlist& nl) {
  auto tape = std::make_shared<Tape>();
  Tape& t = *tape;
  t.slot_of_net_.assign(nl.net_count(), kNullSlot);
  t.pi_flag_.assign(nl.net_count(), 0);
  t.dff_q_flag_.assign(nl.net_count(), 0);
  t.po_flag_.assign(nl.net_count(), 0);
  t.net_of_slot_.reserve(nl.net_count());

  for (const auto& [name, bus] : nl.outputs()) {
    for (const NetId n : bus.bits) t.po_flag_[n] = 1;
  }

  const auto new_slot = [&t](NetId net) {
    const Slot s = static_cast<Slot>(t.net_of_slot_.size());
    t.slot_of_net_[net] = s;
    t.net_of_slot_.push_back(net);
    t.const_image_.push_back(0);
    return s;
  };

  // Sources first: primary inputs, then DFF outputs, then constants.  These
  // slots are never written by tape instructions, so eval() leaves them
  // untouched and clock_edge()/set_input() own them.
  for (const NetId pi : nl.primary_inputs()) {
    t.pi_flag_[pi] = 1;
    new_slot(pi);
  }
  for (const Cell& c : nl.cells()) {
    if (c.kind == CellKind::kDff) {
      t.dff_q_flag_[c.out] = 1;
      new_slot(c.out);
    } else if (c.kind == CellKind::kConst0) {
      new_slot(c.out);  // image entry stays 0
    } else if (c.kind == CellKind::kConst1) {
      t.const_image_[new_slot(c.out)] = ~std::uint64_t{0};
    }
  }

  // Combinational cells in dependency order; each output gets the next
  // sequential slot so the eval loop streams its writes.
  const std::vector<CellId> topo = nl.topo_order();
  std::vector<std::uint32_t> level_of_slot;
  t.instrs_.reserve(topo.size());
  for (const CellId id : topo) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
    Instr it;
    it.op = op_of(c.kind);
    it.out = new_slot(c.out);
    const int n_in = input_count(c.kind);
    Slot* pins[3] = {&it.a, &it.b, &it.c};
    for (int i = 0; i < n_in; ++i) {
      const NetId in = c.in[static_cast<std::size_t>(i)];
      const Slot s = t.slot_of_net_[in];
      if (s == kNullSlot) {
        throw std::logic_error("compile: instruction reads an unplaced net");
      }
      *pins[i] = s;
    }
    // kNot's unused operands alias its input so the eval switch never
    // touches an invalid slot.
    for (int i = n_in; i < 3; ++i) *pins[i] = it.a;
    t.instrs_.push_back(it);
  }

  // Levelization depth (longest instruction chain), for reporting.
  level_of_slot.assign(t.net_of_slot_.size(), 0);
  for (const Instr& it : t.instrs_) {
    const std::uint32_t lvl = 1 + std::max({level_of_slot[it.a],
                                            level_of_slot[it.b],
                                            level_of_slot[it.c]});
    level_of_slot[it.out] = lvl;
    t.depth_ = std::max<std::size_t>(t.depth_, lvl);
  }

  for (const Cell& c : nl.cells()) {
    if (c.kind != CellKind::kDff) continue;
    DffSlots d;
    d.q = t.slot_of_net_[c.out];
    d.d = t.slot_of_net_[c.in[0]];
    if (d.q == kNullSlot || d.d == kNullSlot) {
      throw std::logic_error("compile: DFF pin on an unplaced net");
    }
    t.dffs_.push_back(d);
  }
  return tape;
}

std::shared_ptr<const Tape> compile(const Netlist& nl, OptLevel level) {
  std::shared_ptr<const Tape> tape = compile(nl);
  if (level == OptLevel::kNone) return tape;
  return opt::optimize(*tape, level);
}

}  // namespace dwt::rtl::compiled
