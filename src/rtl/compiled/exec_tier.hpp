// Execution tiers for the compiled tape engine.
//
// The levelized instruction tape (see tape.hpp) can be executed three ways,
// all bit-identical over the same LaneBlock<W> state:
//
//   kSwitch   -- the original per-instruction `switch` interpreter loop.
//   kThreaded -- computed-goto direct-threaded dispatch (GNU labels-as-
//                values): each instruction jumps straight to the next
//                opcode's kernel, removing the loop + switch overhead.
//                Falls back to kSwitch when the compiler lacks the
//                extension.
//   kNative   -- the tape lowered to straight-line x86-64 machine code in
//                an mmap'd executable buffer (native_block.hpp): scalar for
//                W=1, VEX/AVX2 for W=2/4.  Selected by runtime CPU-feature
//                detection; only full-range unforced evals run natively,
//                fault overlays and cone-restricted ranges drop to the
//                threaded tier so campaign results stay byte-identical.
//
// kAuto, the default everywhere a tier is plumbed through options structs,
// resolves to the fastest supported tier (native where the host allows,
// threaded otherwise).  The DWT_EXEC_TIER environment variable
// ("interpreter" | "threaded" | "native") overrides every programmatic
// request -- the CI kill-switch that keeps the portable tiers exercised.
#pragma once

#include <string>

namespace dwt::rtl::compiled {

enum class ExecTier {
  kAuto = 0,      // resolve to the fastest supported tier
  kSwitch = 1,    // per-instruction switch interpreter
  kThreaded = 2,  // computed-goto threaded dispatch
  kNative = 3,    // JIT'd straight-line machine code
};

[[nodiscard]] const char* to_string(ExecTier tier);

/// Parses "auto" | "interpreter" | "switch" | "threaded" | "native".
/// Returns false (leaving *out untouched) on anything else.
[[nodiscard]] bool parse_exec_tier(const std::string& text, ExecTier* out);

/// True when the native emitter can target this host for tapes of `words`
/// lane words per slot: x86-64 always for words == 1 (scalar 64-bit code),
/// AVX2 required for words == 2 or 4 (VEX 128/256-bit code).
[[nodiscard]] bool native_supported(unsigned words);

/// Maps a requested tier to the concrete tier that should run, applying (in
/// order): the DWT_EXEC_TIER environment override, kAuto resolution, and
/// the native-support fallback to kThreaded.  Never returns kAuto.
[[nodiscard]] ExecTier resolve_exec_tier(ExecTier requested, unsigned words);

}  // namespace dwt::rtl::compiled
