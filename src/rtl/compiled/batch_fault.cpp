#include "rtl/compiled/batch_fault.hpp"

#include <stdexcept>

namespace dwt::rtl::compiled {

BatchFaultSession::BatchFaultSession(std::shared_ptr<const Tape> tape)
    : sim_(std::move(tape)) {}

void BatchFaultSession::arm(unsigned lane, const Fault& f) {
  if (lane >= kLanes) {
    throw std::invalid_argument("BatchFaultSession::arm: bad lane");
  }
  if (f.net >= sim_.tape().net_count()) {
    throw std::invalid_argument("BatchFaultSession::arm: net out of range");
  }
  if (f.kind == FaultKind::kSeuFlip && !sim_.tape().is_dff_output(f.net)) {
    throw std::invalid_argument(
        "BatchFaultSession::arm: SEU target is not a DFF output");
  }
  faults_.push_back({lane, f});
}

void BatchFaultSession::watch(NetId net) {
  if (net >= sim_.tape().net_count()) {
    throw std::invalid_argument("BatchFaultSession::watch: net out of range");
  }
  watched_.push_back(net);
}

void BatchFaultSession::step() {
  // Activate this cycle's pins.  Stuck forces persist once applied; glitch
  // forces live for exactly this settle+edge and are released below.
  for (const Armed& a : faults_) {
    const std::uint64_t bit = std::uint64_t{1} << a.lane;
    switch (a.fault.kind) {
      case FaultKind::kGlitch:
        if (a.fault.cycle == cycle_) {
          sim_.force(a.fault.net, bit, a.fault.glitch_value ? bit : 0);
        }
        break;
      case FaultKind::kStuckAt0:
        if (a.fault.cycle == cycle_) sim_.force(a.fault.net, bit, 0);
        break;
      case FaultKind::kStuckAt1:
        if (a.fault.cycle == cycle_) sim_.force(a.fault.net, bit, bit);
        break;
      case FaultKind::kSeuFlip:
        break;  // struck after the edge, below
    }
  }
  sim_.eval();
  for (const NetId n : watched_) watch_mask_ |= sim_.lane_mask(n);
  sim_.clock_edge();
  for (const Armed& a : faults_) {
    const std::uint64_t bit = std::uint64_t{1} << a.lane;
    if (a.fault.kind == FaultKind::kSeuFlip && a.fault.cycle == cycle_) {
      sim_.flip_state(a.fault.net, bit);
    } else if (a.fault.kind == FaultKind::kGlitch && a.fault.cycle == cycle_) {
      sim_.release(a.fault.net, bit);
    }
  }
  ++cycle_;
}

}  // namespace dwt::rtl::compiled
