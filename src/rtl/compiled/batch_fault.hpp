// Batched fault overlay for the compiled engine: one fault per lane, so a
// single tape pass carries 64*W independent fault trials of a campaign
// (64 per state word; W words per slot -- see wide_simulator.hpp).
//
// Per-cycle semantics replicate rtl::FaultInjector::step() exactly, lane by
// lane: glitch/stuck forces pin their net during the settle of the scheduled
// cycles, watches are sampled after the settle, the clock edge samples the
// pinned D values, and SEUs strike the freshly clocked state.  A lane with
// no armed fault behaves as the plain simulator, which is what makes the
// differential checks (compiled-vs-interpreted, hardened-vs-golden) exact.
//
// arm() refuses tapes optimized past the fault-overlay-safe level (kFull
// folding redirects nets onto shared slots, so a per-lane pin would leak
// into other nets); fault-free streaming through the session is fine on any
// tape.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/compiled/cone_index.hpp"
#include "rtl/compiled/wide_simulator.hpp"
#include "rtl/fault.hpp"

namespace dwt::rtl::compiled {

template <unsigned W>
class WideBatchSession {
 public:
  using Sim = WideSimulator<W>;
  using Block = typename Sim::Block;
  static constexpr unsigned kTotalLanes = Sim::kTotalLanes;

  explicit WideBatchSession(std::shared_ptr<const Tape> tape)
      : sim_(std::move(tape)) {}

  /// Schedules `f` on one lane.  Throws std::invalid_argument on a bad
  /// lane/net, an SEU whose target is not a DFF output, or a tape rewritten
  /// beyond the fault-overlay-safe optimization level.
  void arm(unsigned lane, const Fault& f) {
    if (lane >= kTotalLanes) {
      throw std::invalid_argument("BatchFaultSession::arm: bad lane");
    }
    if (f.net >= sim_.tape().net_count()) {
      throw std::invalid_argument("BatchFaultSession::arm: net out of range");
    }
    if (f.kind == FaultKind::kSeuFlip && !sim_.tape().is_dff_output(f.net)) {
      throw std::invalid_argument(
          "BatchFaultSession::arm: SEU target is not a DFF output");
    }
    if (!sim_.tape().fault_overlay_safe()) {
      throw std::invalid_argument(
          "BatchFaultSession::arm: tape is not fault-overlay safe "
          "(compiled at OptLevel::kFull)");
    }
    faults_.push_back({lane, f});
  }

  /// Monitors a net (e.g. the parity error flag) on every lane: bit L of
  /// watch_block() latches 1 if lane L ever sees the net high after a
  /// settle.
  void watch(NetId net) {
    if (net >= sim_.tape().net_count()) {
      throw std::invalid_argument("BatchFaultSession::watch: net out of range");
    }
    watched_.push_back(net);
  }
  [[nodiscard]] const Block& watch_block() const { return watch_mask_; }

  /// Records each post-settle state into `trace` (one append per step).
  /// Used on the fault-free reference run to capture the golden trace that
  /// cone-restricted sessions later replay against; pass nullptr to stop.
  void set_trace(GoldenTrace* trace) { trace_ = trace; }

  // Batched streaming surface --------------------------------------------
  /// Drives every lane with the same value (campaign trials share stimulus).
  void set_bus(const Bus& bus, std::int64_t value) {
    sim_.set_bus_all(bus, value);
  }
  /// One clock cycle for all lanes with each lane's overlay applied.
  void step() {
    // Activate this cycle's pins.  Stuck forces persist once applied; glitch
    // forces live for exactly this settle+edge and are released below.
    for (const Armed& a : faults_) {
      if (a.fault.cycle != cycle_) continue;
      const Block bit = Block::lane_bit(a.lane);
      switch (a.fault.kind) {
        case FaultKind::kGlitch:
          sim_.force(a.fault.net, bit,
                     a.fault.glitch_value ? bit : Block::zeros());
          break;
        case FaultKind::kStuckAt0:
          sim_.force(a.fault.net, bit, Block::zeros());
          break;
        case FaultKind::kStuckAt1:
          sim_.force(a.fault.net, bit, bit);
          break;
        case FaultKind::kSeuFlip:
          break;  // struck after the edge, below
      }
    }
    sim_.eval();
    if (trace_ != nullptr) trace_->append(sim_);
    for (const NetId n : watched_) watch_mask_ |= sim_.block(n);
    sim_.clock_edge();
    for (const Armed& a : faults_) {
      if (a.fault.cycle != cycle_) continue;
      if (a.fault.kind == FaultKind::kSeuFlip) {
        sim_.flip_state(a.fault.net, Block::lane_bit(a.lane));
      } else if (a.fault.kind == FaultKind::kGlitch) {
        sim_.release(a.fault.net, Block::lane_bit(a.lane));
      }
    }
    ++cycle_;
  }
  [[nodiscard]] std::int64_t read_bus(const Bus& bus, unsigned lane) const {
    return sim_.read_bus(bus, lane);
  }

  /// Reads the first `lanes` lanes of a bus in one pass: per bus bit the
  /// slot is resolved once and its W state words fanned out to the lane
  /// values, instead of `lanes` read_bus calls re-resolving every bit.
  /// This is the batched runners' hot read path (stream_runner.cpp).
  void read_bus_all(const Bus& bus, std::int64_t* out, unsigned lanes) const {
    if (bus.bits.empty()) {
      throw std::invalid_argument("BatchFaultSession::read_bus_all: empty bus");
    }
    if (lanes == 0 || lanes > kTotalLanes) {
      throw std::invalid_argument("BatchFaultSession::read_bus_all: bad lanes");
    }
    std::fill(out, out + lanes, std::int64_t{0});
    const Tape& tape = sim_.tape();
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      const NetId net = bus.bits[i];
      if (net >= tape.net_count()) {
        throw std::invalid_argument(
            "BatchFaultSession::read_bus_all: net out of range");
      }
      const Slot s = tape.slot_of(net);
      if (s == kNullSlot) {
        throw std::invalid_argument(
            "BatchFaultSession::read_bus_all: net was eliminated by the "
            "tape optimizer");
      }
      for (unsigned k = 0; k * kWordLanes < lanes; ++k) {
        const std::uint64_t w = sim_.slot_word(s, k);
        const unsigned base = k * kWordLanes;
        const unsigned count = std::min(kWordLanes, lanes - base);
        for (unsigned j = 0; j < count; ++j) {
          out[base + j] |= static_cast<std::int64_t>((w >> j) & 1) << i;
        }
      }
    }
    sign_extend_lanes(bus, out, lanes);
  }

  /// Two's complement sign extension of read_bus_all values, shared with the
  /// cone session's bulk read.
  static void sign_extend_lanes(const Bus& bus, std::int64_t* out,
                                unsigned lanes) {
    const int w = bus.width();
    if (w >= 64) return;
    const std::int64_t sign = std::int64_t{1} << (w - 1);
    const std::int64_t wrap = std::int64_t{1} << w;
    for (unsigned l = 0; l < lanes; ++l) {
      if (out[l] & sign) out[l] -= wrap;
    }
  }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] Sim& sim() { return sim_; }

 private:
  Sim sim_;
  struct Armed {
    unsigned lane;
    Fault fault;
  };
  std::vector<Armed> faults_;
  std::vector<NetId> watched_;
  Block watch_mask_{};
  GoldenTrace* trace_ = nullptr;
  std::uint64_t cycle_ = 0;
};

/// The 64-lane session of the original engine, with the packed-mask surface.
class BatchFaultSession : public WideBatchSession<1> {
 public:
  using WideBatchSession<1>::WideBatchSession;

  [[nodiscard]] std::uint64_t watch_mask() const { return watch_block().w[0]; }
};

}  // namespace dwt::rtl::compiled
