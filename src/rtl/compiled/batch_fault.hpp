// Batched fault overlay for the compiled engine: one fault per lane, so a
// single tape pass carries 64 independent fault trials of a campaign.
//
// Per-cycle semantics replicate rtl::FaultInjector::step() exactly, lane by
// lane: glitch/stuck forces pin their net during the settle of the scheduled
// cycles, watches are sampled after the settle, the clock edge samples the
// pinned D values, and SEUs strike the freshly clocked state.  A lane with
// no armed fault behaves as the plain simulator, which is what makes the
// differential checks (compiled-vs-interpreted, hardened-vs-golden) exact.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/fault.hpp"

namespace dwt::rtl::compiled {

class BatchFaultSession {
 public:
  explicit BatchFaultSession(std::shared_ptr<const Tape> tape);

  /// Schedules `f` on one lane.  Throws std::invalid_argument on a bad
  /// lane/net, or an SEU whose target is not a DFF output.
  void arm(unsigned lane, const Fault& f);

  /// Monitors a net (e.g. the parity error flag) on every lane: bit L of
  /// watch_mask() latches 1 if lane L ever sees the net high after a settle.
  void watch(NetId net);
  [[nodiscard]] std::uint64_t watch_mask() const { return watch_mask_; }

  // Batched streaming surface --------------------------------------------
  /// Drives every lane with the same value (campaign trials share stimulus).
  void set_bus(const Bus& bus, std::int64_t value) {
    sim_.set_bus_all(bus, value);
  }
  /// One clock cycle for all lanes with each lane's overlay applied.
  void step();
  [[nodiscard]] std::int64_t read_bus(const Bus& bus, unsigned lane) const {
    return sim_.read_bus(bus, lane);
  }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] CompiledSimulator& sim() { return sim_; }

 private:
  CompiledSimulator sim_;
  struct Armed {
    unsigned lane;
    Fault fault;
  };
  std::vector<Armed> faults_;
  std::vector<NetId> watched_;
  std::uint64_t watch_mask_ = 0;
  std::uint64_t cycle_ = 0;
};

}  // namespace dwt::rtl::compiled
