#include "rtl/compiled/equivalence.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl::compiled {

EquivalenceReport check_equivalence(const Netlist& nl, std::uint64_t cycles,
                                    std::uint64_t seed,
                                    unsigned lanes_to_check) {
  if (cycles == 0) {
    throw std::invalid_argument("check_equivalence: zero cycles");
  }
  lanes_to_check = std::min(lanes_to_check, kLanes);
  const std::vector<NetId>& pis = nl.primary_inputs();

  // Pre-draw the whole stimulus (cycle-major, then input-major): bit L of
  // each word is lane L's value, so the interpreted replica for lane L
  // replays exactly the compiled lane.
  common::Rng rng(seed);
  std::vector<std::uint64_t> stimulus(cycles * pis.size());
  for (std::uint64_t& w : stimulus) w = rng.next_u64();

  EquivalenceReport report;
  report.cycles = cycles;
  report.lanes_checked = lanes_to_check;

  CompiledSimulator batch(nl);
  std::vector<Simulator> scalar;
  scalar.reserve(lanes_to_check);
  for (unsigned l = 0; l < lanes_to_check; ++l) scalar.emplace_back(nl);

  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const std::uint64_t w = stimulus[c * pis.size() + i];
      batch.set_input_mask(pis[i], w);
      for (unsigned l = 0; l < lanes_to_check; ++l) {
        scalar[l].set_input(pis[i], ((w >> l) & 1) != 0);
      }
    }
    batch.step();
    for (unsigned l = 0; l < lanes_to_check; ++l) scalar[l].step();

    for (NetId n = 0; n < nl.net_count(); ++n) {
      const std::uint64_t got = batch.lane_mask(n);
      for (unsigned l = 0; l < lanes_to_check; ++l) {
        const bool want = scalar[l].value(n);
        ++report.nets_compared;
        if ((((got >> l) & 1) != 0) != want) {
          report.ok = false;
          report.mismatch = "net '" + nl.net(n).name + "' (id " +
                            std::to_string(n) + ") lane " + std::to_string(l) +
                            " cycle " + std::to_string(c) + ": compiled=" +
                            std::to_string((got >> l) & 1) +
                            " interpreted=" + std::to_string(want ? 1 : 0);
          return report;
        }
      }
    }
  }
  return report;
}

}  // namespace dwt::rtl::compiled
