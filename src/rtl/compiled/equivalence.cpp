#include "rtl/compiled/equivalence.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/compiled_simulator.hpp"
#include "rtl/fault.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl::compiled {
namespace {

std::vector<std::uint64_t> draw_stimulus(common::Rng& rng, std::uint64_t cycles,
                                         std::size_t n_inputs) {
  // Cycle-major, then input-major: bit L of each word is lane L's value, so
  // the interpreted replica for lane L replays exactly the compiled lane.
  std::vector<std::uint64_t> stimulus(cycles * n_inputs);
  for (std::uint64_t& w : stimulus) w = rng.next_u64();
  return stimulus;
}

/// Compares all nets the tape materializes after one step of both engines.
/// Returns false (and fills the report) on the first divergence.
bool compare_cycle(const Netlist& nl, const WideSimulator<1>& batch,
                   const std::vector<Simulator>& scalar, std::uint64_t c,
                   EquivalenceReport& report) {
  const unsigned lanes = static_cast<unsigned>(scalar.size());
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (!batch.tape().materialized(n)) {
      report.nets_skipped += lanes;
      continue;
    }
    const std::uint64_t got = batch.block(n).w[0];
    for (unsigned l = 0; l < lanes; ++l) {
      const bool want = scalar[l].value(n);
      ++report.nets_compared;
      if ((((got >> l) & 1) != 0) != want) {
        report.ok = false;
        report.mismatch = "net '" + nl.net(n).name + "' (id " +
                          std::to_string(n) + ") lane " + std::to_string(l) +
                          " cycle " + std::to_string(c) + ": compiled=" +
                          std::to_string((got >> l) & 1) +
                          " interpreted=" + std::to_string(want ? 1 : 0);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

EquivalenceReport check_equivalence(const Netlist& nl, std::uint64_t cycles,
                                    std::uint64_t seed, unsigned lanes_to_check,
                                    OptLevel level) {
  if (cycles == 0) {
    throw std::invalid_argument("check_equivalence: zero cycles");
  }
  lanes_to_check = std::min(lanes_to_check, kLanes);
  const std::vector<NetId>& pis = nl.primary_inputs();

  common::Rng rng(seed);
  const std::vector<std::uint64_t> stimulus =
      draw_stimulus(rng, cycles, pis.size());

  EquivalenceReport report;
  report.cycles = cycles;
  report.lanes_checked = lanes_to_check;

  CompiledSimulator batch(compile(nl, level));
  std::vector<Simulator> scalar;
  scalar.reserve(lanes_to_check);
  for (unsigned l = 0; l < lanes_to_check; ++l) scalar.emplace_back(nl);

  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const std::uint64_t w = stimulus[c * pis.size() + i];
      batch.set_input_mask(pis[i], w);
      for (unsigned l = 0; l < lanes_to_check; ++l) {
        scalar[l].set_input(pis[i], ((w >> l) & 1) != 0);
      }
    }
    batch.step();
    for (unsigned l = 0; l < lanes_to_check; ++l) scalar[l].step();
    if (!compare_cycle(nl, batch, scalar, c, report)) return report;
  }
  return report;
}

EquivalenceReport check_fault_equivalence(const Netlist& nl,
                                          std::uint64_t cycles,
                                          std::uint64_t seed,
                                          unsigned lanes_to_check,
                                          OptLevel level) {
  if (cycles == 0) {
    throw std::invalid_argument("check_fault_equivalence: zero cycles");
  }
  if (level == OptLevel::kFull) {
    throw std::invalid_argument(
        "check_fault_equivalence: level is not fault-overlay safe");
  }
  lanes_to_check = std::min(lanes_to_check, kLanes);
  const std::vector<NetId>& pis = nl.primary_inputs();

  common::Rng rng(seed);
  const std::vector<std::uint64_t> stimulus =
      draw_stimulus(rng, cycles, pis.size());

  // One random fault per checked lane, drawn kind -> target -> cycle ->
  // glitch value so the schedule is reproducible from the seed alone.
  const std::vector<NetId> seu = seu_targets(nl);
  const std::vector<NetId> stuck = stuck_targets(nl);
  const std::vector<NetId> glitch = glitch_targets(nl);
  std::vector<Fault> faults(lanes_to_check);
  for (Fault& f : faults) {
    for (;;) {
      const auto kind = static_cast<FaultKind>(rng.next_u64() % 4);
      const std::vector<NetId>& pool =
          kind == FaultKind::kSeuFlip
              ? seu
              : (kind == FaultKind::kGlitch ? glitch : stuck);
      if (pool.empty()) continue;
      f.kind = kind;
      f.net = pool[rng.next_u64() % pool.size()];
      f.cycle = rng.next_u64() % cycles;
      f.glitch_value = (rng.next_u64() & 1) != 0;
      break;
    }
  }

  EquivalenceReport report;
  report.cycles = cycles;
  report.lanes_checked = lanes_to_check;

  BatchFaultSession session(compile(nl, level));
  std::vector<Simulator> scalar;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  scalar.reserve(lanes_to_check);
  for (unsigned l = 0; l < lanes_to_check; ++l) scalar.emplace_back(nl);
  for (unsigned l = 0; l < lanes_to_check; ++l) {
    session.arm(l, faults[l]);
    injectors.push_back(std::make_unique<FaultInjector>(nl, scalar[l]));
    injectors.back()->arm(faults[l]);
  }

  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const std::uint64_t w = stimulus[c * pis.size() + i];
      session.sim().set_input_block(pis[i], LaneBlock<1>{{w}});
      for (unsigned l = 0; l < lanes_to_check; ++l) {
        injectors[l]->set_input(pis[i], ((w >> l) & 1) != 0);
      }
    }
    session.step();
    for (unsigned l = 0; l < lanes_to_check; ++l) injectors[l]->step();
    if (!compare_cycle(nl, session.sim(), scalar, c, report)) return report;
  }
  return report;
}

}  // namespace dwt::rtl::compiled
