// Differential-equivalence harness: proves the compiled bit-parallel engine
// bit-exact against the interpreted zero-delay rtl::Simulator.
//
// The harness drives both engines with the same randomized vector streams
// (one stream per lane, from a seeded common::Rng) and compares EVERY net on
// EVERY cycle: the compiled simulator runs all 64 lanes in one pass, while a
// scalar interpreted replica is run per checked lane.  Any divergence is
// reported with the net name, lane and cycle, which makes tape bugs
// immediately attributable.
#pragma once

#include <cstdint>
#include <string>

#include "rtl/netlist.hpp"

namespace dwt::rtl::compiled {

struct EquivalenceReport {
  bool ok = true;
  std::uint64_t cycles = 0;          ///< cycles simulated
  unsigned lanes_checked = 0;        ///< interpreted replicas compared
  std::uint64_t nets_compared = 0;   ///< net-cycle-lane comparisons made
  std::string mismatch;              ///< first divergence, empty when ok
};

/// Runs `cycles` clock cycles of randomized primary-input vectors through
/// both engines and compares all nets cycle-for-cycle on the first
/// `lanes_to_check` lanes (the compiled engine still evaluates all 64).
/// Deterministic in `seed`.
[[nodiscard]] EquivalenceReport check_equivalence(const Netlist& nl,
                                                  std::uint64_t cycles,
                                                  std::uint64_t seed,
                                                  unsigned lanes_to_check = 4);

}  // namespace dwt::rtl::compiled
