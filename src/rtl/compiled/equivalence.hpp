// Differential-equivalence harness: proves the compiled bit-parallel engine
// bit-exact against the interpreted zero-delay rtl::Simulator.
//
// The harness drives both engines with the same randomized vector streams
// (one stream per lane, from a seeded common::Rng) and compares EVERY net on
// EVERY cycle: the compiled simulator runs all 64 lanes in one pass, while a
// scalar interpreted replica is run per checked lane.  Any divergence is
// reported with the net name, lane and cycle, which makes tape bugs
// immediately attributable.
//
// Both checks accept an optimization level: the tape is rewritten by the
// rtl/compiled/opt pipeline first, and nets the optimizer eliminated are
// skipped (counted in nets_skipped) -- every net the optimized tape still
// materializes must match the interpreter bit-for-bit.
//
// check_fault_equivalence() extends the differential to fault overlays: each
// checked lane draws a random fault (SEU / glitch / stuck-at on a random
// legal target and cycle), which is armed identically in a compiled
// BatchFaultSession lane and in an interpreted rtl::FaultInjector replica,
// proving the overlay semantics (settle-with-pins, watch sampling, edge,
// SEU strike) equivalent gate-for-gate -- the property that lets campaigns
// trust fault-overlay-safe optimized tapes.
#pragma once

#include <cstdint>
#include <string>

#include "rtl/compiled/tape.hpp"
#include "rtl/netlist.hpp"

namespace dwt::rtl::compiled {

struct EquivalenceReport {
  bool ok = true;
  std::uint64_t cycles = 0;          ///< cycles simulated
  unsigned lanes_checked = 0;        ///< interpreted replicas compared
  std::uint64_t nets_compared = 0;   ///< net-cycle-lane comparisons made
  std::uint64_t nets_skipped = 0;    ///< eliminated-net comparisons skipped
  std::string mismatch;              ///< first divergence, empty when ok
};

/// Runs `cycles` clock cycles of randomized primary-input vectors through
/// both engines and compares all materialized nets cycle-for-cycle on the
/// first `lanes_to_check` lanes (the compiled engine still evaluates all
/// 64).  Deterministic in `seed`.
[[nodiscard]] EquivalenceReport check_equivalence(
    const Netlist& nl, std::uint64_t cycles, std::uint64_t seed,
    unsigned lanes_to_check = 4, OptLevel level = OptLevel::kNone);

/// Fault-overlay differential: like check_equivalence, but every checked
/// lane additionally carries one random fault, armed identically in both
/// engines.  `level` must be fault-overlay safe (kNone or kSafe).
[[nodiscard]] EquivalenceReport check_fault_equivalence(
    const Netlist& nl, std::uint64_t cycles, std::uint64_t seed,
    unsigned lanes_to_check = 4, OptLevel level = OptLevel::kNone);

}  // namespace dwt::rtl::compiled
