// Width-templated bit-parallel simulation core.
//
// WideSimulator<W> evaluates a compiled Tape with 64*W independent test
// vectors: every signal slot holds a LaneBlock<W> -- W consecutive
// std::uint64_t lane words -- and the instruction kernels run fixed-trip
// loops over the W words, which the compiler unrolls and auto-vectorizes
// (W=4 is one 256-bit AVX2 op or two SSE2 ops per gate).  Lane L of the
// batch lives in word L/64, bit L%64.
//
// Semantics are those of CompiledSimulator (see compiled_simulator.hpp),
// which is now the W=1 instantiation: zero-delay settle over the levelized
// tape, two-phase clock edge, force/flip fault overlays as lane masks --
// here widened to lane *blocks*.  State resets copy the tape's constant
// image (one broadcast per slot), so per-trial resets are a straight memcpy
// rather than a walk over constant slots.
//
// On optimized tapes some nets may be unmaterialized (Tape::materialized()
// == false): observing or driving them throws, but force()/release() on
// them is a silent no-op -- the net was eliminated precisely because
// nothing observable depends on it, so pinning it is a no-op in the
// interpreted engine too.  That keeps fault campaigns' target pools valid
// on kSafe tapes without consulting the optimizer's dead set.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rtl/activity_sim.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/native_block.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/netlist.hpp"

// Direct-threaded dispatch (the kThreaded tier) relies on the GNU
// labels-as-values extension; elsewhere it silently degrades to the switch
// interpreter, which computes the same words.
#if defined(__GNUC__) || defined(__clang__)
#define DWT_HAS_COMPUTED_GOTO 1
#else
#define DWT_HAS_COMPUTED_GOTO 0
#endif

namespace dwt::rtl::compiled {

/// Lanes carried by one state word.
inline constexpr unsigned kWordLanes = 64;

/// Minimal cache-line-aligned allocator for the slot-major state arrays.
/// A default std::vector<std::uint64_t> is only 16-byte aligned, so at W=4
/// half of all 32-byte slot accesses straddle a cache line -- the native
/// tier's ymm loads/stores (and the compiler's vectorized interpreter
/// kernels) pay a split-access penalty on every other slot.  64-byte
/// alignment makes every W=2/W=4 slot line-local.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  CacheAlignedAllocator() = default;
  template <typename U>
  explicit CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  friend bool operator==(const CacheAlignedAllocator&,
                         const CacheAlignedAllocator&) {
    return true;
  }
};

/// State-word storage: slot s, word k at index s * W + k, 64-byte aligned.
using StateVec = std::vector<std::uint64_t, CacheAlignedAllocator<std::uint64_t>>;

/// W consecutive lane words: the per-slot state unit of WideSimulator<W>.
template <unsigned W>
struct LaneBlock {
  static_assert(W == 1 || W == 2 || W == 4,
                "LaneBlock: supported widths are 1, 2 and 4 words");
  std::array<std::uint64_t, W> w{};

  static constexpr unsigned kLaneCount = kWordLanes * W;

  [[nodiscard]] static LaneBlock zeros() { return {}; }
  [[nodiscard]] static LaneBlock ones() {
    LaneBlock b;
    b.w.fill(~std::uint64_t{0});
    return b;
  }
  /// Block with exactly bit `lane` set.
  [[nodiscard]] static LaneBlock lane_bit(unsigned lane) {
    LaneBlock b;
    b.w[lane / kWordLanes] = std::uint64_t{1} << (lane % kWordLanes);
    return b;
  }

  [[nodiscard]] bool get(unsigned lane) const {
    return ((w[lane / kWordLanes] >> (lane % kWordLanes)) & 1) != 0;
  }
  void set(unsigned lane, bool value) {
    const std::uint64_t bit = std::uint64_t{1} << (lane % kWordLanes);
    std::uint64_t& word = w[lane / kWordLanes];
    word = value ? (word | bit) : (word & ~bit);
  }
  [[nodiscard]] bool any() const {
    for (const std::uint64_t word : w) {
      if (word != 0) return true;
    }
    return false;
  }
  [[nodiscard]] unsigned popcount() const {
    unsigned n = 0;
    for (const std::uint64_t word : w) n += std::popcount(word);
    return n;
  }
  LaneBlock& operator|=(const LaneBlock& o) {
    for (unsigned k = 0; k < W; ++k) w[k] |= o.w[k];
    return *this;
  }
  friend bool operator==(const LaneBlock&, const LaneBlock&) = default;
};

template <unsigned W>
class WideSimulator {
 public:
  static constexpr unsigned kWords = W;
  static constexpr unsigned kTotalLanes = kWordLanes * W;
  using Block = LaneBlock<W>;

  /// Compiles `nl` privately (raw tape).  For many simulators over one
  /// design compile once and use the shared-tape ctor.
  explicit WideSimulator(const Netlist& nl) : WideSimulator(compile(nl)) {}

  explicit WideSimulator(std::shared_ptr<const Tape> tape)
      : tape_(std::move(tape)) {
    if (!tape_) {
      throw std::invalid_argument("WideSimulator: null tape");
    }
    const std::size_t n = tape_->slot_count();
    state_.assign(n * W, 0);
    force_keep_.assign(n * W, ~std::uint64_t{0});
    force_val_.assign(n * W, 0);
    forced_.assign(n, 0);
    dff_scratch_.resize(tape_->dffs().size() * W);
    // Slots no instruction writes and no external driver refreshes: their
    // value comes solely from the constant image (kConst cells, and on
    // optimized tapes the outputs of instructions folded to constants).
    // After a release() these must be restored from the image at the next
    // eval() -- nothing else ever rewrites them, whereas the interpreter
    // re-evaluates the still-present cell on the next settle.
    const_src_.assign(n, 1);
    restore_flag_.assign(n, 0);
    for (const Instr& it : tape_->instrs()) {
      const_src_[it.out] = 0;
      if (it.out2 != kNullSlot) const_src_[it.out2] = 0;
    }
    for (Slot s = 0; s < n; ++s) {
      if (const_src_[s] == 0) continue;
      const NetId net = tape_->net_of(s);
      if (tape_->is_primary_input(net) || tape_->is_dff_output(net)) {
        const_src_[s] = 0;
      }
    }
    load_const_image();
  }

  [[nodiscard]] const Tape& tape() const { return *tape_; }

  // Execution tier --------------------------------------------------------
  /// Selects how eval() walks the tape.  The request goes through
  /// resolve_exec_tier() (DWT_EXEC_TIER override, kAuto resolution,
  /// native-support fallback), so the stored tier is always concrete.
  /// kNative without an attached block builds one privately; prefer
  /// set_native() with an ArtifactCache-shared block when many simulators
  /// run one configuration.  Tier choice never changes results: all tiers
  /// compute identical words.
  void set_exec_tier(ExecTier tier) {
    tier = resolve_exec_tier(tier, W);
    if (tier == ExecTier::kNative) {
      if (!native_) native_ = NativeBlock::build(*tape_, W);
      if (!native_) tier = ExecTier::kThreaded;
    }
    if (tier != ExecTier::kNative) native_.reset();
    tier_ = tier;
  }
  /// Attaches a pre-built (typically cache-shared) native block and selects
  /// the native tier.  A null block, an unsupported host, or a DWT_EXEC_TIER
  /// override demoting the request leaves the resolved portable tier
  /// instead.  Throws if the block was built for another width or tape.
  void set_native(std::shared_ptr<const NativeBlock> block) {
    if (block && (block->words() != W ||
                  block->instr_count() != tape_->instrs().size())) {
      throw std::invalid_argument(
          "WideSimulator::set_native: block does not match tape");
    }
    const ExecTier resolved = resolve_exec_tier(ExecTier::kNative, W);
    if (resolved == ExecTier::kNative && block) {
      native_ = std::move(block);
      tier_ = ExecTier::kNative;
    } else {
      native_.reset();
      tier_ = resolved == ExecTier::kNative ? ExecTier::kThreaded : resolved;
    }
  }
  [[nodiscard]] ExecTier exec_tier() const { return tier_; }
  /// The attached native block (null unless the native tier is active).
  [[nodiscard]] const std::shared_ptr<const NativeBlock>& native_block()
      const {
    return native_;
  }

  // Input drive -----------------------------------------------------------
  /// Drives one lane of a primary input.
  void set_input(NetId net, unsigned lane, bool value) {
    if (lane >= kTotalLanes) {
      throw std::invalid_argument("WideSimulator::set_input: bad lane");
    }
    const Slot s = input_slot(net);
    const std::uint64_t bit = std::uint64_t{1} << (lane % kWordLanes);
    std::uint64_t& word = state_[s * W + lane / kWordLanes];
    word = value ? (word | bit) : (word & ~bit);
  }
  /// Drives all 64*W lanes of a primary input from a packed block.
  void set_input_block(NetId net, const Block& lanes) {
    const Slot s = input_slot(net);
    for (unsigned k = 0; k < W; ++k) state_[s * W + k] = lanes.w[k];
  }
  /// Drives one lane of an input bus with a signed value (two's complement).
  void set_bus(const Bus& bus, unsigned lane, std::int64_t value) {
    if (bus.bits.empty()) {
      throw std::invalid_argument("WideSimulator::set_bus: empty bus");
    }
    check_bus_fit(bus, value, "WideSimulator::set_bus");
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      set_input(bus.bits[i], lane, ((value >> i) & 1) != 0);
    }
  }
  /// Drives every lane of an input bus with the same signed value.
  void set_bus_all(const Bus& bus, std::int64_t value) {
    if (bus.bits.empty()) {
      throw std::invalid_argument("WideSimulator::set_bus_all: empty bus");
    }
    check_bus_fit(bus, value, "WideSimulator::set_bus_all");
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      set_input_block(bus.bits[i],
                      ((value >> i) & 1) != 0 ? Block::ones() : Block::zeros());
    }
  }

  // Clocking --------------------------------------------------------------
  void eval() { eval_range(0, tape_->instrs().size()); }

  /// Settles only instructions [lo, hi) of the tape -- the cone-restricted
  /// entry point (see rtl/compiled/cone_session.hpp).  Identical to eval()
  /// when the range spans the whole tape: released constant-image slots are
  /// reloaded and active pins applied regardless of the range, since both
  /// are per-slot overlays rather than instructions.
  void eval_range(std::size_t lo, std::size_t hi) {
    if (!restore_pending_.empty()) {
      // Released constant-source slots: reload the whole slot from the
      // image; apply_forces() below re-pins any lanes still forced.
      const std::vector<std::uint64_t>& img = tape_->const_image();
      for (const Slot rs : restore_pending_) {
        restore_flag_[rs] = 0;
        for (unsigned k = 0; k < W; ++k) state_[rs * W + k] = img[rs];
      }
      restore_pending_.clear();
    }
    std::uint64_t* const s = state_.data();
    const Instr* const tape = tape_->instrs().data();
    if (forced_slots_.empty()) {
      // The native block is a full-tape settle with no overlay hooks: it
      // only runs for unforced whole-range evals.  Cone-restricted ranges
      // and forced evals below drop to the portable tiers, which compute
      // the same words -- so tier choice never changes results.
      if (tier_ == ExecTier::kNative && lo == 0 &&
          hi == tape_->instrs().size()) {
        native_->run(s);
        return;
      }
      if (tier_ != ExecTier::kSwitch) {
        run_threaded<false>(s, tape, lo, hi);
        return;
      }
      for (std::size_t i = lo; i < hi; ++i) exec<false>(s, tape[i]);
      return;
    }
    apply_forces();
    if (tier_ != ExecTier::kSwitch) {
      run_threaded<true>(s, tape, lo, hi);
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) exec<true>(s, tape[i]);
  }

  void clock_edge() {
    if (tier_ == ExecTier::kNative) {
      // Single dependency-ordered pass (see native_block.hpp); scratch is
      // only touched for registers on a copy cycle.
      native_->run_edge(state_.data(), dff_scratch_.data());
      return;
    }
    const std::vector<DffSlots>& dffs = tape_->dffs();
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      for (unsigned k = 0; k < W; ++k) {
        dff_scratch_[i * W + k] = state_[dffs[i].d * W + k];
      }
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      for (unsigned k = 0; k < W; ++k) {
        state_[dffs[i].q * W + k] = dff_scratch_[i * W + k];
      }
    }
  }

  void step() {
    eval();
    clock_edge();
    ++cycles_;
    if (activity_on_) {
      const std::size_t n = state_.size();
      for (std::size_t i = 0; i < n; ++i) {
        toggles_[i / W] += static_cast<std::uint64_t>(std::popcount(
            (state_[i] ^ prev_state_[i]) & activity_lanes_.w[i % W]));
        prev_state_[i] = state_[i];
      }
    }
  }

  // Observation -----------------------------------------------------------
  [[nodiscard]] bool value(NetId net, unsigned lane) const {
    if (lane >= kTotalLanes) {
      throw std::invalid_argument("WideSimulator::value: bad lane");
    }
    const Slot s = checked_slot(net);
    return ((state_[s * W + lane / kWordLanes] >> (lane % kWordLanes)) & 1) !=
           0;
  }
  /// All 64*W lanes of a net, packed (bit L of word L/64 = lane L).
  [[nodiscard]] Block block(NetId net) const {
    const Slot s = checked_slot(net);
    Block b;
    for (unsigned k = 0; k < W; ++k) b.w[k] = state_[s * W + k];
    return b;
  }
  /// Reads one lane of a bus as a signed two's complement integer.
  [[nodiscard]] std::int64_t read_bus(const Bus& bus, unsigned lane) const {
    if (bus.bits.empty()) {
      throw std::invalid_argument("WideSimulator::read_bus: empty bus");
    }
    if (lane >= kTotalLanes) {
      throw std::invalid_argument("WideSimulator::read_bus: bad lane");
    }
    const unsigned word = lane / kWordLanes;
    const unsigned bit = lane % kWordLanes;
    std::int64_t v = 0;
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      const Slot s = checked_slot(bus.bits[i]);
      if ((state_[s * W + word] >> bit) & 1) v |= std::int64_t{1} << i;
    }
    const int w = bus.width();
    if (w < 64 && (v & (std::int64_t{1} << (w - 1)))) {
      v -= std::int64_t{1} << w;
    }
    return v;
  }

  // Slot-level access (cone-restricted sessions) ---------------------------
  /// Raw lane word `k` of slot `s`, no net mapping or range checks beyond
  /// the vector's own.  Cone sessions and golden-trace recording read state
  /// by slot because they walk the tape, not the netlist.
  [[nodiscard]] std::uint64_t slot_word(Slot s, unsigned k) const {
    return state_[static_cast<std::size_t>(s) * W + k];
  }
  /// Overwrites every lane word of slot `s` with `word` -- how a cone
  /// session refreshes an out-of-cone slot from the golden trace (golden
  /// runs are lane-uniform, so one word serves all W).
  void broadcast_slot(Slot s, std::uint64_t word) {
    for (unsigned k = 0; k < W; ++k) {
      state_[static_cast<std::size_t>(s) * W + k] = word;
    }
  }
  /// True while any lane of any slot is pinned by force().
  [[nodiscard]] bool any_forced() const { return !forced_slots_.empty(); }

  // Fault overlay ---------------------------------------------------------
  /// Pins lanes of `net`: wherever `lanes` has a bit set, the net is held at
  /// the corresponding bit of `values` through every subsequent eval() until
  /// release()d.  Pins compose across calls (later calls win on overlap).
  /// A force on an unmaterialized net is a silent no-op (see header note).
  void force(NetId net, const Block& lanes, const Block& values) {
    const Slot s = overlay_slot(net);
    if (s == kNullSlot) return;
    if (!forced_[s]) {
      forced_[s] = 1;
      forced_slots_.push_back(s);
    }
    for (unsigned k = 0; k < W; ++k) {
      force_keep_[s * W + k] &= ~lanes.w[k];
      force_val_[s * W + k] =
          (force_val_[s * W + k] & ~lanes.w[k]) | (values.w[k] & lanes.w[k]);
    }
  }
  /// Removes the pin on the given lanes of `net`.
  void release(NetId net, const Block& lanes) {
    const Slot s = overlay_slot(net);
    if (s == kNullSlot || !forced_[s]) return;
    bool clear = true;
    for (unsigned k = 0; k < W; ++k) {
      force_keep_[s * W + k] |= lanes.w[k];
      force_val_[s * W + k] &= ~lanes.w[k];
      clear = clear && force_keep_[s * W + k] == ~std::uint64_t{0};
    }
    if (const_src_[s] && !restore_flag_[s]) {
      // No instruction recomputes this slot, so the released value would
      // otherwise persist; schedule a constant-image restore for the next
      // eval().  Deferring (rather than restoring here) matches both the
      // interpreter, whose pinned value stays visible until the next
      // settle, and this engine's own lazy semantics on non-folded nets.
      restore_flag_[s] = 1;
      restore_pending_.push_back(s);
    }
    if (clear) {
      forced_[s] = 0;
      for (std::size_t i = 0; i < forced_slots_.size(); ++i) {
        if (forced_slots_[i] == s) {
          forced_slots_[i] = forced_slots_.back();
          forced_slots_.pop_back();
          break;
        }
      }
    }
  }
  /// XORs the given lanes of a DFF output -- the SEU strike.  Call between
  /// clock_edge() and the next eval(); throws if `net` is not a DFF output.
  void flip_state(NetId net, const Block& lanes) {
    if (net >= tape_->net_count() || !tape_->is_dff_output(net)) {
      throw std::invalid_argument(
          "WideSimulator::flip_state: not a DFF output");
    }
    const Slot s = tape_->slot_of(net);
    for (unsigned k = 0; k < W; ++k) state_[s * W + k] ^= lanes.w[k];
  }

  // Activity --------------------------------------------------------------
  /// Starts counting per-slot toggles on the lanes of `lanes` (default all).
  /// Counting costs one extra pass over the state per step().
  void enable_activity(const Block& lanes = Block::ones()) {
    activity_on_ = true;
    activity_lanes_ = lanes;
    prev_state_ = state_;
    toggles_.assign(tape_->slot_count(), 0);
  }
  /// Toggle totals summed over counted lanes, as ActivityStats indexed by
  /// NetId; `cycles` is steps * popcount(counted lanes) -- each lane is one
  /// simulated vector stream.
  [[nodiscard]] ActivityStats activity_stats() const {
    if (!activity_on_) {
      throw std::logic_error(
          "WideSimulator::activity_stats: activity not enabled");
    }
    ActivityStats stats;
    stats.cycles = cycles_ * activity_lanes_.popcount();
    stats.toggles.assign(tape_->net_count(), 0);
    for (Slot s = 0; s < toggles_.size(); ++s) {
      stats.toggles[tape_->net_of(s)] = toggles_[s];
      stats.total_toggles += toggles_[s];
    }
    return stats;
  }

  /// Clears all state (and toggle counters) back to power-on zero: one copy
  /// of the tape's constant image, no per-slot bookkeeping.
  void reset() {
    load_const_image();
    for (const Slot s : restore_pending_) restore_flag_[s] = 0;
    restore_pending_.clear();
    if (activity_on_) {
      prev_state_ = state_;
      toggles_.assign(toggles_.size(), 0);
    }
    cycles_ = 0;
  }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  void load_const_image() {
    const std::vector<std::uint64_t>& img = tape_->const_image();
    if constexpr (W == 1) {
      std::copy(img.begin(), img.end(), state_.begin());
    } else {
      for (std::size_t s = 0; s < img.size(); ++s) {
        for (unsigned k = 0; k < W; ++k) state_[s * W + k] = img[s];
      }
    }
  }

  /// One instruction over all W words.  Results are computed into locals
  /// before the store so the per-word loops stay dependence-free.
  template <bool Forced>
  void exec(std::uint64_t* const s, const Instr& it) {
    const std::uint64_t* const a = s + std::size_t{it.a} * W;
    const std::uint64_t* const b = s + std::size_t{it.b} * W;
    const std::uint64_t* const c = s + std::size_t{it.c} * W;
    std::uint64_t* const o = s + std::size_t{it.out} * W;
    std::uint64_t v[W] = {};  // every case overwrites; init keeps -Werror quiet
    switch (it.op) {
      case Op::kNot:
        for (unsigned k = 0; k < W; ++k) v[k] = ~a[k];
        break;
      case Op::kAnd:
        for (unsigned k = 0; k < W; ++k) v[k] = a[k] & b[k];
        break;
      case Op::kOr:
        for (unsigned k = 0; k < W; ++k) v[k] = a[k] | b[k];
        break;
      case Op::kXor:
        for (unsigned k = 0; k < W; ++k) v[k] = a[k] ^ b[k];
        break;
      case Op::kMux:
        for (unsigned k = 0; k < W; ++k) v[k] = (c[k] & b[k]) | (~c[k] & a[k]);
        break;
      case Op::kAddSum:
        for (unsigned k = 0; k < W; ++k) v[k] = a[k] ^ b[k] ^ c[k];
        break;
      case Op::kAddCarry:
        for (unsigned k = 0; k < W; ++k) {
          v[k] = (a[k] & b[k]) | (c[k] & (a[k] ^ b[k]));
        }
        break;
      case Op::kFullAdd: {
        std::uint64_t v2[W];
        for (unsigned k = 0; k < W; ++k) {
          const std::uint64_t ax = a[k], bx = b[k], cx = c[k];
          v[k] = ax ^ bx ^ cx;
          v2[k] = (ax & bx) | (cx & (ax ^ bx));
        }
        std::uint64_t* const o2 = s + std::size_t{it.out2} * W;
        if constexpr (Forced) {
          if (forced_[it.out2]) {
            for (unsigned k = 0; k < W; ++k) {
              v2[k] = (v2[k] & force_keep_[it.out2 * W + k]) |
                      force_val_[it.out2 * W + k];
            }
          }
        }
        for (unsigned k = 0; k < W; ++k) o2[k] = v2[k];
        break;
      }
    }
    if constexpr (Forced) {
      if (forced_[it.out]) {
        for (unsigned k = 0; k < W; ++k) {
          v[k] =
              (v[k] & force_keep_[it.out * W + k]) | force_val_[it.out * W + k];
        }
      }
    }
    for (unsigned k = 0; k < W; ++k) o[k] = v[k];
  }

  /// Pins (when Forced) and stores one result block -- the common tail of
  /// every threaded kernel.
  template <bool Forced>
  void store_result(std::uint64_t* const s, Slot out,
                    const std::uint64_t* const v) {
    std::uint64_t* const o = s + std::size_t{out} * W;
    if constexpr (Forced) {
      if (forced_[out]) {
        for (unsigned k = 0; k < W; ++k) {
          o[k] = (v[k] & force_keep_[out * W + k]) | force_val_[out * W + k];
        }
        return;
      }
    }
    for (unsigned k = 0; k < W; ++k) o[k] = v[k];
  }

  /// Direct-threaded tape walk: each kernel ends by jumping straight to the
  /// next instruction's kernel (computed goto), so there is no loop test or
  /// switch dispatch between instructions.  Kernel bodies are word-for-word
  /// the exec<Forced> cases; the label table is indexed by Op, whose
  /// enumerators are contiguous from kNot.
  template <bool Forced>
  void run_threaded(std::uint64_t* const s, const Instr* const tape,
                    std::size_t lo, std::size_t hi) {
#if DWT_HAS_COMPUTED_GOTO
    if (lo >= hi) return;
    static const void* const targets[] = {
        &&op_not, &&op_and,     &&op_or,       &&op_xor,
        &&op_mux, &&op_add_sum, &&op_add_carry, &&op_full_add};
    const Instr* ip = tape + lo;
    const Instr* const end = tape + hi;
#define DWT_THREADED_NEXT()                           \
  do {                                                \
    if (++ip == end) return;                          \
    goto* targets[static_cast<unsigned>(ip->op)];     \
  } while (0)
    goto* targets[static_cast<unsigned>(ip->op)];
  op_not : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) v[k] = ~a[k];
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_and : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) v[k] = a[k] & b[k];
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_or : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) v[k] = a[k] | b[k];
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_xor : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) v[k] = a[k] ^ b[k];
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_mux : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    const std::uint64_t* const c = s + std::size_t{ip->c} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) v[k] = (c[k] & b[k]) | (~c[k] & a[k]);
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_add_sum : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    const std::uint64_t* const c = s + std::size_t{ip->c} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) v[k] = a[k] ^ b[k] ^ c[k];
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_add_carry : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    const std::uint64_t* const c = s + std::size_t{ip->c} * W;
    std::uint64_t v[W];
    for (unsigned k = 0; k < W; ++k) {
      v[k] = (a[k] & b[k]) | (c[k] & (a[k] ^ b[k]));
    }
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
  op_full_add : {
    const std::uint64_t* const a = s + std::size_t{ip->a} * W;
    const std::uint64_t* const b = s + std::size_t{ip->b} * W;
    const std::uint64_t* const c = s + std::size_t{ip->c} * W;
    std::uint64_t v[W];
    std::uint64_t v2[W];
    for (unsigned k = 0; k < W; ++k) {
      const std::uint64_t ax = a[k], bx = b[k], cx = c[k];
      v[k] = ax ^ bx ^ cx;
      v2[k] = (ax & bx) | (cx & (ax ^ bx));
    }
    store_result<Forced>(s, ip->out2, v2);
    store_result<Forced>(s, ip->out, v);
    DWT_THREADED_NEXT();
  }
#undef DWT_THREADED_NEXT
#else   // !DWT_HAS_COMPUTED_GOTO
    for (std::size_t i = lo; i < hi; ++i) exec<Forced>(s, tape[i]);
#endif  // DWT_HAS_COMPUTED_GOTO
  }

  void apply_forces() {
    // Source slots (primary inputs, DFF outputs, constants) are never
    // written by tape instructions; pin them up front.  Instruction outputs
    // are re-pinned as they are computed, inside exec<true>().
    for (const Slot s : forced_slots_) {
      for (unsigned k = 0; k < W; ++k) {
        state_[s * W + k] =
            (state_[s * W + k] & force_keep_[s * W + k]) | force_val_[s * W + k];
      }
    }
  }

  [[nodiscard]] Slot checked_slot(NetId net) const {
    if (net >= tape_->net_count()) {
      throw std::invalid_argument("WideSimulator: net out of range");
    }
    const Slot s = tape_->slot_of(net);
    if (s == kNullSlot) {
      throw std::invalid_argument(
          "WideSimulator: net was eliminated by the tape optimizer");
    }
    return s;
  }
  [[nodiscard]] Slot input_slot(NetId net) const {
    const Slot s = checked_slot(net);
    if (!tape_->is_primary_input(net)) {
      throw std::invalid_argument("WideSimulator: not a primary input");
    }
    return s;
  }
  /// Slot for force/release: range-checks the net but maps eliminated nets
  /// to kNullSlot (overlay no-op) instead of throwing.
  [[nodiscard]] Slot overlay_slot(NetId net) const {
    if (net >= tape_->net_count()) {
      throw std::invalid_argument("WideSimulator: net out of range");
    }
    return tape_->slot_of(net);
  }
  static void check_bus_fit(const Bus& bus, std::int64_t value,
                            const char* who) {
    const int w = bus.width();
    if (w < 64) {
      // Two's complement fit check, same contract as Simulator::set_bus.
      const std::int64_t hi = value >> (w - 1);
      if (hi != 0 && hi != -1) {
        throw std::invalid_argument(std::string(who) +
                                    ": value does not fit bus");
      }
    }
  }

  std::shared_ptr<const Tape> tape_;
  ExecTier tier_ = ExecTier::kSwitch;            // always concrete, never kAuto
  std::shared_ptr<const NativeBlock> native_;    // non-null iff tier_ == kNative
  StateVec state_;                         // slot-major, W words per slot
  std::vector<std::uint64_t> force_keep_;  // per word: ~forced-lanes mask
  std::vector<std::uint64_t> force_val_;   // per word: pinned values
  std::vector<std::uint8_t> forced_;       // per slot flag
  std::vector<Slot> forced_slots_;         // slots with any active pin
  std::vector<std::uint8_t> const_src_;    // slot fed only by const_image()
  std::vector<Slot> restore_pending_;      // const slots to reload at eval()
  std::vector<std::uint8_t> restore_flag_;  // per slot: in restore_pending_
  StateVec dff_scratch_;

  bool activity_on_ = false;
  Block activity_lanes_ = Block::ones();
  StateVec prev_state_;                    // per word, for toggle XOR
  std::vector<std::uint64_t> toggles_;     // per slot
  std::uint64_t cycles_ = 0;
};

}  // namespace dwt::rtl::compiled
