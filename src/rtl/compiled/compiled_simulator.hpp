// Bit-parallel batch simulator: evaluates a compiled Tape with 64
// independent test vectors packed into one std::uint64_t "lane word" per
// signal slot.  Bit L of every word belongs to lane L, so one pass over the
// instruction tape advances all 64 vectors by one settle -- the machinery
// behind the compiled campaign runner and the batched activity path.
//
// Semantics match the scalar zero-delay rtl::Simulator lane-for-lane:
//   * eval() settles the combinational cloud (dependency-ordered tape pass);
//   * clock_edge() moves every DFF's settled D word into its Q word
//     (two-phase, race-free);
//   * step() = eval() + clock_edge();
//   * all state resets to 0, constants excepted.
//
// Fault overlays are lane masks: force() pins chosen lanes of a net to
// chosen values during eval (the compiled analogue of FaultInjector's
// settle-with-pins), flip_state() XORs freshly clocked DFF lanes (SEU).
//
// Optional per-slot toggle counters accumulate popcount(new ^ old) across
// cycles; activity_stats() exports them as rtl::ActivityStats (indexed by
// NetId) so fpga::estimate_power consumes batched runs directly.  Zero-delay
// toggles exclude combinational glitches -- a fast screening lower bound,
// not a replacement for the unit-delay simulators.
//
// This is the one-word instantiation of the width-templated engine in
// wide_simulator.hpp, kept as a named class so the packed-mask std::uint64_t
// surface of the original simulator survives unchanged; WideSimulator<2>/<4>
// carry 128/256 lanes through the same tape pass.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/activity_sim.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/compiled/wide_simulator.hpp"
#include "rtl/netlist.hpp"

namespace dwt::rtl::compiled {

inline constexpr unsigned kLanes = 64;

class CompiledSimulator : public WideSimulator<1> {
 public:
  using WideSimulator<1>::WideSimulator;

  /// Drives all 64 lanes of a primary input from a packed mask.
  void set_input_mask(NetId net, std::uint64_t lanes) {
    set_input_block(net, blk(lanes));
  }

  /// All 64 lanes of a net, packed (bit L = lane L).
  [[nodiscard]] std::uint64_t lane_mask(NetId net) const {
    return block(net).w[0];
  }

  /// Pins lanes of `net`: wherever `lanes` has a bit set, the net is held at
  /// the corresponding bit of `values` through every subsequent eval() until
  /// release()d.  Pins compose across calls (later calls win on overlap).
  void force(NetId net, std::uint64_t lanes, std::uint64_t values) {
    WideSimulator<1>::force(net, blk(lanes), blk(values));
  }
  /// Removes the pin on the given lanes of `net`.
  void release(NetId net, std::uint64_t lanes) {
    WideSimulator<1>::release(net, blk(lanes));
  }
  /// XORs the given lanes of a DFF output -- the SEU strike.  Call between
  /// clock_edge() and the next eval(); throws if `net` is not a DFF output.
  void flip_state(NetId net, std::uint64_t lanes) {
    WideSimulator<1>::flip_state(net, blk(lanes));
  }

  /// Starts counting per-slot toggles on the lanes of `lane_mask` (default
  /// all).  Counting costs one extra pass over the state per step().
  void enable_activity(std::uint64_t lane_mask = ~std::uint64_t{0}) {
    WideSimulator<1>::enable_activity(blk(lane_mask));
  }

 private:
  [[nodiscard]] static Block blk(std::uint64_t word) {
    Block b;
    b.w[0] = word;
    return b;
  }
};

}  // namespace dwt::rtl::compiled
