// Bit-parallel batch simulator: evaluates a compiled Tape with 64
// independent test vectors packed into one std::uint64_t "lane word" per
// signal slot.  Bit L of every word belongs to lane L, so one pass over the
// instruction tape advances all 64 vectors by one settle -- the machinery
// behind the compiled campaign runner and the batched activity path.
//
// Semantics match the scalar zero-delay rtl::Simulator lane-for-lane:
//   * eval() settles the combinational cloud (dependency-ordered tape pass);
//   * clock_edge() moves every DFF's settled D word into its Q word
//     (two-phase, race-free);
//   * step() = eval() + clock_edge();
//   * all state resets to 0, constants excepted.
//
// Fault overlays are lane masks: force() pins chosen lanes of a net to
// chosen values during eval (the compiled analogue of FaultInjector's
// settle-with-pins), flip_state() XORs freshly clocked DFF lanes (SEU).
//
// Optional per-slot toggle counters accumulate popcount(new ^ old) across
// cycles; activity_stats() exports them as rtl::ActivityStats (indexed by
// NetId) so fpga::estimate_power consumes batched runs directly.  Zero-delay
// toggles exclude combinational glitches -- a fast screening lower bound,
// not a replacement for the unit-delay simulators.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/activity_sim.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/netlist.hpp"

namespace dwt::rtl::compiled {

inline constexpr unsigned kLanes = 64;

class CompiledSimulator {
 public:
  /// Compiles `nl` privately.  For many simulators over one design (e.g.
  /// thread-sharded campaigns) compile once and use the shared-tape ctor.
  explicit CompiledSimulator(const Netlist& nl);
  explicit CompiledSimulator(std::shared_ptr<const Tape> tape);

  [[nodiscard]] const Tape& tape() const { return *tape_; }

  // Input drive -----------------------------------------------------------
  /// Drives one lane of a primary input.
  void set_input(NetId net, unsigned lane, bool value);
  /// Drives all 64 lanes of a primary input from a packed mask.
  void set_input_mask(NetId net, std::uint64_t lanes);
  /// Drives one lane of an input bus with a signed value (two's complement).
  void set_bus(const Bus& bus, unsigned lane, std::int64_t value);
  /// Drives every lane of an input bus with the same signed value.
  void set_bus_all(const Bus& bus, std::int64_t value);

  // Clocking --------------------------------------------------------------
  void eval();
  void clock_edge();
  void step();

  // Observation -----------------------------------------------------------
  [[nodiscard]] bool value(NetId net, unsigned lane) const;
  /// All 64 lanes of a net, packed (bit L = lane L).
  [[nodiscard]] std::uint64_t lane_mask(NetId net) const;
  /// Reads one lane of a bus as a signed two's complement integer.
  [[nodiscard]] std::int64_t read_bus(const Bus& bus, unsigned lane) const;

  // Fault overlay ---------------------------------------------------------
  /// Pins lanes of `net`: wherever `lanes` has a bit set, the net is held at
  /// the corresponding bit of `values` through every subsequent eval() until
  /// release()d.  Pins compose across calls (later calls win on overlap).
  void force(NetId net, std::uint64_t lanes, std::uint64_t values);
  /// Removes the pin on the given lanes of `net`.
  void release(NetId net, std::uint64_t lanes);
  /// XORs the given lanes of a DFF output -- the SEU strike.  Call between
  /// clock_edge() and the next eval(); throws if `net` is not a DFF output.
  void flip_state(NetId net, std::uint64_t lanes);

  // Activity --------------------------------------------------------------
  /// Starts counting per-slot toggles on the lanes of `lane_mask` (default
  /// all).  Counting costs one extra pass over the state per step().
  void enable_activity(std::uint64_t lane_mask = ~std::uint64_t{0});
  /// Toggle totals summed over counted lanes, as ActivityStats indexed by
  /// NetId; `cycles` is steps * popcount(counted lanes) -- each lane is one
  /// simulated vector stream.
  [[nodiscard]] ActivityStats activity_stats() const;

  /// Clears all state (and toggle counters) back to power-on zero.
  void reset();

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  void apply_forces();
  [[nodiscard]] Slot checked_slot(NetId net) const;

  std::shared_ptr<const Tape> tape_;
  std::vector<std::uint64_t> state_;      // per slot, one bit per lane
  std::vector<std::uint64_t> force_keep_;  // per slot: ~forced-lanes mask
  std::vector<std::uint64_t> force_val_;   // per slot: pinned values
  std::vector<std::uint8_t> forced_;       // per slot flag
  std::vector<Slot> forced_slots_;         // slots with any active pin
  std::vector<std::uint64_t> dff_scratch_;

  bool activity_on_ = false;
  std::uint64_t activity_lanes_ = ~std::uint64_t{0};
  std::vector<std::uint64_t> prev_state_;  // per slot, for toggle XOR
  std::vector<std::uint64_t> toggles_;     // per slot
  std::uint64_t cycles_ = 0;
};

}  // namespace dwt::rtl::compiled
