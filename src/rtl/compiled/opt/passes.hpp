// Tape-optimizing compiler passes: rewrite a compiled instruction tape into
// a cheaper one that computes bit-identical values on every net it still
// materializes.  The shift-add recoded datapaths elaborate to netlists full
// of structurally-dead gates, constant-absorbed cells (`x & 0` from
// out-of-range shift taps) and kAddSum/kAddCarry pairs over the same three
// operands; these passes reclaim all of that at tape level, where one
// removed instruction saves work on every lane of every cycle.
//
// Passes (composable; optimize() runs the standard pipeline):
//  * fold_constants   -- propagates constants through the levelized tape.
//                        In fault-safe mode only folds whose result is
//                        insensitive to every forceable input are applied
//                        (`a & 0`, `a | 1`, `a ^ a`, ... with the constant
//                        from a real kConst cell), so per-lane force/SEU
//                        overlays still behave exactly as on the netlist.
//                        Full mode additionally folds any instruction whose
//                        operands are all constant and copy-propagates
//                        identities (`x ^ 0 -> x`) by aliasing the output
//                        net onto the operand's slot -- but only when that
//                        slot holds an instruction output or constant.
//                        Primary-input and DFF-Q slots change outside
//                        eval() (set_input / clock_edge), so a comb net
//                        aliased onto one would drift from the
//                        interpreter's observation convention that comb
//                        nets show their pre-edge settled values.
//  * eliminate_dead   -- drops instructions whose outputs reach neither a
//                        DFF D pin nor a primary output (always fault-safe:
//                        forcing a dead net cannot move an observable).
//  * fuse_full_adders -- merges a kAddSum/kAddCarry pair over identical
//                        (a, b, c) operands into one kFullAdd macro-op
//                        writing both slots: one instruction dispatch, one
//                        operand fetch for the dominant cell pair of the
//                        adder-heavy designs.
//  * renumber         -- compacts the slot space (dropping orphaned slots)
//                        and renumbers survivors in evaluation order so the
//                        eval loop's reads and writes stay local.
//
// Every pass returns a fresh immutable Tape; inputs are never mutated.
#pragma once

#include <memory>

#include "rtl/compiled/tape.hpp"

namespace dwt::rtl::compiled::opt {

/// Constant folding.  `fault_safe` restricts folding to results that are
/// insensitive to every forceable operand (see header comment); pass false
/// for the full fold + copy propagation.  Counts go to stats->folded /
/// stats->aliased when `stats` is given.
[[nodiscard]] std::shared_ptr<const Tape> fold_constants(
    const Tape& t, bool fault_safe, OptStats* stats = nullptr);

/// Dead-instruction elimination; roots are DFF D pins and primary outputs.
/// Eliminated nets become unmaterialized (Tape::materialized() == false).
[[nodiscard]] std::shared_ptr<const Tape> eliminate_dead(
    const Tape& t, OptStats* stats = nullptr);

/// kAddSum + kAddCarry over identical (a, b, c) -> one kFullAdd.
[[nodiscard]] std::shared_ptr<const Tape> fuse_full_adders(
    const Tape& t, OptStats* stats = nullptr);

/// Slot-space compaction and locality renumbering.
[[nodiscard]] std::shared_ptr<const Tape> renumber(const Tape& t,
                                                   OptStats* stats = nullptr);

/// The standard pipeline at `level` (kSafe or kFull; throws on kNone):
/// fold_constants -> eliminate_dead -> fuse_full_adders -> renumber.
/// The returned tape records `level` and the accumulated OptStats.
[[nodiscard]] std::shared_ptr<const Tape> optimize(const Tape& raw,
                                                   OptLevel level,
                                                   OptStats* stats = nullptr);

}  // namespace dwt::rtl::compiled::opt
