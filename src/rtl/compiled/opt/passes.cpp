#include "rtl/compiled/opt/passes.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dwt::rtl::compiled::opt {
namespace {

/// Three-valued operand lattice for the folder.
enum class Val : std::uint8_t { kUnknown, k0, k1 };

Val known(bool b) { return b ? Val::k1 : Val::k0; }

bool is_known(Val v) { return v != Val::kUnknown; }

bool as_bool(Val v) { return v == Val::k1; }

/// Outcome of trying to simplify one instruction.
struct Rewrite {
  enum class Kind : std::uint8_t { kKeep, kConst, kAlias } kind = Kind::kKeep;
  bool value = false;     // kConst
  Slot target = kNullSlot;  // kAlias
};

Rewrite keep() { return {}; }
Rewrite to_const(bool v) { return {Rewrite::Kind::kConst, v, kNullSlot}; }
Rewrite to_alias(Slot s) { return {Rewrite::Kind::kAlias, false, s}; }

/// Simplifies a single-output instruction given the lattice view of its
/// (alias-resolved) operands.  In fault-safe mode `va/vb/vc` are known only
/// for force-immune constants, and alias rewrites are never returned, so
/// every rewrite is observably identical under arbitrary per-lane forces.
/// Same-slot operand rules are value-independent: both pins of the cell read
/// the same (possibly forced) word, so e.g. `a ^ a` is 0 on every lane even
/// while `a` is forced.
Rewrite simplify(const Instr& it, Val va, Val vb, Val vc, bool fault_safe) {
  const bool full = !fault_safe;
  switch (it.op) {
    case Op::kNot:
      if (is_known(va)) return to_const(!as_bool(va));
      return keep();
    case Op::kAnd:
      if (va == Val::k0 || vb == Val::k0) return to_const(false);
      if (va == Val::k1 && vb == Val::k1) return to_const(true);
      if (full) {
        if (it.a == it.b) return to_alias(it.a);
        if (va == Val::k1) return to_alias(it.b);
        if (vb == Val::k1) return to_alias(it.a);
      }
      return keep();
    case Op::kOr:
      if (va == Val::k1 || vb == Val::k1) return to_const(true);
      if (va == Val::k0 && vb == Val::k0) return to_const(false);
      if (full) {
        if (it.a == it.b) return to_alias(it.a);
        if (va == Val::k0) return to_alias(it.b);
        if (vb == Val::k0) return to_alias(it.a);
      }
      return keep();
    case Op::kXor:
      if (it.a == it.b) return to_const(false);
      if (is_known(va) && is_known(vb)) {
        return to_const(as_bool(va) != as_bool(vb));
      }
      if (full) {
        if (va == Val::k0) return to_alias(it.b);
        if (vb == Val::k0) return to_alias(it.a);
      }
      return keep();
    case Op::kMux:  // out = c ? b : a
      if (vc == Val::k0) {
        if (is_known(va)) return to_const(as_bool(va));
        if (full) return to_alias(it.a);
      }
      if (vc == Val::k1) {
        if (is_known(vb)) return to_const(as_bool(vb));
        if (full) return to_alias(it.b);
      }
      if (it.a == it.b) {  // both branches read the same word
        if (is_known(va)) return to_const(as_bool(va));
        if (full) return to_alias(it.a);
      }
      if (is_known(va) && is_known(vb) && va == vb) return to_const(as_bool(va));
      return keep();
    case Op::kAddSum: {  // out = a ^ b ^ c
      if (is_known(va) && is_known(vb) && is_known(vc)) {
        return to_const((as_bool(va) != as_bool(vb)) != as_bool(vc));
      }
      // A same-slot pair cancels regardless of forcing; the sum collapses
      // to the remaining operand.
      const auto collapse = [&](Slot rest, Val vrest) -> Rewrite {
        if (is_known(vrest)) return to_const(as_bool(vrest));
        if (full) return to_alias(rest);
        return keep();
      };
      if (it.a == it.b) return collapse(it.c, vc);
      if (it.a == it.c) return collapse(it.b, vb);
      if (it.b == it.c) return collapse(it.a, va);
      if (full) {
        // Two known operands whose xor is 0 pass the third through.
        if (is_known(va) && is_known(vb) && va == vb) return to_alias(it.c);
        if (is_known(va) && is_known(vc) && va == vc) return to_alias(it.b);
        if (is_known(vb) && is_known(vc) && vb == vc) return to_alias(it.a);
      }
      return keep();
    }
    case Op::kAddCarry: {  // out = majority(a, b, c)
      const int zeros = (va == Val::k0) + (vb == Val::k0) + (vc == Val::k0);
      const int ones = (va == Val::k1) + (vb == Val::k1) + (vc == Val::k1);
      if (zeros >= 2) return to_const(false);
      if (ones >= 2) return to_const(true);
      // majority(x, x, y) == x for any y.
      const auto dominate = [&](Slot x, Val vx) -> Rewrite {
        if (is_known(vx)) return to_const(as_bool(vx));
        if (full) return to_alias(x);
        return keep();
      };
      if (it.a == it.b) return dominate(it.a, va);
      if (it.a == it.c) return dominate(it.a, va);
      if (it.b == it.c) return dominate(it.b, vb);
      if (full && zeros == 1 && ones == 1) {
        // majority(x, 0, 1) == x.
        if (!is_known(va)) return to_alias(it.a);
        if (!is_known(vb)) return to_alias(it.b);
        return to_alias(it.c);
      }
      return keep();
    }
    case Op::kFullAdd:
      return keep();  // two outputs; handled by the caller
  }
  return keep();
}

}  // namespace

/// Friend of Tape: the only place allowed to build tapes outside compile().
class TapeRewriter {
 public:
  static std::shared_ptr<Tape> clone(const Tape& t) {
    auto out = std::make_shared<Tape>();
    out->instrs_ = t.instrs_;
    out->dffs_ = t.dffs_;
    out->slot_of_net_ = t.slot_of_net_;
    out->net_of_slot_ = t.net_of_slot_;
    out->pi_flag_ = t.pi_flag_;
    out->dff_q_flag_ = t.dff_q_flag_;
    out->po_flag_ = t.po_flag_;
    out->const_image_ = t.const_image_;
    out->depth_ = t.depth_;
    out->level_ = t.level_;
    out->opt_stats_ = t.opt_stats_;
    return out;
  }

  /// Baseline stats: a raw input starts the accumulation chain; an already
  /// rewritten input carries its chain forward.
  static OptStats chain_stats(const Tape& t) {
    OptStats st = t.opt_stats_;
    if (t.level_ == OptLevel::kNone) {
      st.instrs_before = t.instrs_.size();
      st.slots_before = t.const_image_.size();
    }
    return st;
  }

  static void recompute_depth(Tape& t) {
    std::vector<std::uint32_t> level(t.const_image_.size(), 0);
    t.depth_ = 0;
    for (const Instr& it : t.instrs_) {
      const std::uint32_t lvl =
          1 + std::max({level[it.a], level[it.b], level[it.c]});
      level[it.out] = lvl;
      if (it.out2 != kNullSlot) level[it.out2] = lvl;
      t.depth_ = std::max<std::size_t>(t.depth_, lvl);
    }
  }

  static void finish(Tape& t, OptLevel lvl, OptStats st, OptStats* stats) {
    st.instrs_after = t.instrs_.size();
    st.slots_after = t.const_image_.size();
    t.level_ = std::max(t.level_, lvl);
    t.opt_stats_ = st;
    recompute_depth(t);
    if (stats != nullptr) *stats = st;
  }

  static std::shared_ptr<const Tape> fold(const Tape& t, bool fault_safe,
                                          OptStats* stats) {
    const std::size_t n_slots = t.const_image_.size();
    std::vector<std::uint8_t> written(n_slots, 0);
    for (const Instr& it : t.instrs_) {
      written[it.out] = 1;
      if (it.out2 != kNullSlot) written[it.out2] = 1;
    }

    // Lattice seed: unwritten non-PI, non-state slots are constant sources.
    // Only constants already present in a *raw* tape are force-immune (they
    // come from kConst cells, which no fault target pool contains); anything
    // folded later is a forceable net pinned to a value.
    std::vector<Val> val(n_slots, Val::kUnknown);
    std::vector<std::uint8_t> immune(n_slots, 0);
    const bool raw = t.level_ == OptLevel::kNone;
    for (Slot s = 0; s < n_slots; ++s) {
      if (written[s]) continue;
      const NetId n = t.net_of_slot_[s];
      if (t.pi_flag_[n] != 0 || t.dff_q_flag_[n] != 0) continue;
      val[s] = known(t.const_image_[s] != 0);
      if (raw) immune[s] = 1;
    }
    const auto view = [&](Slot s) {
      return (!fault_safe || immune[s] != 0) ? val[s] : Val::kUnknown;
    };

    auto out = clone(t);
    OptStats st = chain_stats(t);
    std::vector<Slot> alias(n_slots);
    for (Slot s = 0; s < n_slots; ++s) alias[s] = s;

    out->instrs_.clear();
    out->instrs_.reserve(t.instrs_.size());
    for (const Instr& in0 : t.instrs_) {
      Instr it = in0;
      it.a = alias[it.a];
      it.b = alias[it.b];
      it.c = alias[it.c];
      const Val va = view(it.a), vb = view(it.b), vc = view(it.c);
      if (it.op == Op::kFullAdd) {
        if (is_known(va) && is_known(vb) && is_known(vc)) {
          const bool sum = (as_bool(va) != as_bool(vb)) != as_bool(vc);
          const int ones = as_bool(va) + as_bool(vb) + as_bool(vc);
          val[it.out] = known(sum);
          val[it.out2] = known(ones >= 2);
          out->const_image_[it.out] = sum ? ~std::uint64_t{0} : 0;
          out->const_image_[it.out2] = ones >= 2 ? ~std::uint64_t{0} : 0;
          st.folded += 1;
          continue;
        }
        out->instrs_.push_back(it);
        continue;
      }
      const Rewrite rw = simplify(it, va, vb, vc, fault_safe);
      switch (rw.kind) {
        case Rewrite::Kind::kConst:
          val[it.out] = known(rw.value);
          out->const_image_[it.out] = rw.value ? ~std::uint64_t{0} : 0;
          st.folded += 1;
          continue;
        case Rewrite::Kind::kAlias: {
          // Only alias onto slots that cannot change outside eval():
          // instruction outputs and constants.  A primary-input or DFF-Q
          // target would desynchronize the aliased net from the
          // interpreter's observation convention, where combinational nets
          // hold their pre-edge settled values after a step.
          const NetId tn = t.net_of_slot_[rw.target];
          if (t.pi_flag_[tn] == 0 && t.dff_q_flag_[tn] == 0) {
            alias[it.out] = rw.target;
            st.aliased += 1;
            continue;
          }
          break;  // keep the (operand-resolved) instruction
        }
        case Rewrite::Kind::kKeep: break;
      }
      out->instrs_.push_back(it);
    }

    for (Slot& s : out->slot_of_net_) {
      if (s != kNullSlot) s = alias[s];
    }
    for (DffSlots& d : out->dffs_) d.d = alias[d.d];
    finish(*out, fault_safe ? OptLevel::kSafe : OptLevel::kFull, st, stats);
    return out;
  }

  static std::shared_ptr<const Tape> dce(const Tape& t, OptStats* stats) {
    const std::size_t n_slots = t.const_image_.size();
    std::vector<std::uint8_t> live(n_slots, 0);
    for (NetId n = 0; n < t.slot_of_net_.size(); ++n) {
      const Slot s = t.slot_of_net_[n];
      if (s != kNullSlot && t.po_flag_[n] != 0) live[s] = 1;
    }
    for (const DffSlots& d : t.dffs_) {
      live[d.d] = 1;
      live[d.q] = 1;
    }

    std::vector<std::uint8_t> kept(t.instrs_.size(), 0);
    for (std::size_t i = t.instrs_.size(); i-- > 0;) {
      const Instr& it = t.instrs_[i];
      const bool l = live[it.out] != 0 ||
                     (it.out2 != kNullSlot && live[it.out2] != 0);
      if (!l) continue;
      kept[i] = 1;
      live[it.a] = live[it.b] = live[it.c] = 1;
    }

    auto out = clone(t);
    OptStats st = chain_stats(t);
    out->instrs_.clear();
    std::vector<std::uint8_t> dead_out(n_slots, 0);
    for (std::size_t i = 0; i < t.instrs_.size(); ++i) {
      if (kept[i] != 0) {
        out->instrs_.push_back(t.instrs_[i]);
      } else {
        dead_out[t.instrs_[i].out] = 1;
        if (t.instrs_[i].out2 != kNullSlot) dead_out[t.instrs_[i].out2] = 1;
        st.dead_removed += 1;
      }
    }
    // Every net that observed a dead slot is gone with it.
    for (Slot& s : out->slot_of_net_) {
      if (s != kNullSlot && dead_out[s] != 0) s = kNullSlot;
    }
    finish(*out, OptLevel::kSafe, st, stats);
    return out;
  }

  static std::shared_ptr<const Tape> fuse(const Tape& t, OptStats* stats) {
    auto out = clone(t);
    OptStats st = chain_stats(t);
    out->instrs_.clear();
    out->instrs_.reserve(t.instrs_.size());

    // Sum (a^b^c) and carry (majority) are both symmetric in their three
    // operands, so pairs match modulo permutation: the key is the sorted
    // triple, while the host keeps its own operand order.
    using Key = std::array<Slot, 3>;
    const auto make_key = [](const Instr& it) {
      Key key{it.a, it.b, it.c};
      std::sort(key.begin(), key.end());
      return key;
    };
    std::map<Key, std::vector<std::size_t>> pending_sum, pending_carry;
    for (const Instr& it : t.instrs_) {
      const Key key = make_key(it);
      if (it.op == Op::kAddSum) {
        if (auto p = pending_carry.find(key);
            p != pending_carry.end() && !p->second.empty()) {
          // Fuse into the carry's (earlier) position: operands are ready
          // there, and every reader of the sum slot comes after this point.
          Instr& host = out->instrs_[p->second.back()];
          p->second.pop_back();
          host.op = Op::kFullAdd;
          host.out2 = host.out;
          host.out = it.out;
          st.fused_pairs += 1;
          continue;
        }
        pending_sum[key].push_back(out->instrs_.size());
      } else if (it.op == Op::kAddCarry) {
        if (auto p = pending_sum.find(key);
            p != pending_sum.end() && !p->second.empty()) {
          Instr& host = out->instrs_[p->second.back()];
          p->second.pop_back();
          host.op = Op::kFullAdd;
          host.out2 = it.out;
          st.fused_pairs += 1;
          continue;
        }
        pending_carry[key].push_back(out->instrs_.size());
      }
      out->instrs_.push_back(it);
    }
    finish(*out, OptLevel::kSafe, st, stats);
    return out;
  }

  static std::shared_ptr<const Tape> renumber(const Tape& t, OptStats* stats) {
    const std::size_t n_slots = t.const_image_.size();
    std::vector<std::uint8_t> has_net(n_slots, 0);
    for (const Slot s : t.slot_of_net_) {
      if (s != kNullSlot) has_net[s] = 1;
    }
    std::vector<std::uint8_t> written(n_slots, 0);
    for (const Instr& it : t.instrs_) {
      written[it.out] = 1;
      if (it.out2 != kNullSlot) written[it.out2] = 1;
    }

    // Sources keep their relative order up front; instruction outputs follow
    // in evaluation order so the eval loop's writes stream forward.
    std::vector<Slot> remap(n_slots, kNullSlot);
    std::vector<NetId> new_net_of;
    std::vector<std::uint64_t> new_image;
    const auto place = [&](Slot old) {
      if (remap[old] != kNullSlot) return;
      remap[old] = static_cast<Slot>(new_net_of.size());
      new_net_of.push_back(t.net_of_slot_[old]);
      new_image.push_back(t.const_image_[old]);
    };
    for (Slot s = 0; s < n_slots; ++s) {
      if (has_net[s] != 0 && written[s] == 0) place(s);
    }
    for (const Instr& it : t.instrs_) {
      place(it.out);
      if (it.out2 != kNullSlot) place(it.out2);
    }

    auto out = clone(t);
    OptStats st = chain_stats(t);
    out->net_of_slot_ = std::move(new_net_of);
    out->const_image_ = std::move(new_image);
    for (Slot& s : out->slot_of_net_) {
      if (s != kNullSlot) s = remap[s];
    }
    for (Instr& it : out->instrs_) {
      it.a = remap[it.a];
      it.b = remap[it.b];
      it.c = remap[it.c];
      it.out = remap[it.out];
      if (it.out2 != kNullSlot) it.out2 = remap[it.out2];
    }
    for (DffSlots& d : out->dffs_) {
      d.q = remap[d.q];
      d.d = remap[d.d];
    }
    finish(*out, OptLevel::kSafe, st, stats);
    return out;
  }
};

std::shared_ptr<const Tape> fold_constants(const Tape& t, bool fault_safe,
                                           OptStats* stats) {
  return TapeRewriter::fold(t, fault_safe, stats);
}

std::shared_ptr<const Tape> eliminate_dead(const Tape& t, OptStats* stats) {
  return TapeRewriter::dce(t, stats);
}

std::shared_ptr<const Tape> fuse_full_adders(const Tape& t, OptStats* stats) {
  return TapeRewriter::fuse(t, stats);
}

std::shared_ptr<const Tape> renumber(const Tape& t, OptStats* stats) {
  return TapeRewriter::renumber(t, stats);
}

std::shared_ptr<const Tape> optimize(const Tape& raw, OptLevel level,
                                     OptStats* stats) {
  if (level == OptLevel::kNone) {
    throw std::invalid_argument("optimize: level must be kSafe or kFull");
  }
  const auto t1 = fold_constants(raw, level == OptLevel::kSafe);
  const auto t2 = eliminate_dead(*t1);
  const auto t3 = fuse_full_adders(*t2);
  auto t4 = renumber(*t3, stats);
  return t4;
}

}  // namespace dwt::rtl::compiled::opt
