#include "rtl/compiled/exec_tier.hpp"

#include <cstdlib>

namespace dwt::rtl::compiled {

const char* to_string(ExecTier tier) {
  switch (tier) {
    case ExecTier::kAuto:
      return "auto";
    case ExecTier::kSwitch:
      return "interpreter";
    case ExecTier::kThreaded:
      return "threaded";
    case ExecTier::kNative:
      return "native";
  }
  return "?";
}

bool parse_exec_tier(const std::string& text, ExecTier* out) {
  if (text == "auto") {
    *out = ExecTier::kAuto;
  } else if (text == "interpreter" || text == "switch") {
    *out = ExecTier::kSwitch;
  } else if (text == "threaded") {
    *out = ExecTier::kThreaded;
  } else if (text == "native") {
    *out = ExecTier::kNative;
  } else {
    return false;
  }
  return true;
}

bool native_supported(unsigned words) {
#if defined(__x86_64__) || defined(_M_X64)
  if (words == 1) return true;
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  (void)words;
  return false;
#endif
#else
  (void)words;
  return false;
#endif
}

ExecTier resolve_exec_tier(ExecTier requested, unsigned words) {
  // The environment override wins over every programmatic request: it is
  // the operational kill-switch (disable the JIT fleet-wide) and the CI
  // lever that forces the portable tier through full workloads.
  if (const char* env = std::getenv("DWT_EXEC_TIER")) {
    ExecTier from_env = ExecTier::kAuto;
    if (parse_exec_tier(env, &from_env) && from_env != ExecTier::kAuto) {
      requested = from_env;
    }
  }
  if (requested == ExecTier::kAuto) {
    requested =
        native_supported(words) ? ExecTier::kNative : ExecTier::kThreaded;
  }
  if (requested == ExecTier::kNative && !native_supported(words)) {
    return ExecTier::kThreaded;
  }
  return requested;
}

}  // namespace dwt::rtl::compiled
