// Straight-line native code for a compiled tape.
//
// NativeBlock::build() lowers every instruction of a levelized Tape into a
// flat run of x86-64 machine code operating directly on the WideSimulator's
// slot-major state array (W lane words per slot, the same layout the
// interpreter walks): 64-bit scalar ALU code for W=1, VEX-encoded 128/256-
// bit AVX integer code for W=2/4.  There is no dispatch, no loop and no
// per-instruction call -- the whole settle pass is one function call into
// an mmap'd executable buffer:
//
//     void fn(std::uint64_t* state);   // SysV: state pointer in rdi
//
// The emitted code computes exactly the same word-wise boolean functions as
// WideSimulator::exec<false>, so outputs are byte-identical by
// construction.  Fault overlays (forced lanes) and cone-restricted partial
// ranges are NOT handled here; WideSimulator only enters the native block
// for full-range unforced evals and drops to the threaded interpreter
// otherwise.
//
// A second entry point, run_edge(), lowers the clock edge: the portable
// engine's two-phase DFF copy (d -> scratch, scratch -> q) is replaced by a
// single dependency-ordered pass of direct q <- d moves.  A register whose
// d input is another register's q (shift registers, line buffers) is copied
// before that upstream register overwrites its q, which reproduces the
// simultaneous-edge semantics exactly; only registers on a copy *cycle*
// (q's feeding each other's d's in a loop -- not constructible through the
// netlist builder, handled anyway) fall back to a scratch round-trip.  On
// DFF-heavy designs the edge, not the settle, is the step() bottleneck, so
// the native tier lowers both.
//
// build() returns nullptr when the host cannot run the code (non-x86-64,
// missing AVX2 for W>1, W^X mapping refused by the kernel, or a tape too
// large for disp32 addressing) -- callers fall back to the portable tiers.
// Blocks are immutable after construction and safe to share across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "rtl/compiled/tape.hpp"

namespace dwt::rtl::compiled {

class NativeBlock {
 public:
  NativeBlock(const NativeBlock&) = delete;
  NativeBlock& operator=(const NativeBlock&) = delete;
  ~NativeBlock();

  /// Emits the code for `tape` at `words` lane words per slot.  Returns
  /// nullptr when the host or tape is unsupported (see header note).
  [[nodiscard]] static std::shared_ptr<const NativeBlock> build(
      const Tape& tape, unsigned words);

  /// One full settle pass: evaluates every tape instruction in order over
  /// the slot-major state array.  `state` must hold slot_count() * words()
  /// words, laid out exactly as WideSimulator<W>::state_.
  void run(std::uint64_t* state) const { fn_(state); }

  /// One clock edge: q <- d for every tape DFF, with simultaneous-edge
  /// semantics (see header note).  `scratch` must hold at least
  /// dff_count * words() words; it is only touched for registers on a copy
  /// cycle, so callers pass the simulator's existing DFF scratch buffer.
  void run_edge(std::uint64_t* state, std::uint64_t* scratch) const {
    edge_fn_(state, scratch);
  }

  [[nodiscard]] unsigned words() const { return words_; }
  /// Bytes of machine code emitted (excluding mapping round-up) -- a
  /// deterministic function of (tape, words), reported by the bench.
  [[nodiscard]] std::size_t code_size() const { return code_size_; }
  [[nodiscard]] std::size_t instr_count() const { return instr_count_; }

 private:
  using Fn = void (*)(std::uint64_t*);
  using EdgeFn = void (*)(std::uint64_t*, std::uint64_t*);

  NativeBlock(void* map, std::size_t map_size, std::size_t code_size,
              std::size_t edge_offset, unsigned words, std::size_t instr_count)
      : map_(map),
        map_size_(map_size),
        code_size_(code_size),
        words_(words),
        instr_count_(instr_count),
        fn_(reinterpret_cast<Fn>(map)),
        edge_fn_(reinterpret_cast<EdgeFn>(static_cast<std::uint8_t*>(map) +
                                          edge_offset)) {}

  void* map_;
  std::size_t map_size_;
  std::size_t code_size_;
  unsigned words_;
  std::size_t instr_count_;
  Fn fn_;
  EdgeFn edge_fn_;
};

}  // namespace dwt::rtl::compiled
