#include "rtl/compiled/native_block.hpp"

#include <algorithm>

#include <cstring>
#include <unordered_map>
#include <vector>

#include "rtl/compiled/exec_tier.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define DWT_NATIVE_X86_64 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define DWT_NATIVE_X86_64 0
#endif

namespace dwt::rtl::compiled {

#if DWT_NATIVE_X86_64

namespace {

/// Little-endian byte sink with the handful of x86-64 encodings the tape
/// ISA needs.  All memory operands are [rdi + disp32] (rdi = state pointer,
/// SysV first argument); all register operands are in the low eight
/// registers so every VEX prefix stays in the 2-byte C5 form.
class Emitter {
 public:
  explicit Emitter(unsigned words) : words_(words) {}

  [[nodiscard]] const std::vector<std::uint8_t>& code() const { return code_; }

  // Memory operand bases: rdi = state array, rsi = edge scratch buffer.
  static constexpr unsigned kState = 7;    // rdi, SysV arg 1
  static constexpr unsigned kScratch = 6;  // rsi, SysV arg 2

  // -- scalar (W=1): rax=0 rcx=1 rdx=2 rsi=6 scratch ----------------------
  void mov_load(unsigned reg, std::uint32_t slot, unsigned base = kState) {
    mem_op(0x8B, reg, slot, base);
  }
  void mov_store(unsigned reg, std::uint32_t slot, unsigned base = kState) {
    mem_op(0x89, reg, slot, base);
  }
  void and_mem(unsigned reg, std::uint32_t slot) { mem_op(0x23, reg, slot); }
  void or_mem(unsigned reg, std::uint32_t slot) { mem_op(0x0B, reg, slot); }
  void xor_mem(unsigned reg, std::uint32_t slot) { mem_op(0x33, reg, slot); }
  void not_reg(unsigned reg) {
    u8(0x48);
    u8(0xF7);
    u8(0xD0 | reg);  // /2
  }
  void mov_rr(unsigned dst, unsigned src) { rr_op(0x89, dst, src); }
  void and_rr(unsigned dst, unsigned src) { rr_op(0x21, dst, src); }
  void or_rr(unsigned dst, unsigned src) { rr_op(0x09, dst, src); }
  void xor_rr(unsigned dst, unsigned src) { rr_op(0x31, dst, src); }

  // -- VEX (W=2 -> xmm / L=0, W=4 -> ymm / L=1): regs 0..3 scratch, 7 = ~0
  void v_load(unsigned reg, std::uint32_t slot, unsigned base = kState) {
    vex(2, 0);
    u8(0x6F);
    mem_modrm(reg, slot, base);
  }
  void v_store(unsigned reg, std::uint32_t slot, unsigned base = kState) {
    vex(2, 0);
    u8(0x7F);
    mem_modrm(reg, slot, base);
  }
  void vpand_mem(unsigned dst, unsigned src1, std::uint32_t slot) {
    vex(1, src1);
    u8(0xDB);
    mem_modrm(dst, slot);
  }
  void vpandn_mem(unsigned dst, unsigned src1, std::uint32_t slot) {
    vex(1, src1);
    u8(0xDF);
    mem_modrm(dst, slot);
  }
  void vpor_mem(unsigned dst, unsigned src1, std::uint32_t slot) {
    vex(1, src1);
    u8(0xEB);
    mem_modrm(dst, slot);
  }
  void vpxor_mem(unsigned dst, unsigned src1, std::uint32_t slot) {
    vex(1, src1);
    u8(0xEF);
    mem_modrm(dst, slot);
  }
  void vpor_rr(unsigned dst, unsigned src1, unsigned src2) {
    vex(1, src1);
    u8(0xEB);
    u8(0xC0 | (dst << 3) | src2);
  }
  void vpand_rr(unsigned dst, unsigned src1, unsigned src2) {
    vex(1, src1);
    u8(0xDB);
    u8(0xC0 | (dst << 3) | src2);
  }
  void vpandn_rr(unsigned dst, unsigned src1, unsigned src2) {
    vex(1, src1);
    u8(0xDF);
    u8(0xC0 | (dst << 3) | src2);
  }
  void vpxor_rr(unsigned dst, unsigned src1, unsigned src2) {
    vex(1, src1);
    u8(0xEF);
    u8(0xC0 | (dst << 3) | src2);
  }
  void v_mov_rr(unsigned dst, unsigned src) {  // rename-eliminated on use
    vex(2, 0);
    u8(0x6F);
    u8(0xC0 | (dst << 3) | src);
  }
  void vpcmpeqd_self(unsigned reg) {  // reg = all-ones
    vex(1, reg);
    u8(0x76);
    u8(0xC0 | (reg << 3) | reg);
  }
  void vzeroupper() {
    u8(0xC5);
    u8(0xF8);
    u8(0x77);
  }
  void ret() { u8(0xC3); }

 private:
  void u8(std::uint8_t b) { code_.push_back(b); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  /// REX.W <op> [base + slot*words*8] with a disp32 (mod=10; rdi and rsi
  /// both encode without a SIB byte).
  void mem_op(std::uint8_t op, unsigned reg, std::uint32_t slot,
              unsigned base = kState) {
    u8(0x48);
    u8(op);
    mem_modrm(reg, slot, base);
  }
  void mem_modrm(unsigned reg, std::uint32_t slot, unsigned base = kState) {
    u8(0x80 | (reg << 3) | base);
    u32(slot * words_ * 8u);
  }
  void rr_op(std::uint8_t op, unsigned dst, unsigned src) {
    u8(0x48);
    u8(op);
    u8(0xC0 | (src << 3) | dst);
  }
  /// 2-byte VEX prefix: pp selects the mandatory prefix (1 = 66 for the
  /// integer ops, 2 = F3 for vmovdqu); vvvv is the first source register
  /// (pass 0 when the op takes none -- reg 0 one's-complements to the
  /// required 1111 field).  L comes from the lane width.
  void vex(unsigned pp, unsigned vvvv) {
    u8(0xC5);
    u8(0x80 | ((~vvvv & 0xFu) << 3) | (words_ == 4 ? 4 : 0) | pp);
  }

  unsigned words_;
  std::vector<std::uint8_t> code_;
};

void emit_scalar(Emitter& e, const Instr& it) {
  // rax = result accumulator, rcx/rdx/rsi = scratch.
  switch (it.op) {
    case Op::kNot:
      e.mov_load(0, it.a);
      e.not_reg(0);
      break;
    case Op::kAnd:
      e.mov_load(0, it.a);
      e.and_mem(0, it.b);
      break;
    case Op::kOr:
      e.mov_load(0, it.a);
      e.or_mem(0, it.b);
      break;
    case Op::kXor:
      e.mov_load(0, it.a);
      e.xor_mem(0, it.b);
      break;
    case Op::kMux:  // (c & b) | (~c & a)
      e.mov_load(0, it.c);
      e.mov_rr(1, 0);
      e.and_mem(0, it.b);
      e.not_reg(1);
      e.and_mem(1, it.a);
      e.or_rr(0, 1);
      break;
    case Op::kAddSum:  // a ^ b ^ c
      e.mov_load(0, it.a);
      e.xor_mem(0, it.b);
      e.xor_mem(0, it.c);
      break;
    case Op::kAddCarry:  // (a & b) | (c & (a ^ b))
      e.mov_load(0, it.a);
      e.mov_rr(1, 0);
      e.xor_mem(0, it.b);
      e.and_mem(0, it.c);
      e.and_mem(1, it.b);
      e.or_rr(0, 1);
      break;
    case Op::kFullAdd: {  // out = a^b^c, out2 = (a&b) | (c & (a^b))
      e.mov_load(0, it.a);
      e.mov_load(1, it.b);
      e.mov_load(2, it.c);
      e.mov_rr(6, 0);   // rsi = a
      e.xor_rr(6, 1);   // rsi = a ^ b
      e.and_rr(0, 1);   // rax = a & b
      e.mov_rr(1, 6);   // rcx = a ^ b
      e.xor_rr(1, 2);   // rcx = sum
      e.and_rr(6, 2);   // rsi = (a ^ b) & c
      e.or_rr(0, 6);    // rax = carry
      e.mov_store(1, it.out);
      e.mov_store(0, it.out2);
      return;
    }
  }
  e.mov_store(0, it.out);
}

/// Which slots' values are live in v0/v2 after the previous instruction.
/// Every result is still stored to memory, so forwarding is purely a
/// latency optimization: a levelized tape chains producer to consumer on
/// adjacent instructions constantly, and serving the operand from a
/// register breaks the store -> reload dependency (4-7 cycles per link)
/// that otherwise paces the whole straight-line block.
struct VexForward {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::uint32_t in_v0 = kNone;
  std::uint32_t in_v2 = kNone;
};

void emit_vex(Emitter& e, const Instr& it, VexForward* fwd) {
  // v0 = result accumulator, v1/v2 = scratch, v3 = forwarded operand,
  // v7 = all-ones (prologue).
  //
  // `take` copies a forwarded operand into v3 (the copy is eliminated at
  // register rename) before v0/v2 are clobbered; at most one operand per
  // instruction is forwarded, the rest load from memory as before.
  const auto take = [&](std::uint32_t slot) -> bool {
    if (slot == fwd->in_v0) {
      e.v_mov_rr(3, 0);
      return true;
    }
    if (slot == fwd->in_v2) {
      e.v_mov_rr(3, 2);
      return true;
    }
    return false;
  };
  switch (it.op) {
    case Op::kNot:
      if (take(it.a)) {
        e.vpxor_rr(0, 7, 3);
      } else {
        e.vpxor_mem(0, 7, it.a);
      }
      break;
    case Op::kAnd:
      if (take(it.a)) {
        e.vpand_mem(0, 3, it.b);
      } else if (take(it.b)) {
        e.vpand_mem(0, 3, it.a);
      } else {
        e.v_load(0, it.a);
        e.vpand_mem(0, 0, it.b);
      }
      break;
    case Op::kOr:
      if (take(it.a)) {
        e.vpor_mem(0, 3, it.b);
      } else if (take(it.b)) {
        e.vpor_mem(0, 3, it.a);
      } else {
        e.v_load(0, it.a);
        e.vpor_mem(0, 0, it.b);
      }
      break;
    case Op::kXor:
      if (take(it.a)) {
        e.vpxor_mem(0, 3, it.b);
      } else if (take(it.b)) {
        e.vpxor_mem(0, 3, it.a);
      } else {
        e.v_load(0, it.a);
        e.vpxor_mem(0, 0, it.b);
      }
      break;
    case Op::kMux:  // (c & b) | (~c & a)
      if (take(it.c)) {
        e.vpand_mem(0, 3, it.b);
        e.vpandn_mem(2, 3, it.a);
        e.vpor_rr(0, 0, 2);
      } else if (take(it.b)) {
        e.v_load(1, it.c);
        e.vpand_rr(0, 1, 3);
        e.vpandn_mem(2, 1, it.a);
        e.vpor_rr(0, 0, 2);
      } else if (take(it.a)) {
        e.v_load(1, it.c);
        e.vpand_mem(0, 1, it.b);
        e.vpandn_rr(2, 1, 3);
        e.vpor_rr(0, 0, 2);
      } else {
        e.v_load(1, it.c);
        e.vpand_mem(0, 1, it.b);
        e.vpandn_mem(2, 1, it.a);
        e.vpor_rr(0, 0, 2);
      }
      break;
    case Op::kAddSum: {  // a ^ b ^ c, fully commutative
      std::uint32_t x = it.b;
      std::uint32_t y = it.c;
      if (take(it.a)) {
        e.vpxor_mem(0, 3, x);
      } else if (take(it.b)) {
        x = it.a;
        e.vpxor_mem(0, 3, x);
      } else if (take(it.c)) {
        x = it.a;
        y = it.b;
        e.vpxor_mem(0, 3, x);
      } else {
        e.v_load(0, it.a);
        e.vpxor_mem(0, 0, x);
      }
      e.vpxor_mem(0, 0, y);
      break;
    }
    case Op::kAddCarry: {  // (a & b) | (c & (a ^ b)), a <-> b symmetric
      const std::uint32_t other = take(it.a)   ? it.b
                                  : take(it.b) ? it.a
                                               : VexForward::kNone;
      if (other != VexForward::kNone) {
        e.vpxor_mem(0, 3, other);  // v0 = a ^ b
        e.vpand_mem(0, 0, it.c);   // v0 = (a ^ b) & c
        e.vpand_mem(1, 3, other);  // v1 = a & b
        e.vpor_rr(0, 0, 1);
      } else if (take(it.c)) {
        e.v_load(1, it.a);
        e.vpxor_mem(0, 1, it.b);   // v0 = a ^ b
        e.vpand_rr(0, 0, 3);       // v0 = (a ^ b) & c
        e.vpand_mem(1, 1, it.b);   // v1 = a & b
        e.vpor_rr(0, 0, 1);
      } else {
        e.v_load(1, it.a);
        e.vpxor_mem(0, 1, it.b);   // v0 = a ^ b
        e.vpand_mem(0, 0, it.c);   // v0 = (a ^ b) & c
        e.vpand_mem(1, 1, it.b);   // v1 = a & b
        e.vpor_rr(0, 0, 1);
      }
      break;
    }
    case Op::kFullAdd: {  // out = a^b^c, out2 = (a&b) | (c & (a^b))
      const std::uint32_t other = take(it.a)   ? it.b
                                  : take(it.b) ? it.a
                                               : VexForward::kNone;
      if (other != VexForward::kNone) {
        e.vpxor_mem(0, 3, other);  // v0 = a ^ b
        e.vpand_mem(1, 3, other);  // v1 = a & b
        e.vpxor_mem(2, 0, it.c);   // v2 = sum
        e.vpand_mem(0, 0, it.c);   // v0 = (a ^ b) & c
        e.vpor_rr(0, 0, 1);        // v0 = carry
      } else if (take(it.c)) {
        // Ripple-carry chains land here: c is the previous bit's carry.
        e.v_load(1, it.a);
        e.vpxor_mem(0, 1, it.b);   // v0 = a ^ b
        e.vpand_mem(1, 1, it.b);   // v1 = a & b
        e.vpxor_rr(2, 0, 3);       // v2 = sum
        e.vpand_rr(0, 0, 3);       // v0 = (a ^ b) & c
        e.vpor_rr(0, 0, 1);        // v0 = carry
      } else {
        e.v_load(1, it.a);
        e.vpxor_mem(0, 1, it.b);   // v0 = a ^ b
        e.vpand_mem(1, 1, it.b);   // v1 = a & b
        e.vpxor_mem(2, 0, it.c);   // v2 = sum
        e.vpand_mem(0, 0, it.c);   // v0 = (a ^ b) & c
        e.vpor_rr(0, 0, 1);        // v0 = carry
      }
      e.v_store(2, it.out);
      e.v_store(0, it.out2);
      fwd->in_v0 = it.out2;
      fwd->in_v2 = it.out;
      return;
    }
  }
  e.v_store(0, it.out);
  fwd->in_v0 = it.out;
  fwd->in_v2 = VexForward::kNone;
}

/// Copy schedule for the clock edge: `direct` lists DFF indices in an order
/// where every register is copied before the register feeding its d input
/// overwrites that q -- so single-pass q <- d moves reproduce the
/// simultaneous edge.  Registers on a copy cycle (mutually feeding q/d
/// loops) end up in `ring` and take the scratch round-trip.  Self-loops
/// (d == q) are dropped entirely: their copy is a no-op.
struct EdgePlan {
  std::vector<std::uint32_t> direct;
  std::vector<std::uint32_t> ring;
};

EdgePlan plan_edge(const std::vector<DffSlots>& dffs) {
  EdgePlan plan;
  const std::size_t n = dffs.size();
  // q slot -> dff index, for resolving d inputs that are register outputs.
  std::vector<std::int64_t> succ(n, -1);  // i must be copied before succ[i]
  std::vector<std::uint32_t> indeg(n, 0);
  {
    std::unordered_map<Slot, std::uint32_t> qowner;
    qowner.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) qowner.emplace(dffs[i].q, i);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto it = qowner.find(dffs[i].d);
      if (it != qowner.end() && it->second != i) {
        succ[i] = it->second;
        ++indeg[it->second];
      }
    }
  }
  // Kahn with a min-heap on the d slot: among registers whose copy is
  // unconstrained, emit in ascending source order so the edge function
  // reads the state array as a forward stream the prefetcher can follow
  // (the big pipelined designs have 1000+ DFFs and an L2-resident state).
  const auto later = [&dffs](std::uint32_t lhs, std::uint32_t rhs) {
    return dffs[lhs].d > dffs[rhs].d;
  };
  std::vector<std::uint32_t> queue;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) queue.push_back(i);
  }
  std::make_heap(queue.begin(), queue.end(), later);
  std::vector<std::uint8_t> placed(n, 0);
  while (!queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), later);
    const std::uint32_t i = queue.back();
    queue.pop_back();
    placed[i] = 1;
    if (dffs[i].d != dffs[i].q) plan.direct.push_back(i);
    if (succ[i] >= 0 && --indeg[static_cast<std::size_t>(succ[i])] == 0) {
      queue.push_back(static_cast<std::uint32_t>(succ[i]));
      std::push_heap(queue.begin(), queue.end(), later);
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!placed[i] && dffs[i].d != dffs[i].q) plan.ring.push_back(i);
  }
  return plan;
}

/// The clock-edge function: ordered direct copies, then the scratch
/// round-trip for ring registers.  Uses only rax / v0, so the scratch base
/// register (rsi) stays live throughout.
void emit_edge(Emitter& e, const std::vector<DffSlots>& dffs, unsigned words) {
  const EdgePlan plan = plan_edge(dffs);
  for (const std::uint32_t i : plan.direct) {
    if (words == 1) {
      e.mov_load(0, dffs[i].d);
      e.mov_store(0, dffs[i].q);
    } else {
      e.v_load(0, dffs[i].d);
      e.v_store(0, dffs[i].q);
    }
  }
  for (std::uint32_t k = 0; k < plan.ring.size(); ++k) {
    if (words == 1) {
      e.mov_load(0, dffs[plan.ring[k]].d);
      e.mov_store(0, k, Emitter::kScratch);
    } else {
      e.v_load(0, dffs[plan.ring[k]].d);
      e.v_store(0, k, Emitter::kScratch);
    }
  }
  for (std::uint32_t k = 0; k < plan.ring.size(); ++k) {
    if (words == 1) {
      e.mov_load(0, k, Emitter::kScratch);
      e.mov_store(0, dffs[plan.ring[k]].q);
    } else {
      e.v_load(0, k, Emitter::kScratch);
      e.v_store(0, dffs[plan.ring[k]].q);
    }
  }
  if (words == 4) e.vzeroupper();
  e.ret();
}

}  // namespace

std::shared_ptr<const NativeBlock> NativeBlock::build(const Tape& tape,
                                                      unsigned words) {
  if ((words != 1 && words != 2 && words != 4) || !native_supported(words)) {
    return nullptr;
  }
  // Every slot must be addressable as [rdi + disp32].
  const std::uint64_t span =
      static_cast<std::uint64_t>(tape.slot_count()) * words * 8;
  if (span > 0x7FFFFFFFull) return nullptr;

  Emitter e(words);
  if (words != 1) e.vpcmpeqd_self(7);
  VexForward fwd;
  for (const Instr& it : tape.instrs()) {
    if (words == 1) {
      emit_scalar(e, it);
    } else {
      emit_vex(e, it, &fwd);
    }
  }
  if (words == 4) e.vzeroupper();
  e.ret();
  const std::size_t edge_offset = e.code().size();
  emit_edge(e, tape.dffs(), words);

  const std::size_t code_size = e.code().size();
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_size = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t map_size =
      (code_size + page_size - 1) / page_size * page_size;
  void* map = ::mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) return nullptr;
  std::memcpy(map, e.code().data(), code_size);
  // W^X: the buffer is never writable and executable at once.
  if (::mprotect(map, map_size, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(map, map_size);
    return nullptr;
  }
  return std::shared_ptr<const NativeBlock>(new NativeBlock(
      map, map_size, code_size, edge_offset, words, tape.instrs().size()));
}

NativeBlock::~NativeBlock() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

#else  // !DWT_NATIVE_X86_64

std::shared_ptr<const NativeBlock> NativeBlock::build(const Tape&, unsigned) {
  return nullptr;
}

NativeBlock::~NativeBlock() = default;

#endif

}  // namespace dwt::rtl::compiled
