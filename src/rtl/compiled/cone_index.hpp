// Fan-out cone index over a compiled tape, and the golden state trace that
// cone-restricted fault trials replay against.
//
// A fault pins or flips exactly one net, so the only tape instructions a
// trial can compute differently from the fault-free run are those in the
// net's transitive fan-out cone -- transitive across clock edges too, since
// a corrupted DFF D propagates through its Q into the next cycle's logic.
// Because the tape is levelized (writers precede readers), that cone is
// covered by one contiguous *interval* of instruction indices, and the
// ConeIndex precomputes that interval for every slot: a cone-restricted
// simulator executes only tape[lo, hi) per cycle and takes every value
// outside the interval from the golden trace, instead of re-running the
// whole tape per trial.
//
// The index is immutable after build() and carries no pointers back into
// the tape, so one index can be shared (via shared_ptr<const ConeIndex>)
// by every batch session of a campaign; the ArtifactCache memoizes it
// beside the tape it was built from.
//
// GoldenTrace records the fault-free run the cone slices replay against:
// one packed bit per (cycle, slot), sampled after each settle.  A clean
// batch run is uniform across lanes (same stimulus, no overlays), so one
// bit per slot loses nothing, and a cone session broadcasts the bit back
// to a full lane block when refreshing an out-of-cone slot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/compiled/tape.hpp"

namespace dwt::rtl::compiled {

/// Closed-open interval of tape instruction indices.  Empty (lo == hi) for
/// slots nothing reads -- a fault there can never reach an output.
struct ConeSpan {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  [[nodiscard]] std::uint32_t length() const { return hi - lo; }
  [[nodiscard]] bool empty() const { return lo == hi; }
};

class ConeIndex {
 public:
  /// Builds the per-slot fan-out intervals of `tape` by fixpoint iteration:
  /// a reverse sweep folds every instruction's own interval into its input
  /// slots (complete for one cycle, since readers are processed before the
  /// writers that feed them), and a DFF pass folds each Q interval into its
  /// D slot to carry the cone across clock edges; sweeps repeat until no
  /// interval grows.  Feed-forward pipelines converge in a couple of
  /// sweeps.
  [[nodiscard]] static std::shared_ptr<const ConeIndex> build(const Tape& tape);

  /// Fan-out interval of a slot.
  [[nodiscard]] const ConeSpan& span(Slot s) const { return spans_.at(s); }

  /// Fan-out interval of a net on the indexed tape; empty for nets the
  /// optimizer eliminated (forcing them is a no-op, so their cone is too).
  [[nodiscard]] ConeSpan span_of_net(const Tape& tape, NetId net) const {
    const Slot s = tape.slot_of(net);
    return s == kNullSlot ? ConeSpan{} : spans_.at(s);
  }

  /// D slot of a DFF-output slot, kNullSlot for every other slot.  The
  /// post-edge golden value of a Q slot at cycle c is the post-settle trace
  /// of its D slot at c, which is how cone sessions read golden Q values.
  [[nodiscard]] Slot d_of_q(Slot q) const { return d_of_q_.at(q); }

  [[nodiscard]] std::size_t slot_count() const { return spans_.size(); }
  /// Instruction count of the indexed tape (the denominator of every cone
  /// fraction).
  [[nodiscard]] std::size_t instr_count() const { return instr_count_; }

  /// Mean span length over all non-empty slots -- the headline "how much of
  /// the tape does an average fault touch" statistic.
  [[nodiscard]] double mean_span_fraction() const;

 private:
  ConeIndex() = default;

  std::vector<ConeSpan> spans_;  // per slot
  std::vector<Slot> d_of_q_;     // per slot, kNullSlot when not a DFF Q
  std::size_t instr_count_ = 0;
};

/// Packed fault-free state trace: one bit per (cycle, slot), sampled after
/// each settle (post-eval, pre-edge).  Recorded once per campaign on the
/// clean reference run and shared read-only by every cone session.
class GoldenTrace {
 public:
  explicit GoldenTrace(std::size_t slot_count)
      : slot_count_(slot_count), words_per_cycle_((slot_count + 63) / 64) {}

  /// Appends the post-settle state of `sim` as the trace of its current
  /// cycle.  Lane 0 stands for all lanes: a clean run drives every lane
  /// identically, so slot words are uniform 0 / ~0.
  template <typename Sim>
  void append(const Sim& sim) {
    const std::size_t base = bits_.size();
    bits_.resize(base + words_per_cycle_, 0);
    for (std::size_t s = 0; s < slot_count_; ++s) {
      if (sim.slot_word(static_cast<Slot>(s), 0) & 1) {
        bits_[base + s / 64] |= std::uint64_t{1} << (s % 64);
      }
    }
    ++cycles_;
  }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::size_t slot_count() const { return slot_count_; }

  [[nodiscard]] bool get(std::uint64_t cycle, Slot s) const {
    const std::size_t at = cycle * words_per_cycle_ + s / 64;
    return ((bits_[at] >> (s % 64)) & 1) != 0;
  }
  /// The slot's golden bit widened to a full lane word (0 or ~0).
  [[nodiscard]] std::uint64_t broadcast(std::uint64_t cycle, Slot s) const {
    return get(cycle, s) ? ~std::uint64_t{0} : 0;
  }

  /// Bytes a trace of `cycles` cycles over `slot_count` slots would occupy;
  /// campaigns use it to fall back to full-tape execution rather than
  /// record an unbounded trace for huge sample counts.
  [[nodiscard]] static std::uint64_t bytes_needed(std::uint64_t cycles,
                                                  std::size_t slot_count) {
    return cycles * ((slot_count + 63) / 64) * 8;
  }

 private:
  std::size_t slot_count_;
  std::size_t words_per_cycle_;
  std::uint64_t cycles_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace dwt::rtl::compiled
