// One-time netlist compiler for the bit-parallel simulation engine.
//
// compile() topologically levelizes a Netlist into a flat instruction tape:
// every net is assigned a dense *slot* (constants, then primary inputs, then
// DFF outputs, then combinational outputs in evaluation order), and every
// combinational cell becomes one fixed-width instruction over those slots.
// A CompiledSimulator evaluates the tape once per clock cycle with 64
// independent test vectors packed into one std::uint64_t per slot, so a
// single linear pass over the tape simulates 64 vectors -- the classic
// bit-parallel (PPSFP-style) speedup over the scalar rtl::Simulator.
//
// The tape is immutable after compile() and carries no pointers back into
// the source Netlist, so one compiled tape can be shared (via
// std::shared_ptr<const Tape>) by many simulator instances across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/netlist.hpp"

namespace dwt::rtl::compiled {

using Slot = std::uint32_t;
inline constexpr Slot kNullSlot = 0xFFFFFFFFu;

/// Tape opcodes: the combinational subset of CellKind.  Constants are not
/// instructions -- their slots are pre-filled at reset and never rewritten.
enum class Op : std::uint8_t {
  kNot,       ///< out = ~a
  kAnd,       ///< out = a & b
  kOr,        ///< out = a | b
  kXor,       ///< out = a ^ b
  kMux,       ///< out = (c & b) | (~c & a)
  kAddSum,    ///< out = a ^ b ^ c
  kAddCarry,  ///< out = (a & b) | (c & (a ^ b))
};

struct Instr {
  Slot a = kNullSlot;
  Slot b = kNullSlot;
  Slot c = kNullSlot;
  Slot out = kNullSlot;
  Op op = Op::kNot;
};

/// (Q, D) slot pair of one flip-flop, in cell-creation order.
struct DffSlots {
  Slot q = kNullSlot;
  Slot d = kNullSlot;
};

class Tape {
 public:
  [[nodiscard]] std::size_t slot_count() const { return net_of_slot_.size(); }
  [[nodiscard]] std::size_t net_count() const { return slot_of_net_.size(); }
  [[nodiscard]] const std::vector<Instr>& instrs() const { return instrs_; }
  [[nodiscard]] const std::vector<DffSlots>& dffs() const { return dffs_; }

  [[nodiscard]] Slot slot_of(NetId net) const { return slot_of_net_.at(net); }
  [[nodiscard]] NetId net_of(Slot slot) const { return net_of_slot_.at(slot); }

  [[nodiscard]] bool is_primary_input(NetId net) const {
    return pi_flag_.at(net) != 0;
  }
  [[nodiscard]] bool is_dff_output(NetId net) const {
    return dff_q_flag_.at(net) != 0;
  }

  /// Slots holding constant 1 (kConst1 cells); pre-set to all-ones lanes.
  [[nodiscard]] const std::vector<Slot>& const1_slots() const {
    return const1_slots_;
  }

  /// Longest combinational path in instructions (levelization depth).
  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  friend std::shared_ptr<const Tape> compile(const Netlist& nl);

  std::vector<Instr> instrs_;
  std::vector<DffSlots> dffs_;
  std::vector<Slot> slot_of_net_;       // NetId -> slot
  std::vector<NetId> net_of_slot_;      // slot -> NetId
  std::vector<std::uint8_t> pi_flag_;   // per NetId
  std::vector<std::uint8_t> dff_q_flag_;  // per NetId
  std::vector<Slot> const1_slots_;
  std::size_t depth_ = 0;
};

/// Levelizes `nl` into a tape.  Instruction order follows
/// Netlist::topo_order(), so evaluation is dependency-safe; output slots are
/// assigned in that same order, making the inner loop's writes sequential.
[[nodiscard]] std::shared_ptr<const Tape> compile(const Netlist& nl);

}  // namespace dwt::rtl::compiled
