// One-time netlist compiler for the bit-parallel simulation engine.
//
// compile() topologically levelizes a Netlist into a flat instruction tape:
// every net is assigned a dense *slot* (constants, then primary inputs, then
// DFF outputs, then combinational outputs in evaluation order), and every
// combinational cell becomes one fixed-width instruction over those slots.
// A simulator evaluates the tape once per clock cycle with 64*W independent
// test vectors packed into one lane block per slot, so a single linear pass
// over the tape simulates a whole batch -- the classic bit-parallel
// (PPSFP-style) speedup over the scalar rtl::Simulator.
//
// A raw tape mirrors the netlist one instruction per combinational cell.
// The optimizer passes in rtl/compiled/opt rewrite tapes (constant folding,
// dead-slot elimination, full-adder fusion, slot renumbering); an optimized
// tape computes bit-identical values on every *materialized* net with fewer
// instructions.  Tape::level()/opt_stats() record what was applied.
//
// The tape is immutable after compile()/optimize() and carries no pointers
// back into the source Netlist, so one compiled tape can be shared (via
// std::shared_ptr<const Tape>) by many simulator instances across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/netlist.hpp"

namespace dwt::rtl::compiled {

namespace opt {
class TapeRewriter;
}  // namespace opt

using Slot = std::uint32_t;
inline constexpr Slot kNullSlot = 0xFFFFFFFFu;

/// Tape opcodes: the combinational subset of CellKind plus the fused
/// macro-ops the optimizer emits.  Constants are not instructions -- their
/// slots are pre-filled from the tape's constant image and never rewritten.
enum class Op : std::uint8_t {
  kNot,       ///< out = ~a
  kAnd,       ///< out = a & b
  kOr,        ///< out = a | b
  kXor,       ///< out = a ^ b
  kMux,       ///< out = (c & b) | (~c & a)
  kAddSum,    ///< out = a ^ b ^ c
  kAddCarry,  ///< out = (a & b) | (c & (a ^ b))
  kFullAdd,   ///< out = a ^ b ^ c,  out2 = (a & b) | (c & (a ^ b))
};

struct Instr {
  Slot a = kNullSlot;
  Slot b = kNullSlot;
  Slot c = kNullSlot;
  Slot out = kNullSlot;
  Slot out2 = kNullSlot;  ///< second output of macro-ops (kFullAdd carry)
  Op op = Op::kNot;
};

/// (Q, D) slot pair of one flip-flop, in cell-creation order.
struct DffSlots {
  Slot q = kNullSlot;
  Slot d = kNullSlot;
};

/// How far the optimizer may rewrite a tape.
enum class OptLevel : std::uint8_t {
  kNone = 0,  ///< raw tape, one instruction per combinational cell
  /// Fault-overlay-safe passes: absorbing-constant folding (results
  /// insensitive to every forceable input), dead-slot elimination,
  /// full-adder fusion, slot renumbering.  Bit-exact against the
  /// interpreted engine even with per-lane force/SEU overlays applied.
  kSafe = 1,
  /// Adds full constant folding and copy propagation (slot aliasing).
  /// Bit-exact fault-free; force overlays on folded/aliased nets would not
  /// propagate as the netlist dictates, so fault sessions reject it.
  kFull = 2,
};

[[nodiscard]] const char* to_string(OptLevel level);

/// What the optimizer did to a tape (zeros on a raw tape).
struct OptStats {
  std::size_t instrs_before = 0;
  std::size_t instrs_after = 0;
  std::size_t slots_before = 0;
  std::size_t slots_after = 0;
  std::size_t folded = 0;        ///< instructions folded to constant slots
  std::size_t aliased = 0;       ///< nets redirected onto an existing slot
  std::size_t dead_removed = 0;  ///< dead instructions eliminated
  std::size_t fused_pairs = 0;   ///< kAddSum/kAddCarry pairs fused
};

class Tape {
 public:
  [[nodiscard]] std::size_t slot_count() const { return const_image_.size(); }
  [[nodiscard]] std::size_t net_count() const { return slot_of_net_.size(); }
  [[nodiscard]] const std::vector<Instr>& instrs() const { return instrs_; }
  [[nodiscard]] const std::vector<DffSlots>& dffs() const { return dffs_; }

  /// Slot of a net; kNullSlot when the optimizer eliminated the net (its
  /// value can no longer be observed -- possible only on optimized tapes).
  [[nodiscard]] Slot slot_of(NetId net) const { return slot_of_net_.at(net); }
  /// A net whose value the tape still carries.  On a raw tape every net is
  /// materialized; optimization may drop dead nets.
  [[nodiscard]] bool materialized(NetId net) const {
    return slot_of_net_.at(net) != kNullSlot;
  }
  /// One net holding the slot's value (aliasing can map several nets onto
  /// one slot; this returns the slot's original occupant).
  [[nodiscard]] NetId net_of(Slot slot) const { return net_of_slot_.at(slot); }

  [[nodiscard]] bool is_primary_input(NetId net) const {
    return pi_flag_.at(net) != 0;
  }
  [[nodiscard]] bool is_dff_output(NetId net) const {
    return dff_q_flag_.at(net) != 0;
  }
  [[nodiscard]] bool is_primary_output(NetId net) const {
    return po_flag_.at(net) != 0;
  }

  /// Power-on lane image, one word per slot: ~0 for constant-1 slots
  /// (kConst1 cells and instructions folded to 1), 0 everywhere else.
  /// Simulator resets are a straight copy/broadcast of this image.
  [[nodiscard]] const std::vector<std::uint64_t>& const_image() const {
    return const_image_;
  }

  /// Slots holding constant 1; pre-set to all-ones lanes (derived view of
  /// const_image(), kept for compatibility and tests).
  [[nodiscard]] std::vector<Slot> const1_slots() const;

  /// Longest combinational path in instructions (levelization depth).
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Optimization level this tape was rewritten at (kNone for raw tapes).
  [[nodiscard]] OptLevel level() const { return level_; }
  [[nodiscard]] const OptStats& opt_stats() const { return opt_stats_; }

  /// Whether per-lane force/flip overlays on arbitrary nets behave exactly
  /// as on the interpreted netlist.  True for kNone/kSafe tapes; kFull
  /// folding redirects nets, so fault sessions must refuse such tapes.
  [[nodiscard]] bool fault_overlay_safe() const {
    return level_ != OptLevel::kFull;
  }

 private:
  friend std::shared_ptr<const Tape> compile(const Netlist& nl);
  friend class opt::TapeRewriter;

  std::vector<Instr> instrs_;
  std::vector<DffSlots> dffs_;
  std::vector<Slot> slot_of_net_;       // NetId -> slot (kNullSlot = dropped)
  std::vector<NetId> net_of_slot_;      // slot -> NetId
  std::vector<std::uint8_t> pi_flag_;   // per NetId
  std::vector<std::uint8_t> dff_q_flag_;  // per NetId
  std::vector<std::uint8_t> po_flag_;   // per NetId
  std::vector<std::uint64_t> const_image_;  // per slot: 0 or ~0
  std::size_t depth_ = 0;
  OptLevel level_ = OptLevel::kNone;
  OptStats opt_stats_;
};

/// Levelizes `nl` into a raw tape.  Instruction order follows
/// Netlist::topo_order(), so evaluation is dependency-safe; output slots are
/// assigned in that same order, making the inner loop's writes sequential.
[[nodiscard]] std::shared_ptr<const Tape> compile(const Netlist& nl);

/// compile() + the optimizer pipeline at `level` (see rtl/compiled/opt).
[[nodiscard]] std::shared_ptr<const Tape> compile(const Netlist& nl,
                                                  OptLevel level);

}  // namespace dwt::rtl::compiled
