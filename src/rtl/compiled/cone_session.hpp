// Cone-restricted batched fault session: the incremental counterpart of
// WideBatchSession (batch_fault.hpp).
//
// A batch of fault trials only ever diverges from the fault-free run inside
// the union of its faults' fan-out cones (cone_index.hpp), so each cycle
// this session executes just that contiguous tape interval and takes every
// other value from the campaign's recorded GoldenTrace:
//
//   * cycles before the earliest armed fault are skipped outright -- the
//     whole state is golden, so watches and bus reads are served from the
//     trace;
//   * at activation, live DFF outputs are seeded with their golden
//     post-edge values;
//   * each active cycle, interval inputs computed outside the interval
//     (the "frontier") and glitch/stuck fault slots are refreshed from the
//     trace before the interval settles, and non-live DFF D slots before
//     the (full) clock edge, so the edge clocks golden values into
//     untouched registers;
//   * once every armed fault has struck and any remaining force overlay is
//     provably a no-op, each post-edge state is compared (live DFF outputs
//     only -- they fully determine the next cycle under the batch's
//     lane-uniform stimulus) against the golden trace; the first match
//     retires the batch, and the remaining cycles are served from the trace
//     like the pre-fault prefix.  Transient faults (SEUs, glitches) release
//     their forces and drain out of the pipeline in a handful of cycles, so
//     on long streams most of a transient batch's tail is never simulated
//     at all.  Stuck-at forces persist, but a batch can still retire once
//     the golden trace itself holds every stuck slot at its forced value
//     for the rest of the run (the "stuck tail", precomputed at prepare()):
//     from there the force pins what the circuit would compute anyway, so
//     golden live registers again imply a golden future.
//
// "Live" slots -- interval outputs, fault slots, and DFF outputs reachable
// from them through clock edges -- are the only slots whose simulator state
// is maintained; everything else is golden by construction, which is what
// makes the restriction exact rather than approximate: a cone session must
// produce bit-identical watch masks and bus reads to the full-tape session
// for every lane (tests/rtl/test_cone_sim.cpp holds it to that).
//
// The session shares the immutable ConeIndex and GoldenTrace across a
// campaign; per-session cost is the live/frontier bookkeeping, sized by the
// union interval rather than the tape.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rtl/compiled/batch_fault.hpp"
#include "rtl/compiled/cone_index.hpp"
#include "rtl/compiled/wide_simulator.hpp"
#include "rtl/fault.hpp"

namespace dwt::rtl::compiled {

template <unsigned W>
class ConeBatchSession {
 public:
  using Sim = WideSimulator<W>;
  using Block = typename Sim::Block;
  static constexpr unsigned kTotalLanes = Sim::kTotalLanes;

  ConeBatchSession(std::shared_ptr<const Tape> tape,
                   std::shared_ptr<const ConeIndex> cone,
                   std::shared_ptr<const GoldenTrace> trace)
      : sim_(std::move(tape)), cone_(std::move(cone)), trace_(std::move(trace)) {
    if (!cone_ || !trace_) {
      throw std::invalid_argument("ConeBatchSession: null cone index or trace");
    }
    if (cone_->slot_count() != sim_.tape().slot_count() ||
        cone_->instr_count() != sim_.tape().instrs().size() ||
        trace_->slot_count() != sim_.tape().slot_count()) {
      throw std::invalid_argument(
          "ConeBatchSession: cone index / trace built from a different tape");
    }
  }

  /// Schedules `f` on one lane -- same contract and validation as
  /// WideBatchSession::arm, plus: all faults must be armed before the first
  /// step(), since the union interval and live set are frozen then.
  void arm(unsigned lane, const Fault& f) {
    if (prepared_) {
      throw std::logic_error("ConeBatchSession::arm: session already stepped");
    }
    if (lane >= kTotalLanes) {
      throw std::invalid_argument("ConeBatchSession::arm: bad lane");
    }
    if (f.net >= sim_.tape().net_count()) {
      throw std::invalid_argument("ConeBatchSession::arm: net out of range");
    }
    if (f.kind == FaultKind::kSeuFlip && !sim_.tape().is_dff_output(f.net)) {
      throw std::invalid_argument(
          "ConeBatchSession::arm: SEU target is not a DFF output");
    }
    if (!sim_.tape().fault_overlay_safe()) {
      throw std::invalid_argument(
          "ConeBatchSession::arm: tape is not fault-overlay safe "
          "(compiled at OptLevel::kFull)");
    }
    faults_.push_back({lane, f});
  }

  /// Monitors a net on every lane, exactly like WideBatchSession::watch.
  /// Golden cycles contribute through the trace, so the latched mask is
  /// bit-identical to the full session's.
  void watch(NetId net) {
    if (net >= sim_.tape().net_count()) {
      throw std::invalid_argument("ConeBatchSession::watch: net out of range");
    }
    const Slot s = sim_.tape().slot_of(net);
    if (s == kNullSlot) {
      throw std::invalid_argument(
          "ConeBatchSession::watch: net was eliminated by the tape optimizer");
    }
    watched_.push_back(net);
    watched_slots_.push_back(s);
  }
  [[nodiscard]] const Block& watch_block() const { return watch_mask_; }

  // Batched streaming surface (mirrors WideBatchSession) ------------------
  void set_bus(const Bus& bus, std::int64_t value) {
    sim_.set_bus_all(bus, value);
  }

  void step() {
    if (!prepared_) prepare();
    const std::uint64_t c = cycle_;
    if (c >= trace_->cycles()) {
      throw std::logic_error(
          "ConeBatchSession::step: golden trace is shorter than the run");
    }
    if (c < first_cycle_ || c >= converged_cycle_) {
      // Entirely golden cycle: nothing in the batch has struck yet (or
      // every lane has already reconverged to the golden state), so the
      // tape is skipped and observations come straight from the trace.
      for (const Slot s : watched_slots_) {
        if (trace_->get(c, s)) watch_mask_ = Block::ones();
      }
      ++cycle_;
      ++skipped_cycles_;
      return;
    }
    if (c == first_cycle_ && c > 0) {
      // Activation: live DFF outputs hold the golden values the previous
      // edge clocked in, i.e. their D slots' post-settle trace of c-1.
      for (const Slot q : live_q_slots_) {
        sim_.broadcast_slot(q, trace_->broadcast(c - 1, cone_->d_of_q(q)));
      }
    }
    // This cycle's pins, exactly as the full session arms them.
    for (const Armed& a : faults_) {
      if (a.fault.cycle != c) continue;
      const Block bit = Block::lane_bit(a.lane);
      switch (a.fault.kind) {
        case FaultKind::kGlitch:
          sim_.force(a.fault.net, bit,
                     a.fault.glitch_value ? bit : Block::zeros());
          break;
        case FaultKind::kStuckAt0:
          sim_.force(a.fault.net, bit, Block::zeros());
          break;
        case FaultKind::kStuckAt1:
          sim_.force(a.fault.net, bit, bit);
          break;
        case FaultKind::kSeuFlip:
          break;  // struck after the edge, below
      }
    }
    // Golden refresh before the settle: frontier slots are computed by
    // instructions the interval never executes, and forced fault slots may
    // hold a stale released value when their writer lies outside the
    // interval (unforced lanes must read golden; eval re-pins the forced
    // ones).
    for (const Slot s : frontier_) {
      sim_.broadcast_slot(s, trace_->broadcast(c, s));
    }
    for (const Slot s : refresh_fault_slots_) {
      sim_.broadcast_slot(s, trace_->broadcast(c, s));
    }
    sim_.eval_range(interval_.lo, interval_.hi);
    executed_instrs_ += interval_.length();
    for (std::size_t i = 0; i < watched_.size(); ++i) {
      const Slot s = watched_slots_[i];
      if (live_[s]) {
        watch_mask_ |= sim_.block(watched_[i]);
      } else if (trace_->get(c, s)) {
        watch_mask_ = Block::ones();
      }
    }
    // The edge runs in full, so every register -- live or not -- clocks the
    // right value; non-live D slots are golden-refreshed first since the
    // interval never computed them.
    for (const Slot d : nonlive_d_slots_) {
      sim_.broadcast_slot(d, trace_->broadcast(c, d));
    }
    sim_.clock_edge();
    for (const Armed& a : faults_) {
      if (a.fault.cycle != c) continue;
      if (a.fault.kind == FaultKind::kSeuFlip) {
        sim_.flip_state(a.fault.net, Block::lane_bit(a.lane));
      } else if (a.fault.kind == FaultKind::kGlitch) {
        sim_.release(a.fault.net, Block::lane_bit(a.lane));
      }
    }
    // Reconvergence: with all strikes delivered and every remaining pin a
    // no-op, golden live DFF outputs after the edge mean golden everything
    // from here on (the combinational state is a function of registers and
    // the lane-uniform inputs), so the remaining cycles can be served from
    // the trace.  Glitches release at their strike cycle, so past
    // last_fault_cycle_ the only persistent forces are stuck-ats; those are
    // no-ops from stuck_tail_cycle_ on, where the golden trace itself holds
    // each stuck slot at its forced value for the remainder of the run.
    if (c >= last_fault_cycle_ &&
        (!sim_.any_forced() || c + 1 >= stuck_tail_cycle_)) {
      bool golden = true;
      for (const Slot q : live_q_slots_) {
        const std::uint64_t want = trace_->broadcast(c, cone_->d_of_q(q));
        for (unsigned k = 0; k < W; ++k) {
          if (sim_.slot_word(q, k) != want) {
            golden = false;
            break;
          }
        }
        if (!golden) break;
      }
      if (golden) converged_cycle_ = c + 1;
    }
    ++cycle_;
  }

  [[nodiscard]] std::int64_t read_bus(const Bus& bus, unsigned lane) const {
    if (bus.bits.empty()) {
      throw std::invalid_argument("ConeBatchSession::read_bus: empty bus");
    }
    if (lane >= kTotalLanes) {
      throw std::invalid_argument("ConeBatchSession::read_bus: bad lane");
    }
    if (cycle_ == 0) return sim_.read_bus(bus, lane);  // reset state
    const std::uint64_t c = cycle_ - 1;  // last completed cycle
    const bool active = cycle_ > first_cycle_ && c < converged_cycle_;
    std::int64_t v = 0;
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      const NetId net = bus.bits[i];
      if (net >= sim_.tape().net_count()) {
        throw std::invalid_argument("ConeBatchSession::read_bus: bad net");
      }
      const Slot s = sim_.tape().slot_of(net);
      if (s == kNullSlot) {
        throw std::invalid_argument(
            "ConeBatchSession::read_bus: net was eliminated by the optimizer");
      }
      bool bit;
      if (active && live_[s]) {
        bit = ((sim_.slot_word(s, lane / kWordLanes) >> (lane % kWordLanes)) &
               1) != 0;
      } else {
        // Golden post-step value: a DFF output reads its D slot's trace
        // (the edge already clocked it), anything else its own post-settle
        // trace of cycle c.
        const Slot d = cone_->d_of_q(s);
        bit = trace_->get(c, d != kNullSlot ? d : s);
      }
      if (bit) v |= std::int64_t{1} << i;
    }
    const int w = bus.width();
    if (w < 64 && (v & (std::int64_t{1} << (w - 1)))) {
      v -= std::int64_t{1} << w;
    }
    return v;
  }

  /// Bulk counterpart of read_bus, same contract as
  /// WideBatchSession::read_bus_all: one slot resolution per bus bit.
  /// Golden cycles (pre-fault, post-retirement, or non-live slots) fan the
  /// trace bit out to every lane instead of touching simulator state.
  void read_bus_all(const Bus& bus, std::int64_t* out, unsigned lanes) const {
    if (bus.bits.empty()) {
      throw std::invalid_argument("ConeBatchSession::read_bus_all: empty bus");
    }
    if (lanes == 0 || lanes > kTotalLanes) {
      throw std::invalid_argument("ConeBatchSession::read_bus_all: bad lanes");
    }
    if (cycle_ == 0) {  // reset state, before any step
      for (unsigned l = 0; l < lanes; ++l) out[l] = sim_.read_bus(bus, l);
      return;
    }
    const std::uint64_t c = cycle_ - 1;  // last completed cycle
    const bool active = cycle_ > first_cycle_ && c < converged_cycle_;
    const Tape& tape = sim_.tape();
    // Golden (non-live) bits are lane-uniform, so they accumulate into one
    // scalar fanned out once at the end; only live bits walk the simulator
    // words.  On fully golden cycles the whole read is one fill.
    std::int64_t golden_bits = 0;
    bool any_live = false;
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      const NetId net = bus.bits[i];
      if (net >= tape.net_count()) {
        throw std::invalid_argument(
            "ConeBatchSession::read_bus_all: net out of range");
      }
      const Slot s = tape.slot_of(net);
      if (s == kNullSlot) {
        throw std::invalid_argument(
            "ConeBatchSession::read_bus_all: net was eliminated by the "
            "optimizer");
      }
      if (active && live_[s]) {
        if (!any_live) {
          any_live = true;
          std::fill(out, out + lanes, std::int64_t{0});
        }
        for (unsigned k = 0; k * kWordLanes < lanes; ++k) {
          const std::uint64_t w = sim_.slot_word(s, k);
          const unsigned base = k * kWordLanes;
          const unsigned count = std::min(kWordLanes, lanes - base);
          for (unsigned j = 0; j < count; ++j) {
            out[base + j] |= static_cast<std::int64_t>((w >> j) & 1) << i;
          }
        }
      } else {
        const Slot d = cone_->d_of_q(s);
        if (trace_->get(c, d != kNullSlot ? d : s)) {
          golden_bits |= std::int64_t{1} << i;
        }
      }
    }
    if (!any_live) {
      WideBatchSession<W>::sign_extend_lanes(bus, &golden_bits, 1);
      std::fill(out, out + lanes, golden_bits);
      return;
    }
    if (golden_bits != 0) {
      for (unsigned l = 0; l < lanes; ++l) out[l] |= golden_bits;
    }
    WideBatchSession<W>::sign_extend_lanes(bus, out, lanes);
  }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] Sim& sim() { return sim_; }

  // Restriction statistics -------------------------------------------------
  /// Tape instructions actually executed so far.
  [[nodiscard]] std::uint64_t executed_instructions() const {
    return executed_instrs_;
  }
  /// Instructions a full-tape session would have executed over the same
  /// cycles.
  [[nodiscard]] std::uint64_t full_instructions() const {
    return cycle_ * static_cast<std::uint64_t>(cone_->instr_count());
  }
  /// Cycles skipped entirely: before the batch's earliest fault, plus
  /// every cycle after the batch reconverged to the golden state.
  [[nodiscard]] std::uint64_t skipped_cycles() const {
    return skipped_cycles_;
  }
  /// True once the whole batch has reconverged to the golden state (all
  /// strikes delivered, every remaining force a provable no-op, live
  /// registers golden); every later cycle is trace-served.
  [[nodiscard]] bool retired() const {
    return converged_cycle_ != std::numeric_limits<std::uint64_t>::max();
  }

 private:
  struct Armed {
    unsigned lane;
    Fault fault;
  };

  /// Freezes the union interval, live set, frontier and refresh lists from
  /// the armed faults.  Runs once, on the first step().
  void prepare() {
    prepared_ = true;
    const Tape& tape = sim_.tape();
    live_.assign(tape.slot_count(), 0);
    for (const Armed& a : faults_) {
      const ConeSpan span = cone_->span_of_net(tape, a.fault.net);
      if (!span.empty()) {
        if (interval_.empty()) {
          interval_ = span;
        } else {
          interval_.lo = std::min(interval_.lo, span.lo);
          interval_.hi = std::max(interval_.hi, span.hi);
        }
      }
      first_cycle_ = std::min(first_cycle_, a.fault.cycle);
      last_fault_cycle_ = std::max(last_fault_cycle_, a.fault.cycle);
      const Slot s = tape.slot_of(a.fault.net);
      if (s != kNullSlot) live_[s] = 1;
    }

    const std::vector<Instr>& instrs = tape.instrs();
    std::vector<std::uint8_t> interval_out(tape.slot_count(), 0);
    for (std::uint32_t i = interval_.lo; i < interval_.hi; ++i) {
      live_[instrs[i].out] = 1;
      interval_out[instrs[i].out] = 1;
      if (instrs[i].out2 != kNullSlot) {
        live_[instrs[i].out2] = 1;
        interval_out[instrs[i].out2] = 1;
      }
    }
    // Forced (glitch/stuck) slots whose value nothing in the session ever
    // recomputes -- writer outside the interval, not a register output --
    // hold stale data on unforced lanes (and before/after the force is
    // active); those, and only those, are golden-refreshed each cycle.
    // Slots the interval computes or the edge writes MUST NOT be refreshed:
    // they carry other lanes' diverged values, which a broadcast would
    // destroy.
    for (const Armed& a : faults_) {
      const Slot s = tape.slot_of(a.fault.net);
      if (s == kNullSlot || a.fault.kind == FaultKind::kSeuFlip) continue;
      if (!interval_out[s] && cone_->d_of_q(s) == kNullSlot) {
        refresh_fault_slots_.push_back(s);
      }
    }
    std::sort(refresh_fault_slots_.begin(), refresh_fault_slots_.end());
    refresh_fault_slots_.erase(
        std::unique(refresh_fault_slots_.begin(), refresh_fault_slots_.end()),
        refresh_fault_slots_.end());
    // Stuck tail: the earliest cycle from which every stuck force agrees
    // with the golden trace for the rest of the run.  From there a stuck
    // pin only re-asserts what the fault-free circuit computes, so the
    // batch may retire despite the active forces.  A stuck net without a
    // tape slot cannot be checked against the trace, so it conservatively
    // pins the tail to the end of the run (such a batch never retires
    // early, exactly as before).
    for (const Armed& a : faults_) {
      if (a.fault.kind != FaultKind::kStuckAt0 &&
          a.fault.kind != FaultKind::kStuckAt1) {
        continue;
      }
      const Slot s = tape.slot_of(a.fault.net);
      std::uint64_t tail = trace_->cycles();
      if (s != kNullSlot) {
        const bool want = a.fault.kind == FaultKind::kStuckAt1;
        while (tail > 0 && trace_->get(tail - 1, s) == want) --tail;
      }
      stuck_tail_cycle_ = std::max(stuck_tail_cycle_, tail);
    }
    // Close over clock edges: a live D makes its Q live next cycle.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const DffSlots& dff : tape.dffs()) {
        if (live_[dff.d] && !live_[dff.q]) {
          live_[dff.q] = 1;
          changed = true;
        }
      }
    }
    for (const DffSlots& dff : tape.dffs()) {
      if (live_[dff.q]) live_q_slots_.push_back(dff.q);
      if (!live_[dff.d]) nonlive_d_slots_.push_back(dff.d);
    }
    // Frontier: interval inputs nothing in the interval computes -- golden
    // by construction, refreshed from the trace each active cycle.  Primary
    // inputs are driven externally and skipped.
    std::vector<std::uint8_t> seen(tape.slot_count(), 0);
    const auto consider = [&](Slot s) {
      if (s == kNullSlot || live_[s] || seen[s]) return;
      seen[s] = 1;
      if (tape.is_primary_input(tape.net_of(s))) return;
      frontier_.push_back(s);
    };
    for (std::uint32_t i = interval_.lo; i < interval_.hi; ++i) {
      consider(instrs[i].a);
      consider(instrs[i].b);
      consider(instrs[i].c);
    }
  }

  Sim sim_;
  std::shared_ptr<const ConeIndex> cone_;
  std::shared_ptr<const GoldenTrace> trace_;
  std::vector<Armed> faults_;
  std::vector<NetId> watched_;
  std::vector<Slot> watched_slots_;
  Block watch_mask_{};
  std::uint64_t cycle_ = 0;

  bool prepared_ = false;
  ConeSpan interval_{};  // union of armed fault cones
  std::uint64_t first_cycle_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t last_fault_cycle_ = 0;  // latest armed strike
  /// First cycle from which every stuck force tracks the golden trace to
  /// the end of the run (0 when the batch has no stuck-at faults).
  std::uint64_t stuck_tail_cycle_ = 0;
  /// First cycle of the golden tail after reconvergence; max() = not (yet)
  /// retired.
  std::uint64_t converged_cycle_ = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint8_t> live_;       // per slot: state maintained in sim_
  std::vector<Slot> live_q_slots_;       // live DFF outputs (activation init)
  std::vector<Slot> nonlive_d_slots_;    // golden-refreshed before each edge
  std::vector<Slot> frontier_;           // golden-refreshed before each settle
  std::vector<Slot> refresh_fault_slots_;  // glitch/stuck slots, deduped
  std::uint64_t executed_instrs_ = 0;
  std::uint64_t skipped_cycles_ = 0;
};

}  // namespace dwt::rtl::compiled
