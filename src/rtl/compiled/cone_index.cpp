#include "rtl/compiled/cone_index.hpp"

#include <limits>
#include <stdexcept>

namespace dwt::rtl::compiled {
namespace {

/// Grows `span` to cover `other`; returns true when it grew.  Spans start
/// as the canonical empty {0, 0}; growing an empty span adopts the other
/// span outright.
bool grow(ConeSpan& span, const ConeSpan& other) {
  if (other.empty()) return false;
  if (span.empty()) {
    span = other;
    return true;
  }
  bool grew = false;
  if (other.lo < span.lo) {
    span.lo = other.lo;
    grew = true;
  }
  if (other.hi > span.hi) {
    span.hi = other.hi;
    grew = true;
  }
  return grew;
}

}  // namespace

std::shared_ptr<const ConeIndex> ConeIndex::build(const Tape& tape) {
  auto index = std::shared_ptr<ConeIndex>(new ConeIndex());
  const std::size_t n_slots = tape.slot_count();
  const std::vector<Instr>& instrs = tape.instrs();
  index->instr_count_ = instrs.size();
  index->spans_.assign(n_slots, ConeSpan{});
  index->d_of_q_.assign(n_slots, kNullSlot);
  for (const DffSlots& dff : tape.dffs()) {
    index->d_of_q_.at(dff.q) = dff.d;
  }

  std::vector<ConeSpan>& spans = index->spans_;
  // Fixpoint: intervals only grow and are bounded by [0, instr_count), so
  // the loop terminates; each sweep costs O(instrs + dffs).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = instrs.size(); i-- > 0;) {
      const Instr& it = instrs[i];
      // If any input of instruction i changes, i recomputes (index i joins
      // the cone) and its outputs may change (their cones join too).
      ConeSpan affected{static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(i + 1)};
      grow(affected, spans[it.out]);
      if (it.out2 != kNullSlot) grow(affected, spans[it.out2]);
      changed |= grow(spans[it.a], affected);
      if (it.b != kNullSlot) changed |= grow(spans[it.b], affected);
      if (it.c != kNullSlot) changed |= grow(spans[it.c], affected);
    }
    for (const DffSlots& dff : tape.dffs()) {
      // A corrupted D is clocked into Q, so D inherits Q's cone (the clock
      // edge itself is simulated in full and needs no instruction slot).
      changed |= grow(spans[dff.d], spans[dff.q]);
    }
  }
  return index;
}

double ConeIndex::mean_span_fraction() const {
  if (instr_count_ == 0) return 0.0;
  std::uint64_t total = 0;
  std::size_t nonempty = 0;
  for (const ConeSpan& span : spans_) {
    if (span.empty()) continue;
    total += span.length();
    ++nonempty;
  }
  if (nonempty == 0) return 0.0;
  return static_cast<double>(total) /
         (static_cast<double>(nonempty) * static_cast<double>(instr_count_));
}

}  // namespace dwt::rtl::compiled
