// Minimal VCD (value change dump) writer so hardware simulations can be
// inspected in any waveform viewer (GTKWave etc.).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {

class VcdWriter {
 public:
  /// Opens `path` and writes a VCD header with one scalar signal per traced
  /// net.  Nets with empty names are dumped as n<id>.
  VcdWriter(const Netlist& nl, std::vector<NetId> traced,
            const std::string& path);

  /// Records the current simulator values at time `t` (dumps changes only).
  void sample(const Simulator& sim, std::uint64_t t);

 private:
  const Netlist& nl_;
  std::vector<NetId> traced_;
  std::vector<int> last_;  // -1 unknown, else 0/1
  std::ofstream out_;
};

}  // namespace dwt::rtl
