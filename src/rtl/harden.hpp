// Netlist-to-netlist hardening transforms.  Hardened netlists are ordinary
// netlists built from the existing primitive cells, so they flow unchanged
// through simplify(), the APEX technology mapper, static timing and the
// power model -- the LE / f_max / mW *cost of hardening* is reported by the
// same machinery as the paper's Table 3.
//
//  * TMR: every DFF is triplicated (the replicas share the original D cone)
//    and its output replaced by a majority voter built from kAnd2/kOr2
//    gates.  Any single SEU in a state bit is masked.
//  * Parity: DFFs are grouped into words by register-bank name; each group
//    gets one extra parity DFF fed by an XOR tree over the group's D inputs,
//    and a combinational checker compares the stored parity against the
//    group's outputs.  Any single SEU in a protected word raises the
//    "fault_detected" output flag (detection, not correction).
#pragma once

#include <cstddef>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

enum class HardeningStyle {
  kNone,
  kTmr,
  kParity,
};

[[nodiscard]] const char* to_string(HardeningStyle s);

/// Name of the single-bit error-flag output port added by parity hardening.
inline constexpr const char* kErrorFlagPort = "fault_detected";

/// Structural accounting of a hardening transform.
struct HardeningReport {
  std::size_t protected_ffs = 0;  ///< DFFs of the source netlist covered
  std::size_t added_ffs = 0;      ///< replica / parity DFFs created
  std::size_t added_gates = 0;    ///< voter / parity-tree gates created
  std::size_t parity_groups = 0;  ///< words protected by one parity bit each
};

/// Triple-modular redundancy on the state: functionally identical netlist
/// whose every DFF is triplicated and voted.  Port names are preserved.
[[nodiscard]] Netlist apply_tmr(const Netlist& in,
                                HardeningReport* report = nullptr);

/// Per-word parity prediction/checking with a `fault_detected` output port.
/// Port names are preserved; the flag port is added.
[[nodiscard]] Netlist apply_parity(const Netlist& in,
                                   HardeningReport* report = nullptr);

/// Dispatch on style; kNone returns an unmodified copy.
[[nodiscard]] Netlist apply_hardening(const Netlist& in, HardeningStyle style,
                                      HardeningReport* report = nullptr);

}  // namespace dwt::rtl
