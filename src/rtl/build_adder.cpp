#include "rtl/build_adder.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rtl/builder.hpp"

namespace dwt::rtl {
namespace {

// ---------------------------------------------------------------------------
// The paper's two styles (sections 3.2 / 3.4), moved verbatim from
// Builder::add/sub: cell kinds, creation order, names and cluster tags are
// preserved exactly so every pre-existing design elaborates byte-identically.
// ---------------------------------------------------------------------------

/// Structural full adder (paper section 3.4): sum and carry from plain
/// gates; the APEX mapper later covers the two cones with two 4-LUTs.
NetId full_adder_bit(Netlist& nl, NetId a, NetId b, NetId cin, NetId& cout,
                     std::int32_t cluster, const std::string& name) {
  const NetId axb = nl.add_cell(CellKind::kXor2, a, b, kNullNet, name + ".axb");
  const NetId sum = nl.add_cell(CellKind::kXor2, axb, cin, kNullNet, name + ".s");
  const NetId g = nl.add_cell(CellKind::kAnd2, a, b, kNullNet, name + ".g");
  const NetId p = nl.add_cell(CellKind::kAnd2, axb, cin, kNullNet, name + ".p");
  cout = nl.add_cell(CellKind::kOr2, g, p, kNullNet, name + ".c");
  for (const NetId n : {axb, sum, g, p, cout}) nl.set_cluster(n, cluster);
  return sum;
}

Bus emit_carry_chain(Netlist& nl, const Bus& ax, const Bus& bx, NetId carry,
                     std::int32_t cluster, const std::string& name) {
  const int out_width = ax.width();
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(out_width));
  const std::int32_t chain = nl.new_chain_id();
  for (int i = 0; i < out_width; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::string bit_name = name + "[" + std::to_string(i) + "]";
    out.bits.push_back(nl.add_chain_cell(CellKind::kAddSum, ax.bits[idx],
                                         bx.bits[idx], carry, chain, i,
                                         bit_name));
    nl.set_cluster(out.bits.back(), cluster);
    if (i + 1 < out_width) {
      carry = nl.add_chain_cell(CellKind::kAddCarry, ax.bits[idx],
                                bx.bits[idx], carry, chain, i,
                                bit_name + ".co");
      nl.set_cluster(carry, cluster);
    }
  }
  return out;
}

Bus emit_ripple_gates(Netlist& nl, const Bus& ax, const Bus& bx, NetId carry,
                      std::int32_t cluster, const std::string& name) {
  const int out_width = ax.width();
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(out_width));
  for (int i = 0; i < out_width; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    NetId cout = kNullNet;
    out.bits.push_back(full_adder_bit(nl, ax.bits[idx], bx.bits[idx], carry,
                                      cout, cluster,
                                      name + "[" + std::to_string(i) + "]"));
    carry = cout;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parallel-prefix family: per-bit generate g=a&b / propagate p=a^b pairs,
// a logarithmic-depth network of (G,P) combine nodes computing the complete
// prefixes G[i..0] (carry-in absorbed at position 0), and sum[i] = p[i] ^
// c[i].  The carries arrive through plain-gate trees, so the structural
// timing analyzer charges log-depth LUT levels instead of the per-bit
// t_carry of the chain styles.
// ---------------------------------------------------------------------------

/// One (G,P) prefix node covering bit span [hi..low].  When low == 0 the
/// span includes the carry-in and the group propagate is dead (never needed
/// by a later combine), so it is not emitted.
struct GpNode {
  NetId g = kNullNet;
  NetId p = kNullNet;
  int low = 0;
};

/// Black/gray prefix combine: (G,P)hi o (G,P)lo = (Ghi | Phi&Glo, Phi&Plo).
GpNode combine(Netlist& nl, std::int32_t cluster, const GpNode& hi,
               const GpNode& lo, const std::string& name) {
  GpNode out;
  const NetId t =
      nl.add_cell(CellKind::kAnd2, hi.p, lo.g, kNullNet, name + ".t");
  out.g = nl.add_cell(CellKind::kOr2, hi.g, t, kNullNet, name + ".g");
  nl.set_cluster(t, cluster);
  nl.set_cluster(out.g, cluster);
  out.low = lo.low;
  if (out.low > 0) {
    out.p = nl.add_cell(CellKind::kAnd2, hi.p, lo.p, kNullNet, name + ".p");
    nl.set_cluster(out.p, cluster);
  }
  return out;
}

/// Folds a carry-in into a node's generate: g' = g | (p & cin).  The result
/// covers the carry-in, so its span bottoms out at 0.
GpNode absorb_cin(Netlist& nl, std::int32_t cluster, const GpNode& node,
                  NetId cin, const std::string& name) {
  const NetId t =
      nl.add_cell(CellKind::kAnd2, node.p, cin, kNullNet, name + ".a");
  GpNode out;
  out.g = nl.add_cell(CellKind::kOr2, node.g, t, kNullNet, name + ".g");
  nl.set_cluster(t, cluster);
  nl.set_cluster(out.g, cluster);
  out.p = kNullNet;
  out.low = 0;
  return out;
}

/// Kogge-Stone: at distance d every node i >= d combines with node i-d, so
/// each level doubles the covered span and every bit's prefix completes in
/// ceil(log2(n)) levels.  Nodes whose span already reaches bit 0 are done.
/// Expects nodes[0].low == 0 (carry-in absorbed) and nodes[j].low == j.
std::vector<GpNode> kogge_stone(Netlist& nl, std::int32_t cluster,
                                std::vector<GpNode> nodes,
                                const std::string& name) {
  const int n = static_cast<int>(nodes.size());
  int level = 1;
  for (int d = 1; d < n; d <<= 1, ++level) {
    std::vector<GpNode> next = nodes;
    for (int i = n - 1; i >= d; --i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      if (nodes[idx].low == 0) continue;
      next[idx] = combine(nl, cluster, nodes[idx],
                          nodes[idx - static_cast<std::size_t>(d)],
                          name + ".l" + std::to_string(level) + "n" +
                              std::to_string(i));
    }
    nodes = std::move(next);
  }
  return nodes;
}

/// Brent-Kung: an up-sweep builds power-of-two group nodes, a down-sweep
/// distributes the complete prefixes back to the remaining bits — about
/// half the combine nodes of Kogge-Stone at roughly twice the depth.
/// Expects the same precondition as kogge_stone().
std::vector<GpNode> brent_kung(Netlist& nl, std::int32_t cluster,
                               std::vector<GpNode> nodes,
                               const std::string& name) {
  const int n = static_cast<int>(nodes.size());
  int level = 1;
  for (int d = 1; d < n; d <<= 1, ++level) {
    for (int i = 2 * d - 1; i < n; i += 2 * d) {
      const std::size_t idx = static_cast<std::size_t>(i);
      nodes[idx] = combine(nl, cluster, nodes[idx],
                           nodes[idx - static_cast<std::size_t>(d)],
                           name + ".u" + std::to_string(level) + "n" +
                               std::to_string(i));
    }
  }
  int p2 = 1;
  while (p2 * 2 < n) p2 *= 2;
  for (int d = p2; d >= 1; d >>= 1, ++level) {
    for (int i = 3 * d - 1; i < n; i += 2 * d) {
      const std::size_t idx = static_cast<std::size_t>(i);
      if (nodes[idx].low == 0) continue;
      nodes[idx] = combine(nl, cluster, nodes[idx],
                           nodes[idx - static_cast<std::size_t>(d)],
                           name + ".v" + std::to_string(level) + "n" +
                               std::to_string(i));
    }
  }
  return nodes;
}

/// Sparse hybrid (SNIPPETS.md snippet 3): the dense minimum-depth
/// Kogge-Stone network resolves the low half, its group carry seeds a
/// sparse Brent-Kung tree over the high half — prefix speed where the
/// carry is on the critical path, prefix area savings where it is not.
std::vector<GpNode> hybrid_ksbk(Netlist& nl, std::int32_t cluster,
                                std::vector<GpNode> nodes,
                                const std::string& name) {
  const int n = static_cast<int>(nodes.size());
  const int m = (n + 1) / 2;
  std::vector<GpNode> low(nodes.begin(), nodes.begin() + m);
  low = kogge_stone(nl, cluster, std::move(low), name + ".ks");
  if (m < n) {
    std::vector<GpNode> high(nodes.begin() + m, nodes.end());
    for (GpNode& node : high) node.low -= m;
    high[0] = absorb_cin(nl, cluster, high[0],
                         low[static_cast<std::size_t>(m - 1)].g,
                         name + ".c" + std::to_string(m));
    high = brent_kung(nl, cluster, std::move(high), name + ".bk");
    std::copy(high.begin(), high.end(),
              nodes.begin() + m);
  }
  std::copy(low.begin(), low.end(), nodes.begin());
  return nodes;
}

Bus emit_prefix(Netlist& nl, const Bus& ax, const Bus& bx, NetId cin,
                AdderArch arch, std::int32_t cluster,
                const std::string& name) {
  const int n = ax.width();
  std::vector<NetId> p(static_cast<std::size_t>(n));
  std::vector<GpNode> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    p[idx] = nl.add_cell(CellKind::kXor2, ax.bits[idx], bx.bits[idx], kNullNet,
                         name + ".p" + std::to_string(i));
    nodes[idx].g = nl.add_cell(CellKind::kAnd2, ax.bits[idx], bx.bits[idx],
                               kNullNet, name + ".g" + std::to_string(i));
    nl.set_cluster(p[idx], cluster);
    nl.set_cluster(nodes[idx].g, cluster);
    nodes[idx].p = p[idx];
    nodes[idx].low = i;
  }
  if (n > 1) {
    nodes[0] = absorb_cin(nl, cluster, nodes[0], cin, name + ".c0");
    switch (arch) {
      case AdderArch::kKoggeStone:
        nodes = kogge_stone(nl, cluster, std::move(nodes), name);
        break;
      case AdderArch::kBrentKung:
        nodes = brent_kung(nl, cluster, std::move(nodes), name);
        break;
      default:
        nodes = hybrid_ksbk(nl, cluster, std::move(nodes), name);
        break;
    }
  }
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const NetId carry = i == 0 ? cin : nodes[idx - 1].g;
    out.bits.push_back(nl.add_cell(CellKind::kXor2, p[idx], carry, kNullNet,
                                   name + "[" + std::to_string(i) + "]"));
    nl.set_cluster(out.bits.back(), cluster);
  }
  return out;
}

Bus emit_sum(Netlist& nl, const Bus& ax, const Bus& bx, NetId carry,
             AdderArch arch, std::int32_t cluster, const std::string& name) {
  switch (arch) {
    case AdderArch::kCarryChain:
      return emit_carry_chain(nl, ax, bx, carry, cluster, name);
    case AdderArch::kRippleGates:
      return emit_ripple_gates(nl, ax, bx, carry, cluster, name);
    case AdderArch::kKoggeStone:
    case AdderArch::kBrentKung:
    case AdderArch::kHybridKsBk:
      return emit_prefix(nl, ax, bx, carry, arch, cluster, name);
  }
  throw std::invalid_argument("build_adder: unknown AdderArch");
}

}  // namespace

Bus build_adder(Builder& builder, const Bus& a, const Bus& b, AdderArch arch,
                int out_width, const std::string& name) {
  if (out_width <= 0) throw std::invalid_argument("Builder::add: bad width");
  Netlist& nl = builder.netlist();
  const Bus ax = builder.resize(a, out_width);
  const Bus bx = builder.resize(b, out_width);
  const NetId carry = nl.const0();
  const std::int32_t cluster = nl.new_cluster_id();
  return emit_sum(nl, ax, bx, carry, arch, cluster, name);
}

Bus build_subtractor(Builder& builder, const Bus& a, const Bus& b,
                     AdderArch arch, int out_width, const std::string& name) {
  if (out_width <= 0) throw std::invalid_argument("Builder::sub: bad width");
  Netlist& nl = builder.netlist();
  const Bus ax = builder.resize(a, out_width);
  const Bus bx = builder.resize(b, out_width);
  Bus nb;
  nb.bits.reserve(static_cast<std::size_t>(out_width));
  for (int i = 0; i < out_width; ++i) {
    nb.bits.push_back(nl.add_cell(CellKind::kNot,
                                  bx.bits[static_cast<std::size_t>(i)],
                                  kNullNet, kNullNet,
                                  name + ".nb" + std::to_string(i)));
  }
  const NetId carry = nl.const1();  // +1 completes the two's complement of b
  const std::int32_t cluster = nl.new_cluster_id();
  for (int i = 0; i < out_width; ++i) {
    nl.set_cluster(nb.bits[static_cast<std::size_t>(i)], cluster);
  }
  return emit_sum(nl, ax, nb, carry, arch, cluster, name);
}

}  // namespace dwt::rtl
