#include "rtl/adders.hpp"

#include <algorithm>
#include <stdexcept>

namespace dwt::rtl {

Word sum_signed(Pipeliner& p, std::vector<SignedTerm> terms,
                SumStructure structure, AdderStyle style,
                const std::string& name) {
  if (terms.empty()) throw std::invalid_argument("sum_signed: no terms");
  // Positive terms first so the running sum starts from a plain addend.
  std::stable_partition(terms.begin(), terms.end(),
                        [](const SignedTerm& t) { return !t.negative; });
  if (terms.front().negative) {
    // All terms negative (possible with CSD recodings such as -2^k):
    // prepend a zero so the running sum starts from a plain addend.
    Word zero;
    zero.bus = p.builder().constant(0, 1);
    zero.range = common::Interval::point(0);
    zero.depth = terms.front().word.depth;
    terms.insert(terms.begin(), SignedTerm{std::move(zero), false});
  }
  if (structure == SumStructure::kSequential) {
    Word acc = terms.front().word;
    for (std::size_t i = 1; i < terms.size(); ++i) {
      const std::string step = name + ".acc" + std::to_string(i);
      acc = terms[i].negative
                ? word_sub(p, acc, terms[i].word, style, step)
                : word_add(p, acc, terms[i].word, style, step);
    }
    return acc;
  }
  std::vector<Word> pos;
  std::vector<Word> neg;
  for (SignedTerm& t : terms) {
    (t.negative ? neg : pos).push_back(std::move(t.word));
  }
  return sum_with_negatives(p, std::move(pos), std::move(neg), style, name);
}

Word sum_tree(Pipeliner& p, std::vector<Word> terms, AdderStyle style,
              const std::string& name) {
  if (terms.empty()) throw std::invalid_argument("sum_tree: no terms");
  int level = 0;
  while (terms.size() > 1) {
    std::vector<Word> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(word_add(p, terms[i], terms[i + 1], style,
                              name + ".l" + std::to_string(level) + "_" +
                                  std::to_string(i / 2)));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
    ++level;
  }
  return terms.front();
}

Word sum_with_negatives(Pipeliner& p, std::vector<Word> pos,
                        std::vector<Word> neg, AdderStyle style,
                        const std::string& name) {
  if (pos.empty()) throw std::invalid_argument("sum_with_negatives: no terms");
  Word acc = sum_tree(p, std::move(pos), style, name + ".pos");
  if (neg.empty()) return acc;
  const Word n = sum_tree(p, std::move(neg), style, name + ".neg");
  return word_sub(p, acc, n, style, name + ".diff");
}

Word sum_chain(Pipeliner& p, std::vector<Word> terms, AdderStyle style,
               const std::string& name) {
  if (terms.empty()) throw std::invalid_argument("sum_chain: no terms");
  Word acc = terms.front();
  for (std::size_t i = 1; i < terms.size(); ++i) {
    acc = word_add(p, acc, terms[i], style,
                   name + ".acc" + std::to_string(i));
  }
  return acc;
}

}  // namespace dwt::rtl
