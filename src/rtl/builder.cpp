#include "rtl/builder.hpp"

#include <stdexcept>

namespace dwt::rtl {

Bus Builder::constant(std::int64_t value, int width) {
  if (width <= 0 || width > 62) {
    throw std::invalid_argument("Builder::constant: bad width");
  }
  Bus bus;
  bus.bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.bits.push_back(((value >> i) & 1) != 0 ? nl_.const1() : nl_.const0());
  }
  return bus;
}

Bus Builder::resize(const Bus& b, int width) const {
  if (width <= 0) throw std::invalid_argument("Builder::resize: bad width");
  if (b.bits.empty()) throw std::invalid_argument("Builder::resize: empty bus");
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out.bits.push_back(i < b.width() ? b.bits[static_cast<std::size_t>(i)]
                                     : b.bits.back());
  }
  return out;
}

Bus Builder::shl(const Bus& b, int k) {
  if (k < 0) throw std::invalid_argument("Builder::shl: negative shift");
  Bus out;
  out.bits.reserve(b.bits.size() + static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) out.bits.push_back(nl_.const0());
  out.bits.insert(out.bits.end(), b.bits.begin(), b.bits.end());
  return out;
}

Bus Builder::asr(const Bus& b, int k) const {
  if (k < 0) throw std::invalid_argument("Builder::asr: negative shift");
  if (k >= b.width()) {
    // All value bits shifted out: result is the replicated sign bit.
    return Bus{{b.bits.back()}};
  }
  Bus out;
  out.bits.assign(b.bits.begin() + k, b.bits.end());
  return out;
}

NetId Builder::add_bit_gates(NetId a, NetId b, NetId cin, NetId& cout,
                             std::int32_t cluster, const std::string& name) {
  // Structural full adder (paper section 3.4): sum and carry from plain
  // gates; the APEX mapper later covers the two cones with two 4-LUTs.
  const NetId axb = nl_.add_cell(CellKind::kXor2, a, b, kNullNet, name + ".axb");
  const NetId sum = nl_.add_cell(CellKind::kXor2, axb, cin, kNullNet, name + ".s");
  const NetId g = nl_.add_cell(CellKind::kAnd2, a, b, kNullNet, name + ".g");
  const NetId p = nl_.add_cell(CellKind::kAnd2, axb, cin, kNullNet, name + ".p");
  cout = nl_.add_cell(CellKind::kOr2, g, p, kNullNet, name + ".c");
  for (const NetId n : {axb, sum, g, p, cout}) nl_.set_cluster(n, cluster);
  return sum;
}

Bus Builder::add(const Bus& a, const Bus& b, AdderStyle style, int out_width,
                 const std::string& name) {
  if (out_width <= 0) throw std::invalid_argument("Builder::add: bad width");
  const Bus ax = resize(a, out_width);
  const Bus bx = resize(b, out_width);
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(out_width));
  NetId carry = nl_.const0();
  const std::int32_t cluster = nl_.new_cluster_id();
  if (style == AdderStyle::kCarryChain) {
    const std::int32_t chain = nl_.new_chain_id();
    for (int i = 0; i < out_width; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::string bit_name = name + "[" + std::to_string(i) + "]";
      out.bits.push_back(nl_.add_chain_cell(CellKind::kAddSum, ax.bits[idx],
                                            bx.bits[idx], carry, chain, i,
                                            bit_name));
      nl_.set_cluster(out.bits.back(), cluster);
      if (i + 1 < out_width) {
        carry = nl_.add_chain_cell(CellKind::kAddCarry, ax.bits[idx],
                                   bx.bits[idx], carry, chain, i,
                                   bit_name + ".co");
        nl_.set_cluster(carry, cluster);
      }
    }
  } else {
    for (int i = 0; i < out_width; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      NetId cout = kNullNet;
      out.bits.push_back(add_bit_gates(ax.bits[idx], bx.bits[idx], carry, cout,
                                       cluster,
                                       name + "[" + std::to_string(i) + "]"));
      carry = cout;
    }
  }
  return out;
}

Bus Builder::sub(const Bus& a, const Bus& b, AdderStyle style, int out_width,
                 const std::string& name) {
  if (out_width <= 0) throw std::invalid_argument("Builder::sub: bad width");
  const Bus ax = resize(a, out_width);
  const Bus bx = resize(b, out_width);
  Bus nb;
  nb.bits.reserve(static_cast<std::size_t>(out_width));
  for (int i = 0; i < out_width; ++i) {
    nb.bits.push_back(nl_.add_cell(CellKind::kNot,
                                   bx.bits[static_cast<std::size_t>(i)],
                                   kNullNet, kNullNet,
                                   name + ".nb" + std::to_string(i)));
  }
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(out_width));
  NetId carry = nl_.const1();  // +1 completes the two's complement of b
  const std::int32_t cluster = nl_.new_cluster_id();
  for (int i = 0; i < out_width; ++i) {
    nl_.set_cluster(nb.bits[static_cast<std::size_t>(i)], cluster);
  }
  if (style == AdderStyle::kCarryChain) {
    const std::int32_t chain = nl_.new_chain_id();
    for (int i = 0; i < out_width; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::string bit_name = name + "[" + std::to_string(i) + "]";
      out.bits.push_back(nl_.add_chain_cell(CellKind::kAddSum, ax.bits[idx],
                                            nb.bits[idx], carry, chain, i,
                                            bit_name));
      nl_.set_cluster(out.bits.back(), cluster);
      if (i + 1 < out_width) {
        carry = nl_.add_chain_cell(CellKind::kAddCarry, ax.bits[idx],
                                   nb.bits[idx], carry, chain, i,
                                   bit_name + ".co");
        nl_.set_cluster(carry, cluster);
      }
    }
  } else {
    for (int i = 0; i < out_width; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      NetId cout = kNullNet;
      out.bits.push_back(add_bit_gates(ax.bits[idx], nb.bits[idx], carry, cout,
                                       cluster,
                                       name + "[" + std::to_string(i) + "]"));
      carry = cout;
    }
  }
  return out;
}

Bus Builder::reg(const Bus& b, const std::string& name) {
  Bus out;
  out.bits.reserve(b.bits.size());
  for (std::size_t i = 0; i < b.bits.size(); ++i) {
    out.bits.push_back(nl_.add_cell(CellKind::kDff, b.bits[i], kNullNet,
                                    kNullNet,
                                    name + "[" + std::to_string(i) + "]"));
  }
  return out;
}

Bus Builder::delay(const Bus& b, int cycles, const std::string& name) {
  if (cycles < 0) throw std::invalid_argument("Builder::delay: negative");
  Bus out = b;
  for (int i = 0; i < cycles; ++i) {
    out = reg(out, name + ".d" + std::to_string(i));
  }
  return out;
}

Bus Builder::mux(const Bus& a, const Bus& b, NetId sel,
                 const std::string& name) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("Builder::mux: width mismatch");
  }
  Bus out;
  out.bits.reserve(a.bits.size());
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    out.bits.push_back(nl_.add_cell(CellKind::kMux2, a.bits[i], b.bits[i], sel,
                                    name + "[" + std::to_string(i) + "]"));
  }
  return out;
}

}  // namespace dwt::rtl
