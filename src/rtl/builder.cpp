#include "rtl/builder.hpp"

#include <stdexcept>

#include "rtl/build_adder.hpp"

namespace dwt::rtl {

Bus Builder::constant(std::int64_t value, int width) {
  if (width <= 0 || width > 62) {
    throw std::invalid_argument("Builder::constant: bad width");
  }
  Bus bus;
  bus.bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.bits.push_back(((value >> i) & 1) != 0 ? nl_.const1() : nl_.const0());
  }
  return bus;
}

Bus Builder::resize(const Bus& b, int width) const {
  if (width <= 0) throw std::invalid_argument("Builder::resize: bad width");
  if (b.bits.empty()) throw std::invalid_argument("Builder::resize: empty bus");
  Bus out;
  out.bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out.bits.push_back(i < b.width() ? b.bits[static_cast<std::size_t>(i)]
                                     : b.bits.back());
  }
  return out;
}

Bus Builder::shl(const Bus& b, int k) {
  if (k < 0) throw std::invalid_argument("Builder::shl: negative shift");
  Bus out;
  out.bits.reserve(b.bits.size() + static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) out.bits.push_back(nl_.const0());
  out.bits.insert(out.bits.end(), b.bits.begin(), b.bits.end());
  return out;
}

Bus Builder::asr(const Bus& b, int k) const {
  if (k < 0) throw std::invalid_argument("Builder::asr: negative shift");
  if (k >= b.width()) {
    // All value bits shifted out: result is the replicated sign bit.
    return Bus{{b.bits.back()}};
  }
  Bus out;
  out.bits.assign(b.bits.begin() + k, b.bits.end());
  return out;
}

Bus Builder::add(const Bus& a, const Bus& b, AdderStyle style, int out_width,
                 const std::string& name) {
  return build_adder(*this, a, b, style, out_width, name);
}

Bus Builder::sub(const Bus& a, const Bus& b, AdderStyle style, int out_width,
                 const std::string& name) {
  return build_subtractor(*this, a, b, style, out_width, name);
}

Bus Builder::reg(const Bus& b, const std::string& name) {
  Bus out;
  out.bits.reserve(b.bits.size());
  for (std::size_t i = 0; i < b.bits.size(); ++i) {
    out.bits.push_back(nl_.add_cell(CellKind::kDff, b.bits[i], kNullNet,
                                    kNullNet,
                                    name + "[" + std::to_string(i) + "]"));
  }
  return out;
}

Bus Builder::delay(const Bus& b, int cycles, const std::string& name) {
  if (cycles < 0) throw std::invalid_argument("Builder::delay: negative");
  Bus out = b;
  for (int i = 0; i < cycles; ++i) {
    out = reg(out, name + ".d" + std::to_string(i));
  }
  return out;
}

Bus Builder::mux(const Bus& a, const Bus& b, NetId sel,
                 const std::string& name) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("Builder::mux: width mismatch");
  }
  Bus out;
  out.bits.reserve(a.bits.size());
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    out.bits.push_back(nl_.add_cell(CellKind::kMux2, a.bits[i], b.bits[i], sel,
                                    name + "[" + std::to_string(i) + "]"));
  }
  return out;
}

}  // namespace dwt::rtl
