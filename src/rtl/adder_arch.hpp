// The adder-architecture family: how a word-level signed addition is
// realized as cells.  The paper explores two realizations (behavioral
// carry-chain vs structural ripple gates, sections 3.2 vs 3.4); the family
// extends that closed pair with parallel-prefix networks whose logic depth
// is logarithmic in the word width, shifting the f_max frontier the paper's
// carry-propagation-bound designs could not reach.
#pragma once

#include <array>
#include <optional>
#include <string>

namespace dwt::rtl {

/// Adder realizations accepted by build_adder() (and therefore by
/// Builder::add/sub and every datapath elaborated on top of them).
enum class AdderArch {
  kCarryChain,   ///< behavioral: one LE per bit on the dedicated carry chain
  kRippleGates,  ///< structural: full adders from plain gates (2 LEs per bit)
  kKoggeStone,   ///< parallel prefix: minimum depth, one node per (bit, level)
  kBrentKung,    ///< parallel prefix: sparse tree, ~2*log2(n) levels
  kHybridKsBk,   ///< sparse hybrid: Kogge-Stone low half, Brent-Kung high half
};

inline constexpr int kAdderArchCount = 5;

/// Every architecture, in enum order.
[[nodiscard]] const std::array<AdderArch, kAdderArchCount>& all_adder_archs();

/// The parallel-prefix additions on top of the paper's two styles.
[[nodiscard]] const std::array<AdderArch, 3>& prefix_adder_archs();

/// True for the carry-lookahead family (Kogge-Stone / Brent-Kung / hybrid):
/// carries come from a logarithmic-depth prefix network of plain gates, not
/// from a per-bit carry chain or ripple path.
[[nodiscard]] bool is_parallel_prefix(AdderArch arch);

/// Canonical spelling used in CLIs, reports and cache keys: "carry-chain",
/// "ripple-gates", "kogge-stone", "brent-kung", "hybrid-ksbk".
[[nodiscard]] const char* adder_name(AdderArch arch);

/// Parses a user spelling (mirroring parse_design): canonical names plus
/// short aliases ("cc", "chain", "ripple", "rg", "ks", "bk", "ksbk",
/// "hybrid"), case-insensitive, with '-', '_' and ' ' interchangeable.
/// Returns std::nullopt for anything unrecognized.
[[nodiscard]] std::optional<AdderArch> parse_adder(const std::string& text);

}  // namespace dwt::rtl
