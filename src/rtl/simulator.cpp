#include "rtl/simulator.hpp"

#include <stdexcept>

namespace dwt::rtl {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), topo_(nl.topo_order()), values_(nl.net_count(), 0) {
  for (const Cell& c : nl.cells()) {
    if (c.kind == CellKind::kDff) dffs_.emplace_back(c.out, c.in[0]);
  }
  dff_scratch_.reserve(dffs_.size());
}

void Simulator::set_input(NetId net, bool value) {
  if (net >= values_.size() || !nl_.net(net).is_primary_input) {
    throw std::invalid_argument("Simulator::set_input: not a primary input");
  }
  values_[net] = value ? 1 : 0;
}

void Simulator::set_bus(const Bus& bus, std::int64_t value) {
  if (bus.bits.empty()) {
    throw std::invalid_argument("Simulator::set_bus: empty bus");
  }
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    set_input(bus.bits[i], ((value >> i) & 1) != 0);
  }
  // Verify the value actually fits the bus (two's complement).
  const std::int64_t readback = read_bus(bus);
  if (readback != value) {
    throw std::invalid_argument("Simulator::set_bus: value does not fit bus");
  }
}

bool Simulator::eval_cell(const Cell& c) const {
  const auto in = [&](int i) {
    return values_[c.in[static_cast<std::size_t>(i)]] != 0;
  };
  switch (c.kind) {
    case CellKind::kConst0: return false;
    case CellKind::kConst1: return true;
    case CellKind::kNot: return !in(0);
    case CellKind::kAnd2: return in(0) && in(1);
    case CellKind::kOr2: return in(0) || in(1);
    case CellKind::kXor2: return in(0) != in(1);
    case CellKind::kMux2: return in(2) ? in(1) : in(0);
    case CellKind::kAddSum: return (in(0) != in(1)) != in(2);
    case CellKind::kAddCarry:
      return (in(0) && in(1)) || (in(2) && (in(0) != in(1)));
    case CellKind::kDff:
      throw std::logic_error("eval_cell: DFF is not combinational");
  }
  return false;
}

void Simulator::eval() {
  for (const CellId id : topo_) {
    const Cell& c = nl_.cell(id);
    values_[c.out] = eval_cell(c) ? 1 : 0;
  }
}

void Simulator::clock_edge() {
  // Sample all D inputs, then update outputs (two-phase, race-free).
  dff_scratch_.clear();
  for (const auto& [q, d] : dffs_) dff_scratch_.push_back(values_[d]);
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    values_[dffs_[i].first] = dff_scratch_[i];
  }
}

void Simulator::step() {
  eval();
  clock_edge();
}

void Simulator::poke(NetId net, bool value) {
  if (net >= values_.size()) {
    throw std::invalid_argument("Simulator::poke: net out of range");
  }
  values_[net] = value ? 1 : 0;
}

std::int64_t Simulator::read_bus(const Bus& bus) const {
  if (bus.bits.empty()) {
    throw std::invalid_argument("Simulator::read_bus: empty bus");
  }
  std::int64_t v = 0;
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    if (bus.bits[i] >= values_.size()) {
      throw std::invalid_argument("Simulator::read_bus: net out of range");
    }
    if (values_[bus.bits[i]]) v |= std::int64_t{1} << i;
  }
  const int w = bus.width();
  if (w < 64 && (v & (std::int64_t{1} << (w - 1)))) {
    v -= std::int64_t{1} << w;
  }
  return v;
}

void Simulator::reset() {
  values_.assign(values_.size(), 0);
}

}  // namespace dwt::rtl
