// Fault model and injection overlay for soft-error campaigns.
//
// Faults are applied as a sparse overlay on top of the zero-delay
// Simulator -- its hot eval()/step() loops are untouched; the injector
// re-settles the combinational cloud itself only while a fault is active.
// Semantics per kind:
//  * kSeuFlip      -- single-event upset: a DFF output bit flips right after
//                     the clock edge of the scheduled cycle; the corrupted
//                     state propagates at the next settle and is overwritten
//                     (or recirculated) by the following edge, exactly like a
//                     real FF upset.
//  * kGlitch       -- transient pulse: a net is forced to a value for the
//                     scheduled cycle only, in time to be captured by the
//                     registers clocked at the end of that cycle.
//  * kStuckAt0/1   -- permanent defect: the net is forced from the scheduled
//                     cycle onwards.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {

enum class FaultKind : std::uint8_t {
  kSeuFlip,   ///< bit flip in a DFF (target must be a DFF output net)
  kGlitch,    ///< transient forced value on any net, one cycle
  kStuckAt0,  ///< net forced to 0 from the scheduled cycle onwards
  kStuckAt1,  ///< net forced to 1 from the scheduled cycle onwards
};

[[nodiscard]] const char* to_string(FaultKind k);

struct Fault {
  FaultKind kind = FaultKind::kSeuFlip;
  NetId net = kNullNet;
  std::uint64_t cycle = 0;   ///< injection cycle (FaultInjector::step count)
  bool glitch_value = true;  ///< forced value for kGlitch
};

/// Wraps a Simulator with a fault overlay.  Exposes the same streaming
/// surface (set_bus / step / read_bus / value) so the hw stream runners can
/// drive a faulted design unchanged (hw::run_stream_faulty).
class FaultInjector {
 public:
  FaultInjector(const Netlist& nl, Simulator& sim);

  /// Schedules a fault.  Throws std::invalid_argument if the target net is
  /// out of range or an SEU targets a net not driven by a DFF.
  void arm(const Fault& f);

  /// Monitors a net (e.g. a parity error flag): `watch_triggered()` latches
  /// true if the net is ever high after a settle.
  void watch(NetId net);
  [[nodiscard]] bool watch_triggered() const { return watch_triggered_; }

  // Simulator-compatible streaming surface -------------------------------
  void set_bus(const Bus& bus, std::int64_t value) { sim_.set_bus(bus, value); }
  void set_input(NetId net, bool value) { sim_.set_input(net, value); }
  /// One clock cycle with the overlay applied: settle (with active forces
  /// pinned), sample watches, clock edge, then strike scheduled SEUs.
  void step();
  [[nodiscard]] std::int64_t read_bus(const Bus& bus) const {
    return sim_.read_bus(bus);
  }
  [[nodiscard]] bool value(NetId net) const { return sim_.value(net); }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  /// Number of armed faults whose scheduled cycle has been reached.
  [[nodiscard]] std::size_t faults_applied() const { return applied_; }

 private:
  void settle_with_pins();
  void sample_watches();

  const Netlist& nl_;
  Simulator& sim_;
  std::vector<CellId> topo_;
  std::vector<Fault> faults_;
  std::vector<std::uint8_t> fault_seen_;            // applied_ bookkeeping
  std::vector<std::pair<NetId, bool>> active_pins_;  // forces for this cycle
  std::vector<std::uint8_t> pinned_;                 // per-net scratch flag
  std::vector<NetId> watched_;
  bool watch_triggered_ = false;
  std::uint64_t cycle_ = 0;
  std::size_t applied_ = 0;
};

/// Deterministic fault-site enumeration for campaigns (index order follows
/// cell creation order, so a seeded Rng draws reproducible targets).
/// DFF output nets -- the SEU population.
[[nodiscard]] std::vector<NetId> seu_targets(const Netlist& nl);
/// Non-constant cell output nets -- the stuck-at population.
[[nodiscard]] std::vector<NetId> stuck_targets(const Netlist& nl);
/// Combinational (non-DFF, non-constant) cell outputs -- the glitch
/// population.
[[nodiscard]] std::vector<NetId> glitch_targets(const Netlist& nl);

}  // namespace dwt::rtl
