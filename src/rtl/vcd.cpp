#include "rtl/vcd.hpp"

#include <stdexcept>

namespace dwt::rtl {
namespace {

// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(const Netlist& nl, std::vector<NetId> traced,
                     const std::string& path)
    : nl_(nl), traced_(std::move(traced)), last_(traced_.size(), -1),
      out_(path) {
  if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
  out_ << "$timescale 1ns $end\n$scope module dwt $end\n";
  for (std::size_t i = 0; i < traced_.size(); ++i) {
    const Net& n = nl_.net(traced_[i]);
    std::string name = n.name.empty() ? "n" + std::to_string(traced_[i])
                                      : n.name;
    for (char& ch : name) {
      if (ch == ' ') ch = '_';
    }
    out_ << "$var wire 1 " << vcd_id(i) << " " << name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::sample(const Simulator& sim, std::uint64_t t) {
  out_ << "#" << t << "\n";
  for (std::size_t i = 0; i < traced_.size(); ++i) {
    const int v = sim.value(traced_[i]) ? 1 : 0;
    if (v != last_[i]) {
      out_ << v << vcd_id(i) << "\n";
      last_[i] = v;
    }
  }
}

}  // namespace dwt::rtl
