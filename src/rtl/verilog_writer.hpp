// Structural Verilog export of a netlist.  The paper argues structural
// descriptions are the portable starting point for ASIC targets; this writer
// lets every design elaborated in this library be handed to an external
// synthesis flow (it emits only plain primitive instantiations).
#pragma once

#include <ostream>
#include <string>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

/// Emits a synthesizable structural Verilog module.  Carry-chain cells are
/// emitted as plain full-adder assigns (the chain packing is an FPGA mapping
/// property, not a logical one).
void write_verilog(const Netlist& nl, const std::string& module_name,
                   std::ostream& os);

/// Convenience: render to a string.
[[nodiscard]] std::string to_verilog(const Netlist& nl,
                                     const std::string& module_name);

}  // namespace dwt::rtl
