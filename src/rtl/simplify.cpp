#include "rtl/simplify.hpp"

#include <stdexcept>
#include <vector>

namespace dwt::rtl {
namespace {

class Simplifier {
 public:
  explicit Simplifier(const Netlist& in) : in_(in) {}

  Netlist run() {
    in_.validate();
    remap_.assign(in_.net_count(), kNullNet);
    c0_ = out_.const0();
    c1_ = out_.const1();
    for (const NetId pi : in_.primary_inputs()) {
      remap_[pi] = out_.add_input(in_.net(pi).name);
    }
    // Constants are topological sources; pre-map them so any cell may
    // resolve them regardless of its position in the order.
    for (const Cell& c : in_.cells()) {
      if (c.kind == CellKind::kConst0) remap_[c.out] = c0_;
      if (c.kind == CellKind::kConst1) remap_[c.out] = c1_;
    }
    // DFB outputs are sequential sources: create them first with a
    // placeholder D input, patched after the combinational pass.
    std::vector<std::pair<CellId, CellId>> dff_patch;  // (old cell, new cell)
    for (CellId id = 0; id < in_.cells().size(); ++id) {
      const Cell& c = in_.cell(id);
      if (c.kind != CellKind::kDff) continue;
      const NetId q = out_.add_cell(CellKind::kDff, c0_, kNullNet, kNullNet,
                                    in_.net(c.out).name);
      remap_[c.out] = q;
      dff_patch.emplace_back(id, out_.net(q).driver);
    }
    for (const CellId id : in_.topo_order()) {
      map_comb_cell(in_.cell(id));
    }
    for (const auto& [old_id, new_id] : dff_patch) {
      out_.rewire_input(new_id, 0, resolve(in_.cell(old_id).in[0]));
    }
    for (const auto& [name, bus] : in_.outputs()) {
      Bus nb;
      nb.bits.reserve(bus.bits.size());
      for (const NetId b : bus.bits) nb.bits.push_back(resolve(b));
      out_.bind_output(name, std::move(nb));
    }
    out_.validate();
    return std::move(out_);
  }

 private:
  NetId resolve(NetId old) const {
    const NetId n = remap_[old];
    if (n == kNullNet) throw std::logic_error("simplify: unmapped net");
    return n;
  }

  NetId mk_not(NetId a, const std::string& name) {
    if (a == c0_) return c1_;
    if (a == c1_) return c0_;
    const CellId drv = out_.net(a).driver;
    if (drv != kNullCell && out_.cell(drv).kind == CellKind::kNot) {
      return out_.cell(drv).in[0];  // double inverter
    }
    return out_.add_cell(CellKind::kNot, a, kNullNet, kNullNet, name);
  }

  void map_comb_cell(const Cell& c) {
    const std::string& name = in_.net(c.out).name;
    NetId a = kNullNet, b = kNullNet, s = kNullNet;
    if (input_count(c.kind) > 0) a = resolve(c.in[0]);
    if (input_count(c.kind) > 1) b = resolve(c.in[1]);
    if (input_count(c.kind) > 2) s = resolve(c.in[2]);
    switch (c.kind) {
      case CellKind::kConst0: remap_[c.out] = c0_; return;
      case CellKind::kConst1: remap_[c.out] = c1_; return;
      case CellKind::kNot: remap_[c.out] = mk_not(a, name); return;
      case CellKind::kAnd2:
        if (a == c0_ || b == c0_) { remap_[c.out] = c0_; return; }
        if (a == c1_) { remap_[c.out] = b; return; }
        if (b == c1_ || a == b) { remap_[c.out] = a; return; }
        break;
      case CellKind::kOr2:
        if (a == c1_ || b == c1_) { remap_[c.out] = c1_; return; }
        if (a == c0_) { remap_[c.out] = b; return; }
        if (b == c0_ || a == b) { remap_[c.out] = a; return; }
        break;
      case CellKind::kXor2:
        if (a == b) { remap_[c.out] = c0_; return; }
        if (a == c0_) { remap_[c.out] = b; return; }
        if (b == c0_) { remap_[c.out] = a; return; }
        if (a == c1_) { remap_[c.out] = mk_not(b, name); return; }
        if (b == c1_) { remap_[c.out] = mk_not(a, name); return; }
        break;
      case CellKind::kMux2:
        if (s == c0_ || a == b) { remap_[c.out] = a; return; }
        if (s == c1_) { remap_[c.out] = b; return; }
        break;
      case CellKind::kAddSum:
      case CellKind::kAddCarry:
        // Adder structure is preserved verbatim (megacore semantics).
        if (c.chain_id >= 0) {
          remap_[c.out] = out_.add_chain_cell(c.kind, a, b, s, c.chain_id,
                                              c.chain_bit, name);
        } else {
          remap_[c.out] = out_.add_cell(c.kind, a, b, s, name);
        }
        if (c.cluster_id >= 0) out_.set_cluster(remap_[c.out], c.cluster_id);
        return;
      case CellKind::kDff:
        throw std::logic_error("simplify: DFF in combinational pass");
    }
    remap_[c.out] = out_.add_cell(c.kind, a, b, s, name);
    if (c.cluster_id >= 0) out_.set_cluster(remap_[c.out], c.cluster_id);
  }

  const Netlist& in_;
  Netlist out_;
  std::vector<NetId> remap_;
  NetId c0_ = kNullNet;
  NetId c1_ = kNullNet;
};

/// Removes cells with no path to an output port (dead-code sweep).
class Sweeper {
 public:
  explicit Sweeper(const Netlist& in) : in_(in) {}

  Netlist run() {
    // Mark live nets backwards from the outputs.
    std::vector<std::uint8_t> live(in_.net_count(), 0);
    std::vector<NetId> stack;
    for (const auto& [name, bus] : in_.outputs()) {
      (void)name;
      for (const NetId b : bus.bits) stack.push_back(b);
    }
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      if (live[n]) continue;
      live[n] = 1;
      const CellId d = in_.net(n).driver;
      if (d == kNullCell) continue;
      const Cell& c = in_.cell(d);
      for (int i = 0; i < input_count(c.kind); ++i) {
        stack.push_back(c.in[static_cast<std::size_t>(i)]);
      }
    }
    // Rebuild with live cells only (inputs are always preserved).
    remap_.assign(in_.net_count(), kNullNet);
    for (const NetId pi : in_.primary_inputs()) {
      remap_[pi] = out_.add_input(in_.net(pi).name);
    }
    std::vector<std::pair<CellId, CellId>> dff_patch;
    for (CellId id = 0; id < in_.cells().size(); ++id) {
      const Cell& c = in_.cell(id);
      if (c.kind != CellKind::kDff || !live[c.out]) continue;
      const NetId q = out_.add_cell(CellKind::kDff, out_.const0(), kNullNet,
                                    kNullNet, in_.net(c.out).name);
      remap_[c.out] = q;
      dff_patch.emplace_back(id, out_.net(q).driver);
    }
    for (const CellId id : in_.topo_order()) {
      const Cell& c = in_.cell(id);
      if (!live[c.out]) continue;
      if (c.kind == CellKind::kConst0) {
        remap_[c.out] = out_.const0();
        continue;
      }
      if (c.kind == CellKind::kConst1) {
        remap_[c.out] = out_.const1();
        continue;
      }
      NetId a = kNullNet, b = kNullNet, s = kNullNet;
      if (input_count(c.kind) > 0) a = remap_[c.in[0]];
      if (input_count(c.kind) > 1) b = remap_[c.in[1]];
      if (input_count(c.kind) > 2) s = remap_[c.in[2]];
      if (c.chain_id >= 0) {
        remap_[c.out] = out_.add_chain_cell(c.kind, a, b, s, c.chain_id,
                                            c.chain_bit, in_.net(c.out).name);
      } else {
        remap_[c.out] = out_.add_cell(c.kind, a, b, s, in_.net(c.out).name);
      }
      if (c.cluster_id >= 0) out_.set_cluster(remap_[c.out], c.cluster_id);
    }
    for (const auto& [old_id, new_id] : dff_patch) {
      out_.rewire_input(new_id, 0, remap_[in_.cell(old_id).in[0]]);
    }
    for (const auto& [name, bus] : in_.outputs()) {
      Bus nb;
      nb.bits.reserve(bus.bits.size());
      for (const NetId b : bus.bits) nb.bits.push_back(remap_[b]);
      out_.bind_output(name, std::move(nb));
    }
    out_.validate();
    return std::move(out_);
  }

 private:
  const Netlist& in_;
  Netlist out_;
  std::vector<NetId> remap_;
};

}  // namespace

Netlist simplify(const Netlist& in) {
  const Netlist folded = Simplifier(in).run();
  return Sweeper(folded).run();
}

}  // namespace dwt::rtl
