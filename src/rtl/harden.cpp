#include "rtl/harden.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dwt::rtl {
namespace {

/// Identity clone of the combinational cloud: resolves cell inputs through
/// `remap`, preserving chain tags and placement clusters.  DFBs must already
/// be pre-mapped by the caller (they are sequential sources).
void clone_comb_cells(const Netlist& in, Netlist& out,
                      std::vector<NetId>& remap) {
  for (const CellId id : in.topo_order()) {
    const Cell& c = in.cell(id);
    if (c.kind == CellKind::kConst0) {
      remap[c.out] = out.const0();
      continue;
    }
    if (c.kind == CellKind::kConst1) {
      remap[c.out] = out.const1();
      continue;
    }
    NetId a = kNullNet, b = kNullNet, s = kNullNet;
    if (input_count(c.kind) > 0) a = remap[c.in[0]];
    if (input_count(c.kind) > 1) b = remap[c.in[1]];
    if (input_count(c.kind) > 2) s = remap[c.in[2]];
    if (c.chain_id >= 0) {
      remap[c.out] = out.add_chain_cell(c.kind, a, b, s, c.chain_id,
                                        c.chain_bit, in.net(c.out).name);
    } else {
      remap[c.out] = out.add_cell(c.kind, a, b, s, in.net(c.out).name);
    }
    if (c.cluster_id >= 0) out.set_cluster(remap[c.out], c.cluster_id);
  }
}

void bind_cloned_outputs(const Netlist& in, Netlist& out,
                         const std::vector<NetId>& remap) {
  for (const auto& [name, bus] : in.outputs()) {
    Bus nb;
    nb.bits.reserve(bus.bits.size());
    for (const NetId b : bus.bits) nb.bits.push_back(remap[b]);
    out.bind_output(name, std::move(nb));
  }
}

/// Balanced XOR reduction; requires a non-empty list.
NetId xor_tree(Netlist& out, std::vector<NetId> nets, const std::string& name,
               std::size_t* gates) {
  if (nets.empty()) throw std::logic_error("xor_tree: empty");
  int level = 0;
  while (nets.size() > 1) {
    std::vector<NetId> next;
    next.reserve((nets.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < nets.size(); i += 2) {
      next.push_back(out.add_cell(
          CellKind::kXor2, nets[i], nets[i + 1], kNullNet,
          name + ".x" + std::to_string(level) + "_" + std::to_string(i / 2)));
      if (gates) ++*gates;
    }
    if (nets.size() % 2 != 0) next.push_back(nets.back());
    nets = std::move(next);
    ++level;
  }
  return nets.front();
}

/// Register-bank key for a DFF output net: "acc[3]" -> "acc".
std::string group_key(const std::string& net_name) {
  const std::size_t open = net_name.rfind('[');
  if (open != std::string::npos && net_name.back() == ']' && open > 0) {
    return net_name.substr(0, open);
  }
  return net_name.empty() ? std::string("regs") : net_name;
}

}  // namespace

const char* to_string(HardeningStyle s) {
  switch (s) {
    case HardeningStyle::kNone: return "none";
    case HardeningStyle::kTmr: return "tmr";
    case HardeningStyle::kParity: return "parity";
  }
  return "?";
}

Netlist apply_tmr(const Netlist& in, HardeningReport* report) {
  in.validate();
  Netlist out;
  std::vector<NetId> remap(in.net_count(), kNullNet);
  for (const NetId pi : in.primary_inputs()) {
    remap[pi] = out.add_input(in.net(pi).name);
  }
  HardeningReport rep;
  // Replicate every DFF three ways and vote.  The voter output takes the
  // original Q name, so downstream loads, output ports and waveform probes
  // all see the voted (masked) value.
  struct Replica {
    CellId old_cell;
    CellId new_cells[3];
  };
  std::vector<Replica> dffs;
  const NetId c0 = out.const0();
  for (CellId id = 0; id < in.cells().size(); ++id) {
    const Cell& c = in.cell(id);
    if (c.kind != CellKind::kDff) continue;
    const std::string& q_name = in.net(c.out).name;
    Replica r;
    r.old_cell = id;
    NetId q[3];
    for (int k = 0; k < 3; ++k) {
      q[k] = out.add_cell(CellKind::kDff, c0, kNullNet, kNullNet,
                          q_name + ".tmr" + std::to_string(k));
      r.new_cells[k] = out.net(q[k]).driver;
    }
    // majority(q0, q1, q2) = (q0&q1) | (q0&q2) | (q1&q2)
    const NetId ab =
        out.add_cell(CellKind::kAnd2, q[0], q[1], kNullNet, q_name + ".vab");
    const NetId ac =
        out.add_cell(CellKind::kAnd2, q[0], q[2], kNullNet, q_name + ".vac");
    const NetId bc =
        out.add_cell(CellKind::kAnd2, q[1], q[2], kNullNet, q_name + ".vbc");
    const NetId o1 =
        out.add_cell(CellKind::kOr2, ab, ac, kNullNet, q_name + ".vor");
    remap[c.out] = out.add_cell(CellKind::kOr2, o1, bc, kNullNet, q_name);
    dffs.push_back(r);
    ++rep.protected_ffs;
    rep.added_ffs += 2;
    rep.added_gates += 5;
  }
  clone_comb_cells(in, out, remap);
  for (const Replica& r : dffs) {
    const NetId d = remap[in.cell(r.old_cell).in[0]];
    for (const CellId nc : r.new_cells) out.rewire_input(nc, 0, d);
  }
  bind_cloned_outputs(in, out, remap);
  out.validate();
  if (report) *report = rep;
  return out;
}

Netlist apply_parity(const Netlist& in, HardeningReport* report) {
  in.validate();
  Netlist out;
  std::vector<NetId> remap(in.net_count(), kNullNet);
  for (const NetId pi : in.primary_inputs()) {
    remap[pi] = out.add_input(in.net(pi).name);
  }
  HardeningReport rep;
  const NetId c0 = out.const0();
  // One-to-one DFF clone (placeholder D, patched after the comb pass),
  // grouped into words by register-bank name.
  std::vector<std::pair<CellId, CellId>> dff_patch;  // (old cell, new cell)
  std::map<std::string, std::vector<CellId>> groups;  // key -> old DFF cells
  for (CellId id = 0; id < in.cells().size(); ++id) {
    const Cell& c = in.cell(id);
    if (c.kind != CellKind::kDff) continue;
    const NetId q = out.add_cell(CellKind::kDff, c0, kNullNet, kNullNet,
                                 in.net(c.out).name);
    remap[c.out] = q;
    dff_patch.emplace_back(id, out.net(q).driver);
    groups[group_key(in.net(c.out).name)].push_back(id);
    ++rep.protected_ffs;
  }
  clone_comb_cells(in, out, remap);
  for (const auto& [old_id, new_id] : dff_patch) {
    out.rewire_input(new_id, 0, remap[in.cell(old_id).in[0]]);
  }
  // Per word: predicted parity (XOR of the D cone, registered alongside the
  // data) checked against the actual parity of the stored word.
  std::vector<NetId> mismatches;
  for (const auto& [key, members] : groups) {
    std::vector<NetId> d_nets;
    std::vector<NetId> q_nets;
    for (const CellId id : members) {
      d_nets.push_back(remap[in.cell(id).in[0]]);
      q_nets.push_back(remap[in.cell(id).out]);
    }
    const NetId par_d = xor_tree(out, d_nets, key + ".pgen", &rep.added_gates);
    const NetId par_q = out.add_cell(CellKind::kDff, par_d, kNullNet, kNullNet,
                                     key + ".par");
    q_nets.push_back(par_q);
    mismatches.push_back(
        xor_tree(out, q_nets, key + ".pchk", &rep.added_gates));
    ++rep.added_ffs;
    ++rep.parity_groups;
  }
  // OR-reduce the per-word mismatch bits into the error flag port.
  NetId flag;
  if (mismatches.empty()) {
    flag = out.const0();
  } else {
    int level = 0;
    while (mismatches.size() > 1) {
      std::vector<NetId> next;
      next.reserve((mismatches.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < mismatches.size(); i += 2) {
        next.push_back(out.add_cell(CellKind::kOr2, mismatches[i],
                                    mismatches[i + 1], kNullNet,
                                    "par_err.o" + std::to_string(level) + "_" +
                                        std::to_string(i / 2)));
        ++rep.added_gates;
      }
      if (mismatches.size() % 2 != 0) next.push_back(mismatches.back());
      mismatches = std::move(next);
      ++level;
    }
    flag = mismatches.front();
  }
  bind_cloned_outputs(in, out, remap);
  out.bind_output(kErrorFlagPort, Bus{{flag}});
  out.validate();
  if (report) *report = rep;
  return out;
}

Netlist apply_hardening(const Netlist& in, HardeningStyle style,
                        HardeningReport* report) {
  switch (style) {
    case HardeningStyle::kNone: {
      if (report) *report = HardeningReport{};
      in.validate();
      return in;  // copy
    }
    case HardeningStyle::kTmr: return apply_tmr(in, report);
    case HardeningStyle::kParity: return apply_parity(in, report);
  }
  throw std::invalid_argument("apply_hardening: unknown style");
}

}  // namespace dwt::rtl
