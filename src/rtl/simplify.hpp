// Pre-mapping netlist cleanup: constant folding and trivial-gate removal,
// modeling what a synthesis tool does before technology mapping.  Carry-chain
// adder cells are deliberately NOT folded -- a megacore-style adder keeps its
// full structure even when some inputs are tied off, which is exactly why the
// paper's design 1 (generic multipliers) stays large.
#pragma once

#include "rtl/netlist.hpp"

namespace dwt::rtl {

/// Returns a functionally equivalent netlist with:
///  * gates with constant inputs folded (and(x,0)=0, xor(x,0)=x, ...),
///  * double inverters removed,
///  * gates with identical inputs folded (and(x,x)=x, xor(x,x)=0, ...).
/// Primary inputs and output port names/widths are preserved.
[[nodiscard]] Netlist simplify(const Netlist& in);

}  // namespace dwt::rtl
