#include "rtl/netlist.hpp"

#include <stdexcept>

namespace dwt::rtl {

const char* to_string(CellKind k) {
  switch (k) {
    case CellKind::kConst0: return "const0";
    case CellKind::kConst1: return "const1";
    case CellKind::kNot: return "not";
    case CellKind::kAnd2: return "and2";
    case CellKind::kOr2: return "or2";
    case CellKind::kXor2: return "xor2";
    case CellKind::kMux2: return "mux2";
    case CellKind::kAddSum: return "add_sum";
    case CellKind::kAddCarry: return "add_carry";
    case CellKind::kDff: return "dff";
  }
  return "?";
}

NetId Netlist::new_net(std::string name) {
  nets_.push_back(Net{std::move(name), kNullCell, false});
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::add_input(std::string name) {
  const NetId id = new_net(std::move(name));
  nets_[id].is_primary_input = true;
  primary_inputs_.push_back(id);
  return id;
}

Bus Netlist::add_input_bus(const std::string& name, int width) {
  if (width <= 0) throw std::invalid_argument("add_input_bus: width <= 0");
  Bus bus;
  bus.bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.bits.push_back(add_input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

NetId Netlist::add_cell(CellKind kind, NetId a, NetId b, NetId c,
                        std::string name) {
  Cell cell;
  cell.kind = kind;
  cell.in = {a, b, c};
  cell.out = new_net(std::move(name));
  cells_.push_back(cell);
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  nets_[cell.out].driver = id;
  return cell.out;
}

NetId Netlist::add_chain_cell(CellKind kind, NetId a, NetId b, NetId cin,
                              std::int32_t chain, std::int32_t bit,
                              std::string name) {
  if (kind != CellKind::kAddSum && kind != CellKind::kAddCarry) {
    throw std::invalid_argument("add_chain_cell: kind must be add_sum/carry");
  }
  const NetId out = add_cell(kind, a, b, cin, std::move(name));
  cells_.back().chain_id = chain;
  cells_.back().chain_bit = bit;
  if (chain >= next_chain_id_) next_chain_id_ = chain + 1;
  return out;
}

NetId Netlist::const0() {
  if (const0_ == kNullNet) const0_ = add_cell(CellKind::kConst0, kNullNet,
                                              kNullNet, kNullNet, "const0");
  return const0_;
}

NetId Netlist::const1() {
  if (const1_ == kNullNet) const1_ = add_cell(CellKind::kConst1, kNullNet,
                                              kNullNet, kNullNet, "const1");
  return const1_;
}

void Netlist::set_cluster(NetId net, std::int32_t cluster) {
  if (net >= nets_.size() || nets_[net].driver == kNullCell) {
    throw std::invalid_argument("Netlist::set_cluster: net has no driver");
  }
  cells_[nets_[net].driver].cluster_id = cluster;
  if (cluster >= next_cluster_id_) next_cluster_id_ = cluster + 1;
}

void Netlist::rewire_input(CellId cell, int pos, NetId net) {
  if (cell >= cells_.size() || pos < 0 ||
      pos >= input_count(cells_[cell].kind) || net >= nets_.size()) {
    throw std::invalid_argument("Netlist::rewire_input: bad arguments");
  }
  cells_[cell].in[static_cast<std::size_t>(pos)] = net;
}

void Netlist::bind_output(const std::string& name, Bus bus) {
  if (bus.bits.empty()) throw std::invalid_argument("bind_output: empty bus");
  for (NetId n : bus.bits) {
    if (n >= nets_.size()) throw std::out_of_range("bind_output: bad net");
  }
  outputs_[name] = std::move(bus);
}

const Bus& Netlist::output(const std::string& name) const {
  const auto it = outputs_.find(name);
  if (it == outputs_.end()) {
    throw std::out_of_range("Netlist::output: no port named " + name);
  }
  return it->second;
}

Bus Netlist::find_input_bus(const std::string& prefix) const {
  Bus bus;
  for (std::size_t i = 0;; ++i) {
    const std::string name = prefix + "[" + std::to_string(i) + "]";
    NetId found = kNullNet;
    for (const NetId pi : primary_inputs_) {
      if (nets_[pi].name == name) {
        found = pi;
        break;
      }
    }
    if (found == kNullNet) break;
    bus.bits.push_back(found);
  }
  if (bus.bits.empty()) {
    throw std::out_of_range("Netlist::find_input_bus: no input named " +
                            prefix);
  }
  return bus;
}

std::size_t Netlist::count_kind(CellKind k) const {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    if (c.kind == k) ++n;
  }
  return n;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> fanout(nets_.size(), 0);
  for (const Cell& c : cells_) {
    for (int i = 0; i < input_count(c.kind); ++i) {
      if (c.in[static_cast<std::size_t>(i)] != kNullNet) {
        ++fanout[c.in[static_cast<std::size_t>(i)]];
      }
    }
  }
  return fanout;
}

std::vector<CellId> Netlist::topo_order() const {
  // Kahn's algorithm over combinational cells; DFFs are sequential sinks.
  std::vector<std::uint32_t> pending(cells_.size(), 0);
  std::vector<std::vector<CellId>> net_loads(nets_.size());
  std::vector<CellId> ready;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    if (c.kind == CellKind::kDff) continue;
    std::uint32_t deps = 0;
    for (int i = 0; i < input_count(c.kind); ++i) {
      const NetId in = c.in[static_cast<std::size_t>(i)];
      const Net& n = nets_[in];
      if (n.is_primary_input) continue;
      const Cell& drv = cells_[n.driver];
      if (drv.kind == CellKind::kDff) continue;  // sequential source
      net_loads[in].push_back(id);
      ++deps;
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }
  std::vector<CellId> order;
  order.reserve(cells_.size());
  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const CellId load : net_loads[cells_[id].out]) {
      if (--pending[load] == 0) ready.push_back(load);
    }
  }
  std::size_t comb_cells = 0;
  for (const Cell& c : cells_) {
    if (c.kind != CellKind::kDff) ++comb_cells;
  }
  if (order.size() != comb_cells) {
    throw std::logic_error("Netlist::topo_order: combinational cycle");
  }
  return order;
}

void Netlist::validate() const {
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    for (int i = 0; i < input_count(c.kind); ++i) {
      const NetId in = c.in[static_cast<std::size_t>(i)];
      if (in == kNullNet || in >= nets_.size()) {
        throw std::logic_error("Netlist::validate: unwired input on cell " +
                               std::to_string(id));
      }
      if (!nets_[in].is_primary_input && nets_[in].driver == kNullCell) {
        throw std::logic_error("Netlist::validate: undriven net feeding cell " +
                               std::to_string(id));
      }
    }
    if (c.out == kNullNet || nets_[c.out].driver != id) {
      throw std::logic_error("Netlist::validate: bad output wiring on cell " +
                             std::to_string(id));
    }
    if ((c.kind == CellKind::kAddSum || c.kind == CellKind::kAddCarry)) {
      if (c.chain_id >= 0 && c.chain_bit < 0) {
        throw std::logic_error("Netlist::validate: chain cell without bit");
      }
    } else if (c.chain_id >= 0) {
      throw std::logic_error("Netlist::validate: chain tag on non-adder cell");
    }
  }
  for (const auto& [name, bus] : outputs_) {
    for (NetId n : bus.bits) {
      if (n >= nets_.size() ||
          (!nets_[n].is_primary_input && nets_[n].driver == kNullCell)) {
        throw std::logic_error("Netlist::validate: undriven output " + name);
      }
    }
  }
  (void)topo_order();  // throws on combinational cycles
}

}  // namespace dwt::rtl
