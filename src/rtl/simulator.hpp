// Zero-delay (levelized) cycle-accurate simulator: evaluates the
// combinational cloud in topological order, then advances all DFFs on
// step().  Used for functional (bit-true) verification of the hardware
// designs against the software fixed-point model.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Drives a primary input (before eval/step).
  void set_input(NetId net, bool value);
  /// Drives an input bus with a signed value (two's complement, LSB first).
  void set_bus(const Bus& bus, std::int64_t value);

  /// Settles the combinational logic for the current inputs/state.
  void eval();

  /// eval() then clock edge: every DFF output takes its D value.
  void step();

  [[nodiscard]] bool value(NetId net) const { return values_[net] != 0; }
  /// Reads a bus as a signed two's complement integer.
  [[nodiscard]] std::int64_t read_bus(const Bus& bus) const;

  /// Resets all state and nets to 0.
  void reset();

 private:
  [[nodiscard]] bool eval_cell(const Cell& c) const;

  const Netlist& nl_;
  std::vector<CellId> topo_;
  std::vector<std::uint8_t> values_;  // per net
};

}  // namespace dwt::rtl
