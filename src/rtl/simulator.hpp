// Zero-delay (levelized) cycle-accurate simulator: evaluates the
// combinational cloud in topological order, then advances all DFFs on
// step().  Used for functional (bit-true) verification of the hardware
// designs against the software fixed-point model.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Drives a primary input (before eval/step).
  void set_input(NetId net, bool value);
  /// Drives an input bus with a signed value (two's complement, LSB first).
  void set_bus(const Bus& bus, std::int64_t value);

  /// Settles the combinational logic for the current inputs/state.
  void eval();

  /// eval() then clock_edge().
  void step();

  /// Clock edge only: every DFF output takes its currently settled D value
  /// (two-phase, race-free).  Exposed separately so fault-injection overlays
  /// can corrupt state between the edge and the next settle.
  void clock_edge();

  /// Raw overwrite of any net's current value, bypassing the drive rules.
  /// This is the fault-injection hook: it does NOT propagate -- callers
  /// re-settle downstream logic themselves (see rtl::FaultInjector).
  void poke(NetId net, bool value);

  /// Combinational function of one cell under the current net values.
  /// Throws std::logic_error for DFFs (they are sequential, not evaluated).
  [[nodiscard]] bool eval_cell(const Cell& c) const;

  [[nodiscard]] bool value(NetId net) const { return values_[net] != 0; }
  /// Reads a bus as a signed two's complement integer.  Throws
  /// std::invalid_argument on an empty bus or an out-of-range NetId.
  [[nodiscard]] std::int64_t read_bus(const Bus& bus) const;

  /// Resets all state and nets to 0.
  void reset();

 private:
  const Netlist& nl_;
  std::vector<CellId> topo_;
  std::vector<std::pair<NetId, NetId>> dffs_;  // (Q net, D net) per DFF
  std::vector<std::uint8_t> values_;           // per net
  std::vector<std::uint8_t> dff_scratch_;      // sampled D values per edge
};

}  // namespace dwt::rtl
