// The single generator seam behind which every adder architecture lives.
// Builder::add/sub forward here; new architectures are added by extending
// the switch in build_adder.cpp, and every datapath, hardening transform,
// tape compiler, technology mapper and campaign engine downstream consumes
// the resulting netlists unchanged.
#pragma once

#include <string>

#include "rtl/adder_arch.hpp"
#include "rtl/netlist.hpp"

namespace dwt::rtl {

class Builder;

/// Signed a + b, result sized to `out_width` (exact modulo 2^out_width).
/// The carry-chain architecture emits kAddSum/kAddCarry chain cells (one LE
/// per bit on the APEX carry chain); every other architecture is a plain
/// gate netlist sharing one placement cluster.
[[nodiscard]] Bus build_adder(Builder& builder, const Bus& a, const Bus& b,
                              AdderArch arch, int out_width,
                              const std::string& name = {});

/// Signed a - b: b is inverted bitwise and the carry-in forced to 1,
/// completing the two's complement, then the same architecture family
/// produces the sum.
[[nodiscard]] Bus build_subtractor(Builder& builder, const Bus& a,
                                   const Bus& b, AdderArch arch, int out_width,
                                   const std::string& name = {});

}  // namespace dwt::rtl
