#include "rtl/fault.hpp"

#include <stdexcept>
#include <string>

namespace dwt::rtl {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kSeuFlip: return "seu";
    case FaultKind::kGlitch: return "glitch";
    case FaultKind::kStuckAt0: return "sa0";
    case FaultKind::kStuckAt1: return "sa1";
  }
  return "?";
}

FaultInjector::FaultInjector(const Netlist& nl, Simulator& sim)
    : nl_(nl), sim_(sim), topo_(nl.topo_order()), pinned_(nl.net_count(), 0) {}

void FaultInjector::arm(const Fault& f) {
  if (f.net >= nl_.net_count()) {
    throw std::invalid_argument("FaultInjector::arm: net out of range");
  }
  if (f.kind == FaultKind::kSeuFlip) {
    const CellId drv = nl_.net(f.net).driver;
    if (drv == kNullCell || nl_.cell(drv).kind != CellKind::kDff) {
      throw std::invalid_argument(
          "FaultInjector::arm: SEU target is not a DFF output: " +
          nl_.net(f.net).name);
    }
  }
  faults_.push_back(f);
  fault_seen_.push_back(0);
}

void FaultInjector::watch(NetId net) {
  if (net >= nl_.net_count()) {
    throw std::invalid_argument("FaultInjector::watch: net out of range");
  }
  watched_.push_back(net);
}

void FaultInjector::settle_with_pins() {
  for (const auto& [net, v] : active_pins_) {
    pinned_[net] = 1;
    sim_.poke(net, v);
  }
  // One extra dependency-ordered pass with the forced nets held: every
  // un-pinned combinational output is recomputed, so downstream logic (and
  // the DFF D inputs about to be sampled) see the forced values.
  for (const CellId id : topo_) {
    const Cell& c = nl_.cell(id);
    if (!pinned_[c.out]) sim_.poke(c.out, sim_.eval_cell(c));
  }
  for (const auto& [net, v] : active_pins_) pinned_[net] = 0;
}

void FaultInjector::sample_watches() {
  for (const NetId n : watched_) {
    if (sim_.value(n)) {
      watch_triggered_ = true;
      return;
    }
  }
}

void FaultInjector::step() {
  // Collect the forces active during this cycle's settle.
  active_pins_.clear();
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const Fault& f = faults_[i];
    bool active = false;
    bool value = false;
    switch (f.kind) {
      case FaultKind::kGlitch:
        active = f.cycle == cycle_;
        value = f.glitch_value;
        break;
      case FaultKind::kStuckAt0:
        active = cycle_ >= f.cycle;
        value = false;
        break;
      case FaultKind::kStuckAt1:
        active = cycle_ >= f.cycle;
        value = true;
        break;
      case FaultKind::kSeuFlip:
        break;  // struck after the edge, below
    }
    if (active) {
      active_pins_.emplace_back(f.net, value);
      if (!fault_seen_[i]) {
        fault_seen_[i] = 1;
        ++applied_;
      }
    }
  }
  sim_.eval();
  if (!active_pins_.empty()) settle_with_pins();
  sample_watches();
  sim_.clock_edge();
  // SEUs strike the freshly clocked state: the flip is visible to reads now
  // and propagates through the combinational cloud at the next settle, until
  // the following edge rewrites the FF.
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const Fault& f = faults_[i];
    if (f.kind == FaultKind::kSeuFlip && f.cycle == cycle_) {
      sim_.poke(f.net, !sim_.value(f.net));
      if (!fault_seen_[i]) {
        fault_seen_[i] = 1;
        ++applied_;
      }
    }
  }
  ++cycle_;
}

std::vector<NetId> seu_targets(const Netlist& nl) {
  std::vector<NetId> out;
  for (const Cell& c : nl.cells()) {
    if (c.kind == CellKind::kDff) out.push_back(c.out);
  }
  return out;
}

std::vector<NetId> stuck_targets(const Netlist& nl) {
  std::vector<NetId> out;
  for (const Cell& c : nl.cells()) {
    if (c.kind != CellKind::kConst0 && c.kind != CellKind::kConst1) {
      out.push_back(c.out);
    }
  }
  return out;
}

std::vector<NetId> glitch_targets(const Netlist& nl) {
  std::vector<NetId> out;
  for (const Cell& c : nl.cells()) {
    if (c.kind != CellKind::kConst0 && c.kind != CellKind::kConst1 &&
        c.kind != CellKind::kDff) {
      out.push_back(c.out);
    }
  }
  return out;
}

}  // namespace dwt::rtl
