// Pipeline bookkeeping for the "pipelined operators" designs (paper section
// 3.3/3.5): a Word couples a bus with its statically analyzed value range
// (for bit-width sizing, paper section 3.1) and its pipeline depth (for
// automatic shim-register insertion when converging paths have different
// latencies).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/interval.hpp"
#include "rtl/builder.hpp"

namespace dwt::rtl {

/// A signed word travelling through the datapath.
struct Word {
  Bus bus;
  common::Interval range;  ///< guaranteed value range (sizes the bus)
  int depth = 0;           ///< pipeline stage at which the value is valid
};

/// Inserts pipeline registers when enabled.  When disabled (designs 1, 2 and
/// 4) arithmetic stays combinational inside a stage and only the explicit
/// stage registers of the 8-stage skeleton are created.
class Pipeliner {
 public:
  /// `granularity`: in pipelined mode, register every Nth operator-internal
  /// cut (1 = the paper's one-sum-per-stage; larger values explore the space
  /// between the flat designs and the fully pipelined ones).
  Pipeliner(Builder& builder, bool enabled, int granularity = 1)
      : builder_(builder), enabled_(enabled), granularity_(granularity) {
    if (granularity < 1) {
      throw std::invalid_argument("Pipeliner: granularity < 1");
    }
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] Builder& builder() { return builder_; }

  /// Registers a value unconditionally (explicit stage boundary).
  [[nodiscard]] Word stage(const Word& w, const std::string& name);

  /// Registers a value only in pipelined mode (operator-internal cut).
  [[nodiscard]] Word cut(const Word& w, const std::string& name);

  /// Delays `w` until `target_depth` with shim registers.
  [[nodiscard]] Word align_to(const Word& w, int target_depth,
                              const std::string& name);

  /// Makes both words valid at the same depth (delays the shallower one).
  void align(Word& a, Word& b, const std::string& name);

 private:
  /// One-cycle delay with sharing: delaying the same bus twice reuses the
  /// same registers (resource sharing, as a synthesis tool would).
  [[nodiscard]] Bus delay_shared(const Bus& b, const std::string& name);

  Builder& builder_;
  bool enabled_;
  int granularity_;
  int cut_counter_ = 0;
  std::map<std::vector<NetId>, Bus> delay_cache_;
};

/// Width needed for a word's range.
[[nodiscard]] int width_for(const common::Interval& range);

/// Structural helpers; all widths derive from interval analysis.
[[nodiscard]] Word word_input(Netlist& nl, const std::string& name, int bits);
[[nodiscard]] Word word_shl(Builder& b, const Word& w, int k);
[[nodiscard]] Word word_asr(Builder& b, const Word& w, int k);
[[nodiscard]] Word word_add(Pipeliner& p, const Word& a, const Word& b,
                            AdderStyle style, const std::string& name);
[[nodiscard]] Word word_sub(Pipeliner& p, const Word& a, const Word& b,
                            AdderStyle style, const std::string& name);

}  // namespace dwt::rtl
