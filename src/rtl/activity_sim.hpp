// Event-driven unit-delay simulator with per-net transition counting.  This
// is the power-estimation engine: unlike the zero-delay simulator it counts
// *every* transition, including the glitches that ripple through long
// combinational cones.  Pipelining shortens those cones, which is the
// physical mechanism behind the paper's observation that the pipelined
// designs 3 and 5 need less power at the same clock frequency.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

struct ActivityStats {
  std::uint64_t cycles = 0;
  std::vector<std::uint64_t> toggles;  ///< per net, summed over all cycles
  std::uint64_t total_toggles = 0;

  /// Mean transitions per cycle on net `n`.
  [[nodiscard]] double rate(NetId n) const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(toggles[n]) /
                             static_cast<double>(cycles);
  }
};

class ActivitySim {
 public:
  explicit ActivitySim(const Netlist& nl);

  /// Schedules input values to be applied at the next cycle() boundary.
  void set_input(NetId net, bool value);
  void set_bus(const Bus& bus, std::int64_t value);

  /// Advances one clock cycle: DFFs capture the previous cycle's settled
  /// D values, scheduled inputs are applied, and the combinational logic
  /// settles under a unit-delay model while transitions are counted.
  void cycle();

  /// SEU overlay for power workloads: forces `net` to the opposite of its
  /// current value and lets the change ripple through the combinational
  /// cloud, transition-counted like any other event.  Call between cycles.
  void inject_flip(NetId net);

  [[nodiscard]] bool value(NetId net) const { return values_[net] != 0; }
  /// Throws std::invalid_argument on an empty bus or out-of-range NetId.
  [[nodiscard]] std::int64_t read_bus(const Bus& bus) const;

  [[nodiscard]] const ActivityStats& stats() const { return stats_; }
  void reset_stats();

 private:
  [[nodiscard]] bool eval_cell(const Cell& c) const;
  void bump(NetId net, bool new_value, std::vector<CellId>& frontier);
  void settle(std::vector<CellId>& frontier);

  const Netlist& nl_;
  std::vector<std::uint8_t> values_;
  std::vector<std::pair<NetId, std::uint8_t>> pending_inputs_;
  std::vector<std::vector<CellId>> loads_;   // net -> combinational load cells
  std::vector<std::uint8_t> in_frontier_;    // per cell dedup flag
  ActivityStats stats_;
};

}  // namespace dwt::rtl
