#include "rtl/activity_sim.hpp"

#include <stdexcept>

namespace dwt::rtl {

ActivitySim::ActivitySim(const Netlist& nl)
    : nl_(nl),
      values_(nl.net_count(), 0),
      loads_(nl.net_count()),
      in_frontier_(nl.cell_count(), 0) {
  (void)nl.topo_order();  // reject combinational cycles up front
  for (CellId id = 0; id < nl.cells().size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kDff) continue;  // DFFs sample, they don't react
    for (int i = 0; i < input_count(c.kind); ++i) {
      loads_[c.in[static_cast<std::size_t>(i)]].push_back(id);
    }
  }
  stats_.toggles.assign(nl.net_count(), 0);
  // Establish a consistent initial state: constants first, then settle the
  // whole combinational cloud once (e.g. inverters of 0 rest at 1).
  for (CellId id = 0; id < nl.cells().size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kConst1) values_[c.out] = 1;
  }
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    values_[c.out] = eval_cell(c) ? 1 : 0;
  }
  reset_stats();
}

void ActivitySim::set_input(NetId net, bool value) {
  if (net >= values_.size() || !nl_.net(net).is_primary_input) {
    throw std::invalid_argument("ActivitySim::set_input: not a primary input");
  }
  pending_inputs_.emplace_back(net, value ? 1 : 0);
}

void ActivitySim::set_bus(const Bus& bus, std::int64_t value) {
  if (bus.bits.empty()) {
    throw std::invalid_argument("ActivitySim::set_bus: empty bus");
  }
  const int w = bus.width();
  if (w < 64) {
    const std::int64_t lo = -(std::int64_t{1} << (w - 1));
    const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
    if (value < lo || value > hi) {
      throw std::invalid_argument("ActivitySim::set_bus: value does not fit");
    }
  }
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    set_input(bus.bits[i], ((value >> i) & 1) != 0);
  }
}

bool ActivitySim::eval_cell(const Cell& c) const {
  const auto in = [&](int i) {
    return values_[c.in[static_cast<std::size_t>(i)]] != 0;
  };
  switch (c.kind) {
    case CellKind::kConst0: return false;
    case CellKind::kConst1: return true;
    case CellKind::kNot: return !in(0);
    case CellKind::kAnd2: return in(0) && in(1);
    case CellKind::kOr2: return in(0) || in(1);
    case CellKind::kXor2: return in(0) != in(1);
    case CellKind::kMux2: return in(2) ? in(1) : in(0);
    case CellKind::kAddSum: return (in(0) != in(1)) != in(2);
    case CellKind::kAddCarry:
      return (in(0) && in(1)) || (in(2) && (in(0) != in(1)));
    case CellKind::kDff:
      throw std::logic_error("ActivitySim: DFF evaluated as combinational");
  }
  return false;
}

void ActivitySim::bump(NetId net, bool new_value,
                       std::vector<CellId>& frontier) {
  const std::uint8_t nv = new_value ? 1 : 0;
  if (values_[net] == nv) return;
  values_[net] = nv;
  ++stats_.toggles[net];
  ++stats_.total_toggles;
  for (const CellId load : loads_[net]) {
    if (!in_frontier_[load]) {
      in_frontier_[load] = 1;
      frontier.push_back(load);
    }
  }
}

void ActivitySim::settle(std::vector<CellId>& frontier) {
  std::size_t guard = 0;
  const std::size_t guard_limit = (nl_.cell_count() + 2) * 64;
  while (!frontier.empty()) {
    std::vector<CellId> next;
    for (const CellId id : frontier) in_frontier_[id] = 0;
    for (const CellId id : frontier) {
      const Cell& c = nl_.cell(id);
      bump(c.out, eval_cell(c), next);
    }
    frontier = std::move(next);
    if (++guard > guard_limit) {
      throw std::logic_error("ActivitySim::cycle: failed to settle");
    }
  }
}

void ActivitySim::inject_flip(NetId net) {
  if (net >= values_.size()) {
    throw std::invalid_argument("ActivitySim::inject_flip: net out of range");
  }
  std::vector<CellId> frontier;
  bump(net, values_[net] == 0, frontier);
  settle(frontier);
}

void ActivitySim::cycle() {
  // 1. Scheduled primary-input changes take effect and propagate (they are
  //    the upstream registers' outputs, clocked by the same edge).
  std::vector<CellId> frontier;
  for (const auto& [net, v] : pending_inputs_) bump(net, v != 0, frontier);
  pending_inputs_.clear();
  settle(frontier);
  // 2. Every DFF captures the now-settled D value, then the state change
  //    propagates -- matching Simulator::step() semantics exactly.
  std::vector<std::pair<NetId, std::uint8_t>> dff_updates;
  for (CellId id = 0; id < nl_.cells().size(); ++id) {
    const Cell& c = nl_.cell(id);
    if (c.kind == CellKind::kDff) {
      dff_updates.emplace_back(c.out, values_[c.in[0]]);
    }
  }
  for (const auto& [net, v] : dff_updates) bump(net, v != 0, frontier);
  settle(frontier);
  ++stats_.cycles;
}

std::int64_t ActivitySim::read_bus(const Bus& bus) const {
  if (bus.bits.empty()) {
    throw std::invalid_argument("ActivitySim::read_bus: empty bus");
  }
  std::int64_t v = 0;
  for (std::size_t i = 0; i < bus.bits.size(); ++i) {
    if (bus.bits[i] >= values_.size()) {
      throw std::invalid_argument("ActivitySim::read_bus: net out of range");
    }
    if (values_[bus.bits[i]]) v |= std::int64_t{1} << i;
  }
  const int w = bus.width();
  if (w < 64 && (v & (std::int64_t{1} << (w - 1)))) {
    v -= std::int64_t{1} << w;
  }
  return v;
}

void ActivitySim::reset_stats() {
  stats_.cycles = 0;
  stats_.total_toggles = 0;
  stats_.toggles.assign(nl_.net_count(), 0);
}

}  // namespace dwt::rtl
