// Word-level construction helpers over the gate-level netlist: signed buses,
// shifts, sign extension, adders in the paper's two implementation styles
// (behavioral carry-chain vs structural full-adder gates), and registers.
#pragma once

#include <cstdint>
#include <string>

#include "rtl/netlist.hpp"

namespace dwt::rtl {

/// How an adder is realized (paper sections 3.2 vs 3.4):
enum class AdderStyle {
  kCarryChain,   ///< behavioral: one LE per bit using the dedicated chain
  kRippleGates,  ///< structural: full adders from plain gates (2 LEs per bit)
};

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  [[nodiscard]] Netlist& netlist() { return nl_; }

  /// Constant bus of `width` bits holding `value` (two's complement).
  [[nodiscard]] Bus constant(std::int64_t value, int width);

  /// Sign-extends (or truncates, keeping the low bits) to `width`.
  [[nodiscard]] Bus resize(const Bus& b, int width) const;

  /// value << k: width grows by k with constant-0 low bits.
  [[nodiscard]] Bus shl(const Bus& b, int k);

  /// value >> k arithmetic (truncation): drops the k low bits.
  [[nodiscard]] Bus asr(const Bus& b, int k) const;

  /// Signed a + b, result sized to `out_width` (callers size the result via
  /// interval analysis; computation is exact modulo 2^out_width).
  [[nodiscard]] Bus add(const Bus& a, const Bus& b, AdderStyle style,
                        int out_width, const std::string& name = {});

  /// Signed a - b (b inverted, carry-in 1).
  [[nodiscard]] Bus sub(const Bus& a, const Bus& b, AdderStyle style,
                        int out_width, const std::string& name = {});

  /// Register bank: one DFF per bit.
  [[nodiscard]] Bus reg(const Bus& b, const std::string& name = {});

  /// n registers in series (shimming/delay line).
  [[nodiscard]] Bus delay(const Bus& b, int cycles,
                          const std::string& name = {});

  /// Per-bit 2-input mux bank: sel ? b : a.
  [[nodiscard]] Bus mux(const Bus& a, const Bus& b, NetId sel,
                        const std::string& name = {});

 private:
  [[nodiscard]] NetId add_bit_gates(NetId a, NetId b, NetId cin, NetId& cout,
                                    std::int32_t cluster,
                                    const std::string& name);

  Netlist& nl_;
};

}  // namespace dwt::rtl
