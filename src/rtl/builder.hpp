// Word-level construction helpers over the gate-level netlist: signed buses,
// shifts, sign extension, adders in any architecture of the AdderArch family
// (behavioral carry-chain, structural ripple gates, parallel-prefix
// networks), and registers.
#pragma once

#include <cstdint>
#include <string>

#include "rtl/adder_arch.hpp"
#include "rtl/netlist.hpp"

namespace dwt::rtl {

/// Historical name for the adder-realization choice; the family outgrew the
/// paper's two styles, so the enum now lives in rtl/adder_arch.hpp and every
/// style-parameterized helper accepts the full architecture family.
using AdderStyle = AdderArch;

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  [[nodiscard]] Netlist& netlist() { return nl_; }

  /// Constant bus of `width` bits holding `value` (two's complement).
  [[nodiscard]] Bus constant(std::int64_t value, int width);

  /// Sign-extends (or truncates, keeping the low bits) to `width`.
  [[nodiscard]] Bus resize(const Bus& b, int width) const;

  /// value << k: width grows by k with constant-0 low bits.
  [[nodiscard]] Bus shl(const Bus& b, int k);

  /// value >> k arithmetic (truncation): drops the k low bits.
  [[nodiscard]] Bus asr(const Bus& b, int k) const;

  /// Signed a + b, result sized to `out_width` (callers size the result via
  /// interval analysis; computation is exact modulo 2^out_width).  Forwards
  /// to the build_adder() generator seam (rtl/build_adder.hpp).
  [[nodiscard]] Bus add(const Bus& a, const Bus& b, AdderStyle style,
                        int out_width, const std::string& name = {});

  /// Signed a - b (b inverted, carry-in 1); same generator seam.
  [[nodiscard]] Bus sub(const Bus& a, const Bus& b, AdderStyle style,
                        int out_width, const std::string& name = {});

  /// Register bank: one DFF per bit.
  [[nodiscard]] Bus reg(const Bus& b, const std::string& name = {});

  /// n registers in series (shimming/delay line).
  [[nodiscard]] Bus delay(const Bus& b, int cycles,
                          const std::string& name = {});

  /// Per-bit 2-input mux bank: sel ? b : a.
  [[nodiscard]] Bus mux(const Bus& a, const Bus& b, NetId sel,
                        const std::string& name = {});

 private:
  Netlist& nl_;
};

}  // namespace dwt::rtl
