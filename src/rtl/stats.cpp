#include "rtl/stats.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace dwt::rtl {

int pipeline_depth(const Netlist& nl) {
  // Longest path in registers: process cells so that a cell's depth =
  // max over inputs of (input depth + (driver is DFF ? 1 : 0)).
  // Since DFF->DFF paths follow the clocked graph, iterate: depth per net.
  // The netlist is a DAG through combinational cells but cyclic through
  // DFFs in general; the paper's datapaths are feed-forward, so a simple
  // longest-path over the full graph treating DFFs as +1 edges works.  We
  // compute it with an iterative relaxation bounded by the register count.
  const std::size_t n_nets = nl.net_count();
  std::vector<int> depth(n_nets, 0);
  const auto topo = nl.topo_order();
  const std::size_t dffs = nl.count_kind(CellKind::kDff);
  // Relax combinational topo order once per register "wave".
  for (std::size_t wave = 0; wave <= dffs; ++wave) {
    bool changed = false;
    for (const auto& c : nl.cells()) {
      if (c.kind != CellKind::kDff) continue;
      const int d = depth[c.in[0]] + 1;
      if (d > depth[c.out]) {
        depth[c.out] = d;
        changed = true;
      }
    }
    for (const CellId id : topo) {
      const Cell& c = nl.cell(id);
      int d = 0;
      for (int i = 0; i < input_count(c.kind); ++i) {
        d = std::max(d, depth[c.in[static_cast<std::size_t>(i)]]);
      }
      if (d > depth[c.out]) {
        depth[c.out] = d;
        changed = true;
      }
    }
    if (!changed) break;
  }
  int out_depth = 0;
  for (const auto& [name, bus] : nl.outputs()) {
    (void)name;
    for (const NetId b : bus.bits) out_depth = std::max(out_depth, depth[b]);
  }
  return out_depth;
}

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.cells = nl.cell_count();
  s.nets = nl.net_count();
  std::set<std::int32_t> chains;
  for (const Cell& c : nl.cells()) {
    ++s.by_kind[c.kind];
    switch (c.kind) {
      case CellKind::kDff:
        ++s.register_bits;
        break;
      case CellKind::kAddSum:
        if (c.chain_id >= 0) {
          chains.insert(c.chain_id);
          ++s.chain_bits;
        }
        break;
      case CellKind::kAddCarry:
      case CellKind::kConst0:
      case CellKind::kConst1:
        break;
      default:
        ++s.gate_cells;
        break;
    }
  }
  s.carry_chains = chains.size();
  s.pipeline_stages = pipeline_depth(nl);
  return s;
}

std::string NetlistStats::to_string() const {
  std::ostringstream os;
  os << "cells=" << cells << " nets=" << nets
     << " registers=" << register_bits << " carry_chains=" << carry_chains
     << " chain_bits=" << chain_bits << " gates=" << gate_cells
     << " pipeline_stages=" << pipeline_stages;
  return os.str();
}

}  // namespace dwt::rtl
