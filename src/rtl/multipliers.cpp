#include "rtl/multipliers.hpp"

#include <algorithm>
#include <stdexcept>

namespace dwt::rtl {
namespace {

/// Partial-product row: (y_bit ? x : 0), as per-bit AND gates.  The row's
/// sign bit is and(x_msb, y_bit), which is exactly the sign extension the
/// wider downstream adders need, so plain Word resizing stays correct.
Word and_row(Builder& b, const Word& x, NetId y_bit, const std::string& name) {
  Word row;
  row.bus.bits.reserve(x.bus.bits.size());
  for (std::size_t j = 0; j < x.bus.bits.size(); ++j) {
    row.bus.bits.push_back(b.netlist().add_cell(
        CellKind::kAnd2, x.bus.bits[j], y_bit, kNullNet,
        name + "[" + std::to_string(j) + "]"));
  }
  row.range = common::hull(common::Interval::point(0), x.range);
  row.depth = x.depth;
  return row;
}

Word multiply_rows(Pipeliner& p, const Word& x, const std::vector<NetId>& ybits,
                   AdderStyle style, SumStructure structure,
                   const std::string& name) {
  Builder& b = p.builder();
  const int wy = static_cast<int>(ybits.size());
  if (wy < 2) throw std::invalid_argument("array multiplier: operand too narrow");
  std::vector<SignedTerm> terms;
  for (int i = 0; i < wy; ++i) {
    const Word row = and_row(b, x, ybits[static_cast<std::size_t>(i)],
                             name + ".pp" + std::to_string(i));
    // The sign row of the two's complement operand subtracts.
    terms.push_back({word_shl(b, row, i), /*negative=*/i == wy - 1});
  }
  return sum_signed(p, std::move(terms), structure, style, name + ".acc");
}

}  // namespace

Word shiftadd_multiply(Pipeliner& p, const Word& x, const ShiftAddPlan& plan,
                       AdderStyle style, SumStructure structure,
                       const std::string& name) {
  Builder& b = p.builder();
  Word shared3x;
  if (plan.has_shared_3x) {
    shared3x = word_add(p, x, word_shl(b, x, 1), style, name + ".3x");
  }
  if (structure == SumStructure::kSequential) {
    // Sequential accumulation (paper figure 7), positives before negatives.
    // Pipeline shims delay the *narrow source* (x or 3x) and shift at the
    // point of use: the shift is free wiring, and the shared delay line
    // serves every partial product (resource sharing a tool would do).
    std::vector<ShiftAddTerm> ordered = plan.terms;
    std::stable_partition(ordered.begin(), ordered.end(),
                          [](const ShiftAddTerm& t) { return !t.negative; });
    if (ordered.front().negative) {
      throw std::invalid_argument(
          "shiftadd_multiply: plan starts with a negative term");
    }
    Word acc;
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      const ShiftAddTerm& t = ordered[i];
      const Word& src = t.uses_shared_3x ? shared3x : x;
      if (i == 0) {
        acc = word_shl(b, p.align_to(src, shared3x.bus.bits.empty()
                                              ? src.depth
                                              : shared3x.depth,
                                     name + ".srcd"),
                       t.shift);
        continue;
      }
      const Word aligned = p.align_to(src, acc.depth, name + ".srcd");
      const Word term = word_shl(b, aligned, t.shift);
      const std::string step = name + ".acc" + std::to_string(i);
      acc = t.negative ? word_sub(p, acc, term, style, step)
                       : word_add(p, acc, term, style, step);
    }
    return acc;
  }
  std::vector<SignedTerm> terms;
  for (const ShiftAddTerm& t : plan.terms) {
    const Word& src = t.uses_shared_3x ? shared3x : x;
    terms.push_back({word_shl(b, src, t.shift), t.negative});
  }
  return sum_signed(p, std::move(terms), structure, style, name);
}

Word array_multiply_const(Pipeliner& p, const Word& x, std::int64_t constant,
                          int const_width, AdderStyle style,
                          SumStructure structure, const std::string& name) {
  if (const_width < 2 || const_width > 62) {
    throw std::invalid_argument("array_multiply_const: bad constant width");
  }
  const std::int64_t lo = -(std::int64_t{1} << (const_width - 1));
  const std::int64_t hi = (std::int64_t{1} << (const_width - 1)) - 1;
  if (constant < lo || constant > hi) {
    throw std::invalid_argument("array_multiply_const: constant overflow");
  }
  Builder& b = p.builder();
  Netlist& nl = b.netlist();
  // Megacore-style elaboration of data * constant: the constant drives one
  // operand port; rows are formed over the *data* bits so the whole adder
  // array stays live (a megacore is not constant-folded by synthesis).
  Word const_word;
  const_word.bus = b.constant(constant, const_width);
  const_word.range = common::Interval::point(constant);
  const_word.depth = x.depth;
  (void)nl;
  return multiply_rows(p, const_word, x.bus.bits, style, structure, name);
}

Word array_multiply(Pipeliner& p, const Word& x, const Word& y,
                    AdderStyle style, SumStructure structure,
                    const std::string& name) {
  return multiply_rows(p, x, y.bus.bits, style, structure, name);
}

}  // namespace dwt::rtl
