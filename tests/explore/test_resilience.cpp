#include "explore/resilience.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace dwt::explore {
namespace {

ResilienceOptions small_campaign(hw::DesignId design,
                                 rtl::HardeningStyle harden) {
  ResilienceOptions opt;
  opt.design = design;
  opt.kinds = {rtl::FaultKind::kSeuFlip};
  opt.trials = 12;
  opt.seed = 99;
  opt.samples = 16;
  opt.harden = harden;
  return opt;
}

TEST(Resilience, CampaignIsDeterministic) {
  const ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kNone);
  const CampaignResult a = run_campaign(opt);
  const CampaignResult b = run_campaign(opt);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(a.trials_run, opt.trials);
  EXPECT_EQ(a.masked + a.detected + a.sdc, a.trials_run);
  EXPECT_EQ(a.detected, 0u);  // no detection logic without hardening
}

TEST(Resilience, TmrDesign1MasksEverySampledSeu) {
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign1, rtl::HardeningStyle::kTmr);
  opt.trials = 20;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.masked, r.trials_run);
  EXPECT_EQ(r.sdc, 0u);
  EXPECT_EQ(r.corrupted, 0u);
  for (const FaultTrial& t : r.trials) {
    EXPECT_EQ(t.outcome, FaultOutcome::kMasked);
    EXPECT_EQ(t.max_abs_error, 0);  // bit-identical output
    EXPECT_TRUE(std::isinf(t.psnr_db));
  }
  // The hardening cost is priced by the same mapper/STA as Table 3.
  EXPECT_GT(r.hardened.logic_elements, r.baseline.logic_elements);
  EXPECT_EQ(r.harden_report.added_ffs, 2 * r.harden_report.protected_ffs);
}

TEST(Resilience, ParityDetectsEverySampledSeu) {
  const CampaignResult r = run_campaign(
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kParity));
  EXPECT_EQ(r.detected, r.trials_run);  // detection, not correction
  EXPECT_EQ(r.sdc, 0u);
  EXPECT_GT(r.harden_report.parity_groups, 0u);
  EXPECT_GT(r.hardened.ff_count, r.baseline.ff_count);
}

TEST(Resilience, AdderOverrideChangesFaultSpaceNotMachinery) {
  // The (design x adder) axis: a prefix-adder campaign runs on a different
  // netlist (different fault space, different design-point name) but the
  // classification machinery stays deterministic and engine-agnostic.
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kNone);
  opt.adder = rtl::AdderArch::kKoggeStone;
  const CampaignResult a = run_campaign(opt);
  const CampaignResult b = run_campaign(opt);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(a.spec.name, "Design 2 (kogge-stone)");
  EXPECT_EQ(a.trials_run, opt.trials);
  EXPECT_EQ(a.masked + a.detected + a.sdc, a.trials_run);
  ResilienceOptions interp = opt;
  interp.engine = CampaignEngine::kInterpreted;
  EXPECT_EQ(to_json(run_campaign(interp)), to_json(a));
  // The paper realization draws a different schedule (different nets).
  const CampaignResult base = run_campaign(
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kNone));
  EXPECT_NE(to_json(base), to_json(a));
}

TEST(Resilience, AdderVariantHardensLikeTheBaseDesign) {
  // Parity hardening is architecture-agnostic: it must detect every sampled
  // SEU on a brent-kung netlist exactly as it does on the paper's.
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kParity);
  opt.adder = rtl::AdderArch::kBrentKung;
  const CampaignResult r = run_campaign(opt);
  EXPECT_EQ(r.detected, r.trials_run);
  EXPECT_EQ(r.sdc, 0u);
  EXPECT_GT(r.harden_report.parity_groups, 0u);
}

TEST(Resilience, PointCarriesSdcAxisIntoTradeoffSpace) {
  const CampaignResult r = run_campaign(
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kNone));
  const TradeoffPoint p = resilience_point(r);
  EXPECT_GT(p.area_les, 0.0);
  EXPECT_GT(p.period_ns, 0.0);
  EXPECT_DOUBLE_EQ(p.sdc_rate, r.sdc_rate());
}

TEST(Resilience, CompiledAndInterpretedEnginesProduceIdenticalReports) {
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign3, rtl::HardeningStyle::kParity);
  opt.kinds = {rtl::FaultKind::kSeuFlip, rtl::FaultKind::kStuckAt0,
               rtl::FaultKind::kGlitch};
  opt.keep_trials = true;
  opt.engine = CampaignEngine::kCompiled;
  const CampaignResult compiled = run_campaign(opt);
  opt.engine = CampaignEngine::kInterpreted;
  const CampaignResult interpreted = run_campaign(opt);
  EXPECT_EQ(to_json(compiled), to_json(interpreted));
  EXPECT_EQ(compiled.masked, interpreted.masked);
  EXPECT_EQ(compiled.detected, interpreted.detected);
  EXPECT_EQ(compiled.sdc, interpreted.sdc);
  ASSERT_EQ(compiled.trials.size(), interpreted.trials.size());
  for (std::size_t i = 0; i < compiled.trials.size(); ++i) {
    EXPECT_EQ(compiled.trials[i].outcome, interpreted.trials[i].outcome) << i;
    EXPECT_EQ(compiled.trials[i].max_abs_error,
              interpreted.trials[i].max_abs_error)
        << i;
  }
}

TEST(Resilience, ThreadCountDoesNotChangeCompiledCampaign) {
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kNone);
  opt.trials = 70;  // spills into a second 64-lane batch
  opt.engine = CampaignEngine::kCompiled;
  opt.threads = 1;
  const CampaignResult serial = run_campaign(opt);
  opt.threads = 4;
  const CampaignResult pooled = run_campaign(opt);
  EXPECT_EQ(to_json(serial), to_json(pooled));
}

// Lane width (how many trials ride one tape pass) and tape optimization
// level are pure throughput knobs: the report is byte-identical across all
// of them, and kFull quietly clamps to the overlay-safe level rather than
// corrupting fault forces.
TEST(Resilience, LaneWidthAndOptLevelDoNotChangeReport) {
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign3, rtl::HardeningStyle::kParity);
  opt.kinds = {rtl::FaultKind::kSeuFlip, rtl::FaultKind::kStuckAt0};
  opt.trials = 70;  // spills into a second batch at 64 lanes
  opt.engine = CampaignEngine::kCompiled;
  opt.lanes = 64;
  opt.opt_level = rtl::compiled::OptLevel::kNone;
  const std::string narrow_raw = to_json(run_campaign(opt));
  opt.lanes = 128;
  opt.opt_level = rtl::compiled::OptLevel::kSafe;
  EXPECT_EQ(to_json(run_campaign(opt)), narrow_raw);
  opt.lanes = 256;
  EXPECT_EQ(to_json(run_campaign(opt)), narrow_raw);
  opt.opt_level = rtl::compiled::OptLevel::kFull;  // clamps to kSafe
  EXPECT_EQ(to_json(run_campaign(opt)), narrow_raw);
}

TEST(Resilience, RejectsDegenerateOptions) {
  ResilienceOptions opt =
      small_campaign(hw::DesignId::kDesign2, rtl::HardeningStyle::kNone);
  opt.trials = 0;
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);
  opt.trials = 1;
  opt.samples = 7;
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);
  opt.samples = 16;
  opt.kinds.clear();
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);
  opt.kinds = {rtl::FaultKind::kSeuFlip};
  opt.lanes = 100;  // not a whole number of 64-lane blocks
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);
}

}  // namespace
}  // namespace dwt::explore
