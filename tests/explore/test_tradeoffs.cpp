#include "explore/tradeoffs.hpp"

#include <gtest/gtest.h>

namespace dwt::explore {
namespace {

TEST(Tradeoffs, PaperRatiosFromTable3) {
  const TradeoffAnalysis a = paper_tradeoffs();
  // Section 5: pipelined operators cost 40-60% more LEs...
  EXPECT_NEAR(a.pipelined_area_ratio_behavioral, 766.0 / 480.0, 1e-9);
  EXPECT_NEAR(a.pipelined_area_ratio_structural, 1002.0 / 701.0, 1e-9);
  // ...raise fmax by 2-3.5x...
  EXPECT_NEAR(a.pipelined_fmax_ratio_behavioral, 157.0 / 44.0, 1e-9);
  // ...and cut power to under half at the same frequency.
  EXPECT_LT(a.pipelined_power_ratio_behavioral, 0.5);
  EXPECT_LT(a.pipelined_power_ratio_structural, 0.5);
  // Structural description overhead ~30-46% area.
  EXPECT_NEAR(a.structural_area_ratio_pipelined, 1002.0 / 766.0, 1e-9);
}

TEST(Tradeoffs, ClaimListComplete) {
  const auto claims = paper_tradeoffs().claims();
  EXPECT_EQ(claims.size(), 9u);
  for (const RatioClaim& c : claims) {
    EXPECT_FALSE(c.description.empty());
    EXPECT_GT(c.paper_value, 0.0);
  }
}

TEST(Tradeoffs, AnalyzeRejectsWrongCount) {
  EXPECT_THROW((void)analyze_tradeoffs({}), std::invalid_argument);
}

TEST(Tradeoffs, AnalyzeComputesRatios) {
  // Synthesize five fake evaluations with known metrics.
  std::vector<DesignEvaluation> evals(5);
  const double les[] = {800, 500, 800, 750, 1050};
  const double fmax[] = {17, 44, 157, 54, 105};
  const double power[] = {300, 250, 100, 230, 90};
  for (int i = 0; i < 5; ++i) {
    evals[static_cast<std::size_t>(i)].report.logic_elements =
        static_cast<std::size_t>(les[i]);
    evals[static_cast<std::size_t>(i)].report.fmax_mhz = fmax[i];
    evals[static_cast<std::size_t>(i)].report.power_mw = power[i];
  }
  const TradeoffAnalysis a = analyze_tradeoffs(evals);
  EXPECT_NEAR(a.pipelined_area_ratio_behavioral, 800.0 / 500.0, 1e-9);
  EXPECT_NEAR(a.pipelined_fmax_ratio_structural, 105.0 / 54.0, 1e-9);
  EXPECT_NEAR(a.structural_fmax_ratio_pipelined, 105.0 / 157.0, 1e-9);
  EXPECT_NEAR(a.pipelined_power_ratio_behavioral, 100.0 / 250.0, 1e-9);
}

}  // namespace
}  // namespace dwt::explore
