#include "explore/campaign_io.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/exact_acc.hpp"
#include "explore/resilience.hpp"

namespace dwt::explore {
namespace {

ResilienceOptions shard_campaign() {
  ResilienceOptions opt;
  opt.design = hw::DesignId::kDesign2;
  opt.kinds = {rtl::FaultKind::kSeuFlip, rtl::FaultKind::kGlitch,
               rtl::FaultKind::kStuckAt0, rtl::FaultKind::kStuckAt1};
  opt.trials = 37;  // deliberately not divisible by the shard counts
  opt.seed = 321;
  opt.samples = 16;
  return opt;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// ExactAcc
// ---------------------------------------------------------------------------

TEST(ExactAcc, SumsAreExactAndOrderIndependent) {
  const std::vector<double> xs = {1e16, 3.25, -1e16, 1e-30, 7.5,
                                  -2.875, 1e300, -1e300};
  common::ExactAcc fwd;
  common::ExactAcc rev;
  for (const double x : xs) fwd.add(x);
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) rev.add(*it);
  EXPECT_EQ(fwd, rev);
  // 1e16 and -1e16 cancel exactly; the rest sum to 7.875 + 1e-30, which
  // rounds to 7.875.
  EXPECT_DOUBLE_EQ(fwd.round(), 7.875);
}

TEST(ExactAcc, MergeEqualsSingleAccumulator) {
  common::ExactAcc whole;
  common::ExactAcc a;
  common::ExactAcc b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 1e10;
    whole.add(x);
    (i < 50 ? a : b).add(x);
  }
  a.add(b);
  EXPECT_EQ(whole, a);
  EXPECT_EQ(whole.round(), a.round());
}

TEST(ExactAcc, HexRoundTrips) {
  common::ExactAcc acc;
  acc.add(-123.456);
  acc.add(1e-300);
  const std::string hex = acc.to_hex();
  EXPECT_EQ(hex.size(), 576u);
  EXPECT_EQ(common::ExactAcc::from_hex(hex), acc);
  EXPECT_THROW(common::ExactAcc::from_hex("zz"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

TEST(CampaignShard, MergedShardsReproduceUnshardedBytes) {
  ResilienceOptions opt = shard_campaign();
  const std::string whole = to_json(run_campaign(opt));
  for (const unsigned shards : {1u, 2u, 7u}) {
    std::vector<std::string> reports;
    std::size_t trials_seen = 0;
    for (unsigned i = 0; i < shards; ++i) {
      opt.shard_count = shards;
      opt.shard_index = i;
      const CampaignResult r = run_campaign(opt);
      trials_seen += r.trials_run;
      EXPECT_EQ(r.trial_end - r.trial_begin, r.trials_run);
      reports.push_back(to_json(r));
    }
    EXPECT_EQ(trials_seen, opt.trials);
    EXPECT_EQ(merge_reports(reports), whole)
        << "shard count " << shards;
  }
}

TEST(CampaignShard, MergeIsOrderInvariant) {
  ResilienceOptions opt = shard_campaign();
  opt.shard_count = 3;
  std::vector<std::string> reports;
  for (unsigned i = 0; i < 3; ++i) {
    opt.shard_index = i;
    reports.push_back(to_json(run_campaign(opt)));
  }
  const std::string merged = merge_reports(reports);
  std::vector<std::string> shuffled = {reports[2], reports[0], reports[1]};
  EXPECT_EQ(merge_reports(shuffled), merged);
  std::vector<std::string> reversed = {reports[2], reports[1], reports[0]};
  EXPECT_EQ(merge_reports(reversed), merged);
}

TEST(CampaignShard, ShardReportsCarryScheduleWideConeStats) {
  ResilienceOptions opt = shard_campaign();
  const CampaignResult whole = run_campaign(opt);
  opt.shard_count = 2;
  opt.shard_index = 1;
  const CampaignResult shard = run_campaign(opt);
  // Static cone statistics are drawn from the full schedule, so every shard
  // agrees with the unsharded run.
  EXPECT_EQ(shard.cone.instructions, whole.cone.instructions);
  EXPECT_EQ(shard.cone.instructions_full, whole.cone.instructions_full);
  EXPECT_EQ(shard.cone.instructions_cone, whole.cone.instructions_cone);
  EXPECT_EQ(shard.cone.schedule_mean_cone_fraction,
            whole.cone.schedule_mean_cone_fraction);
  EXPECT_GT(whole.cone.instructions_full, whole.cone.instructions_cone);
}

TEST(CampaignShard, RejectsBadShardArguments) {
  ResilienceOptions opt = shard_campaign();
  opt.shard_count = 0;
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);
  opt.shard_count = 2;
  opt.shard_index = 2;
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);
  opt.shard_count = 1000;
  opt.shard_index = 0;
  EXPECT_THROW(run_campaign(opt), std::invalid_argument);  // > trials
}

TEST(CampaignShard, MergeRejectsInconsistentInputs) {
  ResilienceOptions opt = shard_campaign();
  opt.shard_count = 2;
  opt.shard_index = 0;
  const std::string s0 = to_json(run_campaign(opt));
  opt.shard_index = 1;
  const std::string s1 = to_json(run_campaign(opt));

  EXPECT_THROW(merge_reports({}), std::runtime_error);
  // Missing shard 1 of 2.
  EXPECT_THROW(merge_reports({s0}), std::runtime_error);
  // Duplicate shard.
  EXPECT_THROW(merge_reports({s0, s0}), std::runtime_error);
  // Mixing different campaigns: different seed changes static lines.
  ResilienceOptions other = shard_campaign();
  other.seed = 999;
  other.shard_count = 2;
  other.shard_index = 1;
  EXPECT_THROW(merge_reports({s0, to_json(run_campaign(other))}),
               std::runtime_error);
  // Garbage input.
  EXPECT_THROW(merge_reports({"not json"}), std::runtime_error);
  // A single unsharded report passes through untouched.
  const std::string whole = to_json(run_campaign(shard_campaign()));
  EXPECT_EQ(merge_reports({whole}), whole);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

TEST(CampaignCheckpointTest, FingerprintCoversAdderAxis) {
  // The adder override changes the netlist, so it must be part of the
  // checkpoint identity -- while campaigns without an override must keep
  // their legacy fingerprint bytes (old checkpoints stay resumable).
  const ResilienceOptions base = shard_campaign();
  const std::string plain = campaign_fingerprint(base);
  EXPECT_EQ(plain.find("adder="), std::string::npos);
  ResilienceOptions ks = base;
  ks.adder = rtl::AdderArch::kKoggeStone;
  const std::string with_ks = campaign_fingerprint(ks);
  EXPECT_NE(with_ks, plain);
  EXPECT_NE(with_ks.find("adder="), std::string::npos);
  ResilienceOptions bk = base;
  bk.adder = rtl::AdderArch::kBrentKung;
  EXPECT_NE(campaign_fingerprint(bk), with_ks);
}

TEST(CampaignCheckpointTest, SerializationRoundTrips) {
  CampaignCheckpoint cp;
  cp.fingerprint = campaign_fingerprint(shard_campaign());
  cp.cursor = 17;
  cp.masked = 5;
  cp.detected = 2;
  cp.sdc = 10;
  cp.corrupted = 12;
  cp.min_psnr_bits =
      std::bit_cast<std::uint64_t>(21.75);
  cp.psnr_acc.add(21.75);
  cp.psnr_acc.add(38.5);
  FaultTrial t;
  t.fault.kind = rtl::FaultKind::kGlitch;
  t.fault.net = 42;
  t.fault.cycle = 9;
  t.fault.glitch_value = true;
  t.net_name = "alpha.mul pp[3]";  // space survives the round trip
  t.outcome = FaultOutcome::kSilentCorruption;
  t.psnr_db = 21.75;
  t.max_abs_error = -3;
  cp.kept.push_back(t);
  const CampaignCheckpoint back = parse_checkpoint(serialize_checkpoint(cp));
  EXPECT_EQ(back.fingerprint, cp.fingerprint);
  EXPECT_EQ(back.cursor, cp.cursor);
  EXPECT_EQ(back.corrupted, cp.corrupted);
  EXPECT_EQ(back.psnr_acc, cp.psnr_acc);
  ASSERT_EQ(back.kept.size(), 1u);
  EXPECT_EQ(back.kept[0].net_name, t.net_name);
  EXPECT_EQ(back.kept[0].fault.kind, t.fault.kind);
  EXPECT_EQ(back.kept[0].max_abs_error, t.max_abs_error);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.kept[0].psnr_db),
            std::bit_cast<std::uint64_t>(t.psnr_db));
}

TEST(CampaignCheckpointTest, RejectsCorruptFiles) {
  const std::string good = serialize_checkpoint(CampaignCheckpoint{});
  EXPECT_NO_THROW(parse_checkpoint(good));
  // Truncations at every line boundary are rejected.
  std::size_t pos = good.find('\n');
  while (pos != std::string::npos) {
    EXPECT_THROW(parse_checkpoint(good.substr(0, pos + 1)),
                 std::runtime_error);
    pos = good.find('\n', pos + 1);
    if (pos == good.size() - 1) break;
  }
  EXPECT_THROW(parse_checkpoint(""), std::runtime_error);
  EXPECT_THROW(parse_checkpoint("dwtcampaign-checkpoint v2\n"),
               std::runtime_error);
  std::string bad = good;
  bad.replace(bad.find("cursor "), 7, "cursro ");
  EXPECT_THROW(parse_checkpoint(bad), std::runtime_error);
}

TEST(CampaignCheckpointTest, CrashAndResumeIsByteIdentical) {
  const std::string path = temp_path("dwt_ck_resume_test.txt");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  ResilienceOptions opt = shard_campaign();
  const std::string want = to_json(run_campaign(opt));

  opt.checkpoint_file = path;
  opt.checkpoint_every = 10;
  struct Crash {};
  opt.checkpoint_hook = [](std::size_t done) {
    if (done >= 10) throw Crash{};  // die after the first chunk's checkpoint
  };
  EXPECT_THROW(run_campaign(opt), Crash);

  // Resume: the checkpoint holds the first chunk; the rest runs now.
  opt.checkpoint_hook = nullptr;
  const CampaignResult resumed = run_campaign(opt);
  EXPECT_EQ(to_json(resumed), want);
  std::remove(path.c_str());
}

TEST(CampaignCheckpointTest, RefusesForeignCheckpoint) {
  const std::string path = temp_path("dwt_ck_foreign_test.txt");
  std::remove(path.c_str());

  ResilienceOptions opt = shard_campaign();
  opt.checkpoint_file = path;
  opt.checkpoint_every = 10;
  struct Stop {};
  opt.checkpoint_hook = [](std::size_t) { throw Stop{}; };
  EXPECT_THROW(run_campaign(opt), Stop);

  // Different seed => different fingerprint => refuse to resume.
  ResilienceOptions other = shard_campaign();
  other.seed = 777;
  other.checkpoint_file = path;
  EXPECT_THROW(run_campaign(other), std::runtime_error);

  // A torn file (manual corruption) is rejected, not silently resumed.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "dwtcampaign-checkpoint v1\nfingerprint x\ncursor 5\n";
  }
  opt.checkpoint_hook = nullptr;
  EXPECT_THROW(run_campaign(opt), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CampaignCheckpointTest, ResumeMaySwitchEngines) {
  const std::string path = temp_path("dwt_ck_engine_test.txt");
  std::remove(path.c_str());

  ResilienceOptions opt = shard_campaign();
  const std::string want = to_json(run_campaign(opt));

  opt.checkpoint_file = path;
  opt.checkpoint_every = 10;
  struct Crash {};
  opt.checkpoint_hook = [](std::size_t done) {
    if (done >= 10) throw Crash{};
  };
  EXPECT_THROW(run_campaign(opt), Crash);

  // The fingerprint excludes performance knobs, so the interpreted engine
  // can finish what the compiled engine started -- bytes unchanged.
  opt.engine = CampaignEngine::kInterpreted;
  opt.checkpoint_hook = nullptr;
  EXPECT_EQ(to_json(run_campaign(opt)), want);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dwt::explore
