#include "explore/pareto.hpp"

#include <gtest/gtest.h>

namespace dwt::explore {
namespace {

TEST(Pareto, DominationDefinition) {
  const TradeoffPoint a{"a", 100, 10, 50};
  const TradeoffPoint b{"b", 120, 12, 60};
  const TradeoffPoint c{"c", 100, 10, 50};
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_FALSE(a.dominates(c));  // equal points do not dominate
}

TEST(Pareto, MixedTradeoffNotDominated) {
  const TradeoffPoint small_slow{"s", 100, 20, 50};
  const TradeoffPoint big_fast{"f", 200, 5, 50};
  EXPECT_FALSE(small_slow.dominates(big_fast));
  EXPECT_FALSE(big_fast.dominates(small_slow));
}

TEST(Pareto, FrontKeepsNonDominated) {
  const std::vector<TradeoffPoint> pts{
      {"good", 100, 10, 50},
      {"dominated", 150, 15, 80},
      {"fast", 300, 4, 90},
      {"tiny", 50, 30, 40},
  };
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 2u);
  EXPECT_EQ(front[2], 3u);
}

TEST(Pareto, AllEqualAllOnFront) {
  const std::vector<TradeoffPoint> pts(3, TradeoffPoint{"x", 1, 1, 1});
  EXPECT_EQ(pareto_front(pts).size(), 3u);
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, SdcRateIsAFourthObjective) {
  // Hardened variant: strictly worse area/speed but strictly safer -- the
  // resilience axis must keep it on the front.
  const TradeoffPoint plain{"d3", 989, 7.5, 105, 0.35};
  const TradeoffPoint tmr{"d3+tmr", 4076, 11.4, 105, 0.0};
  EXPECT_FALSE(plain.dominates(tmr));
  EXPECT_FALSE(tmr.dominates(plain));
  const auto front = pareto_front({plain, tmr});
  EXPECT_EQ(front.size(), 2u);

  // With equal sdc_rate the classic three-objective ordering is unchanged.
  const TradeoffPoint safer_same{"d3+free", 989, 7.5, 105, 0.0};
  EXPECT_TRUE(safer_same.dominates(plain));
  EXPECT_FALSE(plain.dominates(safer_same));
}

TEST(Pareto, AreaPowerPerMhz) {
  const TradeoffPoint p{"p", 480, 1000.0 / 44.0, 248};
  EXPECT_NEAR(area_power_per_mhz(p), 480.0 * 248.0 / 44.0, 1e-9);
  EXPECT_THROW((void)area_power_per_mhz(TradeoffPoint{"bad", 1, 0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwt::explore
