#include "explore/explorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dwt::explore {
namespace {

/// The evaluations are expensive enough to share across assertions.
class ExplorerSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    evals_ = new std::vector<DesignEvaluation>(Explorer().evaluate_all());
  }
  static void TearDownTestSuite() {
    delete evals_;
    evals_ = nullptr;
  }
  static const std::vector<DesignEvaluation>& evals() { return *evals_; }

 private:
  static std::vector<DesignEvaluation>* evals_;
};

std::vector<DesignEvaluation>* ExplorerSuite::evals_ = nullptr;

TEST_F(ExplorerSuite, EvaluatesAllFiveDesigns) {
  ASSERT_EQ(evals().size(), 5u);
  for (const DesignEvaluation& e : evals()) {
    EXPECT_GT(e.report.logic_elements, 100u) << e.spec.name;
    EXPECT_GT(e.report.fmax_mhz, 5.0) << e.spec.name;
    EXPECT_GT(e.report.power_mw, 10.0) << e.spec.name;
  }
}

TEST_F(ExplorerSuite, Design2IsSmallest) {
  for (std::size_t i = 0; i < evals().size(); ++i) {
    if (i == 1) continue;
    EXPECT_LE(evals()[1].report.logic_elements,
              evals()[i].report.logic_elements)
        << evals()[i].spec.name;
  }
}

TEST_F(ExplorerSuite, PipelinedDesignsAreFastest) {
  // Paper Table 3: designs 3 and 5 dominate the frequency column.
  const double d3 = evals()[2].report.fmax_mhz;
  const double d5 = evals()[4].report.fmax_mhz;
  for (const std::size_t flat : {0u, 1u, 3u}) {
    EXPECT_GT(d3, 1.5 * evals()[flat].report.fmax_mhz);
    EXPECT_GT(d5, 1.5 * evals()[flat].report.fmax_mhz);
  }
  EXPECT_GT(d3, d5);  // carry chains beat LUT ripple per stage
}

TEST_F(ExplorerSuite, PipelinedDesignsUseLessPowerAtReference) {
  EXPECT_LT(evals()[2].report.power_mw, evals()[1].report.power_mw);  // D3 < D2
  EXPECT_LT(evals()[4].report.power_mw, evals()[3].report.power_mw);  // D5 < D4
  EXPECT_LT(evals()[4].report.power_mw, evals()[2].report.power_mw);  // D5 lowest
}

TEST_F(ExplorerSuite, Design1DrawsTheMostPower) {
  for (std::size_t i = 1; i < evals().size(); ++i) {
    if (i == 3) continue;  // D4: our model charges structural LUT nets more
                           // than Quartus did (documented deviation)
    EXPECT_GT(evals()[0].report.power_mw, evals()[i].report.power_mw)
        << evals()[i].spec.name;
  }
}

TEST_F(ExplorerSuite, StageCountsMatchSkeleton) {
  EXPECT_EQ(evals()[0].report.pipeline_stages, 8);
  EXPECT_EQ(evals()[1].report.pipeline_stages, 8);
  EXPECT_EQ(evals()[3].report.pipeline_stages, 8);
  EXPECT_GT(evals()[2].report.pipeline_stages, 20);
  EXPECT_GT(evals()[4].report.pipeline_stages, 20);
}

TEST_F(ExplorerSuite, GlitchActivityLowerWhenPipelined) {
  EXPECT_LT(evals()[2].report.mean_activity, evals()[1].report.mean_activity);
  EXPECT_LT(evals()[4].report.mean_activity, evals()[3].report.mean_activity);
}

TEST_F(ExplorerSuite, PowerProjectionScalesWithFrequency) {
  const auto& e = evals()[1];
  const auto p40 = e.power_at(40.0, Explorer().options().device);
  EXPECT_GT(p40.total_mw(), e.report.power_mw);
  EXPECT_NEAR(p40.logic_mw, e.report.power_breakdown.logic_mw * 40.0 / 15.0,
              1e-6);
}

TEST_F(ExplorerSuite, ChainLesOnlyInBehavioralDesigns) {
  EXPECT_GT(evals()[1].report.chain_les, 0u);
  EXPECT_EQ(evals()[3].report.chain_les, 0u);
  EXPECT_EQ(evals()[4].report.chain_les, 0u);
}

TEST(Explorer, PrefixAdderVariantShiftsTheFrontier) {
  // Spot-check of the (design x adder) sweep: the kogge-stone variant of
  // the pipelined design trades area for clock rate -- more LEs than the
  // paper realization, but a higher f_max (the prefix network shortens the
  // adder stage the STA critical path runs through).
  const Explorer ex;
  const auto variants = hw::adder_variant_designs();
  ASSERT_EQ(variants.size(), 12u);
  const auto ks_it =
      std::find_if(variants.begin(), variants.end(), [](const auto& s) {
        return s.name == "Design 3 (kogge-stone)";
      });
  ASSERT_NE(ks_it, variants.end());
  const DesignEvaluation base = ex.evaluate(hw::design_spec(hw::DesignId::kDesign3));
  const DesignEvaluation ks = ex.evaluate(*ks_it);
  EXPECT_EQ(ks.report.name, "Design 3 (kogge-stone)");
  EXPECT_GT(ks.report.fmax_mhz, base.report.fmax_mhz);
  EXPECT_GT(ks.report.logic_elements, base.report.logic_elements);
  // Same stage skeleton: the adder swap is purely combinational.
  EXPECT_EQ(ks.report.pipeline_stages, base.report.pipeline_stages);
}

TEST(Explorer, WorkloadStreamsAreDeterministic) {
  Explorer ex;
  EXPECT_EQ(ex.workload_stream(), ex.workload_stream());
  ExplorerOptions noisy;
  noisy.workload = Workload::kRandomNoise;
  Explorer ex2(noisy);
  EXPECT_NE(ex.workload_stream(), ex2.workload_stream());
}

TEST(Explorer, WorkloadFitsSignedEightBits) {
  for (const Workload w : {Workload::kStillToneImage, Workload::kRandomNoise}) {
    ExplorerOptions opt;
    opt.workload = w;
    for (const std::int64_t v : Explorer(opt).workload_stream()) {
      EXPECT_GE(v, -128);
      EXPECT_LE(v, 127);
    }
  }
}

TEST(Explorer, RejectsBadOptions) {
  ExplorerOptions opt;
  opt.reference_mhz = 0;
  EXPECT_THROW(Explorer{opt}, std::invalid_argument);
  opt = {};
  opt.workload_samples = 10;
  EXPECT_THROW(Explorer{opt}, std::invalid_argument);
}

}  // namespace
}  // namespace dwt::explore
