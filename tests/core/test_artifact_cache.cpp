#include "core/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hw/designs.hpp"

namespace dwt::core {
namespace {

hw::DatapathConfig config_for(hw::DesignId id) {
  return hw::design_config(id);
}

// The headline concurrency property: any number of racing requesters for
// one key observe the SAME artifact pointer, and the build ran exactly
// once.  Everything downstream (tile workers sharing a tape, campaign
// threads sharing a netlist) relies on this.
TEST(ArtifactCache, SamePointerAcrossThreadsNeverRebuilds) {
  ArtifactCache cache;
  const hw::DatapathConfig cfg = config_for(hw::DesignId::kDesign3);
  constexpr unsigned kThreads = 8;
  std::vector<std::shared_ptr<const CachedDesign>> seen(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] { seen[t] = cache.design(cfg); });
  }
  for (auto& th : pool) th.join();
  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0].get(), seen[t].get()) << "thread " << t;
  }
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.design_builds, 1u);
  EXPECT_EQ(st.design_hits, kThreads - 1);
}

TEST(ArtifactCache, TapeAndMappedAreMemoized) {
  ArtifactCache cache;
  const hw::DatapathConfig cfg = config_for(hw::DesignId::kDesign2);
  const auto tape1 = cache.tape(cfg);
  const auto tape2 = cache.tape(cfg);
  EXPECT_EQ(tape1.get(), tape2.get());
  const auto mapped1 = cache.mapped(cfg);
  const auto mapped2 = cache.mapped(cfg);
  EXPECT_EQ(mapped1.get(), mapped2.get());
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.tape_builds, 1u);
  EXPECT_EQ(st.tape_hits, 1u);
  EXPECT_EQ(st.mapped_builds, 1u);
  EXPECT_EQ(st.mapped_hits, 1u);
  // The mapping must reference the cached artifact's own netlist, not a
  // dangling temporary.
  EXPECT_EQ(mapped1->mapped.source, &mapped1->dp.netlist);
}

TEST(ArtifactCache, DistinctConfigurationsGetDistinctKeys) {
  const hw::DatapathConfig d2 = config_for(hw::DesignId::kDesign2);
  const hw::DatapathConfig d3 = config_for(hw::DesignId::kDesign3);
  EXPECT_NE(config_key(d2, rtl::HardeningStyle::kNone),
            config_key(d3, rtl::HardeningStyle::kNone));
  EXPECT_NE(config_key(d2, rtl::HardeningStyle::kNone),
            config_key(d2, rtl::HardeningStyle::kTmr));

  ArtifactCache cache;
  const auto a = cache.design(d2);
  const auto b = cache.design(d3);
  const auto c = cache.design(d2, rtl::HardeningStyle::kTmr);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().design_builds, 3u);
}

// Optimization levels are part of the tape key: each level is its own
// cached artifact (a kFull tape would be wrong for a fault campaign, a raw
// tape wastes streaming throughput), the raw level keeps the legacy key,
// and re-requests at any level hit instead of rebuilding.
TEST(ArtifactCache, OptimizedTapesAreKeyedPerLevel) {
  ArtifactCache cache;
  const hw::DatapathConfig cfg = config_for(hw::DesignId::kDesign2);
  const auto raw = cache.tape(cfg);
  const auto safe =
      cache.tape(cfg, rtl::HardeningStyle::kNone, rtl::compiled::OptLevel::kSafe);
  const auto full =
      cache.tape(cfg, rtl::HardeningStyle::kNone, rtl::compiled::OptLevel::kFull);
  EXPECT_NE(raw.get(), safe.get());
  EXPECT_NE(raw.get(), full.get());
  EXPECT_NE(safe.get(), full.get());
  EXPECT_EQ(raw->level(), rtl::compiled::OptLevel::kNone);
  EXPECT_EQ(safe->level(), rtl::compiled::OptLevel::kSafe);
  EXPECT_EQ(full->level(), rtl::compiled::OptLevel::kFull);
  EXPECT_TRUE(safe->fault_overlay_safe());
  EXPECT_FALSE(full->fault_overlay_safe());
  // Each pass pipeline strictly shrinks the tape on this design.
  EXPECT_LT(safe->instrs().size(), raw->instrs().size());
  EXPECT_LT(full->instrs().size(), safe->instrs().size());
  EXPECT_EQ(cache.stats().tape_builds, 3u);
  const auto safe_again =
      cache.tape(cfg, rtl::HardeningStyle::kNone, rtl::compiled::OptLevel::kSafe);
  EXPECT_EQ(safe_again.get(), safe.get());
  EXPECT_EQ(cache.stats().tape_builds, 3u);
  EXPECT_EQ(cache.stats().tape_hits, 1u);
}

// Two configurations that differ ONLY in adder architecture must never
// alias: distinct cache keys, distinct cached artifacts, and genuinely
// different netlists (a prefix adder is chain-free where the carry-chain
// realization is chain cells end to end).  A collision here would hand a
// kogge-stone campaign a carry-chain fault space.
TEST(ArtifactCache, AdderArchitecturesGetDistinctKeysAndNetlists) {
  const hw::DatapathConfig chain = config_for(hw::DesignId::kDesign2);
  hw::DatapathConfig prefix = chain;
  prefix.adder_style = rtl::AdderArch::kKoggeStone;
  EXPECT_NE(config_key(chain, rtl::HardeningStyle::kNone),
            config_key(prefix, rtl::HardeningStyle::kNone));

  ArtifactCache cache;
  const auto a = cache.design(chain);
  const auto b = cache.design(prefix);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().design_builds, 2u);
  EXPECT_GT(a->dp.netlist.count_kind(rtl::CellKind::kAddSum), 0u);
  EXPECT_EQ(b->dp.netlist.count_kind(rtl::CellKind::kAddSum), 0u);
  EXPECT_NE(a->dp.netlist.cell_count(), b->dp.netlist.cell_count());
  // Every architecture in the family keys separately from every other:
  // after sweeping all of them, exactly kAdderArchCount artifacts exist
  // (the carry-chain and kogge-stone requests hit the two entries above).
  for (const rtl::AdderArch arch : rtl::all_adder_archs()) {
    hw::DatapathConfig cfg = chain;
    cfg.adder_style = arch;
    (void)cache.design(cfg);
  }
  EXPECT_EQ(cache.stats().design_builds,
            static_cast<std::size_t>(rtl::kAdderArchCount));
}

TEST(ArtifactCache, HardenedArtifactCarriesItsReport) {
  ArtifactCache cache;
  const hw::DatapathConfig cfg = config_for(hw::DesignId::kDesign1);
  const auto plain = cache.design(cfg);
  EXPECT_EQ(plain->harden, rtl::HardeningStyle::kNone);
  EXPECT_EQ(plain->harden_report.protected_ffs, 0u);
  const auto tmr = cache.design(cfg, rtl::HardeningStyle::kTmr);
  EXPECT_EQ(tmr->harden, rtl::HardeningStyle::kTmr);
  EXPECT_GT(tmr->harden_report.protected_ffs, 0u);
  EXPECT_GT(tmr->dp.netlist.cells().size(), plain->dp.netlist.cells().size());
}

TEST(ArtifactCache, ClearResetsEntriesAndCounters) {
  ArtifactCache cache;
  const hw::DatapathConfig cfg = config_for(hw::DesignId::kDesign2);
  const auto before = cache.design(cfg);
  cache.clear();
  const CacheStats zeroed = cache.stats();
  EXPECT_EQ(zeroed.design_builds, 0u);
  EXPECT_EQ(zeroed.design_hits, 0u);
  // A post-clear request re-elaborates; the old artifact stays valid
  // through its shared_ptr.
  const auto after = cache.design(cfg);
  EXPECT_EQ(cache.stats().design_builds, 1u);
  EXPECT_EQ(before->dp.netlist.cells().size(),
            after->dp.netlist.cells().size());
}

TEST(ArtifactCache, ProcessWideInstanceIsASingleton) {
  EXPECT_EQ(&ArtifactCache::instance(), &ArtifactCache::instance());
}

}  // namespace
}  // namespace dwt::core
