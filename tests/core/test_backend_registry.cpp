#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dsp/dwt2d.hpp"
#include "dsp/image.hpp"
#include "dsp/image_gen.hpp"
#include "explore/tradeoffs.hpp"
#include "hw/designs.hpp"

namespace dwt::core {
namespace {

TEST(BackendRegistry, FiveEnginesInPresentationOrder) {
  const std::vector<const ExecutionBackend*>& backends = all_backends();
  ASSERT_EQ(backends.size(), 5u);
  const char* expected[] = {"software-float", "software-fixed",
                            "rtl-interpreted", "rtl-compiled", "fpga-mapped"};
  for (std::size_t i = 0; i < backends.size(); ++i) {
    EXPECT_EQ(backends[i]->name(), expected[i]);
    EXPECT_FALSE(backends[i]->description().empty());
    EXPECT_EQ(find_backend(backends[i]->name()), backends[i]);
  }
  EXPECT_EQ(find_backend("no-such-engine"), nullptr);
  EXPECT_EQ(find_backend(""), nullptr);
  EXPECT_EQ(backend_names(), std::string("software-float|software-fixed|"
                                         "rtl-interpreted|rtl-compiled|"
                                         "fpga-mapped"));
}

TEST(BackendRegistry, CapabilityFlagsMatchTheEngineContracts) {
  const ExecutionBackend* fixed = find_backend("software-fixed");
  ASSERT_NE(fixed, nullptr);
  EXPECT_FALSE(fixed->caps().gate_level);
  EXPECT_TRUE(fixed->caps().bit_exact);
  EXPECT_TRUE(fixed->caps().inverse_2d);

  const ExecutionBackend* flt = find_backend("software-float");
  ASSERT_NE(flt, nullptr);
  EXPECT_FALSE(flt->caps().bit_exact);

  for (const char* gate : {"rtl-interpreted", "rtl-compiled"}) {
    const ExecutionBackend* b = find_backend(gate);
    ASSERT_NE(b, nullptr) << gate;
    EXPECT_TRUE(b->caps().gate_level) << gate;
    EXPECT_TRUE(b->caps().cycle_accurate) << gate;
    EXPECT_TRUE(b->caps().bit_exact) << gate;
    EXPECT_TRUE(b->caps().forward_2d) << gate;
    EXPECT_FALSE(b->caps().inverse_2d) << gate;
  }

  const ExecutionBackend* mapped = find_backend("fpga-mapped");
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(mapped->caps().gate_level);
  EXPECT_FALSE(mapped->caps().forward_2d);
}

// The cross-engine contract the registry exists to enforce: every backend
// whose caps() claim bit-exactness streams the SAME integer coefficients as
// the software fixed-point reference, on every Table 3 design, for even and
// odd stream lengths.  A newly registered engine is held to this matrix
// automatically.
TEST(BackendRegistry, BitExactBackendsMatchTheFixedPointReference) {
  const ExecutionBackend* reference = find_backend("software-fixed");
  ASSERT_NE(reference, nullptr);
  common::Rng rng(97);
  for (const std::size_t len : {64u, 33u, 5u}) {
    std::vector<std::int64_t> x(len);
    for (std::int64_t& v : x) v = rng.uniform(-128, 127);
    for (const hw::DesignSpec& spec : hw::all_designs()) {
      BackendRequest req;
      req.design = spec.id;
      const hw::StreamResult golden = reference->stream(req, x);
      for (const ExecutionBackend* backend : all_backends()) {
        if (!backend->caps().bit_exact) continue;
        const hw::StreamResult got = backend->stream(req, x);
        const std::string what = std::string(backend->name()) + " on " +
                                 spec.name + " len " + std::to_string(len);
        EXPECT_EQ(got.low, golden.low) << what;
        EXPECT_EQ(got.high, golden.high) << what;
        if (backend->caps().cycle_accurate) {
          EXPECT_GT(got.cycles, 0u) << what;
        } else {
          EXPECT_EQ(got.cycles, 0u) << what;
        }
      }
    }
  }
}

TEST(BackendRegistry, Forward1dRoundsThroughTheStreamPath) {
  const ExecutionBackend* backend = find_backend("rtl-compiled");
  ASSERT_NE(backend, nullptr);
  const std::vector<double> x{12.0, -3.0, 55.0, 7.0, -90.0, 4.0, 31.0};
  const dsp::Subbands1d sb = backend->forward_1d(BackendRequest{}, x);
  EXPECT_EQ(sb.low.size(), 4u);
  EXPECT_EQ(sb.high.size(), 3u);
  const ExecutionBackend* reference = find_backend("software-fixed");
  const dsp::Subbands1d ref = reference->forward_1d(BackendRequest{}, x);
  EXPECT_EQ(sb.low, ref.low);
  EXPECT_EQ(sb.high, ref.high);
}

TEST(BackendRegistry, TwoDimensionalSessionsAgreeWithTheSoftwareModel) {
  dsp::Image reference = dsp::make_still_tone_image(33, 21, 7);
  dsp::level_shift_forward(reference);
  dsp::round_coefficients(reference);
  const dsp::Image source = reference;
  (void)find_backend("software-fixed")->forward_2d(BackendRequest{},
                                                   reference, 2);
  for (const ExecutionBackend* backend : all_backends()) {
    if (!backend->caps().forward_2d || !backend->caps().bit_exact) continue;
    if (backend->name() == "software-fixed") continue;
    BackendRequest req;
    req.max_octaves = 2;
    dsp::Image plane = source;
    const hw::Dwt2dRunStats stats = backend->forward_2d(req, plane, 2);
    EXPECT_EQ(plane.data(), reference.data()) << backend->name();
    if (backend->caps().cycle_accurate) {
      EXPECT_GT(stats.total_cycles, 0u) << backend->name();
    }
  }
}

TEST(BackendRegistry, UnsupportedEntryPointsThrow) {
  const ExecutionBackend* mapped = find_backend("fpga-mapped");
  ASSERT_NE(mapped, nullptr);
  dsp::Image plane = dsp::make_still_tone_image(16, 16, 3);
  EXPECT_THROW((void)mapped->forward_2d(BackendRequest{}, plane, 1),
               std::invalid_argument);
  EXPECT_THROW((void)mapped->make_2d_session(BackendRequest{}),
               std::invalid_argument);
}

// profile_backends drives the whole registry through the tradeoffs layer;
// its matrix is what EXPERIMENTS.md publishes, so pin the semantics: every
// bit-exact engine matches the reference, the float model does not.
TEST(BackendRegistry, ProfileBackendsPinsTheEquivalenceMatrix) {
  const std::vector<explore::BackendProfile> profiles =
      explore::profile_backends(/*samples=*/48, /*seed=*/11);
  ASSERT_EQ(profiles.size(), all_backends().size());
  for (const explore::BackendProfile& p : profiles) {
    ASSERT_EQ(p.stream_cycles.size(), 5u) << p.backend;
    EXPECT_EQ(p.matches_reference, p.bit_exact) << p.backend;
    for (const std::uint64_t cycles : p.stream_cycles) {
      if (p.cycle_accurate) {
        EXPECT_GT(cycles, 0u) << p.backend;
      } else {
        EXPECT_EQ(cycles, 0u) << p.backend;
      }
    }
  }
}

}  // namespace
}  // namespace dwt::core
