#include "common/fixed_point.hpp"

#include <gtest/gtest.h>

namespace dwt::common {
namespace {

TEST(FixedPoint, FromDoubleRoundsToNearest) {
  EXPECT_EQ(Fixed::from_double(0.5, 8).raw(), 128);
  EXPECT_EQ(Fixed::from_double(-0.5, 8).raw(), -128);
  EXPECT_EQ(Fixed::from_double(1.0, 8).raw(), 256);
  EXPECT_EQ(Fixed::from_double(0.0, 8).raw(), 0);
}

TEST(FixedPoint, RoundsHalfAwayFromZero) {
  // 0.001953125 * 256 = 0.5 exactly.
  EXPECT_EQ(Fixed::from_double(0.001953125, 8).raw(), 1);
  EXPECT_EQ(Fixed::from_double(-0.001953125, 8).raw(), -1);
}

TEST(FixedPoint, PaperTable1Constants) {
  EXPECT_EQ(Fixed::from_double(-1.586134342, 8).raw(), -406);
  EXPECT_EQ(Fixed::from_double(-0.052980118, 8).raw(), -14);
  EXPECT_EQ(Fixed::from_double(0.882911075, 8).raw(), 226);
  EXPECT_EQ(Fixed::from_double(0.443506852, 8).raw(), 114);
  EXPECT_EQ(Fixed::from_double(0.812893066, 8).raw(), 208);
  // Correct rounding of -1.230174105*256 = -314.92... gives -315; the
  // paper's binary column (10.11000101) encodes -315 as well, though its
  // integer column prints -314 (a known inconsistency in the paper).
  EXPECT_EQ(Fixed::from_double(-1.230174105, 8).raw(), -315);
}

TEST(FixedPoint, ToDoubleRoundTrips) {
  const Fixed f = Fixed::from_raw(-406, 8);
  EXPECT_DOUBLE_EQ(f.to_double(), -406.0 / 256.0);
}

TEST(FixedPoint, BinaryStringMatchesPaperTable1) {
  EXPECT_EQ(Fixed::from_raw(-406, 8).to_binary_string(2), "10.01101010");
  EXPECT_EQ(Fixed::from_raw(-14, 8).to_binary_string(2), "11.11110010");
  EXPECT_EQ(Fixed::from_raw(226, 8).to_binary_string(2), "00.11100010");
  EXPECT_EQ(Fixed::from_raw(208, 8).to_binary_string(2), "00.11010000");
  EXPECT_EQ(Fixed::from_raw(-315, 8).to_binary_string(2), "10.11000101");
}

TEST(FixedPoint, MulConstTruncateMatchesArithmeticShift) {
  const Fixed alpha = Fixed::from_raw(-406, 8);
  for (std::int64_t x = -300; x <= 300; x += 7) {
    EXPECT_EQ(mul_const_truncate(x, alpha), (x * -406) >> 8) << "x=" << x;
  }
}

TEST(FixedPoint, MulConstTruncateIsFloorDivision) {
  const Fixed half = Fixed::from_raw(128, 8);  // 0.5
  EXPECT_EQ(mul_const_truncate(3, half), 1);   // 1.5 -> 1
  EXPECT_EQ(mul_const_truncate(-3, half), -2); // -1.5 -> -2 (floor)
}

TEST(FixedPoint, SignedBitsForRange) {
  EXPECT_EQ(signed_bits_for_range(-128, 127), 8);
  EXPECT_EQ(signed_bits_for_range(-128, 128), 9);
  EXPECT_EQ(signed_bits_for_range(-530, 530), 11);
  EXPECT_EQ(signed_bits_for_range(-184, 184), 9);
  EXPECT_EQ(signed_bits_for_range(0, 0), 1);
  EXPECT_EQ(signed_bits_for_range(-1, 0), 1);
  EXPECT_EQ(signed_bits_for_range(0, 1), 2);
}

TEST(FixedPoint, SignedBitsRejectsInvertedRange) {
  EXPECT_THROW((void)signed_bits_for_range(1, 0), std::invalid_argument);
}

TEST(FixedPoint, MinSignedBits) {
  EXPECT_EQ(Fixed::from_raw(-406, 8).min_signed_bits(), 10);
  EXPECT_EQ(Fixed::from_raw(226, 8).min_signed_bits(), 9);
  EXPECT_EQ(Fixed::from_raw(-14, 8).min_signed_bits(), 5);
}

TEST(FixedPoint, FromDoubleRejectsBadFracBits) {
  EXPECT_THROW((void)Fixed::from_double(1.0, -1), std::invalid_argument);
  EXPECT_THROW((void)Fixed::from_double(1.0, 61), std::invalid_argument);
}

class FixedFracBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedFracBitsTest, ScalesWithFracBits) {
  const int f = GetParam();
  const Fixed x = Fixed::from_double(-1.586134342, f);
  EXPECT_NEAR(x.to_double(), -1.586134342, 1.0 / (1 << f));
}

INSTANTIATE_TEST_SUITE_P(WordLengths, FixedFracBitsTest,
                         ::testing::Values(4, 6, 8, 10, 12, 16));

}  // namespace
}  // namespace dwt::common
