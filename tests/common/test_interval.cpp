#include "common/interval.hpp"

#include <gtest/gtest.h>

namespace dwt::common {
namespace {

TEST(Interval, SignedBitsRange) {
  EXPECT_EQ(Interval::signed_bits(8), (Interval{-128, 127}));
  EXPECT_EQ(Interval::signed_bits(1), (Interval{-1, 0}));
  EXPECT_THROW((void)Interval::signed_bits(0), std::invalid_argument);
  EXPECT_THROW((void)Interval::signed_bits(63), std::invalid_argument);
}

TEST(Interval, Addition) {
  const Interval a{-10, 20};
  const Interval b{-5, 7};
  EXPECT_EQ(a + b, (Interval{-15, 27}));
}

TEST(Interval, Subtraction) {
  const Interval a{-10, 20};
  const Interval b{-5, 7};
  EXPECT_EQ(a - b, (Interval{-17, 25}));
}

TEST(Interval, MultiplyByPositiveConstant) {
  EXPECT_EQ((Interval{-3, 5}) * 4, (Interval{-12, 20}));
}

TEST(Interval, MultiplyByNegativeConstantSwapsBounds) {
  EXPECT_EQ((Interval{-3, 5}) * -4, (Interval{-20, 12}));
}

TEST(Interval, ArithmeticShiftRightIsFloor) {
  EXPECT_EQ(asr(Interval{-5, 5}, 1), (Interval{-3, 2}));
  EXPECT_EQ(asr(Interval{-256, 255}, 8), (Interval{-1, 0}));
}

TEST(Interval, ShiftLeft) {
  EXPECT_EQ(shl(Interval{-3, 5}, 3), (Interval{-24, 40}));
}

TEST(Interval, Hull) {
  EXPECT_EQ(hull(Interval{-3, 5}, Interval{-10, 1}), (Interval{-10, 5}));
  EXPECT_EQ(hull(Interval::point(0), Interval{-128, 127}),
            (Interval{-128, 127}));
}

TEST(Interval, Contains) {
  const Interval a{-530, 530};
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(-530));
  EXPECT_TRUE(a.contains(530));
  EXPECT_FALSE(a.contains(531));
}

TEST(Interval, MinSignedBitsMatchesPaperSection31) {
  EXPECT_EQ((Interval{-530, 530}).min_signed_bits(), 11);
  EXPECT_EQ((Interval{-184, 184}).min_signed_bits(), 9);
  EXPECT_EQ((Interval{-205, 205}).min_signed_bits(), 9);
  EXPECT_EQ((Interval{-366, 366}).min_signed_bits(), 10);
  EXPECT_EQ((Interval{-298, 298}).min_signed_bits(), 10);
  EXPECT_EQ((Interval{-252, 252}).min_signed_bits(), 9);
}

/// Property: interval arithmetic is a sound over-approximation -- every
/// concrete operation on members lands inside the result interval.
class IntervalSoundness : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSoundness, OperationsAreSound) {
  const int seed = GetParam();
  // Deterministic pseudo-random intervals derived from the seed.
  const std::int64_t lo_a = -(seed * 13 % 97), hi_a = seed * 7 % 53;
  const std::int64_t lo_b = -(seed * 5 % 31), hi_b = seed * 11 % 71;
  const Interval a{lo_a, hi_a}, b{lo_b, hi_b};
  for (std::int64_t x = lo_a; x <= hi_a; x += std::max<std::int64_t>(1, (hi_a - lo_a) / 7)) {
    for (std::int64_t y = lo_b; y <= hi_b; y += std::max<std::int64_t>(1, (hi_b - lo_b) / 7)) {
      EXPECT_TRUE((a + b).contains(x + y));
      EXPECT_TRUE((a - b).contains(x - y));
      EXPECT_TRUE((a * -3).contains(x * -3));
      EXPECT_TRUE(asr(a, 2).contains(x >> 2));
      EXPECT_TRUE(shl(a, 2).contains(x << 2));
      EXPECT_TRUE(hull(a, b).contains(x));
      EXPECT_TRUE(hull(a, b).contains(y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace dwt::common
