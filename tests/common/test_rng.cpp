#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dwt::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform(-128, 127);
    EXPECT_GE(v, -128);
    EXPECT_LE(v, 127);
  }
}

TEST(Rng, UniformCoversFullSmallRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RoughlyUnbiasedBits) {
  Rng rng(123);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) {
    ones += __builtin_popcountll(rng.next_u64());
  }
  EXPECT_NEAR(static_cast<double>(ones) / (1000.0 * 64.0), 0.5, 0.01);
}

}  // namespace
}  // namespace dwt::common
