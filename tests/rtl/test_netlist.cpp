#include "rtl/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dwt::rtl {
namespace {

TEST(Netlist, InputsAndCells) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(CellKind::kAnd2, a, b, kNullNet, "y");
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.cell_count(), 1u);
  EXPECT_EQ(nl.net(y).driver, 0u);
  EXPECT_TRUE(nl.net(a).is_primary_input);
  EXPECT_FALSE(nl.net(y).is_primary_input);
}

TEST(Netlist, InputBusNamesAndRecovery) {
  Netlist nl;
  const Bus bus = nl.add_input_bus("data", 4);
  EXPECT_EQ(bus.width(), 4);
  EXPECT_EQ(nl.net(bus.bits[2]).name, "data[2]");
  const Bus found = nl.find_input_bus("data");
  EXPECT_EQ(found.bits, bus.bits);
  EXPECT_THROW(nl.find_input_bus("nothere"), std::out_of_range);
}

TEST(Netlist, ConstantsAreSingletons) {
  Netlist nl;
  EXPECT_EQ(nl.const0(), nl.const0());
  EXPECT_EQ(nl.const1(), nl.const1());
  EXPECT_NE(nl.const0(), nl.const1());
}

TEST(Netlist, OutputBinding) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.bind_output("y", Bus{{a}});
  EXPECT_EQ(nl.output("y").bits[0], a);
  EXPECT_THROW((void)nl.output("z"), std::out_of_range);
  EXPECT_THROW(nl.bind_output("bad", Bus{}), std::invalid_argument);
}

TEST(Netlist, CountKind) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)nl.add_cell(CellKind::kNot, a);
  (void)nl.add_cell(CellKind::kNot, a);
  (void)nl.add_cell(CellKind::kDff, a);
  EXPECT_EQ(nl.count_kind(CellKind::kNot), 2u);
  EXPECT_EQ(nl.count_kind(CellKind::kDff), 1u);
}

TEST(Netlist, FanoutCounts) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_cell(CellKind::kNot, a);
  (void)nl.add_cell(CellKind::kAnd2, a, n1);
  const auto fanout = nl.fanout_counts();
  EXPECT_EQ(fanout[a], 2u);
  EXPECT_EQ(fanout[n1], 1u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_cell(CellKind::kNot, a);
  const NetId y = nl.add_cell(CellKind::kNot, x);
  (void)y;
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), 2u);
  // The driver of x must appear before the driver of y.
  EXPECT_LT(std::find(order.begin(), order.end(), nl.net(x).driver),
            std::find(order.begin(), order.end(), nl.net(y).driver));
}

TEST(Netlist, TopoOrderBreaksAtRegisters) {
  // A feedback loop through a DFF is sequential, not combinational.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.add_cell(CellKind::kDff, a);  // placeholder D
  const NetId x = nl.add_cell(CellKind::kXor2, a, q);
  nl.rewire_input(nl.net(q).driver, 0, x);
  EXPECT_NO_THROW(nl.topo_order());
}

TEST(Netlist, ValidateDetectsUnwiredInput) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)nl.add_cell(CellKind::kAnd2, a, kNullNet);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, ValidateAcceptsWellFormed) {
  Netlist nl;
  const Bus in = nl.add_input_bus("x", 2);
  const NetId y = nl.add_cell(CellKind::kXor2, in.bits[0], in.bits[1], kNullNet);
  nl.bind_output("y", Bus{{y}});
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ChainCellsTracked) {
  Netlist nl;
  const Bus in = nl.add_input_bus("x", 2);
  const std::int32_t chain = nl.new_chain_id();
  const NetId s = nl.add_chain_cell(CellKind::kAddSum, in.bits[0], in.bits[1],
                                    nl.const0(), chain, 0);
  EXPECT_EQ(nl.cell(nl.net(s).driver).chain_id, chain);
  EXPECT_EQ(nl.cell(nl.net(s).driver).chain_bit, 0);
  EXPECT_THROW(
      nl.add_chain_cell(CellKind::kAnd2, in.bits[0], in.bits[1], nl.const0(),
                        chain, 1),
      std::invalid_argument);
}

TEST(Netlist, ClusterAssignment) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellKind::kNot, a);
  const std::int32_t c = nl.new_cluster_id();
  nl.set_cluster(y, c);
  EXPECT_EQ(nl.cell(nl.net(y).driver).cluster_id, c);
  EXPECT_THROW(nl.set_cluster(a, c), std::invalid_argument);  // input: no driver
}

TEST(Netlist, RewireInputValidatesArguments) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellKind::kNot, a);
  const CellId cell = nl.net(y).driver;
  EXPECT_THROW(nl.rewire_input(cell, 1, a), std::invalid_argument);  // kNot has 1 input
  EXPECT_THROW(nl.rewire_input(cell, 0, 9999), std::invalid_argument);
  EXPECT_NO_THROW(nl.rewire_input(cell, 0, a));
}

}  // namespace
}  // namespace dwt::rtl
