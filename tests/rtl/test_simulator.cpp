#include "rtl/simulator.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"

namespace dwt::rtl {
namespace {

TEST(Simulator, GateTruthTables) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  const NetId n_not = nl.add_cell(CellKind::kNot, a);
  const NetId n_and = nl.add_cell(CellKind::kAnd2, a, b);
  const NetId n_or = nl.add_cell(CellKind::kOr2, a, b);
  const NetId n_xor = nl.add_cell(CellKind::kXor2, a, b);
  const NetId n_mux = nl.add_cell(CellKind::kMux2, a, b, s);
  Simulator sim(nl);
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 2; ++vb) {
      for (int vs = 0; vs < 2; ++vs) {
        sim.set_input(a, va != 0);
        sim.set_input(b, vb != 0);
        sim.set_input(s, vs != 0);
        sim.eval();
        EXPECT_EQ(sim.value(n_not), va == 0);
        EXPECT_EQ(sim.value(n_and), va && vb);
        EXPECT_EQ(sim.value(n_or), va || vb);
        EXPECT_EQ(sim.value(n_xor), va != vb);
        EXPECT_EQ(sim.value(n_mux), vs ? vb != 0 : va != 0);
      }
    }
  }
}

TEST(Simulator, FullAdderCells) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId sum = nl.add_cell(CellKind::kAddSum, a, b, c);
  const NetId carry = nl.add_cell(CellKind::kAddCarry, a, b, c);
  Simulator sim(nl);
  for (int m = 0; m < 8; ++m) {
    sim.set_input(a, m & 1);
    sim.set_input(b, m & 2);
    sim.set_input(c, m & 4);
    sim.eval();
    const int total = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(sim.value(sum), total % 2 == 1) << m;
    EXPECT_EQ(sim.value(carry), total >= 2) << m;
  }
}

TEST(Simulator, DffSamplesOnStep) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  Simulator sim(nl);
  sim.set_input(d, true);
  sim.eval();
  EXPECT_FALSE(sim.value(q));  // eval does not clock
  sim.step();
  EXPECT_TRUE(sim.value(q));
  sim.set_input(d, false);
  sim.step();
  EXPECT_FALSE(sim.value(q));
}

TEST(Simulator, ShiftRegisterChain) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q1 = nl.add_cell(CellKind::kDff, d);
  const NetId q2 = nl.add_cell(CellKind::kDff, q1);
  const NetId q3 = nl.add_cell(CellKind::kDff, q2);
  Simulator sim(nl);
  const bool pattern[] = {true, false, true, true, false};
  for (int t = 0; t < 5; ++t) {
    sim.set_input(d, pattern[t]);
    sim.step();
    if (t >= 2) {
      EXPECT_EQ(sim.value(q3), pattern[t - 2]) << t;
    }
  }
}

TEST(Simulator, TogglingFeedbackThroughDff) {
  // q <= not q: a divide-by-two toggler; two-phase update must not race.
  Netlist nl;
  const NetId q = nl.add_cell(CellKind::kDff, kNullNet);
  const NetId nq = nl.add_cell(CellKind::kNot, q);
  nl.rewire_input(nl.net(q).driver, 0, nq);
  Simulator sim(nl);
  bool expected = false;
  for (int t = 0; t < 6; ++t) {
    sim.step();
    expected = !expected;
    EXPECT_EQ(sim.value(q), expected) << t;
  }
}

TEST(Simulator, SetBusRejectsOverflow) {
  Netlist nl;
  Builder b(nl);
  const Bus in = nl.add_input_bus("x", 4);
  Simulator sim(nl);
  EXPECT_NO_THROW(sim.set_bus(in, 7));
  EXPECT_NO_THROW(sim.set_bus(in, -8));
  EXPECT_THROW(sim.set_bus(in, 8), std::invalid_argument);
  EXPECT_THROW(sim.set_bus(in, -9), std::invalid_argument);
}

TEST(Simulator, SetInputRejectsNonInputs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellKind::kNot, a);
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input(y, true), std::invalid_argument);
}

TEST(Simulator, ResetClearsState) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  Simulator sim(nl);
  sim.set_input(d, true);
  sim.step();
  EXPECT_TRUE(sim.value(q));
  sim.reset();
  EXPECT_FALSE(sim.value(q));
}

}  // namespace
}  // namespace dwt::rtl
