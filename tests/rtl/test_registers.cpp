#include "rtl/registers.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/adders.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {
namespace {

TEST(PipelinerGranularity, OneRegistersEverySum) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, true, 1);
  Word x = word_input(nl, "x", 4);
  Word acc = x;
  for (int i = 0; i < 4; ++i) {
    acc = word_add(p, acc, x, AdderStyle::kCarryChain, "a" + std::to_string(i));
  }
  EXPECT_EQ(acc.depth, 4);
}

TEST(PipelinerGranularity, TwoRegistersEveryOtherSum) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, true, 2);
  Word x = word_input(nl, "x", 4);
  Word acc = x;
  for (int i = 0; i < 4; ++i) {
    acc = word_add(p, acc, x, AdderStyle::kCarryChain, "a" + std::to_string(i));
  }
  EXPECT_EQ(acc.depth, 2);
}

TEST(PipelinerGranularity, FunctionallyEquivalentAcrossGranularities) {
  common::Rng rng(5);
  std::vector<std::int64_t> results;
  for (const int gran : {1, 2, 3}) {
    Netlist nl;
    Builder b(nl);
    Pipeliner p(b, true, gran);
    const Word x = word_input(nl, "x", 6);
    Word acc = x;
    for (int i = 0; i < 5; ++i) {
      acc = word_add(p, acc, word_shl(b, x, 1), AdderStyle::kCarryChain,
                     "a" + std::to_string(i));
    }
    nl.bind_output("y", acc.bus);
    Simulator sim(nl);
    sim.set_bus(x.bus, 13);
    for (int k = 0; k <= acc.depth; ++k) sim.step();
    results.push_back(sim.read_bus(acc.bus));
  }
  EXPECT_EQ(results[0], 13 + 5 * 26);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(PipelinerGranularity, RejectsNonPositive) {
  Netlist nl;
  Builder b(nl);
  EXPECT_THROW(Pipeliner(b, true, 0), std::invalid_argument);
}

TEST(WordInput, RangeMatchesWidth) {
  Netlist nl;
  const Word w = word_input(nl, "x", 9);
  EXPECT_EQ(w.range.lo, -256);
  EXPECT_EQ(w.range.hi, 255);
  EXPECT_EQ(w.depth, 0);
}

TEST(WidthFor, MatchesIntervalBits) {
  EXPECT_EQ(width_for(common::Interval{-530, 530}), 11);
  EXPECT_EQ(width_for(common::Interval{0, 1}), 2);
}

TEST(Pipeliner, StageAlwaysRegistersEvenWhenDisabled) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = word_input(nl, "x", 4);
  const Word r = p.stage(x, "r");
  EXPECT_EQ(r.depth, 1);
  EXPECT_EQ(nl.count_kind(CellKind::kDff), 4u);
}

}  // namespace
}  // namespace dwt::rtl
