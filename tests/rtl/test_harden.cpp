#include "rtl/harden.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "fpga/tech_mapper.hpp"
#include "hw/designs.hpp"
#include "rtl/fault.hpp"
#include "rtl/simplify.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {
namespace {

/// 4-bit register bank: x[4] -> DFFs -> y[4].
Netlist make_regbank() {
  Netlist nl;
  const Bus x = nl.add_input_bus("x", 4);
  Bus q;
  for (const NetId bit : x.bits) {
    q.bits.push_back(nl.add_cell(CellKind::kDff, bit));
  }
  nl.bind_output("y", q);
  return nl;
}

TEST(Harden, TmrTriplicatesEveryDff) {
  const Netlist nl = make_regbank();
  HardeningReport report;
  const Netlist tmr = apply_tmr(nl, &report);
  EXPECT_EQ(report.protected_ffs, 4u);
  EXPECT_EQ(report.added_ffs, 8u);          // two extra replicas per DFF
  EXPECT_EQ(report.added_gates, 4u * 5u);   // 5-gate majority voter each
  EXPECT_EQ(tmr.count_kind(CellKind::kDff), 12u);
  EXPECT_EQ(tmr.output("y").bits.size(), 4u);
}

TEST(Harden, TmrGoldenEquivalentOneSettleLater) {
  const Netlist nl = make_regbank();
  const Netlist tmr = apply_tmr(nl);
  const Bus x0 = nl.find_input_bus("x");
  const Bus x1 = tmr.find_input_bus("x");
  Simulator ref(nl);
  Simulator sim(tmr);
  // Registered ports read fresh at the edge; voter ports are combinational
  // and read one settle later, so the TMR trace is the reference delayed by
  // exactly one cycle (hw::harden_datapath folds this into the latency).
  const std::int64_t pattern[] = {3, -8, 7, 0, -1, 5, 2, -4};
  std::vector<std::int64_t> ref_trace;
  std::vector<std::int64_t> tmr_trace;
  for (const std::int64_t v : pattern) {
    ref.set_bus(x0, v);
    sim.set_bus(x1, v);
    ref.step();
    sim.step();
    ref_trace.push_back(ref.read_bus(nl.output("y")));
    tmr_trace.push_back(sim.read_bus(tmr.output("y")));
  }
  for (std::size_t c = 0; c + 1 < std::size(pattern); ++c) {
    EXPECT_EQ(tmr_trace[c + 1], ref_trace[c]) << c;
  }
}

TEST(Harden, TmrMasksEverySingleSeu) {
  const Netlist nl = make_regbank();
  const Netlist tmr = apply_tmr(nl);
  const Bus x = tmr.find_input_bus("x");
  const Bus y = tmr.output("y");
  const std::int64_t pattern[] = {3, -8, 7, 0, -1, 5, 2, -4};

  const auto trace = [&](FaultInjector& inj) {
    std::vector<std::int64_t> out;
    for (const std::int64_t v : pattern) {
      inj.set_bus(x, v);
      inj.step();
      out.push_back(inj.read_bus(y));
    }
    return out;
  };

  Simulator clean_sim(tmr);
  FaultInjector clean(tmr, clean_sim);
  const std::vector<std::int64_t> golden = trace(clean);

  const std::vector<NetId> targets = seu_targets(tmr);
  ASSERT_EQ(targets.size(), 12u);
  for (const NetId t : targets) {
    for (const std::uint64_t cycle : {std::uint64_t{1}, std::uint64_t{4}}) {
      Simulator sim(tmr);
      FaultInjector inj(tmr, sim);
      inj.arm({FaultKind::kSeuFlip, t, cycle, true});
      EXPECT_EQ(trace(inj), golden) << "net " << t << " cycle " << cycle;
      EXPECT_EQ(inj.faults_applied(), 1u);
    }
  }
}

TEST(Harden, ParityAddsFlagAndDetectsSeu) {
  const Netlist nl = make_regbank();
  HardeningReport report;
  const Netlist par = apply_parity(nl, &report);
  EXPECT_EQ(report.protected_ffs, 4u);
  EXPECT_GE(report.parity_groups, 1u);
  const Bus flag = par.output(kErrorFlagPort);
  ASSERT_EQ(flag.bits.size(), 1u);
  const Bus x = par.find_input_bus("x");

  // Clean run: the flag must never rise.
  {
    Simulator sim(par);
    FaultInjector inj(par, sim);
    inj.watch(flag.bits.front());
    for (std::int64_t v : {1, -2, 7, -8, 0, 3}) {
      inj.set_bus(x, v);
      inj.step();
    }
    EXPECT_FALSE(inj.watch_triggered());
  }

  // Any single SEU on a protected bit must raise it.
  for (const NetId t : seu_targets(par)) {
    Simulator sim(par);
    FaultInjector inj(par, sim);
    inj.watch(flag.bits.front());
    inj.arm({FaultKind::kSeuFlip, t, 2, true});
    for (std::int64_t v : {1, -2, 7, -8, 0, 3}) {
      inj.set_bus(x, v);
      inj.step();
    }
    EXPECT_TRUE(inj.watch_triggered()) << "net " << t;
  }
}

TEST(Harden, HardenedDesignSurvivesSimplifyAndMapping) {
  const hw::BuiltDatapath built = hw::build_design(hw::DesignId::kDesign2);
  const std::size_t base_ffs =
      simplify(built.netlist).count_kind(CellKind::kDff);

  HardeningReport report;
  const Netlist tmr = simplify(apply_tmr(built.netlist, &report));
  // simplify() must not merge the replicas back together.
  EXPECT_EQ(tmr.count_kind(CellKind::kDff), 3u * base_ffs);
  const fpga::MappedNetlist tmr_mapped = fpga::map_to_apex(tmr);
  EXPECT_GT(tmr_mapped.le_count(),
            fpga::map_to_apex(simplify(built.netlist)).le_count());

  const Netlist par = simplify(apply_parity(built.netlist));
  EXPECT_EQ(par.output(kErrorFlagPort).bits.size(), 1u);
  EXPECT_GT(fpga::map_to_apex(par).le_count(), 0u);
}

TEST(Harden, ApplyHardeningNoneIsIdentityCopy) {
  const Netlist nl = make_regbank();
  HardeningReport report;
  const Netlist same = apply_hardening(nl, HardeningStyle::kNone, &report);
  EXPECT_EQ(same.cell_count(), nl.cell_count());
  EXPECT_EQ(report.protected_ffs, 0u);
  EXPECT_EQ(report.added_ffs, 0u);
}

}  // namespace
}  // namespace dwt::rtl
