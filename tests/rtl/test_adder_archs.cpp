// The adder-architecture family behind the build_adder() seam: every
// architecture must be arithmetically indistinguishable (Builder::add/sub
// are exact modulo 2^out_width), the prefix networks must be chain-free
// plain-gate netlists of logarithmic depth, and the string seam must
// round-trip the canonical names.
#include "rtl/build_adder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "rtl/builder.hpp"
#include "rtl/simulator.hpp"
#include "rtl/verilog_writer.hpp"

namespace dwt::rtl {
namespace {

std::string arch_label(AdderArch arch) {
  std::string label = adder_name(arch);
  std::string out;
  for (const char c : label) {
    if (c != '-') out.push_back(c);
  }
  return out;
}

/// Signed value of `v` truncated to `width` bits (two's complement wrap).
std::int64_t wrap(std::int64_t v, int width) {
  const std::int64_t m = std::int64_t{1} << width;
  std::int64_t r = ((v % m) + m) % m;
  if (r >= m / 2) r -= m;
  return r;
}

/// Combinational logic depth (in cells) of the cone driving `net`.
int logic_depth(const Netlist& nl, NetId net) {
  std::vector<int> depth(nl.net_count(), -1);
  std::vector<NetId> stack{net};
  // Two-phase DFS: push children first, resolve once all inputs are known.
  while (!stack.empty()) {
    const NetId n = stack.back();
    if (depth[n] >= 0) {
      stack.pop_back();
      continue;
    }
    const CellId drv = nl.net(n).driver;
    if (drv == kNullCell) {
      depth[n] = 0;
      stack.pop_back();
      continue;
    }
    const Cell& cell = nl.cell(drv);
    if (cell.kind == CellKind::kDff || cell.kind == CellKind::kConst0 ||
        cell.kind == CellKind::kConst1) {
      depth[n] = 0;
      stack.pop_back();
      continue;
    }
    int max_in = 0;
    bool ready = true;
    for (int i = 0; i < input_count(cell.kind); ++i) {
      const NetId in = cell.in[static_cast<std::size_t>(i)];
      if (depth[in] < 0) {
        stack.push_back(in);
        ready = false;
      } else {
        max_in = std::max(max_in, depth[in]);
      }
    }
    if (ready) {
      depth[n] = max_in + 1;
      stack.pop_back();
    }
  }
  return depth[net];
}

class AdderArchTest : public ::testing::TestWithParam<AdderArch> {};

// Every architecture x widths 1..16, against an int64 reference: both the
// overflow-truncating out_width == w path and the exact out_width == w + 1
// path, for add and sub.  Exhaustive over all operand pairs up to width 5,
// dense random coverage above.
TEST_P(AdderArchTest, AddSubMatchInt64ReferenceWidths1To16) {
  const AdderArch arch = GetParam();
  common::Rng rng(2026);
  for (int w = 1; w <= 16; ++w) {
    Netlist nl;
    Builder b(nl);
    const Bus a = nl.add_input_bus("a", w);
    const Bus bb = nl.add_input_bus("b", w);
    const Bus sum_trunc = b.add(a, bb, arch, w, "st");
    const Bus sum_exact = b.add(a, bb, arch, w + 1, "se");
    const Bus diff_trunc = b.sub(a, bb, arch, w, "dt");
    const Bus diff_exact = b.sub(a, bb, arch, w + 1, "de");
    nl.validate();
    Simulator sim(nl);
    const std::int64_t lo = -(std::int64_t{1} << (w - 1));
    const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
    std::vector<std::pair<std::int64_t, std::int64_t>> cases;
    if (w <= 5) {
      for (std::int64_t va = lo; va <= hi; ++va) {
        for (std::int64_t vb = lo; vb <= hi; ++vb) cases.emplace_back(va, vb);
      }
    } else {
      // Corners (overflow/underflow/carry-out paths) plus random fill.
      for (const std::int64_t va : {lo, std::int64_t{-1}, std::int64_t{0}, hi}) {
        for (const std::int64_t vb :
             {lo, std::int64_t{-1}, std::int64_t{0}, hi}) {
          cases.emplace_back(va, vb);
        }
      }
      for (int i = 0; i < 64; ++i) {
        cases.emplace_back(rng.uniform(lo, hi), rng.uniform(lo, hi));
      }
    }
    for (const auto& [va, vb] : cases) {
      sim.set_bus(a, va);
      sim.set_bus(bb, vb);
      sim.eval();
      EXPECT_EQ(sim.read_bus(sum_exact), va + vb)
          << adder_name(arch) << " w=" << w << ": " << va << "+" << vb;
      EXPECT_EQ(sim.read_bus(sum_trunc), wrap(va + vb, w))
          << adder_name(arch) << " w=" << w << ": " << va << "+" << vb;
      EXPECT_EQ(sim.read_bus(diff_exact), va - vb)
          << adder_name(arch) << " w=" << w << ": " << va << "-" << vb;
      EXPECT_EQ(sim.read_bus(diff_trunc), wrap(va - vb, w))
          << adder_name(arch) << " w=" << w << ": " << va << "-" << vb;
    }
  }
}

TEST_P(AdderArchTest, MixedWidthOperandsSignExtend) {
  Netlist nl;
  Builder b(nl);
  const Bus a = nl.add_input_bus("a", 11);
  const Bus bb = nl.add_input_bus("b", 4);
  const Bus y = b.add(a, bb, GetParam(), 12, "s");
  Simulator sim(nl);
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t va = rng.uniform(-1024, 1023);
    const std::int64_t vb = rng.uniform(-8, 7);
    sim.set_bus(a, va);
    sim.set_bus(bb, vb);
    sim.eval();
    EXPECT_EQ(sim.read_bus(y), va + vb);
  }
}

TEST_P(AdderArchTest, NameParsesBackToArch) {
  const AdderArch arch = GetParam();
  const auto parsed = parse_adder(adder_name(arch));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, arch);
}

INSTANTIATE_TEST_SUITE_P(Archs, AdderArchTest,
                         ::testing::ValuesIn(all_adder_archs()),
                         [](const auto& info) { return arch_label(info.param); });

TEST(AdderArch, ParseAcceptsAliasesAndRejectsGarbage) {
  EXPECT_EQ(parse_adder("cc"), AdderArch::kCarryChain);
  EXPECT_EQ(parse_adder("chain"), AdderArch::kCarryChain);
  EXPECT_EQ(parse_adder("Carry_Chain"), AdderArch::kCarryChain);
  EXPECT_EQ(parse_adder("ripple"), AdderArch::kRippleGates);
  EXPECT_EQ(parse_adder("rg"), AdderArch::kRippleGates);
  EXPECT_EQ(parse_adder("ks"), AdderArch::kKoggeStone);
  EXPECT_EQ(parse_adder("Kogge Stone"), AdderArch::kKoggeStone);
  EXPECT_EQ(parse_adder("bk"), AdderArch::kBrentKung);
  EXPECT_EQ(parse_adder("brent-kung"), AdderArch::kBrentKung);
  EXPECT_EQ(parse_adder("ksbk"), AdderArch::kHybridKsBk);
  EXPECT_EQ(parse_adder("hybrid"), AdderArch::kHybridKsBk);
  EXPECT_EQ(parse_adder(""), std::nullopt);
  EXPECT_EQ(parse_adder("csa"), std::nullopt);
  EXPECT_EQ(parse_adder("design3"), std::nullopt);
}

TEST(AdderArch, PrefixFamilyPredicate) {
  EXPECT_FALSE(is_parallel_prefix(AdderArch::kCarryChain));
  EXPECT_FALSE(is_parallel_prefix(AdderArch::kRippleGates));
  for (const AdderArch arch : prefix_adder_archs()) {
    EXPECT_TRUE(is_parallel_prefix(arch));
  }
  EXPECT_EQ(static_cast<int>(all_adder_archs().size()), kAdderArchCount);
}

TEST(AdderArch, PrefixAddersUseNoCarryChainCells) {
  for (const AdderArch arch : prefix_adder_archs()) {
    Netlist nl;
    Builder b(nl);
    const Bus a = nl.add_input_bus("a", 16);
    const Bus bb = nl.add_input_bus("b", 16);
    (void)b.add(a, bb, arch, 16, "s");
    EXPECT_EQ(nl.count_kind(CellKind::kAddSum), 0u) << adder_name(arch);
    EXPECT_EQ(nl.count_kind(CellKind::kAddCarry), 0u) << adder_name(arch);
    for (const Cell& c : nl.cells()) {
      EXPECT_LT(c.chain_id, 0) << adder_name(arch);
    }
  }
}

TEST(AdderArch, PrefixCellsShareOnePlacementCluster) {
  for (const AdderArch arch : prefix_adder_archs()) {
    Netlist nl;
    Builder b(nl);
    const Bus a = nl.add_input_bus("a", 12);
    const Bus bb = nl.add_input_bus("b", 12);
    (void)b.add(a, bb, arch, 12, "s");
    std::int32_t cluster = -1;
    for (const Cell& c : nl.cells()) {
      if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
      ASSERT_GE(c.cluster_id, 0) << adder_name(arch);
      if (cluster < 0) cluster = c.cluster_id;
      EXPECT_EQ(c.cluster_id, cluster) << adder_name(arch);
    }
  }
}

// The point of the family: at 16 bits the MSB of a prefix sum sits behind
// O(log n) gate levels while the ripple MSB waits on a linear carry path.
TEST(AdderArch, PrefixDepthIsLogarithmicVsRippleLinear) {
  const auto msb_depth = [](AdderArch arch) {
    Netlist nl;
    Builder b(nl);
    const Bus a = nl.add_input_bus("a", 16);
    const Bus bb = nl.add_input_bus("b", 16);
    const Bus s = b.add(a, bb, arch, 16, "s");
    return logic_depth(nl, s.bits.back());
  };
  const int ripple = msb_depth(AdderArch::kRippleGates);
  EXPECT_GE(ripple, 30);  // ~2 gate levels per bit of carry path
  for (const AdderArch arch : prefix_adder_archs()) {
    const int depth = msb_depth(arch);
    // Each prefix level is one AND-OR pair, so depth stays O(log n): at
    // most 2 levels x (2*log2(16) + 2) node rows even for the sparse trees.
    EXPECT_LE(depth, 20) << adder_name(arch);
    EXPECT_LT(depth, ripple) << adder_name(arch);
  }
  // Kogge-Stone is the minimum-depth network of the three: leaf g/p, one
  // AND-OR pair per log2(16) = 4 levels, final sum XOR.
  EXPECT_LE(msb_depth(AdderArch::kKoggeStone), 10);
}

// Brent-Kung trades depth for node count; Kogge-Stone is the dense extreme.
TEST(AdderArch, BrentKungUsesFewerCombineNodesThanKoggeStone) {
  const auto cell_count = [](AdderArch arch) {
    Netlist nl;
    Builder b(nl);
    const Bus a = nl.add_input_bus("a", 16);
    const Bus bb = nl.add_input_bus("b", 16);
    (void)b.add(a, bb, arch, 16, "s");
    return nl.cell_count();
  };
  EXPECT_LT(cell_count(AdderArch::kBrentKung),
            cell_count(AdderArch::kKoggeStone));
  EXPECT_LE(cell_count(AdderArch::kHybridKsBk),
            cell_count(AdderArch::kKoggeStone));
}

// Verilog-writer round trip of a prefix-adder netlist: the emitted module
// must contain a statement for every cell, the prefix gate mix, and the
// declared port widths — proving the new netlists flow through the RTL
// export path unchanged.
TEST(AdderArch, VerilogWriterRoundTripsPrefixAdder) {
  for (const AdderArch arch : prefix_adder_archs()) {
    Netlist nl;
    Builder b(nl);
    const Bus a = nl.add_input_bus("a", 16);
    const Bus bb = nl.add_input_bus("b", 16);
    const Bus s = b.add(a, bb, arch, 17, "sum");
    const Bus q = b.reg(s, "q");
    nl.bind_output("y", q);
    nl.validate();
    const std::string v = to_verilog(nl, "prefix_adder");
    EXPECT_NE(v.find("module prefix_adder"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_NE(v.find("input wire clk"), std::string::npos);
    EXPECT_NE(v.find("output wire [16:0] y"), std::string::npos);
    EXPECT_NE(v.find("^"), std::string::npos) << adder_name(arch);
    EXPECT_NE(v.find("&"), std::string::npos) << adder_name(arch);
    EXPECT_NE(v.find("|"), std::string::npos) << adder_name(arch);
    std::size_t statements = 0;
    std::istringstream is(v);
    std::string line;
    while (std::getline(is, line)) {
      if (line.find("assign") != std::string::npos ||
          line.find("always") != std::string::npos) {
        ++statements;
      }
    }
    EXPECT_GE(statements, nl.cell_count()) << adder_name(arch);
  }
}

}  // namespace
}  // namespace dwt::rtl
