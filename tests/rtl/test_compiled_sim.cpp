#include "rtl/compiled/compiled_simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rtl/builder.hpp"
#include "rtl/compiled/tape.hpp"

namespace dwt::rtl::compiled {
namespace {

TEST(CompiledTape, AssignsEveryNetASlot) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_cell(CellKind::kXor2, a, b);
  const NetId q = nl.add_cell(CellKind::kDff, x);
  const auto tape = compile(nl);
  EXPECT_EQ(tape->net_count(), nl.net_count());
  EXPECT_EQ(tape->slot_count(), nl.net_count());
  EXPECT_TRUE(tape->is_primary_input(a));
  EXPECT_TRUE(tape->is_primary_input(b));
  EXPECT_FALSE(tape->is_primary_input(x));
  EXPECT_TRUE(tape->is_dff_output(q));
  EXPECT_FALSE(tape->is_dff_output(x));
  EXPECT_EQ(tape->instrs().size(), 1u);  // the XOR; DFF is not an instr
  EXPECT_EQ(tape->dffs().size(), 1u);
  EXPECT_EQ(tape->net_of(tape->slot_of(x)), x);
  EXPECT_GE(tape->depth(), 1u);
}

TEST(CompiledSim, GateTruthTablesAllLanes) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  const NetId n_not = nl.add_cell(CellKind::kNot, a);
  const NetId n_and = nl.add_cell(CellKind::kAnd2, a, b);
  const NetId n_or = nl.add_cell(CellKind::kOr2, a, b);
  const NetId n_xor = nl.add_cell(CellKind::kXor2, a, b);
  const NetId n_mux = nl.add_cell(CellKind::kMux2, a, b, s);
  const NetId n_sum = nl.add_cell(CellKind::kAddSum, a, b, s);
  const NetId n_carry = nl.add_cell(CellKind::kAddCarry, a, b, s);
  CompiledSimulator sim(nl);
  const std::uint64_t va = 0xDEADBEEFCAFEF00Dull;
  const std::uint64_t vb = 0x0123456789ABCDEFull;
  const std::uint64_t vs = 0xF0F0F0F0F0F0F0F0ull;
  sim.set_input_mask(a, va);
  sim.set_input_mask(b, vb);
  sim.set_input_mask(s, vs);
  sim.eval();
  EXPECT_EQ(sim.lane_mask(n_not), ~va);
  EXPECT_EQ(sim.lane_mask(n_and), va & vb);
  EXPECT_EQ(sim.lane_mask(n_or), va | vb);
  EXPECT_EQ(sim.lane_mask(n_xor), va ^ vb);
  EXPECT_EQ(sim.lane_mask(n_mux), (vs & vb) | (~vs & va));
  EXPECT_EQ(sim.lane_mask(n_sum), va ^ vb ^ vs);
  EXPECT_EQ(sim.lane_mask(n_carry), (va & vb) | (vs & (va ^ vb)));
}

TEST(CompiledSim, Const1DrivesAllLanes) {
  Netlist nl;
  const NetId one = nl.add_cell(CellKind::kConst1);
  const NetId inv = nl.add_cell(CellKind::kNot, one);
  CompiledSimulator sim(nl);
  sim.eval();
  EXPECT_EQ(sim.lane_mask(one), ~std::uint64_t{0});
  EXPECT_EQ(sim.lane_mask(inv), 0u);
  sim.reset();  // constants survive reset
  sim.eval();
  EXPECT_EQ(sim.lane_mask(one), ~std::uint64_t{0});
}

TEST(CompiledSim, DffSamplesOnClockEdgePerLane) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  CompiledSimulator sim(nl);
  const std::uint64_t pattern = 0xAAAA5555AAAA5555ull;
  sim.set_input_mask(d, pattern);
  sim.eval();
  EXPECT_EQ(sim.lane_mask(q), 0u);  // not clocked yet
  sim.clock_edge();
  EXPECT_EQ(sim.lane_mask(q), pattern);
  EXPECT_EQ(sim.cycles(), 0u);  // only step() advances the cycle count
  sim.set_input_mask(d, ~pattern);
  sim.step();
  EXPECT_EQ(sim.lane_mask(q), ~pattern);
  EXPECT_EQ(sim.cycles(), 1u);
}

TEST(CompiledSim, BusLaneIoRoundTrips) {
  Netlist nl;
  Builder b(nl);
  const Bus in = nl.add_input_bus("a", 8);
  const Bus reg = b.reg(in, "r");
  nl.bind_output("y", reg);
  CompiledSimulator sim(nl);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    sim.set_bus(in, lane, static_cast<std::int64_t>(lane) - 32);
  }
  sim.step();
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(sim.read_bus(reg, lane), static_cast<std::int64_t>(lane) - 32);
  }
  sim.set_bus_all(in, -128);
  sim.step();
  EXPECT_EQ(sim.read_bus(reg, 0), -128);
  EXPECT_EQ(sim.read_bus(reg, 63), -128);
  EXPECT_THROW(sim.set_bus(in, 0, 128), std::invalid_argument);   // overflow
  EXPECT_THROW(sim.set_bus(in, kLanes, 0), std::invalid_argument);
}

TEST(CompiledSim, ForcePinsOnlySelectedLanes) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId inv = nl.add_cell(CellKind::kNot, a);
  CompiledSimulator sim(nl);
  sim.set_input_mask(a, 0);
  // Pin lane 0 of the NOT's output low and lane 1 high.
  sim.force(inv, 0b11u, 0b10u);
  sim.eval();
  EXPECT_FALSE(sim.value(inv, 0));
  EXPECT_TRUE(sim.value(inv, 1));
  EXPECT_TRUE(sim.value(inv, 2));  // unpinned lanes evaluate normally
  sim.release(inv, 0b11u);
  sim.eval();
  EXPECT_TRUE(sim.value(inv, 0));
  EXPECT_TRUE(sim.value(inv, 1));
}

TEST(CompiledSim, ForcedInputPropagatesThroughCloud) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId n_and = nl.add_cell(CellKind::kAnd2, a, b);
  CompiledSimulator sim(nl);
  sim.set_input_mask(a, 0);
  sim.set_input_mask(b, ~std::uint64_t{0});
  sim.force(a, 1u, 1u);  // stuck-at-1 on lane 0 of a source net
  sim.eval();
  EXPECT_TRUE(sim.value(n_and, 0));
  EXPECT_FALSE(sim.value(n_and, 1));
}

TEST(CompiledSim, FlipStateStrikesDffLanes) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  const NetId comb = nl.add_cell(CellKind::kNot, d);
  CompiledSimulator sim(nl);
  sim.set_input_mask(d, 0);
  sim.step();
  sim.flip_state(q, 0b101u);
  EXPECT_TRUE(sim.value(q, 0));
  EXPECT_FALSE(sim.value(q, 1));
  EXPECT_TRUE(sim.value(q, 2));
  EXPECT_THROW(sim.flip_state(comb, 1u), std::invalid_argument);
}

TEST(CompiledSim, ActivityCountsTogglesOnCountedLanesOnly) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  CompiledSimulator sim(nl);
  sim.enable_activity(0b1u);  // count lane 0 only
  // Lane 0 toggles every cycle, lane 1 is held constant.
  for (int t = 0; t < 8; ++t) {
    sim.set_input_mask(d, (t % 2 == 0) ? 0b1u : 0b0u);
    sim.step();
  }
  const ActivityStats stats = sim.activity_stats();
  EXPECT_EQ(stats.cycles, 8u);  // 8 steps * 1 counted lane
  // Lane 0 of d alternates every step; q samples the same-step settled d,
  // so both toggle once per step.  Lane 1 never moves and is not counted.
  EXPECT_EQ(stats.toggles[d], 8u);
  EXPECT_EQ(stats.toggles[q], 8u);
  EXPECT_GT(stats.rate(d), 0.9);
}

TEST(CompiledSim, SharedTapeAcrossSimulators) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_cell(CellKind::kXor2, a, b);
  const auto tape = compile(nl);
  CompiledSimulator s1(tape), s2(tape);
  s1.set_input_mask(a, 0xFFull);
  s1.set_input_mask(b, 0x0Full);
  s2.set_input_mask(a, 0x01ull);
  s2.set_input_mask(b, 0x01ull);
  s1.eval();
  s2.eval();
  EXPECT_EQ(s1.lane_mask(x), 0xF0ull);
  EXPECT_EQ(s2.lane_mask(x), 0u);  // independent state, shared tape
}

}  // namespace
}  // namespace dwt::rtl::compiled
