#include "rtl/adders.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/simulator.hpp"
#include "rtl/stats.hpp"

namespace dwt::rtl {
namespace {

Word input_word(Netlist& nl, const std::string& name, int bits) {
  return word_input(nl, name, bits);
}

struct SumCase {
  SumStructure structure;
  AdderStyle style;
  bool pipelined;
};

class SumSignedTest : public ::testing::TestWithParam<SumCase> {};

TEST_P(SumSignedTest, ComputesSignedSums) {
  const SumCase cfg = GetParam();
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, cfg.pipelined);
  const Word x = input_word(nl, "x", 6);
  const Word y = input_word(nl, "y", 6);
  const Word z = input_word(nl, "z", 6);
  // x + y - z + y
  std::vector<SignedTerm> terms{{x, false}, {y, false}, {z, true}, {y, false}};
  const Word s = sum_signed(p, std::move(terms), cfg.structure, cfg.style, "s");
  nl.bind_output("s", s.bus);
  Simulator sim(nl);
  common::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t vx = rng.uniform(-32, 31);
    const std::int64_t vy = rng.uniform(-32, 31);
    const std::int64_t vz = rng.uniform(-32, 31);
    sim.set_bus(x.bus, vx);
    sim.set_bus(y.bus, vy);
    sim.set_bus(z.bus, vz);
    // Flush the pipeline (if any) so outputs settle.
    for (int k = 0; k <= s.depth; ++k) sim.step();
    EXPECT_EQ(sim.read_bus(s.bus), vx + 2 * vy - vz);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SumSignedTest,
    ::testing::Values(SumCase{SumStructure::kSequential, AdderStyle::kCarryChain, false},
                      SumCase{SumStructure::kSequential, AdderStyle::kRippleGates, false},
                      SumCase{SumStructure::kTree, AdderStyle::kCarryChain, false},
                      SumCase{SumStructure::kTree, AdderStyle::kRippleGates, false},
                      SumCase{SumStructure::kSequential, AdderStyle::kCarryChain, true},
                      SumCase{SumStructure::kTree, AdderStyle::kCarryChain, true}));

TEST(SumTree, DepthIsLogarithmicWhenPipelined) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, /*enabled=*/true);
  std::vector<Word> terms;
  for (int i = 0; i < 8; ++i) {
    terms.push_back(input_word(nl, "t" + std::to_string(i), 4));
  }
  const Word s = sum_tree(p, std::move(terms), AdderStyle::kCarryChain, "s");
  EXPECT_EQ(s.depth, 3);  // ceil(log2 8)
}

TEST(SumChain, DepthIsLinearWhenPipelined) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, /*enabled=*/true);
  std::vector<Word> terms;
  for (int i = 0; i < 8; ++i) {
    terms.push_back(input_word(nl, "t" + std::to_string(i), 4));
  }
  const Word s = sum_chain(p, std::move(terms), AdderStyle::kCarryChain, "s");
  EXPECT_EQ(s.depth, 7);
}

TEST(SumSigned, AllNegativeTermsHandled) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = input_word(nl, "x", 5);
  std::vector<SignedTerm> terms{{x, true}, {x, true}};
  const Word s = sum_signed(p, std::move(terms), SumStructure::kSequential,
                            AdderStyle::kCarryChain, "s");
  nl.bind_output("s", s.bus);
  Simulator sim(nl);
  sim.set_bus(x.bus, 9);
  sim.eval();
  EXPECT_EQ(sim.read_bus(s.bus), -18);
}

TEST(SumSigned, RejectsEmpty) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  EXPECT_THROW(sum_signed(p, {}, SumStructure::kSequential,
                          AdderStyle::kCarryChain, "s"),
               std::invalid_argument);
}

TEST(WordOps, RangesTrackHardware) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, false);
  const Word x = input_word(nl, "x", 8);
  const Word y = input_word(nl, "y", 8);
  const Word s = word_add(p, x, y, AdderStyle::kCarryChain, "s");
  EXPECT_EQ(s.range.lo, -256);
  EXPECT_EQ(s.range.hi, 254);
  EXPECT_EQ(s.bus.width(), 9);
  const Word d = word_sub(p, x, y, AdderStyle::kCarryChain, "d");
  EXPECT_EQ(d.range.lo, -255);
  EXPECT_EQ(d.range.hi, 255);
  const Word sh = word_shl(b, x, 2);
  EXPECT_EQ(sh.range.lo, -512);
  const Word sr = word_asr(b, x, 3);
  EXPECT_EQ(sr.range.lo, -16);
  EXPECT_EQ(sr.range.hi, 15);
}

TEST(Pipeliner, AlignInsertsShims) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, true);
  Word x = input_word(nl, "x", 4);
  Word y = p.stage(p.stage(input_word(nl, "y", 4), "r1"), "r2");
  p.align(x, y, "al");
  EXPECT_EQ(x.depth, 2);
  EXPECT_EQ(y.depth, 2);
  EXPECT_EQ(nl.count_kind(CellKind::kDff), 2u * 4u + 2u * 4u);
}

TEST(Pipeliner, SharedDelaysReuseRegisters) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, true);
  const Word x = input_word(nl, "x", 4);
  const Word a = p.align_to(x, 2, "a");
  const std::size_t after_first = nl.count_kind(CellKind::kDff);
  const Word bb = p.align_to(x, 2, "b");
  EXPECT_EQ(nl.count_kind(CellKind::kDff), after_first);  // fully shared
  EXPECT_EQ(a.bus.bits, bb.bus.bits);
}

TEST(Pipeliner, CutOnlyWhenEnabled) {
  Netlist nl;
  Builder b(nl);
  Pipeliner off(b, false);
  const Word x = input_word(nl, "x", 4);
  EXPECT_EQ(off.cut(x, "c").depth, 0);
  Pipeliner on(b, true);
  EXPECT_EQ(on.cut(x, "c").depth, 1);
}

TEST(Pipeliner, AlignToRejectsPastTargets) {
  Netlist nl;
  Builder b(nl);
  Pipeliner p(b, true);
  const Word x = p.stage(input_word(nl, "x", 4), "r");
  EXPECT_THROW(p.align_to(x, 0, "bad"), std::logic_error);
}

}  // namespace
}  // namespace dwt::rtl
