#include "rtl/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dwt::rtl {
namespace {

/// Tiny registered datapath: x -> reg -> NOT -> reg -> y, plus a toggler so
/// the state is never all-zero.
struct Pipe {
  Netlist nl;
  NetId x, q1, inv, q2, tog;
  Pipe() {
    x = nl.add_input("x");
    q1 = nl.add_cell(CellKind::kDff, x);
    inv = nl.add_cell(CellKind::kNot, q1);
    q2 = nl.add_cell(CellKind::kDff, inv);
    tog = nl.add_cell(CellKind::kDff, kNullNet);
    const NetId ntog = nl.add_cell(CellKind::kNot, tog);
    nl.rewire_input(nl.net(tog).driver, 0, ntog);
    nl.bind_output("y", Bus{{q2}});
  }
};

TEST(FaultInjector, ZeroFaultsMatchesPlainSimulator) {
  Pipe p;
  Simulator ref(p.nl);
  Simulator sim(p.nl);
  FaultInjector inj(p.nl, sim);
  for (int t = 0; t < 16; ++t) {
    const bool in = (t % 3) == 0;
    ref.set_input(p.x, in);
    inj.set_input(p.x, in);
    ref.step();
    inj.step();
    EXPECT_EQ(inj.value(p.q2), ref.value(p.q2)) << t;
    EXPECT_EQ(inj.value(p.tog), ref.value(p.tog)) << t;
  }
  EXPECT_EQ(inj.faults_applied(), 0u);
  EXPECT_EQ(inj.cycle(), 16u);
}

TEST(FaultInjector, SeuFlipsStateForExactlyOneCycle) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_cell(CellKind::kDff, d);
  Simulator sim(nl);
  FaultInjector inj(nl, sim);
  inj.arm({FaultKind::kSeuFlip, q, 2, true});
  inj.set_input(d, false);
  inj.step();  // cycle 0
  inj.step();  // cycle 1
  EXPECT_FALSE(inj.value(q));
  inj.step();  // cycle 2: upset strikes after the edge
  EXPECT_TRUE(inj.value(q));
  EXPECT_EQ(inj.faults_applied(), 1u);
  inj.step();  // next edge recaptures the clean D
  EXPECT_FALSE(inj.value(q));
}

TEST(FaultInjector, GlitchForcesNetForOneCycle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellKind::kNot, a);
  const NetId q = nl.add_cell(CellKind::kDff, y);
  Simulator sim(nl);
  FaultInjector inj(nl, sim);
  inj.arm({FaultKind::kGlitch, y, 1, false});
  inj.set_input(a, false);  // y settles to 1
  inj.step();               // cycle 0
  EXPECT_TRUE(inj.value(q));
  inj.step();  // cycle 1: y pinned low, captured by q
  EXPECT_FALSE(inj.value(q));
  inj.step();  // cycle 2: pulse gone
  EXPECT_TRUE(inj.value(q));
  EXPECT_EQ(inj.faults_applied(), 1u);
}

TEST(FaultInjector, StuckAtPersistsFromScheduledCycle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellKind::kNot, a);
  const NetId q = nl.add_cell(CellKind::kDff, y);
  Simulator sim(nl);
  FaultInjector inj(nl, sim);
  inj.arm({FaultKind::kStuckAt0, y, 2, true});
  inj.set_input(a, false);  // y wants to be 1
  inj.step();               // cycle 0
  inj.step();               // cycle 1
  EXPECT_TRUE(inj.value(q));
  for (int t = 0; t < 4; ++t) {
    inj.step();  // cycles 2..5: defect active
    EXPECT_FALSE(inj.value(q)) << t;
  }
  EXPECT_EQ(inj.faults_applied(), 1u);
}

TEST(FaultInjector, WatchLatchesDetection) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellKind::kNot, a);
  Simulator sim(nl);
  FaultInjector inj(nl, sim);
  inj.watch(y);
  inj.set_input(a, true);  // y low
  inj.step();
  EXPECT_FALSE(inj.watch_triggered());
  inj.set_input(a, false);  // y high for one cycle
  inj.step();
  inj.set_input(a, true);
  inj.step();
  EXPECT_TRUE(inj.watch_triggered());  // latched
}

TEST(FaultInjector, ArmValidatesTargets) {
  Pipe p;
  Simulator sim(p.nl);
  FaultInjector inj(p.nl, sim);
  EXPECT_THROW(inj.arm({FaultKind::kSeuFlip, p.inv, 0, true}),
               std::invalid_argument);  // SEU needs a DFF output
  EXPECT_THROW(
      inj.arm({FaultKind::kGlitch, static_cast<NetId>(100000), 0, true}),
      std::invalid_argument);
  EXPECT_NO_THROW(inj.arm({FaultKind::kSeuFlip, p.q1, 0, true}));
}

TEST(FaultTargets, PopulationsFollowCellKinds) {
  Pipe p;
  const auto seu = seu_targets(p.nl);
  const auto stuck = stuck_targets(p.nl);
  const auto glitch = glitch_targets(p.nl);
  EXPECT_EQ(seu.size(), 3u);  // q1, q2, tog
  for (const NetId n : seu) {
    EXPECT_EQ(p.nl.cell(p.nl.net(n).driver).kind, CellKind::kDff);
  }
  for (const NetId n : glitch) {
    EXPECT_NE(p.nl.cell(p.nl.net(n).driver).kind, CellKind::kDff);
  }
  EXPECT_EQ(stuck.size(), seu.size() + glitch.size());
}

}  // namespace
}  // namespace dwt::rtl
