// Execution-tier seam: the threaded and native tiers must compute exactly
// the words the switch interpreter computes -- on clean runs, under fault
// overlays (where the native tier transparently drops to threaded), and
// across resets.  Also pins the tier-resolution policy: kAuto picks the
// fastest supported tier and DWT_EXEC_TIER overrides every request.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hw/designs.hpp"
#include "rtl/compiled/exec_tier.hpp"
#include "rtl/compiled/native_block.hpp"
#include "rtl/compiled/tape.hpp"
#include "rtl/compiled/wide_simulator.hpp"

namespace dwt {
namespace {

using rtl::compiled::ExecTier;
using rtl::compiled::NativeBlock;
using rtl::compiled::OptLevel;
using rtl::compiled::Tape;
using rtl::compiled::WideSimulator;

/// Drives identical random stimulus into a switch-tier reference and a
/// `tier` subject over the same tape, and requires every materialized net
/// to match on every cycle.
template <unsigned W>
void expect_tier_matches(const rtl::Netlist& nl, OptLevel level, ExecTier tier,
                         std::uint64_t seed, bool with_faults) {
  using Block = rtl::compiled::LaneBlock<W>;
  const std::shared_ptr<const Tape> tape = rtl::compiled::compile(nl, level);
  WideSimulator<W> ref(tape);
  WideSimulator<W> sub(tape);
  sub.set_exec_tier(tier);

  const std::vector<rtl::NetId>& pis = nl.primary_inputs();
  common::Rng rng(seed);
  for (std::uint64_t cycle = 0; cycle < 24; ++cycle) {
    for (const rtl::NetId pi : pis) {
      Block b;
      for (unsigned k = 0; k < W; ++k) b.w[k] = rng.next_u64();
      ref.set_input_block(pi, b);
      sub.set_input_block(pi, b);
    }
    if (with_faults && cycle == 6) {
      // Pin a handful of lanes of the first few nets; the native tier must
      // drop to the portable path and still match.
      for (rtl::NetId n = 0; n < nl.net_count() && n < 5; ++n) {
        Block lanes;
        Block values;
        for (unsigned k = 0; k < W; ++k) {
          lanes.w[k] = rng.next_u64();
          values.w[k] = rng.next_u64();
        }
        ref.force(n, lanes, values);
        sub.force(n, lanes, values);
      }
    }
    if (with_faults && cycle == 14) {
      for (rtl::NetId n = 0; n < nl.net_count() && n < 5; ++n) {
        ref.release(n, Block::ones());
        sub.release(n, Block::ones());
      }
    }
    ref.step();
    sub.step();
    for (rtl::NetId n = 0; n < nl.net_count(); ++n) {
      if (!tape->materialized(n)) continue;
      ASSERT_EQ(ref.block(n), sub.block(n))
          << "tier " << to_string(tier) << " W=" << W << " net " << n
          << " cycle " << cycle << " faults=" << with_faults;
    }
  }
}

TEST(ExecTier, ParseAndPrintRoundTrip) {
  ExecTier t = ExecTier::kAuto;
  EXPECT_TRUE(rtl::compiled::parse_exec_tier("interpreter", &t));
  EXPECT_EQ(t, ExecTier::kSwitch);
  EXPECT_TRUE(rtl::compiled::parse_exec_tier("switch", &t));
  EXPECT_EQ(t, ExecTier::kSwitch);
  EXPECT_TRUE(rtl::compiled::parse_exec_tier("threaded", &t));
  EXPECT_EQ(t, ExecTier::kThreaded);
  EXPECT_TRUE(rtl::compiled::parse_exec_tier("native", &t));
  EXPECT_EQ(t, ExecTier::kNative);
  EXPECT_TRUE(rtl::compiled::parse_exec_tier("auto", &t));
  EXPECT_EQ(t, ExecTier::kAuto);
  EXPECT_FALSE(rtl::compiled::parse_exec_tier("jit", &t));
  EXPECT_STREQ(to_string(ExecTier::kThreaded), "threaded");
  EXPECT_STREQ(to_string(ExecTier::kNative), "native");
}

TEST(ExecTier, AutoResolvesToConcreteTier) {
  for (const unsigned words : {1u, 2u, 4u}) {
    const ExecTier t = rtl::compiled::resolve_exec_tier(ExecTier::kAuto, words);
    EXPECT_NE(t, ExecTier::kAuto);
    if (rtl::compiled::native_supported(words)) {
      EXPECT_EQ(t, ExecTier::kNative);
    } else {
      EXPECT_EQ(t, ExecTier::kThreaded);
    }
  }
}

TEST(ExecTier, EnvOverrideWinsOverRequest) {
  ::setenv("DWT_EXEC_TIER", "interpreter", 1);
  EXPECT_EQ(rtl::compiled::resolve_exec_tier(ExecTier::kNative, 4),
            ExecTier::kSwitch);
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign1);
  WideSimulator<1> sim(dp.netlist);
  sim.set_exec_tier(ExecTier::kNative);
  EXPECT_EQ(sim.exec_tier(), ExecTier::kSwitch);
  EXPECT_EQ(sim.native_block(), nullptr);
  ::setenv("DWT_EXEC_TIER", "threaded", 1);
  sim.set_exec_tier(ExecTier::kAuto);
  EXPECT_EQ(sim.exec_tier(), ExecTier::kThreaded);
  ::unsetenv("DWT_EXEC_TIER");
}

TEST(ExecTier, ThreadedMatchesSwitchAllWidths) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign2);
  for (const OptLevel level :
       {OptLevel::kNone, OptLevel::kSafe, OptLevel::kFull}) {
    expect_tier_matches<1>(dp.netlist, level, ExecTier::kThreaded, 101, false);
    expect_tier_matches<2>(dp.netlist, level, ExecTier::kThreaded, 102, false);
    expect_tier_matches<4>(dp.netlist, level, ExecTier::kThreaded, 103, false);
  }
}

TEST(ExecTier, ThreadedMatchesSwitchUnderFaultOverlays) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign4);
  expect_tier_matches<1>(dp.netlist, OptLevel::kSafe, ExecTier::kThreaded, 201,
                         true);
  expect_tier_matches<4>(dp.netlist, OptLevel::kSafe, ExecTier::kThreaded, 202,
                         true);
}

TEST(ExecTier, NativeMatchesSwitchAllWidths) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign3);
  for (const OptLevel level :
       {OptLevel::kNone, OptLevel::kSafe, OptLevel::kFull}) {
    if (rtl::compiled::native_supported(1)) {
      expect_tier_matches<1>(dp.netlist, level, ExecTier::kNative, 301, false);
    }
    if (rtl::compiled::native_supported(4)) {
      expect_tier_matches<2>(dp.netlist, level, ExecTier::kNative, 302, false);
      expect_tier_matches<4>(dp.netlist, level, ExecTier::kNative, 303, false);
    }
  }
}

TEST(ExecTier, NativeMatchesSwitchUnderFaultOverlays) {
  // Forces make eval() bypass the native block; results must still match.
  if (!rtl::compiled::native_supported(4)) {
    GTEST_SKIP() << "native tier unsupported on this host";
  }
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign5);
  expect_tier_matches<4>(dp.netlist, OptLevel::kSafe, ExecTier::kNative, 401,
                         true);
}

TEST(ExecTier, NativeBlockIsDeterministicAndSized) {
  if (!rtl::compiled::native_supported(4)) {
    GTEST_SKIP() << "native tier unsupported on this host";
  }
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign1);
  const auto tape = rtl::compiled::compile(dp.netlist, OptLevel::kFull);
  const auto a = NativeBlock::build(*tape, 4);
  const auto b = NativeBlock::build(*tape, 4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->code_size(), 0u);
  EXPECT_EQ(a->code_size(), b->code_size());
  EXPECT_EQ(a->instr_count(), tape->instrs().size());
  EXPECT_EQ(a->words(), 4u);
}

TEST(ExecTier, SetNativeRejectsMismatchedBlock) {
  if (!rtl::compiled::native_supported(4)) {
    GTEST_SKIP() << "native tier unsupported on this host";
  }
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign1);
  const auto tape = rtl::compiled::compile(dp.netlist, OptLevel::kFull);
  const auto wrong_width = NativeBlock::build(*tape, 2);
  ASSERT_NE(wrong_width, nullptr);
  WideSimulator<4> sim(tape);
  EXPECT_THROW(sim.set_native(wrong_width), std::invalid_argument);
  const auto other_tape = rtl::compiled::compile(dp.netlist, OptLevel::kNone);
  const auto other = NativeBlock::build(*other_tape, 4);
  ASSERT_NE(other, nullptr);
  EXPECT_THROW(sim.set_native(other), std::invalid_argument);
  sim.set_native(NativeBlock::build(*tape, 4));
  EXPECT_EQ(sim.exec_tier(), ExecTier::kNative);
}

/// The native clock edge replaces the two-phase DFF copy with one
/// dependency-ordered pass, so the hazardous layouts are shift chains
/// (d = upstream q, must copy downstream-first), register rings (q's
/// feeding each other's d's, scratch round-trip) and self-loops (d = own
/// q, a no-op).  Build all three explicitly and require native step() to
/// track the switch interpreter cycle for cycle.
TEST(ExecTier, NativeEdgeOrdersChainsRingsAndSelfLoops) {
  if (!rtl::compiled::native_supported(1)) {
    GTEST_SKIP() << "native tier unsupported on this host";
  }
  rtl::Netlist nl;
  const rtl::NetId pi = nl.add_input("pi");
  // Shift chain: pi -> a -> b -> c.  The builder emits the chain upstream-
  // first, so a naive in-order edge copy would shift the whole chain in one
  // cycle instead of one stage per cycle.
  const rtl::NetId qa = nl.add_cell(rtl::CellKind::kDff, pi);
  const rtl::NetId qb = nl.add_cell(rtl::CellKind::kDff, qa);
  const rtl::NetId qc = nl.add_cell(rtl::CellKind::kDff, qb);
  // Two-register ring (swap): d_x = q_y, d_y = q_x -- only constructible by
  // rewiring, exactly how netlist rewrites create DFFs before their cones.
  const rtl::NetId qx = nl.add_cell(rtl::CellKind::kDff, pi);
  const rtl::NetId qy = nl.add_cell(rtl::CellKind::kDff, qx);
  nl.rewire_input(nl.net(qx).driver, 0, qy);
  // Self-loop: d = own q.
  const rtl::NetId qs = nl.add_cell(rtl::CellKind::kDff, pi);
  nl.rewire_input(nl.net(qs).driver, 0, qs);
  // Observable mix so nothing is trivially dead.
  const rtl::NetId obs1 = nl.add_cell(rtl::CellKind::kXor2, qc, qy);
  const rtl::NetId obs2 = nl.add_cell(rtl::CellKind::kXor2, qs, qx);
  nl.bind_output("obs", rtl::Bus{{obs1, obs2}});

  expect_tier_matches<1>(nl, OptLevel::kNone, ExecTier::kNative, 501, false);
  expect_tier_matches<4>(nl, OptLevel::kNone, ExecTier::kNative, 502, false);
  expect_tier_matches<4>(nl, OptLevel::kNone, ExecTier::kThreaded, 503, false);
}

TEST(ExecTier, TierSurvivesReset) {
  const hw::BuiltDatapath dp = hw::build_design(hw::DesignId::kDesign2);
  const auto tape = rtl::compiled::compile(dp.netlist, OptLevel::kFull);
  WideSimulator<2> a(tape);
  WideSimulator<2> b(tape);
  b.set_exec_tier(ExecTier::kAuto);
  common::Rng rng(77);
  const std::vector<rtl::NetId>& pis = dp.netlist.primary_inputs();
  for (int round = 0; round < 2; ++round) {
    a.reset();
    b.reset();
    for (int cycle = 0; cycle < 8; ++cycle) {
      for (const rtl::NetId pi : pis) {
        rtl::compiled::LaneBlock<2> blk;
        for (unsigned k = 0; k < 2; ++k) blk.w[k] = rng.next_u64();
        a.set_input_block(pi, blk);
        b.set_input_block(pi, blk);
      }
      a.step();
      b.step();
    }
    for (rtl::NetId n = 0; n < dp.netlist.net_count(); ++n) {
      if (!tape->materialized(n)) continue;
      ASSERT_EQ(a.block(n), b.block(n)) << "net " << n << " round " << round;
    }
  }
}

}  // namespace
}  // namespace dwt
