#include "rtl/builder.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtl/simulator.hpp"

namespace dwt::rtl {
namespace {

struct Fixture {
  Netlist nl;
  Builder b{nl};
};

TEST(Builder, ConstantBusEncodesTwosComplement) {
  Fixture f;
  const Bus c = f.b.constant(-3, 4);  // 1101
  f.nl.bind_output("c", c);
  Simulator sim(f.nl);
  sim.eval();
  EXPECT_EQ(sim.read_bus(c), -3);
}

TEST(Builder, ResizeSignExtends) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 4);
  const Bus wide = f.b.resize(in, 8);
  f.nl.bind_output("y", wide);
  Simulator sim(f.nl);
  sim.set_bus(in, -5);
  sim.eval();
  EXPECT_EQ(sim.read_bus(wide), -5);
}

TEST(Builder, ResizeTruncatesLowBits) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 8);
  const Bus narrow = f.b.resize(in, 4);
  Simulator sim(f.nl);
  sim.set_bus(in, 0x35);  // low nibble 5
  sim.eval();
  EXPECT_EQ(sim.read_bus(narrow), 5);
}

TEST(Builder, ShiftLeftMultiplies) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 5);
  const Bus y = f.b.shl(in, 3);
  EXPECT_EQ(y.width(), 8);
  Simulator sim(f.nl);
  sim.set_bus(in, -7);
  sim.eval();
  EXPECT_EQ(sim.read_bus(y), -56);
}

TEST(Builder, AsrTruncatesTowardMinusInfinity) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 8);
  const Bus y = f.b.asr(in, 2);
  Simulator sim(f.nl);
  for (const std::int64_t v : {-128, -7, -1, 0, 1, 7, 127}) {
    sim.set_bus(in, v);
    sim.eval();
    EXPECT_EQ(sim.read_bus(y), v >> 2) << v;
  }
}

TEST(Builder, AsrBeyondWidthLeavesSign) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 4);
  const Bus y = f.b.asr(in, 7);
  EXPECT_EQ(y.width(), 1);
  Simulator sim(f.nl);
  sim.set_bus(in, -3);
  sim.eval();
  EXPECT_EQ(sim.read_bus(y), -1);
}

class AdderStyleTest : public ::testing::TestWithParam<AdderStyle> {};

TEST_P(AdderStyleTest, AddExhaustiveSmall) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 4);
  const Bus b = f.nl.add_input_bus("b", 4);
  const Bus y = f.b.add(a, b, GetParam(), 5, "sum");
  Simulator sim(f.nl);
  for (std::int64_t va = -8; va <= 7; ++va) {
    for (std::int64_t vb = -8; vb <= 7; ++vb) {
      sim.set_bus(a, va);
      sim.set_bus(b, vb);
      sim.eval();
      EXPECT_EQ(sim.read_bus(y), va + vb) << va << "+" << vb;
    }
  }
}

TEST_P(AdderStyleTest, SubExhaustiveSmall) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 4);
  const Bus b = f.nl.add_input_bus("b", 4);
  const Bus y = f.b.sub(a, b, GetParam(), 5, "diff");
  Simulator sim(f.nl);
  for (std::int64_t va = -8; va <= 7; ++va) {
    for (std::int64_t vb = -8; vb <= 7; ++vb) {
      sim.set_bus(a, va);
      sim.set_bus(b, vb);
      sim.eval();
      EXPECT_EQ(sim.read_bus(y), va - vb) << va << "-" << vb;
    }
  }
}

TEST_P(AdderStyleTest, AddRandomWide) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 16);
  const Bus b = f.nl.add_input_bus("b", 16);
  const Bus y = f.b.add(a, b, GetParam(), 17, "sum");
  Simulator sim(f.nl);
  common::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t va = rng.uniform(-32768, 32767);
    const std::int64_t vb = rng.uniform(-32768, 32767);
    sim.set_bus(a, va);
    sim.set_bus(b, vb);
    sim.eval();
    EXPECT_EQ(sim.read_bus(y), va + vb);
  }
}

TEST_P(AdderStyleTest, MixedWidthOperands) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 9);
  const Bus b = f.nl.add_input_bus("b", 5);
  const Bus y = f.b.add(a, b, GetParam(), 10, "sum");
  Simulator sim(f.nl);
  common::Rng rng(32);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t va = rng.uniform(-256, 255);
    const std::int64_t vb = rng.uniform(-16, 15);
    sim.set_bus(a, va);
    sim.set_bus(b, vb);
    sim.eval();
    EXPECT_EQ(sim.read_bus(y), va + vb);
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, AdderStyleTest,
                         ::testing::Values(AdderStyle::kCarryChain,
                                           AdderStyle::kRippleGates),
                         [](const auto& info) {
                           return info.param == AdderStyle::kCarryChain
                                      ? "CarryChain"
                                      : "RippleGates";
                         });

TEST(Builder, CarryChainTagsBits) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 3);
  const Bus b = f.nl.add_input_bus("b", 3);
  (void)f.b.add(a, b, AdderStyle::kCarryChain, 4, "s");
  std::size_t chain_cells = 0;
  for (const Cell& c : f.nl.cells()) {
    if (c.chain_id >= 0) ++chain_cells;
  }
  // 4 sum cells + 3 carry cells.
  EXPECT_EQ(chain_cells, 7u);
}

TEST(Builder, StructuralAdderUsesNoChains) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 3);
  const Bus b = f.nl.add_input_bus("b", 3);
  (void)f.b.add(a, b, AdderStyle::kRippleGates, 4, "s");
  for (const Cell& c : f.nl.cells()) {
    EXPECT_LT(c.chain_id, 0);
  }
  EXPECT_GT(f.nl.count_kind(CellKind::kXor2), 0u);
}

TEST(Builder, EachAdderGetsItsOwnCluster) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 3);
  const Bus b = f.nl.add_input_bus("b", 3);
  const Bus s1 = f.b.add(a, b, AdderStyle::kRippleGates, 4, "s1");
  const Bus s2 = f.b.add(s1, b, AdderStyle::kRippleGates, 5, "s2");
  const std::int32_t c1 = f.nl.cell(f.nl.net(s1.bits[0]).driver).cluster_id;
  const std::int32_t c2 = f.nl.cell(f.nl.net(s2.bits[0]).driver).cluster_id;
  EXPECT_GE(c1, 0);
  EXPECT_GE(c2, 0);
  EXPECT_NE(c1, c2);
}

TEST(Builder, RegisterBankDelaysOneCycle) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 6);
  const Bus q = f.b.reg(in, "r");
  Simulator sim(f.nl);
  sim.set_bus(in, 13);
  sim.step();
  EXPECT_EQ(sim.read_bus(q), 13);
  sim.set_bus(in, -9);
  sim.step();
  EXPECT_EQ(sim.read_bus(q), -9);
}

TEST(Builder, DelayLine) {
  Fixture f;
  const Bus in = f.nl.add_input_bus("x", 4);
  const Bus q = f.b.delay(in, 3, "d");
  Simulator sim(f.nl);
  const std::int64_t seq[] = {1, -2, 3, -4, 5, -6};
  for (int t = 0; t < 6; ++t) {
    sim.set_bus(in, seq[t]);
    sim.step();
    // After step t the third register holds the value applied at step t-2.
    if (t >= 2) {
      EXPECT_EQ(sim.read_bus(q), seq[t - 2]) << t;
    }
  }
}

TEST(Builder, MuxSelects) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 4);
  const Bus b = f.nl.add_input_bus("b", 4);
  const NetId sel = f.nl.add_input("sel");
  const Bus y = f.b.mux(a, b, sel, "m");
  Simulator sim(f.nl);
  sim.set_bus(a, 3);
  sim.set_bus(b, -4);
  sim.set_input(sel, false);
  sim.eval();
  EXPECT_EQ(sim.read_bus(y), 3);
  sim.set_input(sel, true);
  sim.eval();
  EXPECT_EQ(sim.read_bus(y), -4);
}

TEST(Builder, ArgumentValidation) {
  Fixture f;
  const Bus a = f.nl.add_input_bus("a", 4);
  EXPECT_THROW(f.b.constant(0, 0), std::invalid_argument);
  EXPECT_THROW(f.b.shl(a, -1), std::invalid_argument);
  EXPECT_THROW(f.b.asr(a, -1), std::invalid_argument);
  EXPECT_THROW(f.b.add(a, a, AdderStyle::kCarryChain, 0), std::invalid_argument);
  EXPECT_THROW(f.b.mux(a, f.b.resize(a, 3), f.nl.add_input("s")),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwt::rtl
