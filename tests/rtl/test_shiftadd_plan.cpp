#include "rtl/shiftadd_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dwt::rtl {
namespace {

TEST(ShiftAddPlan, AlphaBinaryDecomposition) {
  // alpha = -406 = 10.01101010 in Q2.8: bits 1,3,5,6 positive, sign bit 9
  // subtracts (paper figure 7).
  const ShiftAddPlan plan = make_shiftadd_plan(-406, Recoding::kBinary);
  EXPECT_EQ(plan.terms.size(), 5u);
  EXPECT_EQ(plan.adders_for_products(), 4);
  EXPECT_FALSE(plan.has_shared_3x);
  for (std::int64_t x = -300; x <= 300; x += 11) {
    EXPECT_EQ(plan.apply(x), -406 * x) << x;
  }
}

TEST(ShiftAddPlan, PaperSection32AdderCounts) {
  // "alpha needs 6 adders ... beta needed 8 adders, but one adder result can
  //  be re-used, reducing this stage to 7 ... gamma needs 5 ... delta needs
  //  5 ... 4 adders for -k ... 2 adders for 1/k."
  const auto counts = paper_multiplier_adder_counts(Recoding::kBinaryWithReuse);
  ASSERT_EQ(counts.size(), 6u);
  EXPECT_EQ(counts[0].name, "alpha");
  EXPECT_EQ(counts[0].total(), 6);
  EXPECT_EQ(counts[1].name, "beta");
  EXPECT_EQ(counts[1].total(), 7);
  EXPECT_EQ(counts[2].name, "gamma");
  EXPECT_EQ(counts[2].total(), 5);
  EXPECT_EQ(counts[3].name, "delta");
  EXPECT_EQ(counts[3].total(), 5);
  EXPECT_EQ(counts[4].name, "-k");
  EXPECT_EQ(counts[4].total(), 4);
  EXPECT_EQ(counts[5].name, "1/k");
  EXPECT_EQ(counts[5].total(), 2);
}

TEST(ShiftAddPlan, BetaWithoutReuseNeedsEightAdders) {
  const auto counts = paper_multiplier_adder_counts(Recoding::kBinary);
  EXPECT_EQ(counts[1].total(), 8);  // the paper's pre-reuse count
}

TEST(ShiftAddPlan, BetaReuseUsesShared3x) {
  const ShiftAddPlan plan = make_shiftadd_plan(-14, Recoding::kBinaryWithReuse);
  EXPECT_TRUE(plan.has_shared_3x);
  int shared_terms = 0;
  for (const auto& t : plan.terms) {
    if (t.uses_shared_3x) ++shared_terms;
  }
  EXPECT_EQ(shared_terms, 2);
  for (std::int64_t x = -600; x <= 600; x += 13) {
    EXPECT_EQ(plan.apply(x), -14 * x) << x;
  }
}

TEST(ShiftAddPlan, ReuseNotAppliedForSinglePair) {
  // alpha has only one adjacent positive pair; reuse would not save adders.
  const ShiftAddPlan plan = make_shiftadd_plan(-406, Recoding::kBinaryWithReuse);
  EXPECT_FALSE(plan.has_shared_3x);
}

TEST(ShiftAddPlan, CsdNeedsFewerTermsForBeta) {
  const ShiftAddPlan binary = make_shiftadd_plan(-14, Recoding::kBinary);
  const ShiftAddPlan csd = make_shiftadd_plan(-14, Recoding::kCsd);
  EXPECT_LT(csd.terms.size(), binary.terms.size());
  EXPECT_EQ(csd.terms.size(), 2u);  // -14 = 2 - 16
  for (std::int64_t x = -600; x <= 600; x += 7) {
    EXPECT_EQ(csd.apply(x), -14 * x) << x;
  }
}

TEST(ShiftAddPlan, CsdHasNoAdjacentNonzeroDigits) {
  for (const std::int64_t c : {-406LL, -14LL, 226LL, 114LL, -315LL, 208LL}) {
    const ShiftAddPlan plan = make_shiftadd_plan(c, Recoding::kCsd);
    std::vector<int> shifts;
    for (const auto& t : plan.terms) shifts.push_back(t.shift);
    std::sort(shifts.begin(), shifts.end());
    for (std::size_t i = 1; i < shifts.size(); ++i) {
      EXPECT_GT(shifts[i] - shifts[i - 1], 1) << "constant " << c;
    }
  }
}

class PlanCorrectness
    : public ::testing::TestWithParam<std::tuple<std::int64_t, Recoding>> {};

TEST_P(PlanCorrectness, AppliesExactly) {
  const auto [c, recoding] = GetParam();
  const ShiftAddPlan plan = make_shiftadd_plan(c, recoding);
  for (std::int64_t x = -128; x <= 127; x += 5) {
    EXPECT_EQ(plan.apply(x), c * x) << "c=" << c << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConstantsTimesRecodings, PlanCorrectness,
    ::testing::Combine(::testing::Values<std::int64_t>(-406, -14, 226, 114,
                                                       -315, 208, 1, -1, 255,
                                                       -256, 511, 3, -3),
                       ::testing::Values(Recoding::kBinary,
                                         Recoding::kBinaryWithReuse,
                                         Recoding::kCsd)));

TEST(ShiftAddPlan, RejectsZeroConstant) {
  EXPECT_THROW(make_shiftadd_plan(0, Recoding::kBinary), std::invalid_argument);
  EXPECT_THROW(make_shiftadd_plan(0, Recoding::kCsd), std::invalid_argument);
}

TEST(ShiftAddPlan, ToStringMentionsOperands) {
  const ShiftAddPlan plan = make_shiftadd_plan(-14, Recoding::kBinaryWithReuse);
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("3x"), std::string::npos);
  EXPECT_NE(s.find("-14"), std::string::npos);
}

}  // namespace
}  // namespace dwt::rtl
